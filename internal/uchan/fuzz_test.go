package uchan

import (
	"bytes"
	"testing"
)

// TestSlotRoundTrip pins the framing: every field survives encode→decode.
func TestSlotRoundTrip(t *testing.T) {
	msgs := []struct {
		q int
		m Msg
	}{
		{0, Msg{Op: 1}},
		{3, Msg{Op: 0xFFFF_FFFF, Seq: 42, Args: [6]uint64{1, 2, 3, 4, 5, ^uint64(0)}}},
		{7, Msg{Op: 9, Data: []byte("payload"), urgent: true}},
		{MaxQueues - 1, Msg{Data: bytes.Repeat([]byte{0xA5}, MaxSlotData)}},
	}
	for _, tc := range msgs {
		q, m, err := DecodeSlot(EncodeSlot(tc.q, tc.m))
		if err != nil {
			t.Fatalf("decode(%d, %+v): %v", tc.q, tc.m, err)
		}
		if q != tc.q || m.Op != tc.m.Op || m.Seq != tc.m.Seq ||
			m.Args != tc.m.Args || m.urgent != tc.m.urgent ||
			!bytes.Equal(m.Data, tc.m.Data) {
			t.Fatalf("round trip mangled: in (%d, %+v), out (%d, %+v)", tc.q, tc.m, q, m)
		}
	}
}

// TestSlotDecodeRejectsMalformed covers the defensive paths an untrusted
// driver can hit by scribbling on its rings.
func TestSlotDecodeRejectsMalformed(t *testing.T) {
	if _, _, err := DecodeSlot(nil); err != ErrSlotShort {
		t.Fatalf("nil slot: %v", err)
	}
	if _, _, err := DecodeSlot(make([]byte, slotHeaderLen-1)); err != ErrSlotShort {
		t.Fatalf("short slot: %v", err)
	}
	// Queue tag out of range.
	b := EncodeSlot(0, Msg{Op: 1})
	b[8], b[9] = 0xFF, 0xFF
	if _, _, err := DecodeSlot(b); err != ErrSlotQueue {
		t.Fatalf("bad queue: %v", err)
	}
	// Length field larger than the buffer.
	b = EncodeSlot(1, Msg{Data: []byte{1, 2, 3}})
	b[60] = 0x10
	if _, _, err := DecodeSlot(b); err != ErrSlotPayload {
		t.Fatalf("truncated payload: %v", err)
	}
	// Length field absurd.
	b = EncodeSlot(1, Msg{})
	b[62] = 0xFF
	if _, _, err := DecodeSlot(b); err != ErrSlotLength {
		t.Fatalf("absurd length: %v", err)
	}
}

// FuzzDecodeSlot hammers the kernel-side slot decoder with arbitrary bytes —
// the multi-queue framing an untrusted driver process writes into shared
// memory. The decoder must never panic, and anything it accepts must
// re-encode to a slot that decodes identically (no parser ambiguity).
func FuzzDecodeSlot(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeSlot(0, Msg{Op: 1, Seq: 2}))
	f.Add(EncodeSlot(3, Msg{Op: 0xFFFFFFFF, Data: []byte("frame bytes")}))
	f.Add(bytes.Repeat([]byte{0xFF}, slotHeaderLen+16))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, m, err := DecodeSlot(data)
		if err != nil {
			return
		}
		if q < 0 || q >= MaxQueues {
			t.Fatalf("accepted queue %d out of range", q)
		}
		if len(m.Data) > MaxSlotData {
			t.Fatalf("accepted %d payload bytes", len(m.Data))
		}
		q2, m2, err := DecodeSlot(EncodeSlot(q, m))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if q2 != q || m2.Op != m.Op || m2.Seq != m.Seq || m2.Args != m.Args ||
			m2.urgent != m.urgent || !bytes.Equal(m2.Data, m.Data) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
