package uchan

import (
	"encoding/binary"
	"errors"
)

// Multi-queue ring-slot framing.
//
// Single-ring channels pass Msg values directly: both sides were built
// together and the slot layout is implicit. Multi-queue channels tag every
// slot with its queue so the kernel can demultiplex N rings that share one
// driver process, and — because the driver process writes downcall slots
// into shared memory — the kernel side must treat the bytes as untrusted
// input and decode them defensively (§3.1.1: no semantic assumptions about
// what the driver wrote). DecodeSlot is fuzzed for exactly that reason.
//
// Slot layout (little-endian):
//
//	[0:4)   op
//	[4:8)   seq
//	[8:10)  queue
//	[10:12) flags (bit 0: urgent)
//	[12:60) args[0..5]
//	[60:64) data length
//	[64:..) data
const (
	slotHeaderLen = 64

	// MaxSlotData bounds the inline payload of one slot; anything larger
	// travels as a shared-memory reference in Args instead.
	MaxSlotData = 64 * 1024

	// MaxQueues bounds the queue tag (and the fan-out NewMulti accepts).
	MaxQueues = 64

	flagUrgent = 1 << 0
)

// Slot decode errors. A malformed slot from the driver is dropped and
// counted, never trusted.
var (
	ErrSlotShort   = errors.New("uchan: slot shorter than header")
	ErrSlotQueue   = errors.New("uchan: slot queue tag out of range")
	ErrSlotLength  = errors.New("uchan: slot data length invalid")
	ErrSlotPayload = errors.New("uchan: slot payload truncated")
)

// EncodeSlot marshals one message and its queue tag into ring-slot bytes.
func EncodeSlot(queue int, m Msg) []byte {
	buf := make([]byte, slotHeaderLen+len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], m.Op)
	binary.LittleEndian.PutUint32(buf[4:8], m.Seq)
	binary.LittleEndian.PutUint16(buf[8:10], uint16(queue))
	var flags uint16
	if m.urgent {
		flags |= flagUrgent
	}
	binary.LittleEndian.PutUint16(buf[10:12], flags)
	for i, a := range m.Args {
		binary.LittleEndian.PutUint64(buf[12+8*i:20+8*i], a)
	}
	binary.LittleEndian.PutUint32(buf[60:64], uint32(len(m.Data)))
	copy(buf[slotHeaderLen:], m.Data)
	return buf
}

// DecodeSlot unmarshals ring-slot bytes written by the (untrusted) peer. It
// never panics on arbitrary input; malformed slots return an error.
func DecodeSlot(buf []byte) (queue int, m Msg, err error) {
	if len(buf) < slotHeaderLen {
		return 0, Msg{}, ErrSlotShort
	}
	queue = int(binary.LittleEndian.Uint16(buf[8:10]))
	if queue >= MaxQueues {
		return 0, Msg{}, ErrSlotQueue
	}
	dlen := binary.LittleEndian.Uint32(buf[60:64])
	if dlen > MaxSlotData {
		return 0, Msg{}, ErrSlotLength
	}
	if len(buf)-slotHeaderLen < int(dlen) {
		return 0, Msg{}, ErrSlotPayload
	}
	m.Op = binary.LittleEndian.Uint32(buf[0:4])
	m.Seq = binary.LittleEndian.Uint32(buf[4:8])
	m.urgent = binary.LittleEndian.Uint16(buf[10:12])&flagUrgent != 0
	for i := range m.Args {
		m.Args[i] = binary.LittleEndian.Uint64(buf[12+8*i : 20+8*i])
	}
	if dlen > 0 {
		m.Data = make([]byte, dlen)
		copy(m.Data, buf[slotHeaderLen:slotHeaderLen+int(dlen)])
	}
	return queue, m, nil
}
