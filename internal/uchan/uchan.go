// Package uchan implements SUD's user channels (§3.1): the RPC transport
// between an in-kernel proxy driver and an untrusted user-space driver
// process, built on message rings in memory shared by both address spaces.
//
// The performance behaviour Figure 8 depends on is modelled explicitly:
//
//   - Asynchronous upcalls and downcalls move through shared rings without
//     entering the kernel (CostUchanEnqueue/Dequeue per message).
//   - A doorbell (one syscall) is needed only when the consumer was asleep
//     or its ring was empty (§3.1.2).
//   - The driver process services its ring from the UML idle thread: after
//     draining it polls for SpinBudget before sleeping in select; waking a
//     sleeping process costs ~4 µs of CPU plus WakeLatency of latency
//     (§5.1: "waking up the sleeping process can take as long as 4µs").
//   - Downcalls queued during a drain are batched: one doorbell flushes
//     them all (§3.1.2 "batch asynchronous downcalls").
//
// MultiChan (multi.go) generalises the channel beyond the paper to N ring
// pairs per driver process — one per simulated CPU/queue, each with its own
// doorbell coalescing and service-thread CPU account — plus a shared urgent
// lane for interrupt-class messages; a single-queue MultiChan is bit-for-bit
// the paper's transport. Rings die with their process (Kill), which is the
// transport half of the kill -9 story (§4.1): the kernel side sees clean
// errors, never a hang.
//
// The package is transport only; operation codes and marshalling belong to
// the proxy driver classes in internal/proxy.
package uchan

import (
	"errors"

	"sud/internal/sim"
	"sud/internal/trace"
)

// Msg is one message in either ring.
type Msg struct {
	// Op is the operation code; the proxy driver class defines values.
	Op uint32
	// Seq matches replies to synchronous requests.
	Seq uint32
	// Args carry small scalars and shared-memory references (bus
	// addresses + lengths) — the zero-copy path for packet payloads.
	Args [6]uint64
	// Data is small inline payload (ioctl arguments and results). It is
	// copied through the ring, unlike Args references.
	Data []byte

	// urgent marks interrupt-class messages (set by ASendUrgent).
	urgent bool
	// enqAt stamps when the message entered its ring; the dequeue side
	// turns it into a ring-residency sample (trace metrics plane).
	enqAt sim.Time
}

// Tunables of the transport model.
const (
	// RingSlots bounds each direction's ring; a full upcall ring means
	// the driver is not keeping up (hung or overloaded) and the send
	// fails rather than blocking the kernel (§3.1.1).
	RingSlots = 512

	// WakeLatency is the time from doorbell to the driver process
	// running (scheduler + IPI + context switch in).
	WakeLatency sim.Duration = 1200

	// WakeCPUKernel / WakeCPUDriver split the wakeup cost between the
	// waking side (try_to_wake_up, IPI send) and the woken side (switch
	// in from the idle loop). The paper's "as long as 4 µs" (§5.1) is
	// the worst case; the common warm case on an otherwise idle sibling
	// core is well under 1 µs each way. UDP_RR's 2x CPU comes from these
	// plus the RR polling windows, which is how the paper explains it.
	WakeCPUKernel sim.Duration = 350
	WakeCPUDriver sim.Duration = 450

	// SpinBudget is the default polling window of the UML idle thread on
	// an empty ring before it sleeps in select (§4.2: upcalls are
	// handled "directly from the UML idle thread"). The window adapts:
	// see MaxSpin.
	SpinBudget sim.Duration = 2000

	// MinSpin / MaxSpin bound the adaptive polling window. The idle
	// thread widens its window toward twice the recently observed
	// message inter-arrival gap, so a request-response follow-up (the
	// transmit upcall a few µs after the receive) is caught without a
	// sleep/wake cycle, while long-idle periods sleep promptly.
	MinSpin sim.Duration = 1000
	MaxSpin sim.Duration = 8000

	// LazyDoorbell is how long a regular async upcall may sit in the
	// ring before the kernel wakes a sleeping driver for it. Interrupt
	// upcalls wake immediately (ASendUrgent); bulk traffic is instead
	// pumped by those interrupt wakes, which lets transmit upcalls batch
	// ~ITR-deep instead of paying a wakeup each (§3.1.1: "the kernel can
	// wait a short period of time to determine if the user-space driver
	// is making any progress").
	LazyDoorbell sim.Duration = 50 * sim.Microsecond
)

// Errors returned by the kernel-side API.
var (
	// ErrHung means the driver failed to respond to a synchronous upcall
	// in time; the upcall is interruptible by design (§3.1.1).
	ErrHung = errors.New("uchan: driver process not responding (interrupted)")
	// ErrDead means the driver process was killed.
	ErrDead = errors.New("uchan: driver process dead")
	// ErrRingFull means the upcall ring overflowed.
	ErrRingFull = errors.New("uchan: upcall ring full")
)

// Stats count transport events.
type Stats struct {
	Upcalls      uint64 // async kernel→driver messages
	SyncUpcalls  uint64
	Downcalls    uint64 // driver→kernel messages
	Wakeups      uint64 // driver woken from sleep
	SpinPickups  uint64 // messages caught while polling (no wake cost)
	Doorbells    uint64 // kernel notifications sent by the driver
	DroppedFull  uint64
	SpinTimeouts uint64
	// MaxDownBatch is the deepest downcall batch one doorbell flushed —
	// how hard §3.1.2 batching is working on this ring.
	MaxDownBatch uint64
}

// Served is the driver-produced message count (downcalls plus doorbells):
// the progress watermark hang detection compares across health checks. A
// ring whose backlog grows while Served stands still is wedged; one whose
// Served advances is merely saturated.
func (s Stats) Served() uint64 { return s.Downcalls + s.Doorbells }

// Driver process service states.
const (
	stateRunning = iota
	statePolling
	stateSleeping
)

// Chan is one uchan pair: the kernel-to-user and user-to-kernel rings plus
// the driver-process service loop model.
type Chan struct {
	loop *sim.Loop
	kern *sim.CPUAccount // kernel side CPU
	drv  *sim.CPUAccount // driver process CPU

	// DriverHandler services one upcall in driver-process context and
	// returns a reply for synchronous messages. Set by SUD-UML.
	DriverHandler func(Msg) *Msg
	// KernelHandler services one downcall in kernel context. Set by the
	// proxy driver.
	KernelHandler func(Msg)
	// OnDrainEnd, if set, runs in driver-process context after each batch
	// of upcalls is serviced, before the downcall flush. SUD-UML uses it
	// for opportunistic submit-side coalescing: device doorbell writes
	// (TX tail, SQ tail) staged while individual upcalls were handled are
	// flushed here, once per drain, instead of one MMIO write per op.
	OnDrainEnd func()

	k2u []Msg
	u2k []Msg

	state     int
	pollStart sim.Time
	pollEvent *sim.Event
	wakeEvent *sim.Event

	// Adaptive spin state: EWMA of drain-end→next-arrival gaps.
	drainEnd sim.Time
	gapEWMA  sim.Duration

	// lazyEvent is the pending deferred doorbell, if any.
	lazyEvent *sim.Event

	// lastDrainUrgent reports whether the most recent drain serviced an
	// interrupt-class message; only then does the idle thread extend its
	// polling window (expecting a kernel follow-up, e.g. the RR reply
	// transmit right after a receive interrupt).
	lastDrainUrgent bool

	// Hung simulates a malicious/buggy driver that stops servicing its
	// ring (§3.1.1 liveness attacks). Messages pile up; sync upcalls
	// fail with ErrHung.
	Hung bool

	// NoBatch disables downcall batching (§3.1.2 ablation): every Down
	// pays its own doorbell instead of riding the next flush.
	NoBatch bool
	// NoPoll disables the idle thread's polling window (§4.2 ablation):
	// the driver sleeps immediately after each drain, so every
	// follow-up message pays a full wakeup.
	NoPoll bool
	// dead: process killed.
	dead bool

	nextSeq uint32
	stats   Stats

	// upRes / downRes are always-on ring-residency histograms: how long
	// each message sat in its ring from enqueue to dequeue (upcall ring
	// residency includes the wake latency a sleeping driver adds — the
	// paper's 4 µs wakeup is directly visible here). Recording charges
	// nothing; the transport stays bit-for-bit with the seed.
	upRes   trace.Hist
	downRes trace.Hist
}

// New creates a channel between the kernel account and a driver account.
func New(loop *sim.Loop, kern, drv *sim.CPUAccount) *Chan {
	return &Chan{loop: loop, kern: kern, drv: drv, state: stateSleeping}
}

// Stats returns transport counters.
func (c *Chan) Stats() Stats { return c.stats }

// Residency returns snapshots of the upcall- and downcall-ring residency
// histograms (enqueue→dequeue latency per message).
func (c *Chan) Residency() (up, down trace.Hist) { return c.upRes, c.downRes }

// Pending returns the number of queued upcalls (tests, hang detection).
func (c *Chan) Pending() int { return len(c.k2u) }

// Kill marks the driver process dead: queues are dropped and all sends fail.
func (c *Chan) Kill() {
	c.dead = true
	c.k2u = nil
	c.u2k = nil
	c.loop.Cancel(c.pollEvent)
	c.loop.Cancel(c.wakeEvent)
	c.loop.Cancel(c.lazyEvent)
}

// Dead reports whether the channel was killed.
func (c *Chan) Dead() bool { return c.dead }

// Poke arranges for pending upcalls to be serviced now, cancelling any
// deferred doorbell. The multi-queue urgent lane uses it to let bulk traffic
// queued on sibling rings ride an interrupt wake instead of waiting out the
// lazy-doorbell window (§3.1.2 batching, generalised to N rings).
func (c *Chan) Poke() {
	if c.dead || c.Hung || len(c.k2u) == 0 {
		return
	}
	c.loop.Cancel(c.lazyEvent)
	c.scheduleService()
}

// --- kernel side ------------------------------------------------------------

// ASend queues an asynchronous upcall (packet transmit). It never blocks
// the kernel: a full ring or dead process is an error the proxy translates
// into backpressure. A sleeping driver is not woken immediately — bulk
// upcalls ride on interrupt wakes, falling back to a deferred doorbell.
func (c *Chan) ASend(m Msg) error { return c.asend(m, false) }

// ASendUrgent queues an asynchronous upcall that wakes a sleeping driver
// immediately — used for forwarded device interrupts, which are the pump
// that keeps bulk traffic flowing.
func (c *Chan) ASendUrgent(m Msg) error { return c.asend(m, true) }

func (c *Chan) asend(m Msg, urgent bool) error {
	if c.dead {
		return ErrDead
	}
	if len(c.k2u) >= RingSlots {
		c.stats.DroppedFull++
		return ErrRingFull
	}
	c.kern.Charge(sim.CostUchanEnqueue)
	m.enqAt = c.loop.Now()
	c.k2u = append(c.k2u, m)
	c.stats.Upcalls++
	if c.Hung {
		return nil
	}
	if urgent {
		m.urgent = true
		c.k2u[len(c.k2u)-1].urgent = true
	}
	if urgent || c.state != stateSleeping {
		c.scheduleService()
		return nil
	}
	// Sleeping driver, non-urgent message: defer the doorbell.
	if c.lazyEvent == nil || c.lazyEvent.Cancelled() {
		c.lazyEvent = c.loop.After(LazyDoorbell, func() {
			if !c.dead && !c.Hung && len(c.k2u) > 0 {
				c.scheduleService()
			}
		})
	}
	return nil
}

// Send performs a synchronous upcall (ioctl, open): the caller needs the
// reply before it can return. A hung driver yields ErrHung — the paper's
// interruptible upcall (the kernel thread is unblocked with an error).
func (c *Chan) Send(m Msg) (*Msg, error) {
	if c.dead {
		return nil, ErrDead
	}
	c.stats.SyncUpcalls++
	if c.Hung {
		// The user aborts (Ctrl-C) after a subjective timeout; no
		// virtual time model needed beyond the failed call itself.
		c.kern.Charge(sim.CostUchanEnqueue)
		return nil, ErrHung
	}
	c.nextSeq++
	m.Seq = c.nextSeq
	c.kern.Charge(sim.CostUchanEnqueue)
	// Wake accounting: if the driver was asleep, both sides pay. The
	// round trip returns the driver to whatever it was doing, so the
	// service state is not changed here.
	if c.state == stateSleeping {
		c.stats.Wakeups++
		c.kern.Charge(WakeCPUKernel + sim.CostUchanDoorbell)
		c.drv.Charge(WakeCPUDriver)
	}
	c.drv.Charge(sim.CostUchanDequeue)
	if c.DriverHandler == nil {
		return nil, ErrDead
	}
	reply := c.DriverHandler(m)
	c.kern.Charge(sim.CostUchanDequeue)
	if reply == nil {
		return nil, ErrHung
	}
	if c.OnDrainEnd != nil {
		c.OnDrainEnd()
	}
	c.flushDown()
	// Async messages may have queued while the driver serviced the sync
	// call; make sure they get drained.
	if len(c.k2u) > 0 && !c.Hung {
		c.scheduleService()
	}
	return reply, nil
}

// scheduleService arranges for the driver process to drain its ring,
// modelling wake latency and the idle-thread polling window.
// observeGap feeds the adaptive spin estimator with the time between the
// last drain finishing and a new message arriving.
func (c *Chan) observeGap() {
	if c.drainEnd == 0 {
		return
	}
	gap := c.loop.Now() - c.drainEnd
	if gap > 50*sim.Microsecond {
		return // long idle: not a follow-up pattern
	}
	if c.gapEWMA == 0 {
		c.gapEWMA = gap
	} else {
		c.gapEWMA = (7*c.gapEWMA + gap) / 8
	}
}

// spinBudget returns the current polling window.
func (c *Chan) spinBudget() sim.Duration {
	if c.gapEWMA == 0 {
		return SpinBudget
	}
	b := 2 * c.gapEWMA
	if b < MinSpin {
		b = MinSpin
	}
	if b > MaxSpin {
		b = MaxSpin
	}
	return b
}

func (c *Chan) scheduleService() {
	switch c.state {
	case stateSleeping:
		if c.wakeEvent != nil && !c.wakeEvent.Cancelled() {
			return // wake already in flight
		}
		c.observeGap()
		c.kern.Charge(sim.CostUchanDoorbell)
		c.stats.Wakeups++
		c.kern.Charge(WakeCPUKernel)
		c.state = stateRunning
		c.wakeEvent = c.loop.After(WakeLatency, func() {
			c.drv.Charge(WakeCPUDriver)
			c.drain()
		})
	case statePolling:
		// The idle thread catches the message during its spin: charge
		// the spin time actually used, no wake needed.
		c.observeGap()
		c.stats.SpinPickups++
		spin := c.loop.Now() - c.pollStart
		if budget := c.spinBudget(); spin > budget {
			spin = budget
		}
		c.drv.Charge(spin)
		c.loop.Cancel(c.pollEvent)
		c.state = stateRunning
		c.loop.After(0, c.drain)
	case stateRunning:
		// Already draining; the message will be picked up.
	}
}

// drain services the upcall ring in driver-process context, then polls.
func (c *Chan) drain() {
	if c.dead {
		return
	}
	c.state = stateRunning
	sawUrgent := false
	for {
		for len(c.k2u) > 0 && !c.Hung {
			m := c.k2u[0]
			c.k2u = c.k2u[1:]
			c.upRes.Record(c.loop.Now() - m.enqAt)
			c.drv.Charge(sim.CostUchanDequeue)
			if m.urgent {
				sawUrgent = true
			}
			if c.DriverHandler != nil {
				c.DriverHandler(m)
			}
		}
		if c.OnDrainEnd != nil {
			c.OnDrainEnd()
		}
		c.flushDown()
		// Downcall handling in the kernel may have queued fresh upcalls
		// (e.g. netif_rx → TCP ACK → transmit); service them before
		// going idle.
		if len(c.k2u) == 0 || c.Hung || c.dead {
			break
		}
	}
	// Enter the polling window before sleeping.
	c.lastDrainUrgent = sawUrgent
	c.drainEnd = c.loop.Now()
	if c.NoPoll {
		c.state = stateSleeping
		return
	}
	c.state = statePolling
	c.pollStart = c.loop.Now()
	budget := MinSpin
	if sawUrgent {
		// Device work often triggers prompt kernel follow-ups (the RR
		// reply); poll longer after interrupt drains.
		budget = c.spinBudget()
	}
	c.pollEvent = c.loop.After(budget, func() {
		c.stats.SpinTimeouts++
		c.drv.Charge(budget)
		c.state = stateSleeping
	})
}

// --- driver side ------------------------------------------------------------

// Down queues an asynchronous downcall (netif_rx, carrier change). Downcalls
// batch: nothing reaches the kernel until flushDown, which the service loop
// calls after draining upcalls — or which the SUD-UML runtime triggers
// explicitly with Flush for driver-initiated work.
func (c *Chan) Down(m Msg) error {
	if c.dead {
		return ErrDead
	}
	if len(c.u2k) >= RingSlots {
		c.stats.DroppedFull++
		return ErrRingFull
	}
	c.drv.Charge(sim.CostUchanEnqueue)
	m.enqAt = c.loop.Now()
	c.u2k = append(c.u2k, m)
	c.stats.Downcalls++
	if c.NoBatch {
		c.flushDown()
	}
	return nil
}

// Flush delivers all queued downcalls to the kernel handler, costing one
// doorbell for the whole batch.
func (c *Chan) Flush() { c.flushDown() }

func (c *Chan) flushDown() {
	if len(c.u2k) == 0 || c.dead {
		return
	}
	c.stats.Doorbells++
	c.drv.Charge(sim.CostUchanDoorbell)
	batch := c.u2k
	c.u2k = nil
	if uint64(len(batch)) > c.stats.MaxDownBatch {
		c.stats.MaxDownBatch = uint64(len(batch))
	}
	for _, m := range batch {
		c.downRes.Record(c.loop.Now() - m.enqAt)
		c.kern.Charge(sim.CostUchanDequeue)
		if c.KernelHandler != nil {
			c.KernelHandler(m)
		}
	}
}

// SDown performs a synchronous downcall: the driver needs the kernel's
// reply before continuing (DMA allocation, PCI config access). The kernel
// copies results directly into the caller's message buffer (§3.1), so no
// reply message is queued.
func (c *Chan) SDown(m Msg, handle func(Msg) Msg) (Msg, error) {
	if c.dead {
		return Msg{}, ErrDead
	}
	// One syscall-ish round trip.
	c.drv.Charge(sim.CostUchanEnqueue + sim.CostUchanDoorbell)
	c.kern.Charge(sim.CostUchanDequeue)
	out := handle(m)
	c.drv.Charge(sim.CostUchanDequeue)
	return out, nil
}
