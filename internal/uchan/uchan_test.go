package uchan

import (
	"testing"

	"sud/internal/sim"
)

type fixture struct {
	loop *sim.Loop
	kern *sim.CPUAccount
	drv  *sim.CPUAccount
	c    *Chan

	served  []Msg
	replies map[uint32]Msg
	down    []Msg
}

func newFixture() *fixture {
	loop := sim.NewLoop()
	stats := sim.NewCPUStats(2)
	f := &fixture{
		loop:    loop,
		kern:    stats.Account("kernel"),
		drv:     stats.Account("driver"),
		replies: map[uint32]Msg{},
	}
	f.c = New(loop, f.kern, f.drv)
	f.c.DriverHandler = func(m Msg) *Msg {
		f.served = append(f.served, m)
		if r, ok := f.replies[m.Op]; ok {
			r.Seq = m.Seq
			return &r
		}
		return &Msg{Seq: m.Seq}
	}
	f.c.KernelHandler = func(m Msg) { f.down = append(f.down, m) }
	return f
}

func TestASendWakesAndDrains(t *testing.T) {
	f := newFixture()
	if err := f.c.ASend(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	if len(f.served) != 0 {
		t.Fatal("served before wake latency")
	}
	f.loop.Run()
	if len(f.served) != 1 || f.served[0].Op != 1 {
		t.Fatalf("served %v", f.served)
	}
	st := f.c.Stats()
	if st.Wakeups != 1 || st.Upcalls != 1 {
		t.Fatalf("stats %+v", st)
	}
	if f.kern.Busy() == 0 || f.drv.Busy() == 0 {
		t.Fatal("no CPU charged")
	}
}

func TestBatchDrainSingleWake(t *testing.T) {
	f := newFixture()
	for i := 0; i < 10; i++ {
		if err := f.c.ASend(Msg{Op: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	f.loop.Run()
	if len(f.served) != 10 {
		t.Fatalf("served %d", len(f.served))
	}
	if f.c.Stats().Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1 (batched)", f.c.Stats().Wakeups)
	}
}

func TestSpinPickupAvoidsWake(t *testing.T) {
	f := newFixture()
	// Interrupt-class message: wakes immediately and leaves the driver
	// polling with an extended window afterwards.
	if err := f.c.ASendUrgent(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	f.loop.RunFor(WakeLatency) // driver drains, enters polling
	// Send within the spin window: no second wake.
	if err := f.c.ASend(Msg{Op: 2}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run()
	st := f.c.Stats()
	if st.Wakeups != 1 || st.SpinPickups != 1 {
		t.Fatalf("stats %+v", st)
	}
	if len(f.served) != 2 {
		t.Fatalf("served %d", len(f.served))
	}
}

func TestUrgentWakesImmediately(t *testing.T) {
	f := newFixture()
	if err := f.c.ASendUrgent(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	f.loop.RunFor(WakeLatency)
	if len(f.served) != 1 {
		t.Fatal("urgent upcall not served at wake latency")
	}
}

func TestLazyDoorbellDefersWake(t *testing.T) {
	f := newFixture()
	if err := f.c.ASend(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	// Well after wake latency but before the lazy doorbell: not served.
	f.loop.RunFor(LazyDoorbell / 2)
	if len(f.served) != 0 {
		t.Fatal("lazy upcall served too early")
	}
	f.loop.Run()
	if len(f.served) != 1 {
		t.Fatal("lazy upcall never served")
	}
}

func TestLazyUpcallsRideUrgentWake(t *testing.T) {
	// Queue bulk messages, then an interrupt: everything drains on the
	// interrupt wake, long before the lazy doorbell.
	f := newFixture()
	for i := 0; i < 5; i++ {
		if err := f.c.ASend(Msg{Op: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.c.ASendUrgent(Msg{Op: 99}); err != nil {
		t.Fatal(err)
	}
	f.loop.RunFor(2 * WakeLatency)
	if len(f.served) != 6 {
		t.Fatalf("served %d, want 6 batched on the urgent wake", len(f.served))
	}
	if f.c.Stats().Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1", f.c.Stats().Wakeups)
	}
}

func TestPollWindowShortAfterBulkDrain(t *testing.T) {
	// A drain with no interrupt-class message polls only MinSpin.
	f := newFixture()
	if err := f.c.ASend(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run() // lazy wake, drain, MinSpin poll, sleep
	// A follow-up just beyond MinSpin must need a fresh (lazy) wake.
	if err := f.c.ASend(Msg{Op: 2}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run()
	if f.c.Stats().SpinPickups != 0 {
		t.Fatalf("bulk drain left a long poll window: %+v", f.c.Stats())
	}
	if len(f.served) != 2 {
		t.Fatalf("served %d", len(f.served))
	}
}

func TestSpinTimeoutSleeps(t *testing.T) {
	f := newFixture()
	if err := f.c.ASend(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run() // drain + spin timeout
	if f.c.Stats().SpinTimeouts != 1 {
		t.Fatalf("spin timeouts = %d", f.c.Stats().SpinTimeouts)
	}
	// Next message needs a fresh wake.
	if err := f.c.ASend(Msg{Op: 2}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run()
	if f.c.Stats().Wakeups != 2 {
		t.Fatalf("wakeups = %d, want 2", f.c.Stats().Wakeups)
	}
}

func TestSyncSendReply(t *testing.T) {
	f := newFixture()
	f.replies[7] = Msg{Data: []byte{0x55}}
	r, err := f.c.Send(Msg{Op: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 1 || r.Data[0] != 0x55 {
		t.Fatalf("reply %+v", r)
	}
	if r.Seq == 0 {
		t.Fatal("no sequence number assigned")
	}
}

func TestHungDriverInterruptsSyncSend(t *testing.T) {
	f := newFixture()
	f.c.Hung = true
	if _, err := f.c.Send(Msg{Op: 7}); err != ErrHung {
		t.Fatalf("err = %v, want ErrHung", err)
	}
	// Async sends queue but are never served.
	for i := 0; i < 5; i++ {
		if err := f.c.ASend(Msg{Op: 1}); err != nil {
			t.Fatal(err)
		}
	}
	f.loop.Run()
	if len(f.served) != 0 {
		t.Fatal("hung driver served messages")
	}
	if f.c.Pending() != 5 {
		t.Fatalf("pending = %d", f.c.Pending())
	}
}

func TestRingFullBackpressure(t *testing.T) {
	f := newFixture()
	f.c.Hung = true
	var full bool
	for i := 0; i < RingSlots+10; i++ {
		if err := f.c.ASend(Msg{}); err == ErrRingFull {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("ring never filled")
	}
	if f.c.Stats().DroppedFull != 1 {
		t.Fatalf("dropped = %d", f.c.Stats().DroppedFull)
	}
}

func TestDowncallBatchingOneDoorbell(t *testing.T) {
	f := newFixture()
	// Driver queues 3 downcalls during one upcall service.
	f.c.DriverHandler = func(m Msg) *Msg {
		for i := 0; i < 3; i++ {
			if err := f.c.Down(Msg{Op: 100 + uint32(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return &Msg{Seq: m.Seq}
	}
	if err := f.c.ASend(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	f.loop.Run()
	if len(f.down) != 3 {
		t.Fatalf("kernel saw %d downcalls", len(f.down))
	}
	if f.c.Stats().Doorbells != 1 {
		t.Fatalf("doorbells = %d, want 1 (batched)", f.c.Stats().Doorbells)
	}
}

func TestExplicitFlush(t *testing.T) {
	f := newFixture()
	if err := f.c.Down(Msg{Op: 9}); err != nil {
		t.Fatal(err)
	}
	if len(f.down) != 0 {
		t.Fatal("downcall delivered without flush")
	}
	f.c.Flush()
	if len(f.down) != 1 {
		t.Fatal("flush did not deliver")
	}
	f.c.Flush() // idempotent when empty
	if f.c.Stats().Doorbells != 1 {
		t.Fatal("empty flush cost a doorbell")
	}
}

func TestSDownInline(t *testing.T) {
	f := newFixture()
	out, err := f.c.SDown(Msg{Op: 42, Args: [6]uint64{7}}, func(m Msg) Msg {
		return Msg{Args: [6]uint64{m.Args[0] * 2}}
	})
	if err != nil || out.Args[0] != 14 {
		t.Fatalf("SDown = %+v, %v", out, err)
	}
}

func TestKillDropsEverything(t *testing.T) {
	f := newFixture()
	if err := f.c.ASend(Msg{}); err != nil {
		t.Fatal(err)
	}
	f.c.Kill()
	f.loop.Run()
	if len(f.served) != 0 {
		t.Fatal("killed channel served messages")
	}
	if err := f.c.ASend(Msg{}); err != ErrDead {
		t.Fatalf("ASend after kill = %v", err)
	}
	if _, err := f.c.Send(Msg{}); err != ErrDead {
		t.Fatalf("Send after kill = %v", err)
	}
	if err := f.c.Down(Msg{}); err != ErrDead {
		t.Fatalf("Down after kill = %v", err)
	}
	if _, err := f.c.SDown(Msg{}, nil); err != ErrDead {
		t.Fatalf("SDown after kill = %v", err)
	}
	if !f.c.Dead() {
		t.Fatal("Dead() false after Kill")
	}
}

func TestSyncSendWhileSleepingChargesWake(t *testing.T) {
	f := newFixture()
	before := f.kern.Busy() + f.drv.Busy()
	if _, err := f.c.Send(Msg{Op: 1}); err != nil {
		t.Fatal(err)
	}
	after := f.kern.Busy() + f.drv.Busy()
	if after-before < WakeCPUKernel+WakeCPUDriver {
		t.Fatalf("sync send from sleep charged only %v", after-before)
	}
}

func TestWakeupCPUAmortizedPerBatch(t *testing.T) {
	// 100 messages in one batch must cost far less than 100 wakeups.
	f := newFixture()
	for i := 0; i < 100; i++ {
		if err := f.c.ASend(Msg{}); err != nil {
			t.Fatal(err)
		}
	}
	f.loop.Run()
	perMsg := (f.kern.Busy() + f.drv.Busy()) / 100
	if perMsg > 1000 {
		t.Fatalf("per-message cost %v ns; batching broken", perMsg)
	}
}
