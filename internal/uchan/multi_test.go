package uchan

import (
	"fmt"
	"testing"

	"sud/internal/sim"
)

// mfix is a multi-queue test fixture: Q ring pairs, recorded service order.
type mfix struct {
	loop  *sim.Loop
	stats *sim.CPUStats
	kern  *sim.CPUAccount
	mc    *MultiChan

	// served records (queue, msg) in service order.
	served []servedMsg
	down   []servedMsg
}

type servedMsg struct {
	q int
	m Msg
}

func newMfix(queues int) *mfix {
	loop := sim.NewLoop()
	stats := sim.NewCPUStats(queues + 1)
	f := &mfix{loop: loop, stats: stats, kern: stats.Account("kernel")}
	f.mc = NewMulti(loop, f.kern, stats.QueueAccounts("driver", queues))
	f.mc.SetDriverHandler(func(q int, m Msg) *Msg {
		f.served = append(f.served, servedMsg{q, m})
		return &Msg{Seq: m.Seq}
	})
	f.mc.SetKernelHandler(func(q int, m Msg) {
		f.down = append(f.down, servedMsg{q, m})
	})
	return f
}

// TestSingleQueueAliasesUrgentLane pins the Q=1 compatibility contract: the
// urgent lane IS the single ring, so costs and counters match a plain Chan.
func TestSingleQueueAliasesUrgentLane(t *testing.T) {
	f := newMfix(1)
	if f.mc.UrgentLane() != f.mc.Queue(0) {
		t.Fatal("Q=1 urgent lane is a separate ring")
	}
	for i := 0; i < 5; i++ {
		if err := f.mc.ASend(0, Msg{Op: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.mc.ASendUrgent(Msg{Op: 99}); err != nil {
		t.Fatal(err)
	}
	f.loop.RunFor(2 * WakeLatency)
	if len(f.served) != 6 {
		t.Fatalf("served %d, want 6 batched on the urgent wake", len(f.served))
	}
	if f.mc.Stats().Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1 (single ring batching)", f.mc.Stats().Wakeups)
	}
}

// TestPerQueueRingFullBackpressure: filling one queue's ring reports
// ErrRingFull on that queue only; siblings and the sync control path keep
// accepting, for several queue counts (table-driven).
func TestPerQueueRingFullBackpressure(t *testing.T) {
	for _, queues := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("Q%d", queues), func(t *testing.T) {
			f := newMfix(queues)
			victim := queues - 1
			f.mc.HangQueue(victim, true)
			var full bool
			for i := 0; i < RingSlots+8; i++ {
				if err := f.mc.ASend(victim, Msg{Op: 1}); err == ErrRingFull {
					full = true
					break
				}
			}
			if !full {
				t.Fatal("hung queue's ring never filled")
			}
			if f.mc.QueueStats(victim).DroppedFull != 1 {
				t.Fatalf("victim drops = %d", f.mc.QueueStats(victim).DroppedFull)
			}
			// Every sibling still accepts and services.
			for q := 0; q < queues-1; q++ {
				if err := f.mc.ASend(q, Msg{Op: uint32(100 + q)}); err != nil {
					t.Fatalf("sibling queue %d rejected: %v", q, err)
				}
			}
			// The kernel is never blocked: sync control upcalls succeed.
			if _, err := f.mc.Send(Msg{Op: 7}); err != nil {
				t.Fatalf("sync upcall blocked by hung queue: %v", err)
			}
			f.loop.Run()
			var sibServed int
			for _, s := range f.served {
				if s.m.Op >= 100 {
					sibServed++
				}
			}
			if sibServed != queues-1 {
				t.Fatalf("sibling messages served = %d, want %d", sibServed, queues-1)
			}
			if f.mc.QueueStats(victim).DroppedFull == 0 || f.mc.Queue(victim).Pending() != RingSlots {
				t.Fatal("victim ring drained despite hang")
			}
		})
	}
}

// TestKillMidDrain kills the channel from inside a drain: in-ring messages
// after the killer are dropped, later sends fail, nothing panics — for
// single- and multi-queue channels (table-driven).
func TestKillMidDrain(t *testing.T) {
	for _, queues := range []int{1, 4} {
		t.Run(fmt.Sprintf("Q%d", queues), func(t *testing.T) {
			f := newMfix(queues)
			served := 0
			f.mc.SetDriverHandler(func(q int, m Msg) *Msg {
				served++
				if m.Op == 1 {
					f.mc.Kill() // kill -9 arrives while draining
				}
				return &Msg{Seq: m.Seq}
			})
			for q := 0; q < queues; q++ {
				for i := 0; i < 3; i++ {
					op := uint32(2)
					if q == 0 && i == 0 {
						op = 1
					}
					if err := f.mc.ASend(q, Msg{Op: op}); err != nil {
						t.Fatal(err)
					}
				}
			}
			f.loop.Run()
			if !f.mc.Dead() {
				t.Fatal("channel alive after mid-drain kill")
			}
			// The killer message was served; everything queued behind it
			// (its own ring and every sibling ring) was dropped.
			if served != 1 {
				t.Fatalf("served %d messages, want 1 (the killer)", served)
			}
			if f.mc.Pending() != 0 {
				t.Fatalf("pending = %d after kill", f.mc.Pending())
			}
			if err := f.mc.ASend(0, Msg{}); err != ErrDead {
				t.Fatalf("ASend after kill = %v", err)
			}
			if err := f.mc.DownQ(queues-1, Msg{}); err != ErrDead {
				t.Fatalf("DownQ after kill = %v", err)
			}
			if _, err := f.mc.Send(Msg{}); err != ErrDead {
				t.Fatalf("Send after kill = %v", err)
			}
		})
	}
}

// TestUrgentLaneOrderingUnderConcurrentService: with bulk backlogs queued on
// every ring, urgent messages are serviced in FIFO order at wake latency —
// before any sibling's deferred bulk drain — and the interrupt wake pumps
// the sibling rings (no second lazy-doorbell wait).
func TestUrgentLaneOrderingUnderConcurrentService(t *testing.T) {
	f := newMfix(4)
	// Bulk backlog on all four rings; the drivers are asleep, so these
	// wait on deferred doorbells (LazyDoorbell = 50 µs).
	for q := 0; q < 4; q++ {
		for i := 0; i < 4; i++ {
			if err := f.mc.ASend(q, Msg{Op: uint32(10*q + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Three interrupt-class messages.
	for i := 0; i < 3; i++ {
		if err := f.mc.ASendUrgent(Msg{Op: uint32(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Run just past the urgent wake: urgent messages must already be
	// served, in order, before the 50 µs lazy doorbells would fire.
	f.loop.RunFor(WakeLatency)
	var urgents []uint32
	for _, s := range f.served {
		if s.m.Op >= 1000 {
			urgents = append(urgents, s.m.Op)
		}
	}
	if len(urgents) != 3 {
		t.Fatalf("urgent served = %d at wake latency, want 3", len(urgents))
	}
	for i, op := range urgents {
		if op != uint32(1000+i) {
			t.Fatalf("urgent order %v, want FIFO", urgents)
		}
	}
	// The interrupt wake pumped the bulk rings: everything drains well
	// before the lazy doorbell deadline.
	f.loop.RunFor(2 * WakeLatency)
	if len(f.served) != 16+3 {
		t.Fatalf("served %d, want all 19 riding the urgent wake", len(f.served))
	}
	// Each ring serviced its own messages on its own account.
	for q := 0; q < 4; q++ {
		if f.stats.Account(fmt.Sprintf("driver/q%d", q)).Busy() == 0 {
			t.Fatalf("queue %d's service thread never charged", q)
		}
	}
}

// TestUrgentServiceFlushesDowncalls: downcalls queued while servicing an
// interrupt-class message (IRQ ack, netif_rx) must reach the kernel from
// the urgent drain itself — the driver may have no bulk traffic pending to
// trigger a later flush (regression: on Q>1 they were stranded until an
// unrelated ring flushed, wedging the interrupt-ack path).
func TestUrgentServiceFlushesDowncalls(t *testing.T) {
	for _, queues := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("Q%d", queues), func(t *testing.T) {
			f := newMfix(queues)
			f.mc.SetDriverHandler(func(q int, m Msg) *Msg {
				// The ISR acks its interrupt on the control ring and
				// completes work on the last ring.
				if err := f.mc.DownQ(0, Msg{Op: 500}); err != nil {
					t.Fatal(err)
				}
				if err := f.mc.DownQ(queues-1, Msg{Op: 501}); err != nil {
					t.Fatal(err)
				}
				return &Msg{Seq: m.Seq}
			})
			if err := f.mc.ASendUrgent(Msg{Op: 1}); err != nil {
				t.Fatal(err)
			}
			f.loop.RunFor(2 * WakeLatency)
			if len(f.down) != 2 {
				t.Fatalf("kernel saw %d downcalls after urgent service, want 2", len(f.down))
			}
		})
	}
}

// TestKernelDropsMalformedDowncallSlots: the multi-queue downcall path
// carries driver-written slot bytes; the kernel-side dequeue must reject
// garbage and queue-spoofed slots without dispatching them.
func TestKernelDropsMalformedDowncallSlots(t *testing.T) {
	f := newMfix(2)
	// A malicious driver scribbles raw bytes into its downcall ring...
	if err := f.mc.Queue(1).Down(Msg{Op: opEncodedSlot, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// ...and forges a slot whose queue tag names a sibling ring.
	if err := f.mc.Queue(1).Down(Msg{Op: opEncodedSlot, Data: EncodeSlot(0, Msg{Op: 7})}); err != nil {
		t.Fatal(err)
	}
	f.mc.Flush()
	if len(f.down) != 0 {
		t.Fatalf("kernel dispatched %d forged downcalls", len(f.down))
	}
	if f.mc.BadSlots != 2 {
		t.Fatalf("BadSlots = %d, want 2", f.mc.BadSlots)
	}
	// Honest downcalls still flow.
	if err := f.mc.DownQ(1, Msg{Op: 8}); err != nil {
		t.Fatal(err)
	}
	f.mc.Flush()
	if len(f.down) != 1 || f.down[0].q != 1 || f.down[0].m.Op != 8 {
		t.Fatalf("honest downcall mangled: %+v", f.down)
	}
}

// TestDownQPerQueueBatching: downcalls batch per ring — one doorbell per
// flushed queue, delivered to the kernel handler tagged with its queue.
func TestDownQPerQueueBatching(t *testing.T) {
	f := newMfix(2)
	for i := 0; i < 3; i++ {
		if err := f.mc.DownQ(0, Msg{Op: uint32(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.mc.DownQ(1, Msg{Op: 200}); err != nil {
		t.Fatal(err)
	}
	if len(f.down) != 0 {
		t.Fatal("downcalls delivered before flush")
	}
	f.mc.Flush()
	if len(f.down) != 4 {
		t.Fatalf("kernel saw %d downcalls", len(f.down))
	}
	if f.down[3].q != 1 || f.down[3].m.Op != 200 {
		t.Fatalf("queue tag lost: %+v", f.down[3])
	}
	st := f.mc.Stats()
	if st.Doorbells != 2 {
		t.Fatalf("doorbells = %d, want one per non-empty ring", st.Doorbells)
	}
}
