package uchan

import (
	"fmt"

	"sud/internal/sim"
	"sud/internal/trace"
)

// MultiChan generalises the user channel from one ring pair per driver to N
// ring pairs — one per simulated CPU/queue — plus a shared urgent lane for
// interrupt-class messages. It is the transport that lets one untrusted
// driver process serve multiple hardware queues concurrently:
//
//   - Each queue owns a full Chan: its own upcall/downcall rings, its own
//     service-loop state (wake, adaptive polling window) and its own
//     deferred doorbell — so doorbell coalescing is per ring, and a slow or
//     hung queue exerts backpressure only on itself (§3.1.1 generalised).
//   - Each queue charges its own driver-side CPU account, modelling one
//     service thread per queue inside the driver process.
//   - Interrupt-class messages travel on the shared urgent lane, which
//     wakes immediately; after servicing an interrupt the lane pokes every
//     sibling ring with pending messages, so bulk upcalls batch behind
//     interrupt wakes exactly as they do on a single-queue channel.
//   - Downcall slots on multi-queue channels cross the ring in the byte
//     framing of codec.go; the kernel side decodes them defensively, since
//     the untrusted driver writes them into shared memory.
//
// A MultiChan over one queue is exactly a Chan: the urgent lane aliases the
// single ring, no framing is applied, and every cost and counter matches the
// single-ring transport bit for bit — Q=1 stays the paper's Figure 8 system.
type MultiChan struct {
	queues []*Chan
	urgent *Chan // aliases queues[0] when len(queues) == 1

	// BadSlots counts malformed downcall slots dropped by the kernel-side
	// decoder (an untrusted driver scribbling on its rings).
	BadSlots uint64
}

// NewMulti creates a channel with one ring pair per driver-side account in
// drvAccts (the per-queue service threads) between kernel account kern and
// the driver process. len(drvAccts) must be in [1, MaxQueues].
func NewMulti(loop *sim.Loop, kern *sim.CPUAccount, drvAccts []*sim.CPUAccount) *MultiChan {
	if len(drvAccts) < 1 || len(drvAccts) > MaxQueues {
		panic(fmt.Sprintf("uchan: %d queues out of range [1,%d]", len(drvAccts), MaxQueues))
	}
	mc := &MultiChan{}
	for _, a := range drvAccts {
		mc.queues = append(mc.queues, New(loop, kern, a))
	}
	if len(mc.queues) == 1 {
		mc.urgent = mc.queues[0]
	} else {
		// The urgent lane is serviced by the first queue's thread (the
		// interrupt is taken on one CPU and fanned out from there).
		mc.urgent = New(loop, kern, drvAccts[0])
	}
	return mc
}

// NumQueues returns the ring-pair count Q.
func (mc *MultiChan) NumQueues() int { return len(mc.queues) }

// Queue returns queue q's underlying single-ring channel. Proxy classes that
// are not multi-queue aware (wifi, audio) attach to Queue(0).
func (mc *MultiChan) Queue(q int) *Chan { return mc.queues[mc.clamp(q)] }

// UrgentLane returns the shared interrupt-class lane (queue 0's ring on a
// single-queue channel).
func (mc *MultiChan) UrgentLane() *Chan { return mc.urgent }

func (mc *MultiChan) clamp(q int) int {
	if q < 0 || q >= len(mc.queues) {
		return 0
	}
	return q
}

// SetDriverHandler installs the driver-process upcall handler; q is the ring
// the message arrived on (0 for the urgent lane, which queue 0's service
// thread drains). On multi-queue channels, draining an interrupt-class
// message also pokes sibling rings so their queued bulk messages ride the
// interrupt wake.
func (mc *MultiChan) SetDriverHandler(h func(q int, m Msg) *Msg) {
	for i, c := range mc.queues {
		q := i
		c.DriverHandler = func(m Msg) *Msg { return h(q, m) }
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.DriverHandler = func(m Msg) *Msg {
			r := h(0, m)
			// Interrupt service may have queued downcalls (IRQ ack,
			// netif_rx, xmit completions) on any ring: deliver them now
			// — on a single-queue channel the same drain that services
			// the interrupt flushes them — then let queued bulk upcalls
			// ride the interrupt wake.
			for _, c := range mc.queues {
				c.Flush()
				c.Poke()
			}
			return r
		}
	}
}

// SetOnDrainEnd installs the per-drain hook on every ring (including the
// urgent lane): it runs in driver-process context after each batch of
// upcalls is serviced, before the downcall flush. SUD-UML uses it to flush
// device doorbell writes staged during the batch (submit-side coalescing).
func (mc *MultiChan) SetOnDrainEnd(f func()) {
	for _, c := range mc.queues {
		c.OnDrainEnd = f
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.OnDrainEnd = f
	}
}

// opEncodedSlot marks a ring entry whose payload is codec.go slot bytes
// written by the driver process; the kernel side must decode it defensively
// before dispatch. Reserved from the proxy-class op space.
const opEncodedSlot = ^uint32(0)

// SetKernelHandler installs the kernel-side downcall handler; q is the ring
// the downcall arrived on. On multi-queue channels the ring carries raw
// slot bytes the untrusted driver wrote; they are decoded here — at the
// kernel-side dequeue — and malformed or queue-spoofed slots are dropped
// and counted, never dispatched.
func (mc *MultiChan) SetKernelHandler(h func(q int, m Msg)) {
	for i, c := range mc.queues {
		q := i
		c.KernelHandler = func(m Msg) {
			if m.Op == opEncodedSlot {
				dq, dm, err := DecodeSlot(m.Data)
				if err != nil || dq != q {
					mc.BadSlots++
					return
				}
				h(q, dm)
				return
			}
			h(q, m)
		}
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.KernelHandler = func(m Msg) { h(0, m) }
	}
}

// --- kernel side ------------------------------------------------------------

// ASend queues an asynchronous upcall on queue q's ring. Ring-full
// backpressure is per queue: a slow queue rejects its own traffic without
// affecting siblings.
func (mc *MultiChan) ASend(q int, m Msg) error {
	return mc.queues[mc.clamp(q)].ASend(m)
}

// ASendUrgent queues an interrupt-class upcall on the shared urgent lane,
// waking the driver immediately.
func (mc *MultiChan) ASendUrgent(m Msg) error { return mc.urgent.ASendUrgent(m) }

// Send performs a synchronous upcall on queue 0 (the control ring: open,
// stop, ioctl — never the per-queue fast path).
func (mc *MultiChan) Send(m Msg) (*Msg, error) { return mc.queues[0].Send(m) }

// --- driver side ------------------------------------------------------------

// Down queues an asynchronous downcall on the control ring (queue 0).
func (mc *MultiChan) Down(m Msg) error { return mc.DownQ(0, m) }

// DownQ queues an asynchronous downcall on queue q's ring. On multi-queue
// channels the slot crosses the ring in the codec.go byte framing — the
// driver side writes bytes, and the kernel-side dequeue (SetKernelHandler)
// decodes them defensively before dispatch.
func (mc *MultiChan) DownQ(q int, m Msg) error {
	q = mc.clamp(q)
	if len(mc.queues) == 1 {
		return mc.queues[0].Down(m)
	}
	return mc.queues[q].Down(Msg{Op: opEncodedSlot, Data: EncodeSlot(q, m)})
}

// Flush delivers every queue's batched downcalls, one doorbell per
// non-empty ring.
func (mc *MultiChan) Flush() {
	for _, c := range mc.queues {
		c.Flush()
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.Flush()
	}
}

// --- lifecycle and knobs ----------------------------------------------------

// Kill tears down every ring (process death).
func (mc *MultiChan) Kill() {
	for _, c := range mc.queues {
		c.Kill()
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.Kill()
	}
}

// Dead reports whether the channel was killed.
func (mc *MultiChan) Dead() bool { return mc.queues[0].Dead() }

// Pending returns queued upcalls across all rings (hang detection).
func (mc *MultiChan) Pending() int {
	n := 0
	for _, c := range mc.queues {
		n += c.Pending()
	}
	if mc.urgent != mc.queues[0] {
		n += mc.urgent.Pending()
	}
	return n
}

// QueuePending returns queued upcalls on queue q's ring alone — the
// per-queue backlog half of the supervisor's progress watermarks (a single
// wedged ring must be visible while siblings drain theirs).
func (mc *MultiChan) QueuePending(q int) int { return mc.queues[mc.clamp(q)].Pending() }

// SetHung simulates the whole driver process wedging (§3.1.1): every ring
// stops being serviced.
func (mc *MultiChan) SetHung(hung bool) {
	for _, c := range mc.queues {
		c.Hung = hung
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.Hung = hung
	}
}

// HangQueue wedges a single queue's service thread, leaving siblings and the
// urgent lane live — the per-queue liveness-attack surface.
func (mc *MultiChan) HangQueue(q int, hung bool) { mc.queues[mc.clamp(q)].Hung = hung }

// SetNoBatch disables downcall batching on every ring (§3.1.2 ablation).
func (mc *MultiChan) SetNoBatch(v bool) {
	for _, c := range mc.queues {
		c.NoBatch = v
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.NoBatch = v
	}
}

// SetNoPoll disables the idle-thread polling window on every ring (§4.2
// ablation).
func (mc *MultiChan) SetNoPoll(v bool) {
	for _, c := range mc.queues {
		c.NoPoll = v
	}
	if mc.urgent != mc.queues[0] {
		mc.urgent.NoPoll = v
	}
}

// --- stats -------------------------------------------------------------------

// Stats returns transport counters aggregated over every ring.
func (mc *MultiChan) Stats() Stats {
	var t Stats
	add := func(s Stats) {
		t.Upcalls += s.Upcalls
		t.SyncUpcalls += s.SyncUpcalls
		t.Downcalls += s.Downcalls
		t.Wakeups += s.Wakeups
		t.SpinPickups += s.SpinPickups
		t.Doorbells += s.Doorbells
		t.DroppedFull += s.DroppedFull
		t.SpinTimeouts += s.SpinTimeouts
		if s.MaxDownBatch > t.MaxDownBatch {
			t.MaxDownBatch = s.MaxDownBatch
		}
	}
	for _, c := range mc.queues {
		add(c.Stats())
	}
	if mc.urgent != mc.queues[0] {
		add(mc.urgent.Stats())
	}
	return t
}

// QueueStats returns queue q's own counters (per-queue doorbell and wake
// rates for the scale harness).
func (mc *MultiChan) QueueStats(q int) Stats { return mc.queues[mc.clamp(q)].Stats() }

// QueueResidency returns queue q's ring-residency histograms (enqueue →
// dequeue latency per message, both directions).
func (mc *MultiChan) QueueResidency(q int) (up, down trace.Hist) {
	return mc.queues[mc.clamp(q)].Residency()
}

// UrgentStats returns the urgent lane's counters.
func (mc *MultiChan) UrgentStats() Stats { return mc.urgent.Stats() }
