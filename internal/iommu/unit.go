package iommu

import (
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// iotlbEntry caches one translation.
type iotlbEntry struct {
	bdf  pci.BDF
	iova mem.Addr
	pte  pte
}

// iotlbSize is the modelled IOTLB capacity in 4-KiB translations; evicted
// FIFO. Real VT-d IOTLBs are of this order.
const iotlbSize = 64

// Unit is the DMA-remapping hardware unit at the root complex. All upstream
// TLPs pass through Translate before touching DRAM or the MSI window.
type Unit struct {
	Cfg   Config
	clock *sim.Clock

	domains map[pci.BDF]*Domain
	nextID  int

	tlb     []iotlbEntry
	tlbHit  uint64
	tlbMiss uint64

	faults []Fault
	// OnFault, if set, is called for every rejected translation (the
	// kernel's fault handler; SUD uses it to flag misbehaving drivers).
	OnFault func(Fault)

	walks uint64
}

// New returns a unit with no domains: DMA from a device without a domain is
// rejected (the safe default SUD needs; the trusted kernel attaches a
// pass-through domain for devices it drives itself).
func New(cfg Config, clock *sim.Clock) *Unit {
	return &Unit{Cfg: cfg, clock: clock, domains: make(map[pci.BDF]*Domain)}
}

// NewDomain allocates a fresh, empty domain.
func (u *Unit) NewDomain() *Domain {
	u.nextID++
	return NewDomain(u.nextID)
}

// Attach routes DMA from bdf through dom. Passing nil detaches the device,
// after which its DMA faults.
func (u *Unit) Attach(bdf pci.BDF, dom *Domain) {
	if dom == nil {
		delete(u.domains, bdf)
	} else {
		u.domains[bdf] = dom
	}
	u.InvalidateDevice(bdf)
}

// Domain returns the domain currently attached to bdf, or nil.
func (u *Unit) Domain(bdf pci.BDF) *Domain { return u.domains[bdf] }

// Translate maps (bdf, iova) to a physical address, enforcing permissions.
// The returned latency is device-side DMA engine time (IOTLB miss walk), not
// CPU time. A rejected translation is logged and reported to OnFault.
func (u *Unit) Translate(bdf pci.BDF, iova mem.Addr, write bool) (mem.Addr, sim.Duration, error) {
	dom, ok := u.domains[bdf]
	if !ok {
		return 0, 0, u.fault(bdf, iova, write, "no domain attached")
	}

	// Intel VT-d: implicit identity mapping for the MSI window in every
	// page table — it is "not possible to prevent this type of attack"
	// on hardware without interrupt remapping (§5.2).
	if u.Cfg.Vendor == VendorIntel && InMSIWindow(iova) {
		return iova, 0, nil
	}

	pageIOVA := mem.PageAlign(iova)
	// IOTLB lookup.
	for _, e := range u.tlb {
		if e.bdf == bdf && e.iova == pageIOVA {
			u.tlbHit++
			if err := checkPerm(e.pte.perm, write); err != "" {
				return 0, 0, u.fault(bdf, iova, write, err)
			}
			return e.pte.phys + mem.Addr(mem.PageOffset(iova)), 0, nil
		}
	}
	u.tlbMiss++
	u.walks++
	entry, present := dom.walk(iova)
	if !present {
		return 0, sim.CostIOMMUWalk, u.fault(bdf, iova, write, "not present in IO page table")
	}
	if err := checkPerm(entry.perm, write); err != "" {
		return 0, sim.CostIOMMUWalk, u.fault(bdf, iova, write, err)
	}
	// Insert into the IOTLB, FIFO eviction.
	if len(u.tlb) >= iotlbSize {
		u.tlb = u.tlb[1:]
	}
	u.tlb = append(u.tlb, iotlbEntry{bdf: bdf, iova: pageIOVA, pte: entry})
	return entry.phys + mem.Addr(mem.PageOffset(iova)), sim.CostIOMMUWalk, nil
}

func checkPerm(p Perm, write bool) string {
	if write && p&PermWrite == 0 {
		return "write to read-only mapping"
	}
	if !write && p&PermRead == 0 {
		return "read of write-only mapping"
	}
	return ""
}

func (u *Unit) fault(bdf pci.BDF, iova mem.Addr, write bool, reason string) error {
	f := Fault{When: u.clock.Now(), BDF: bdf, Addr: iova, Write: write, Reason: reason}
	u.faults = append(u.faults, f)
	if u.OnFault != nil {
		u.OnFault(f)
	}
	return f
}

// Invalidate drops the cached translation for one page of one device.
// The caller charges sim.CostIOTLBInvalidate; the paper found per-buffer
// invalidation "prohibitively expensive" (§3.1.2).
func (u *Unit) Invalidate(bdf pci.BDF, iova mem.Addr) {
	pageIOVA := mem.PageAlign(iova)
	out := u.tlb[:0]
	for _, e := range u.tlb {
		if !(e.bdf == bdf && e.iova == pageIOVA) {
			out = append(out, e)
		}
	}
	u.tlb = out
}

// RevokePage strips the page at iova from the device's domain (single walk)
// and drops any cached IOTLB translation for it, returning the physical page
// the mapping named. The walk cost (sim.CostPageFlipRevoke) and the
// batch-amortised shootdown (sim.CostIOTLBShootdown) are charged by the
// caller, which knows how many pages share one shootdown.
func (u *Unit) RevokePage(bdf pci.BDF, iova mem.Addr) (mem.Addr, bool) {
	dom, ok := u.domains[bdf]
	if !ok {
		return 0, false
	}
	phys, ok := dom.RevokePage(mem.PageAlign(iova))
	if !ok {
		return 0, false
	}
	u.Invalidate(bdf, iova)
	return phys, true
}

// InvalidateDevice drops all cached translations for a device (domain
// switch, driver restart).
func (u *Unit) InvalidateDevice(bdf pci.BDF) {
	out := u.tlb[:0]
	for _, e := range u.tlb {
		if e.bdf != bdf {
			out = append(out, e)
		}
	}
	u.tlb = out
}

// Faults returns the fault log.
func (u *Unit) Faults() []Fault { return u.faults }

// TLBStats returns IOTLB hit/miss counters.
func (u *Unit) TLBStats() (hits, misses uint64) { return u.tlbHit, u.tlbMiss }

// Walks returns the number of page-table walks performed.
func (u *Unit) Walks() uint64 { return u.walks }
