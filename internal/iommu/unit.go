package iommu

import (
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// iotlbEntry caches one translation. Entries are keyed by the issuing
// stream as well as the device, as PASID-tagged IOTLBs are: two streams of
// one device never alias each other's cached translations.
type iotlbEntry struct {
	bdf    pci.BDF
	stream int
	iova   mem.Addr
	pte    pte
}

// iotlbSize is the modelled IOTLB capacity in 4-KiB translations; evicted
// FIFO. Real VT-d IOTLBs are of this order.
const iotlbSize = 64

// queueKey addresses one per-queue sub-domain: the device plus the stream
// tag its hardware queue stamps on DMA (a PASID in real silicon).
type queueKey struct {
	bdf    pci.BDF
	stream int
}

// Unit is the DMA-remapping hardware unit at the root complex. All upstream
// TLPs pass through Translate before touching DRAM or the MSI window.
//
// Besides the per-device domain table, the unit holds per-(device, stream)
// sub-domains: when a TLP carries a non-zero stream tag and a sub-domain is
// attached for it, the walk uses ONLY that sub-domain — a descriptor naming
// a sibling queue's IOVA faults at the walk, which is the queue-granular
// confinement the per-queue recovery plane builds on. Streams without a
// sub-domain fall back to the device domain, so trusted in-kernel drivers
// (passthrough) and drivers predating the split behave exactly as before.
type Unit struct {
	Cfg   Config
	clock *sim.Clock

	domains map[pci.BDF]*Domain
	qdoms   map[queueKey]*Domain
	nextID  int

	tlb     []iotlbEntry
	tlbHit  uint64
	tlbMiss uint64

	faults []Fault
	// OnFault, if set, is called for every rejected translation (the
	// kernel's fault handler; SUD uses it to flag misbehaving drivers).
	OnFault func(Fault)

	walks uint64
}

// New returns a unit with no domains: DMA from a device without a domain is
// rejected (the safe default SUD needs; the trusted kernel attaches a
// pass-through domain for devices it drives itself).
func New(cfg Config, clock *sim.Clock) *Unit {
	return &Unit{
		Cfg:     cfg,
		clock:   clock,
		domains: make(map[pci.BDF]*Domain),
		qdoms:   make(map[queueKey]*Domain),
	}
}

// NewDomain allocates a fresh, empty domain.
func (u *Unit) NewDomain() *Domain {
	u.nextID++
	return NewDomain(u.nextID)
}

// Attach routes DMA from bdf through dom. Passing nil detaches the device,
// after which its DMA faults.
func (u *Unit) Attach(bdf pci.BDF, dom *Domain) {
	if dom == nil {
		delete(u.domains, bdf)
	} else {
		u.domains[bdf] = dom
	}
	u.InvalidateDevice(bdf)
}

// Domain returns the domain currently attached to bdf, or nil.
func (u *Unit) Domain(bdf pci.BDF) *Domain { return u.domains[bdf] }

// AttachQueue routes DMA stamped with stream from bdf through dom — the
// per-queue sub-domain attach. Passing nil detaches the sub-domain, after
// which the stream falls back to the device domain. Stream 0 (untagged DMA)
// cannot carry a sub-domain.
func (u *Unit) AttachQueue(bdf pci.BDF, stream int, dom *Domain) {
	if stream == 0 {
		return
	}
	k := queueKey{bdf: bdf, stream: stream}
	if dom == nil {
		delete(u.qdoms, k)
	} else {
		u.qdoms[k] = dom
	}
	u.InvalidateStream(bdf, stream)
}

// QueueDomain returns the sub-domain attached for (bdf, stream), or nil.
func (u *Unit) QueueDomain(bdf pci.BDF, stream int) *Domain {
	return u.qdoms[queueKey{bdf: bdf, stream: stream}]
}

// QueueDomains reports how many per-queue sub-domains bdf has attached.
func (u *Unit) QueueDomains(bdf pci.BDF) int {
	n := 0
	for k := range u.qdoms {
		if k.bdf == bdf {
			n++
		}
	}
	return n
}

// Translate maps (bdf, iova) to a physical address for untagged DMA.
func (u *Unit) Translate(bdf pci.BDF, iova mem.Addr, write bool) (mem.Addr, sim.Duration, error) {
	return u.TranslateQ(bdf, 0, iova, write)
}

// TranslateQ maps (bdf, stream, iova) to a physical address, enforcing
// permissions. A non-zero stream with an attached sub-domain walks that
// sub-domain exclusively; otherwise the device domain applies. The returned
// latency is device-side DMA engine time (IOTLB miss walk), not CPU time. A
// rejected translation is logged and reported to OnFault.
func (u *Unit) TranslateQ(bdf pci.BDF, stream int, iova mem.Addr, write bool) (mem.Addr, sim.Duration, error) {
	dom, ok := u.domains[bdf]
	if !ok {
		return 0, 0, u.faultQ(bdf, stream, iova, write, "no domain attached")
	}
	if qd, qok := u.qdoms[queueKey{bdf: bdf, stream: stream}]; qok {
		dom = qd
	}

	// Intel VT-d: implicit identity mapping for the MSI window in every
	// page table — it is "not possible to prevent this type of attack"
	// on hardware without interrupt remapping (§5.2). Per-queue
	// sub-domains inherit it: the window is in every page table.
	if u.Cfg.Vendor == VendorIntel && InMSIWindow(iova) {
		return iova, 0, nil
	}

	pageIOVA := mem.PageAlign(iova)
	// IOTLB lookup.
	for _, e := range u.tlb {
		if e.bdf == bdf && e.stream == stream && e.iova == pageIOVA {
			u.tlbHit++
			if err := checkPerm(e.pte.perm, write); err != "" {
				return 0, 0, u.faultQ(bdf, stream, iova, write, err)
			}
			return e.pte.phys + mem.Addr(mem.PageOffset(iova)), 0, nil
		}
	}
	u.tlbMiss++
	u.walks++
	entry, present := dom.walk(iova)
	if !present {
		return 0, sim.CostIOMMUWalk, u.faultQ(bdf, stream, iova, write, "not present in IO page table")
	}
	if err := checkPerm(entry.perm, write); err != "" {
		return 0, sim.CostIOMMUWalk, u.faultQ(bdf, stream, iova, write, err)
	}
	// Insert into the IOTLB, FIFO eviction.
	if len(u.tlb) >= iotlbSize {
		u.tlb = u.tlb[1:]
	}
	u.tlb = append(u.tlb, iotlbEntry{bdf: bdf, stream: stream, iova: pageIOVA, pte: entry})
	return entry.phys + mem.Addr(mem.PageOffset(iova)), sim.CostIOMMUWalk, nil
}

func checkPerm(p Perm, write bool) string {
	if write && p&PermWrite == 0 {
		return "write to read-only mapping"
	}
	if !write && p&PermRead == 0 {
		return "read of write-only mapping"
	}
	return ""
}

func (u *Unit) faultQ(bdf pci.BDF, stream int, iova mem.Addr, write bool, reason string) error {
	f := Fault{When: u.clock.Now(), BDF: bdf, Stream: stream, Addr: iova, Write: write, Reason: reason}
	u.faults = append(u.faults, f)
	if u.OnFault != nil {
		u.OnFault(f)
	}
	return f
}

// Invalidate drops the cached translation for one page of one device.
// The caller charges sim.CostIOTLBInvalidate; the paper found per-buffer
// invalidation "prohibitively expensive" (§3.1.2).
func (u *Unit) Invalidate(bdf pci.BDF, iova mem.Addr) {
	pageIOVA := mem.PageAlign(iova)
	out := u.tlb[:0]
	for _, e := range u.tlb {
		if !(e.bdf == bdf && e.iova == pageIOVA) {
			out = append(out, e)
		}
	}
	u.tlb = out
}

// RevokePage strips the page at iova from the device's domain — and from
// any per-queue sub-domain that maps it — in a single walk each, and drops
// every cached IOTLB translation for it, returning the physical page the
// mapping named. The walk cost (sim.CostPageFlipRevoke) and the
// batch-amortised shootdown (sim.CostIOTLBShootdown) are charged by the
// caller, which knows how many pages share one shootdown.
func (u *Unit) RevokePage(bdf pci.BDF, iova mem.Addr) (mem.Addr, bool) {
	dom, ok := u.domains[bdf]
	if !ok {
		return 0, false
	}
	page := mem.PageAlign(iova)
	phys, ok := dom.RevokePage(page)
	for k, qd := range u.qdoms {
		if k.bdf == bdf {
			if p, qok := qd.RevokePage(page); qok && !ok {
				phys, ok = p, true
			}
		}
	}
	if !ok {
		return 0, false
	}
	u.Invalidate(bdf, iova)
	return phys, true
}

// InvalidateDevice drops all cached translations for a device, every stream
// included (domain switch, driver restart).
func (u *Unit) InvalidateDevice(bdf pci.BDF) {
	out := u.tlb[:0]
	for _, e := range u.tlb {
		if e.bdf != bdf {
			out = append(out, e)
		}
	}
	u.tlb = out
}

// InvalidateStream drops all cached translations one stream of a device
// holds (sub-domain attach/revoke, queue quarantine).
func (u *Unit) InvalidateStream(bdf pci.BDF, stream int) {
	out := u.tlb[:0]
	for _, e := range u.tlb {
		if !(e.bdf == bdf && e.stream == stream) {
			out = append(out, e)
		}
	}
	u.tlb = out
}

// StreamFaults counts logged faults for one stream of a device — the
// per-queue breach evidence the supervisor's policy plane grades.
func (u *Unit) StreamFaults(bdf pci.BDF, stream int) uint64 {
	var n uint64
	for _, f := range u.faults {
		if f.BDF == bdf && f.Stream == stream {
			n++
		}
	}
	return n
}

// Faults returns the fault log.
func (u *Unit) Faults() []Fault { return u.faults }

// TLBStats returns IOTLB hit/miss counters.
func (u *Unit) TLBStats() (hits, misses uint64) { return u.tlbHit, u.tlbMiss }

// Walks returns the number of page-table walks performed.
func (u *Unit) Walks() uint64 { return u.walks }
