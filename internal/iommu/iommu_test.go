package iommu

import (
	"testing"
	"testing/quick"

	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

var devA = pci.MakeBDF(1, 0, 0)
var devB = pci.MakeBDF(1, 1, 0)

func newUnit(cfg Config) *Unit {
	return New(cfg, &sim.Clock{})
}

func TestDomainMapUnmap(t *testing.T) {
	d := NewDomain(1)
	if err := d.Map(0x42430000, 0x800000, PermRW); err != nil {
		t.Fatal(err)
	}
	if d.Pages() != 1 {
		t.Fatalf("pages = %d", d.Pages())
	}
	if err := d.Map(0x42430000, 0x900000, PermRW); err == nil {
		t.Fatal("double map succeeded")
	}
	if !d.Unmap(0x42430000) {
		t.Fatal("unmap of mapped page returned false")
	}
	if d.Unmap(0x42430000) {
		t.Fatal("unmap of unmapped page returned true")
	}
}

func TestDomainRejectsUnaligned(t *testing.T) {
	d := NewDomain(1)
	if err := d.Map(0x1001, 0x2000, PermRW); err == nil {
		t.Fatal("unaligned IOVA accepted")
	}
	if err := d.Map(0x1000, 0x2001, PermRW); err == nil {
		t.Fatal("unaligned phys accepted")
	}
	if err := d.Map(0x1000, 0x2000, 0); err == nil {
		t.Fatal("permission-less mapping accepted")
	}
}

func TestTranslateNoDomainFaults(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	_, _, err := u.Translate(devA, 0x1000, false)
	if err == nil {
		t.Fatal("translation without domain succeeded")
	}
	if len(u.Faults()) != 1 {
		t.Fatalf("fault log has %d entries, want 1", len(u.Faults()))
	}
}

func TestTranslateMappedPage(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	if err := d.MapRange(0x42430000, 0x800000, 3*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, d)
	phys, lat, err := u.Translate(devA, 0x42431234, true)
	if err != nil {
		t.Fatal(err)
	}
	if phys != 0x801234 {
		t.Fatalf("translated to %#x, want 0x801234", uint64(phys))
	}
	if lat != sim.CostIOMMUWalk {
		t.Fatalf("first translation latency %v, want walk cost", lat)
	}
	// Second access to the same page hits the IOTLB: no walk latency.
	_, lat, err = u.Translate(devA, 0x42431000, false)
	if err != nil || lat != 0 {
		t.Fatalf("IOTLB hit: lat=%v err=%v", lat, err)
	}
	hits, misses := u.TLBStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("tlb stats = %d/%d, want 1/1", hits, misses)
	}
}

func TestTranslatePermissions(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	if err := d.Map(0x10000, 0x20000, PermRead); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, d)
	if _, _, err := u.Translate(devA, 0x10000, false); err != nil {
		t.Fatal("read of readable page faulted:", err)
	}
	if _, _, err := u.Translate(devA, 0x10000, true); err == nil {
		t.Fatal("write to read-only mapping succeeded")
	}
	// The same denial must hold on an IOTLB hit path.
	if _, _, err := u.Translate(devA, 0x10000, true); err == nil {
		t.Fatal("write to read-only mapping succeeded via IOTLB")
	}
}

func TestDomainIsolationBetweenDevices(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	dA := u.NewDomain()
	if err := dA.Map(0x10000, 0x20000, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, dA)
	u.Attach(devB, u.NewDomain())
	if _, _, err := u.Translate(devB, 0x10000, true); err == nil {
		t.Fatal("device B translated through device A's domain")
	}
}

func TestIntelImplicitMSIMapping(t *testing.T) {
	// §5.2: "Intel VT-d always includes an implicit identity mapping for
	// the MSI address in every page table" — even an empty domain
	// translates MSI-window writes.
	u := newUnit(Config{Vendor: VendorIntel})
	u.Attach(devA, u.NewDomain())
	phys, _, err := u.Translate(devA, MSIBase+0x123, true)
	if err != nil {
		t.Fatal("Intel MSI-window DMA faulted; paper says it cannot be prevented:", err)
	}
	if phys != MSIBase+0x123 {
		t.Fatalf("implicit MSI mapping not identity: %#x", uint64(phys))
	}
}

func TestAMDNoImplicitMSIMapping(t *testing.T) {
	// §6: on AMD "we could simply unmap the MSI address ... to prevent
	// further interrupts from a device".
	u := newUnit(Config{Vendor: VendorAMD})
	d := u.NewDomain()
	u.Attach(devA, d)
	if _, _, err := u.Translate(devA, MSIBase, true); err == nil {
		t.Fatal("AMD MSI-window DMA succeeded without a mapping")
	}
	// Once mapped (the normal configuration), it works...
	if err := d.MapRange(MSIBase, MSIBase, uint64(MSILimit-MSIBase), PermWrite); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Translate(devA, MSIBase, true); err != nil {
		t.Fatal("mapped AMD MSI write faulted:", err)
	}
	// ...and unmapping it (the storm response) stops it again.
	d.UnmapRange(MSIBase, uint64(MSILimit-MSIBase))
	u.InvalidateDevice(devA)
	if _, _, err := u.Translate(devA, MSIBase, true); err == nil {
		t.Fatal("AMD MSI write succeeded after unmap")
	}
}

func TestInvalidateSinglePage(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	if err := d.Map(0x10000, 0x20000, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, d)
	if _, _, err := u.Translate(devA, 0x10000, true); err != nil {
		t.Fatal(err)
	}
	// Change the mapping underneath the IOTLB; stale entry must go away
	// only after Invalidate.
	d.Unmap(0x10000)
	if _, _, err := u.Translate(devA, 0x10000, true); err != nil {
		t.Fatal("expected stale IOTLB hit to still translate") // hardware behaviour
	}
	u.Invalidate(devA, 0x10000)
	if _, _, err := u.Translate(devA, 0x10000, true); err == nil {
		t.Fatal("translation survived IOTLB invalidation and unmap")
	}
}

func TestIOTLBEviction(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	u.Attach(devA, d)
	for i := 0; i < iotlbSize+8; i++ {
		iova := mem.Addr(0x100000 + i*mem.PageSize)
		if err := d.Map(iova, iova, PermRW); err != nil {
			t.Fatal(err)
		}
		if _, _, err := u.Translate(devA, iova, false); err != nil {
			t.Fatal(err)
		}
	}
	// The first page was evicted: translating it again is a miss.
	_, before := u.TLBStats()
	if _, _, err := u.Translate(devA, 0x100000, false); err != nil {
		t.Fatal(err)
	}
	if _, after := u.TLBStats(); after != before+1 {
		t.Fatal("expected FIFO eviction to force a miss on the oldest page")
	}
}

func TestMappingsWalkMergesRuns(t *testing.T) {
	d := NewDomain(1)
	// TX ring: one page; RX ring: two pages; TX buffers: 8 pages.
	check := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	check(d.MapRange(0x42430000, 0x800000, mem.PageSize, PermRW))
	check(d.MapRange(0x42431000, 0x801000, 2*mem.PageSize, PermRW))
	check(d.MapRange(0x42433000, 0x900000, 8*mem.PageSize, PermRW))
	ms := d.Mappings()
	// First two runs are physically contiguous and same-perm, so they
	// merge; the third starts a new physical run.
	if len(ms) != 2 {
		t.Fatalf("got %d mappings %v, want 2", len(ms), ms)
	}
	if ms[0].IOVA != 0x42430000 || ms[0].End != 0x42433000 {
		t.Fatalf("first mapping %v", ms[0])
	}
	if ms[1].IOVA != 0x42433000 || ms[1].End != 0x42433000+8*mem.PageSize {
		t.Fatalf("second mapping %v", ms[1])
	}
	if ms[0].String() == "" {
		t.Fatal("empty mapping string")
	}
}

func TestFaultCallbackAndError(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	u.Attach(devA, u.NewDomain())
	var got []Fault
	u.OnFault = func(f Fault) { got = append(got, f) }
	_, _, err := u.Translate(devA, 0xDEAD0000, true)
	if err == nil || len(got) != 1 {
		t.Fatalf("err=%v callbacks=%d", err, len(got))
	}
	f, ok := err.(Fault)
	if !ok || !f.Write || f.BDF != devA {
		t.Fatalf("fault error = %#v", err)
	}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestDetachRestoresFaulting(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	if err := d.Map(0x10000, 0x10000, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, d)
	if _, _, err := u.Translate(devA, 0x10000, false); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, nil)
	if _, _, err := u.Translate(devA, 0x10000, false); err == nil {
		t.Fatal("translation after detach succeeded")
	}
}

// Property: Map then walk-based Mappings always contains the mapped page
// with correct physical address; Unmap removes it.
func TestMapUnmapProperty(t *testing.T) {
	f := func(iovaPage, physPage uint16, wr bool) bool {
		d := NewDomain(1)
		iova := mem.Addr(iovaPage) << mem.PageShift
		phys := mem.Addr(physPage) << mem.PageShift
		perm := PermRead
		if wr {
			perm = PermRW
		}
		if err := d.Map(iova, phys, perm); err != nil {
			return false
		}
		found := false
		for _, m := range d.Mappings() {
			if iova >= m.IOVA && iova < m.End {
				if m.Phys+(iova-m.IOVA) != phys || m.Perm != perm {
					return false
				}
				found = true
			}
		}
		if !found {
			return false
		}
		d.Unmap(iova)
		return len(d.Mappings()) == 0 && d.Pages() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: translation of any mapped address preserves the page offset.
func TestTranslateOffsetProperty(t *testing.T) {
	u := newUnit(Config{Vendor: VendorIntel})
	d := u.NewDomain()
	if err := d.MapRange(0x40000000, 0x1000000, 64*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Attach(devA, d)
	f := func(off uint32) bool {
		o := mem.Addr(off % (64 * mem.PageSize))
		phys, _, err := u.Translate(devA, 0x40000000+o, false)
		return err == nil && phys == 0x1000000+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
