// Package iommu models the DMA-remapping hardware SUD uses to confine
// device-initiated memory operations (§3.2.2): per-device IO page tables with
// an explicit two-level walk, an IOTLB, a fault log, and the vendor asymmetry
// the paper's security evaluation turns on — Intel VT-d carries an implicit
// identity mapping for the MSI address window in every page table (so a
// malicious driver can always DMA to the MSI region, §5.2), while AMD's IOMMU
// does not (so unmapping the MSI page stops interrupt storms, §6).
package iommu

import (
	"fmt"
	"sort"

	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// The x86 MSI address window. Writes landing here (after translation) are
// interrupt messages, not DRAM traffic.
const (
	MSIBase  mem.Addr = 0xFEE00000
	MSILimit mem.Addr = 0xFEF00000
)

// InMSIWindow reports whether a translated physical address is an MSI write.
func InMSIWindow(a mem.Addr) bool { return a >= MSIBase && a < MSILimit }

// Perm is a mapping permission mask.
type Perm uint8

const (
	// PermRead allows device reads (DMA from memory to device).
	PermRead Perm = 1 << 0
	// PermWrite allows device writes (DMA from device to memory).
	PermWrite Perm = 1 << 1
	// PermRW allows both.
	PermRW = PermRead | PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "r-"
	case PermWrite:
		return "-w"
	case PermRW:
		return "rw"
	default:
		return "--"
	}
}

// Vendor selects the modelled IOMMU implementation.
type Vendor int

const (
	// VendorIntel models Intel VT-d: implicit MSI identity mapping in
	// every domain; interrupt remapping if the chipset supports it.
	VendorIntel Vendor = iota
	// VendorAMD models AMD's IOMMU: no implicit MSI mapping.
	VendorAMD
)

func (v Vendor) String() string {
	if v == VendorAMD {
		return "AMD"
	}
	return "Intel VT-d"
}

// Config describes the platform's IOMMU capabilities.
type Config struct {
	Vendor Vendor
	// InterruptRemapping reports whether the chipset supports VT-d
	// interrupt remapping. The paper's test machine did not (§5.2),
	// leaving it vulnerable to MSI-window DMA livelock.
	InterruptRemapping bool
}

// Fault is one rejected DMA translation. Stream is the PASID-like queue tag
// the TLP carried (0 = untagged): with per-queue sub-domains attached it
// names the hardware queue whose descriptor caused the fault, which is what
// lets the supervisor quarantine a single queue instead of the process.
type Fault struct {
	When   sim.Time
	BDF    pci.BDF
	Stream int
	Addr   mem.Addr
	Write  bool
	Reason string
}

func (f Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	if f.Stream != 0 {
		return fmt.Sprintf("iommu: DMA %s fault: device %s stream %d, IO virtual address %#x: %s",
			op, f.BDF, f.Stream, uint64(f.Addr), f.Reason)
	}
	return fmt.Sprintf("iommu: DMA %s fault: device %s, IO virtual address %#x: %s",
		op, f.BDF, uint64(f.Addr), f.Reason)
}

// Two-level IO page table geometry: the top level indexes 2 MiB regions,
// each leaf maps 512 4-KiB pages.
const leafEntries = 512

type pte struct {
	phys    mem.Addr
	perm    Perm
	present bool
}

type leafTable struct {
	entries [leafEntries]pte
}

// Mapping is one contiguous run of identical-permission IO-virtual to
// physical translation, as recovered by walking the page directory. The
// Figure 9 experiment prints these.
type Mapping struct {
	IOVA  mem.Addr // start IO virtual address
	End   mem.Addr // one past the last mapped byte
	Phys  mem.Addr // start physical address
	Perm  Perm
	Ident bool // identity (IOVA == Phys) mapping
}

func (m Mapping) String() string {
	return fmt.Sprintf("%#010x-%#010x -> %#010x %s", uint64(m.IOVA), uint64(m.End), uint64(m.Phys), m.Perm)
}

// Domain is one protection domain: the IO page table the IOMMU applies to
// every DMA from the devices attached to it. SUD gives each untrusted driver
// process its own domain.
type Domain struct {
	ID     int
	leaves map[uint64]*leafTable
	pages  int

	// Passthrough makes every address translate to itself with full
	// permissions. The kernel attaches a passthrough domain to devices
	// driven by trusted in-kernel drivers — the Linux baseline
	// configuration in which a malicious driver's DMA goes anywhere.
	Passthrough bool
}

// NewDomain returns an empty domain.
func NewDomain(id int) *Domain {
	return &Domain{ID: id, leaves: make(map[uint64]*leafTable)}
}

func split(iova mem.Addr) (top uint64, idx int) {
	return uint64(iova) >> 21, int(uint64(iova) >> mem.PageShift & (leafEntries - 1))
}

// Map installs a translation for one page. iova and phys must be
// page-aligned; remapping an already-present page is an error (the kernel
// must unmap first, as with real IOMMU drivers).
func (d *Domain) Map(iova, phys mem.Addr, perm Perm) error {
	if !mem.IsPageAligned(iova) || !mem.IsPageAligned(phys) {
		return fmt.Errorf("iommu: unaligned mapping %#x -> %#x", uint64(iova), uint64(phys))
	}
	if perm&PermRW == 0 {
		return fmt.Errorf("iommu: mapping %#x with no permissions", uint64(iova))
	}
	top, idx := split(iova)
	lt := d.leaves[top]
	if lt == nil {
		lt = &leafTable{}
		d.leaves[top] = lt
	}
	if lt.entries[idx].present {
		return fmt.Errorf("iommu: IOVA %#x already mapped", uint64(iova))
	}
	lt.entries[idx] = pte{phys: phys, perm: perm, present: true}
	d.pages++
	return nil
}

// MapRange maps size bytes starting at iova to consecutive physical pages at
// phys.
func (d *Domain) MapRange(iova, phys mem.Addr, size uint64, perm Perm) error {
	for off := uint64(0); off < size; off += mem.PageSize {
		if err := d.Map(iova+mem.Addr(off), phys+mem.Addr(off), perm); err != nil {
			return err
		}
	}
	return nil
}

// Unmap removes the translation for the page at iova, reporting whether one
// was present.
func (d *Domain) Unmap(iova mem.Addr) bool {
	top, idx := split(iova)
	lt := d.leaves[top]
	if lt == nil || !lt.entries[idx].present {
		return false
	}
	lt.entries[idx] = pte{}
	d.pages--
	return true
}

// RevokePage atomically strips the translation for the page at iova in a
// single walk, returning the physical page it mapped. This is the page-flip
// ownership transfer (§3.1.2 amortised guard): after RevokePage (plus an
// IOTLB shootdown) the driver's device can no longer DMA to the page and the
// driver process loses its window onto it, so the kernel may read the
// contents by reference without a guard copy. The caller charges
// sim.CostPageFlipRevoke. Returns ok=false if the page was not mapped.
func (d *Domain) RevokePage(iova mem.Addr) (phys mem.Addr, ok bool) {
	top, idx := split(iova)
	lt := d.leaves[top]
	if lt == nil || !lt.entries[idx].present {
		return 0, false
	}
	phys = lt.entries[idx].phys
	lt.entries[idx] = pte{}
	d.pages--
	return phys, true
}

// UnmapRange unmaps size bytes starting at iova.
func (d *Domain) UnmapRange(iova mem.Addr, size uint64) {
	for off := uint64(0); off < size; off += mem.PageSize {
		d.Unmap(iova + mem.Addr(off))
	}
}

// Pages returns the number of mapped 4-KiB pages.
func (d *Domain) Pages() int { return d.pages }

// walk performs the two-level page table walk.
func (d *Domain) walk(iova mem.Addr) (pte, bool) {
	if d.Passthrough {
		return pte{phys: mem.PageAlign(iova), perm: PermRW, present: true}, true
	}
	top, idx := split(iova)
	lt := d.leaves[top]
	if lt == nil || !lt.entries[idx].present {
		return pte{}, false
	}
	return lt.entries[idx], true
}

// Mappings walks the page directory and returns the merged, sorted list of
// contiguous mappings — exactly what the paper did to produce Figure 9
// ("We read all mappings by walking the e1000e device's IO page directory").
func (d *Domain) Mappings() []Mapping {
	type page struct {
		iova, phys mem.Addr
		perm       Perm
	}
	var pages []page
	for top, lt := range d.leaves {
		for i, e := range lt.entries {
			if e.present {
				pages = append(pages, page{
					iova: mem.Addr(top<<21 | uint64(i)<<mem.PageShift),
					phys: e.phys,
					perm: e.perm,
				})
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].iova < pages[j].iova })
	var out []Mapping
	for _, p := range pages {
		n := len(out)
		if n > 0 && out[n-1].End == p.iova && out[n-1].Perm == p.perm &&
			out[n-1].Phys+(p.iova-out[n-1].IOVA) == p.phys {
			out[n-1].End += mem.PageSize
			continue
		}
		out = append(out, Mapping{
			IOVA:  p.iova,
			End:   p.iova + mem.PageSize,
			Phys:  p.phys,
			Perm:  p.perm,
			Ident: p.iova == p.phys,
		})
	}
	return out
}
