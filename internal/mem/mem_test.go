package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPageHelpers(t *testing.T) {
	if PageAlign(0x1234) != 0x1000 {
		t.Fatalf("PageAlign(0x1234) = %#x", uint64(PageAlign(0x1234)))
	}
	if PageOffset(0x1234) != 0x234 {
		t.Fatalf("PageOffset(0x1234) = %#x", PageOffset(0x1234))
	}
	if !IsPageAligned(0x2000) || IsPageAligned(0x2001) {
		t.Fatal("IsPageAligned wrong")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.AllocRange(0x1000, 2*PageSize)
	data := []byte("hello, physical world")
	if err := m.Write(0x1ff0, data); err != nil { // spans a page boundary
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(0x1ff0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip got %q, want %q", got, data)
	}
}

func TestUnpopulatedAccessFaults(t *testing.T) {
	m := New()
	err := m.Read(0x5000, make([]byte, 4))
	ae, ok := err.(*AccessError)
	if !ok {
		t.Fatalf("read fault error = %v, want *AccessError", err)
	}
	if ae.Write {
		t.Fatal("read fault marked as write")
	}
	err = m.Write(0x5000, []byte{1})
	ae, ok = err.(*AccessError)
	if !ok || !ae.Write {
		t.Fatalf("write fault = %v, want write AccessError", err)
	}
	if ae.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestPartialWriteStopsAtFault(t *testing.T) {
	m := New()
	m.AllocPage(0x1000)
	// Page 0x2000 is unpopulated: the write should fill the end of page
	// 0x1000 then fault.
	data := bytes.Repeat([]byte{0xAB}, 32)
	err := m.Write(0x1ff0, data)
	if err == nil {
		t.Fatal("write across unpopulated page did not fault")
	}
	got := make([]byte, 16)
	m.MustRead(0x1ff0, got)
	if !bytes.Equal(got, data[:16]) {
		t.Fatal("bytes before the fault were not written")
	}
}

func TestFreePageFaultsAfter(t *testing.T) {
	m := New()
	m.AllocPage(0x3000)
	m.MustWrite(0x3000, []byte{1, 2, 3})
	m.FreePage(0x3000)
	if err := m.Read(0x3000, make([]byte, 1)); err == nil {
		t.Fatal("read of freed page did not fault")
	}
}

func TestU32U64(t *testing.T) {
	m := New()
	m.AllocPage(0)
	if err := m.WriteU32(4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU32(4)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadU32 = %#x, %v", v, err)
	}
	// Little-endian check.
	b := make([]byte, 4)
	m.MustRead(4, b)
	if b[0] != 0xEF || b[3] != 0xDE {
		t.Fatalf("WriteU32 not little-endian: % x", b)
	}
	if err := m.WriteU64(8, 0x0123456789ABCDEF); err != nil {
		t.Fatal(err)
	}
	v64, err := m.ReadU64(8)
	if err != nil || v64 != 0x0123456789ABCDEF {
		t.Fatalf("ReadU64 = %#x, %v", v64, err)
	}
	if _, err := m.ReadU32(0x9000); err == nil {
		t.Fatal("ReadU32 of unpopulated page did not fault")
	}
	if _, err := m.ReadU64(0x9000); err == nil {
		t.Fatal("ReadU64 of unpopulated page did not fault")
	}
}

func TestStatsCount(t *testing.T) {
	m := New()
	m.AllocPage(0)
	m.MustWrite(0, make([]byte, 10))
	m.MustRead(0, make([]byte, 6))
	r, w, in, out := m.Stats()
	if r != 1 || w != 1 || in != 10 || out != 6 {
		t.Fatalf("stats = %d %d %d %d", r, w, in, out)
	}
}

func TestAllocatorContiguous(t *testing.T) {
	m := New()
	a := NewAllocator(m, 0x100000, 16*PageSize)
	p1, ok := a.AllocPages(4)
	if !ok {
		t.Fatal("alloc failed")
	}
	p2, ok := a.AllocPages(2)
	if !ok {
		t.Fatal("alloc failed")
	}
	if p2 != p1+4*PageSize {
		t.Fatalf("allocations not contiguous: %#x then %#x", uint64(p1), uint64(p2))
	}
	if !m.Populated(p1) || !m.Populated(p2+PageSize) {
		t.Fatal("allocated pages not populated")
	}
	if a.InUse() != 6*PageSize {
		t.Fatalf("InUse = %d, want %d", a.InUse(), 6*PageSize)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	m := New()
	a := NewAllocator(m, 0x100000, 2*PageSize)
	if _, ok := a.AllocPages(3); ok {
		t.Fatal("over-allocation succeeded")
	}
	if _, ok := a.AllocPages(2); !ok {
		t.Fatal("exact-fit allocation failed")
	}
	if _, ok := a.AllocPages(1); ok {
		t.Fatal("allocation from empty allocator succeeded")
	}
}

func TestAllocatorFreeList(t *testing.T) {
	m := New()
	a := NewAllocator(m, 0x100000, 4*PageSize)
	p, _ := a.AllocPages(1)
	a.FreePages(p, 1)
	if m.Populated(p) {
		t.Fatal("freed page still populated")
	}
	if a.InUse() != 0 {
		t.Fatalf("InUse after free = %d", a.InUse())
	}
	p2, ok := a.AllocPages(1)
	if !ok || p2 != p {
		t.Fatalf("free list not reused: got %#x want %#x", uint64(p2), uint64(p))
	}
}

func TestAllocatorBadArgs(t *testing.T) {
	m := New()
	a := NewAllocator(m, 0x100000, 4*PageSize)
	if _, ok := a.AllocPages(0); ok {
		t.Fatal("AllocPages(0) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned allocator start did not panic")
		}
	}()
	NewAllocator(m, 0x100001, PageSize)
}

// Property: any write followed by a read of the same range returns the same
// bytes, for arbitrary offsets and lengths within a populated region.
func TestRoundTripProperty(t *testing.T) {
	m := New()
	m.AllocRange(0, 64*PageSize)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := Addr(uint64(off) * 7 % (63 * PageSize)) // spread across pages, in range
		if err := m.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PageAlign is idempotent and never increases the address.
func TestPageAlignProperty(t *testing.T) {
	f := func(a uint64) bool {
		al := PageAlign(Addr(a))
		return al <= Addr(a) && PageAlign(al) == al && uint64(Addr(a)-al) < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
