// Package mem models the machine's physical memory (DRAM) as a sparse set of
// 4 KiB pages. Every byte a device DMAs, every descriptor a driver writes,
// lives here; nothing in the simulation short-circuits around it, so a DMA to
// a wrong address corrupts exactly the bytes a real DMA would.
package mem

import "fmt"

// PageSize is the physical page size, 4 KiB, matching x86 and the IOMMU page
// granularity SUD depends on (§3.2.1: MMIO ranges must be page-aligned).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a physical (or bus/IO-virtual) address.
type Addr uint64

// PageAlign rounds a down to a page boundary.
func PageAlign(a Addr) Addr { return a &^ (PageSize - 1) }

// PageOffset returns a's offset within its page.
func PageOffset(a Addr) uint64 { return uint64(a) & (PageSize - 1) }

// IsPageAligned reports whether a sits on a page boundary.
func IsPageAligned(a Addr) bool { return PageOffset(a) == 0 }

// AccessError describes a physical memory access that touched an
// unpopulated address.
type AccessError struct {
	Addr  Addr
	Write bool
}

func (e *AccessError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("mem: %s of unpopulated physical address %#x", op, uint64(e.Addr))
}

// Memory is sparse physical memory. The zero value is empty; populate pages
// with AllocPage/AllocRange, or declare DRAM with AddRAMRange for lazy
// population on first touch.
type Memory struct {
	pages map[Addr]*[PageSize]byte
	rams  []ramRange
	holes map[Addr]bool // explicitly freed pages inside RAM ranges

	// Stats.
	reads, writes     uint64
	bytesIn, bytesOut uint64
}

type ramRange struct {
	base Addr
	size uint64
}

// New returns empty physical memory.
func New() *Memory {
	return &Memory{
		pages: make(map[Addr]*[PageSize]byte),
		holes: make(map[Addr]bool),
	}
}

// AddRAMRange declares [base, base+size) as DRAM. Pages inside a RAM range
// are populated lazily on first access, so declaring gigabytes is free.
func (m *Memory) AddRAMRange(base Addr, size uint64) {
	m.rams = append(m.rams, ramRange{base: PageAlign(base), size: size})
}

// inRAM reports whether addr falls inside a declared RAM range.
func (m *Memory) inRAM(addr Addr) bool {
	for _, r := range m.rams {
		if addr >= r.base && uint64(addr-r.base) < r.size {
			return true
		}
	}
	return false
}

// page returns the backing page for addr, lazily populating RAM pages.
func (m *Memory) page(addr Addr) (*[PageSize]byte, bool) {
	base := PageAlign(addr)
	pg, ok := m.pages[base]
	if !ok && !m.holes[base] && m.inRAM(base) {
		pg = new([PageSize]byte)
		m.pages[base] = pg
		ok = true
	}
	return pg, ok
}

// AllocPage populates the page containing addr (idempotent) and returns its
// base address.
func (m *Memory) AllocPage(addr Addr) Addr {
	base := PageAlign(addr)
	delete(m.holes, base)
	if _, ok := m.pages[base]; !ok {
		m.pages[base] = new([PageSize]byte)
	}
	return base
}

// AllocRange populates every page overlapping [addr, addr+size).
func (m *Memory) AllocRange(addr Addr, size uint64) {
	if size == 0 {
		return
	}
	for p := PageAlign(addr); p < addr+Addr(size); p += PageSize {
		m.AllocPage(p)
	}
}

// FreePage removes the page containing addr; later access faults even if the
// page is inside a declared RAM range.
func (m *Memory) FreePage(addr Addr) {
	base := PageAlign(addr)
	delete(m.pages, base)
	if m.inRAM(base) {
		m.holes[base] = true
	}
}

// Populated reports whether the page containing addr is accessible.
func (m *Memory) Populated(addr Addr) bool {
	base := PageAlign(addr)
	if _, ok := m.pages[base]; ok {
		return true
	}
	return !m.holes[base] && m.inRAM(base)
}

// PageCount returns the number of populated pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Read copies len(p) bytes starting at addr into p. It fails with
// *AccessError if any touched page is unpopulated; in that case p may be
// partially filled.
func (m *Memory) Read(addr Addr, p []byte) error {
	m.reads++
	m.bytesOut += uint64(len(p))
	for len(p) > 0 {
		pg, ok := m.page(addr)
		if !ok {
			return &AccessError{Addr: addr}
		}
		off := PageOffset(addr)
		n := copy(p, pg[off:])
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// Write copies p into physical memory starting at addr. It fails with
// *AccessError if any touched page is unpopulated; preceding pages will have
// been written (as real partial DMA would).
func (m *Memory) Write(addr Addr, p []byte) error {
	m.writes++
	m.bytesIn += uint64(len(p))
	for len(p) > 0 {
		pg, ok := m.page(addr)
		if !ok {
			return &AccessError{Addr: addr, Write: true}
		}
		off := PageOffset(addr)
		n := copy(pg[off:], p)
		p = p[n:]
		addr += Addr(n)
	}
	return nil
}

// ReadU32 reads a little-endian uint32 at addr.
func (m *Memory) ReadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// WriteU32 writes v little-endian at addr.
func (m *Memory) WriteU32(addr Addr, v uint32) error {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return m.Write(addr, b[:])
}

// ReadU64 reads a little-endian uint64 at addr.
func (m *Memory) ReadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := m.Read(addr, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// WriteU64 writes v little-endian at addr.
func (m *Memory) WriteU64(addr Addr, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return m.Write(addr, b[:])
}

// Slice returns a direct view of n bytes of backing store at addr, if the
// range lies within a single populated page. It models zero-copy kernel
// access to DRAM (an skb pointing into a DMA buffer); mutations through the
// slice are immediately visible to DMA and vice versa.
func (m *Memory) Slice(addr Addr, n int) ([]byte, bool) {
	if n <= 0 || PageOffset(addr)+uint64(n) > PageSize {
		return nil, false
	}
	pg, ok := m.page(addr)
	if !ok {
		return nil, false
	}
	off := PageOffset(addr)
	return pg[off : off+uint64(n) : off+uint64(n)], true
}

// MustRead is Read that panics on fault; for trusted kernel/test paths where
// a fault indicates a bug in the simulation itself.
func (m *Memory) MustRead(addr Addr, p []byte) {
	if err := m.Read(addr, p); err != nil {
		panic(err)
	}
}

// MustWrite is Write that panics on fault.
func (m *Memory) MustWrite(addr Addr, p []byte) {
	if err := m.Write(addr, p); err != nil {
		panic(err)
	}
}

// Stats returns cumulative access counts.
func (m *Memory) Stats() (reads, writes, bytesIn, bytesOut uint64) {
	return m.reads, m.writes, m.bytesIn, m.bytesOut
}

// Allocator hands out physical pages from a region, page-at-a-time, with a
// free list. The kernel uses one for its own memory and for DMA buffers it
// grants to driver processes.
type Allocator struct {
	mem   *Memory
	start Addr
	next  Addr
	end   Addr
	free  []Addr
}

// NewAllocator manages [start, start+size) of mem. start must be
// page-aligned.
func NewAllocator(mem *Memory, start Addr, size uint64) *Allocator {
	if !IsPageAligned(start) {
		panic(fmt.Sprintf("mem: allocator start %#x not page aligned", uint64(start)))
	}
	return &Allocator{mem: mem, start: start, next: start, end: start + Addr(size)}
}

// AllocPages allocates n contiguous pages, populating them, and returns the
// base address. Contiguity matters: DMA ring buffers are physically
// contiguous on real hardware. Returns 0 and false when exhausted.
func (a *Allocator) AllocPages(n int) (Addr, bool) {
	if n <= 0 {
		return 0, false
	}
	if n == 1 && len(a.free) > 0 {
		p := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		a.mem.AllocPage(p)
		return p, true
	}
	need := Addr(n * PageSize)
	if a.next+need > a.end {
		return 0, false
	}
	base := a.next
	a.next += need
	a.mem.AllocRange(base, uint64(need))
	return base, true
}

// FreePages returns n pages starting at base to the allocator and
// depopulates them so stale access faults.
func (a *Allocator) FreePages(base Addr, n int) {
	for i := 0; i < n; i++ {
		p := base + Addr(i*PageSize)
		a.mem.FreePage(p)
		a.free = append(a.free, p)
	}
}

// InUse returns the number of bytes handed out and not freed.
func (a *Allocator) InUse() uint64 {
	return uint64(a.next-a.start) - uint64(len(a.free))*PageSize
}
