// Package blkproxy is SUD's block proxy driver: the in-kernel module that
// implements the kernel block contract on behalf of an untrusted user-space
// storage driver, translating block-core submissions into uchan upcalls and
// driver completions back into kernel operations — the storage sibling of
// ethproxy.
//
// It makes no liveness or semantic assumptions about the driver process:
// open/stop are interruptible synchronous upcalls, submission is
// asynchronous with per-queue shared-slot backpressure, and every
// shared-memory reference arriving in a completion is validated against the
// driver's own DMA allocations before the kernel touches it. Read payloads
// are guard-copied out of shared memory before any consumer sees them
// (§3.1.2's TOCTOU discipline; block data carries no checksum to fuse with,
// so the guard is a plain copy), and batched completion framing is decoded
// defensively — malformed batches are dropped and counted, never
// dispatched.
//
// The proxy also enforces the temporal member of that guard family: it
// records the device's incarnation epoch at bind time, and once the block
// core begins shadow recovery (driver death, §2/§5.2) every downcall from
// this — now dead — incarnation is rejected wholesale, so a late or forged
// completion cannot match a tag that replay has made live again.
package blkproxy

import (
	"errors"
	"fmt"
	"strings"

	"sud/internal/drivers/api"
	"sud/internal/kernel/blockdev"
	"sud/internal/mem"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// Upcall operations (kernel → driver).
const (
	OpOpen   = protocol.BlockBase + iota // sync
	OpStop                               // sync
	OpSubmit                             // async; Args: [0]=flags (bit 0 write, bit 1 FUA), [1]=LBA, [2]=payload IOVA, [3]=length, [4]=slot, [5]=tag
	// OpFlush issues a write barrier; Data carries one flushop.go frame
	// (barrier sequence, epoch, tag). The driver must drain the device's
	// volatile cache and echo the frame back as OpFlushDone.
	OpFlush
	// OpPageRecycle returns flipped read-buffer pages to the driver
	// (async); Data carries the protocol recycle framing (epoch + page
	// IOVAs). The pages have been remapped before the upcall is sent, so
	// the driver may reuse the slots they back immediately.
	OpPageRecycle
	// OpQueueEpoch announces a per-queue epoch transition (async); Data
	// carries the protocol qstate framing. A parked frame tells the
	// driver runtime one queue is quarantined; an armed frame re-syncs
	// the runtime at the queue's new epoch, which it must stamp on every
	// completion it sends for that queue from then on.
	OpQueueEpoch
)

// Downcall operations (driver → kernel).
const (
	// OpComplete finishes one request; Args: [0]=tag, [1]=status,
	// [2]=payload IOVA, [3]=length (reads). Data, when set, carries a
	// bounced inline payload instead of a reference.
	OpComplete = protocol.BlockBase + 16 + iota
	// OpCompleteBatch delivers up to MaxBlkBatch completions in one
	// message; Data carries the blkbatch.go framing. The queue is the
	// ring the message arrived on.
	OpCompleteBatch
	// OpWakeQueue re-enables a stopped submission queue; Args: [0]=queue.
	OpWakeQueue
	// OpFlushDone completes a flush barrier; Data carries the flushop.go
	// frame, validated against the proxy's own barrier accounting.
	OpFlushDone
	// OpRecycleAck echoes an OpPageRecycle frame back once the driver has
	// returned the pages to its free pool. Defensively decoded; an ack
	// carrying a dead incarnation's epoch is stale and rejected.
	OpRecycleAck
)

// Guard strategies for read-completion payloads. Block data carries no
// checksum to fuse with, so the baseline guard is a plain copy; GuardPageFlip
// amortises it to page granularity exactly as ethproxy does — a read
// completion that is one whole page-aligned page is revoked from the
// driver's IOMMU domain (one walk, batch-amortised shootdown), delivered by
// reference, and returned on the lazy recycle lane.
const (
	GuardCopy = iota
	GuardPageFlip
)

// OpSubmit flag bits.
const (
	SubmitWrite = 1 << 0
	SubmitFUA   = 1 << 1
)

// SlotsPerQueue is each queue's shared-slot partition: one slot per
// outstanding request on that queue (write slots also stage the payload, so
// the driver never sees kernel memory). SUD preallocates shared buffers and
// passes references, avoiding copies on the submission path (§3.1.2).
const SlotsPerQueue = 64

// Proxy is one block proxy driver instance. The shared-slot pools, the
// stall/wake state and the completion counters are all per queue, and each
// queue's pool is its own device-file allocation — a distinct IOMMU-visible
// object, the groundwork for per-queue IOMMU domains.
type Proxy struct {
	K   *KernelIface
	DF  *pciaccess.DeviceFile
	C   *uchan.MultiChan
	Dev *blockdev.Dev

	pools   []*pciaccess.Alloc // per-queue slot pools
	free    [][]int            // per-queue free slot lists (queue-local indices)
	stalled []bool
	// tagSlot maps an in-flight tag to its (queue, slot) so completion
	// releases the right pool entry.
	tagSlot map[uint64]int // packed q*SlotsPerQueue + slot

	// GuardMode selects the read-payload TOCTOU-guard strategy.
	GuardMode int

	// pendingRecycle holds flipped pages (by IOVA) per queue awaiting the
	// lazy recycle flush back to the driver.
	pendingRecycle [][]uint64

	// Per-queue completion counters.
	QueueComps   []uint64
	QueueBatches []uint64

	// epoch is the device incarnation this proxy bound at; once the block
	// core bumps it (driver death → recovery) every downcall still signed
	// by this proxy is stale and is rejected wholesale.
	epoch uint64

	// qepoch mirrors each queue's own incarnation epoch as of the last
	// RearmQueue — the queue-granular sibling of epoch. Between a surgical
	// quarantine (the block core bumps QueueEpoch) and the re-arm (this
	// mirror resyncs), the mismatch rejects the queue's completions while
	// siblings flow; after the re-arm, completions stamped with the dead
	// incarnation's epoch are rejected by the stamp check.
	qepoch []uint64

	// Barrier accounting (per device epoch): barrierSeq numbers every
	// flush upcall this incarnation issued, and inFlightFlush is the one
	// barrier the driver currently holds. A FlushDone that does not name
	// exactly that barrier — or that arrives while requests dispatched
	// before it are still outstanding — is a flush lie, rejected before
	// the block core hears "durable".
	barrierSeq    uint64
	inFlightFlush *flushState

	// Durability counters: what this proxy told the driver versus what
	// the driver acked — the kernel-side half of flush-lie attribution
	// (the device's own Flushes/FUAWrites counters are the other half).
	FlushesIssued uint64
	FlushesAcked  uint64
	FUAIssued     uint64

	// Security / robustness counters.
	CompInvalidRef    uint64 // payload references outside the driver's memory
	CompBadLength     uint64
	CompBadTag        uint64 // completions for tags never issued
	CompBadBatch      uint64 // malformed batch framing from the driver
	CompBadFlushFrame uint64 // malformed flush framing from the driver
	CompBadBarrier    uint64 // flush completions naming no in-flight barrier
	CompBarrierEarly  uint64 // barriers acked with prior requests outstanding
	CompStaleEpoch    uint64 // downcalls from a dead driver incarnation
	// CompStaleQueueEpoch counts completions rejected by the per-queue
	// epoch discipline: the queue is quarantined and not yet re-armed, or
	// the stamp names a dead incarnation of the queue.
	CompStaleQueueEpoch uint64
	CompRevokedRef      uint64 // references naming a page the kernel already owns
	SubmitDropsHung     uint64
	UpcallErrors        uint64

	// Page-flip accounting (the bench metrics).
	GuardCopiedBytes uint64 // bytes that went through a guard copy
	PagesFlipped     uint64
	Shootdowns       uint64 // batch-amortised IOTLB shootdowns
	RecycleUpcalls   uint64
	RecycleAcks      uint64
	RecycleBadAck    uint64 // malformed ack framing from the driver
	RecycleStaleAck  uint64 // acks carrying a dead incarnation's epoch
}

// flushState is the one barrier the driver currently holds.
type flushState struct {
	barrier uint64
	tag     uint64
}

// KernelIface is the slice of kernel services the proxy needs.
type KernelIface struct {
	Acct    *sim.CPUAccount
	Mem     *mem.Memory
	Blk     *blockdev.Manager
	DevName string
}

// New registers a block device backed by the user-space driver on the other
// end of c. geom is the mirrored media geometry (§3.3: static state is
// synchronised at registration, never fetched by upcall). If the requested
// device name is taken, the next free name is allocated, as the kernel's
// block core does — so several storage driver processes coexist.
func New(ki *KernelIface, df *pciaccess.DeviceFile, c *uchan.MultiChan, name string, geom api.BlockGeometry) (*Proxy, error) {
	q := c.NumQueues()
	p := &Proxy{
		K: ki, DF: df, C: c,
		pools:          make([]*pciaccess.Alloc, q),
		free:           make([][]int, q),
		stalled:        make([]bool, q),
		tagSlot:        make(map[uint64]int),
		QueueComps:     make([]uint64, q),
		QueueBatches:   make([]uint64, q),
		pendingRecycle: make([][]uint64, q),
	}
	for i := 0; i < q; i++ {
		// Queue i's slots belong to device I/O queue i+1: tagging the
		// allocation with that stream confines it to the queue's own IOMMU
		// sub-domain, so a compromised sibling queue's descriptor naming a
		// slot here faults at the walk. The kernel tags its pools itself —
		// queue-granular confinement never depends on driver cooperation.
		pool, err := df.AllocDMAQ(SlotsPerQueue*geom.BlockSize,
			fmt.Sprintf("blk q%d slot pool", i), false, i+1)
		if err != nil {
			return nil, fmt.Errorf("blkproxy: allocating queue %d pool: %w", i, err)
		}
		p.pools[i] = pool
		for s := 0; s < SlotsPerQueue; s++ {
			p.free[i] = append(p.free[i], s)
		}
	}
	dev, err := registerUnique(ki.Blk, name, geom, (*proxyDev)(p))
	if err != nil {
		return nil, err
	}
	ki.DevName = dev.Name
	p.Dev = dev
	p.epoch = dev.Epoch()
	p.qepoch = make([]uint64, q)
	for i := range p.qepoch {
		p.qepoch[i] = dev.QueueEpoch(i)
	}
	return p, nil
}

// NewStandby builds a proxy for a hot-standby driver process and
// pre-registers it with the block core for the named LIVE device — before
// any kill. The shared-slot pools are allocated (and their IOMMU mappings
// established) now, at arm time; what is deferred to promotion is only the
// binding to the device object, because the device's epoch at failover
// does not exist yet. The geometry identity check runs here, inside
// RegisterStandby.
func NewStandby(ki *KernelIface, df *pciaccess.DeviceFile, c *uchan.MultiChan, name string, geom api.BlockGeometry) (*Proxy, error) {
	q := c.NumQueues()
	p := &Proxy{
		K: ki, DF: df, C: c,
		pools:          make([]*pciaccess.Alloc, q),
		free:           make([][]int, q),
		stalled:        make([]bool, q),
		tagSlot:        make(map[uint64]int),
		QueueComps:     make([]uint64, q),
		QueueBatches:   make([]uint64, q),
		pendingRecycle: make([][]uint64, q),
	}
	for i := 0; i < q; i++ {
		pool, err := df.AllocDMAQ(SlotsPerQueue*geom.BlockSize,
			fmt.Sprintf("blk q%d slot pool", i), false, i+1)
		if err != nil {
			return nil, fmt.Errorf("blkproxy: allocating standby queue %d pool: %w", i, err)
		}
		p.pools[i] = pool
		for s := 0; s < SlotsPerQueue; s++ {
			p.free[i] = append(p.free[i], s)
		}
	}
	p.qepoch = make([]uint64, q)
	if err := ki.Blk.RegisterStandby(name, geom, (*proxyDev)(p)); err != nil {
		return nil, err
	}
	return p, nil
}

// Bind attaches a promoted standby proxy to the device it now backs. It
// must run after the block core's PromoteStandby — the device's epoch has
// already been bumped by the primary's death, so the standby binds to the
// NEW incarnation and the dead primary's proxy stays stale.
func (p *Proxy) Bind(dev *blockdev.Dev) {
	p.Dev = dev
	p.epoch = dev.Epoch()
	for i := range p.qepoch {
		p.qepoch[i] = dev.QueueEpoch(i)
	}
	p.K.DevName = dev.Name
}

// BarrierViolations is the policy plane's flush-lie evidence: completions
// the barrier accounting rejected, either for naming no in-flight barrier
// or for acking one while requests dispatched before it were outstanding.
func (p *Proxy) BarrierViolations() uint64 { return p.CompBadBarrier + p.CompBarrierEarly }

// registerUnique registers the device under the requested name; on a name
// collision it substitutes into the name's own template (trailing digits
// stripped, like "nvme%d") until a free slot is found.
func registerUnique(blk *blockdev.Manager, name string, geom api.BlockGeometry, dev *proxyDev) (*blockdev.Dev, error) {
	d, err := blk.Register(name, geom, dev)
	if err == nil || !errors.Is(err, blockdev.ErrNameTaken) {
		return d, err
	}
	base := strings.TrimRight(name, "0123456789")
	if base == "" {
		base = name
	}
	for i := 1; i < 16; i++ {
		d, retryErr := blk.Register(fmt.Sprintf("%s%d", base, i), geom, dev)
		if retryErr == nil {
			return d, nil
		}
		if !errors.Is(retryErr, blockdev.ErrNameTaken) {
			return nil, retryErr
		}
	}
	return nil, err
}

// proxyDev is the block-core-facing half: it satisfies the same BlockDevice
// contract an in-kernel driver would, by RPC.
type proxyDev Proxy

func (d *proxyDev) p() *Proxy { return (*Proxy)(d) }

// Open forwards the bring-up as a synchronous, interruptible upcall (queue
// creation sleeps in the driver, like the e1000e's open).
func (d *proxyDev) Open() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpOpen})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("blkproxy: open upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("blkproxy: driver open failed: %s", reply.Data)
	}
	return nil
}

// Stop forwards quiesce.
func (d *proxyDev) Stop() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpStop})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("blkproxy: stop upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("blkproxy: driver stop failed: %s", reply.Data)
	}
	return nil
}

// Queues implements api.BlockDevice: one block-core queue context per uchan
// ring pair.
func (d *proxyDev) Queues() int { return d.p().C.NumQueues() }

// Submit claims a shared slot on queue q, stages a write payload in it, and
// queues an asynchronous submission upcall on that queue's ring — the §3.1
// fast path applied to storage. Slot exhaustion or a hung queue surfaces as
// backpressure on that queue only, never as a blocked kernel thread.
func (d *proxyDev) Submit(q int, req api.BlockRequest) error {
	p := d.p()
	if q < 0 || q >= len(p.free) {
		q = 0
	}
	if req.Flush {
		return p.submitFlush(q, req)
	}
	if len(p.free[q]) == 0 {
		p.stalled[q] = true
		return fmt.Errorf("blkproxy: no free slots on queue %d", q)
	}
	slot := p.free[q][len(p.free[q])-1]
	var flags, iova, n uint64
	if req.Write {
		if len(req.Data) != p.Dev.Geom.BlockSize {
			return fmt.Errorf("blkproxy: payload is %d bytes, want %d", len(req.Data), p.Dev.Geom.BlockSize)
		}
		flags = SubmitWrite
		if req.FUA {
			flags |= SubmitFUA
		}
		off := mem.Addr(slot * p.Dev.Geom.BlockSize)
		iova = uint64(p.pools[q].IOVA + off)
		n = uint64(len(req.Data))
		p.K.Acct.Charge(sim.Copy(len(req.Data)))
		if err := p.K.Mem.Write(p.pools[q].Phys+off, req.Data); err != nil {
			return fmt.Errorf("blkproxy: slot write: %w", err)
		}
	}
	err := p.C.ASend(q, uchan.Msg{
		Op:   OpSubmit,
		Args: [6]uint64{flags, req.LBA, iova, n, uint64(slot), req.Tag},
	})
	if err != nil {
		p.SubmitDropsHung++
		p.stalled[q] = true
		return fmt.Errorf("blkproxy: submit upcall: %w", err)
	}
	p.K.Blk.Trace.Event(trace.ClassBlk, q, req.Tag, trace.HopUchanEnq)
	if req.FUA {
		p.FUAIssued++
	}
	p.free[q] = p.free[q][:len(p.free[q])-1]
	p.tagSlot[req.Tag] = q*SlotsPerQueue + slot
	return nil
}

// submitFlush issues one write barrier as an OpFlush upcall carrying the
// flushop.go frame. Barriers need no shared slot (no payload); the
// accounting — sequence, epoch, tag — is what the completion must echo.
func (p *Proxy) submitFlush(q int, req api.BlockRequest) error {
	if p.inFlightFlush != nil {
		// The block core dispatches one barrier at a time; a second one
		// here means a confused caller, not a confused driver.
		return fmt.Errorf("blkproxy: barrier %d already in flight", p.inFlightFlush.barrier)
	}
	p.barrierSeq++
	frame := EncodeFlushOp(FlushOp{Barrier: p.barrierSeq, Epoch: p.epoch, Tag: req.Tag})
	if err := p.C.ASend(q, uchan.Msg{Op: OpFlush, Data: frame}); err != nil {
		p.SubmitDropsHung++
		p.stalled[q] = true
		return fmt.Errorf("blkproxy: flush upcall: %w", err)
	}
	p.FlushesIssued++
	p.inFlightFlush = &flushState{barrier: p.barrierSeq, tag: req.Tag}
	return nil
}

// HandleDowncall services one driver→kernel message in kernel context; the
// SUD-UML runtime routes block-range ops here. q is the ring the message
// arrived on — the queue whose counters it charges and whose slots its
// completions release.
func (p *Proxy) HandleDowncall(q int, m uchan.Msg) {
	if p.Dev.Epoch() != p.epoch {
		// This proxy belongs to a dead driver incarnation: the device was
		// (or is being) recovered onto a restarted process. A completion,
		// wake or batch arriving now is the replay-vs-stale-completion
		// cousin of the §3.1.2 TOCTOU — the same tags are live again in
		// the new incarnation — so everything from the old one is dropped
		// and counted, never matched.
		p.CompStaleEpoch++
		return
	}
	if q < 0 || q >= len(p.free) {
		q = 0
	}
	switch m.Op {
	case OpComplete:
		// Args[4] is the queue-epoch stamp the driver runtime put on the
		// completion (queue-granular sibling of the wholesale check above).
		if p.queueStale(q, m.Args[4]) {
			return
		}
		if m.Data != nil {
			// Bounced inline payload: the bytes were copied through the
			// ring, so the kernel already owns them.
			p.finish(q, m.Args[0], uint16(m.Args[1]), m.Data)
			return
		}
		if p.complete(q, CompRef{Tag: m.Args[0], Status: uint16(m.Args[1]), IOVA: m.Args[2], Len: uint32(m.Args[3])}) {
			p.K.Acct.Charge(sim.CostIOTLBShootdown)
			p.Shootdowns++
			p.maybeFlushRecycle(q)
		}
	case OpCompleteBatch:
		// Args[0] stamps the whole batch (the framing has no per-entry
		// epoch; a batch crosses no quarantine because the ring is the
		// queue).
		if p.queueStale(q, m.Args[0]) {
			return
		}
		comps, err := DecodeBlkBatch(m.Data)
		if err != nil {
			// Malformed framing from the untrusted driver: dropped and
			// counted, never dispatched (§3.1.1).
			p.CompBadBatch++
			return
		}
		p.QueueBatches[q]++
		flipped := 0
		for _, c := range comps {
			if p.complete(q, c) {
				flipped++
			}
		}
		if flipped > 0 {
			// One shootdown covers every page this batch revoked.
			p.K.Acct.Charge(sim.CostIOTLBShootdown)
			p.Shootdowns++
			p.maybeFlushRecycle(q)
		}
	case OpRecycleAck:
		epoch, pages, err := protocol.DecodeRecycle(m.Data)
		if err != nil {
			p.RecycleBadAck++
			return
		}
		if epoch != uint32(p.epoch) {
			// A frame minted for a dead incarnation (replayed across a
			// recovery, or forged): rejected, never matched.
			p.RecycleStaleAck++
			return
		}
		p.RecycleAcks += uint64(len(pages))
	case OpFlushDone:
		p.handleFlushDone(q, m)
	case OpWakeQueue:
		wq := int(m.Args[0])
		if wq < 0 || wq >= len(p.free) {
			wq = 0
		}
		p.maybeWakeQueue(wq)
	default:
		// Unknown downcalls from an untrusted driver are ignored, not
		// trusted (§3.1.1).
		p.UpcallErrors++
	}
}

// queueStale applies the queue-granular epoch discipline to one completion
// message on ring q. A completion is stale when its queue is quarantined and
// not yet re-armed (the block core's QueueEpoch moved past this proxy's
// mirror), or when its stamp names a dead incarnation of the queue (a
// pre-quarantine completion arriving late, or a forgery). Either way it is
// dropped and counted — the tag it names is (or will be) live again in the
// re-armed incarnation, and must only be matched by that incarnation.
func (p *Proxy) queueStale(q int, stamp uint64) bool {
	if p.Dev.QueueEpoch(q) != p.qepoch[q] || stamp != p.qepoch[q] {
		p.CompStaleQueueEpoch++
		return true
	}
	return false
}

// ParkQueue tells the driver runtime queue q is quarantined: an OpQueueEpoch
// parked frame carrying the epoch the runtime currently holds. Purely
// advisory — the kernel-side epoch checks enforce the quarantine whether or
// not the driver listens.
func (p *Proxy) ParkQueue(q int) {
	if q < 0 || q >= len(p.qepoch) {
		return
	}
	err := p.C.ASend(q, uchan.Msg{Op: OpQueueEpoch,
		Data: protocol.EncodeQState(protocol.QState{Queue: q, Epoch: uint32(p.qepoch[q]), Flags: protocol.QStateParked})})
	if err != nil {
		p.UpcallErrors++
	}
}

// RearmQueue re-syncs this proxy with queue q's new incarnation after a
// surgical quarantine, before the block core replays the queue. Slots still
// held by the queue's in-flight tags are reclaimed without completing —
// replay re-submits those tags and claims fresh slots, so leaving the old
// entries would leak the pool. Flipped pages parked on the queue's recycle
// lane are flushed back to the driver (its sub-domain is re-armed by now),
// the epoch mirror adopts the queue's new epoch, and an OpQueueEpoch armed
// frame tells the runtime to stamp it — and to drop work held for the dead
// incarnation.
func (p *Proxy) RearmQueue(q int) {
	if q < 0 || q >= len(p.qepoch) {
		return
	}
	for tag, packed := range p.tagSlot {
		if packed/SlotsPerQueue != q {
			continue
		}
		delete(p.tagSlot, tag)
		p.free[q] = append(p.free[q], packed%SlotsPerQueue)
	}
	p.stalled[q] = false
	if q == 0 && p.inFlightFlush != nil {
		// A barrier the dead incarnation held is gone with it; replay
		// re-issues the flush under a fresh barrier sequence, and a late
		// FlushDone for the old one fails the barrier match.
		p.inFlightFlush = nil
	}
	p.flushRecycleQ(q)
	p.qepoch[q] = p.Dev.QueueEpoch(q)
	err := p.C.ASend(q, uchan.Msg{Op: OpQueueEpoch,
		Data: protocol.EncodeQState(protocol.QState{Queue: q, Epoch: uint32(p.qepoch[q]), Flags: protocol.QStateArmed})})
	if err != nil {
		p.UpcallErrors++
	}
}

// QueueEpochMirror reports the queue epoch this proxy last re-armed at
// (tests, sudctl).
func (p *Proxy) QueueEpochMirror(q int) uint64 {
	if q < 0 || q >= len(p.qepoch) {
		return 0
	}
	return p.qepoch[q]
}

// handleFlushDone validates one barrier completion against the proxy's own
// accounting. The frame is hostile input: it must decode exactly, name the
// one barrier in flight, carry this proxy's epoch, and echo the flush's
// tag — and it must not arrive while requests dispatched before the
// barrier are still outstanding. Anything else is a flush lie: the driver
// completing a barrier it was never given (or early, or twice, or across
// an incarnation), counted and — for the early case — surfaced as a
// driver-attributed flush failure rather than a false durability claim.
func (p *Proxy) handleFlushDone(q int, m uchan.Msg) {
	fo, err := DecodeFlushOp(m.Data)
	if err != nil {
		p.CompBadFlushFrame++
		return
	}
	fs := p.inFlightFlush
	if fs == nil || fo.Barrier != fs.barrier || fo.Epoch != p.epoch || fo.Tag != fs.tag {
		p.CompBadBarrier++
		return
	}
	if outstanding := len(p.tagSlot); outstanding > 0 {
		p.inFlightFlush = nil
		p.CompBarrierEarly++
		p.QueueComps[q]++
		p.Dev.Complete(q, fs.tag, fmt.Errorf(
			"blkproxy: driver completed barrier %d early (%d prior requests outstanding)",
			fo.Barrier, outstanding), nil)
		return
	}
	p.inFlightFlush = nil
	p.QueueComps[q]++
	if fo.Status != 0 {
		p.Dev.Complete(q, fs.tag, fmt.Errorf("blkproxy: device flush status %d", fo.Status), nil)
		return
	}
	p.FlushesAcked++
	p.Dev.Complete(q, fs.tag, nil, nil)
}

// complete validates one completion reference and delivers it. The payload
// reference must lie inside the driver's own DMA allocations and be exactly
// one block; under GuardCopy the kernel's private copy is taken before any
// consumer sees the bytes, so later modification of the shared buffer by a
// malicious driver is harmless — and a foreign reference fails the request
// instead of leaking whatever it pointed at. Under GuardPageFlip a
// page-aligned whole-page payload is instead revoked from the driver's
// domain and delivered by reference: the driver can no longer reach the
// bytes, so the TOCTOU property holds with zero copied bytes. Reports
// whether a page was flipped so the caller can amortise one IOTLB shootdown
// over the batch.
func (p *Proxy) complete(q int, c CompRef) bool {
	// Tag validation comes first: a completion for a tag never issued is
	// dropped before the kernel spends a block-sized guard copy on it —
	// forged completions must not buy CPU with invalid handles.
	if _, ok := p.tagSlot[c.Tag]; !ok {
		p.CompBadTag++
		return false
	}
	if c.Status != 0 {
		p.finish(q, c.Tag, c.Status, nil)
		return false
	}
	if c.IOVA == 0 && c.Len == 0 {
		// Write completion: no payload.
		p.finish(q, c.Tag, 0, nil)
		return false
	}
	n := int(c.Len)
	if n != p.Dev.Geom.BlockSize {
		p.CompBadLength++
		p.failRead(q, c.Tag, "bad completion length")
		return false
	}
	if !p.DF.ValidateRange(mem.Addr(c.IOVA), n) {
		// Distinguish a reference into a page the kernel already owns
		// (ValidateRange has recorded the fault as driver evidence) from
		// one outside the driver's memory entirely.
		if p.DF.PageRevoked(mem.Addr(c.IOVA)) {
			p.CompRevokedRef++
		} else {
			p.CompInvalidRef++
		}
		p.failRead(q, c.Tag, "completion reference outside driver memory")
		return false
	}
	if p.GuardMode == GuardPageFlip && n == mem.PageSize && c.IOVA%mem.PageSize == 0 {
		phys, err := p.DF.RevokePage(mem.Addr(c.IOVA))
		if err == nil {
			p.K.Blk.Trace.Event(trace.ClassBlk, q, c.Tag, trace.HopFlip)
			p.K.Acct.Charge(sim.CostPageFlipRevoke)
			p.PagesFlipped++
			p.pendingRecycle[q] = append(p.pendingRecycle[q], c.IOVA)
			view, ok := p.K.Mem.Slice(phys, n)
			if ok {
				// The driver's window onto the page is gone, so the
				// view is stable — delivered by reference, zero
				// copied bytes.
				p.finish(q, c.Tag, 0, view)
				return true
			}
			// An unreachable physical page: fail the read; the page
			// still recycles so the pool cannot leak.
			p.CompInvalidRef++
			p.failRead(q, c.Tag, "completion reference unreadable")
			return true
		}
		// Lost revoke race: fall through to the guard copy.
	}
	phys, ok := p.DF.PhysFor(mem.Addr(c.IOVA))
	if !ok {
		p.CompInvalidRef++
		p.failRead(q, c.Tag, "completion reference unmapped")
		return false
	}
	// Guard copy (§3.1.2): block payloads carry no checksum to fuse with,
	// so the TOCTOU guard is a plain copy into kernel-owned memory.
	p.K.Blk.Trace.Event(trace.ClassBlk, q, c.Tag, trace.HopGuard)
	buf := make([]byte, n)
	p.K.Acct.Charge(sim.Copy(n))
	p.GuardCopiedBytes += uint64(n)
	if err := p.K.Mem.Read(phys, buf); err != nil {
		p.CompInvalidRef++
		p.failRead(q, c.Tag, "completion reference unreadable")
		return false
	}
	p.finish(q, c.Tag, 0, buf)
	return false
}

// recycleThreshold is how many flipped pages accumulate on a queue before
// the proxy remaps them and sends one recycle upcall — small against the
// driver's per-queue pool (QDepth slots = 64 pages) so reads never starve.
const recycleThreshold = 16

func (p *Proxy) maybeFlushRecycle(q int) {
	if len(p.pendingRecycle[q]) >= recycleThreshold {
		p.flushRecycleQ(q)
	}
}

// flushRecycleQ remaps queue q's pending flipped pages back into the
// driver's domain and returns them in one recycle upcall.
func (p *Proxy) flushRecycleQ(q int) {
	pending := p.pendingRecycle[q]
	if len(pending) == 0 {
		return
	}
	p.pendingRecycle[q] = p.pendingRecycle[q][:0]
	for start := 0; start < len(pending); start += protocol.MaxRecyclePages {
		end := start + protocol.MaxRecyclePages
		if end > len(pending) {
			end = len(pending)
		}
		var returned []uint64
		for _, page := range pending[start:end] {
			// RecyclePage fails only if the page is no longer flipped —
			// the driver died and teardown reclaimed it.
			if err := p.DF.RecyclePage(mem.Addr(page)); err == nil {
				p.K.Acct.Charge(sim.CostPageRecycleMap)
				returned = append(returned, page)
			}
		}
		if len(returned) == 0 {
			continue
		}
		err := p.C.ASend(q, uchan.Msg{
			Op:   OpPageRecycle,
			Data: protocol.EncodeRecycle(uint32(p.epoch), returned),
		})
		if err != nil {
			// The pages are back in the driver's domain either way; a
			// hung ring just means the driver never reuses them.
			p.UpcallErrors++
			continue
		}
		p.RecycleUpcalls++
	}
}

// FlushRecycle forces every queue's pending flipped pages back to the driver
// regardless of threshold (tests, teardown).
func (p *Proxy) FlushRecycle() {
	for q := range p.pendingRecycle {
		p.flushRecycleQ(q)
	}
}

// PendingRecyclePages reports pages flipped but not yet recycled, summed
// across queues.
func (p *Proxy) PendingRecyclePages() int {
	n := 0
	for _, pr := range p.pendingRecycle {
		n += len(pr)
	}
	return n
}

// failRead completes a request as an I/O error after a rejected reference;
// the slot is still released so a malicious driver cannot leak pool space.
// A tag not in flight (completed twice) is dropped and counted instead.
func (p *Proxy) failRead(q int, tag uint64, why string) {
	if !p.releaseSlot(tag) {
		p.CompBadTag++
		return
	}
	p.QueueComps[q]++
	p.Dev.Complete(q, tag, fmt.Errorf("blkproxy: %s", why), nil)
}

// finish releases the request's slot and completes it to the block core.
func (p *Proxy) finish(q int, tag uint64, status uint16, data []byte) {
	if !p.releaseSlot(tag) {
		// A completion for a tag never issued (or already completed):
		// dropped and counted; the block core's own tag match would
		// reject it too, but it must not release anyone's slot.
		p.CompBadTag++
		return
	}
	p.QueueComps[q]++
	var err error
	if status != 0 {
		err = fmt.Errorf("blkproxy: device status %d", status)
	}
	p.Dev.Complete(q, tag, err, data)
}

// releaseSlot returns tag's slot to its queue's pool.
func (p *Proxy) releaseSlot(tag uint64) bool {
	packed, ok := p.tagSlot[tag]
	if !ok {
		return false
	}
	delete(p.tagSlot, tag)
	sq, slot := packed/SlotsPerQueue, packed%SlotsPerQueue
	p.free[sq] = append(p.free[sq], slot)
	p.maybeWakeQueue(sq)
	return true
}

// wakeThreshold is how many of a queue's slots must be free before a
// stopped queue is woken — waking per released slot would thrash the
// submitter (one eighth of the partition, like the netdev wake batch).
func (p *Proxy) wakeThreshold() int {
	t := SlotsPerQueue / 8
	if t < 1 {
		t = 1
	}
	return t
}

// maybeWakeQueue restarts queue q's submission path once it regains
// headroom. The wake is per queue: a sibling still out of slots stays
// stopped, and only requests steered onto it keep waiting.
func (p *Proxy) maybeWakeQueue(q int) {
	if !p.stalled[q] || len(p.free[q]) < p.wakeThreshold() {
		return
	}
	p.stalled[q] = false
	p.Dev.WakeQueueQ(q)
}

// FreeSlots reports the pool headroom across all queues (tests).
func (p *Proxy) FreeSlots() int {
	n := 0
	for _, f := range p.free {
		n += len(f)
	}
	return n
}

// QueueFreeSlots reports one queue's slot headroom.
func (p *Proxy) QueueFreeSlots(q int) int {
	if q < 0 || q >= len(p.free) {
		return 0
	}
	return len(p.free[q])
}

// Pools returns the per-queue slot-pool allocations (sudctl's IOMMU-domain
// listing shows them per queue).
func (p *Proxy) Pools() []*pciaccess.Alloc { return p.pools }
