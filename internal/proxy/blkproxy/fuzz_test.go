package blkproxy

import (
	"bytes"
	"testing"
)

// FuzzDecodeBlkBatch feeds arbitrary bytes to the completion-batch decoder.
// The batch buffer is written by the untrusted driver process, so the
// decoder must never panic and must reject anything that does not
// round-trip exactly: counts out of range, truncated entries, trailing
// slack.
func FuzzDecodeBlkBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 0})
	f.Add(EncodeBlkBatch([]CompRef{{Tag: 1, Status: 0, IOVA: 0x42430000, Len: 4096}}))
	f.Add(EncodeBlkBatch([]CompRef{
		{Tag: 7, Status: 3},
		{Tag: ^uint64(0), IOVA: ^uint64(0), Len: ^uint32(0)},
	}))
	// Page-flip shapes: a page-aligned full-block read (the flip fast
	// path) and a deliberately misaligned one (must fall back to the
	// guard copy).
	f.Add(EncodeBlkBatch([]CompRef{{Tag: 2, IOVA: 0x43000000, Len: 4096}}))
	f.Add(EncodeBlkBatch([]CompRef{{Tag: 3, IOVA: 0x43000200, Len: 4096}}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		comps, err := DecodeBlkBatch(buf)
		if err != nil {
			return
		}
		if len(comps) == 0 || len(comps) > MaxBlkBatch {
			t.Fatalf("decoded %d completions", len(comps))
		}
		// Anything that decodes must re-encode to the identical bytes —
		// the framing has no redundancy for an attacker to hide in.
		if !bytes.Equal(EncodeBlkBatch(comps), buf) {
			t.Fatalf("decode/encode mismatch")
		}
	})
}

func TestBlkBatchRoundTrip(t *testing.T) {
	in := []CompRef{
		{Tag: 1, Status: 0, IOVA: 0x42430000, Len: 4096},
		{Tag: 99, Status: 2},
		{Tag: 1 << 40, IOVA: 1 << 50, Len: 7},
	}
	out, err := DecodeBlkBatch(EncodeBlkBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestBlkBatchRejectsMalformed(t *testing.T) {
	good := EncodeBlkBatch([]CompRef{{Tag: 1, Len: 4096}})
	cases := map[string][]byte{
		"short":     {1},
		"zero":      {0, 0},
		"overcount": {255, 255},
		"truncated": good[:len(good)-3],
		"slack":     append(append([]byte{}, good...), 0xEE),
	}
	for name, buf := range cases {
		if _, err := DecodeBlkBatch(buf); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Encode truncates at the bound instead of overflowing the count.
	many := make([]CompRef, MaxBlkBatch+10)
	if got, err := DecodeBlkBatch(EncodeBlkBatch(many)); err != nil || len(got) != MaxBlkBatch {
		t.Fatalf("bound truncation: %d, %v", len(got), err)
	}
}

// FuzzDecodeFlushOp feeds arbitrary bytes to the flush-barrier decoder.
// The OpFlushDone frame is written by the untrusted driver process — it is
// the message that tells the kernel "your data is durable" — so the
// decoder must never panic and must reject anything that is not exactly
// one frame; whatever does decode must round-trip to identical bytes (no
// redundancy for an attacker to hide in).
func FuzzDecodeFlushOp(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, flushOpLen-1))
	f.Add(make([]byte, flushOpLen+1))
	f.Add(EncodeFlushOp(FlushOp{Barrier: 1, Epoch: 2, Tag: 3}))
	f.Add(EncodeFlushOp(FlushOp{Barrier: ^uint64(0), Epoch: ^uint64(0), Tag: ^uint64(0), Status: ^uint16(0)}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		fo, err := DecodeFlushOp(buf)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeFlushOp(fo), buf) {
			t.Fatalf("decode/encode mismatch")
		}
	})
}

func TestFlushOpRoundTrip(t *testing.T) {
	in := FlushOp{Barrier: 7, Epoch: 3, Tag: 1 << 40, Status: 2}
	out, err := DecodeFlushOp(EncodeFlushOp(in))
	if err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("%+v != %+v", in, out)
	}
	for _, bad := range [][]byte{nil, {1}, make([]byte, flushOpLen+1)} {
		if _, err := DecodeFlushOp(bad); err == nil {
			t.Fatalf("accepted %d bytes", len(bad))
		}
	}
}
