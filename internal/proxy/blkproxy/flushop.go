package blkproxy

import "errors"

// Flush-barrier framing — the durability cousin of the completion batch.
//
// A flush crosses the channel as an OpFlush upcall whose Data carries one
// encoded FlushOp, and comes back as an OpFlushDone downcall carrying the
// same structure with the status filled in. The downcall bytes are written
// by the untrusted driver process, so the kernel-side decoder treats them
// as hostile input (never panics, exact length, no slack) and the proxy
// validates every echoed field against its own barrier accounting before
// the block core hears that anything became durable: the barrier sequence
// must be the one in flight, the epoch must be the proxy's own bind epoch
// (a dead incarnation cannot complete a barrier its successor issued), and
// the tag must match the flush request. DecodeFlushOp is fuzzed for
// exactly that reason.
//
// Layout (little-endian):
//
//	[0:8)   barrier sequence number (per device epoch)
//	[8:16)  device incarnation epoch the barrier was issued under
//	[16:24) kernel request tag of the flush
//	[24:26) completion status (0 in the upcall direction)
const flushOpLen = 26

// FlushOp is one flush barrier on the wire.
type FlushOp struct {
	Barrier uint64
	Epoch   uint64
	Tag     uint64
	Status  uint16
}

// Flush framing decode errors.
var ErrFlushOpLen = errors.New("blkproxy: flush op is not exactly one frame")

// EncodeFlushOp marshals one flush barrier frame.
func EncodeFlushOp(f FlushOp) []byte {
	buf := make([]byte, flushOpLen)
	for b := 0; b < 8; b++ {
		buf[b] = byte(f.Barrier >> (8 * b))
		buf[8+b] = byte(f.Epoch >> (8 * b))
		buf[16+b] = byte(f.Tag >> (8 * b))
	}
	buf[24] = byte(f.Status)
	buf[25] = byte(f.Status >> 8)
	return buf
}

// DecodeFlushOp unmarshals one flush barrier frame written by the
// (untrusted) driver process. It never panics on arbitrary input; anything
// that is not exactly one frame returns an error.
func DecodeFlushOp(buf []byte) (FlushOp, error) {
	if len(buf) != flushOpLen {
		return FlushOp{}, ErrFlushOpLen
	}
	var f FlushOp
	for b := 7; b >= 0; b-- {
		f.Barrier = f.Barrier<<8 | uint64(buf[b])
		f.Epoch = f.Epoch<<8 | uint64(buf[8+b])
		f.Tag = f.Tag<<8 | uint64(buf[16+b])
	}
	f.Status = uint16(buf[24]) | uint16(buf[25])<<8
	return f, nil
}
