package blkproxy

import "errors"

// Batched completion framing — the block analogue of ethproxy's rxbatch.
//
// On a multi-queue channel the driver process posts I/O completions as
// (tag, status, buffer-reference) tuples, batched up to MaxBlkBatch per
// downcall message: one ring slot (and, with downcall batching, a fraction
// of one doorbell) carries a whole interrupt's worth of completions for a
// queue. The batch bytes are written by the untrusted driver process, so
// the kernel-side decoder treats them as hostile input: it never panics,
// bounds every count and length, and malformed batches are dropped and
// counted, never dispatched. DecodeBlkBatch is fuzzed for exactly that
// reason.
//
// Batch layout (little-endian):
//
//	[0:2)   completion count
//	[2:..)  count × { [0:8) tag, [8:10) status, [10:18) buffer IOVA,
//	                  [18:22) length }
const (
	// MaxBlkBatch is the most completions one batch downcall may carry.
	MaxBlkBatch = 32

	blkBatchHeaderLen = 2
	blkCompLen        = 22
)

// CompRef is one I/O completion: the kernel's request tag, the device
// status, and — for successful reads — a buffer in the driver's own DMA
// memory holding the payload. The kernel validates the range against the
// driver's allocations before touching it, like every other shared-memory
// reference.
type CompRef struct {
	Tag    uint64
	Status uint16
	IOVA   uint64
	Len    uint32
}

// Batch decode errors.
var (
	ErrBatchShort = errors.New("blkproxy: completion batch shorter than header")
	ErrBatchCount = errors.New("blkproxy: completion batch count out of range")
	ErrBatchTrunc = errors.New("blkproxy: completion batch truncated")
	ErrBatchSlack = errors.New("blkproxy: completion batch has trailing bytes")
)

// EncodeBlkBatch marshals up to MaxBlkBatch completions into batch bytes.
// Longer slices are truncated to MaxBlkBatch (callers flush at the bound).
func EncodeBlkBatch(comps []CompRef) []byte {
	if len(comps) > MaxBlkBatch {
		comps = comps[:MaxBlkBatch]
	}
	buf := make([]byte, blkBatchHeaderLen+blkCompLen*len(comps))
	buf[0] = byte(len(comps))
	buf[1] = byte(len(comps) >> 8)
	for i, c := range comps {
		off := blkBatchHeaderLen + blkCompLen*i
		for b := 0; b < 8; b++ {
			buf[off+b] = byte(c.Tag >> (8 * b))
		}
		buf[off+8] = byte(c.Status)
		buf[off+9] = byte(c.Status >> 8)
		for b := 0; b < 8; b++ {
			buf[off+10+b] = byte(c.IOVA >> (8 * b))
		}
		for b := 0; b < 4; b++ {
			buf[off+18+b] = byte(c.Len >> (8 * b))
		}
	}
	return buf
}

// DecodeBlkBatch unmarshals batch bytes written by the (untrusted) driver
// process. It never panics on arbitrary input; malformed batches return an
// error.
func DecodeBlkBatch(buf []byte) ([]CompRef, error) {
	if len(buf) < blkBatchHeaderLen {
		return nil, ErrBatchShort
	}
	count := int(buf[0]) | int(buf[1])<<8
	if count == 0 || count > MaxBlkBatch {
		return nil, ErrBatchCount
	}
	want := blkBatchHeaderLen + blkCompLen*count
	if len(buf) < want {
		return nil, ErrBatchTrunc
	}
	if len(buf) > want {
		return nil, ErrBatchSlack
	}
	comps := make([]CompRef, count)
	for i := range comps {
		off := blkBatchHeaderLen + blkCompLen*i
		var tag, iova uint64
		for b := 7; b >= 0; b-- {
			tag = tag<<8 | uint64(buf[off+b])
			iova = iova<<8 | uint64(buf[off+10+b])
		}
		var n uint32
		for b := 3; b >= 0; b-- {
			n = n<<8 | uint32(buf[off+18+b])
		}
		comps[i] = CompRef{
			Tag:    tag,
			Status: uint16(buf[off+8]) | uint16(buf[off+9])<<8,
			IOVA:   iova,
			Len:    n,
		}
	}
	return comps, nil
}
