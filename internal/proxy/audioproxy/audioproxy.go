// Package audioproxy is SUD's audio card proxy driver (Figure 5): the
// in-kernel module implementing the PCM contract on behalf of an untrusted
// driver process. Sample periods travel as inline data through the ring
// (audio bandwidth — under a MB/s — is far below the uchan budget); the
// period-elapsed notification is the latency-sensitive downcall that makes
// real-time scheduling of the driver process worthwhile (§4.1).
package audioproxy

import (
	"fmt"

	"sud/internal/kernel/audio"
	"sud/internal/proxy/guard"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/uchan"
)

// Upcalls (kernel → driver).
const (
	OpPrepare     = protocol.AudioBase + iota // sync; Args: rate, periodBytes, periods
	OpWritePeriod                             // async; Args[0]=idx, Data=samples
	OpTrigger                                 // sync; Args[0]=1 start / 0 stop
	OpPointer                                 // sync; reply Args[0]=position
)

// Downcalls (driver → kernel).
const (
	OpPeriodElapsed = protocol.AudioBase + 16 + iota
	OpXRun
)

// MaxPeriodBytes bounds inline sample periods.
const MaxPeriodBytes = 64 * 1024

// Proxy is one audio proxy instance.
type Proxy struct {
	Acct *sim.CPUAccount
	DF   *pciaccess.DeviceFile
	C    *uchan.Chan
	PCM  *audio.PCM

	// Guard is the shared guard-copy accounting (internal/proxy/guard):
	// audio transfers take the plain inline leg.
	Guard guard.Stats

	// Counters.
	PeriodDowncalls uint64
	BadDowncalls    uint64
}

// New registers a sound device served by the driver process on c.
func New(mgr *audio.Manager, df *pciaccess.DeviceFile, c *uchan.Chan, name string) (*Proxy, error) {
	p := &Proxy{Acct: mgr.Acct, DF: df, C: c}
	pcm, err := mgr.Register(name, (*proxyDev)(p))
	if err != nil {
		return nil, err
	}
	p.PCM = pcm
	return p, nil
}

// HandleDowncall services one audio downcall.
func (p *Proxy) HandleDowncall(m uchan.Msg) {
	switch m.Op {
	case OpPeriodElapsed:
		p.PeriodDowncalls++
		p.PCM.PeriodElapsed()
	case OpXRun:
		p.PCM.XRun()
	default:
		p.BadDowncalls++
	}
}

// proxyDev implements api.AudioDevice by upcall.
type proxyDev Proxy

func (d *proxyDev) p() *Proxy { return (*Proxy)(d) }

// PrepareStream implements api.AudioDevice.
func (d *proxyDev) PrepareStream(rateHz, periodBytes, periods int) error {
	if periodBytes > MaxPeriodBytes {
		return fmt.Errorf("audioproxy: period too large")
	}
	reply, err := d.p().C.Send(uchan.Msg{
		Op:   OpPrepare,
		Args: [6]uint64{uint64(rateHz), uint64(periodBytes), uint64(periods)},
	})
	if err != nil {
		return fmt.Errorf("audioproxy: prepare: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("audioproxy: driver prepare failed: %s", reply.Data)
	}
	return nil
}

// WritePeriod implements api.AudioDevice (asynchronous: the stream's ring
// semantics tolerate it, and blocking the kernel per period would defeat
// the point).
func (d *proxyDev) WritePeriod(idx int, samples []byte) error {
	p := d.p()
	buf := guard.CopyIn(p.Acct, &p.Guard, samples)
	return p.C.ASend(uchan.Msg{Op: OpWritePeriod, Args: [6]uint64{uint64(idx)}, Data: buf})
}

// Trigger implements api.AudioDevice.
func (d *proxyDev) Trigger(start bool) error {
	var v uint64
	if start {
		v = 1
	}
	reply, err := d.p().C.Send(uchan.Msg{Op: OpTrigger, Args: [6]uint64{v}})
	if err != nil {
		return fmt.Errorf("audioproxy: trigger: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("audioproxy: driver trigger failed: %s", reply.Data)
	}
	return nil
}

// Pointer implements api.AudioDevice (synchronous upcall, like the paper's
// MII ioctl example).
func (d *proxyDev) Pointer() (int, error) {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpPointer})
	if err != nil {
		return 0, fmt.Errorf("audioproxy: pointer: %w", err)
	}
	return int(reply.Args[1]), nil
}
