package audioproxy

import (
	"bytes"
	"testing"

	"sud/internal/devices/hda"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/proxy/pciaccess"
	"sud/internal/uchan"
)

type rig struct {
	m *hw.Machine
	k *kernel.Kernel
	c *uchan.Chan
	p *Proxy

	upcalls []uchan.Msg
	reply   func(uchan.Msg) *uchan.Msg
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	codec := hda.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(codec)
	acct := m.CPU.Account("driver:test")
	df := pciaccess.Open(k, codec, 1001, acct)
	c := uchan.New(m.Loop, k.Acct, acct)
	r := &rig{m: m, k: k, c: c}
	c.DriverHandler = func(msg uchan.Msg) *uchan.Msg {
		r.upcalls = append(r.upcalls, msg)
		if r.reply != nil {
			return r.reply(msg)
		}
		return &uchan.Msg{Seq: msg.Seq}
	}
	p, err := New(k.Audio, df, c, "hda0")
	if err != nil {
		t.Fatal(err)
	}
	c.KernelHandler = p.HandleDowncall
	r.p = p
	return r
}

func TestPrepareTriggerPointerUpcalls(t *testing.T) {
	r := newRig(t)
	r.reply = func(m uchan.Msg) *uchan.Msg {
		rep := &uchan.Msg{Seq: m.Seq}
		if m.Op == OpPointer {
			rep.Args[1] = 4800
		}
		return rep
	}
	dev := (*proxyDev)(r.p)
	if err := dev.PrepareStream(48000, 4800, 4); err != nil {
		t.Fatal(err)
	}
	if err := dev.Trigger(true); err != nil {
		t.Fatal(err)
	}
	pos, err := dev.Pointer()
	if err != nil || pos != 4800 {
		t.Fatalf("pointer: %d %v", pos, err)
	}
	if len(r.upcalls) != 3 {
		t.Fatalf("upcalls = %d", len(r.upcalls))
	}
	if r.upcalls[0].Args[0] != 48000 || r.upcalls[0].Args[1] != 4800 || r.upcalls[0].Args[2] != 4 {
		t.Fatalf("prepare args %v", r.upcalls[0].Args)
	}
	if err := dev.PrepareStream(48000, MaxPeriodBytes+1, 2); err == nil {
		t.Fatal("giant period accepted")
	}
}

func TestWritePeriodInline(t *testing.T) {
	r := newRig(t)
	dev := (*proxyDev)(r.p)
	samples := bytes.Repeat([]byte{0x42}, 128)
	if err := dev.WritePeriod(3, samples); err != nil {
		t.Fatal(err)
	}
	r.m.Loop.Run()
	if len(r.upcalls) != 1 || r.upcalls[0].Op != OpWritePeriod {
		t.Fatalf("upcalls: %v", r.upcalls)
	}
	if r.upcalls[0].Args[0] != 3 || !bytes.Equal(r.upcalls[0].Data, samples) {
		t.Fatal("period payload wrong")
	}
	// The proxy copied: mutating the caller's slice later is harmless.
	samples[0] = 0xFF
	if r.upcalls[0].Data[0] != 0x42 {
		t.Fatal("inline data aliases the caller's buffer")
	}
}

func TestPeriodAndXRunDowncalls(t *testing.T) {
	r := newRig(t)
	if err := r.p.PCM.Prepare(48000, 16, 2); err == nil {
		// Prepare goes through the proxy (sync upcall); default reply OK.
		_ = r.p.PCM.WritePeriod(make([]byte, 16))
	}
	r.p.HandleDowncall(uchan.Msg{Op: OpPeriodElapsed})
	if r.p.PCM.PeriodsElapsed != 1 || r.p.PeriodDowncalls != 1 {
		t.Fatal("period downcall not forwarded")
	}
	r.p.HandleDowncall(uchan.Msg{Op: OpXRun})
	if r.p.PCM.XRuns == 0 {
		t.Fatal("xrun downcall not forwarded")
	}
	r.p.HandleDowncall(uchan.Msg{Op: 9999})
	if r.p.BadDowncalls != 1 {
		t.Fatal("unknown downcall not counted")
	}
}

func TestHungDriverErrorsPropagate(t *testing.T) {
	r := newRig(t)
	r.c.Hung = true
	dev := (*proxyDev)(r.p)
	if err := dev.PrepareStream(48000, 100, 2); err == nil {
		t.Fatal("prepare to hung driver succeeded")
	}
	if err := dev.Trigger(true); err == nil {
		t.Fatal("trigger to hung driver succeeded")
	}
	if _, err := dev.Pointer(); err == nil {
		t.Fatal("pointer to hung driver succeeded")
	}
}
