package ethproxy

// The GuardPageFlip receive path (§3.1.2, amortised): instead of guard-copying
// every frame out of shared memory, the proxy flips ownership of whole buffer
// pages. A batch's references are grouped by 4-KiB page; a page whose slots
// are fully tiled by valid references is revoked from the driver's IOMMU
// domain in a single walk (the device faults on further DMA to it, the driver
// process faults on further loads/stores), its frames are delivered to the
// netstack by reference with checksum verification only, and the page is
// queued for the lazy recycle lane. One IOTLB shootdown per batch makes the
// revocations globally visible — the per-buffer invalidation the paper
// rejected as prohibitive becomes affordable when amortised over ~30 frames.
// Anything that cannot flip — unaligned references, partially-covered pages,
// duplicate slots — falls back to the per-frame fused guard copy, so the
// TOCTOU property never depends on driver cooperation.

import (
	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// slotsPerPage is how many RX buffer slots tile one page.
const slotsPerPage = mem.PageSize / RxSlotSize

// recycleThreshold is how many flipped pages accumulate on a queue before
// the proxy remaps them and sends one recycle upcall. Small against the
// driver's ring (128 pages/queue for the e1000e geometry) so the pool never
// starves, large enough that recycle costs amortise.
const recycleThreshold = 16

type pageGroup struct {
	iova mem.Addr
	mask uint
	refs [slotsPerPage]RxRef
	bad  bool // duplicate slot: treat every member as loose
}

// netifRxBatchFlip delivers one decoded RX batch under GuardPageFlip.
func (p *Proxy) netifRxBatchFlip(q int, refs []RxRef) {
	var groups []*pageGroup
	idx := make(map[mem.Addr]*pageGroup, len(refs)/slotsPerPage+1)
	var loose []RxRef
	for _, r := range refs {
		iova := mem.Addr(r.IOVA)
		n := int(r.Len)
		if n <= 0 || n > RxSlotSize || iova%RxSlotSize != 0 {
			// Not slot-packed: cannot participate in page coverage.
			// netifRx applies its own length/range validation.
			loose = append(loose, r)
			continue
		}
		page := mem.PageAlign(iova)
		g := idx[page]
		if g == nil {
			g = &pageGroup{iova: page}
			idx[page] = g
			groups = append(groups, g)
		}
		slot := int(iova-page) / RxSlotSize
		if g.mask&(1<<slot) != 0 {
			g.bad = true
		}
		g.mask |= 1 << slot
		g.refs[slot] = r
	}

	flipped := 0
	for _, g := range groups {
		full := !g.bad && g.mask == 1<<slotsPerPage-1
		delivered := false
		if full && p.DF.ValidateRange(g.iova, mem.PageSize) {
			phys, err := p.DF.RevokePage(g.iova)
			if err == nil {
				p.K.Acct.Charge(sim.CostPageFlipRevoke)
				p.PagesFlipped++
				flipped++
				delivered = true
				for slot := 0; slot < slotsPerPage; slot++ {
					r := g.refs[slot]
					n := int(r.Len)
					if n > netstack.EthHeaderLen+1500+4 {
						p.RxBadLength++
						continue
					}
					view, ok := p.K.Mem.Slice(phys+mem.Addr(slot*RxSlotSize), n)
					if !ok {
						p.RxInvalidRef++
						continue
					}
					// The driver's window onto the page is gone, so
					// the view is stable: checksum verification is
					// the whole guard. Zero copied bytes.
					p.K.Acct.Charge(sim.Checksum(n))
					p.K.Net.Trace.Event(trace.ClassNetRx, q, r.IOVA, trace.HopFlip)
					p.RxQueueFrames[q]++
					p.Ifc.NetifRxVerified(view, q)
					p.rxDelivered(q, r.IOVA)
				}
			}
		}
		if !delivered {
			// Partial coverage, failed validation (counted there), or a
			// lost revoke race: per-frame fused guard for every member.
			for slot := 0; slot < slotsPerPage; slot++ {
				if g.mask&(1<<slot) != 0 {
					r := g.refs[slot]
					p.netifRx(q, mem.Addr(r.IOVA), int(r.Len))
				}
			}
		}
		// Return the page whether it flipped or not: under page flip a
		// page-aware driver re-arms descriptors only on recycle, so the
		// recycle lane doubles as the ownership token for pages whose
		// frames went through the guard-copy fallback. lent dedups pages
		// whose slots straddle batches; the FIFO append order matches the
		// driver's descriptor consumption order.
		if !p.lent[q][uint64(g.iova)] {
			p.lent[q][uint64(g.iova)] = true
			p.pendingRecycle[q] = append(p.pendingRecycle[q], uint64(g.iova))
		}
	}
	for _, r := range loose {
		p.netifRx(q, mem.Addr(r.IOVA), int(r.Len))
	}
	if flipped > 0 {
		// One shootdown covers every page this batch revoked.
		p.K.Acct.Charge(sim.CostIOTLBShootdown)
		p.Shootdowns++
	}
	if len(p.pendingRecycle[q]) >= recycleThreshold {
		p.flushRecycleQ(q)
	}
}

// flushRecycleQ remaps queue q's pending flipped pages back into the
// driver's domain and returns them in one recycle upcall.
func (p *Proxy) flushRecycleQ(q int) {
	pending := p.pendingRecycle[q]
	if len(pending) == 0 {
		return
	}
	p.pendingRecycle[q] = p.pendingRecycle[q][:0]
	for start := 0; start < len(pending); start += protocol.MaxRecyclePages {
		end := start + protocol.MaxRecyclePages
		if end > len(pending) {
			end = len(pending)
		}
		var returned []uint64
		for _, page := range pending[start:end] {
			delete(p.lent[q], page)
			if p.DF.PageRevoked(mem.Addr(page)) {
				// RecyclePage fails only if the device file is gone —
				// the driver died and teardown reclaimed the page;
				// nothing to return then.
				if err := p.DF.RecyclePage(mem.Addr(page)); err != nil {
					continue
				}
				p.K.Acct.Charge(sim.CostPageRecycleMap)
			}
			// A page that never flipped (guard-copied slots) is returned
			// without a remap: it never left the driver's domain, the
			// message only hands back re-arm ownership.
			returned = append(returned, page)
		}
		if len(returned) == 0 {
			continue
		}
		err := p.C.ASend(q, uchan.Msg{
			Op:   OpPageRecycle,
			Data: protocol.EncodeRecycle(uint32(p.epoch), returned),
		})
		if err != nil {
			// The pages are back in the driver's domain either way; a
			// hung ring just means the driver never re-arms them.
			p.UpcallErrors++
			continue
		}
		p.RecycleUpcalls++
	}
}

// FlushRecycle forces every queue's pending flipped pages back to the driver
// regardless of threshold (tests, teardown).
func (p *Proxy) FlushRecycle() {
	for q := range p.pendingRecycle {
		p.flushRecycleQ(q)
	}
}

// PendingRecyclePages reports pages flipped but not yet recycled, summed
// across queues (recovery tests assert this drains or is reclaimed).
func (p *Proxy) PendingRecyclePages() int {
	n := 0
	for _, pr := range p.pendingRecycle {
		n += len(pr)
	}
	return n
}
