package ethproxy

import (
	"testing"
)

// TestRxBatchRoundTrip pins the batched-RX framing: every reference
// survives encode→decode, and the encoder truncates at MaxRxBatch.
func TestRxBatchRoundTrip(t *testing.T) {
	cases := [][]RxRef{
		{{IOVA: 0x1000, Len: 64}},
		{{IOVA: ^uint64(0), Len: ^uint32(0)}, {IOVA: 0, Len: 0}},
		make([]RxRef, MaxRxBatch),
	}
	for _, refs := range cases {
		got, err := DecodeRxBatch(EncodeRxBatch(refs))
		if err != nil {
			t.Fatalf("decode(%d refs): %v", len(refs), err)
		}
		if len(got) != len(refs) {
			t.Fatalf("round trip %d -> %d refs", len(refs), len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("ref %d mangled: %+v -> %+v", i, refs[i], got[i])
			}
		}
	}
	// Oversized input truncates at the bound instead of overflowing.
	big := make([]RxRef, MaxRxBatch+7)
	got, err := DecodeRxBatch(EncodeRxBatch(big))
	if err != nil || len(got) != MaxRxBatch {
		t.Fatalf("oversized batch: %d refs, %v", len(got), err)
	}
}

// TestRxBatchDecodeRejectsMalformed covers the defensive paths a malicious
// driver can hit by scribbling batch bytes into its rings.
func TestRxBatchDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeRxBatch(nil); err != ErrBatchShort {
		t.Fatalf("nil batch: %v", err)
	}
	if _, err := DecodeRxBatch([]byte{1}); err != ErrBatchShort {
		t.Fatalf("1-byte batch: %v", err)
	}
	// Zero count and absurd counts are rejected.
	if _, err := DecodeRxBatch([]byte{0, 0}); err != ErrBatchCount {
		t.Fatalf("zero count: %v", err)
	}
	if _, err := DecodeRxBatch([]byte{0xFF, 0xFF}); err != ErrBatchCount {
		t.Fatalf("absurd count: %v", err)
	}
	// Count names more refs than the buffer carries.
	b := EncodeRxBatch([]RxRef{{IOVA: 1, Len: 2}})
	b[0] = 2
	if _, err := DecodeRxBatch(b); err != ErrBatchTrunc {
		t.Fatalf("truncated batch: %v", err)
	}
	// Trailing garbage is rejected, not silently ignored (no parser
	// ambiguity for a smuggled second payload).
	b = EncodeRxBatch([]RxRef{{IOVA: 1, Len: 2}})
	b = append(b, 0xEE)
	if _, err := DecodeRxBatch(b); err != ErrBatchSlack {
		t.Fatalf("slack bytes: %v", err)
	}
}

// FuzzDecodeRxBatch hammers the kernel-side batch decoder with arbitrary
// bytes — the framing an untrusted driver process writes into shared
// memory. The decoder must never panic, anything it accepts must respect
// the batch bound, and accepted batches must re-encode to bytes that decode
// identically (no parser ambiguity).
func FuzzDecodeRxBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRxBatch([]RxRef{{IOVA: 0x2000, Len: 1514}}))
	f.Add(EncodeRxBatch(make([]RxRef, MaxRxBatch)))
	f.Add([]byte{0xFF, 0x00, 1, 2, 3})
	// Page-flip shapes: slot-packed refs fully tiling one page (the flip
	// fast path), a duplicate slot (must fall back to the per-frame
	// guard), and a ref straddling a slot boundary.
	f.Add(EncodeRxBatch([]RxRef{
		{IOVA: 0x4000, Len: 1514}, {IOVA: 0x4000 + RxSlotSize, Len: 60},
	}))
	f.Add(EncodeRxBatch([]RxRef{
		{IOVA: 0x4000, Len: 64}, {IOVA: 0x4000, Len: 64},
	}))
	f.Add(EncodeRxBatch([]RxRef{{IOVA: 0x4000 + RxSlotSize/2, Len: 1514}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := DecodeRxBatch(data)
		if err != nil {
			return
		}
		if len(refs) == 0 || len(refs) > MaxRxBatch {
			t.Fatalf("accepted %d refs", len(refs))
		}
		refs2, err := DecodeRxBatch(EncodeRxBatch(refs))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(refs2) != len(refs) {
			t.Fatal("decode/encode/decode not stable")
		}
		for i := range refs {
			if refs[i] != refs2[i] {
				t.Fatal("decode/encode/decode mangled a ref")
			}
		}
	})
}
