package ethproxy

import (
	"bytes"
	"testing"

	"sud/internal/devices/e1000"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/proxy/pciaccess"
	"sud/internal/sim"
	"sud/internal/uchan"
)

var mac = [6]byte{2, 0, 0, 0, 0, 9}

type rig struct {
	m  *hw.Machine
	k  *kernel.Kernel
	df *pciaccess.DeviceFile
	mc *uchan.MultiChan
	c  *uchan.Chan
	p  *Proxy

	// upcalls captured on the "driver" side.
	upcalls []uchan.Msg
	reply   func(m uchan.Msg) *uchan.Msg
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, mac, e1000.DefaultParams())
	m.AttachDevice(nic)
	acct := m.CPU.Account("driver:test")
	df := pciaccess.Open(k, nic, 1001, acct)
	mc := uchan.NewMulti(m.Loop, k.Acct, []*sim.CPUAccount{acct})
	r := &rig{m: m, k: k, df: df, mc: mc, c: mc.Queue(0)}
	mc.SetDriverHandler(func(_ int, msg uchan.Msg) *uchan.Msg {
		r.upcalls = append(r.upcalls, msg)
		if r.reply != nil {
			return r.reply(msg)
		}
		return &uchan.Msg{Seq: msg.Seq}
	})
	ki := &KernelIface{Acct: k.Acct, Mem: m.Mem, Net: k.Net}
	p, err := New(ki, df, mc, "eth0", mac)
	if err != nil {
		t.Fatal(err)
	}
	mc.SetKernelHandler(func(q int, msg uchan.Msg) { p.HandleDowncall(q, msg) })
	r.p = p
	return r
}

func TestRegistrationCreatesIfaceAndPool(t *testing.T) {
	r := newRig(t)
	if r.p.Ifc.MAC != netstack.MAC(mac) {
		t.Fatal("MAC not mirrored")
	}
	if r.p.FreeTxSlots() != TxSlots {
		t.Fatalf("pool = %d", r.p.FreeTxSlots())
	}
	if len(r.df.Allocs()) != 1 || r.df.Allocs()[0].Label != "TX q0 slot pool" {
		t.Fatal("pool not allocated through the device file")
	}
	// A second proxy asking for the same name gets the next free ethN,
	// as the netdev core allocates names for additional NICs.
	ki := &KernelIface{Acct: r.k.Acct, Mem: r.m.Mem, Net: r.k.Net}
	p2, err := New(ki, r.df, r.mc, "eth0", mac)
	if err != nil {
		t.Fatalf("second registration: %v", err)
	}
	if p2.Ifc.Name != "eth1" || ki.IfaceNm != "eth1" {
		t.Fatalf("second proxy named %q, want eth1", p2.Ifc.Name)
	}
}

func TestOpenStopIoctlRoundTrip(t *testing.T) {
	r := newRig(t)
	r.reply = func(m uchan.Msg) *uchan.Msg {
		rep := &uchan.Msg{Seq: m.Seq}
		if m.Op == OpIoctl {
			rep.Data = []byte{0xAB}
		}
		return rep
	}
	dev := (*proxyDev)(r.p)
	if err := dev.Open(); err != nil {
		t.Fatal(err)
	}
	out, err := dev.DoIoctl(7, []byte{1})
	if err != nil || out[0] != 0xAB {
		t.Fatalf("ioctl: %v %v", out, err)
	}
	if err := dev.Stop(); err != nil {
		t.Fatal(err)
	}
	// Driver-reported failure propagates.
	r.reply = func(m uchan.Msg) *uchan.Msg {
		return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}, Data: []byte("boom")}
	}
	if err := dev.Open(); err == nil {
		t.Fatal("driver open failure swallowed")
	}
}

func TestXmitUsesSharedSlotsWithBackpressure(t *testing.T) {
	r := newRig(t)
	dev := (*proxyDev)(r.p)
	frame := bytes.Repeat([]byte{0x3C}, 100)
	for i := 0; i < TxSlots; i++ {
		if err := dev.StartXmit(frame); err != nil {
			t.Fatalf("xmit %d: %v", i, err)
		}
	}
	// Pool exhausted (no XmitDone yet): backpressure.
	if err := dev.StartXmit(frame); err == nil {
		t.Fatal("xmit with empty pool accepted")
	}
	r.m.Loop.Run() // drain upcalls
	if len(r.upcalls) != TxSlots {
		t.Fatalf("driver saw %d xmits", len(r.upcalls))
	}
	// The frame bytes really are in the shared slot the message names.
	msg := r.upcalls[0]
	phys, ok := r.df.PhysFor(mem.Addr(msg.Args[0]))
	if !ok {
		t.Fatal("xmit references unknown memory")
	}
	got := make([]byte, int(msg.Args[1]))
	r.m.Mem.MustRead(phys, got)
	if !bytes.Equal(got, frame) {
		t.Fatal("shared slot content wrong")
	}
	// Return enough slots: queue wakes only past the threshold.
	var woken bool
	r.p.Ifc.OnWake = func() { woken = true }
	for i := 0; i < r.p.wakeThreshold()-1; i++ {
		r.p.HandleDowncall(0, uchan.Msg{Op: OpXmitDone, Args: [6]uint64{uint64(i)}})
	}
	if woken {
		t.Fatal("woke below threshold")
	}
	r.p.HandleDowncall(0, uchan.Msg{Op: OpXmitDone, Args: [6]uint64{uint64(r.p.wakeThreshold())}})
	if !woken {
		t.Fatal("no wake at threshold")
	}
	// Oversized frames and bad slot indices are rejected/ignored.
	if err := dev.StartXmit(make([]byte, TxSlotSize+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	before := r.p.FreeTxSlots()
	r.p.HandleDowncall(0, uchan.Msg{Op: OpXmitDone, Args: [6]uint64{99999}})
	if r.p.FreeTxSlots() != before {
		t.Fatal("bogus slot index freed something")
	}
}

// newRigQ is newRig with a 4-ring channel (per-queue service accounts).
func newRigQ(t *testing.T, queues int) *rig {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, mac, e1000.MultiQueueParams(queues))
	m.AttachDevice(nic)
	accts := m.CPU.QueueAccounts("driver:test", queues)
	df := pciaccess.Open(k, nic, 1001, accts[0])
	mc := uchan.NewMulti(m.Loop, k.Acct, accts)
	r := &rig{m: m, k: k, df: df, mc: mc, c: mc.Queue(0)}
	mc.SetDriverHandler(func(_ int, msg uchan.Msg) *uchan.Msg {
		r.upcalls = append(r.upcalls, msg)
		if r.reply != nil {
			return r.reply(msg)
		}
		return &uchan.Msg{Seq: msg.Seq}
	})
	ki := &KernelIface{Acct: k.Acct, Mem: m.Mem, Net: k.Net}
	p, err := New(ki, df, mc, "eth0", mac)
	if err != nil {
		t.Fatal(err)
	}
	mc.SetKernelHandler(func(q int, msg uchan.Msg) { p.HandleDowncall(q, msg) })
	r.p = p
	return r
}

// TestBatchedRxDelivery covers the batched RX downcall: a well-formed batch
// delivers every validated reference into its queue's partition, malformed
// framing is dropped and counted, and a poisoned reference inside an
// otherwise valid batch is skipped without sinking its neighbours.
func TestBatchedRxDelivery(t *testing.T) {
	r := newRigQ(t, 4)
	var delivered int
	if _, err := r.k.Net.UDPBind(80, func([]byte, netstack.IP, uint16) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	frame := netstack.BuildUDPFrame(netstack.MAC{9}, netstack.MAC(mac),
		netstack.IP{1}, netstack.IP{2}, 1, 80, []byte("ok"))
	alloc := r.df.Allocs()[0]
	r.m.Mem.MustWrite(alloc.Phys, frame)
	r.m.Mem.MustWrite(alloc.Phys+mem.Addr(2048), frame)

	batch := EncodeRxBatch([]RxRef{
		{IOVA: uint64(alloc.IOVA), Len: uint32(len(frame))},
		{IOVA: uint64(alloc.IOVA) + 2048, Len: uint32(len(frame))},
	})
	r.p.HandleDowncall(2, uchan.Msg{Op: OpNetifRxBatch, Data: batch})
	if delivered != 2 {
		t.Fatalf("delivered %d of 2 batched frames", delivered)
	}
	if r.p.RxQueueBatches[2] != 1 || r.p.RxQueueFrames[2] != 2 {
		t.Fatalf("queue 2 partition: %d batches, %d frames",
			r.p.RxQueueBatches[2], r.p.RxQueueFrames[2])
	}
	if r.p.Ifc.Queue(2).RxFrames != 2 {
		t.Fatal("netstack queue context not credited")
	}
	// Malformed framing: dropped and counted, nothing delivered.
	r.p.HandleDowncall(1, uchan.Msg{Op: OpNetifRxBatch, Data: []byte{0xFF, 0xFF, 1}})
	if r.p.RxBadBatch != 1 || delivered != 2 {
		t.Fatalf("malformed batch: bad=%d delivered=%d", r.p.RxBadBatch, delivered)
	}
	// A poisoned reference inside a valid batch: the bad ref is counted,
	// the good one still lands.
	mixed := EncodeRxBatch([]RxRef{
		{IOVA: uint64(hw.DRAMBase), Len: 64},
		{IOVA: uint64(alloc.IOVA), Len: uint32(len(frame))},
	})
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRxBatch, Data: mixed})
	if r.p.RxInvalidRef != 1 || delivered != 3 {
		t.Fatalf("mixed batch: invalid=%d delivered=%d", r.p.RxInvalidRef, delivered)
	}
}

// TestPerQueueSlotWake: exhausting one queue's slot partition stalls only
// that queue, and returning its slots wakes only its netstack context.
func TestPerQueueSlotWake(t *testing.T) {
	r := newRigQ(t, 4)
	dev := (*proxyDev)(r.p)
	frame := bytes.Repeat([]byte{0x3C}, 100)
	for i := 0; i < r.p.perQueue; i++ {
		if err := dev.StartXmitQ(frame, 0); err != nil {
			t.Fatalf("xmit %d: %v", i, err)
		}
	}
	if err := dev.StartXmitQ(frame, 0); err == nil {
		t.Fatal("queue 0 accepted a frame with an empty partition")
	}
	// Sibling queues keep accepting.
	if err := dev.StartXmitQ(frame, 1); err != nil {
		t.Fatalf("queue 1 stalled by queue 0 exhaustion: %v", err)
	}
	var wake0, wake1 int
	r.p.Ifc.Queue(0).OnWake = func() { wake0++ }
	r.p.Ifc.Queue(1).OnWake = func() { wake1++ }
	// Return queue 0's slots; the wake fires at the per-queue threshold
	// and touches only queue 0.
	for i := 0; i < r.p.wakeThreshold(); i++ {
		r.p.HandleDowncall(0, uchan.Msg{Op: OpXmitDone, Args: [6]uint64{uint64(i)}})
	}
	if wake0 != 1 || wake1 != 0 {
		t.Fatalf("wakes: q0=%d q1=%d, want 1/0", wake0, wake1)
	}
}

func TestNetifRxValidation(t *testing.T) {
	r := newRig(t)
	var delivered int
	if _, err := r.k.Net.UDPBind(80, func([]byte, netstack.IP, uint16) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	// Valid reference: a frame staged in the driver's own pool.
	frame := netstack.BuildUDPFrame(netstack.MAC{9}, netstack.MAC(mac),
		netstack.IP{1}, netstack.IP{2}, 1, 80, []byte("ok"))
	alloc := r.df.Allocs()[0]
	r.m.Mem.MustWrite(alloc.Phys, frame)
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRx, Args: [6]uint64{uint64(alloc.IOVA), uint64(len(frame))}})
	if delivered != 1 {
		t.Fatal("valid frame not delivered")
	}
	// Reference outside the driver's memory: rejected.
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRx, Args: [6]uint64{uint64(hw.DRAMBase), 64}})
	if r.p.RxInvalidRef != 1 {
		t.Fatal("foreign reference accepted")
	}
	// Absurd lengths: rejected.
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRx, Args: [6]uint64{uint64(alloc.IOVA), 1 << 20}})
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRx, Args: [6]uint64{uint64(alloc.IOVA), 0}})
	if r.p.RxBadLength != 2 {
		t.Fatalf("bad lengths = %d", r.p.RxBadLength)
	}
	// Inline (bounced) frames also deliver.
	r.p.HandleDowncall(0, uchan.Msg{Op: OpNetifRx, Data: frame, Args: [6]uint64{0, uint64(len(frame))}})
	if delivered != 2 {
		t.Fatal("inline frame not delivered")
	}
	// Unknown downcalls are counted, not trusted.
	r.p.HandleDowncall(0, uchan.Msg{Op: 9999})
	if r.p.UpcallErrors != 1 {
		t.Fatal("unknown op not counted")
	}
}

func TestCarrierMirrorDowncalls(t *testing.T) {
	r := newRig(t)
	r.p.HandleDowncall(0, uchan.Msg{Op: OpCarrierOn})
	if !r.p.Ifc.Carrier() || r.p.MirrorUpdates != 1 {
		t.Fatal("carrier-on not mirrored")
	}
	r.p.HandleDowncall(0, uchan.Msg{Op: OpCarrierOff})
	if r.p.Ifc.Carrier() || r.p.MirrorUpdates != 2 {
		t.Fatal("carrier-off not mirrored")
	}
	_ = sim.Second
}

func TestHungDriverXmitBackpressure(t *testing.T) {
	r := newRig(t)
	r.c.Hung = true
	dev := (*proxyDev)(r.p)
	var failed bool
	for i := 0; i < 2*uchan.RingSlots; i++ {
		if err := dev.StartXmit([]byte{1}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("hung driver never backpressured xmit")
	}
}
