package ethproxy

import "errors"

// Batched RX delivery framing.
//
// On a multi-queue channel the driver process posts received frames as
// shared-buffer references, batched up to MaxRxBatch per downcall message:
// one ring slot (and, with downcall batching, a fraction of one doorbell)
// carries a whole interrupt's worth of frames for a queue, instead of one
// message per frame. The batch bytes are written by the untrusted driver
// process, so the kernel-side decoder treats them as hostile input: it never
// panics, bounds every count and length, and malformed batches are dropped
// and counted, never dispatched. DecodeRxBatch is fuzzed for exactly that
// reason.
//
// Batch layout (little-endian):
//
//	[0:2)   frame count
//	[2:..)  count × { [0:8) buffer IOVA, [8:12) length }
const (
	// MaxRxBatch is B: the most frame references one batch downcall may
	// carry (the per-doorbell drain bound of the batched delivery path).
	MaxRxBatch = 32

	rxBatchHeaderLen = 2
	rxRefLen         = 12
)

// RxRef is one received-frame reference: a buffer in the driver's own DMA
// memory plus its length. The kernel validates the range against the
// driver's allocations before touching it, like every other shared-memory
// reference.
type RxRef struct {
	IOVA uint64
	Len  uint32
}

// Batch decode errors.
var (
	ErrBatchShort = errors.New("ethproxy: rx batch shorter than header")
	ErrBatchCount = errors.New("ethproxy: rx batch count out of range")
	ErrBatchTrunc = errors.New("ethproxy: rx batch truncated")
	ErrBatchSlack = errors.New("ethproxy: rx batch has trailing bytes")
)

// EncodeRxBatch marshals up to MaxRxBatch frame references into batch bytes.
// Longer slices are truncated to MaxRxBatch (callers flush at the bound).
func EncodeRxBatch(refs []RxRef) []byte {
	if len(refs) > MaxRxBatch {
		refs = refs[:MaxRxBatch]
	}
	buf := make([]byte, rxBatchHeaderLen+rxRefLen*len(refs))
	buf[0] = byte(len(refs))
	buf[1] = byte(len(refs) >> 8)
	for i, r := range refs {
		off := rxBatchHeaderLen + rxRefLen*i
		for b := 0; b < 8; b++ {
			buf[off+b] = byte(r.IOVA >> (8 * b))
		}
		for b := 0; b < 4; b++ {
			buf[off+8+b] = byte(r.Len >> (8 * b))
		}
	}
	return buf
}

// DecodeRxBatch unmarshals batch bytes written by the (untrusted) driver
// process. It never panics on arbitrary input; malformed batches return an
// error.
func DecodeRxBatch(buf []byte) ([]RxRef, error) {
	if len(buf) < rxBatchHeaderLen {
		return nil, ErrBatchShort
	}
	count := int(buf[0]) | int(buf[1])<<8
	if count == 0 || count > MaxRxBatch {
		return nil, ErrBatchCount
	}
	want := rxBatchHeaderLen + rxRefLen*count
	if len(buf) < want {
		return nil, ErrBatchTrunc
	}
	if len(buf) > want {
		return nil, ErrBatchSlack
	}
	refs := make([]RxRef, count)
	for i := range refs {
		off := rxBatchHeaderLen + rxRefLen*i
		var iova uint64
		for b := 7; b >= 0; b-- {
			iova = iova<<8 | uint64(buf[off+b])
		}
		var n uint32
		for b := 3; b >= 0; b-- {
			n = n<<8 | uint32(buf[off+8+b])
		}
		refs[i] = RxRef{IOVA: iova, Len: n}
	}
	return refs, nil
}
