// Package ethproxy is SUD's Ethernet proxy driver (§3.1): the in-kernel
// module that implements the Linux netdev contract on behalf of an untrusted
// user-space driver, translating kernel calls into uchan upcalls and driver
// downcalls back into kernel operations.
//
// It makes no liveness or semantic assumptions about the driver process:
// synchronous upcalls (open/stop/ioctl) are interruptible, packet transmit
// is asynchronous with shared-buffer backpressure, and every shared-memory
// reference arriving from the driver is validated against the driver's own
// DMA allocations before the kernel touches it. Received packet payloads are
// guard-copied out of shared memory in the same pass that verifies their
// checksum (§3.1.2), closing the TOCTOU window. The proxy records its
// interface's incarnation epoch at bind time; once the netstack begins
// shadow recovery (driver death, §2/§5.2) every downcall from the dead
// incarnation — frames, TX credits, wakes — is rejected and counted.
package ethproxy

import (
	"errors"
	"fmt"
	"strings"

	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// Upcall operations (kernel → driver).
const (
	OpOpen  = protocol.EthBase + iota // sync
	OpStop                            // sync
	OpXmit                            // async; Args: [0]=buffer IOVA, [1]=length, [2]=slot index, [3]=TX queue
	OpIoctl                           // sync; Args: [0]=cmd; Data: argument bytes
	// OpPageRecycle returns flipped buffer pages to the driver (async);
	// Data carries the protocol recycle framing (epoch + page IOVAs). The
	// pages have been remapped before the upcall is sent, so the driver
	// may re-arm descriptors over them immediately.
	OpPageRecycle
	// OpQueueEpoch announces a per-queue epoch transition (async); Data
	// carries the protocol qstate framing. A parked frame tells the
	// driver runtime one queue pair is quarantined; an armed frame
	// re-syncs the runtime at the queue's new epoch.
	OpQueueEpoch
)

// Downcall operations (driver → kernel).
const (
	OpNetifRx  = protocol.EthBase + 16 + iota // Args: [0]=buffer IOVA, [1]=length
	OpXmitDone                                // Args: [0]=slot index
	OpCarrierOn
	OpCarrierOff
	OpWakeQueue // Args: [0]=TX queue regaining space
	// OpNetifRxBatch delivers up to MaxRxBatch received-frame references
	// in one message; Data carries the rxbatch.go framing. The queue is
	// the ring the message arrived on.
	OpNetifRxBatch
	// OpRecycleAck echoes an OpPageRecycle frame back once the driver has
	// re-armed descriptors over the returned pages. Defensively decoded;
	// an ack whose embedded epoch does not match the live incarnation is
	// stale (a dead driver's leftovers) and is rejected.
	OpRecycleAck
)

// TX shared-pool geometry: SUD preallocates shared buffers and passes
// pointers, avoiding copies on the transmit path (§3.1.2).
const (
	TxSlots    = 256
	TxSlotSize = 2048
)

// Guard strategies for received shared-memory payloads (§3.1.2): the paper
// fuses the TOCTOU guard copy with checksum verification; the ablations
// measure the naive two-pass copy and the rejected read-only-page-table
// alternative (an IOTLB invalidation per buffer, which the paper found
// "prohibitively expensive").
const (
	GuardFused = iota
	GuardSeparate
	GuardReadonlyIOTLB
	// GuardNone passes the kernel a live view of the shared buffer — the
	// insecure zero-copy variant, kept to demonstrate the §3.1.2 TOCTOU
	// attack the guard copy exists to stop.
	GuardNone
	// GuardPageFlip amortises the guard to page granularity: for a batch
	// whose references fully tile a 4-KiB buffer page, the proxy revokes
	// the driver's IOMMU mapping for the whole page (one walk per page,
	// one IOTLB shootdown per batch), delivers every frame on it by
	// reference — the driver can no longer touch the bytes, so the TOCTOU
	// property holds without a copy — and returns the page on the lazy
	// recycle lane. Frames on partially-covered pages fall back to the
	// fused guard copy.
	GuardPageFlip
)

// RxSlotSize is the page-flip eligibility contract with page-aware drivers:
// RX buffers are packed two per 4-KiB page at this stride, and a reference
// only counts toward a page's coverage if it starts on a slot boundary. (It
// matches the e1000e buffer size; a driver using different packing simply
// never flips and pays the per-frame guard instead.)
const RxSlotSize = 2048

// Proxy is one Ethernet proxy driver instance. Both fast paths are
// multi-queue aware. Transmit: the shared buffer pool is partitioned across
// the channel's ring pairs, frames are steered to a queue by flow hash, and
// backpressure (slot exhaustion, ring-full) is tracked per queue so one
// saturated queue stops — and later wakes — only its own netstack queue
// context. Receive: each ring delivers into its own per-queue partition
// (validation and counters per ring), and frames arrive batched up to
// MaxRxBatch references per downcall so a queue pays a fraction of a
// doorbell per frame instead of a wakeup each.
type Proxy struct {
	K   *KernelIface
	DF  *pciaccess.DeviceFile
	C   *uchan.MultiChan
	Ifc *netstack.Iface

	pools    []*pciaccess.Alloc // per-queue TX slot pools (stream-tagged)
	perQueue int                // TX slots per queue (pool partition size)
	free     [][]int            // per-queue free slot lists (global slot indices)
	stalled  []bool             // per-queue: out of slots or ring space

	// GuardMode selects the §3.1.2 TOCTOU-guard strategy (ablations).
	GuardMode int

	// Per-queue RX partitions: frames and batches delivered per ring.
	RxQueueFrames  []uint64
	RxQueueBatches []uint64

	// epoch is the interface incarnation this proxy bound at; once the
	// netstack bumps it (driver death → recovery) every downcall still
	// signed by this proxy is stale and is rejected wholesale.
	epoch uint64

	// qepoch mirrors each queue's own incarnation epoch as of the last
	// RearmQueue — the queue-granular sibling of epoch. Between a
	// surgical quarantine and the re-arm, the mismatch rejects the
	// queue's RX deliveries at the proxy while siblings flow.
	qepoch []uint64

	// pendingRecycle holds consumed buffer pages (by IOVA) per queue
	// awaiting the lazy recycle flush back to the driver; lent dedups them,
	// so a page whose slots straddle two batches is returned exactly once.
	pendingRecycle [][]uint64
	lent           []map[uint64]bool

	// Security / robustness counters.
	RxInvalidRef uint64 // shared-buffer references outside the driver's memory
	RxBadLength  uint64
	RxBadBatch   uint64 // malformed batch framing from the driver
	RxStaleEpoch uint64 // downcalls from a dead driver incarnation
	// RxStaleQueueEpoch counts deliveries rejected by the per-queue epoch
	// discipline: the queue is quarantined and not yet re-armed.
	RxStaleQueueEpoch uint64
	RxRevokedRef      uint64 // references naming a page the kernel already owns
	TxDropsHung       uint64
	UpcallErrors      uint64
	MirrorUpdates     uint64 // shared-state synchronisation messages (§3.3)

	// Page-flip accounting (the bench metrics).
	GuardCopiedBytes uint64 // bytes that went through a guard copy
	PagesFlipped     uint64
	Shootdowns       uint64 // batch-amortised IOTLB shootdowns
	RecycleUpcalls   uint64
	RecycleAcks      uint64
	RecycleBadAck    uint64 // malformed ack framing from the driver
	RecycleStaleAck  uint64 // acks carrying a dead incarnation's epoch
}

// KernelIface is the slice of kernel services the proxy needs (breaking a
// direct dependency on the kernel package for testability).
type KernelIface struct {
	Acct    *sim.CPUAccount
	Mem     *mem.Memory
	Net     *netstack.Stack
	IfaceNm string
}

// New registers an Ethernet interface backed by the user-space driver on
// the other end of c. mac is the mirrored hardware address (§3.3: shared
// state such as dev_addr is synchronised, not fetched by upcall). If the
// requested interface name is taken, the next free ethN is allocated, as
// the kernel's netdev core does — so several NIC driver processes coexist.
func New(ki *KernelIface, df *pciaccess.DeviceFile, c *uchan.MultiChan, name string, mac [6]byte) (*Proxy, error) {
	q := c.NumQueues()
	pools, err := allocTxPools(df, q)
	if err != nil {
		return nil, fmt.Errorf("ethproxy: allocating TX pool: %w", err)
	}
	p := &Proxy{
		K: ki, DF: df, C: c, pools: pools,
		perQueue:       TxSlots / q,
		free:           make([][]int, q),
		stalled:        make([]bool, q),
		RxQueueFrames:  make([]uint64, q),
		RxQueueBatches: make([]uint64, q),
		pendingRecycle: make([][]uint64, q),
		lent:           make([]map[uint64]bool, q),
	}
	for i := range p.lent {
		p.lent[i] = make(map[uint64]bool)
	}
	for i := 0; i < p.perQueue*q; i++ {
		qi := i / p.perQueue
		p.free[qi] = append(p.free[qi], i)
	}
	ifc, err := registerUnique(ki.Net, name, mac, (*proxyDev)(p))
	if err != nil {
		return nil, err
	}
	ki.IfaceNm = ifc.Name
	p.Ifc = ifc
	p.epoch = ifc.Epoch()
	p.qepoch = make([]uint64, q)
	for i := range p.qepoch {
		p.qepoch[i] = ifc.QueueEpoch(i)
	}
	return p, nil
}

// NewStandby builds a proxy for a hot-standby driver process and
// pre-registers it with the netstack for the named LIVE interface — before
// any kill. The TX shared pool is allocated at arm time; only the binding
// to the interface object (whose failover epoch does not exist yet) is
// deferred to promotion. The MAC identity check runs here, inside
// RegisterStandby.
func NewStandby(ki *KernelIface, df *pciaccess.DeviceFile, c *uchan.MultiChan, name string, mac [6]byte) (*Proxy, error) {
	q := c.NumQueues()
	pools, err := allocTxPools(df, q)
	if err != nil {
		return nil, fmt.Errorf("ethproxy: allocating standby TX pool: %w", err)
	}
	p := &Proxy{
		K: ki, DF: df, C: c, pools: pools,
		perQueue:       TxSlots / q,
		free:           make([][]int, q),
		stalled:        make([]bool, q),
		RxQueueFrames:  make([]uint64, q),
		RxQueueBatches: make([]uint64, q),
		pendingRecycle: make([][]uint64, q),
		lent:           make([]map[uint64]bool, q),
	}
	for i := range p.lent {
		p.lent[i] = make(map[uint64]bool)
	}
	for i := 0; i < p.perQueue*q; i++ {
		qi := i / p.perQueue
		p.free[qi] = append(p.free[qi], i)
	}
	p.qepoch = make([]uint64, q)
	if err := ki.Net.RegisterStandby(name, mac, (*proxyDev)(p)); err != nil {
		return nil, err
	}
	return p, nil
}

// Bind attaches a promoted standby proxy to the interface it now backs. It
// must run after the netstack's PromoteStandby — the interface epoch has
// already been bumped by the primary's death, so the standby binds to the
// NEW incarnation and the dead primary's proxy stays stale.
func (p *Proxy) Bind(ifc *netstack.Iface) {
	p.Ifc = ifc
	p.epoch = ifc.Epoch()
	for i := range p.qepoch {
		p.qepoch[i] = ifc.QueueEpoch(i)
	}
	p.K.IfaceNm = ifc.Name
}

// StaleEpochDowncalls is the policy plane's zombie-incarnation evidence:
// downcalls this proxy rejected because the interface moved on to a newer
// driver incarnation.
func (p *Proxy) StaleEpochDowncalls() uint64 { return p.RxStaleEpoch }

// allocTxPools builds the per-queue TX slot pools: one device-file
// allocation per queue, tagged with the queue's stream (the NIC TX engine
// for queue i stamps i+1), so each queue's slots live in that queue's own
// IOMMU sub-domain. The kernel tags its pools itself — a sibling queue's
// descriptor naming a slot here faults at the walk whether or not the
// driver cooperates. The partitions are allocated back to back, so the
// IOVA layout is identical to the former single shared pool.
func allocTxPools(df *pciaccess.DeviceFile, q int) ([]*pciaccess.Alloc, error) {
	per := TxSlots / q
	pools := make([]*pciaccess.Alloc, q)
	for i := range pools {
		pool, err := df.AllocDMAQ(per*TxSlotSize, fmt.Sprintf("TX q%d slot pool", i), false, i+1)
		if err != nil {
			return nil, err
		}
		pools[i] = pool
	}
	return pools, nil
}

// registerUnique registers the netdev under the requested name; on a name
// collision it substitutes into the name's own template (trailing digits
// stripped, like the kernel's "eth%d") until a free slot is found. Any
// other registration failure propagates unchanged.
func registerUnique(net *netstack.Stack, name string, mac [6]byte, dev *proxyDev) (*netstack.Iface, error) {
	ifc, err := net.Register(name, mac, dev)
	if err == nil || !errors.Is(err, netstack.ErrNameTaken) {
		return ifc, err
	}
	base := strings.TrimRight(name, "0123456789")
	if base == "" {
		base = name
	}
	for i := 1; i < 16; i++ {
		ifc, retryErr := net.Register(fmt.Sprintf("%s%d", base, i), mac, dev)
		if retryErr == nil {
			return ifc, nil
		}
		if !errors.Is(retryErr, netstack.ErrNameTaken) {
			return nil, retryErr
		}
	}
	return nil, err
}

// proxyDev is the netstack-facing half: it satisfies the same NetDevice
// contract an in-kernel driver would, by RPC.
type proxyDev Proxy

func (d *proxyDev) p() *Proxy { return (*Proxy)(d) }

// Open forwards ndo_open as a synchronous, interruptible upcall.
func (d *proxyDev) Open() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpOpen})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("ethproxy: open upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("ethproxy: driver open failed: %s", reply.Data)
	}
	return nil
}

// Stop forwards ndo_stop.
func (d *proxyDev) Stop() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpStop})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("ethproxy: stop upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("ethproxy: driver stop failed: %s", reply.Data)
	}
	return nil
}

// TxQueues implements api.MultiQueueNetDevice: one netstack queue context
// per uchan ring pair.
func (d *proxyDev) TxQueues() int { return d.p().C.NumQueues() }

// StartXmit transmits on the flow's hashed queue (single-queue hosts).
func (d *proxyDev) StartXmit(frame []byte) error {
	p := d.p()
	return d.StartXmitQ(frame, netstack.TxQueueForFrame(frame, p.C.NumQueues()))
}

// StartXmitQ copies the frame into a shared slot of the given TX queue and
// queues an asynchronous transmit upcall on that queue's ring — the §3.1
// fast path. Pool exhaustion or a hung queue surfaces as backpressure on
// that queue only, never as a blocked kernel thread.
func (d *proxyDev) StartXmitQ(frame []byte, q int) error {
	p := d.p()
	if len(frame) > TxSlotSize {
		return fmt.Errorf("ethproxy: frame of %d bytes exceeds slot size", len(frame))
	}
	if q < 0 || q >= len(p.free) {
		q = 0
	}
	if len(p.free[q]) == 0 {
		p.stalled[q] = true
		return fmt.Errorf("ethproxy: no free TX slots on queue %d", q)
	}
	slot := p.free[q][len(p.free[q])-1]
	local := slot % p.perQueue
	iova := p.pools[q].IOVA + mem.Addr(local*TxSlotSize)
	phys := p.pools[q].Phys + mem.Addr(local*TxSlotSize)
	p.K.Acct.Charge(sim.Copy(len(frame)))
	if err := p.K.Mem.Write(phys, frame); err != nil {
		return fmt.Errorf("ethproxy: shared pool write: %w", err)
	}
	err := p.C.ASend(q, uchan.Msg{
		Op:   OpXmit,
		Args: [6]uint64{uint64(iova), uint64(len(frame)), uint64(slot), uint64(q)},
	})
	if err != nil {
		p.TxDropsHung++
		p.stalled[q] = true
		return fmt.Errorf("ethproxy: xmit upcall: %w", err)
	}
	p.free[q] = p.free[q][:len(p.free[q])-1]
	p.K.Net.Trace.Mark(trace.ClassNetTx, q, uint64(slot))
	p.K.Net.Trace.Event(trace.ClassNetTx, q, uint64(slot), trace.HopUchanEnq)
	return nil
}

// TxQueueForPorts is the flow-steering hash: the TX queue a flow with the
// given transport ports lands on among nq queues. Kept as an alias of the
// netstack steering function so tests and attack scenarios can target (or
// avoid) a specific queue without duplicating the hash.
func TxQueueForPorts(sport, dport uint16, nq int) int {
	return netstack.TxQueueForPorts(sport, dport, nq)
}

// DoIoctl forwards a device-private ioctl synchronously (the paper's
// SIOCGMIIREG example).
func (d *proxyDev) DoIoctl(cmd uint32, arg []byte) ([]byte, error) {
	p := d.p()
	reply, err := p.C.Send(uchan.Msg{Op: OpIoctl, Args: [6]uint64{uint64(cmd)}, Data: arg})
	if err != nil {
		p.UpcallErrors++
		return nil, fmt.Errorf("ethproxy: ioctl upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return nil, fmt.Errorf("ethproxy: driver ioctl failed: %s", reply.Data)
	}
	return reply.Data, nil
}

// HandleDowncall services one driver→kernel message in kernel context; the
// SUD-UML runtime routes Ethernet-range ops here. q is the ring the message
// arrived on — the RX partition it delivers into and the TX queue its
// completions credit.
func (p *Proxy) HandleDowncall(q int, m uchan.Msg) {
	if p.Ifc.Epoch() != p.epoch {
		// This proxy belongs to a dead driver incarnation: the interface
		// was (or is being) recovered onto a restarted process. Frames,
		// TX credits and wakes from the old incarnation are dropped and
		// counted — its shared buffers are gone and its slot indices now
		// name the new incarnation's pool.
		p.RxStaleEpoch++
		return
	}
	if q < 0 || q >= len(p.free) {
		q = 0
	}
	switch m.Op {
	case OpNetifRx:
		if p.queueStale(q) {
			return
		}
		if m.Data != nil {
			// Inline (bounced) frame: the bytes were copied through
			// the ring, so only checksum verification remains.
			p.K.Acct.Charge(sim.Checksum(len(m.Data)))
			p.RxQueueFrames[q]++
			p.Ifc.NetifRxVerified(m.Data, q)
			return
		}
		if p.GuardMode == GuardPageFlip {
			// Single-frame transport (Q=1 keeps the paper's exact
			// one-message-per-frame path): a lone ref can never tile a
			// page, so it takes the guard-copy fallback — but it must
			// still flow through the page bookkeeping, because a
			// page-aware driver re-arms its descriptor only when the
			// recycle lane returns the page.
			p.netifRxBatchFlip(q, []RxRef{{IOVA: m.Args[0], Len: uint32(m.Args[1])}})
			return
		}
		p.netifRx(q, mem.Addr(m.Args[0]), int(m.Args[1]))
	case OpNetifRxBatch:
		if p.queueStale(q) {
			return
		}
		refs, err := DecodeRxBatch(m.Data)
		if err != nil {
			// Malformed framing from the untrusted driver: dropped
			// and counted, never dispatched (§3.1.1).
			p.RxBadBatch++
			return
		}
		p.RxQueueBatches[q]++
		if p.GuardMode == GuardPageFlip {
			p.netifRxBatchFlip(q, refs)
			return
		}
		for _, r := range refs {
			p.netifRx(q, mem.Addr(r.IOVA), int(r.Len))
		}
	case OpRecycleAck:
		epoch, pages, err := protocol.DecodeRecycle(m.Data)
		if err != nil {
			p.RecycleBadAck++
			return
		}
		if epoch != uint32(p.epoch) {
			// A frame minted for a dead incarnation (replayed across a
			// recovery, or forged): the pages it names belong to the new
			// incarnation's pool now.
			p.RecycleStaleAck++
			return
		}
		p.RecycleAcks += uint64(len(pages))
	case OpXmitDone:
		slot := int(m.Args[0])
		if slot >= 0 && slot < p.perQueue*len(p.free) {
			sq := slot / p.perQueue
			for _, f := range p.free[sq] {
				if f == slot {
					// A credit for a slot already free: a confused or
					// malicious driver, or a late credit from a queue
					// incarnation whose slots RearmQueue reclaimed.
					// Crediting it again would hand one slot to two
					// frames.
					p.UpcallErrors++
					return
				}
			}
			if d, ok := p.K.Net.Trace.TakeLat(trace.ClassNetTx, sq, uint64(slot)); ok {
				p.Ifc.Queue(sq).TxLat.Record(d)
			}
			p.K.Net.Trace.Event(trace.ClassNetTx, sq, uint64(slot), trace.HopComplete)
			p.Ifc.TxConfirm(sq)
			p.free[sq] = append(p.free[sq], slot)
			p.maybeWakeQueue(sq)
		}
	case OpCarrierOn:
		p.MirrorUpdates++
		p.Ifc.CarrierOn()
	case OpCarrierOff:
		p.MirrorUpdates++
		p.Ifc.CarrierOff()
	case OpWakeQueue:
		wq := int(m.Args[0])
		if wq < 0 || wq >= len(p.free) {
			wq = 0
		}
		p.maybeWakeQueue(wq)
	default:
		// Unknown downcalls from an untrusted driver are ignored, not
		// trusted (§3.1.1).
		p.UpcallErrors++
	}
}

// queueStale applies the queue-granular epoch discipline to RX deliveries
// on ring q: while the netstack's QueueEpoch is ahead of this proxy's mirror
// the queue is quarantined and not yet re-armed, so everything it delivers
// is dropped and counted — its buffers sit in a revoked sub-domain and its
// sibling queues must not be touched by the cleanup.
func (p *Proxy) queueStale(q int) bool {
	if p.Ifc.QueueEpoch(q) != p.qepoch[q] {
		p.RxStaleQueueEpoch++
		return true
	}
	return false
}

// ParkQueue tells the driver runtime queue q is quarantined: an OpQueueEpoch
// parked frame carrying the epoch the runtime currently holds. Advisory —
// the kernel-side checks enforce the quarantine regardless.
func (p *Proxy) ParkQueue(q int) {
	if q < 0 || q >= len(p.qepoch) {
		return
	}
	err := p.C.ASend(q, uchan.Msg{Op: OpQueueEpoch,
		Data: protocol.EncodeQState(protocol.QState{Queue: q, Epoch: uint32(p.qepoch[q]), Flags: protocol.QStateParked})})
	if err != nil {
		p.UpcallErrors++
	}
}

// RearmQueue re-syncs this proxy with queue q's new incarnation after a
// surgical quarantine. TX slots the dead incarnation still held are
// reclaimed (frames are fire-and-forget; losing them is a transport
// problem, leaking the slots is not), flipped pages parked on the queue's
// recycle lane are flushed back to the driver (its sub-domain is re-armed
// by now), the epoch mirror adopts the queue's new epoch, and an
// OpQueueEpoch armed frame tells the runtime to drop work held for the dead
// incarnation.
func (p *Proxy) RearmQueue(q int) {
	if q < 0 || q >= len(p.qepoch) {
		return
	}
	p.free[q] = p.free[q][:0]
	for i := q * p.perQueue; i < (q+1)*p.perQueue; i++ {
		p.free[q] = append(p.free[q], i)
	}
	p.stalled[q] = false
	p.flushRecycleQ(q)
	p.qepoch[q] = p.Ifc.QueueEpoch(q)
	err := p.C.ASend(q, uchan.Msg{Op: OpQueueEpoch,
		Data: protocol.EncodeQState(protocol.QState{Queue: q, Epoch: uint32(p.qepoch[q]), Flags: protocol.QStateArmed})})
	if err != nil {
		p.UpcallErrors++
	}
}

// QueueEpochMirror reports the queue epoch this proxy last re-armed at
// (tests, sudctl).
func (p *Proxy) QueueEpochMirror(q int) uint64 {
	if q < 0 || q >= len(p.qepoch) {
		return 0
	}
	return p.qepoch[q]
}

// wakeThreshold is how many of a queue's slots must be free before a
// stopped queue is woken — waking per released slot would thrash the sender
// (real netdev drivers use the same batching). One eighth of the queue's
// partition: 32 slots on a single-queue proxy, matching the classic value.
func (p *Proxy) wakeThreshold() int {
	t := p.perQueue / 8
	if t < 1 {
		t = 1
	}
	return t
}

// maybeWakeQueue restarts queue q's transmit path once it regains headroom.
// The wake is per queue: a sibling still out of slots stays stopped, and
// only flows hashed onto it keep waiting.
func (p *Proxy) maybeWakeQueue(q int) {
	if !p.stalled[q] || len(p.free[q]) < p.wakeThreshold() {
		return
	}
	p.stalled[q] = false
	p.Ifc.WakeQueue(q)
}

// netifRx validates the driver's shared-buffer reference and performs the
// fused guard-copy + checksum (§3.1.2): the kernel's private copy is taken
// before the firewall or any other consumer sees the bytes, so later
// modification of the shared buffer by a malicious driver is harmless.
func (p *Proxy) netifRx(q int, iova mem.Addr, n int) {
	if n <= 0 || n > netstack.EthHeaderLen+1500+4 {
		p.RxBadLength++
		return
	}
	if !p.DF.ValidateRange(iova, n) {
		// Distinguish a reference into a page the kernel already owns
		// (page-flip squatting — ValidateRange has recorded the fault as
		// driver evidence) from one outside the driver's memory entirely.
		if p.DF.PageRevoked(iova) {
			p.RxRevokedRef++
		} else {
			p.RxInvalidRef++
		}
		return
	}
	phys, ok := p.DF.PhysFor(iova)
	if !ok {
		p.RxInvalidRef++
		return
	}
	p.RxQueueFrames[q]++
	if p.GuardMode == GuardNone {
		// INSECURE (demonstration only): the stack and firewall see
		// shared memory the driver can still modify.
		p.K.Acct.Charge(sim.Checksum(n))
		if view, ok := p.K.Mem.Slice(phys, n); ok {
			p.Ifc.NetifRxVerified(view, q)
			p.rxDelivered(q, uint64(iova))
		}
		return
	}
	p.K.Net.Trace.Event(trace.ClassNetRx, q, uint64(iova), trace.HopGuard)
	frame := make([]byte, n)
	switch p.GuardMode {
	case GuardSeparate:
		// Naive: copy pass, then an independent checksum pass.
		p.K.Acct.Charge(sim.Copy(n) + sim.Checksum(n))
		p.GuardCopiedBytes += uint64(n)
	case GuardReadonlyIOTLB:
		// Mark the page read-only instead of copying: requires an
		// IOTLB invalidation per buffer turnaround.
		p.K.Acct.Charge(sim.Checksum(n) + sim.CostIOTLBInvalidate)
	default:
		// Fused guard copy + checksum, the paper's design — also the
		// fallback for page-flip frames on partially-covered pages.
		p.K.Acct.Charge(sim.ChecksumCopy(n))
		p.GuardCopiedBytes += uint64(n)
	}
	if err := p.K.Mem.Read(phys, frame); err != nil {
		p.RxInvalidRef++
		return
	}
	p.Ifc.NetifRxVerified(frame, q)
	p.rxDelivered(q, uint64(iova))
}

// rxDelivered closes out the receive span for the frame the device wrote at
// iova: it pops the DMA-time stamp the device model placed (recording the
// device→stack end-to-end latency into the queue's histogram) and emits the
// delivery hop. Bounced frames carry no reference and are not recorded.
func (p *Proxy) rxDelivered(q int, iova uint64) {
	tr := p.K.Net.Trace
	if d, ok := tr.TakeLat(trace.ClassNetRx, q, iova); ok {
		p.Ifc.Queue(q).RxLat.Record(d)
	}
	tr.Event(trace.ClassNetRx, q, iova, trace.HopDeliver)
}

// FreeTxSlots reports the pool headroom across all queues (tests and pacing
// logic).
func (p *Proxy) FreeTxSlots() int {
	n := 0
	for _, f := range p.free {
		n += len(f)
	}
	return n
}

// QueueFreeSlots reports one queue's slot headroom.
func (p *Proxy) QueueFreeSlots(q int) int {
	if q < 0 || q >= len(p.free) {
		return 0
	}
	return len(p.free[q])
}
