// Package ethproxy is SUD's Ethernet proxy driver (§3.1): the in-kernel
// module that implements the Linux netdev contract on behalf of an untrusted
// user-space driver, translating kernel calls into uchan upcalls and driver
// downcalls back into kernel operations.
//
// It makes no liveness or semantic assumptions about the driver process:
// synchronous upcalls (open/stop/ioctl) are interruptible, packet transmit
// is asynchronous with shared-buffer backpressure, and every shared-memory
// reference arriving from the driver is validated against the driver's own
// DMA allocations before the kernel touches it. Received packet payloads are
// guard-copied out of shared memory in the same pass that verifies their
// checksum (§3.1.2), closing the TOCTOU window.
package ethproxy

import (
	"fmt"

	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/uchan"
)

// Upcall operations (kernel → driver).
const (
	OpOpen  = protocol.EthBase + iota // sync
	OpStop                            // sync
	OpXmit                            // async; Args: [0]=buffer IOVA, [1]=length, [2]=slot index
	OpIoctl                           // sync; Args: [0]=cmd; Data: argument bytes
)

// Downcall operations (driver → kernel).
const (
	OpNetifRx  = protocol.EthBase + 16 + iota // Args: [0]=buffer IOVA, [1]=length
	OpXmitDone                                // Args: [0]=slot index
	OpCarrierOn
	OpCarrierOff
	OpWakeQueue
)

// TX shared-pool geometry: SUD preallocates shared buffers and passes
// pointers, avoiding copies on the transmit path (§3.1.2).
const (
	TxSlots    = 256
	TxSlotSize = 2048
)

// Guard strategies for received shared-memory payloads (§3.1.2): the paper
// fuses the TOCTOU guard copy with checksum verification; the ablations
// measure the naive two-pass copy and the rejected read-only-page-table
// alternative (an IOTLB invalidation per buffer, which the paper found
// "prohibitively expensive").
const (
	GuardFused = iota
	GuardSeparate
	GuardReadonlyIOTLB
	// GuardNone passes the kernel a live view of the shared buffer — the
	// insecure zero-copy variant, kept to demonstrate the §3.1.2 TOCTOU
	// attack the guard copy exists to stop.
	GuardNone
)

// Proxy is one Ethernet proxy driver instance.
type Proxy struct {
	K   *KernelIface
	DF  *pciaccess.DeviceFile
	C   *uchan.Chan
	Ifc *netstack.Iface

	pool      *pciaccess.Alloc
	freeSlots []int
	stopped   bool // TX queue stopped for lack of slots or ring space

	// GuardMode selects the §3.1.2 TOCTOU-guard strategy (ablations).
	GuardMode int

	// Security / robustness counters.
	RxInvalidRef  uint64 // shared-buffer references outside the driver's memory
	RxBadLength   uint64
	TxDropsHung   uint64
	UpcallErrors  uint64
	MirrorUpdates uint64 // shared-state synchronisation messages (§3.3)
}

// KernelIface is the slice of kernel services the proxy needs (breaking a
// direct dependency on the kernel package for testability).
type KernelIface struct {
	Acct    *sim.CPUAccount
	Mem     *mem.Memory
	Net     *netstack.Stack
	IfaceNm string
}

// New registers an Ethernet interface backed by the user-space driver on
// the other end of c. mac is the mirrored hardware address (§3.3: shared
// state such as dev_addr is synchronised, not fetched by upcall).
func New(ki *KernelIface, df *pciaccess.DeviceFile, c *uchan.Chan, name string, mac [6]byte) (*Proxy, error) {
	pool, err := df.AllocDMA(TxSlots*TxSlotSize, "TX shared pool", false)
	if err != nil {
		return nil, fmt.Errorf("ethproxy: allocating TX pool: %w", err)
	}
	p := &Proxy{K: ki, DF: df, C: c, pool: pool}
	for i := 0; i < TxSlots; i++ {
		p.freeSlots = append(p.freeSlots, i)
	}
	ifc, err := ki.Net.Register(name, mac, (*proxyDev)(p))
	if err != nil {
		return nil, err
	}
	ki.IfaceNm = name
	p.Ifc = ifc
	return p, nil
}

// proxyDev is the netstack-facing half: it satisfies the same NetDevice
// contract an in-kernel driver would, by RPC.
type proxyDev Proxy

func (d *proxyDev) p() *Proxy { return (*Proxy)(d) }

// Open forwards ndo_open as a synchronous, interruptible upcall.
func (d *proxyDev) Open() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpOpen})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("ethproxy: open upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("ethproxy: driver open failed: %s", reply.Data)
	}
	return nil
}

// Stop forwards ndo_stop.
func (d *proxyDev) Stop() error {
	reply, err := d.p().C.Send(uchan.Msg{Op: OpStop})
	if err != nil {
		d.p().UpcallErrors++
		return fmt.Errorf("ethproxy: stop upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("ethproxy: driver stop failed: %s", reply.Data)
	}
	return nil
}

// StartXmit copies the frame into a shared slot and queues an asynchronous
// transmit upcall — the §3.1 fast path. Pool exhaustion or a hung driver
// surfaces as backpressure, never as a blocked kernel thread.
func (d *proxyDev) StartXmit(frame []byte) error {
	p := d.p()
	if len(frame) > TxSlotSize {
		return fmt.Errorf("ethproxy: frame of %d bytes exceeds slot size", len(frame))
	}
	if len(p.freeSlots) == 0 {
		p.stopped = true
		return fmt.Errorf("ethproxy: no free TX slots")
	}
	slot := p.freeSlots[len(p.freeSlots)-1]
	iova := p.pool.IOVA + mem.Addr(slot*TxSlotSize)
	phys := p.pool.Phys + mem.Addr(slot*TxSlotSize)
	p.K.Acct.Charge(sim.Copy(len(frame)))
	if err := p.K.Mem.Write(phys, frame); err != nil {
		return fmt.Errorf("ethproxy: shared pool write: %w", err)
	}
	err := p.C.ASend(uchan.Msg{
		Op:   OpXmit,
		Args: [6]uint64{uint64(iova), uint64(len(frame)), uint64(slot)},
	})
	if err != nil {
		p.TxDropsHung++
		p.stopped = true
		return fmt.Errorf("ethproxy: xmit upcall: %w", err)
	}
	p.freeSlots = p.freeSlots[:len(p.freeSlots)-1]
	return nil
}

// DoIoctl forwards a device-private ioctl synchronously (the paper's
// SIOCGMIIREG example).
func (d *proxyDev) DoIoctl(cmd uint32, arg []byte) ([]byte, error) {
	p := d.p()
	reply, err := p.C.Send(uchan.Msg{Op: OpIoctl, Args: [6]uint64{uint64(cmd)}, Data: arg})
	if err != nil {
		p.UpcallErrors++
		return nil, fmt.Errorf("ethproxy: ioctl upcall: %w", err)
	}
	if reply.Args[0] != 0 {
		return nil, fmt.Errorf("ethproxy: driver ioctl failed: %s", reply.Data)
	}
	return reply.Data, nil
}

// HandleDowncall services one driver→kernel message in kernel context; the
// SUD-UML runtime routes Ethernet-range ops here.
func (p *Proxy) HandleDowncall(m uchan.Msg) {
	switch m.Op {
	case OpNetifRx:
		if m.Data != nil {
			// Inline (bounced) frame: the bytes were copied through
			// the ring, so only checksum verification remains.
			p.K.Acct.Charge(sim.Checksum(len(m.Data)))
			p.Ifc.NetifRxVerified(m.Data)
			return
		}
		p.netifRx(mem.Addr(m.Args[0]), int(m.Args[1]))
	case OpXmitDone:
		slot := int(m.Args[0])
		if slot >= 0 && slot < TxSlots {
			p.freeSlots = append(p.freeSlots, slot)
			p.maybeWake()
		}
	case OpCarrierOn:
		p.MirrorUpdates++
		p.Ifc.CarrierOn()
	case OpCarrierOff:
		p.MirrorUpdates++
		p.Ifc.CarrierOff()
	case OpWakeQueue:
		p.maybeWake()
	default:
		// Unknown downcalls from an untrusted driver are ignored, not
		// trusted (§3.1.1).
		p.UpcallErrors++
	}
}

// wakeThreshold is how many slots must be free before a stopped queue is
// woken — waking per released slot would thrash the sender (real netdev
// drivers use the same batching).
const wakeThreshold = 32

func (p *Proxy) maybeWake() {
	if p.stopped && len(p.freeSlots) >= wakeThreshold {
		p.stopped = false
		p.Ifc.WakeQueue()
	}
}

// netifRx validates the driver's shared-buffer reference and performs the
// fused guard-copy + checksum (§3.1.2): the kernel's private copy is taken
// before the firewall or any other consumer sees the bytes, so later
// modification of the shared buffer by a malicious driver is harmless.
func (p *Proxy) netifRx(iova mem.Addr, n int) {
	if n <= 0 || n > netstack.EthHeaderLen+1500+4 {
		p.RxBadLength++
		return
	}
	if !p.DF.ValidateRange(iova, n) {
		p.RxInvalidRef++
		return
	}
	phys, ok := p.DF.PhysFor(iova)
	if !ok {
		p.RxInvalidRef++
		return
	}
	if p.GuardMode == GuardNone {
		// INSECURE (demonstration only): the stack and firewall see
		// shared memory the driver can still modify.
		p.K.Acct.Charge(sim.Checksum(n))
		if view, ok := p.K.Mem.Slice(phys, n); ok {
			p.Ifc.NetifRxVerified(view)
		}
		return
	}
	frame := make([]byte, n)
	switch p.GuardMode {
	case GuardSeparate:
		// Naive: copy pass, then an independent checksum pass.
		p.K.Acct.Charge(sim.Copy(n) + sim.Checksum(n))
	case GuardReadonlyIOTLB:
		// Mark the page read-only instead of copying: requires an
		// IOTLB invalidation per buffer turnaround.
		p.K.Acct.Charge(sim.Checksum(n) + sim.CostIOTLBInvalidate)
	default:
		// Fused guard copy + checksum, the paper's design.
		p.K.Acct.Charge(sim.ChecksumCopy(n))
	}
	if err := p.K.Mem.Read(phys, frame); err != nil {
		p.RxInvalidRef++
		return
	}
	p.Ifc.NetifRxVerified(frame)
}

// FreeTxSlots reports the pool headroom (tests and pacing logic).
func (p *Proxy) FreeTxSlots() int { return len(p.freeSlots) }
