// Package pciaccess is SUD's safe PCI device access module (§3.2, §4.1): the
// kernel-side object standing in for the /sys/devices/.../sud/{ctl, mmio,
// dma_coherent, dma_caching} device files of Figure 6. It is the only path
// by which an untrusted driver process touches its device, and it enforces:
//
//   - driver-initiated confinement: page-aligned exclusive MMIO mappings, IO
//     port grants via the IOPB, and filtered PCI config space access (BARs
//     and the MSI capability are kernel-owned);
//   - device-initiated confinement: every DMA allocation is mapped into the
//     device's private IOMMU domain, so the device can reach exactly the
//     driver's own buffers (Figure 9); and
//   - interrupt policy: MSI programming is kernel-only, interrupts are
//     forwarded as upcalls, re-raised interrupts before acknowledgement are
//     masked, and interrupt storms are put down with the cheapest mechanism
//     the platform offers (MSI mask → remap-table disable → AMD MSI-page
//     unmap), per §3.2.2 and §6.
package pciaccess

import (
	"fmt"

	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/kernel"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// IOVABase is where driver DMA mappings start in IO virtual address space.
// The value matches the layout the paper reports in Figure 9.
const IOVABase mem.Addr = 0x42430000

// ErrFiltered is returned for PCI config writes the module refuses.
var ErrFiltered = fmt.Errorf("pciaccess: access to protected register denied")

// Alloc describes one DMA allocation visible in the device's IO page table.
// Stream names the hardware queue that owns the allocation (the tag that
// queue's engine stamps on its DMA): a non-zero stream maps the pages ONLY
// into that queue's sub-domain, so a sibling queue's descriptor naming them
// faults at the walk. Stream 0 is a shared allocation in the device domain,
// reachable by untagged DMA and by streams without a sub-domain.
type Alloc struct {
	Label    string
	IOVA     mem.Addr
	Phys     mem.Addr
	Pages    int
	Coherent bool
	Stream   int
}

// DeviceFile is the per-device, per-driver-process handle.
type DeviceFile struct {
	K    *kernel.Kernel
	Dev  pci.Device
	Dom  *iommu.Domain
	UID  int
	Acct *sim.CPUAccount // the driver process's CPU account

	// MaxDMAPages is the setrlimit-style cap on DMA memory (§4.1);
	// 0 means unlimited.
	MaxDMAPages int

	nextIOVA  mem.Addr
	allocs    []*Alloc
	usedPages int

	// Per-stream sub-domains: the queue-granular half of the DMA split.
	// qdoms holds the translation table each tagged queue walks;
	// quarantined marks streams whose sub-domain has been revoked (an
	// empty blocked domain is attached in its place, so the breached
	// queue's DMA faults instead of falling back to the device domain).
	qdoms       map[int]*iommu.Domain
	quarantined map[int]bool

	// revoked tracks pages the kernel has flipped to itself (page-flip
	// guard, §3.1.2 amortised): pageIOVA -> phys. While a page is here the
	// device cannot DMA to it (the PTE is gone) and the driver process's
	// window onto it is closed — ValidateRange/PhysFor refuse references
	// into it and driver-side stores through the UML DMA API fault.
	revoked map[mem.Addr]mem.Addr

	vector       irq.Vector
	irqRequested bool
	upcall       func() // interrupt upcall into the driver process

	ackPending         bool
	maskedWhilePending bool
	stormed            bool
	attached           bool

	// Counters for the security evaluation.
	FilteredConfigWrites uint64
	InterruptUpcalls     uint64
	MasksWhilePending    uint64
	StormResponses       uint64
	// RevokedFaults counts driver-side touches (loads, stores, shared-
	// buffer references, DMA retargets) of pages the kernel has revoked —
	// the page-flip equivalent of an IOMMU fault, attributed to this
	// driver as evidence for the policy plane.
	RevokedFaults uint64
	// QueueRevokes/QueueRearms count per-queue DMA quarantine transitions
	// (surgical recovery evidence for sudctl and the supervisor).
	QueueRevokes uint64
	QueueRearms  uint64

	closed bool
}

// Open creates the device files for dev, owned by uid, charging driver CPU
// to acct. A fresh, empty IOMMU domain is attached: from this instant the
// device can DMA nowhere until the driver allocates buffers.
func Open(k *kernel.Kernel, dev pci.Device, uid int, acct *sim.CPUAccount) *DeviceFile {
	df := OpenDetached(k, dev, uid, acct)
	df.AttachDevice()
	return df
}

// OpenDetached creates the device files and the process's IOMMU domain but
// leaves the device attached to whatever domain it already has. This is the
// hot-standby path: the standby builds its DMA mappings (slot pools, ring
// buffers) in its own domain while the live primary still owns the device's
// bus identity; AttachDevice completes the switch at promotion, after the
// primary is dead and detached.
func OpenDetached(k *kernel.Kernel, dev pci.Device, uid int, acct *sim.CPUAccount) *DeviceFile {
	df := &DeviceFile{
		K:        k,
		Dev:      dev,
		Dom:      k.M.IOMMU.NewDomain(),
		UID:      uid,
		Acct:     acct,
		nextIOVA: IOVABase,
	}
	// AMD IOMMUs have no implicit MSI mapping; the kernel maps the MSI
	// window so the device's own interrupts work (§6 — and unmaps it
	// again to silence a storm).
	if k.M.IOMMU.Cfg.Vendor == iommu.VendorAMD {
		if err := df.Dom.MapRange(iommu.MSIBase, iommu.MSIBase,
			uint64(iommu.MSILimit-iommu.MSIBase), iommu.PermWrite); err != nil {
			panic(err) // fresh domain; cannot collide
		}
	}
	return df
}

// AttachDevice points the device's bus identity at this process's IOMMU
// domain — and every per-queue sub-domain built so far (the detached-standby
// path allocates queue-tagged rings before promotion). Idempotent; no-op
// after Close.
func (df *DeviceFile) AttachDevice() {
	if df.closed || df.attached {
		return
	}
	df.K.M.IOMMU.Attach(df.Dev.BDF(), df.Dom)
	df.attached = true
	for stream, dom := range df.qdoms {
		df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, dom)
	}
}

func (df *DeviceFile) syscall(extra sim.Duration) {
	df.Acct.Charge(sim.CostSyscall + extra)
}

// --- DMA memory (dma_coherent / dma_caching) -------------------------------

// AllocDMA allocates size bytes of DMA-capable memory, maps it at the next
// IO virtual address in the device's domain, and returns the allocation.
// Under SUD the driver's virtual address equals the IOVA (§4.1).
func (df *DeviceFile) AllocDMA(size int, label string, coherent bool) (*Alloc, error) {
	return df.AllocDMAQ(size, label, coherent, 0)
}

// AllocDMAQ is AllocDMA scoped to one hardware queue: stream is the tag the
// queue's engine stamps on its DMA, and the pages are mapped ONLY into that
// stream's sub-domain (lazily created and attached). IOVAs still come from
// the device file's single address space, so the driver-side window and
// range validation are queue-agnostic — only the device-side walk is split.
// stream 0 degrades to a shared device-domain allocation.
func (df *DeviceFile) AllocDMAQ(size int, label string, coherent bool, stream int) (*Alloc, error) {
	df.syscall(0)
	if df.closed {
		return nil, fmt.Errorf("pciaccess: device file closed")
	}
	if size <= 0 {
		return nil, fmt.Errorf("pciaccess: bad DMA size %d", size)
	}
	if stream < 0 {
		return nil, fmt.Errorf("pciaccess: bad stream %d", stream)
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	if df.MaxDMAPages > 0 && df.usedPages+pages > df.MaxDMAPages {
		return nil, fmt.Errorf("pciaccess: DMA rlimit exceeded (%d+%d > %d pages)",
			df.usedPages, pages, df.MaxDMAPages)
	}
	phys, ok := df.K.M.Alloc.AllocPages(pages)
	if !ok {
		return nil, fmt.Errorf("pciaccess: out of physical memory")
	}
	a := &Alloc{Label: label, IOVA: df.nextIOVA, Phys: phys, Pages: pages, Coherent: coherent, Stream: stream}
	if err := df.queueDom(stream).MapRange(a.IOVA, a.Phys, uint64(pages)*mem.PageSize, iommu.PermRW); err != nil {
		df.K.M.Alloc.FreePages(phys, pages)
		return nil, err
	}
	df.nextIOVA += mem.Addr(pages) * mem.PageSize
	df.usedPages += pages
	df.allocs = append(df.allocs, a)
	return a, nil
}

// queueDom returns the translation table stream's allocations map into,
// creating and attaching the sub-domain on first use. Stream 0 is the
// device domain.
func (df *DeviceFile) queueDom(stream int) *iommu.Domain {
	if stream == 0 {
		return df.Dom
	}
	if dom, ok := df.qdoms[stream]; ok {
		return dom
	}
	dom := df.K.M.IOMMU.NewDomain()
	// Same vendor asymmetry as the device domain: AMD needs an explicit
	// MSI-window mapping for the queue's completion interrupts.
	if df.K.M.IOMMU.Cfg.Vendor == iommu.VendorAMD {
		if err := dom.MapRange(iommu.MSIBase, iommu.MSIBase,
			uint64(iommu.MSILimit-iommu.MSIBase), iommu.PermWrite); err != nil {
			panic(err) // fresh domain; cannot collide
		}
	}
	if df.qdoms == nil {
		df.qdoms = make(map[int]*iommu.Domain)
	}
	df.qdoms[stream] = dom
	// A detached standby defers the attach to promotion — the live
	// primary still owns the device's bus identity.
	if df.attached && !df.quarantined[stream] {
		df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, dom)
	}
	return dom
}

// domFor returns the translation table holding a's pages.
func (df *DeviceFile) domFor(a *Alloc) *iommu.Domain {
	if a.Stream != 0 {
		if dom, ok := df.qdoms[a.Stream]; ok {
			return dom
		}
	}
	return df.Dom
}

// FreeDMA unmaps and releases an allocation, invalidating stale IOTLB
// entries (charged at the documented cost, §3.1.2).
func (df *DeviceFile) FreeDMA(a *Alloc) error {
	df.syscall(sim.CostIOTLBInvalidate)
	for i, cur := range df.allocs {
		if cur == a {
			df.domFor(a).UnmapRange(a.IOVA, uint64(a.Pages)*mem.PageSize)
			df.K.M.IOMMU.InvalidateDevice(df.Dev.BDF())
			df.K.M.Alloc.FreePages(a.Phys, a.Pages)
			df.usedPages -= a.Pages
			df.allocs = append(df.allocs[:i], df.allocs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("pciaccess: unknown DMA allocation")
}

// --- per-queue DMA quarantine (surgical recovery) ----------------------------

// RevokeQueueDMA kills one queue's DMA: an empty blocked domain replaces the
// stream's sub-domain at the IOMMU (attach + stream shootdown), so every
// further access the breached queue's engine issues faults at the walk —
// including to shared stream-0 pages it could otherwise still reach —
// while sibling queues' sub-domains stay armed and serving. The sub-domain's
// mappings are kept; RearmQueueDMA re-attaches them after replay.
func (df *DeviceFile) RevokeQueueDMA(stream int) error {
	df.K.Acct.Charge(sim.CostIOTLBInvalidate)
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	if stream <= 0 {
		return fmt.Errorf("pciaccess: bad stream %d", stream)
	}
	if df.quarantined[stream] {
		return nil // idempotent: double-quarantine is a no-op
	}
	if df.quarantined == nil {
		df.quarantined = make(map[int]bool)
	}
	df.quarantined[stream] = true
	df.QueueRevokes++
	if df.attached {
		df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, df.K.M.IOMMU.NewDomain())
	}
	return nil
}

// RearmQueueDMA reverses RevokeQueueDMA: the stream's real sub-domain (with
// its mappings intact) is re-attached and its IOTLB footprint shot down, so
// the recovered queue incarnation resumes with exactly the translations its
// allocations installed.
func (df *DeviceFile) RearmQueueDMA(stream int) error {
	df.K.Acct.Charge(sim.CostIOTLBInvalidate)
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	if !df.quarantined[stream] {
		return fmt.Errorf("pciaccess: stream %d is not quarantined", stream)
	}
	delete(df.quarantined, stream)
	df.QueueRearms++
	if df.attached {
		dom := df.qdoms[stream]
		if dom == nil {
			df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, nil)
		} else {
			df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, dom)
		}
	}
	return nil
}

// QueueQuarantined reports whether stream's DMA is currently revoked.
func (df *DeviceFile) QueueQuarantined(stream int) bool { return df.quarantined[stream] }

// QueueStreams returns the streams with a per-queue sub-domain, ascending
// (sudctl introspection).
func (df *DeviceFile) QueueStreams() []int {
	var out []int
	for s := range df.qdoms {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Allocs returns the live allocations (the Figure 9 walk labels mappings
// with these).
func (df *DeviceFile) Allocs() []*Alloc { return df.allocs }

// Mappings walks the device's full translation state — the shared device
// domain plus every per-queue sub-domain — and returns the merged list
// sorted by IOVA. This is the Figure 9 page-directory walk: with the
// per-queue split, a single domain no longer tells the whole story.
func (df *DeviceFile) Mappings() []iommu.Mapping {
	out := df.Dom.Mappings()
	for _, s := range df.QueueStreams() {
		out = append(out, df.qdoms[s].Mappings()...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].IOVA < out[j-1].IOVA; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ValidateRange reports whether [iova, iova+n) lies entirely inside one of
// the driver's DMA allocations. Proxy drivers use it to reject shared-buffer
// references a malicious driver points at memory it does not own. A range
// overlapping a revoked page is rejected too — the driver no longer owns
// that page — and the attempt is recorded as revoked-page evidence.
func (df *DeviceFile) ValidateRange(iova mem.Addr, n int) bool {
	if n <= 0 {
		return false
	}
	for _, a := range df.allocs {
		end := a.IOVA + mem.Addr(a.Pages)*mem.PageSize
		if iova >= a.IOVA && iova+mem.Addr(n) <= end {
			if df.rangeRevoked(iova, n) {
				df.RevokedFaults++
				return false
			}
			return true
		}
	}
	return false
}

// PhysFor translates a validated IOVA to its physical address. Revoked pages
// do not translate: the driver's claim to them ended at the flip.
func (df *DeviceFile) PhysFor(iova mem.Addr) (mem.Addr, bool) {
	if df.PageRevoked(iova) {
		df.RevokedFaults++
		return 0, false
	}
	for _, a := range df.allocs {
		end := a.IOVA + mem.Addr(a.Pages)*mem.PageSize
		if iova >= a.IOVA && iova < end {
			return a.Phys + (iova - a.IOVA), true
		}
	}
	return 0, false
}

// --- page-flip ownership transfer (§3.1.2 amortised guard) -------------------

// RevokePage flips ownership of the 4-KiB page containing iova from the
// driver to the kernel: the PTE is cleared in a single walk and the IOTLB
// entry dropped, so the device faults on any further DMA to it and the driver
// process's accesses through the DMA API fault as evidence. The physical page
// is returned so the proxy can deliver its contents by reference. The caller
// charges sim.CostPageFlipRevoke per page and amortises one
// sim.CostIOTLBShootdown over the batch.
func (df *DeviceFile) RevokePage(iova mem.Addr) (mem.Addr, error) {
	if df.closed {
		return 0, fmt.Errorf("pciaccess: device file closed")
	}
	page := mem.PageAlign(iova)
	if df.revoked != nil {
		if _, dup := df.revoked[page]; dup {
			return 0, fmt.Errorf("pciaccess: page %#x already revoked", uint64(page))
		}
	}
	owned := false
	for _, a := range df.allocs {
		end := a.IOVA + mem.Addr(a.Pages)*mem.PageSize
		if page >= a.IOVA && page < end {
			owned = true
			break
		}
	}
	if !owned {
		return 0, fmt.Errorf("pciaccess: page %#x not in any DMA allocation", uint64(page))
	}
	phys, ok := df.K.M.IOMMU.RevokePage(df.Dev.BDF(), page)
	if !ok {
		// Detached or already-stripped domain (e.g. recovery tore the
		// mapping down first): nothing to flip.
		return 0, fmt.Errorf("pciaccess: page %#x not mapped", uint64(page))
	}
	if df.revoked == nil {
		df.revoked = make(map[mem.Addr]mem.Addr)
	}
	df.revoked[page] = phys
	return phys, nil
}

// RecyclePage reverses a RevokePage: the PTE is re-installed (walk + entry
// write; no invalidation — absent to present) and the driver may fill the
// page again. The mapping returns to the page's home translation table —
// the owning queue's sub-domain for a queue-tagged allocation, the device
// domain otherwise. The caller charges sim.CostPageRecycleMap.
func (df *DeviceFile) RecyclePage(iova mem.Addr) error {
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	page := mem.PageAlign(iova)
	phys, ok := df.revoked[page]
	if !ok {
		return fmt.Errorf("pciaccess: page %#x is not revoked", uint64(page))
	}
	dom := df.Dom
	for _, a := range df.allocs {
		end := a.IOVA + mem.Addr(a.Pages)*mem.PageSize
		if page >= a.IOVA && page < end {
			dom = df.domFor(a)
			break
		}
	}
	if err := dom.Map(page, phys, iommu.PermRW); err != nil {
		return err
	}
	delete(df.revoked, page)
	return nil
}

// PageRevoked reports whether the page containing iova is currently flipped
// to the kernel.
func (df *DeviceFile) PageRevoked(iova mem.Addr) bool {
	if len(df.revoked) == 0 {
		return false
	}
	_, ok := df.revoked[mem.PageAlign(iova)]
	return ok
}

// RevokedPages returns the number of pages currently flipped to the kernel.
func (df *DeviceFile) RevokedPages() int { return len(df.revoked) }

func (df *DeviceFile) rangeRevoked(iova mem.Addr, n int) bool {
	if len(df.revoked) == 0 {
		return false
	}
	for p := mem.PageAlign(iova); p < iova+mem.Addr(n); p += mem.PageSize {
		if _, ok := df.revoked[p]; ok {
			return true
		}
	}
	return false
}

// DriverTouch models the untrusted driver process loading or storing through
// its shared DMA window at iova. On a live page it translates and succeeds;
// on a revoked page the process's mapping is gone, so the access faults and
// is recorded as evidence. Attack harnesses and the UML DMA shims route
// driver-side accesses here so the page-flip confinement is honest.
func (df *DeviceFile) DriverTouch(iova mem.Addr, n int, write bool) (mem.Addr, error) {
	if df.closed {
		return 0, fmt.Errorf("pciaccess: device file closed")
	}
	if df.rangeRevoked(iova, n) {
		df.RevokedFaults++
		op := "load from"
		if write {
			op = "store to"
		}
		return 0, fmt.Errorf("pciaccess: driver %s revoked page %#x", op, uint64(mem.PageAlign(iova)))
	}
	phys, ok := df.PhysFor(iova)
	if !ok {
		return 0, fmt.Errorf("pciaccess: %#x not mapped", uint64(iova))
	}
	return phys, nil
}

// --- MMIO and IO ports ------------------------------------------------------

// MapMMIO maps memory BAR bar into the driver process. SUD requires the
// range to be page-aligned and not shared with any other device (§3.2.1).
func (df *DeviceFile) MapMMIO(bar int) (*MMIOMap, error) {
	df.syscall(0)
	base, info := df.Dev.Config().BAR(bar)
	if info.Size == 0 || info.IO {
		return nil, fmt.Errorf("pciaccess: BAR %d is not a memory BAR", bar)
	}
	if base%mem.PageSize != 0 || info.Size%mem.PageSize != 0 {
		return nil, fmt.Errorf("pciaccess: BAR %d (%#x+%#x) not page-aligned", bar, base, info.Size)
	}
	return &MMIOMap{df: df, bar: bar}, nil
}

// MMIOMap is a driver-process mapping of a memory BAR. Accesses cost the
// same as kernel MMIO (it is the same uncached load/store) but are charged
// to the driver process.
type MMIOMap struct {
	df  *DeviceFile
	bar int
}

// Read32 reads a device register.
func (m *MMIOMap) Read32(off uint64) uint32 {
	m.df.Acct.Charge(sim.CostMMIORead)
	return uint32(m.df.Dev.MMIORead(m.bar, off, 4))
}

// Write32 writes a device register.
func (m *MMIOMap) Write32(off uint64, v uint32) {
	m.df.Acct.Charge(sim.CostMMIOWrite)
	m.df.Dev.MMIOWrite(m.bar, off, 4, uint64(v))
}

// IOPorts grants the driver process access to IO BAR bar via the task's IO
// permission bitmap (§3.2.1) and returns the accessor.
type IOPorts struct {
	df  *DeviceFile
	bar int
}

// RequestIOPorts implements the request_region downcall.
func (df *DeviceFile) RequestIOPorts(bar int) (*IOPorts, error) {
	df.syscall(0)
	_, info := df.Dev.Config().BAR(bar)
	if info.Size == 0 || !info.IO {
		return nil, fmt.Errorf("pciaccess: BAR %d is not an IO BAR", bar)
	}
	return &IOPorts{df: df, bar: bar}, nil
}

// In8 reads a byte port (direct, via IOPB — no syscall per access).
func (p *IOPorts) In8(off uint64) uint8 {
	p.df.Acct.Charge(sim.CostIOPort)
	return uint8(p.df.Dev.IORead(p.bar, off, 1))
}

// Out8 writes a byte port.
func (p *IOPorts) Out8(off uint64, v uint8) {
	p.df.Acct.Charge(sim.CostIOPort)
	p.df.Dev.IOWrite(p.bar, off, 1, uint32(v))
}

// In16 reads a word port.
func (p *IOPorts) In16(off uint64) uint16 {
	p.df.Acct.Charge(sim.CostIOPort)
	return uint16(p.df.Dev.IORead(p.bar, off, 2))
}

// Out16 writes a word port.
func (p *IOPorts) Out16(off uint64, v uint16) {
	p.df.Acct.Charge(sim.CostIOPort)
	p.df.Dev.IOWrite(p.bar, off, 2, uint32(v))
}

// --- PCI configuration space (filtered) --------------------------------------

// ConfigRead is unrestricted: reads cannot break confinement.
func (df *DeviceFile) ConfigRead(off, size int) (uint32, error) {
	df.syscall(sim.CostPCIConfig)
	if df.closed {
		return 0xFFFFFFFF, fmt.Errorf("pciaccess: device file closed")
	}
	return df.Dev.Config().Read(off, size), nil
}

// ConfigWrite filters writes: a malicious driver must not move BARs (that
// would alias another device's registers), reprogram MSI (interrupt routing
// is kernel-owned), or touch the capability chain (§3.2.1).
func (df *DeviceFile) ConfigWrite(off, size int, v uint32) error {
	df.syscall(sim.CostPCIConfig)
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	if !df.configWriteAllowed(off, size, &v) {
		df.FilteredConfigWrites++
		return ErrFiltered
	}
	df.Dev.Config().Write(off, size, v)
	return nil
}

func (df *DeviceFile) configWriteAllowed(off, size int, v *uint32) bool {
	end := off + size
	// BARs are kernel-owned.
	if off < pci.CfgBAR0+24 && end > pci.CfgBAR0 {
		return false
	}
	// Capability pointer and the MSI capability are kernel-owned.
	if off <= pci.CfgCapPtr && end > pci.CfgCapPtr {
		return false
	}
	if msi := df.Dev.Config().MSICapOffset(); msi != 0 && off < msi+pci.MSICapSize && end > msi {
		return false
	}
	// The command register may only toggle decode/bus-master bits; the
	// interrupt-disable bit stays kernel-owned.
	if off <= pci.CfgCommand+1 && end > pci.CfgCommand {
		allowed := uint32(pci.CmdIOSpace | pci.CmdMemSpace | pci.CmdBusMaster)
		*v &= allowed
		return true
	}
	return true
}

// --- Interrupts ---------------------------------------------------------------

// RequestIRQ allocates a vector, programs the device's MSI capability (the
// driver cannot — the capability is filtered), and forwards interrupts to
// the driver process via upcall.
func (df *DeviceFile) RequestIRQ(upcall func()) error {
	df.syscall(sim.CostPCIConfig)
	if df.irqRequested {
		return fmt.Errorf("pciaccess: IRQ already requested")
	}
	v, err := df.K.M.Vec.Alloc()
	if err != nil {
		return err
	}
	df.vector = v
	df.upcall = upcall

	cfg := df.Dev.Config()
	capOff := kernel.FindCapability(cfg, pci.CapIDMSI)
	if capOff == 0 {
		return fmt.Errorf("pciaccess: device has no MSI capability")
	}
	data := uint32(v)
	if rt := df.K.M.IRQ.Remap; rt != nil {
		rt.Set(uint8(v), irq.IRTE{Valid: true, Source: df.Dev.BDF(), Vector: v})
	}
	cfg.Write(capOff+4, 4, uint32(iommu.MSIBase))
	cfg.Write(capOff+8, 2, data)
	cfg.Write(capOff+2, 2, pci.MSICtlEnable)

	k := df.K
	if err := k.M.IRQ.Register(v, func(irq.Vector) {
		k.Acct.Charge(sim.CostInterruptEntry)
		df.onInterrupt()
	}); err != nil {
		return err
	}
	k.RegisterStormHandler(v, df.stormResponse)
	df.irqRequested = true
	return nil
}

// onInterrupt implements the §3.2.2 policy: forward the first interrupt as
// an upcall without masking (MSIs are edge-triggered); if another arrives
// before the driver acknowledges, mask the MSI so an unresponsive driver
// cannot be pinned down by its device.
func (df *DeviceFile) onInterrupt() {
	if df.closed {
		return
	}
	if df.ackPending {
		df.MasksWhilePending++
		df.maskedWhilePending = true
		df.K.Acct.Charge(sim.CostMSIMask)
		df.Dev.Config().SetMSIMasked(true)
		return
	}
	df.ackPending = true
	df.InterruptUpcalls++
	if df.upcall != nil {
		df.upcall()
	}
}

// Ack is the interrupt_ack downcall (Figure 7): the driver finished its
// handler; unmask if we masked.
func (df *DeviceFile) Ack() {
	df.Acct.Charge(sim.CostSyscall)
	df.ackPending = false
	if df.maskedWhilePending {
		df.maskedWhilePending = false
		df.K.Acct.Charge(sim.CostMSIMask)
		df.Dev.Config().SetMSIMasked(false)
	}
}

// stormResponse runs when the interrupt controller flags a storm on our
// vector. Per §3.2.2/§6: masking the MSI capability silences a devicely
// raised storm; a DMA-write storm needs the remap table (Intel) or
// unmapping the MSI page (AMD). On the paper's test machine — Intel without
// interrupt remapping — the DMA storm cannot be stopped (§5.2).
func (df *DeviceFile) stormResponse(rate int) {
	if df.closed || df.stormed {
		return
	}
	df.StormResponses++
	k := df.K
	// First line of defence: mask the device's MSI.
	k.Acct.Charge(sim.CostMSIMask)
	df.Dev.Config().SetMSIMasked(true)

	switch {
	case k.M.IRQ.Remap != nil:
		// Intel with interrupt remapping: invalidate the IRTE,
		// stopping even DMA-generated messages.
		k.Acct.Charge(sim.CostIRTEUpdate)
		k.M.IRQ.Remap.Set(uint8(df.vector), irq.IRTE{})
		df.stormed = true
	case k.M.IOMMU.Cfg.Vendor == iommu.VendorAMD:
		// AMD: unmap the MSI window from this device's IO page table.
		df.Dom.UnmapRange(iommu.MSIBase, uint64(iommu.MSILimit-iommu.MSIBase))
		k.M.IOMMU.InvalidateDevice(df.Dev.BDF())
		k.Acct.Charge(sim.CostIOTLBInvalidate)
		df.stormed = true
	default:
		// Intel without remapping: the MSI mask stops the device's own
		// messages, but a stray-DMA storm keeps coming (§5.2).
		k.Logf("pciaccess: interrupt storm on %s (rate %d); cannot block DMA-generated MSIs without interrupt remapping",
			df.Dev.BDF(), rate)
	}
}

// Stormed reports whether storm suppression has fired.
func (df *DeviceFile) Stormed() bool { return df.stormed }

// Vector returns the allocated interrupt vector.
func (df *DeviceFile) Vector() irq.Vector { return df.vector }

// FreeIRQ releases the interrupt.
func (df *DeviceFile) FreeIRQ() error {
	df.syscall(sim.CostPCIConfig)
	if !df.irqRequested {
		return fmt.Errorf("pciaccess: no IRQ requested")
	}
	df.teardownIRQ()
	return nil
}

func (df *DeviceFile) teardownIRQ() {
	if !df.irqRequested {
		return
	}
	_ = df.K.M.IRQ.Register(df.vector, nil)
	df.K.RegisterStormHandler(df.vector, nil)
	if rt := df.K.M.IRQ.Remap; rt != nil {
		rt.Set(uint8(df.vector), irq.IRTE{})
	}
	cfg := df.Dev.Config()
	if capOff := kernel.FindCapability(cfg, pci.CapIDMSI); capOff != 0 {
		cfg.Write(capOff+2, 2, 0)
	}
	df.irqRequested = false
}

// --- device delegation (§6) -----------------------------------------------------

// DelegateMMIO grants this driver's device DMA access to another device's
// memory BAR — the §6 "device delegation" direction: a bus-driver process
// can hand a function's registers to a per-device driver process, or a
// multi-queue NIC can expose one queue directly to an application. The
// grant is an explicit identity mapping in this device's IOMMU domain;
// with ACS, the DMA is redirected through the root complex, translated, and
// delivered to the target BAR.
//
// Only the kernel (administrator) may call this; it is not reachable from
// the untrusted driver's syscall surface.
func (df *DeviceFile) DelegateMMIO(target pci.Device, bar int) error {
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	base, info := target.Config().BAR(bar)
	if info.Size == 0 || info.IO {
		return fmt.Errorf("pciaccess: target BAR %d is not a memory BAR", bar)
	}
	if base%mem.PageSize != 0 || info.Size%mem.PageSize != 0 {
		return fmt.Errorf("pciaccess: target BAR %d not page-aligned", bar)
	}
	if err := df.Dom.MapRange(mem.Addr(base), mem.Addr(base), info.Size, iommu.PermRW); err != nil {
		return err
	}
	df.K.Logf("pciaccess: delegated %s BAR%d (%#x+%#x) to driver of %s",
		target.BDF(), bar, base, info.Size, df.Dev.BDF())
	return nil
}

// RevokeDelegation removes a DelegateMMIO grant.
func (df *DeviceFile) RevokeDelegation(target pci.Device, bar int) error {
	if df.closed {
		return fmt.Errorf("pciaccess: device file closed")
	}
	base, info := target.Config().BAR(bar)
	if info.Size == 0 || info.IO {
		return fmt.Errorf("pciaccess: target BAR %d is not a memory BAR", bar)
	}
	df.Dom.UnmapRange(mem.Addr(base), info.Size)
	df.K.M.IOMMU.InvalidateDevice(df.Dev.BDF())
	df.K.Acct.Charge(sim.CostIOTLBInvalidate)
	return nil
}

// --- teardown -----------------------------------------------------------------

// Close tears everything down: the driver process died or was killed. The
// IOMMU domain is detached, so any DMA the device still attempts faults; all
// DMA memory is reclaimed — the "kill -9 and restart" story of §4.1.
func (df *DeviceFile) Close() {
	if df.closed {
		return
	}
	df.closed = true
	df.teardownIRQ()
	for _, a := range df.allocs {
		// UnmapRange tolerates pages already absent from the page table,
		// so allocations with in-flight revoked (flipped) pages tear down
		// cleanly; every physical page — flipped or not — is reclaimed
		// here, which is what makes kill -9 mid page-flip leak-free.
		df.domFor(a).UnmapRange(a.IOVA, uint64(a.Pages)*mem.PageSize)
		df.K.M.Alloc.FreePages(a.Phys, a.Pages)
	}
	df.allocs = nil
	df.usedPages = 0
	df.revoked = nil
	if df.attached {
		// Only the domain owner detaches the bus identity: a never-promoted
		// standby closing must not rip the attachment out from under the
		// live primary. Sub-domains (quarantine placeholders included) go
		// with it.
		for stream := range df.qdoms {
			df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, nil)
		}
		for stream := range df.quarantined {
			df.K.M.IOMMU.AttachQueue(df.Dev.BDF(), stream, nil)
		}
		df.K.M.IOMMU.Attach(df.Dev.BDF(), nil)
		df.attached = false
	}
	df.qdoms = nil
	df.quarantined = nil
	df.K.M.IOMMU.InvalidateDevice(df.Dev.BDF())
}

// Closed reports teardown.
func (df *DeviceFile) Closed() bool { return df.closed }
