package pciaccess

import (
	"testing"
	"testing/quick"

	"sud/internal/devices/e1000"
	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/kernel"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

type rig struct {
	m   *hw.Machine
	k   *kernel.Kernel
	nic *e1000.NIC
	df  *DeviceFile
}

func newRig(t *testing.T, plat hw.Platform) *rig {
	t.Helper()
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	acct := m.CPU.Account("driver:test")
	df := Open(k, nic, 1001, acct)
	return &rig{m: m, k: k, nic: nic, df: df}
}

func TestOpenAttachesEmptyDomain(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	if r.df.Dom.Pages() != 0 {
		t.Fatalf("fresh domain has %d pages", r.df.Dom.Pages())
	}
	if r.m.IOMMU.Domain(r.nic.BDF()) != r.df.Dom {
		t.Fatal("domain not attached to the device")
	}
}

func TestAMDOpenMapsMSIWindow(t *testing.T) {
	p := hw.DefaultPlatform()
	p.IOMMU.Vendor = iommu.VendorAMD
	r := newRig(t, p)
	// The AMD IOMMU has no implicit MSI mapping, so Open installs one
	// (write-only) to let the device's own interrupts through (§6).
	want := int((iommu.MSILimit - iommu.MSIBase) / mem.PageSize)
	if r.df.Dom.Pages() != want {
		t.Fatalf("AMD domain has %d pages, want %d (MSI window)", r.df.Dom.Pages(), want)
	}
}

func TestAllocDMASequentialIOVAs(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	a, err := r.df.AllocDMA(4096, "first", true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.df.AllocDMA(8192, "second", false)
	if err != nil {
		t.Fatal(err)
	}
	if a.IOVA != IOVABase {
		t.Fatalf("first IOVA %#x, want %#x", uint64(a.IOVA), uint64(IOVABase))
	}
	if b.IOVA != IOVABase+mem.PageSize {
		t.Fatalf("second IOVA %#x", uint64(b.IOVA))
	}
	if r.df.Dom.Pages() != 3 {
		t.Fatalf("domain pages = %d", r.df.Dom.Pages())
	}
}

func TestFreeDMAUnmapsAndFaults(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	a, err := r.df.AllocDMA(4096, "x", true)
	if err != nil {
		t.Fatal(err)
	}
	r.nic.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	if err := r.nic.DMAWrite(a.IOVA, []byte{1}); err != nil {
		t.Fatal("DMA to allocated buffer faulted:", err)
	}
	if err := r.df.FreeDMA(a); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.DMAWrite(a.IOVA, []byte{1}); err == nil {
		t.Fatal("DMA to freed buffer succeeded")
	}
	if err := r.df.FreeDMA(a); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestRlimit(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	r.df.MaxDMAPages = 2
	if _, err := r.df.AllocDMA(2*4096, "ok", true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.df.AllocDMA(4096, "over", true); err == nil {
		t.Fatal("allocation beyond rlimit succeeded")
	}
}

func TestValidateRangeAndPhysFor(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	a, err := r.df.AllocDMA(2*4096, "buf", false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.df.ValidateRange(a.IOVA, 8192) {
		t.Fatal("full range rejected")
	}
	if r.df.ValidateRange(a.IOVA, 8193) {
		t.Fatal("over-long range accepted")
	}
	if r.df.ValidateRange(a.IOVA-1, 4) {
		t.Fatal("range before allocation accepted")
	}
	if r.df.ValidateRange(a.IOVA, 0) || r.df.ValidateRange(a.IOVA, -1) {
		t.Fatal("degenerate range accepted")
	}
	phys, ok := r.df.PhysFor(a.IOVA + 100)
	if !ok || phys != a.Phys+100 {
		t.Fatalf("PhysFor = %#x, %v", uint64(phys), ok)
	}
	if _, ok := r.df.PhysFor(0xDEAD0000); ok {
		t.Fatal("PhysFor matched unallocated address")
	}
}

func TestConfigWriteFilter(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	// BAR writes denied.
	if err := r.df.ConfigWrite(pci.CfgBAR0, 4, 0xDEAD0000); err != ErrFiltered {
		t.Fatalf("BAR write: %v", err)
	}
	// Capability pointer denied.
	if err := r.df.ConfigWrite(pci.CfgCapPtr, 1, 0); err != ErrFiltered {
		t.Fatalf("cap ptr write: %v", err)
	}
	// MSI capability denied.
	msi := r.nic.Config().MSICapOffset()
	if err := r.df.ConfigWrite(msi+4, 4, 0xDEAD0000); err != ErrFiltered {
		t.Fatalf("MSI write: %v", err)
	}
	if r.df.FilteredConfigWrites != 3 {
		t.Fatalf("filtered counter = %d", r.df.FilteredConfigWrites)
	}
	// Command register: decode bits pass, interrupt-disable is stripped.
	if err := r.df.ConfigWrite(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster|pci.CmdIntDisable); err != nil {
		t.Fatal(err)
	}
	got, _ := r.df.ConfigRead(pci.CfgCommand, 2)
	if got&pci.CmdIntDisable != 0 {
		t.Fatal("interrupt-disable bit writable by untrusted driver")
	}
	if got&(pci.CmdMemSpace|pci.CmdBusMaster) != pci.CmdMemSpace|pci.CmdBusMaster {
		t.Fatal("decode bits lost")
	}
	// Device-private scratch area is writable.
	if err := r.df.ConfigWrite(0x40, 4, 0x12345678); err != nil {
		t.Fatal(err)
	}
}

func TestMapMMIOAndIOPorts(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	mm, err := r.df.MapMMIO(0)
	if err != nil {
		t.Fatal(err)
	}
	mm.Write32(e1000.RegITR, 123)
	if got := mm.Read32(e1000.RegITR); got != 123 {
		t.Fatalf("MMIO round trip = %d", got)
	}
	if _, err := r.df.MapMMIO(1); err == nil {
		t.Fatal("mapped a nonexistent BAR")
	}
	if _, err := r.df.RequestIOPorts(0); err == nil {
		t.Fatal("IO grant on a memory BAR succeeded")
	}
}

func TestIRQForwardingAndMaskPolicy(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	var upcalls int
	if err := r.df.RequestIRQ(func() { upcalls++ }); err != nil {
		t.Fatal(err)
	}
	if err := r.df.RequestIRQ(func() {}); err == nil {
		t.Fatal("double IRQ request succeeded")
	}
	// First interrupt: forwarded, not masked.
	r.m.IRQ.Inject(r.df.Vector())
	r.m.Loop.Run()
	if upcalls != 1 {
		t.Fatalf("upcalls = %d", upcalls)
	}
	if r.nic.Config().MSI().Masked {
		t.Fatal("masked after first interrupt")
	}
	// Second interrupt before Ack: masked (§3.2.2).
	r.m.IRQ.Inject(r.df.Vector())
	r.m.Loop.Run()
	if upcalls != 1 {
		t.Fatal("second interrupt forwarded before ack")
	}
	if !r.nic.Config().MSI().Masked {
		t.Fatal("not masked on re-raise before ack")
	}
	if r.df.MasksWhilePending != 1 {
		t.Fatalf("MasksWhilePending = %d", r.df.MasksWhilePending)
	}
	// Ack unmasks.
	r.df.Ack()
	if r.nic.Config().MSI().Masked {
		t.Fatal("still masked after ack")
	}
	if err := r.df.FreeIRQ(); err != nil {
		t.Fatal(err)
	}
	if err := r.df.FreeIRQ(); err == nil {
		t.Fatal("double free IRQ succeeded")
	}
}

func TestStormResponsePerPlatform(t *testing.T) {
	cases := []struct {
		name        string
		plat        hw.Platform
		wantStormed bool
	}{
		{"intel-no-remap", hw.DefaultPlatform(), false},
		{"intel-remap", hw.SecurePlatform(), true},
		{"amd", func() hw.Platform {
			p := hw.DefaultPlatform()
			p.IOMMU.Vendor = iommu.VendorAMD
			return p
		}(), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRig(t, c.plat)
			if err := r.df.RequestIRQ(func() {}); err != nil {
				t.Fatal(err)
			}
			// Drive the storm detector directly.
			for i := 0; i < r.m.IRQ.StormThreshold+1; i++ {
				r.m.IRQ.Inject(r.df.Vector())
			}
			r.m.Loop.Run()
			if r.df.Stormed() != c.wantStormed {
				t.Fatalf("stormed = %v, want %v", r.df.Stormed(), c.wantStormed)
			}
			if r.df.StormResponses == 0 {
				t.Fatal("storm response never ran")
			}
			// In every case the device's own MSI got masked.
			if !r.nic.Config().MSI().Masked {
				t.Fatal("device MSI not masked on storm")
			}
		})
	}
}

func TestCloseTearsDownEverything(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	a, err := r.df.AllocDMA(4096, "x", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.df.RequestIRQ(func() {}); err != nil {
		t.Fatal(err)
	}
	r.df.Close()
	r.df.Close() // idempotent
	if !r.df.Closed() {
		t.Fatal("not closed")
	}
	r.nic.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	if err := r.nic.DMAWrite(a.IOVA, []byte{1}); err == nil {
		t.Fatal("DMA after close succeeded")
	}
	if _, err := r.df.AllocDMA(4096, "y", true); err == nil {
		t.Fatal("alloc after close succeeded")
	}
	if err := r.df.ConfigWrite(0x40, 4, 1); err == nil {
		t.Fatal("config write after close succeeded")
	}
	if _, err := r.df.ConfigRead(0, 2); err == nil {
		t.Fatal("config read after close succeeded")
	}
	_ = irq.FirstUsable
	_ = sim.Second
}

// Property: ValidateRange accepts exactly the subranges of allocations.
func TestValidateRangeProperty(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	a, err := r.df.AllocDMA(16*4096, "buf", false)
	if err != nil {
		t.Fatal(err)
	}
	size := 16 * 4096
	f := func(off, n uint32) bool {
		o := int(off % uint32(size+100))
		l := int(n%uint32(size+100)) + 1
		want := o+l <= size
		return r.df.ValidateRange(a.IOVA+mem.Addr(o), l) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceDelegation(t *testing.T) {
	r := newRig(t, hw.DefaultPlatform())
	victim := e1000.New(r.m.Loop, pci.MakeBDF(1, 1, 0), 0xFEB40000,
		[6]byte{2, 0, 0, 0, 0, 2}, e1000.DefaultParams())
	victim.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace)
	r.m.AttachDevice(victim)
	r.nic.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)

	// Without a grant, P2P DMA at the victim's BAR faults.
	if err := r.nic.DMAWrite(0xFEB40000+e1000.RegITR, []byte{0x42, 0, 0, 0}); err == nil {
		t.Fatal("undelegated P2P DMA succeeded")
	}
	// Delegate, then the same DMA lands on the victim's register.
	if err := r.df.DelegateMMIO(victim, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.DMAWrite(0xFEB40000+e1000.RegITR, []byte{0x42, 0, 0, 0}); err != nil {
		t.Fatal("delegated P2P DMA faulted:", err)
	}
	if got := victim.MMIORead(0, e1000.RegITR, 4); got != 0x42 {
		t.Fatalf("victim ITR = %#x after delegated write", got)
	}
	// Revoke: faults again.
	if err := r.df.RevokeDelegation(victim, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.nic.DMAWrite(0xFEB40000+e1000.RegITR, []byte{0x43, 0, 0, 0}); err == nil {
		t.Fatal("revoked P2P DMA succeeded")
	}
	// IO BARs cannot be delegated.
	if err := r.df.DelegateMMIO(victim, 1); err == nil {
		t.Fatal("delegated a missing/IO BAR")
	}
}
