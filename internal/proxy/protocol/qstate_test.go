package protocol

import (
	"errors"
	"testing"
)

// TestQStateRoundTrip pins the per-queue epoch framing: queue, epoch and
// flags survive encode→decode at the boundaries of each field.
func TestQStateRoundTrip(t *testing.T) {
	cases := []QState{
		{Queue: 0, Epoch: 0, Flags: QStateParked},
		{Queue: 3, Epoch: 7, Flags: QStateArmed},
		{Queue: MaxQStateQueue, Epoch: ^uint32(0), Flags: QStateArmed},
	}
	for _, c := range cases {
		got, err := DecodeQState(EncodeQState(c))
		if err != nil {
			t.Fatalf("decode(%+v): %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %+v -> %+v", c, got)
		}
		if got.Parked() != (c.Flags == QStateParked) || got.Armed() != (c.Flags == QStateArmed) {
			t.Fatalf("flag accessors disagree for %+v", got)
		}
	}
}

// TestQStateRejectsMalformed covers the defensive decode paths a hostile or
// corrupted ring peer can hit.
func TestQStateRejectsMalformed(t *testing.T) {
	good := EncodeQState(QState{Queue: 1, Epoch: 2, Flags: QStateArmed})
	cases := map[string]struct {
		buf  []byte
		want error
	}{
		"nil":       {nil, ErrQStateSize},
		"short":     {good[:qstateSize-1], ErrQStateSize},
		"slack":     {append(append([]byte{}, good...), 0xEE), ErrQStateSize},
		"noflags":   {[]byte{1, 0, 0, 0, 0, 0, 0}, ErrQStateFlags},
		"bothflags": {[]byte{1, 0, 0, 0, 0, 0, QStateParked | QStateArmed}, ErrQStateFlags},
		"unknown":   {[]byte{1, 0, 0, 0, 0, 0, 1 << 5}, ErrQStateFlags},
	}
	for name, c := range cases {
		if _, err := DecodeQState(c.buf); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", name, err, c.want)
		}
	}
	// Senders own their frames: out-of-range encodes are programming
	// errors, not attacker input, and panic.
	for _, bad := range []QState{
		{Queue: -1, Flags: QStateArmed},
		{Queue: MaxQStateQueue + 1, Flags: QStateArmed},
		{Queue: 0, Flags: 0},
		{Queue: 0, Flags: QStateParked | QStateArmed},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("encode(%+v) did not panic", bad)
				}
			}()
			EncodeQState(bad)
		}()
	}
}

// FuzzDecodeQState drives the defensive decoder with arbitrary ring bytes:
// it must never panic, and every accepted frame must re-encode to the exact
// input (the codec is canonical).
func FuzzDecodeQState(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeQState(QState{Queue: 0, Epoch: 0, Flags: QStateParked}))
	f.Add(EncodeQState(QState{Queue: MaxQStateQueue, Epoch: ^uint32(0), Flags: QStateArmed}))
	f.Add([]byte{1, 0, 0, 0, 0, 0, QStateParked | QStateArmed})
	f.Fuzz(func(t *testing.T, buf []byte) {
		s, err := DecodeQState(buf)
		if err != nil {
			return
		}
		out := EncodeQState(s)
		if len(out) != len(buf) {
			t.Fatalf("canonical length %d != input %d", len(out), len(buf))
		}
		for i := range out {
			if out[i] != buf[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}
