package protocol

import (
	"encoding/binary"
	"errors"
)

// Per-queue epoch framing (queue-granular shadow recovery).
//
// When the supervisor quarantines a single hardware queue — its DMA
// sub-domain is revoked and the kernel parks only that queue's contexts —
// the driver process is told by an OpQueueEpoch upcall carrying this frame,
// and told again when the queue is re-armed at its new epoch. The runtime
// mirrors the epoch and stamps it on every completion it sends for that
// queue, so the proxy can reject completions minted for a quarantined
// incarnation of the queue while siblings' traffic flows untouched.
//
// The frame crosses the untrusted shared-memory ring in both directions
// conceptually (the upcall is kernel-written, but a hostile peer can replay
// or corrupt ring slots), so the decoder is defensive like the recycle
// framing: exact length, bounded values, unknown flags rejected.
//
// Wire format (little-endian):
//
//	u16 queue | u32 epoch | u8 flags
//
// Exactly one of QStateParked / QStateArmed must be set.

// QState flag bits.
const (
	// QStateParked: the queue is quarantined — its DMA sub-domain is
	// revoked and the kernel parks its submissions. The driver should
	// stop burning CPU on it.
	QStateParked = 1 << 0
	// QStateArmed: the queue is re-armed at Epoch — the runtime adopts
	// the new epoch stamp and drops work held for the dead incarnation.
	QStateArmed = 1 << 1
)

// MaxQStateQueue bounds the queue index one frame may name.
const MaxQStateQueue = 255

const qstateSize = 2 + 4 + 1

// QState is one decoded per-queue epoch transition.
type QState struct {
	Queue int
	Epoch uint32
	Flags uint8
}

// Parked reports whether the frame quarantines the queue.
func (s QState) Parked() bool { return s.Flags&QStateParked != 0 }

// Armed reports whether the frame re-arms the queue.
func (s QState) Armed() bool { return s.Flags&QStateArmed != 0 }

// QState decode errors (exported for fuzz and proxy tests).
var (
	ErrQStateSize  = errors.New("protocol: qstate frame is not exactly one record")
	ErrQStateQueue = errors.New("protocol: qstate queue index out of range")
	ErrQStateFlags = errors.New("protocol: qstate flags invalid")
)

// EncodeQState encodes one queue-epoch transition. Panics on out-of-range
// values — senders control their own frames; only decoders face untrusted
// input.
func EncodeQState(s QState) []byte {
	if s.Queue < 0 || s.Queue > MaxQStateQueue {
		panic("protocol: qstate queue out of range")
	}
	if !validQStateFlags(s.Flags) {
		panic("protocol: qstate flags invalid")
	}
	buf := make([]byte, qstateSize)
	binary.LittleEndian.PutUint16(buf[0:], uint16(s.Queue))
	binary.LittleEndian.PutUint32(buf[2:], s.Epoch)
	buf[6] = s.Flags
	return buf
}

// DecodeQState defensively decodes a qstate frame from the shared ring.
// Every structural violation is an error; the caller counts it against the
// peer and drops the frame.
func DecodeQState(buf []byte) (QState, error) {
	if len(buf) != qstateSize {
		return QState{}, ErrQStateSize
	}
	s := QState{
		Queue: int(binary.LittleEndian.Uint16(buf[0:])),
		Epoch: binary.LittleEndian.Uint32(buf[2:]),
		Flags: buf[6],
	}
	if s.Queue > MaxQStateQueue {
		return QState{}, ErrQStateQueue
	}
	if !validQStateFlags(s.Flags) {
		return QState{}, ErrQStateFlags
	}
	return s, nil
}

// validQStateFlags admits exactly one of parked/armed and no unknown bits.
func validQStateFlags(f uint8) bool {
	return f == QStateParked || f == QStateArmed
}
