package protocol

import "testing"

// The op-code space must stay disjoint: common ops below every class base,
// and class blocks strictly ordered with room for 16 upcalls + 16 downcalls.
func TestOpSpaceDisjoint(t *testing.T) {
	if OpInterrupt == 0 || OpCtl == 0 || OpIRQAck == 0 {
		t.Fatal("zero op code in use")
	}
	common := []uint32{OpInterrupt, OpCtl, OpIRQAck}
	for _, c := range common {
		if c >= EthBase {
			t.Fatalf("common op %d collides with class space", c)
		}
	}
	bases := []uint32{EthBase, WifiBase, AudioBase, BlockBase}
	for i := 1; i < len(bases); i++ {
		if bases[i]-bases[i-1] < 32 {
			t.Fatalf("class block %d too small: %d..%d", i-1, bases[i-1], bases[i])
		}
	}
}
