// Package protocol assigns the uchan operation-code space shared by all SUD
// proxy driver classes. Common operations (interrupt forwarding, the generic
// ctl surface, interrupt acknowledgement) are class-independent; each device
// class gets a disjoint range for its own upcalls and downcalls.
package protocol

// Common upcalls (kernel → driver process).
const (
	// OpInterrupt forwards a device interrupt (§3.2.2).
	OpInterrupt uint32 = 1
	// OpCtl invokes the driver's generic control surface (api.CtlHandler)
	// — the path used by classes that need no dedicated proxy, like the
	// USB host class (Figure 5: 0 lines of proxy code).
	OpCtl uint32 = 2
)

// Common downcalls (driver process → kernel).
const (
	// OpIRQAck is the interrupt_ack downcall (Figure 7).
	OpIRQAck uint32 = 8
)

// Per-class ranges. Upcalls and downcalls for one class share its block.
const (
	EthBase   uint32 = 16
	WifiBase  uint32 = 48
	AudioBase uint32 = 80
	BlockBase uint32 = 112
)
