package protocol

import (
	"encoding/binary"
	"errors"
)

// Recycle-ring framing (page-flip fast path, §3.1.2 amortised guard).
//
// When a proxy flips ownership of a buffer page to the kernel it later
// returns the page to the driver on a lazy recycle lane: one upcall carries a
// batch of page IOVAs plus the proxy's view of the device epoch. The driver
// echoes the same framing back as an acknowledgement downcall once it has
// re-armed descriptors over the pages. Both directions cross the untrusted
// shared-memory ring, so both sides decode defensively: a malicious or
// corrupted peer must not be able to crash the decoder or smuggle refs from
// a dead incarnation past the epoch check.
//
// Wire format (little-endian):
//
//	u16 count | u32 epoch | count × u64 page IOVA
//
// The frame length must be exact — trailing slack is rejected, like the RX
// batch framing.

// MaxRecyclePages bounds one recycle frame. The proxies flush well below
// this (recycleThreshold); the bound is what the decoder enforces.
const MaxRecyclePages = 64

const recycleHdrSize = 2 + 4
const recycleRefSize = 8

// Recycle decode errors (exported for fuzz and proxy tests).
var (
	ErrRecycleShort = errors.New("protocol: recycle frame shorter than header")
	ErrRecycleCount = errors.New("protocol: recycle page count out of range")
	ErrRecycleTrunc = errors.New("protocol: recycle frame truncated")
	ErrRecycleSlack = errors.New("protocol: recycle frame has trailing bytes")
)

// EncodeRecycle encodes a batch of flipped-page IOVAs with the sender's
// epoch. Panics if the batch is empty or exceeds MaxRecyclePages — senders
// control their own batch size; only decoders face untrusted input.
func EncodeRecycle(epoch uint32, pages []uint64) []byte {
	if len(pages) == 0 || len(pages) > MaxRecyclePages {
		panic("protocol: recycle batch size out of range")
	}
	buf := make([]byte, recycleHdrSize+len(pages)*recycleRefSize)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(pages)))
	binary.LittleEndian.PutUint32(buf[2:], epoch)
	for i, p := range pages {
		binary.LittleEndian.PutUint64(buf[recycleHdrSize+i*recycleRefSize:], p)
	}
	return buf
}

// DecodeRecycle defensively decodes a recycle frame from the shared ring.
// Every structural violation is an error; the caller counts it against the
// peer and drops the frame.
func DecodeRecycle(buf []byte) (epoch uint32, pages []uint64, err error) {
	if len(buf) < recycleHdrSize {
		return 0, nil, ErrRecycleShort
	}
	n := int(binary.LittleEndian.Uint16(buf[0:]))
	epoch = binary.LittleEndian.Uint32(buf[2:])
	if n == 0 || n > MaxRecyclePages {
		return 0, nil, ErrRecycleCount
	}
	want := recycleHdrSize + n*recycleRefSize
	if len(buf) < want {
		return 0, nil, ErrRecycleTrunc
	}
	if len(buf) > want {
		return 0, nil, ErrRecycleSlack
	}
	pages = make([]uint64, n)
	for i := range pages {
		pages[i] = binary.LittleEndian.Uint64(buf[recycleHdrSize+i*recycleRefSize:])
	}
	return epoch, pages, nil
}
