package protocol

import (
	"bytes"
	"testing"
)

// TestRecycleRoundTrip pins the recycle-ring framing: epoch and every page
// IOVA survive encode→decode at the boundaries of the count range.
func TestRecycleRoundTrip(t *testing.T) {
	cases := []struct {
		epoch uint32
		pages []uint64
	}{
		{0, []uint64{0x1000}},
		{^uint32(0), []uint64{0, ^uint64(0), 0xFEED0000}},
		{7, make([]uint64, MaxRecyclePages)},
	}
	for _, c := range cases {
		epoch, pages, err := DecodeRecycle(EncodeRecycle(c.epoch, c.pages))
		if err != nil {
			t.Fatalf("decode(%d pages): %v", len(c.pages), err)
		}
		if epoch != c.epoch {
			t.Fatalf("epoch %d -> %d", c.epoch, epoch)
		}
		if len(pages) != len(c.pages) {
			t.Fatalf("round trip %d -> %d pages", len(c.pages), len(pages))
		}
		for i := range pages {
			if pages[i] != c.pages[i] {
				t.Fatalf("page %d mangled: %#x -> %#x", i, c.pages[i], pages[i])
			}
		}
	}
}

// TestRecycleRejectsMalformed covers the defensive paths either untrusted
// direction (upcall or echoed ack) can hit.
func TestRecycleRejectsMalformed(t *testing.T) {
	good := EncodeRecycle(1, []uint64{0x1000, 0x2000})
	cases := map[string]struct {
		buf  []byte
		want error
	}{
		"nil":       {nil, ErrRecycleShort},
		"short":     {good[:recycleHdrSize-1], ErrRecycleShort},
		"zero":      {[]byte{0, 0, 1, 0, 0, 0}, ErrRecycleCount},
		"overcount": {[]byte{0xFF, 0xFF, 0, 0, 0, 0}, ErrRecycleCount},
		"truncated": {good[:len(good)-1], ErrRecycleTrunc},
		"slack":     {append(append([]byte{}, good...), 0xEE), ErrRecycleSlack},
	}
	for name, c := range cases {
		if _, _, err := DecodeRecycle(c.buf); err != c.want {
			t.Errorf("%s: got %v, want %v", name, err, c.want)
		}
	}
	// Senders own their batch size: out-of-range encodes are programming
	// errors, not attacker input, and panic.
	for _, pages := range [][]uint64{nil, make([]uint64, MaxRecyclePages+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("encode of %d pages did not panic", len(pages))
				}
			}()
			EncodeRecycle(0, pages)
		}()
	}
}

// FuzzDecodeRecycleRing hammers the recycle-frame decoder with arbitrary
// bytes. Both directions of the lane cross the untrusted shared-memory ring
// — the upcall handing pages back to the driver and the ack the driver
// echoes — so the decoder must never panic, anything it accepts must respect
// the page bound, and accepted frames must re-encode to identical bytes (no
// parser ambiguity for a smuggled payload).
func FuzzDecodeRecycleRing(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add(EncodeRecycle(1, []uint64{0x42431000}))
	f.Add(EncodeRecycle(^uint32(0), make([]uint64, MaxRecyclePages)))
	f.Add([]byte{0xFF, 0xFF, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, buf []byte) {
		epoch, pages, err := DecodeRecycle(buf)
		if err != nil {
			return
		}
		if len(pages) == 0 || len(pages) > MaxRecyclePages {
			t.Fatalf("accepted %d pages", len(pages))
		}
		if !bytes.Equal(EncodeRecycle(epoch, pages), buf) {
			t.Fatal("decode/encode mismatch")
		}
	})
}
