package wifiproxy

import (
	"reflect"
	"testing"
	"testing/quick"

	"sud/internal/drivers/api"
)

func TestBSSListRoundTrip(t *testing.T) {
	in := []api.BSS{
		{SSID: "csail", BSSID: [6]byte{1, 2, 3, 4, 5, 6}, Channel: 6, Signal: -40},
		{SSID: "", BSSID: [6]byte{9, 9, 9, 9, 9, 9}, Channel: 149, Signal: -90},
	}
	out, err := DecodeBSSList(EncodeBSSList(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", in, out)
	}
}

func TestBSSListEmpty(t *testing.T) {
	out, err := DecodeBSSList(EncodeBSSList(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty list: %v %v", out, err)
	}
	if _, err := DecodeBSSList(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
}

func TestBSSListMalformedRejected(t *testing.T) {
	// Count claims more entries than the payload carries.
	if _, err := DecodeBSSList([]byte{5, 2, 'a'}); err == nil {
		t.Fatal("truncated list accepted")
	}
	// Implausible count.
	if _, err := DecodeBSSList([]byte{200}); err == nil {
		t.Fatal("giant count accepted")
	}
	// SSID length beyond the payload.
	if _, err := DecodeBSSList([]byte{1, 40}); err == nil {
		t.Fatal("oversized SSID accepted")
	}
}

// Property: encode/decode round-trips arbitrary well-formed BSS lists; SSIDs
// longer than 32 bytes are truncated, signals clamp into int8+128 range.
func TestBSSListRoundTripProperty(t *testing.T) {
	f := func(names []string, chans []uint16, sigs []int8) bool {
		n := len(names)
		if n > 40 {
			n = 40
		}
		var in []api.BSS
		for i := 0; i < n; i++ {
			ssid := names[i]
			if len(ssid) > 32 {
				ssid = ssid[:32]
			}
			b := api.BSS{SSID: ssid}
			if i < len(chans) {
				b.Channel = int(chans[i])
			}
			if i < len(sigs) {
				b.Signal = int(sigs[i])
			}
			b.BSSID[0] = byte(i)
			in = append(in, b)
		}
		out, err := DecodeBSSList(EncodeBSSList(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return len(in) == 0 && len(out) == 0
		}
		for i := range in {
			if out[i].SSID != in[i].SSID || out[i].BSSID != in[i].BSSID ||
				out[i].Channel != in[i].Channel || out[i].Signal != in[i].Signal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes (untrusted input).
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeBSSList(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
