package wifiproxy

import (
	"testing"

	"sud/internal/drivers/api"
)

// FuzzDecodeBSSList hammers the proxy's scan-result codec with arbitrary
// bytes — the OpScanDone payload an untrusted driver process controls
// completely (§3.1.1: the proxy makes no assumptions about driver data).
// The decoder must never panic, and every accepted list must re-encode and
// re-decode to the same results (no parser ambiguity a malicious driver
// could exploit).
func FuzzDecodeBSSList(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(EncodeBSSList([]api.BSS{
		{SSID: "lab", BSSID: [6]byte{0xAA, 1, 2, 3, 4, 5}, Channel: 11, Signal: -40},
	}))
	f.Add(EncodeBSSList([]api.BSS{
		{SSID: "one", Channel: 1, Signal: -90},
		{SSID: "a-very-long-ssid-that-hits-the-32-byte-cap!", Channel: 165, Signal: 0},
	}))
	f.Add([]byte{2, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		list, err := DecodeBSSList(data)
		if err != nil {
			return
		}
		if len(list) > 64 {
			t.Fatalf("accepted implausible list of %d entries", len(list))
		}
		for _, b := range list {
			if len(b.SSID) > 32 {
				t.Fatalf("accepted %d-byte SSID", len(b.SSID))
			}
		}
		again, err := DecodeBSSList(EncodeBSSList(list))
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(again) != len(list) {
			t.Fatalf("round trip changed count: %d -> %d", len(list), len(again))
		}
		for i := range list {
			if again[i].SSID != list[i].SSID || again[i].BSSID != list[i].BSSID ||
				again[i].Channel != list[i].Channel || again[i].Signal != list[i].Signal {
				t.Fatalf("round trip mangled entry %d: %+v -> %+v", i, list[i], again[i])
			}
		}
	})
}
