// Package wifiproxy is SUD's wireless proxy driver (§3.1.1, Figure 5): the
// in-kernel module implementing the 802.11 contract on behalf of an
// untrusted driver process. It mirrors the driver's static feature set at
// registration — the kernel's 802.11 stack queries features from a
// non-preemptable context, so the proxy must answer from mirrored state —
// and synchronises scan results and association state through ordered
// downcalls (§3.3).
package wifiproxy

import (
	"encoding/binary"
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel/wifistack"
	"sud/internal/proxy/guard"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/uchan"
)

// Upcalls (kernel → driver).
const (
	OpOpen     = protocol.WifiBase + iota // sync
	OpStop                                // sync
	OpScan                                // async
	OpAssoc                               // async; Data = ssid
	OpDisassoc                            // async
	OpXmit                                // async; Data = frame (inline; wifi is not the fast path)
)

// Downcalls (driver → kernel).
const (
	OpScanDone   = protocol.WifiBase + 16 + iota // Data = encoded BSS list
	OpAssociated                                 // Data = ssid
	OpDisassociated
	OpNetifRx // Data = frame (inline)
)

// MaxFrame bounds inline wireless frames.
const MaxFrame = 2048

// Proxy is one wireless proxy instance.
type Proxy struct {
	Acct *sim.CPUAccount // kernel account
	DF   *pciaccess.DeviceFile
	C    *uchan.Chan
	Ifc  *wifistack.Iface

	// Guard is the shared guard-copy accounting (internal/proxy/guard):
	// wireless transfers take the plain inline leg.
	Guard guard.Stats

	// Counters.
	MirrorUpdates uint64
	BadDowncalls  uint64
}

// New registers a wireless interface whose ops are served by the driver
// process on the other end of c. features is the mirrored capability set.
func New(mgr *wifistack.Manager, df *pciaccess.DeviceFile, c *uchan.Chan,
	name string, mac [6]byte, features uint32) (*Proxy, error) {
	p := &Proxy{Acct: mgr.Acct, DF: df, C: c}
	ifc, err := mgr.Register(name, mac, (*proxyDev)(p), features)
	if err != nil {
		return nil, err
	}
	p.Ifc = ifc
	return p, nil
}

// HandleDowncall services one wireless downcall; the SUD-UML runtime routes
// ops in the wifi range here.
func (p *Proxy) HandleDowncall(m uchan.Msg) {
	switch m.Op {
	case OpScanDone:
		results, err := DecodeBSSList(m.Data)
		if err != nil {
			p.BadDowncalls++
			return
		}
		p.MirrorUpdates++
		p.Ifc.ScanDone(results)
	case OpAssociated:
		p.MirrorUpdates++
		p.Ifc.Associated(string(m.Data))
	case OpDisassociated:
		p.MirrorUpdates++
		p.Ifc.Disassociated()
	case OpNetifRx:
		if len(m.Data) == 0 || len(m.Data) > MaxFrame {
			p.BadDowncalls++
			return
		}
		// Inline data was copied through the ring; verify-checksum cost
		// only (the guard copy is inherent to inline transfer).
		guard.VerifyInline(p.Acct, &p.Guard, len(m.Data))
		p.Ifc.NetifRx(m.Data)
	default:
		p.BadDowncalls++
	}
}

// proxyDev implements api.WifiDevice by upcall.
type proxyDev Proxy

func (d *proxyDev) p() *Proxy { return (*Proxy)(d) }

func (d *proxyDev) syncOp(op uint32, data []byte) error {
	reply, err := d.p().C.Send(uchan.Msg{Op: op, Data: data})
	if err != nil {
		return fmt.Errorf("wifiproxy: upcall %d: %w", op, err)
	}
	if reply.Args[0] != 0 {
		return fmt.Errorf("wifiproxy: driver error: %s", reply.Data)
	}
	return nil
}

// Open implements api.WifiDevice.
func (d *proxyDev) Open() error { return d.syncOp(OpOpen, nil) }

// Stop implements api.WifiDevice.
func (d *proxyDev) Stop() error { return d.syncOp(OpStop, nil) }

// StartScan implements api.WifiDevice (asynchronous, like the paper's
// bss_change flow).
func (d *proxyDev) StartScan() error {
	return d.p().C.ASend(uchan.Msg{Op: OpScan})
}

// Associate implements api.WifiDevice.
func (d *proxyDev) Associate(ssid string) error {
	return d.p().C.ASend(uchan.Msg{Op: OpAssoc, Data: []byte(ssid)})
}

// Disassociate implements api.WifiDevice.
func (d *proxyDev) Disassociate() error {
	return d.p().C.ASend(uchan.Msg{Op: OpDisassoc})
}

// StartXmit implements api.WifiDevice with an inline copy (wireless is not
// the benchmarked fast path; rates are two orders below the uchan budget).
func (d *proxyDev) StartXmit(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("wifiproxy: frame too large")
	}
	buf := guard.CopyIn(d.p().Acct, &d.p().Guard, frame)
	return d.p().C.ASend(uchan.Msg{Op: OpXmit, Data: buf})
}

// Features implements api.WifiDevice. It must never upcall (§3.1.1): the
// wifistack answers from the mirrored value it stored at registration, so
// this method is unreachable in practice; it returns 0 defensively.
func (d *proxyDev) Features() uint32 { return 0 }

// EncodeBSSList marshals scan results for the downcall.
func EncodeBSSList(list []api.BSS) []byte {
	out := []byte{byte(len(list))}
	for _, b := range list {
		ssid := b.SSID
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		out = append(out, byte(len(ssid)))
		out = append(out, ssid...)
		out = append(out, b.BSSID[:]...)
		out = binary.LittleEndian.AppendUint16(out, uint16(b.Channel))
		out = append(out, byte(b.Signal+128))
	}
	return out
}

// DecodeBSSList unmarshals scan results, defensively (the driver is
// untrusted).
func DecodeBSSList(data []byte) ([]api.BSS, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("wifiproxy: empty BSS list")
	}
	count := int(data[0])
	if count > 64 {
		return nil, fmt.Errorf("wifiproxy: implausible BSS count %d", count)
	}
	pos := 1
	var out []api.BSS
	for i := 0; i < count; i++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("wifiproxy: truncated BSS list")
		}
		sl := int(data[pos])
		pos++
		if sl > 32 || pos+sl+9 > len(data) {
			return nil, fmt.Errorf("wifiproxy: malformed BSS entry")
		}
		var b api.BSS
		b.SSID = string(data[pos : pos+sl])
		pos += sl
		copy(b.BSSID[:], data[pos:pos+6])
		pos += 6
		b.Channel = int(binary.LittleEndian.Uint16(data[pos : pos+2]))
		pos += 2
		b.Signal = int(data[pos]) - 128
		pos++
		out = append(out, b)
	}
	return out, nil
}
