// Package guard centralises the proxies' §3.1.2 guard-copy primitives.
// Every class proxy must move driver-reachable bytes out of shared memory
// (or verify bytes that already crossed the ring inline) before the kernel
// acts on them; routing those transfers through one helper gives uniform
// CPU charging and uniform accounting, so ablations can compare guard bytes
// across device classes instead of re-deriving each proxy's hand-rolled
// copy. The Ethernet and block proxies keep their specialised fused and
// page-flip guards — this package is the plain leg the low-rate classes
// (wireless, audio) share.
package guard

import "sud/internal/sim"

// Stats is the shared guard accounting a proxy embeds: how many bytes its
// guard moved or verified on behalf of the kernel.
type Stats struct {
	// CopiedBytes counts bytes moved through a guard copy; Copies counts
	// the individual copies.
	CopiedBytes uint64
	Copies      uint64
	// VerifiedBytes counts inline bytes whose transfer through the ring
	// was itself the copy, leaving only checksum-style verification.
	VerifiedBytes uint64
}

// CopyIn guard-copies payload into a fresh kernel-owned buffer, charging the
// copy to acct and recording it in st. The returned buffer is stable: later
// driver stores to the source cannot change what the kernel acts on.
func CopyIn(acct *sim.CPUAccount, st *Stats, payload []byte) []byte {
	acct.Charge(sim.Copy(len(payload)))
	st.CopiedBytes += uint64(len(payload))
	st.Copies++
	buf := make([]byte, len(payload))
	copy(buf, payload)
	return buf
}

// VerifyInline charges the verification leg for n bytes that arrived inline
// in a ring message — the transfer was the copy, so only the check remains —
// and records them in st.
func VerifyInline(acct *sim.CPUAccount, st *Stats, n int) {
	acct.Charge(sim.Checksum(n))
	st.VerifiedBytes += uint64(n)
}
