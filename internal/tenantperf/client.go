package tenantperf

import (
	"fmt"

	"sud/internal/ethlink"
	"sud/internal/kernel/kvserve"
	"sud/internal/kernel/netstack"
	"sud/internal/sim"
	"sud/internal/trace"
)

// Client is the wire-level tenant population: K tenants × Conns closed-loop
// connections, terminated at the link like netperf's RemoteHost so it
// consumes no DUT CPU. Each connection keeps one request outstanding,
// alternating PUTs and GETs on its own key, records the reply round-trip in
// its tenant's histogram, and retransmits on timeout — at-least-once, so
// duplicate replies from the DUT's TX replay after a recovery are detected
// and discarded by request id.
type Client struct {
	loop *sim.Loop
	link *ethlink.Link
	side int

	turnaround sim.Duration
	rto        sim.Duration

	Tenants []*TenantLoad
	bySport map[uint16]*conn
	stopped bool
}

// TenantLoad aggregates one tenant's client-side view.
type TenantLoad struct {
	ID    int
	Port  uint16
	Queue int

	// Lat is the request→reply round-trip histogram, first transmission to
	// accepted reply — retransmit delay included, so a tenant whose queue
	// is under attack shows it in p99.
	Lat trace.Hist

	Sent       uint64 // requests issued (excluding retransmissions)
	Replies    uint64 // accepted replies (the goodput numerator)
	Retrans    uint64 // timeout retransmissions
	Duplicates uint64 // replies for an id no longer outstanding
	SendErrs   uint64 // wire FIFO full on transmit

	conns []*conn
}

type conn struct {
	t     *TenantLoad
	c     *Client
	sport uint16
	key   []byte
	val   []byte

	seq       uint64
	inflight  uint64 // outstanding request id, 0 = idle
	firstSent sim.Time
	lastReq   []byte
	rtoEv     *sim.Event
}

// NewClient builds the tenant population for cfg; Start begins the load.
// Connection source ports are chosen so each tenant's request flows
// RSS-steer onto the tenant's own NIC ring: TxQueueForPorts(sport, port(t),
// Queues) == t mod Queues.
func NewClient(loop *sim.Loop, link *ethlink.Link, side int, cfg Config) *Client {
	c := &Client{
		loop: loop, link: link, side: side,
		turnaround: cfg.Turnaround, rto: cfg.RTO,
		bySport: make(map[uint16]*conn),
	}
	sport := uint16(53000)
	for t := 0; t < cfg.Tenants; t++ {
		tl := &TenantLoad{ID: t, Port: PortBase + uint16(t), Queue: t % cfg.Queues}
		for i := 0; i < cfg.Conns; i++ {
			// Scan for the next source port steering onto the tenant's ring.
			for netstack.TxQueueForPorts(sport, tl.Port, cfg.Queues) != tl.Queue {
				sport++
			}
			cn := &conn{
				t: tl, c: c, sport: sport,
				key: []byte(fmt.Sprintf("t%d-c%d", t, i)),
				val: make([]byte, 64),
			}
			c.bySport[sport] = cn
			tl.conns = append(tl.conns, cn)
			sport++
		}
		c.Tenants = append(c.Tenants, tl)
	}
	return c
}

// Start launches every connection's closed loop, staggered so the tenants
// don't fire in lockstep.
func (c *Client) Start() {
	c.stopped = false
	i := 0
	for _, tl := range c.Tenants {
		for _, cn := range tl.conns {
			cn := cn
			c.loop.After(sim.Duration(i)*3*sim.Microsecond, cn.issue)
			i++
		}
	}
}

// Stop halts the load; in-flight timers become no-ops.
func (c *Client) Stop() { c.stopped = true }

// LinkDeliver implements ethlink.Endpoint: parse a service reply and hand it
// to the owning connection.
func (c *Client) LinkDeliver(frame []byte) {
	eh, ipPkt, err := netstack.ParseEth(frame)
	if err != nil || eh.EtherType != netstack.EtherTypeIPv4 {
		return
	}
	ih, l4, err := netstack.ParseIPv4(ipPkt)
	if err != nil || ih.Proto != netstack.ProtoUDP {
		return
	}
	uh, payload, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true)
	if err != nil {
		return
	}
	cn, ok := c.bySport[uh.DstPort]
	if !ok || uh.SrcPort != cn.t.Port {
		return
	}
	resp, err := kvserve.DecodeResponse(payload)
	if err != nil {
		return
	}
	cn.onReply(resp)
}

// id packs (sport, seq) so every connection's requests are globally unique
// across the run — the duplicate filter after a TX replay depends on it.
func (cn *conn) id() uint64 { return uint64(cn.sport)<<32 | (cn.seq & 0xFFFFFFFF) }

// issue starts the next request in the closed loop.
func (cn *conn) issue() {
	if cn.c.stopped {
		return
	}
	cn.seq++
	req := kvserve.Request{ID: cn.id(), Key: cn.key}
	// First op seeds the key; thereafter one PUT per four requests.
	if cn.seq == 1 || cn.seq%4 == 0 {
		req.Op = kvserve.OpPut
		req.Val = cn.val
	} else {
		req.Op = kvserve.OpGet
	}
	cn.inflight = req.ID
	cn.firstSent = cn.c.loop.Now()
	cn.lastReq = netstack.BuildUDPFrame([6]byte(CliMAC), [6]byte(SrvMAC), CliIP, SrvIP,
		cn.sport, cn.t.Port, kvserve.EncodeRequest(req))
	cn.t.Sent++
	cn.xmit()
}

// xmit puts the current request on the wire and arms the retransmit timer.
func (cn *conn) xmit() {
	if cn.c.stopped {
		return
	}
	if err := cn.c.link.Send(cn.c.side, cn.lastReq); err != nil {
		// Wire FIFO full: the RTO doubles as the retry pacer.
		cn.t.SendErrs++
	}
	cn.rtoEv = cn.c.loop.After(cn.c.rto, func() {
		if cn.c.stopped || cn.inflight == 0 {
			return
		}
		cn.t.Retrans++
		cn.xmit()
	})
}

// onReply accepts the reply for the outstanding request; anything else is a
// duplicate (replayed TX after a recovery) or stale retransmit answer.
func (cn *conn) onReply(resp kvserve.Response) {
	if cn.c.stopped {
		return
	}
	if cn.inflight == 0 || resp.ID != cn.inflight {
		cn.t.Duplicates++
		return
	}
	cn.inflight = 0
	if cn.rtoEv != nil {
		cn.c.loop.Cancel(cn.rtoEv)
		cn.rtoEv = nil
	}
	cn.t.Lat.Record(cn.c.loop.Now() - cn.firstSent)
	cn.t.Replies++
	cn.c.loop.After(cn.c.turnaround, cn.issue)
}
