package tenantperf

import (
	"testing"

	"sud/internal/sim"
)

func newSUDTestbed(t *testing.T) *Testbed {
	t.Helper()
	tb, err := NewTestbed(Config{Mode: ModeSUD, Tenants: 4, Conns: 4, Queues: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// checkAccounting asserts the SLO bookkeeping invariant: every accepted
// reply is recorded in its tenant's histogram exactly once — duplicates
// (replayed TX after a recovery) and retransmissions never inflate it.
func checkAccounting(t *testing.T, tb *Testbed) {
	t.Helper()
	for _, tl := range tb.Client.Tenants {
		if tl.Lat.Count() != tl.Replies {
			t.Errorf("tenant %d: histogram holds %d samples, %d accepted replies",
				tl.ID, tl.Lat.Count(), tl.Replies)
		}
		if tl.Replies == 0 {
			t.Errorf("tenant %d: no replies — load never ran", tl.ID)
		}
		if tl.Replies > tl.Sent {
			t.Errorf("tenant %d: %d replies for %d requests — a duplicate was accepted",
				tl.ID, tl.Replies, tl.Sent)
		}
	}
}

func TestTenantAccountingSteadyState(t *testing.T) {
	tb := newSUDTestbed(t)
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(30 * sim.Millisecond)
	checkAccounting(t, tb)
}

// TestTenantAccountingAcrossKill9 kill -9s both driver processes mid-load.
// The supervisor restarts them, the net side replays its TX shadow log
// (duplicate replies reach the client), and the block side re-issues parked
// writes — none of which may double-count a reply in any tenant's histogram.
func TestTenantAccountingAcrossKill9(t *testing.T) {
	tb := newSUDTestbed(t)
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(15 * sim.Millisecond)

	tb.NetSup.Proc().Kill()
	tb.BlkSup.Proc().Kill()
	tb.M.Loop.RunFor(30 * sim.Millisecond)

	if tb.NetSup.Restarts == 0 || tb.BlkSup.Restarts == 0 {
		t.Fatalf("drivers not restarted after kill -9: net %d, blk %d",
			tb.NetSup.Restarts, tb.BlkSup.Restarts)
	}
	checkAccounting(t, tb)
	// The load must have survived the restart: replies after the blip.
	before := totalReplies(tb)
	tb.M.Loop.RunFor(10 * sim.Millisecond)
	if totalReplies(tb) == before {
		t.Fatal("no replies after driver restarts — service never recovered")
	}
}

// TestTenantAccountingAcrossQueueRecovery breaches one tenant's block
// sub-domain so the supervisor runs a surgical single-queue recovery, and
// checks the histogram invariant across the drain-replay cycle.
func TestTenantAccountingAcrossQueueRecovery(t *testing.T) {
	tb := newSUDTestbed(t)
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(15 * sim.Millisecond)

	const attacker = 1
	bdf := tb.Ctrl.BDF()
	for i := 0; i < 4; i++ {
		_, _, _ = tb.M.IOMMU.TranslateQ(bdf, attacker+1, 0xDEAD0000, true)
	}
	tb.M.Loop.RunFor(30 * sim.Millisecond)

	if tb.BlkSup.QueueRecoveries == 0 {
		t.Fatal("sub-domain faults did not trigger a surgical queue recovery")
	}
	if tb.BlkSup.Restarts != 0 {
		t.Fatalf("surgical recovery escalated to %d full restarts", tb.BlkSup.Restarts)
	}
	checkAccounting(t, tb)
}

// TestTenantRunsDeterministic runs the same configuration twice and demands
// bit-identical per-tenant totals — the property every BENCH_tenant.json
// band and noisy-leg verdict rests on.
func TestTenantRunsDeterministic(t *testing.T) {
	type row struct {
		sent, replies, retrans, dups uint64
		p50, p99                     float64
	}
	runOnce := func() []row {
		tb := newSUDTestbed(t)
		tb.Client.Start()
		tb.M.Loop.RunFor(25 * sim.Millisecond)
		tb.Client.Stop()
		var out []row
		for _, tl := range tb.Client.Tenants {
			out = append(out, row{tl.Sent, tl.Replies, tl.Retrans, tl.Duplicates,
				tl.Lat.PercentileUS(0.50), tl.Lat.PercentileUS(0.99)})
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("tenant %d diverged across identical runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
