package tenantperf

import (
	"fmt"
	"math"
	"strings"

	"sud/internal/sim"
	"sud/internal/trace"
)

// Options control the windowed measurement (netperf-style confidence
// stopping on aggregate goodput).
type Options struct {
	Warmup     sim.Duration
	Window     sim.Duration
	MinWindows int
	MaxWindows int
	// HalfWidthFrac: stop when the 99% CI is within ±this of the mean.
	HalfWidthFrac float64
}

// DefaultOptions are scaled for thousands of closed-loop connections in
// simulated time.
func DefaultOptions() Options {
	return Options{
		Warmup:        20 * sim.Millisecond,
		Window:        50 * sim.Millisecond,
		MinWindows:    3,
		MaxWindows:    10,
		HalfWidthFrac: 0.05,
	}
}

// TenantResult is one tenant's SLO row.
type TenantResult struct {
	Tenant int
	Queue  int

	Requests   uint64 // accepted replies over the span
	GoodputRPS float64
	P50US      float64
	P99US      float64

	Retrans    uint64 `json:",omitempty"`
	Duplicates uint64 `json:",omitempty"`
	// PersistErrs is the server-side degraded-durability count (storage
	// refused or failed; served from memory).
	PersistErrs uint64 `json:",omitempty"`
}

// Result is the tenant experiment's output (BENCH_tenant.json rows).
type Result struct {
	Mode    string
	Tenants int
	Conns   int
	Queues  int

	TotalRPS float64
	CPU      float64

	PerTenant []TenantResult

	// Noisy rows: the in-run NoisyNeighbor legs (present when the
	// experiment ran them). The gate enforces conviction and the victim
	// p99 band on these.
	Noisy []NoisyResult `json:",omitempty"`

	Windows int
	CIRel   float64
}

// NoisyResult is one noisy-neighbour leg: one tenant's driver queue
// misbehaves; the leg reports whether the fault was convicted/confined and
// the worst sibling-tenant p99 drift while it happened.
type NoisyResult struct {
	Leg      string
	Attacker int // tenant whose queue misbehaves

	// VictimPreP99US is the worst sibling p99 before the attack,
	// VictimP99US the worst sibling p99 during it; MaxDriftFrac is the
	// largest per-victim |during/pre - 1|.
	VictimPreP99US float64
	VictimP99US    float64
	MaxDriftFrac   float64

	Convicted bool
	Detail    string
}

func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TENANT %s T=%d conns=%d Q=%d %9.0f req/s aggregate %5.1f%% CPU\n",
		r.Mode, r.Tenants, r.Conns, r.Queues, r.TotalRPS, r.CPU*100)
	for _, t := range r.PerTenant {
		fmt.Fprintf(&b, "  tenant %2d q%d: %8.0f req/s  p50 %7.1fµs  p99 %7.1fµs",
			t.Tenant, t.Queue, t.GoodputRPS, t.P50US, t.P99US)
		if t.Retrans > 0 || t.Duplicates > 0 {
			fmt.Fprintf(&b, "  (%d retrans, %d dups)", t.Retrans, t.Duplicates)
		}
		b.WriteString("\n")
	}
	for _, n := range r.Noisy {
		verdict := "CONFINED"
		if !n.Convicted {
			verdict = "UNCONVICTED"
		}
		fmt.Fprintf(&b, "  noisy %-11s attacker t%d %-11s victim p99 %7.1fµs -> %7.1fµs (drift %+.1f%%): %s\n",
			n.Leg, n.Attacker, verdict, n.VictimPreP99US, n.VictimP99US, n.MaxDriftFrac*100, n.Detail)
	}
	return b.String()
}

// TenantWindow is one tenant's delta over a measurement span — the unit the
// noisy-neighbour legs compare pre-attack vs during-attack.
type TenantWindow struct {
	Tenant  int
	Replies uint64
	P50US   float64
	P99US   float64
}

// snapshot captures per-tenant histogram + counter baselines.
type snapshot struct {
	lat     []trace.Hist
	replies []uint64
}

func (tb *Testbed) snap() snapshot {
	s := snapshot{}
	for _, tl := range tb.Client.Tenants {
		s.lat = append(s.lat, tl.Lat)
		s.replies = append(s.replies, tl.Replies)
	}
	return s
}

// since reduces the per-tenant deltas from a snapshot to SLO windows.
func (tb *Testbed) since(base snapshot) []TenantWindow {
	var out []TenantWindow
	for i, tl := range tb.Client.Tenants {
		w := TenantWindow{Tenant: tl.ID, Replies: tl.Replies - base.replies[i]}
		d := tl.Lat.Sub(&base.lat[i])
		if d.Count() > 0 {
			w.P50US = d.PercentileUS(0.50)
			w.P99US = d.PercentileUS(0.99)
		}
		out = append(out, w)
	}
	return out
}

// MeasureWindow runs the loop for `window` and returns each tenant's SLO
// deltas over exactly that span. The client must already be started.
func (tb *Testbed) MeasureWindow(window sim.Duration) []TenantWindow {
	base := tb.snap()
	tb.M.Loop.RunFor(window)
	return tb.since(base)
}

// Run starts the tenant population, measures windowed aggregate goodput to
// convergence, and reports per-tenant SLOs over the measured span.
func Run(tb *Testbed, opt Options) (Result, error) {
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(opt.Warmup)

	base := tb.snap()
	var vals, cpus []float64
	for len(vals) < opt.MaxWindows {
		start := tb.M.Now()
		tb.M.CPU.Reset(start)
		before := totalReplies(tb)
		tb.M.Loop.RunFor(opt.Window)
		vals = append(vals, float64(totalReplies(tb)-before)/opt.Window.Seconds())
		cpus = append(cpus, tb.M.CPU.Utilization(tb.M.Now()))
		if len(vals) >= opt.MinWindows {
			m, hw99 := meanCI(vals)
			if m > 0 && hw99/m <= opt.HalfWidthFrac {
				break
			}
		}
	}
	span := sim.Duration(len(vals)) * opt.Window

	mean, hw99 := meanCI(vals)
	cpu, _ := meanCI(cpus)
	res := Result{
		Mode: tb.Cfg.Mode.String(), Tenants: tb.Cfg.Tenants, Conns: tb.Cfg.Conns,
		Queues: tb.Cfg.Queues, TotalRPS: mean, CPU: cpu, Windows: len(vals),
	}
	if mean > 0 {
		res.CIRel = hw99 / mean
	}
	for i, w := range tb.since(base) {
		tl := tb.Client.Tenants[i]
		res.PerTenant = append(res.PerTenant, TenantResult{
			Tenant:      w.Tenant,
			Queue:       tl.Queue,
			Requests:    w.Replies,
			GoodputRPS:  float64(w.Replies) / span.Seconds(),
			P50US:       w.P50US,
			P99US:       w.P99US,
			Retrans:     tl.Retrans,
			Duplicates:  tl.Duplicates,
			PersistErrs: tb.Srv.Tenant(w.Tenant).PersistErrs,
		})
	}
	return res, nil
}

func totalReplies(tb *Testbed) uint64 {
	var n uint64
	for _, tl := range tb.Client.Tenants {
		n += tl.Replies
	}
	return n
}

// VictimDrift reduces pre/during windows to the noisy-leg verdict inputs:
// the worst victim p99 in each phase and the largest per-victim drift
// fraction, attacker excluded.
func VictimDrift(pre, during []TenantWindow, attacker int) (preP99, durP99, maxDrift float64) {
	for i := range pre {
		if pre[i].Tenant == attacker {
			continue
		}
		if pre[i].P99US > preP99 {
			preP99 = pre[i].P99US
		}
		if during[i].P99US > durP99 {
			durP99 = during[i].P99US
		}
		if pre[i].P99US > 0 {
			d := math.Abs(during[i].P99US/pre[i].P99US - 1)
			if d > maxDrift {
				maxDrift = d
			}
		}
	}
	return preP99, durP99, maxDrift
}

// meanCI is the sample mean and the 99% confidence half-width (Student t).
func meanCI(vals []float64) (mean, halfWidth float64) {
	n := float64(len(vals))
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / n
	if len(vals) < 2 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, t99(len(vals)-1) * sd / math.Sqrt(n)
}

// t99 is the two-sided 99% Student-t critical value.
func t99(df int) float64 {
	table := []float64{math.Inf(1), 63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	return 2.9
}
