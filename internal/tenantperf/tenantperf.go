// Package tenantperf measures the tenant plane: K simulated tenants driving
// a sharded KV service (internal/kernel/kvserve) over the unified
// queue-aware kernel API, with one tenant pinned to one driver queue end to
// end — RSS RX ring, uchan ring pair, TX queue, block submission queue and
// IOMMU sub-domain. It reports per-tenant p50/p99 latency and goodput
// (BENCH_tenant.json), and hosts the measurement half of the NoisyNeighbor
// attack row: while one tenant's queue misbehaves, the sibling tenants' SLOs
// must hold.
package tenantperf

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/devices/nvme"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/nvmed"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/blockdev"
	"sud/internal/kernel/kvserve"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// Mode selects the trust boundary the drivers run behind.
type Mode int

const (
	// ModeKernel: trusted in-kernel drivers (the baseline with no tenant
	// isolation boundary beneath the service).
	ModeKernel Mode = iota
	// ModeSUD: both drivers in supervised untrusted processes with
	// per-queue IOMMU sub-domains.
	ModeSUD
)

func (m Mode) String() string {
	if m == ModeSUD {
		return "sud"
	}
	return "kernel"
}

// Service endpoint addressing.
var (
	SrvMAC = netstack.MAC{0x00, 0x1B, 0x21, 0x11, 0x22, 0x33}
	CliMAC = netstack.MAC{0x00, 0x1B, 0x21, 0x44, 0x55, 0x66}
	SrvIP  = netstack.IP{10, 0, 0, 1}
	CliIP  = netstack.IP{10, 0, 0, 2}
)

// PortBase is tenant 0's UDP port; tenant t serves PortBase+t.
const PortBase = 8000

// Cores is the tenant DUT's core count (server-class, like the netperf
// scale scenario).
const Cores = 16

// Config shapes a tenant testbed.
type Config struct {
	Mode    Mode
	Tenants int
	// Conns is the closed-loop connection count per tenant.
	Conns int
	// Queues is the end-to-end queue fan-out (NIC rings, uchan pairs, NVMe
	// submission queues, IOMMU streams). Clamped to the device maxima.
	Queues   int
	Platform hw.Platform // zero value picks hw.DefaultPlatform()

	// BlockDriver overrides the honest nvmed (the FlushLie leg passes the
	// lying driver here); BlockQueues is its ring-pair count when the
	// override speaks fewer queues than the NIC side.
	BlockDriver api.Driver
	BlockQueues int

	// Turnaround is per-request client think time; RTO the retransmit
	// timeout for lost requests or replies. Zeroes pick defaults.
	Turnaround sim.Duration
	RTO        sim.Duration
}

// Testbed is the booted tenant-plane DUT plus its wire-level client.
type Testbed struct {
	Cfg Config

	M *hw.Machine
	K *kernel.Kernel

	Nic  *e1000.NIC
	Ctrl *nvme.Ctrl

	// Supervisors (ModeSUD only).
	NetSup *sudml.Supervisor
	BlkSup *sudml.Supervisor

	Ifc    *netstack.Iface
	Dev    *blockdev.Dev
	Srv    *kvserve.Server
	Client *Client
}

// NewTestbed boots the machine: multi-queue e1000 NIC plus NVMe controller,
// drivers per Mode, the KV service sharded across the tenants, and the
// client attached at wire level.
func NewTestbed(cfg Config) (*Testbed, error) {
	if cfg.Tenants < 1 || cfg.Conns < 1 {
		return nil, fmt.Errorf("tenantperf: need at least one tenant and one connection")
	}
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.Queues > e1000.MaxTxQueues {
		cfg.Queues = e1000.MaxTxQueues
	}
	if cfg.Queues > nvme.MaxIOQueues {
		cfg.Queues = nvme.MaxIOQueues
	}
	if cfg.Platform.Cores == 0 {
		cfg.Platform = hw.DefaultPlatform()
	}
	cfg.Platform.Cores = Cores
	if cfg.Turnaround == 0 {
		cfg.Turnaround = 200 * sim.Microsecond
	}
	if cfg.RTO == 0 {
		cfg.RTO = 4 * sim.Millisecond
	}
	if cfg.BlockQueues == 0 {
		cfg.BlockQueues = cfg.Queues
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)

	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, [6]byte(SrvMAC),
		e1000.MultiQueueParams(cfg.Queues))
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	client := NewClient(m.Loop, link, 1, cfg)
	link.Connect(nic, client)
	nic.AttachLink(link, 0)

	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(cfg.Queues))
	m.AttachDevice(ctrl)

	tb := &Testbed{Cfg: cfg, M: m, K: k, Nic: nic, Ctrl: ctrl, Client: client}
	blkDrv := cfg.BlockDriver
	if blkDrv == nil {
		blkDrv = nvmed.NewQ(cfg.Queues)
	}
	var err error
	switch cfg.Mode {
	case ModeKernel:
		if _, err = k.BindInKernel(e1000e.NewQ(cfg.Queues), nic); err != nil {
			return nil, err
		}
		if _, err = k.BindInKernel(blkDrv, ctrl); err != nil {
			return nil, err
		}
	case ModeSUD:
		if tb.NetSup, err = sudml.SuperviseNetQ(k, nic, e1000e.NewQ(cfg.Queues), "e1000e", "eth0", 1001, cfg.Queues); err != nil {
			return nil, err
		}
		if tb.BlkSup, err = sudml.SuperviseBlock(k, ctrl, blkDrv, "nvmed", "nvme0", 1003, cfg.BlockQueues); err != nil {
			return nil, err
		}
	}
	if tb.Ifc, err = k.Net.Iface("eth0"); err != nil {
		return nil, err
	}
	if err = tb.Ifc.Up(SrvIP); err != nil {
		return nil, err
	}
	if tb.Dev, err = k.Blk.Dev("nvme0"); err != nil {
		return nil, err
	}
	if err = tb.Dev.Up(); err != nil {
		return nil, err
	}

	// Shard the media across the tenants; each tenant's working set lives
	// in its own LBA region so QueueForLBA-style spreading never crosses a
	// tenant boundary.
	bpt := tb.Dev.Geom.Blocks / uint64(cfg.Tenants)
	if bpt > 256 {
		bpt = 256
	}
	if bpt == 0 {
		return nil, fmt.Errorf("tenantperf: media too small for %d tenants", cfg.Tenants)
	}
	if tb.Srv, err = kvserve.New(k.Net, tb.Ifc, kvserve.Config{
		Tenants:         cfg.Tenants,
		PortBase:        PortBase,
		ClientMAC:       CliMAC,
		Store:           tb.Dev,
		LBABase:         0,
		BlocksPerTenant: bpt,
	}); err != nil {
		return nil, err
	}
	m.Loop.RunFor(100 * sim.Microsecond)
	return tb, nil
}
