// Package wifi models an Intel iwlagn-class 802.11 adapter and the airspace
// it operates in: access points that can be scanned, associated with, and
// exchanged data frames with. The driver interacts with it exactly like real
// silicon — MMIO command registers, DMA'd scan results, descriptor-ring data
// frames, MSI interrupts — so SUD's confinement story (§4: the iwlagn5000
// ran unmodified under SUD) is exercised end to end.
package wifi

import (
	"sud/internal/ethlink"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Register offsets (BAR0).
const (
	RegCmd       = 0x00 // write a CmdX value to start an operation
	RegIntCause  = 0x04 // read-to-clear interrupt causes
	RegIntMask   = 0x08 // 1 bits enable causes
	RegScanBufLo = 0x10 // DMA target for scan results
	RegScanBufHi = 0x14
	RegScanCount = 0x18 // number of BSS entries written (read-only)
	RegAssocIdx  = 0x1C // index into the last scan's results
	RegTxBufLo   = 0x20 // single-slot TX: frame buffer address
	RegTxBufHi   = 0x24
	RegTxLen     = 0x28 // writing length triggers transmission
	RegRxBufLo   = 0x30 // RX area: 32 slots of 2 KiB
	RegRxBufHi   = 0x34
	RegRxCtl     = 0x38 // bit 0 enables RX
	RegRxHead    = 0x3C // device write index (read-only)
	RegRxAck     = 0x40 // driver read index (write to free slots)
	RegMACLo     = 0x48
	RegMACHi     = 0x4C

	// BARSize is BAR0's size.
	BARSize = 0x1000
)

// Commands for RegCmd.
const (
	CmdScan = iota + 1
	CmdAssoc
	CmdDisassoc
)

// Interrupt cause bits.
const (
	IntScanDone = 1 << 0
	IntAssocOK  = 1 << 1
	IntAssocErr = 1 << 2
	IntRx       = 1 << 3
	IntTxDone   = 1 << 4
	IntDisassoc = 1 << 5
)

// BSSEntrySize is the DMA'd scan-result record: ssid[32] bssid[6] pad[2]
// channel[2] signal-as-int8+128[1] pad[5].
const BSSEntrySize = 48

// RxSlots and RxSlotSize define the receive area geometry.
const (
	RxSlots    = 32
	RxSlotSize = 2048
)

// Timing of radio operations.
const (
	scanDwell  = 12 * sim.Millisecond // whole-scan duration
	assocDelay = 4 * sim.Millisecond
	txAirTime  = 60 * sim.Microsecond // ~54 Mb/s effective per frame slot
)

// AP is one access point in the airspace.
type AP struct {
	SSID    string
	BSSID   [6]byte
	Channel int
	Signal  int // dBm

	// Bridge, if set, receives every data frame an associated station
	// transmits; use Station.DeliverFromAP for the reverse direction.
	Bridge func(frame []byte)
}

// Air is the shared radio environment.
type Air struct {
	APs []*AP
}

// FindAP returns the AP broadcasting ssid.
func (a *Air) FindAP(ssid string) *AP {
	for _, ap := range a.APs {
		if ap.SSID == ssid {
			return ap
		}
	}
	return nil
}

// NIC is the 802.11 adapter.
type NIC struct {
	pci.FuncBase
	loop *sim.Loop
	air  *Air
	mac  [6]byte

	regs map[uint64]uint32

	lastScan []*AP
	assoc    *AP

	rxHead, rxAck uint32

	// Counters.
	TxFrames, RxFrames uint64
	RxDrops, DMAFaults uint64
	Scans              uint64
}

// New creates the adapter. Vendor/device match the iwlagn 5000 series.
func New(loop *sim.Loop, bdf pci.BDF, barBase uint64, macAddr [6]byte, air *Air) *NIC {
	n := &NIC{loop: loop, air: air, mac: macAddr, regs: make(map[uint64]uint32)}
	cfg := pci.NewConfigSpace(0x8086, 0x4232, 0x02)
	cfg.SetBAR(0, barBase, BARSize, false)
	cfg.AddMSICapability()
	cfg.OnMSIChange = func() {
		if !cfg.MSI().Masked {
			n.maybeInterrupt()
		}
	}
	n.InitFunc(bdf, cfg)
	return n
}

// MAC returns the adapter address.
func (n *NIC) MAC() [6]byte { return n.mac }

// Associated returns the currently joined AP (tests).
func (n *NIC) Associated() *AP { return n.assoc }

func (n *NIC) assertCause(bits uint32) {
	n.regs[RegIntCause] |= bits
	n.maybeInterrupt()
}

func (n *NIC) maybeInterrupt() {
	if n.regs[RegIntCause]&n.regs[RegIntMask] != 0 {
		n.RaiseMSI()
	}
}

// MMIORead implements pci.Device.
func (n *NIC) MMIORead(bar int, off uint64, size int) uint64 {
	switch off {
	case RegIntCause:
		v := n.regs[RegIntCause]
		n.regs[RegIntCause] = 0
		return uint64(v)
	case RegMACLo:
		return uint64(n.mac[0]) | uint64(n.mac[1])<<8 | uint64(n.mac[2])<<16 | uint64(n.mac[3])<<24
	case RegMACHi:
		return uint64(n.mac[4]) | uint64(n.mac[5])<<8
	case RegRxHead:
		return uint64(n.rxHead)
	default:
		return uint64(n.regs[off])
	}
}

// MMIOWrite implements pci.Device.
func (n *NIC) MMIOWrite(bar int, off uint64, size int, v uint64) {
	val := uint32(v)
	switch off {
	case RegCmd:
		n.command(val)
	case RegTxLen:
		n.regs[RegTxLen] = val
		n.transmit(int(val))
	case RegRxAck:
		n.rxAck = val % RxSlots
	default:
		n.regs[off] = val
	}
}

// IORead/IOWrite: no IO BAR.
func (n *NIC) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (n *NIC) IOWrite(bar int, off uint64, size int, v uint32) {}

func (n *NIC) command(cmd uint32) {
	switch cmd {
	case CmdScan:
		n.Scans++
		n.loop.After(scanDwell, n.finishScan)
	case CmdAssoc:
		idx := int(n.regs[RegAssocIdx])
		n.loop.After(assocDelay, func() { n.finishAssoc(idx) })
	case CmdDisassoc:
		if n.assoc != nil {
			n.assoc = nil
			n.assertCause(IntDisassoc)
		}
	}
}

// finishScan DMA-writes one BSSEntry per AP into the scan buffer.
func (n *NIC) finishScan() {
	buf := mem.Addr(uint64(n.regs[RegScanBufHi])<<32 | uint64(n.regs[RegScanBufLo]))
	n.lastScan = append(n.lastScan[:0], n.air.APs...)
	count := 0
	for i, ap := range n.lastScan {
		var rec [BSSEntrySize]byte
		copy(rec[0:32], ap.SSID)
		copy(rec[32:38], ap.BSSID[:])
		rec[40] = byte(ap.Channel)
		rec[41] = byte(ap.Channel >> 8)
		rec[42] = byte(ap.Signal + 128)
		if err := n.DMAWrite(buf+mem.Addr(i*BSSEntrySize), rec[:]); err != nil {
			n.DMAFaults++
			break
		}
		count++
	}
	n.regs[RegScanCount] = uint32(count)
	n.assertCause(IntScanDone)
}

func (n *NIC) finishAssoc(idx int) {
	if idx < 0 || idx >= len(n.lastScan) {
		n.assertCause(IntAssocErr)
		return
	}
	n.assoc = n.lastScan[idx]
	n.assertCause(IntAssocOK)
}

// transmit DMA-reads the TX buffer and hands the frame to the AP bridge.
func (n *NIC) transmit(length int) {
	if n.assoc == nil || length <= 0 || length > ethlink.MaxFrame {
		n.assertCause(IntTxDone)
		return
	}
	buf := mem.Addr(uint64(n.regs[RegTxBufHi])<<32 | uint64(n.regs[RegTxBufLo]))
	frame, err := n.DMARead(buf, length)
	if err != nil {
		n.DMAFaults++
		n.assertCause(IntTxDone)
		return
	}
	ap := n.assoc
	n.loop.After(txAirTime, func() {
		n.TxFrames++
		if ap.Bridge != nil {
			ap.Bridge(frame)
		}
		n.assertCause(IntTxDone)
	})
}

// DeliverFromAP injects a downlink data frame (the AP side of the bridge).
func (n *NIC) DeliverFromAP(frame []byte) {
	if n.assoc == nil || n.regs[RegRxCtl]&1 == 0 {
		return
	}
	next := (n.rxHead + 1) % RxSlots
	if next == n.rxAck {
		n.RxDrops++
		return
	}
	base := mem.Addr(uint64(n.regs[RegRxBufHi])<<32 | uint64(n.regs[RegRxBufLo]))
	slot := base + mem.Addr(n.rxHead*RxSlotSize)
	var hdr [4]byte
	hdr[0] = byte(len(frame))
	hdr[1] = byte(len(frame) >> 8)
	if err := n.DMAWrite(slot, hdr[:]); err != nil {
		n.DMAFaults++
		return
	}
	if err := n.DMAWrite(slot+4, frame); err != nil {
		n.DMAFaults++
		return
	}
	n.rxHead = next
	n.RxFrames++
	n.assertCause(IntRx)
}
