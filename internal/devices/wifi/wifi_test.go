package wifi

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

func rig(t *testing.T) (*hw.Machine, *NIC, *AP) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	ap := &AP{SSID: "net", BSSID: [6]byte{1, 2, 3, 4, 5, 6}, Channel: 3, Signal: -50}
	n := New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, [6]byte{9, 8, 7, 6, 5, 4}, &Air{APs: []*AP{ap}})
	n.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	m.AttachDevice(n)
	dom := m.IOMMU.NewDomain()
	dom.Passthrough = true
	m.IOMMU.Attach(n.BDF(), dom)
	return m, n, ap
}

// setupRx programs the receive area and associates directly.
func setupRx(t *testing.T, m *hw.Machine, n *NIC) mem.Addr {
	t.Helper()
	base, _ := m.Alloc.AllocPages(RxSlots * RxSlotSize / mem.PageSize)
	n.MMIOWrite(0, RegRxBufLo, 4, uint64(uint32(base)))
	n.MMIOWrite(0, RegRxBufHi, 4, uint64(base)>>32)
	n.MMIOWrite(0, RegRxCtl, 4, 1)
	// Scan + associate through the command interface.
	scanBuf, _ := m.Alloc.AllocPages(1)
	n.MMIOWrite(0, RegScanBufLo, 4, uint64(uint32(scanBuf)))
	n.MMIOWrite(0, RegCmd, 4, CmdScan)
	m.Loop.RunFor(20 * sim.Millisecond)
	n.MMIOWrite(0, RegAssocIdx, 4, 0)
	n.MMIOWrite(0, RegCmd, 4, CmdAssoc)
	m.Loop.RunFor(10 * sim.Millisecond)
	if n.Associated() == nil {
		t.Fatal("association failed")
	}
	return base
}

func TestRxRingOverflowDrops(t *testing.T) {
	m, n, _ := rig(t)
	setupRx(t, m, n)
	// Never ack: only RxSlots-1 frames fit.
	for i := 0; i < RxSlots+10; i++ {
		n.DeliverFromAP([]byte{byte(i)})
	}
	if n.RxFrames != RxSlots-1 {
		t.Fatalf("accepted %d frames, want %d", n.RxFrames, RxSlots-1)
	}
	if n.RxDrops != 11 {
		t.Fatalf("drops = %d, want 11", n.RxDrops)
	}
	// Acking slots frees space.
	n.MMIOWrite(0, RegRxAck, 4, 5)
	n.DeliverFromAP([]byte{0xFF})
	if n.RxDrops != 11 {
		t.Fatal("delivery after ack dropped")
	}
}

func TestRxWithoutAssociationIgnored(t *testing.T) {
	m, n, _ := rig(t)
	_ = m
	n.MMIOWrite(0, RegRxCtl, 4, 1)
	n.DeliverFromAP([]byte{1})
	if n.RxFrames != 0 {
		t.Fatal("unassociated station received a frame")
	}
}

func TestAssocBadIndexRaisesError(t *testing.T) {
	m, n, _ := rig(t)
	scanBuf, _ := m.Alloc.AllocPages(1)
	n.MMIOWrite(0, RegScanBufLo, 4, uint64(uint32(scanBuf)))
	n.MMIOWrite(0, RegIntMask, 4, 0xFFFFFFFF)
	n.MMIOWrite(0, RegCmd, 4, CmdScan)
	m.Loop.RunFor(20 * sim.Millisecond)
	n.MMIOWrite(0, RegAssocIdx, 4, 99)
	n.MMIOWrite(0, RegCmd, 4, CmdAssoc)
	m.Loop.RunFor(10 * sim.Millisecond)
	if n.Associated() != nil {
		t.Fatal("associated with out-of-range index")
	}
	if uint32(n.MMIORead(0, RegIntCause, 4))&IntAssocErr == 0 {
		// The cause may already be cleared if read; re-check via state.
		t.Log("assoc error cause read elsewhere; state checked above")
	}
}

func TestScanDMAFaultCounted(t *testing.T) {
	m, n, _ := rig(t)
	// Point the scan buffer at an unmapped IOVA under a real (empty)
	// domain: the DMA faults and the device records it.
	m.IOMMU.Attach(n.BDF(), m.IOMMU.NewDomain())
	n.MMIOWrite(0, RegScanBufLo, 4, 0xDEAD0000)
	n.MMIOWrite(0, RegCmd, 4, CmdScan)
	m.Loop.RunFor(20 * sim.Millisecond)
	if n.DMAFaults == 0 {
		t.Fatal("scan DMA to unmapped buffer did not fault")
	}
}

func TestMACRegisters(t *testing.T) {
	_, n, _ := rig(t)
	lo := uint32(n.MMIORead(0, RegMACLo, 4))
	hi := uint32(n.MMIORead(0, RegMACHi, 4))
	if byte(lo) != 9 || byte(lo>>24) != 6 || byte(hi) != 5 || byte(hi>>8) != 4 {
		t.Fatalf("MAC regs %#x %#x", lo, hi)
	}
}

func TestDisassocCommand(t *testing.T) {
	m, n, _ := rig(t)
	setupRx(t, m, n)
	n.MMIOWrite(0, RegCmd, 4, CmdDisassoc)
	if n.Associated() != nil {
		t.Fatal("still associated after disassoc")
	}
}
