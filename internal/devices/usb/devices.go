package usb

import (
	"fmt"
	"sync"
)

// Device classes in our device descriptors.
const (
	ClassHID     = 0x03
	ClassStorage = 0x08
)

// deviceDescriptor builds a standard 18-byte device descriptor.
func deviceDescriptor(vid, pid uint16, class uint8) []byte {
	return []byte{
		18, DescDevice, 0, 2, // length, type, bcdUSB 2.0
		class, 0, 0, 64, // class, subclass, protocol, maxpacket
		byte(vid), byte(vid >> 8),
		byte(pid), byte(pid >> 8),
		0, 1, // bcdDevice
		0, 0, 0, // string indexes
		1, // one configuration
	}
}

// Keyboard is a HID keyboard: key presses queue 8-byte boot-protocol
// reports, drained through interrupt endpoint 1.
type Keyboard struct {
	mu      sync.Mutex
	reports [][]byte
	config  uint8

	// Counters.
	Polls uint64
}

// NewKeyboard returns an idle keyboard.
func NewKeyboard() *Keyboard { return &Keyboard{} }

// PressKey queues press and release reports for a HID usage code.
func (k *Keyboard) PressKey(code uint8) {
	k.mu.Lock()
	defer k.mu.Unlock()
	press := make([]byte, 8)
	press[2] = code
	k.reports = append(k.reports, press, make([]byte, 8))
}

// Control implements Device.
func (k *Keyboard) Control(s SetupPacket, data []byte) ([]byte, error) {
	switch s.Request {
	case ReqGetDescriptor:
		if s.Value>>8 == DescDevice {
			return deviceDescriptor(0x413C, 0x2107, ClassHID), nil
		}
		return nil, fmt.Errorf("usb: keyboard: unknown descriptor %#x", s.Value)
	case ReqSetConfiguration:
		k.config = uint8(s.Value)
		return nil, nil
	default:
		return nil, fmt.Errorf("usb: keyboard: unsupported request %d", s.Request)
	}
}

// In implements Device: endpoint 1 is the interrupt report pipe.
func (k *Keyboard) In(ep, maxLen int) ([]byte, error) {
	if ep != 1 {
		return nil, fmt.Errorf("usb: keyboard: no IN endpoint %d", ep)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.Polls++
	if len(k.reports) == 0 {
		return nil, nil // NAK
	}
	r := k.reports[0]
	k.reports = k.reports[1:]
	return r, nil
}

// Out implements Device (LED reports are accepted and ignored).
func (k *Keyboard) Out(ep int, data []byte) error { return nil }

// Disk is a bulk-storage device speaking a minimal block protocol:
// a 16-byte command block on OUT endpoint 2 ({op, lba[4], count[2]}), data
// on IN endpoint 1 (reads) or appended to the command (writes).
const (
	// BlockSize is the disk sector size.
	BlockSize = 512

	// Disk protocol opcodes.
	DiskOpRead  = 1
	DiskOpWrite = 2
)

// Disk is the storage device.
type Disk struct {
	image  []byte
	config uint8

	pending []byte // staged read data for the IN endpoint

	// Counters.
	Reads, Writes uint64
}

// NewDisk creates a disk with the given number of blocks.
func NewDisk(blocks int) *Disk {
	return &Disk{image: make([]byte, blocks*BlockSize)}
}

// Blocks returns capacity.
func (d *Disk) Blocks() int { return len(d.image) / BlockSize }

// Peek reads the raw image (tests).
func (d *Disk) Peek(lba, count int) []byte {
	return d.image[lba*BlockSize : (lba+count)*BlockSize]
}

// Control implements Device.
func (d *Disk) Control(s SetupPacket, data []byte) ([]byte, error) {
	switch s.Request {
	case ReqGetDescriptor:
		if s.Value>>8 == DescDevice {
			return deviceDescriptor(0x0781, 0x5567, ClassStorage), nil
		}
		return nil, fmt.Errorf("usb: disk: unknown descriptor %#x", s.Value)
	case ReqSetConfiguration:
		d.config = uint8(s.Value)
		return nil, nil
	default:
		return nil, fmt.Errorf("usb: disk: unsupported request %d", s.Request)
	}
}

// Out implements Device: endpoint 2 receives command blocks (+ write data).
func (d *Disk) Out(ep int, data []byte) error {
	if ep != 2 {
		return fmt.Errorf("usb: disk: no OUT endpoint %d", ep)
	}
	if len(data) < 16 {
		return fmt.Errorf("usb: disk: short command block")
	}
	op := data[0]
	lba := int(data[1]) | int(data[2])<<8 | int(data[3])<<16 | int(data[4])<<24
	count := int(data[5]) | int(data[6])<<8
	if lba < 0 || count <= 0 || (lba+count)*BlockSize > len(d.image) {
		return fmt.Errorf("usb: disk: access beyond capacity (lba %d count %d)", lba, count)
	}
	switch op {
	case DiskOpRead:
		d.Reads++
		d.pending = append(d.pending[:0], d.image[lba*BlockSize:(lba+count)*BlockSize]...)
		return nil
	case DiskOpWrite:
		payload := data[16:]
		if len(payload) != count*BlockSize {
			return fmt.Errorf("usb: disk: write payload %d bytes, want %d", len(payload), count*BlockSize)
		}
		d.Writes++
		copy(d.image[lba*BlockSize:], payload)
		return nil
	default:
		return fmt.Errorf("usb: disk: unknown op %d", op)
	}
}

// In implements Device: endpoint 1 streams staged read data.
func (d *Disk) In(ep, maxLen int) ([]byte, error) {
	if ep != 1 {
		return nil, fmt.Errorf("usb: disk: no IN endpoint %d", ep)
	}
	if len(d.pending) == 0 {
		return nil, nil // NAK
	}
	n := maxLen
	if n > len(d.pending) {
		n = len(d.pending)
	}
	out := d.pending[:n]
	d.pending = d.pending[n:]
	return out, nil
}
