// Package usb models an EHCI-class USB host controller and USB devices (a
// HID keyboard and a bulk-storage disk). The controller executes transfer
// descriptors the driver places in DMA memory — so, as with the other device
// models, a malicious driver's bad buffer pointer becomes a real IOMMU
// fault. The paper ran EHCI/UHCI host controller drivers and USB devices
// under SUD with no class-specific proxy code (Figure 5: "USB host proxy
// driver — 0"); here the host driver exposes its functionality through the
// generic SUD ctl channel the same way.
package usb

import (
	"fmt"

	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Register offsets (BAR0).
const (
	RegUSBCmd   = 0x00 // bit0 RUN
	RegUSBSts   = 0x04 // read-to-clear: bit0 transfer complete, bit2 port change
	RegUSBIntr  = 0x08 // interrupt enables, same bits
	RegTDAddr   = 0x30 // bus address of the transfer descriptor
	RegDoorbell = 0x34 // write 1: execute the TD at TDAddr
	RegPortBase = 0x44 // PORTSC[i] at RegPortBase + 4*i

	// BARSize is BAR0's size.
	BARSize = 0x1000
)

// USBSTS bits.
const (
	StsXferDone   = 1 << 0
	StsPortChange = 1 << 2
)

// PORTSC bits.
const (
	PortConnected = 1 << 0
	PortEnabled   = 1 << 1
	PortReset     = 1 << 8
)

// NumPorts is the root hub size.
const NumPorts = 4

// Transfer directions in the TD.
const (
	DirOut = iota
	DirIn
	DirSetup
)

// TD status codes written back by the controller.
const (
	TDOK = iota
	TDStall
	TDNak
)

// TDSize is the transfer descriptor size: [0]=devAddr [1]=endpoint [2]=dir
// [3]=status [4:6]=buffer length [6:8]=actual length [8:16]=buffer address
// [16:24]=setup packet.
const TDSize = 32

// SetupPacket is a USB control-transfer SETUP stage.
type SetupPacket struct {
	RequestType uint8
	Request     uint8
	Value       uint16
	Index       uint16
	Length      uint16
}

// Marshal packs the setup packet in bus format.
func (s SetupPacket) Marshal() [8]byte {
	return [8]byte{
		s.RequestType, s.Request,
		byte(s.Value), byte(s.Value >> 8),
		byte(s.Index), byte(s.Index >> 8),
		byte(s.Length), byte(s.Length >> 8),
	}
}

// ParseSetup unpacks a setup packet.
func ParseSetup(b []byte) SetupPacket {
	return SetupPacket{
		RequestType: b[0], Request: b[1],
		Value:  uint16(b[2]) | uint16(b[3])<<8,
		Index:  uint16(b[4]) | uint16(b[5])<<8,
		Length: uint16(b[6]) | uint16(b[7])<<8,
	}
}

// Standard requests.
const (
	ReqGetDescriptor    = 6
	ReqSetAddress       = 5
	ReqSetConfiguration = 9
)

// Descriptor types.
const DescDevice = 1

// Device is a USB function attached to a port.
type Device interface {
	// Control executes a control transfer; for IN-direction requests the
	// returned bytes are the data stage.
	Control(setup SetupPacket, data []byte) ([]byte, error)
	// In polls an IN endpoint; nil data means NAK (nothing to send).
	In(ep int, maxLen int) ([]byte, error)
	// Out delivers data to an OUT endpoint.
	Out(ep int, data []byte) error
}

// HostController is the EHCI-lite controller.
type HostController struct {
	pci.FuncBase
	loop *sim.Loop

	regs  map[uint64]uint32
	ports [NumPorts]Device

	// address map: assigned USB addresses → device; address 0 is the
	// most recently reset port's device.
	byAddr map[uint8]Device
	dflt   Device

	// Counters.
	Transfers uint64
	TDFaults  uint64
}

// New creates the controller (ICH9 EHCI IDs).
func New(loop *sim.Loop, bdf pci.BDF, barBase uint64) *HostController {
	h := &HostController{loop: loop, regs: make(map[uint64]uint32), byAddr: make(map[uint8]Device)}
	cfg := pci.NewConfigSpace(0x8086, 0x293A, 0x0C)
	cfg.SetBAR(0, barBase, BARSize, false)
	cfg.AddMSICapability()
	h.InitFunc(bdf, cfg)
	return h
}

// AttachUSB plugs dev into root port p. (Named to avoid shadowing the PCI
// fabric Attach inherited from FuncBase.)
func (h *HostController) AttachUSB(p int, dev Device) error {
	if p < 0 || p >= NumPorts {
		return fmt.Errorf("usb: no port %d", p)
	}
	h.ports[p] = dev
	h.setSts(StsPortChange)
	return nil
}

func (h *HostController) setSts(bits uint32) {
	h.regs[RegUSBSts] |= bits
	if h.regs[RegUSBSts]&h.regs[RegUSBIntr] != 0 {
		h.RaiseMSI()
	}
}

// MMIORead implements pci.Device.
func (h *HostController) MMIORead(bar int, off uint64, size int) uint64 {
	if off == RegUSBSts {
		v := h.regs[RegUSBSts]
		h.regs[RegUSBSts] = 0
		return uint64(v)
	}
	if off >= RegPortBase && off < RegPortBase+4*NumPorts {
		p := int(off-RegPortBase) / 4
		var v uint32
		if h.ports[p] != nil {
			v |= PortConnected
		}
		v |= h.regs[off] & PortEnabled
		return uint64(v)
	}
	return uint64(h.regs[off])
}

// MMIOWrite implements pci.Device.
func (h *HostController) MMIOWrite(bar int, off uint64, size int, v uint64) {
	val := uint32(v)
	switch {
	case off == RegDoorbell:
		if val&1 != 0 {
			// Transfers complete within the current (micro)frame; the
			// HCD busy-waits on USBSTS for short transfers, so the
			// model executes synchronously and signals completion.
			h.execTD()
		}
	case off >= RegPortBase && off < RegPortBase+4*NumPorts:
		p := int(off-RegPortBase) / 4
		if val&PortReset != 0 && h.ports[p] != nil {
			// Port reset: the device answers at address 0.
			h.dflt = h.ports[p]
			h.regs[off] = PortEnabled
			return
		}
		h.regs[off] = val & PortEnabled
	default:
		h.regs[off] = val
	}
}

// IORead/IOWrite: no IO BAR.
func (h *HostController) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (h *HostController) IOWrite(bar int, off uint64, size int, v uint32) {}

func (h *HostController) device(addr uint8) Device {
	if addr == 0 {
		return h.dflt
	}
	return h.byAddr[addr]
}

// execTD fetches and executes the transfer descriptor at TDAddr.
func (h *HostController) execTD() {
	if h.regs[RegUSBCmd]&1 == 0 {
		return
	}
	tdAddr := mem.Addr(h.regs[RegTDAddr])
	td, err := h.DMARead(tdAddr, TDSize)
	if err != nil {
		h.TDFaults++
		return
	}
	h.Transfers++
	devAddr := td[0]
	ep := int(td[1])
	dir := int(td[2])
	length := int(td[4]) | int(td[5])<<8
	buf := mem.Addr(le64(td[8:16]))

	status, actual := h.transact(devAddr, ep, dir, length, buf, td[16:24])

	td[3] = byte(status)
	td[6] = byte(actual)
	td[7] = byte(actual >> 8)
	if err := h.DMAWrite(tdAddr, td); err != nil {
		h.TDFaults++
		return
	}
	h.setSts(StsXferDone)
}

func (h *HostController) transact(devAddr uint8, ep, dir, length int, buf mem.Addr, setup []byte) (status, actual int) {
	dev := h.device(devAddr)
	if dev == nil {
		return TDStall, 0
	}
	switch dir {
	case DirSetup:
		sp := ParseSetup(setup)
		// SET_ADDRESS is handled bus-side: the controller re-binds its
		// address map like real enumeration does.
		if sp.Request == ReqSetAddress && sp.RequestType == 0 {
			h.byAddr[uint8(sp.Value)] = dev
			if devAddr == 0 {
				h.dflt = nil
			}
			return TDOK, 0
		}
		var out []byte
		var data []byte
		if sp.RequestType&0x80 == 0 && length > 0 {
			d, err := h.DMARead(buf, length)
			if err != nil {
				h.TDFaults++
				return TDStall, 0
			}
			data = d
		}
		out, err := dev.Control(sp, data)
		if err != nil {
			return TDStall, 0
		}
		if sp.RequestType&0x80 != 0 && len(out) > 0 {
			if len(out) > length {
				out = out[:length]
			}
			if err := h.DMAWrite(buf, out); err != nil {
				h.TDFaults++
				return TDStall, 0
			}
			return TDOK, len(out)
		}
		return TDOK, 0
	case DirIn:
		data, err := dev.In(ep, length)
		if err != nil {
			return TDStall, 0
		}
		if data == nil {
			return TDNak, 0
		}
		if len(data) > length {
			data = data[:length]
		}
		if err := h.DMAWrite(buf, data); err != nil {
			h.TDFaults++
			return TDStall, 0
		}
		return TDOK, len(data)
	case DirOut:
		data, err := h.DMARead(buf, length)
		if err != nil {
			h.TDFaults++
			return TDStall, 0
		}
		if err := dev.Out(ep, data); err != nil {
			return TDStall, 0
		}
		return TDOK, length
	}
	return TDStall, 0
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}
