package usb

import (
	"bytes"
	"testing"

	"sud/internal/hw"
	"sud/internal/mem"
	"sud/internal/pci"
)

func rig(t *testing.T) (*hw.Machine, *HostController) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	h := New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	h.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	m.AttachDevice(h)
	dom := m.IOMMU.NewDomain()
	dom.Passthrough = true
	m.IOMMU.Attach(h.BDF(), dom)
	return m, h
}

// execTD builds a TD in DRAM and rings the doorbell; returns status+actual.
func execTD(t *testing.T, m *hw.Machine, h *HostController, devAddr uint8, ep, dir, length int,
	buf mem.Addr, setup *SetupPacket) (int, int) {
	t.Helper()
	tdAddr, _ := m.Alloc.AllocPages(1)
	var td [TDSize]byte
	td[0] = devAddr
	td[1] = byte(ep)
	td[2] = byte(dir)
	td[4] = byte(length)
	td[5] = byte(length >> 8)
	for i := 0; i < 8; i++ {
		td[8+i] = byte(uint64(buf) >> (8 * i))
	}
	if setup != nil {
		sp := setup.Marshal()
		copy(td[16:24], sp[:])
	}
	m.Mem.MustWrite(tdAddr, td[:])
	h.MMIOWrite(0, RegUSBCmd, 4, 1)
	h.MMIOWrite(0, RegTDAddr, 4, uint64(uint32(tdAddr)))
	h.MMIOWrite(0, RegDoorbell, 4, 1)
	back := make([]byte, TDSize)
	m.Mem.MustRead(tdAddr, back)
	return int(back[3]), int(back[6]) | int(back[7])<<8
}

func TestPortStatusAndReset(t *testing.T) {
	m, h := rig(t)
	_ = m
	kbd := NewKeyboard()
	if err := h.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	if err := h.AttachUSB(9, kbd); err == nil {
		t.Fatal("attached beyond root hub")
	}
	if uint32(h.MMIORead(0, RegPortBase, 4))&PortConnected == 0 {
		t.Fatal("connected port reads disconnected")
	}
	if uint32(h.MMIORead(0, RegPortBase+4, 4))&PortConnected != 0 {
		t.Fatal("empty port reads connected")
	}
	h.MMIOWrite(0, RegPortBase, 4, PortReset)
	if uint32(h.MMIORead(0, RegPortBase, 4))&PortEnabled == 0 {
		t.Fatal("port not enabled after reset")
	}
}

func TestSetupGetDescriptor(t *testing.T) {
	m, h := rig(t)
	kbd := NewKeyboard()
	if err := h.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	h.MMIOWrite(0, RegPortBase, 4, PortReset)
	buf, _ := m.Alloc.AllocPages(1)
	status, actual := execTD(t, m, h, 0, 0, DirSetup, 18, buf, &SetupPacket{
		RequestType: 0x80, Request: ReqGetDescriptor, Value: DescDevice << 8, Length: 18,
	})
	if status != TDOK || actual != 18 {
		t.Fatalf("status=%d actual=%d", status, actual)
	}
	desc := make([]byte, 18)
	m.Mem.MustRead(buf, desc)
	if desc[0] != 18 || desc[1] != DescDevice || desc[4] != ClassHID {
		t.Fatalf("descriptor % x", desc)
	}
}

func TestAddressAssignmentFlow(t *testing.T) {
	m, h := rig(t)
	kbd := NewKeyboard()
	disk := NewDisk(8)
	if err := h.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	if err := h.AttachUSB(1, disk); err != nil {
		t.Fatal(err)
	}
	buf, _ := m.Alloc.AllocPages(1)

	h.MMIOWrite(0, RegPortBase, 4, PortReset)
	if st, _ := execTD(t, m, h, 0, 0, DirSetup, 0, buf, &SetupPacket{Request: ReqSetAddress, Value: 1}); st != TDOK {
		t.Fatal("SET_ADDRESS failed")
	}
	// Address 0 no longer answers; address 1 does.
	if st, _ := execTD(t, m, h, 0, 0, DirSetup, 18, buf, &SetupPacket{
		RequestType: 0x80, Request: ReqGetDescriptor, Value: DescDevice << 8, Length: 18}); st != TDStall {
		t.Fatal("default address still answering after SET_ADDRESS")
	}
	if st, _ := execTD(t, m, h, 1, 0, DirSetup, 18, buf, &SetupPacket{
		RequestType: 0x80, Request: ReqGetDescriptor, Value: DescDevice << 8, Length: 18}); st != TDOK {
		t.Fatal("assigned address not answering")
	}
	// Second port gets address 2 independently.
	h.MMIOWrite(0, RegPortBase+4, 4, PortReset)
	if st, _ := execTD(t, m, h, 0, 0, DirSetup, 0, buf, &SetupPacket{Request: ReqSetAddress, Value: 2}); st != TDOK {
		t.Fatal("second SET_ADDRESS failed")
	}
	desc := make([]byte, 18)
	if st, _ := execTD(t, m, h, 2, 0, DirSetup, 18, buf, &SetupPacket{
		RequestType: 0x80, Request: ReqGetDescriptor, Value: DescDevice << 8, Length: 18}); st != TDOK {
		t.Fatal("disk not answering at address 2")
	}
	m.Mem.MustRead(buf, desc)
	if desc[4] != ClassStorage {
		t.Fatal("address 2 is not the disk")
	}
}

func TestInterruptNakAndData(t *testing.T) {
	m, h := rig(t)
	kbd := NewKeyboard()
	if err := h.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	h.MMIOWrite(0, RegPortBase, 4, PortReset)
	buf, _ := m.Alloc.AllocPages(1)
	if st, _ := execTD(t, m, h, 0, 1, DirIn, 8, buf, nil); st != TDNak {
		t.Fatal("idle keyboard did not NAK")
	}
	kbd.PressKey(0x1D)
	st, actual := execTD(t, m, h, 0, 1, DirIn, 8, buf, nil)
	if st != TDOK || actual != 8 {
		t.Fatalf("report: st=%d actual=%d", st, actual)
	}
	rep := make([]byte, 8)
	m.Mem.MustRead(buf, rep)
	if rep[2] != 0x1D {
		t.Fatalf("report % x", rep)
	}
}

func TestStallOnBadEndpointAndMissingDevice(t *testing.T) {
	m, h := rig(t)
	kbd := NewKeyboard()
	if err := h.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	h.MMIOWrite(0, RegPortBase, 4, PortReset)
	buf, _ := m.Alloc.AllocPages(1)
	if st, _ := execTD(t, m, h, 0, 5, DirIn, 8, buf, nil); st != TDStall {
		t.Fatal("bad endpoint did not stall")
	}
	if st, _ := execTD(t, m, h, 7, 1, DirIn, 8, buf, nil); st != TDStall {
		t.Fatal("missing device did not stall")
	}
}

func TestControllerStoppedIgnoresDoorbell(t *testing.T) {
	m, h := rig(t)
	h.MMIOWrite(0, RegUSBCmd, 4, 0)
	h.MMIOWrite(0, RegDoorbell, 4, 1)
	if h.Transfers != 0 {
		t.Fatal("stopped controller executed a TD")
	}
	_ = m
}

func TestDiskProtocolDirect(t *testing.T) {
	d := NewDisk(4)
	if d.Blocks() != 4 {
		t.Fatalf("blocks = %d", d.Blocks())
	}
	// Write command with payload.
	cmd := make([]byte, 16, 16+BlockSize)
	cmd[0] = DiskOpWrite
	cmd[1] = 1 // lba
	cmd[5] = 1 // count
	payload := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := d.Out(2, append(cmd, payload...)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.Peek(1, 1), payload) {
		t.Fatal("write missed")
	}
	// Read command then drain ep1.
	rcmd := make([]byte, 16)
	rcmd[0] = DiskOpRead
	rcmd[1] = 1
	rcmd[5] = 1
	if err := d.Out(2, rcmd); err != nil {
		t.Fatal(err)
	}
	var got []byte
	for {
		chunk, err := d.In(1, 200)
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		got = append(got, chunk...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch")
	}
	// Bounds.
	bad := make([]byte, 16)
	bad[0] = DiskOpRead
	bad[1] = 100
	bad[5] = 1
	if err := d.Out(2, bad); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.Out(2, []byte{1, 2}); err == nil {
		t.Fatal("short command accepted")
	}
	if err := d.Out(5, bad); err == nil {
		t.Fatal("wrong endpoint accepted")
	}
}
