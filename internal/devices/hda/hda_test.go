package hda

import (
	"bytes"
	"testing"

	"sud/internal/hw"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

func rig(t *testing.T) (*hw.Machine, *Codec) {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	c := New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	c.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	m.AttachDevice(c)
	dom := m.IOMMU.NewDomain()
	dom.Passthrough = true
	m.IOMMU.Attach(c.BDF(), dom)
	return m, c
}

func program(t *testing.T, m *hw.Machine, c *Codec, rate, periodBytes, periods int) uint64 {
	t.Helper()
	buf, _ := m.Alloc.AllocPages((periodBytes*periods + 4095) / 4096)
	c.MMIOWrite(0, RegBufLo, 4, uint64(uint32(buf)))
	c.MMIOWrite(0, RegBufLen, 4, uint64(periodBytes*periods))
	c.MMIOWrite(0, RegPeriodBytes, 4, uint64(periodBytes))
	c.MMIOWrite(0, RegRate, 4, uint64(rate))
	return uint64(buf)
}

func TestRingWrapsAndPlaysInOrder(t *testing.T) {
	m, c := rig(t)
	const pb, np = 4800, 2
	buf := program(t, m, c, 48000, pb, np)
	for i := 0; i < np; i++ {
		m.Mem.MustWrite(mem.Addr(buf)+mem.Addr(i*pb), bytes.Repeat([]byte{byte(i + 1)}, pb))
	}
	c.MMIOWrite(0, RegCtl, 4, CtlRun)
	// 5 periods: the 2-period ring wraps; playback alternates 1,2,1,2,1.
	m.Loop.RunFor(5 * 25 * sim.Millisecond)
	c.MMIOWrite(0, RegCtl, 4, 0)
	if c.Periods < 4 {
		t.Fatalf("periods = %d", c.Periods)
	}
	for i := 0; i < 4; i++ {
		want := byte(i%np + 1)
		if c.Played[i*pb] != want || c.Played[i*pb+pb-1] != want {
			t.Fatalf("period %d played %d, want %d", i, c.Played[i*pb], want)
		}
	}
}

func TestStopHaltsConsumption(t *testing.T) {
	m, c := rig(t)
	program(t, m, c, 48000, 4800, 2)
	c.MMIOWrite(0, RegCtl, 4, CtlRun)
	m.Loop.RunFor(30 * sim.Millisecond)
	c.MMIOWrite(0, RegCtl, 4, 0)
	n := c.Periods
	m.Loop.RunFor(100 * sim.Millisecond)
	if c.Periods != n {
		t.Fatal("stopped stream kept consuming")
	}
}

func TestRunWithoutGeometryIgnored(t *testing.T) {
	m, c := rig(t)
	c.MMIOWrite(0, RegCtl, 4, CtlRun) // no rate/period programmed
	m.Loop.RunFor(50 * sim.Millisecond)
	if c.Periods != 0 {
		t.Fatal("unconfigured stream consumed periods")
	}
}

func TestDMAFaultCountedOutsideDomain(t *testing.T) {
	m, c := rig(t)
	// Real (empty) domain: the buffer address is unmapped.
	m.IOMMU.Attach(c.BDF(), m.IOMMU.NewDomain())
	c.MMIOWrite(0, RegBufLo, 4, 0xDEAD0000)
	c.MMIOWrite(0, RegBufLen, 4, 9600)
	c.MMIOWrite(0, RegPeriodBytes, 4, 4800)
	c.MMIOWrite(0, RegRate, 4, 48000)
	c.MMIOWrite(0, RegCtl, 4, CtlRun)
	m.Loop.RunFor(60 * sim.Millisecond)
	if c.DMAFaults == 0 {
		t.Fatal("playback from unmapped buffer did not fault")
	}
}

func TestIntStatusReadClears(t *testing.T) {
	m, c := rig(t)
	program(t, m, c, 48000, 4800, 2)
	c.MMIOWrite(0, RegCtl, 4, CtlRun|CtlIE)
	m.Loop.RunFor(30 * sim.Millisecond)
	if c.MMIORead(0, RegIntStatus, 4)&IntPeriod == 0 {
		t.Fatal("period cause not latched")
	}
	if c.MMIORead(0, RegIntStatus, 4) != 0 {
		t.Fatal("status not cleared by read")
	}
}
