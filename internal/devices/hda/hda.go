// Package hda models an Intel HD Audio-class sound device: a single PCM
// playback stream whose engine DMA-reads sample periods from a ring buffer
// in (driver-owned) memory at the configured rate and raises an interrupt
// per period. The snd-hda driver in internal/drivers/sndhda programs it like
// the snd_hda_intel driver programs real hardware (§4: sound cards were one
// of SUD's supported classes; §4.1 notes they may need real-time
// scheduling).
package hda

import (
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Register offsets (BAR0).
const (
	RegCtl         = 0x00 // bit0 RUN, bit1 interrupt enable
	RegBufLo       = 0x04
	RegBufHi       = 0x08
	RegBufLen      = 0x0C // ring size in bytes
	RegPeriodBytes = 0x10
	RegRate        = 0x14 // sample rate in Hz
	RegPos         = 0x18 // read-only: current playback byte position
	RegIntStatus   = 0x1C // read-to-clear: bit0 period elapsed

	// BARSize is BAR0's size.
	BARSize = 0x1000
)

// Ctl bits.
const (
	CtlRun = 1 << 0
	CtlIE  = 1 << 1
)

// Interrupt status bits.
const (
	IntPeriod = 1 << 0
)

// BytesPerFrame is 16-bit stereo.
const BytesPerFrame = 4

// Codec is the sound device.
type Codec struct {
	pci.FuncBase
	loop *sim.Loop

	regs map[uint64]uint32
	pos  uint32

	running bool
	tick    *sim.Event

	// Played collects every sample byte the "speaker" consumed, so
	// tests can verify bit-exact playback through either host.
	Played []byte

	// Counters.
	Periods   uint64
	DMAFaults uint64
}

// New creates the codec (IDs match an ICH9 HD Audio function).
func New(loop *sim.Loop, bdf pci.BDF, barBase uint64) *Codec {
	c := &Codec{loop: loop, regs: make(map[uint64]uint32)}
	cfg := pci.NewConfigSpace(0x8086, 0x293E, 0x04)
	cfg.SetBAR(0, barBase, BARSize, false)
	cfg.AddMSICapability()
	cfg.OnMSIChange = func() {
		if !cfg.MSI().Masked && c.regs[RegIntStatus] != 0 && c.regs[RegCtl]&CtlIE != 0 {
			c.RaiseMSI()
		}
	}
	c.InitFunc(bdf, cfg)
	return c
}

// MMIORead implements pci.Device.
func (c *Codec) MMIORead(bar int, off uint64, size int) uint64 {
	switch off {
	case RegPos:
		return uint64(c.pos)
	case RegIntStatus:
		v := c.regs[RegIntStatus]
		c.regs[RegIntStatus] = 0
		return uint64(v)
	default:
		return uint64(c.regs[off])
	}
}

// MMIOWrite implements pci.Device.
func (c *Codec) MMIOWrite(bar int, off uint64, size int, v uint64) {
	val := uint32(v)
	switch off {
	case RegCtl:
		was := c.regs[RegCtl]
		c.regs[RegCtl] = val
		if val&CtlRun != 0 && was&CtlRun == 0 {
			c.start()
		} else if val&CtlRun == 0 && was&CtlRun != 0 {
			c.stop()
		}
	default:
		c.regs[off] = val
	}
}

// IORead/IOWrite: no IO BAR.
func (c *Codec) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (c *Codec) IOWrite(bar int, off uint64, size int, v uint32) {}

func (c *Codec) periodTime() sim.Duration {
	rate := c.regs[RegRate]
	pb := c.regs[RegPeriodBytes]
	if rate == 0 || pb == 0 {
		return 0
	}
	return sim.Duration(uint64(pb) * uint64(sim.Second) / (uint64(rate) * BytesPerFrame))
}

func (c *Codec) start() {
	if c.running || c.periodTime() == 0 {
		return
	}
	c.running = true
	c.pos = 0
	c.tick = c.loop.After(c.periodTime(), c.consumePeriod)
}

func (c *Codec) stop() {
	c.running = false
	c.loop.Cancel(c.tick)
}

// consumePeriod DMA-reads one period from the ring and "plays" it.
func (c *Codec) consumePeriod() {
	if !c.running {
		return
	}
	pb := c.regs[RegPeriodBytes]
	buflen := c.regs[RegBufLen]
	base := mem.Addr(uint64(c.regs[RegBufHi])<<32 | uint64(c.regs[RegBufLo]))
	data, err := c.DMARead(base+mem.Addr(c.pos), int(pb))
	if err != nil {
		c.DMAFaults++
	} else {
		c.Played = append(c.Played, data...)
	}
	c.pos = (c.pos + pb) % buflen
	c.Periods++
	c.regs[RegIntStatus] |= IntPeriod
	if c.regs[RegCtl]&CtlIE != 0 {
		c.RaiseMSI()
	}
	c.tick = c.loop.After(c.periodTime(), c.consumePeriod)
}
