package e1000

import (
	"bytes"
	"testing"

	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/irq"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

var testMAC = [6]byte{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC}

// rig is a machine + NIC + identity-mapped IOMMU domain + a peer endpoint
// capturing wire frames.
type rig struct {
	m    *hw.Machine
	nic  *NIC
	link *ethlink.Link
	peer *captureEnd
	dom  *iommu.Domain

	txRing, rxRing mem.Addr
	bufs           mem.Addr
	ringLen        uint32
}

type captureEnd struct{ frames [][]byte }

func (c *captureEnd) LinkDeliver(f []byte) { c.frames = append(c.frames, f) }

func newRig(t *testing.T) *rig {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	nic := New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, testMAC, DefaultParams())
	// What pci_enable_device + pci_set_master would do.
	nic.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &captureEnd{}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	// Identity-map a DMA arena for rings and buffers.
	dom := m.IOMMU.NewDomain()
	ringPages, _ := m.Alloc.AllocPages(2)
	bufPages, _ := m.Alloc.AllocPages(32)
	if err := dom.MapRange(ringPages, ringPages, 2*mem.PageSize, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := dom.MapRange(bufPages, bufPages, 32*mem.PageSize, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	m.IOMMU.Attach(nic.BDF(), dom)

	r := &rig{
		m: m, nic: nic, link: link, peer: peer, dom: dom,
		txRing: ringPages, rxRing: ringPages + mem.PageSize,
		bufs: bufPages, ringLen: 64,
	}
	r.initNIC(t)
	return r
}

// reg32 reads a NIC register through CPU MMIO.
func (r *rig) reg32(t *testing.T, off uint64) uint32 {
	t.Helper()
	v, err := r.m.MMIORead(nil, mem.Addr(0xFEB00000+off), 4)
	if err != nil {
		t.Fatal(err)
	}
	return uint32(v)
}

func (r *rig) wreg32(t *testing.T, off uint64, v uint32) {
	t.Helper()
	if err := r.m.MMIOWrite(nil, mem.Addr(0xFEB00000+off), 4, uint64(v)); err != nil {
		t.Fatal(err)
	}
}

// initNIC programs the rings the way the driver would.
func (r *rig) initNIC(t *testing.T) {
	t.Helper()
	r.wreg32(t, RegCTRL, CtrlSLU)
	r.wreg32(t, RegTDBAL, uint32(r.txRing))
	r.wreg32(t, RegTDLEN, r.ringLen*DescSize)
	r.wreg32(t, RegTDH, 0)
	r.wreg32(t, RegTDT, 0)
	r.wreg32(t, RegRDBAL, uint32(r.rxRing))
	r.wreg32(t, RegRDLEN, r.ringLen*DescSize)
	r.wreg32(t, RegRDH, 0)
	r.wreg32(t, RegRDT, 0)
	r.wreg32(t, RegTCTL, TctlEN)
	r.wreg32(t, RegRCTL, RctlEN)
}

// queueTx writes a TX descriptor + payload and advances TDT.
func (r *rig) queueTx(t *testing.T, payload []byte) {
	t.Helper()
	tail := r.reg32(t, RegTDT)
	buf := r.bufs + mem.Addr(tail)*2048
	r.m.Mem.MustWrite(buf, payload)
	desc := make([]byte, DescSize)
	putLE64(desc[0:8], uint64(buf))
	putLE16(desc[8:10], uint16(len(payload)))
	desc[11] = TxCmdEOP | TxCmdRS
	r.m.Mem.MustWrite(r.txRing+mem.Addr(tail*DescSize), desc)
	r.wreg32(t, RegTDT, (tail+1)%r.ringLen)
}

// replenishRx gives the hardware n free RX descriptors.
func (r *rig) replenishRx(t *testing.T, n uint32) {
	t.Helper()
	tail := r.reg32(t, RegRDT)
	for i := uint32(0); i < n; i++ {
		buf := r.bufs + mem.Addr(16*mem.PageSize) + mem.Addr(tail)*2048
		desc := make([]byte, DescSize)
		putLE64(desc[0:8], uint64(buf))
		r.m.Mem.MustWrite(r.rxRing+mem.Addr(tail*DescSize), desc)
		tail = (tail + 1) % r.ringLen
	}
	r.wreg32(t, RegRDT, tail)
}

func putLE64(b []byte, v uint64) {
	for i := range b[:8] {
		b[i] = byte(v >> (8 * i))
	}
}

func TestEEPROMMACRead(t *testing.T) {
	r := newRig(t)
	for word := 0; word < 3; word++ {
		r.wreg32(t, RegEERD, uint32(word)<<8|EerdStart)
		v := r.reg32(t, RegEERD)
		if v&EerdDone == 0 {
			t.Fatal("EEPROM read never completed")
		}
		data := uint16(v >> 16)
		if data != uint16(testMAC[2*word])|uint16(testMAC[2*word+1])<<8 {
			t.Fatalf("EEPROM word %d = %#x", word, data)
		}
	}
}

func TestStatusLinkUp(t *testing.T) {
	r := newRig(t)
	if r.reg32(t, RegSTATUS)&StatusLU == 0 {
		t.Fatal("link not up after SLU with carrier")
	}
	r.link.SetCarrier(false)
	if r.reg32(t, RegSTATUS)&StatusLU != 0 {
		t.Fatal("link up with carrier down")
	}
}

func TestTransmitOnePacket(t *testing.T) {
	r := newRig(t)
	payload := bytes.Repeat([]byte{0x5A}, 100)
	r.queueTx(t, payload)
	r.m.Loop.Run()
	if len(r.peer.frames) != 1 || !bytes.Equal(r.peer.frames[0], payload) {
		t.Fatalf("peer got %d frames", len(r.peer.frames))
	}
	// DD writeback happened.
	desc := make([]byte, DescSize)
	r.m.Mem.MustRead(r.txRing, desc)
	if desc[12]&TxStaDD == 0 {
		t.Fatal("descriptor not written back with DD")
	}
	if got := r.reg32(t, RegTDH); got != 1 {
		t.Fatalf("TDH = %d, want 1", got)
	}
	if r.nic.TxPackets != 1 || r.nic.TxBytes != 100 {
		t.Fatalf("counters: %d pkts %d bytes", r.nic.TxPackets, r.nic.TxBytes)
	}
}

func TestTransmitBurstOrdering(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 10; i++ {
		r.queueTx(t, []byte{byte(i), 1, 2, 3})
	}
	r.m.Loop.Run()
	if len(r.peer.frames) != 10 {
		t.Fatalf("got %d frames", len(r.peer.frames))
	}
	for i, f := range r.peer.frames {
		if f[0] != byte(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
}

func TestTxEngineSerialization(t *testing.T) {
	// Small packets leave the engine spaced by at least TxPerPacket:
	// the engine, not the wire, bounds small-packet rate.
	r := newRig(t)
	const n = 8
	for i := 0; i < n; i++ {
		r.queueTx(t, make([]byte, 64))
	}
	// Sample wire arrivals: peer records appends; capture times via a
	// wrapper is overkill — infer from total elapsed instead.
	r.m.Loop.Run()
	if len(r.peer.frames) != n {
		t.Fatalf("wire saw %d frames", len(r.peer.frames))
	}
	// n packets take at least (n-1) engine intervals.
	minElapsed := sim.Duration(n-1) * DefaultParams().TxPerPacket
	if r.m.Now() < minElapsed {
		t.Fatalf("%d packets finished in %v, want >= %v", n, r.m.Now(), minElapsed)
	}
}

func TestReceiveOnePacket(t *testing.T) {
	r := newRig(t)
	r.replenishRx(t, 8)
	frame := bytes.Repeat([]byte{0xA7}, 80)
	r.nic.LinkDeliver(frame)
	r.m.Loop.Run()
	if r.nic.RxPackets != 1 {
		t.Fatalf("RxPackets = %d", r.nic.RxPackets)
	}
	desc := make([]byte, DescSize)
	r.m.Mem.MustRead(r.rxRing, desc)
	if desc[12]&RxStaDD == 0 || desc[12]&RxStaEOP == 0 {
		t.Fatal("RX descriptor missing DD|EOP")
	}
	if le16(desc[8:10]) != 80 {
		t.Fatalf("RX length = %d", le16(desc[8:10]))
	}
	buf := make([]byte, 80)
	r.m.Mem.MustRead(mem.Addr(le64(desc[0:8])), buf)
	if !bytes.Equal(buf, frame) {
		t.Fatal("payload not DMAed into buffer")
	}
}

func TestReceiveWithoutDescriptorsDrops(t *testing.T) {
	r := newRig(t)
	// No replenish: RDH == RDT.
	r.nic.LinkDeliver(make([]byte, 64))
	r.m.Loop.Run()
	if r.nic.RxPackets != 0 || r.nic.RxDropsNoDesc != 1 {
		t.Fatalf("rx=%d drops=%d", r.nic.RxPackets, r.nic.RxDropsNoDesc)
	}
	if r.reg32(t, RegICR)&IntRXO == 0 {
		t.Fatal("overrun cause not latched")
	}
}

func TestRxDisabledIgnoresFrames(t *testing.T) {
	r := newRig(t)
	r.replenishRx(t, 4)
	r.wreg32(t, RegRCTL, 0)
	r.nic.LinkDeliver(make([]byte, 64))
	r.m.Loop.Run()
	if r.nic.RxPackets != 0 {
		t.Fatal("disabled receiver accepted frame")
	}
}

func TestInterruptOnTxAndMasking(t *testing.T) {
	r := newRig(t)
	// Wire MSI: vector 0x41.
	cfg := r.nic.Config()
	off := cfg.MSICapOffset()
	cfg.Write(off+4, 4, 0xFEE00000)
	cfg.Write(off+8, 2, 0x41)
	cfg.Write(off+2, 2, pci.MSICtlEnable)
	var fired int
	if err := r.m.IRQ.Register(0x41, func(irq.Vector) { fired++ }); err != nil {
		t.Fatal(err)
	}
	// Masked (IMS clear): no interrupt.
	r.queueTx(t, make([]byte, 64))
	r.m.Loop.Run()
	if fired != 0 {
		t.Fatal("interrupt fired with IMS clear")
	}
	// Unmask: pending cause fires immediately.
	r.wreg32(t, RegIMS, IntTXDW)
	r.m.Loop.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after unmask", fired)
	}
	// ICR read clears the cause.
	if r.reg32(t, RegICR)&IntTXDW == 0 {
		t.Fatal("TXDW not latched")
	}
	if r.reg32(t, RegICR) != 0 {
		t.Fatal("ICR not cleared by read")
	}
}

func TestITRThrottlesInterrupts(t *testing.T) {
	r := newRig(t)
	cfg := r.nic.Config()
	off := cfg.MSICapOffset()
	cfg.Write(off+4, 4, 0xFEE00000)
	cfg.Write(off+8, 2, 0x42)
	cfg.Write(off+2, 2, pci.MSICtlEnable)
	var fired int
	if err := r.m.IRQ.Register(0x42, func(irq.Vector) { fired++ }); err != nil {
		t.Fatal(err)
	}
	r.wreg32(t, RegIMS, IntTXDW)
	// ITR = 488 * 256ns ≈ 125 µs between interrupts (8000/s).
	r.wreg32(t, RegITR, 488)
	for i := 0; i < 20; i++ {
		r.queueTx(t, make([]byte, 64))
	}
	r.m.Loop.Run()
	// 20 packets in ~60 µs of engine time: with ITR, only 1-2 interrupts.
	if fired > 3 {
		t.Fatalf("ITR did not throttle: %d interrupts", fired)
	}
	if fired == 0 {
		t.Fatal("no interrupt at all")
	}
}

func TestTxDMAFaultOutsideDomain(t *testing.T) {
	r := newRig(t)
	// Point a descriptor's buffer at an unmapped IOVA — the malicious
	// DMA from §5.2. The IOMMU must fault and the wire must stay clean.
	tail := r.reg32(t, RegTDT)
	desc := make([]byte, DescSize)
	putLE64(desc[0:8], 0xDEAD0000)
	putLE16(desc[8:10], 64)
	desc[11] = TxCmdEOP | TxCmdRS
	r.m.Mem.MustWrite(r.txRing+mem.Addr(tail*DescSize), desc)
	r.wreg32(t, RegTDT, (tail+1)%r.ringLen)
	r.m.Loop.Run()
	if r.nic.DMAFaults == 0 {
		t.Fatal("no DMA fault recorded")
	}
	if len(r.peer.frames) != 0 {
		t.Fatal("faulting packet reached the wire")
	}
	if len(r.m.IOMMU.Faults()) == 0 {
		t.Fatal("IOMMU fault log empty")
	}
}

func TestResetClearsState(t *testing.T) {
	r := newRig(t)
	r.wreg32(t, RegIMS, IntTXDW|IntRXT0)
	r.wreg32(t, RegCTRL, CtrlRST)
	if r.reg32(t, RegIMS) != 0 {
		t.Fatal("IMS survived reset")
	}
	// RAL/RAH reload from EEPROM.
	ral := r.reg32(t, RegRAL)
	if byte(ral) != testMAC[0] || byte(ral>>24) != testMAC[3] {
		t.Fatalf("RAL after reset = %#x", ral)
	}
	if r.reg32(t, RegRAH)&(1<<31) == 0 {
		t.Fatal("RAH address-valid bit clear after reset")
	}
}

func TestRxEngineBacklogDrains(t *testing.T) {
	r := newRig(t)
	r.replenishRx(t, 32)
	for i := 0; i < 20; i++ {
		r.nic.LinkDeliver([]byte{byte(i), 0, 0, 0})
	}
	r.m.Loop.Run()
	if r.nic.RxPackets != 20 {
		t.Fatalf("received %d packets, want 20", r.nic.RxPackets)
	}
	if got := r.reg32(t, RegRDH); got != 20 {
		t.Fatalf("RDH = %d, want 20", got)
	}
	// Engine time: at least 20 × RxPerPacket elapsed.
	if r.m.Now() < 20*DefaultParams().RxPerPacket {
		t.Fatal("RX engine faster than its per-packet cost")
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRig(t)
	r.replenishRx(t, 32)
	total := int(r.ringLen) * 2 // force TX ring to wrap twice
	for i := 0; i < total; i++ {
		r.queueTx(t, []byte{byte(i), byte(i >> 8), 0, 0})
		if i%16 == 15 {
			r.m.Loop.Run() // let the engine drain to avoid overfilling
		}
	}
	r.m.Loop.Run()
	if len(r.peer.frames) != total {
		t.Fatalf("wire saw %d frames, want %d", len(r.peer.frames), total)
	}
	_ = sim.Second
}
