package e1000

import (
	"testing"

	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/pci"
	"sud/internal/sim"
)

// FuzzRxSteerRegBank hammers the RX steering surface an untrusted driver
// controls: arbitrary writes into the per-queue RX register banks and the
// RSS redirection table, then arbitrary frames from the wire through the
// steering hash. The device model must never panic, every redirection entry
// must read back clamped to the valid ring range, and steering must always
// pick an active ring — exactly the invariants the RSSSteer attack relies
// on.
func FuzzRxSteerRegBank(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(
		// Out-of-range RETA entry + RDT scribble.
		[]byte{0x00, 0x5C, 0xFF, 0xFF, 0xFF, 0xFF, 0x18, 0x29, 0x40, 0x00, 0x00, 0x00},
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x08, 0x00, 0x45},
	)
	f.Add(
		[]byte{0x08, 0x28, 0x07, 0x00, 0x00, 0x00},
		[]byte{0xDE, 0xAD},
	)
	f.Fuzz(func(t *testing.T, writes, frame []byte) {
		m := hw.NewMachine(hw.DefaultPlatform())
		nic := New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, testMAC, MultiQueueParams(MaxRxQueues))
		nic.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
		m.AttachDevice(nic)
		link := ethlink.NewGigabit(m.Loop, 0)
		link.Connect(nic, &captureEnd{})
		nic.AttachLink(link, 0)
		nic.MMIOWrite(0, RegCTRL, 4, CtrlSLU)
		nic.MMIOWrite(0, RegRCTL, 4, RctlEN)

		// The RX/RSS register surface under attack: the four RX banks
		// plus the redirection table, with some slack on either side.
		const lo, hi = RegRDBAL, RegRETA + 4*RetaEntries + 0x100
		for i := 0; i+6 <= len(writes); i += 6 {
			off := lo + (uint64(writes[i])|uint64(writes[i+1])<<8)%(hi-lo)
			val := uint64(writes[i+2]) | uint64(writes[i+3])<<8 |
				uint64(writes[i+4])<<16 | uint64(writes[i+5])<<24
			nic.MMIOWrite(0, off&^3, 4, val)
		}

		// Every redirection entry reads back inside the ring range.
		for i := 0; i < RetaEntries; i++ {
			if v := uint32(nic.MMIORead(0, RegRETA+uint64(4*i), 4)); v >= MaxRxQueues {
				t.Fatalf("RETA[%d] = %d escaped the clamp", i, v)
			}
		}
		// Steering over an arbitrary frame always picks an active ring.
		if q := nic.steerQueue(frame); q < 0 || q >= nic.rxQueues() {
			t.Fatalf("steerQueue = %d with %d rings", q, nic.rxQueues())
		}
		// And delivering the frame (plus a couple of hashable ones)
		// through the poisoned banks must not wedge or panic.
		nic.LinkDeliver(frame)
		for s := byte(0); s < 3; s++ {
			udp := make([]byte, 60)
			udp[12], udp[13] = 0x08, 0x00 // IPv4
			udp[14] = 0x45                // IHL 5
			udp[23] = 17                  // UDP
			udp[34], udp[35] = 0xA0, s    // sport
			udp[36], udp[37] = 0x00, 0x07 // dport
			nic.LinkDeliver(udp)
		}
		m.Loop.RunFor(sim.Millisecond)
	})
}
