// Package e1000 models an Intel 8254x/e1000e-class Gigabit Ethernet
// controller at register level: legacy 16-byte TX/RX descriptor rings fetched
// and written back via DMA, EEPROM-backed MAC address, interrupt throttling
// (ITR), and MSI signalling. The e1000e driver in internal/drivers/e1000e
// programs it exactly as the Linux driver programs real silicon: through BAR0
// registers and in-memory descriptor rings — so a driver bug (or attack)
// that programs a bad DMA address produces a real IOMMU fault.
package e1000

import (
	"sud/internal/ethlink"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/trace"
)

// Register offsets in BAR0 (subset of the 8254x map).
const (
	RegCTRL   = 0x0000
	RegSTATUS = 0x0008
	RegEERD   = 0x0014
	RegICR    = 0x00C0
	RegITR    = 0x00C4
	RegIMS    = 0x00D0
	RegIMC    = 0x00D8
	RegRCTL   = 0x0100
	RegTCTL   = 0x0400
	// RegTQC reports the hardware TX queue count (read-only; our stand-in
	// for the queue-capability fields real multi-queue parts expose).
	RegTQC = 0x0408
	// RegRQC reports the hardware RX queue count (read-only), the receive
	// mirror of RegTQC.
	RegRQC   = 0x040C
	RegRDBAL = 0x2800
	RegRDBAH = 0x2804
	RegRDLEN = 0x2808
	RegRDH   = 0x2810
	RegRDT   = 0x2818
	RegTDBAL = 0x3800
	RegTDBAH = 0x3804
	RegTDLEN = 0x3808
	RegTDH   = 0x3810
	RegTDT   = 0x3818
	RegRAL   = 0x5400
	RegRAH   = 0x5404

	// RegRETA is the base of the RSS redirection table: RetaEntries
	// 32-bit registers, each holding an RX queue index. Received flows are
	// hashed over their transport ports and the hash indexes this table to
	// pick the RX descriptor ring — receive-side scaling as on 82574/82576
	// parts. Hardware masks each written entry to retaEntryMask (reserved
	// bits read back zero), so an out-of-range value written by a buggy or
	// malicious driver degrades to a valid queue instead of wild state.
	RegRETA = 0x5C00
	// RetaEntries is the redirection table size.
	RetaEntries = 32
	// retaEntryMask keeps a table entry inside [0, MaxRxQueues).
	retaEntryMask = MaxRxQueues - 1

	// txQStride separates the per-queue TX register banks: queue q's
	// TDBAL..TDT live at RegTDBAL+q*txQStride, as on 82571-class parts
	// (the second queue's TDBAL1 sits at 0x3900).
	txQStride = 0x100

	// rxQStride separates the per-queue RX register banks in the same way:
	// queue q's RDBAL..RDT live at RegRDBAL+q*rxQStride.
	rxQStride = 0x100

	// BARSize is the size of BAR0 (128 KiB, as on real parts).
	BARSize = 0x20000
)

// CTRL bits.
const (
	CtrlSLU = 1 << 6  // set link up
	CtrlRST = 1 << 26 // device reset
)

// STATUS bits.
const (
	StatusLU = 1 << 1 // link up
)

// Interrupt cause bits (ICR/IMS/IMC).
const (
	IntTXDW  = 1 << 0 // transmit descriptor written back
	IntLSC   = 1 << 2 // link status change
	IntRXDMT = 1 << 4 // rx descriptors minimum threshold
	IntRXO   = 1 << 6 // receiver overrun
	IntRXT0  = 1 << 7 // receiver timer (frame received)
)

// RCTL/TCTL enable bits.
const (
	RctlEN = 1 << 1
	TctlEN = 1 << 1
)

// EERD bits: write addr<<8 | Start; poll Done; data in bits 16..31.
const (
	EerdStart = 1 << 0
	EerdDone  = 1 << 4
)

// Descriptor layout: both TX and RX descriptors are 16 bytes.
const DescSize = 16

// TX descriptor command/status bits.
const (
	TxCmdEOP = 1 << 0 // end of packet
	TxCmdRS  = 1 << 3 // report status (request DD writeback)
	TxStaDD  = 1 << 0 // descriptor done
)

// RX descriptor status bits.
const (
	RxStaDD  = 1 << 0
	RxStaEOP = 1 << 1
)

// Params tunes the device's internal engine. Defaults reproduce the
// small-packet forwarding limits of e1000e-class NICs (a few hundred
// kpackets/s), which is what caps UDP_STREAM in Figure 8; large frames are
// wire-limited instead.
type Params struct {
	// TxPerPacket / RxPerPacket are the fixed per-packet engine costs
	// (descriptor scheduling, writeback posting), on top of modelled DMA
	// transfer time.
	TxPerPacket sim.Duration
	RxPerPacket sim.Duration

	// TxQueues is the number of hardware transmit queues (1..MaxTxQueues;
	// 0 means 1). Each queue has its own register bank and descriptor
	// engine, so queues make progress in parallel — the per-packet engine
	// cost serialises within a queue, not across queues. The shared wire
	// still serialises frames (ethlink models the PHY FIFO).
	TxQueues int

	// RxQueues is the number of hardware receive queues (1..MaxRxQueues;
	// 0 means 1). Received frames are steered to a ring by the RSS hash
	// through the RETA redirection table; each ring has its own register
	// bank, packet FIFO and receive engine, so rings drain in parallel.
	RxQueues int
}

// MaxTxQueues is the most TX queues the device model exposes.
const MaxTxQueues = 4

// MaxRxQueues is the most RX queues the device model exposes.
const MaxRxQueues = 4

// DefaultParams matches the calibration in internal/sim/costs.go.
func DefaultParams() Params {
	return Params{
		TxPerPacket: 2500 * sim.Nanosecond,
		RxPerPacket: 3300 * sim.Nanosecond,
	}
}

// MultiQueueParams is DefaultParams with queues TX and RX queues enabled.
func MultiQueueParams(queues int) Params {
	p := DefaultParams()
	p.TxQueues = queues
	p.RxQueues = queues
	return p
}

// NIC is one e1000 device instance.
type NIC struct {
	pci.FuncBase

	loop   *sim.Loop
	params Params

	link *ethlink.Link
	side int

	mac    [6]byte
	eeprom [64]uint16

	regs map[uint64]uint32
	tr   *trace.Tracer

	// TX engine state, one engine per hardware queue.
	txActive    [MaxTxQueues]bool
	txBusyUntil [MaxTxQueues]sim.Time

	// RX engine state, one engine (and packet FIFO) per hardware queue.
	rxQueue     [MaxRxQueues][][]byte // frames awaiting ring placement
	rxActive    [MaxRxQueues]bool
	rxBusyUntil [MaxRxQueues]sim.Time

	// Interrupt moderation.
	lastIntAt  sim.Time
	intPending bool

	// Counters.
	TxPackets, RxPackets   uint64
	TxBytes, RxBytes       uint64
	RxDropsNoDesc          uint64
	DMAFaults              uint64
	InterruptsRaised       uint64
	InterruptsSuppressedBy uint64 // suppressed by masked/disabled MSI
	// TDTWrites/RDTWrites count tail doorbell MMIO arrivals — the ground
	// truth the submit-side doorbell-coalescing metric divides by.
	TDTWrites, RDTWrites uint64
}

// New creates an e1000 NIC with the given identity, MAC and BAR0 base. It
// must then be attached to a link with AttachLink and to the fabric via
// Machine.AttachDevice.
func New(loop *sim.Loop, bdf pci.BDF, barBase uint64, macAddr [6]byte, p Params) *NIC {
	n := &NIC{
		loop:   loop,
		params: p,
		mac:    macAddr,
		regs:   make(map[uint64]uint32),
	}
	cfg := pci.NewConfigSpace(0x8086, 0x10D3, 0x02) // 82574L, class = network
	cfg.SetBAR(0, barBase, BARSize, false)
	cfg.AddMSICapability()
	n.InitFunc(bdf, cfg)
	// EEPROM words 0..2 hold the MAC address.
	n.eeprom[0] = uint16(macAddr[0]) | uint16(macAddr[1])<<8
	n.eeprom[1] = uint16(macAddr[2]) | uint16(macAddr[3])<<8
	n.eeprom[2] = uint16(macAddr[4]) | uint16(macAddr[5])<<8
	// Per-vector MSI masking is level-sensitive on unmask: if causes are
	// pending when the mask clears, the message fires (SUD's interrupt
	// ack path relies on this, §3.2.2).
	cfg.OnMSIChange = func() {
		if !cfg.MSI().Masked {
			n.maybeInterrupt()
		}
	}
	n.reset()
	return n
}

// SetTracer hands the NIC the machine's tracing plane (called by
// Machine.AttachDevice). The receive engine stamps each frame's buffer IOVA
// at DMA-writeback time; the SUD proxy pops the stamp at stack delivery,
// closing the device→kernel end-to-end receive latency.
func (n *NIC) SetTracer(tr *trace.Tracer) { n.tr = tr }

// AttachLink connects the NIC's PHY to side `side` of link.
func (n *NIC) AttachLink(link *ethlink.Link, side int) {
	n.link = link
	n.side = side
}

// MAC returns the burned-in address.
func (n *NIC) MAC() [6]byte { return n.mac }

func (n *NIC) reset() {
	for k := range n.regs {
		delete(n.regs, k)
	}
	n.regs[RegITR] = 0
	for q := range n.rxQueue {
		n.rxQueue[q] = nil
	}
	n.intPending = false
	// RAL/RAH from EEPROM, as hardware autoloads.
	n.regs[RegRAL] = uint32(n.mac[0]) | uint32(n.mac[1])<<8 | uint32(n.mac[2])<<16 | uint32(n.mac[3])<<24
	n.regs[RegRAH] = uint32(n.mac[4]) | uint32(n.mac[5])<<8 | 1<<31
}

func (n *NIC) linkUp() bool {
	return n.link != nil && n.link.Carrier() && n.regs[RegCTRL]&CtrlSLU != 0
}

// MMIORead implements pci.Device.
func (n *NIC) MMIORead(bar int, off uint64, size int) uint64 {
	if bar != 0 {
		return ^uint64(0)
	}
	switch off {
	case RegSTATUS:
		var v uint32
		if n.linkUp() {
			v |= StatusLU
		}
		return uint64(v)
	case RegTQC:
		return uint64(n.txQueues())
	case RegRQC:
		return uint64(n.rxQueues())
	case RegICR:
		// Read-to-clear.
		v := n.regs[RegICR]
		n.regs[RegICR] = 0
		return uint64(v)
	default:
		return uint64(n.regs[off])
	}
}

// MMIOWrite implements pci.Device.
func (n *NIC) MMIOWrite(bar int, off uint64, size int, v uint64) {
	if bar != 0 {
		return
	}
	val := uint32(v)
	switch off {
	case RegCTRL:
		if val&CtrlRST != 0 {
			n.reset()
			return
		}
		n.regs[RegCTRL] = val
	case RegEERD:
		if val&EerdStart != 0 {
			addr := (val >> 8) & 0xFF
			data := uint32(0xFFFF)
			if int(addr) < len(n.eeprom) {
				data = uint32(n.eeprom[addr])
			}
			n.regs[RegEERD] = EerdDone | data<<16
		}
	case RegIMS:
		n.regs[RegIMS] |= val
		n.maybeInterrupt()
	case RegIMC:
		n.regs[RegIMS] &^= val
	case RegICR:
		n.regs[RegICR] &^= val // write-one-to-clear
	default:
		if q, rel, ok := rxQReg(off); ok && q < n.rxQueues() {
			switch rel {
			case RegRDT:
				n.RDTWrites++
				n.regs[off] = val % n.rxRingLen(q)
				n.kickRx(q)
			case RegRDH:
				n.regs[off] = val % n.rxRingLen(q)
			default:
				n.regs[off] = val
			}
			return
		}
		if q, rel, ok := txQReg(off); ok && q < n.txQueues() {
			switch rel {
			case RegTDT:
				n.TDTWrites++
				n.regs[off] = val % n.txRingLen(q)
				n.kickTx(q)
			case RegTDH:
				n.regs[off] = val % n.txRingLen(q)
			default:
				n.regs[off] = val
			}
			return
		}
		if retaIndexFor(off) >= 0 {
			// Reserved bits of a redirection entry are hardwired to
			// zero: out-of-range queue values cannot be stored.
			n.regs[off] = val & retaEntryMask
			return
		}
		n.regs[off] = val
	}
}

// rxQReg maps a register offset into (queue, base-queue register). It
// reports ok for any offset inside the per-queue RX banks.
func rxQReg(off uint64) (q int, rel uint64, ok bool) {
	if off < RegRDBAL || off >= RegRDBAL+MaxRxQueues*rxQStride {
		return 0, 0, false
	}
	return int((off - RegRDBAL) / rxQStride), RegRDBAL + (off-RegRDBAL)%rxQStride, true
}

// RxQOff returns queue q's offset for one of the base RX registers
// (RegRDBAL..RegRDT) — the address a multi-queue driver programs.
func RxQOff(q int, reg uint64) uint64 { return reg + uint64(q)*rxQStride }

// retaIndexFor returns the redirection-table index a register offset names,
// or -1 if the offset is outside the RETA bank.
func retaIndexFor(off uint64) int {
	if off < RegRETA || off >= RegRETA+4*RetaEntries || (off-RegRETA)%4 != 0 {
		return -1
	}
	return int((off - RegRETA) / 4)
}

// txQReg maps a register offset into (queue, base-queue register). It
// reports ok for any offset inside the per-queue TX banks.
func txQReg(off uint64) (q int, rel uint64, ok bool) {
	if off < RegTDBAL || off >= RegTDBAL+MaxTxQueues*txQStride {
		return 0, 0, false
	}
	return int((off - RegTDBAL) / txQStride), RegTDBAL + (off-RegTDBAL)%txQStride, true
}

// TxQOff returns queue q's offset for one of the base TX registers
// (RegTDBAL..RegTDT) — the address a multi-queue driver programs.
func TxQOff(q int, reg uint64) uint64 { return reg + uint64(q)*txQStride }

// txQueues returns the active TX queue count.
func (n *NIC) txQueues() int {
	q := n.params.TxQueues
	if q < 1 {
		return 1
	}
	if q > MaxTxQueues {
		return MaxTxQueues
	}
	return q
}

// rxQueues returns the active RX queue count.
func (n *NIC) rxQueues() int {
	q := n.params.RxQueues
	if q < 1 {
		return 1
	}
	if q > MaxRxQueues {
		return MaxRxQueues
	}
	return q
}

// IORead/IOWrite: the e1000 has no IO BAR in our model.
func (n *NIC) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (n *NIC) IOWrite(bar int, off uint64, size int, v uint32) {}

func (n *NIC) txRingLen(q int) uint32 {
	l := n.regs[TxQOff(q, RegTDLEN)] / DescSize
	if l == 0 {
		return 1
	}
	return l
}

func (n *NIC) rxRingLen(q int) uint32 {
	l := n.regs[RxQOff(q, RegRDLEN)] / DescSize
	if l == 0 {
		return 1
	}
	return l
}

func (n *NIC) txBase(q int) mem.Addr {
	return mem.Addr(uint64(n.regs[TxQOff(q, RegTDBAH)])<<32 | uint64(n.regs[TxQOff(q, RegTDBAL)]))
}

func (n *NIC) rxBase(q int) mem.Addr {
	return mem.Addr(uint64(n.regs[RxQOff(q, RegRDBAH)])<<32 | uint64(n.regs[RxQOff(q, RegRDBAL)]))
}

// --- Interrupts -----------------------------------------------------------

// itrInterval returns the minimum gap between interrupts (ITR register is in
// 256 ns units, as on hardware).
func (n *NIC) itrInterval() sim.Duration {
	return sim.Duration(n.regs[RegITR]) * 256
}

// assertCause latches an interrupt cause and raises an interrupt subject to
// masking and throttling.
func (n *NIC) assertCause(bits uint32) {
	n.regs[RegICR] |= bits
	n.maybeInterrupt()
}

func (n *NIC) maybeInterrupt() {
	if n.regs[RegICR]&n.regs[RegIMS] == 0 {
		return
	}
	now := n.loop.Now()
	gap := n.itrInterval()
	if gap > 0 && now-n.lastIntAt < gap {
		if !n.intPending {
			n.intPending = true
			n.loop.At(n.lastIntAt+gap, func() {
				n.intPending = false
				n.maybeInterrupt()
			})
		}
		return
	}
	n.lastIntAt = now
	if n.RaiseMSI() {
		n.InterruptsRaised++
	} else {
		n.InterruptsSuppressedBy++
	}
}

// --- TX engine ------------------------------------------------------------

func (n *NIC) kickTx(q int) {
	if n.txActive[q] || n.regs[RegTCTL]&TctlEN == 0 {
		return
	}
	if n.regs[TxQOff(q, RegTDH)] == n.regs[TxQOff(q, RegTDT)] {
		return
	}
	n.txActive[q] = true
	start := n.txBusyUntil[q]
	if now := n.loop.Now(); start < now {
		start = now
	}
	n.loop.At(start, func() { n.txStep(q) })
}

// txStep processes one TX descriptor on queue q, then reschedules itself
// after the engine's per-packet time. Queues step independently: engine time
// serialises within a queue only. All DMA carries stream q+1, so with
// per-queue sub-domains attached a descriptor naming a sibling queue's
// buffer faults at the walk.
func (n *NIC) txStep(q int) {
	n.txActive[q] = false
	head := n.regs[TxQOff(q, RegTDH)]
	if head == n.regs[TxQOff(q, RegTDT)] || n.regs[RegTCTL]&TctlEN == 0 {
		return
	}
	descAddr := n.txBase(q) + mem.Addr(head*DescSize)
	engine := n.params.TxPerPacket

	desc, err := n.DMAReadQ(q+1, descAddr, DescSize)
	engine += sim.DMA(DescSize)
	if err != nil {
		n.DMAFaults++
		n.advanceTxHead(q, engine)
		return
	}
	bufAddr := mem.Addr(le64(desc[0:8]))
	length := int(le16(desc[8:10]))
	cmd := desc[11]

	if length > 0 && length <= ethlink.MaxFrame {
		payload, err := n.DMAReadQ(q+1, bufAddr, length)
		engine += sim.DMA(length)
		if err != nil {
			n.DMAFaults++
		} else if n.linkUp() {
			if n.link.Send(n.side, payload) == nil {
				n.TxPackets++
				n.TxBytes += uint64(length)
			}
		}
	}

	// Status writeback if requested.
	if cmd&TxCmdRS != 0 {
		desc[12] |= TxStaDD
		if err := n.DMAWriteQ(q+1, descAddr, desc); err != nil {
			n.DMAFaults++
		}
		engine += sim.DMA(DescSize)
	}
	n.assertCause(IntTXDW)
	n.advanceTxHead(q, engine)
}

func (n *NIC) advanceTxHead(q int, engine sim.Duration) {
	hdOff, tlOff := TxQOff(q, RegTDH), TxQOff(q, RegTDT)
	n.regs[hdOff] = (n.regs[hdOff] + 1) % n.txRingLen(q)
	now := n.loop.Now()
	if n.txBusyUntil[q] < now {
		n.txBusyUntil[q] = now
	}
	n.txBusyUntil[q] += engine
	if n.regs[hdOff] != n.regs[tlOff] {
		n.txActive[q] = true
		n.loop.At(n.txBusyUntil[q], func() { n.txStep(q) })
	}
}

// --- RX path --------------------------------------------------------------

// RSSHash is the flow hash the receive steering logic computes over a
// frame's transport ports (a stand-in for the Toeplitz hash with the default
// key). Exported so drivers, harnesses and attack scenarios can predict
// which ring a flow lands on.
func RSSHash(sport, dport uint16) uint32 {
	return uint32(sport)*31 + uint32(dport)
}

// steerQueue picks the RX ring for a received frame: hash the transport
// ports, index the redirection table, clamp to the active queue count.
// Non-IPv4 and short frames land on queue 0, as hardware delivers unhashable
// traffic to the default ring.
func (n *NIC) steerQueue(frame []byte) int {
	nq := n.rxQueues()
	if nq == 1 {
		return 0
	}
	const ethHdr = 14
	if len(frame) < ethHdr+20 || frame[12] != 0x08 || frame[13] != 0x00 {
		return 0
	}
	ihl := int(frame[ethHdr]&0x0F) * 4
	proto := frame[ethHdr+9]
	l4 := ethHdr + ihl
	if (proto != 6 && proto != 17) || l4 < ethHdr+20 || len(frame) < l4+4 {
		return 0
	}
	sport := uint16(frame[l4])<<8 | uint16(frame[l4+1])
	dport := uint16(frame[l4+2])<<8 | uint16(frame[l4+3])
	idx := RSSHash(sport, dport) % RetaEntries
	// The stored entry is already masked to retaEntryMask; the modulo
	// keeps it inside the *active* queue count even if the driver enabled
	// fewer queues than the mask allows.
	return int(n.regs[RegRETA+uint64(4*idx)]) % nq
}

// LinkDeliver implements ethlink.Endpoint: a frame arrived from the wire and
// is steered to an RX ring by the RSS hash.
func (n *NIC) LinkDeliver(frame []byte) {
	if n.regs[RegRCTL]&RctlEN == 0 || !n.linkUp() {
		return
	}
	q := n.steerQueue(frame)
	// Hardware FIFO: bounded per ring; beyond it the receiver overruns.
	if len(n.rxQueue[q]) >= 256 {
		n.RxDropsNoDesc++
		n.assertCause(IntRXO)
		return
	}
	n.rxQueue[q] = append(n.rxQueue[q], frame)
	n.kickRx(q)
}

func (n *NIC) kickRx(q int) {
	if n.rxActive[q] || len(n.rxQueue[q]) == 0 {
		return
	}
	n.rxActive[q] = true
	start := n.rxBusyUntil[q]
	if now := n.loop.Now(); start < now {
		start = now
	}
	n.loop.At(start, func() { n.rxStep(q) })
}

// rxStep processes one received frame on ring q, then reschedules itself
// after the engine's per-packet time. Rings step independently: engine time
// serialises within a ring only. All DMA carries stream q+1 (the receive
// mirror of txStep's tagging).
func (n *NIC) rxStep(q int) {
	n.rxActive[q] = false
	if len(n.rxQueue[q]) == 0 {
		return
	}
	// Hardware owns descriptors in [RDH, RDT); RDH == RDT means software
	// has not replenished the ring.
	head := n.regs[RxQOff(q, RegRDH)]
	if head == n.regs[RxQOff(q, RegRDT)] {
		// No free descriptors: drop.
		n.RxDropsNoDesc++
		n.rxQueue[q] = n.rxQueue[q][1:]
		n.assertCause(IntRXO)
		n.kickRx(q)
		return
	}
	frame := n.rxQueue[q][0]
	n.rxQueue[q] = n.rxQueue[q][1:]

	engine := n.params.RxPerPacket
	descAddr := n.rxBase(q) + mem.Addr(head*DescSize)
	desc, err := n.DMAReadQ(q+1, descAddr, DescSize)
	engine += sim.DMA(DescSize)
	if err != nil {
		n.DMAFaults++
		n.finishRx(q, engine)
		return
	}
	bufAddr := mem.Addr(le64(desc[0:8]))
	if err := n.DMAWriteQ(q+1, bufAddr, frame); err != nil {
		n.DMAFaults++
		n.finishRx(q, engine)
		return
	}
	engine += sim.DMA(len(frame))
	n.tr.Mark(trace.ClassNetRx, q, uint64(bufAddr))
	n.tr.Event(trace.ClassNetRx, q, uint64(bufAddr), trace.HopDevComplete)

	// Write back length + DD|EOP status.
	putLE16(desc[8:10], uint16(len(frame)))
	desc[12] = RxStaDD | RxStaEOP
	if err := n.DMAWriteQ(q+1, descAddr, desc); err != nil {
		n.DMAFaults++
		n.finishRx(q, engine)
		return
	}
	engine += sim.DMA(DescSize)

	n.regs[RxQOff(q, RegRDH)] = (head + 1) % n.rxRingLen(q)
	n.RxPackets++
	n.RxBytes += uint64(len(frame))
	n.assertCause(IntRXT0)
	n.finishRx(q, engine)
}

func (n *NIC) finishRx(q int, engine sim.Duration) {
	now := n.loop.Now()
	if n.rxBusyUntil[q] < now {
		n.rxBusyUntil[q] = now
	}
	n.rxBusyUntil[q] += engine
	if len(n.rxQueue[q]) > 0 {
		n.rxActive[q] = true
		n.loop.At(n.rxBusyUntil[q], func() { n.rxStep(q) })
	}
}

// --- little-endian helpers -------------------------------------------------

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLE16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
