package ne2k

import (
	"bytes"
	"testing"

	"sud/internal/ethlink"
	"sud/internal/pci"
	"sud/internal/sim"
)

type sink struct{ frames [][]byte }

func (s *sink) LinkDeliver(f []byte) { s.frames = append(s.frames, f) }

func rig(t *testing.T) (*sim.Loop, *Card, *ethlink.Link, *sink) {
	t.Helper()
	loop := sim.NewLoop()
	c := New(loop, pci.MakeBDF(1, 0, 0), 0xC000, [6]byte{1, 2, 3, 4, 5, 6})
	link := ethlink.NewGigabit(loop, 0)
	peer := &sink{}
	link.Connect(c, peer)
	c.AttachLink(link, 0)
	return loop, c, link, peer
}

func TestPROMDoubledBytes(t *testing.T) {
	_, c, _, _ := rig(t)
	// Remote-DMA read of the PROM: each MAC byte appears twice.
	c.IOWrite(0, PortRSAR0, 1, 0)
	c.IOWrite(0, PortRSAR1, 1, 0)
	c.IOWrite(0, PortRBCR0, 1, 12)
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRRead)
	for i := 0; i < 6; i++ {
		a := uint8(c.IORead(0, PortData, 1))
		b := uint8(c.IORead(0, PortData, 1))
		if a != b || a != c.MAC()[i] {
			t.Fatalf("PROM byte %d: %d/%d want %d", i, a, b, c.MAC()[i])
		}
	}
	// Beyond the byte count the window reads all-ones.
	if uint8(c.IORead(0, PortData, 1)) != 0xFF {
		t.Fatal("exhausted remote DMA window not all-ones")
	}
}

func TestSRAMRemoteDMARoundTrip(t *testing.T) {
	_, c, _, _ := rig(t)
	data := []byte("ne2000 packet sram")
	c.IOWrite(0, PortRSAR0, 1, 0x00)
	c.IOWrite(0, PortRSAR1, 1, 0x40) // SRAMBase
	c.IOWrite(0, PortRBCR0, 1, uint32(len(data)))
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRWrite)
	for _, b := range data {
		c.IOWrite(0, PortData, 1, uint32(b))
	}
	c.IOWrite(0, PortRSAR0, 1, 0x00)
	c.IOWrite(0, PortRSAR1, 1, 0x40)
	c.IOWrite(0, PortRBCR0, 1, uint32(len(data)))
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRRead)
	got := make([]byte, len(data))
	for i := range got {
		got[i] = uint8(c.IORead(0, PortData, 1))
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("SRAM round trip %q", got)
	}
}

func TestTransmitFromSRAM(t *testing.T) {
	loop, c, _, peer := rig(t)
	frame := bytes.Repeat([]byte{0x5C}, 80)
	// Write the frame at page 0x40 and trigger TX.
	c.IOWrite(0, PortRSAR0, 1, 0)
	c.IOWrite(0, PortRSAR1, 1, 0x40)
	c.IOWrite(0, PortRBCR0, 1, uint32(len(frame)))
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRWrite)
	for _, b := range frame {
		c.IOWrite(0, PortData, 1, uint32(b))
	}
	c.IOWrite(0, PortTPSR, 1, 0x40)
	c.IOWrite(0, PortTBCR0, 1, uint32(len(frame)))
	c.IOWrite(0, PortTBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdTXP)
	loop.Run()
	if len(peer.frames) != 1 || !bytes.Equal(peer.frames[0], frame) {
		t.Fatalf("wire saw %d frames", len(peer.frames))
	}
	if uint8(c.IORead(0, PortISR, 1))&IsrPTX == 0 {
		t.Fatal("PTX not latched")
	}
}

// TestTransmitBusyTimeSerialises pins the TXP busy model: two back-to-back
// transmits serialise at the card's 10 Mbit/s rate instead of overlapping in
// the old flat-latency model, and each completion latches PTX.
func TestTransmitBusyTimeSerialises(t *testing.T) {
	loop, c, _, peer := rig(t)
	frame := bytes.Repeat([]byte{0xA1}, 100)
	loadTx := func() {
		c.IOWrite(0, PortRSAR0, 1, 0)
		c.IOWrite(0, PortRSAR1, 1, 0x40)
		c.IOWrite(0, PortRBCR0, 1, uint32(len(frame)))
		c.IOWrite(0, PortRBCR1, 1, 0)
		c.IOWrite(0, PortCmd, 1, CmdStart|CmdRWrite)
		for _, b := range frame {
			c.IOWrite(0, PortData, 1, uint32(b))
		}
		c.IOWrite(0, PortTPSR, 1, 0x40)
		c.IOWrite(0, PortTBCR0, 1, uint32(len(frame)))
		c.IOWrite(0, PortTBCR1, 1, 0)
		c.IOWrite(0, PortCmd, 1, CmdStart|CmdTXP)
	}
	loadTx()
	loadTx() // second TXP while the transmitter is busy
	var t1, t2 sim.Time
	loop.RunFor(TxTime(len(frame)) + sim.Microsecond)
	if len(peer.frames) == 1 {
		t1 = loop.Now()
	}
	loop.Run()
	t2 = loop.Now()
	if len(peer.frames) != 2 {
		t.Fatalf("wire saw %d frames, want 2", len(peer.frames))
	}
	if t1 == 0 {
		t.Fatalf("first transmit did not complete within one TxTime")
	}
	if gap := t2 - t1; gap < TxTime(len(frame))-sim.Microsecond {
		t.Fatalf("transmits overlapped: gap %d, want >= %d", gap, TxTime(len(frame)))
	}
}

func TestStoppedCardDropsRx(t *testing.T) {
	_, c, _, _ := rig(t)
	c.LinkDeliver([]byte{1, 2, 3})
	if c.RxPackets != 0 {
		t.Fatal("stopped card accepted a frame")
	}
}

func TestRxRingOverrunLatchesOVW(t *testing.T) {
	_, c, _, _ := rig(t)
	c.IOWrite(0, PortPSTART, 1, 0x46)
	c.IOWrite(0, PortPSTOP, 1, 0x4B) // tiny 5-page ring
	c.IOWrite(0, PortBNRY, 1, 0x46)
	c.IOWrite(0, PortCmd, 1, CmdPage1|CmdStart)
	c.IOWrite(0, PortISR, 1, 0x47) // CURR
	c.IOWrite(0, PortCmd, 1, CmdStart)
	big := make([]byte, 700) // 3 pages each
	c.LinkDeliver(big)
	c.LinkDeliver(big) // second one cannot fit
	if c.RxPackets != 1 || c.RxDrops != 1 {
		t.Fatalf("rx=%d drops=%d", c.RxPackets, c.RxDrops)
	}
	if uint8(c.IORead(0, PortISR, 1))&IsrOVW == 0 {
		t.Fatal("OVW not latched")
	}
}

func TestResetClearsState(t *testing.T) {
	_, c, _, _ := rig(t)
	c.IOWrite(0, PortCmd, 1, CmdStart)
	c.IOWrite(0, PortReset, 1, 0)
	if uint8(c.IORead(0, PortCmd, 1))&CmdStart != 0 {
		t.Fatal("started after reset")
	}
}

func TestWordWideDataPort(t *testing.T) {
	_, c, _, _ := rig(t)
	c.IOWrite(0, PortRSAR0, 1, 0)
	c.IOWrite(0, PortRSAR1, 1, 0x40)
	c.IOWrite(0, PortRBCR0, 1, 4)
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRWrite)
	c.IOWrite(0, PortData, 2, 0xBBAA)
	c.IOWrite(0, PortData, 2, 0xDDCC)
	c.IOWrite(0, PortRSAR0, 1, 0)
	c.IOWrite(0, PortRSAR1, 1, 0x40)
	c.IOWrite(0, PortRBCR0, 1, 4)
	c.IOWrite(0, PortRBCR1, 1, 0)
	c.IOWrite(0, PortCmd, 1, CmdStart|CmdRRead)
	if v := c.IORead(0, PortData, 2); v != 0xBBAA {
		t.Fatalf("word read %#x", v)
	}
	if v := c.IORead(0, PortData, 2); v != 0xDDCC {
		t.Fatalf("word read %#x", v)
	}
}
