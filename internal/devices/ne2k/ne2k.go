// Package ne2k models an NE2000-compatible PCI Ethernet card (RTL8029-ish):
// a legacy programmed-IO device with on-board packet SRAM accessed through a
// remote-DMA data port — no bus mastering at all. It is the paper's ne2k-pci
// example (§4): under SUD it exercises the IO permission bitmap path
// (§3.2.1) and demonstrates a driver whose device needs *no* IOMMU mappings.
package ne2k

import (
	"sud/internal/ethlink"
	"sud/internal/pci"
	"sud/internal/sim"
)

// IO port offsets (relative to the IO BAR).
const (
	PortCmd    = 0x00
	PortPSTART = 0x01 // page 0
	PortPSTOP  = 0x02
	PortBNRY   = 0x03
	PortTPSR   = 0x04
	PortTBCR0  = 0x05
	PortTBCR1  = 0x06
	PortISR    = 0x07 // page 0 (page 1: CURR)
	PortRSAR0  = 0x08
	PortRSAR1  = 0x09
	PortRBCR0  = 0x0A
	PortRBCR1  = 0x0B
	PortData   = 0x10
	PortReset  = 0x1F

	// IOBARSize is the size of the IO BAR.
	IOBARSize = 0x20
)

// CMD register bits.
const (
	CmdStop   = 1 << 0
	CmdStart  = 1 << 1
	CmdTXP    = 1 << 2
	CmdRRead  = 1 << 3 // remote DMA read
	CmdRWrite = 1 << 4 // remote DMA write
	CmdPage1  = 1 << 6 // register bank select
)

// ISR bits.
const (
	IsrPRX = 1 << 0 // packet received
	IsrPTX = 1 << 1 // packet transmitted
	IsrOVW = 1 << 4 // ring overwrite
)

// SRAM geometry: 16 KiB of on-board packet memory at device addresses
// 0x4000–0x8000, in 256-byte pages.
const (
	SRAMBase = 0x4000
	SRAMSize = 16 * 1024
	PageSize = 256
)

// Transmit timing: the NE2000 is a 10 Mbit/s card, so TXP keeps the
// transmitter busy for the frame's wire time (preamble + frame + inter-frame
// gap at 0.8 µs/byte) on top of a fixed setup latency (local-DMA fetch of
// the frame from SRAM, deferral). A second TXP issued while the transmitter
// is busy serialises behind it in time — the busy-time model that replaces
// the old flat 50 µs latency, which let transmits overlap and forced the
// multi-flow harness to pace its ne2k flow artificially.
const (
	// TxSetup is the fixed transmit-start latency.
	TxSetup = 20 * sim.Microsecond
	// TxPerByte is the 10 Mbit/s wire time per byte.
	TxPerByte = 800 * sim.Nanosecond
	// txWireOverhead is preamble (8) + FCS (4) + inter-frame gap (12).
	txWireOverhead = 24
)

// TxTime returns how long the transmitter stays busy for an n-byte frame.
func TxTime(n int) sim.Duration {
	if n < 60 {
		n = 60 // minimum frame padding on the wire
	}
	return TxSetup + sim.Duration(n+txWireOverhead)*TxPerByte
}

// Card is the NE2000 device.
type Card struct {
	pci.FuncBase
	loop *sim.Loop

	link *ethlink.Link
	side int
	mac  [6]byte

	sram [SRAMSize]byte
	prom [32]byte

	// Register state.
	page1         bool
	isr           uint8
	pstart, pstop uint8
	bnry, curr    uint8
	tpsr          uint8
	tbcr          uint16
	rsar          uint16
	rbcr          uint16
	started       bool

	// txBusyUntil serialises transmits in time (TXP busy model).
	txBusyUntil sim.Time

	// Counters.
	TxPackets, RxPackets uint64
	RxDrops              uint64
}

// New creates the card with the MAC burned into its PROM.
func New(loop *sim.Loop, bdf pci.BDF, ioBase uint64, macAddr [6]byte) *Card {
	c := &Card{loop: loop, mac: macAddr}
	cfg := pci.NewConfigSpace(0x10EC, 0x8029, 0x02)
	cfg.SetBAR(0, ioBase, IOBARSize, true)
	cfg.AddMSICapability() // the PCI variant SUD requires (§3.2.2: no legacy INTx)
	c.InitFunc(bdf, cfg)
	// PROM: MAC bytes doubled, NE2000 style.
	for i, b := range macAddr {
		c.prom[2*i] = b
		c.prom[2*i+1] = b
	}
	return c
}

// AttachLink connects the card to the wire.
func (c *Card) AttachLink(link *ethlink.Link, side int) {
	c.link = link
	c.side = side
}

// MAC returns the burned-in address.
func (c *Card) MAC() [6]byte { return c.mac }

// MMIO: the NE2000 has no memory BAR.
func (c *Card) MMIORead(bar int, off uint64, size int) uint64     { return ^uint64(0) }
func (c *Card) MMIOWrite(bar int, off uint64, size int, v uint64) {}

// IORead implements pci.Device.
func (c *Card) IORead(bar int, off uint64, size int) uint32 {
	switch off {
	case PortCmd:
		var v uint32
		if c.started {
			v |= CmdStart
		}
		if c.page1 {
			v |= CmdPage1
		}
		return v
	case PortISR:
		if c.page1 {
			return uint32(c.curr)
		}
		return uint32(c.isr)
	case PortBNRY:
		return uint32(c.bnry)
	case PortData:
		var v uint32
		for i := 0; i < size; i++ {
			v |= uint32(c.remoteRead()) << (8 * i)
		}
		return v
	default:
		return 0
	}
}

// IOWrite implements pci.Device.
func (c *Card) IOWrite(bar int, off uint64, size int, v uint32) {
	b := uint8(v)
	switch off {
	case PortCmd:
		c.page1 = v&CmdPage1 != 0
		if v&CmdStop != 0 {
			c.started = false
		}
		if v&CmdStart != 0 {
			c.started = true
		}
		if v&CmdTXP != 0 {
			c.transmit()
		}
	case PortPSTART:
		c.pstart = b
	case PortPSTOP:
		c.pstop = b
	case PortBNRY:
		c.bnry = b
	case PortTPSR:
		c.tpsr = b
	case PortTBCR0:
		c.tbcr = c.tbcr&0xFF00 | uint16(b)
	case PortTBCR1:
		c.tbcr = c.tbcr&0x00FF | uint16(b)<<8
	case PortISR:
		if c.page1 {
			c.curr = b
		} else {
			c.isr &^= b // write-one-to-clear
		}
	case PortRSAR0:
		c.rsar = c.rsar&0xFF00 | uint16(b)
	case PortRSAR1:
		c.rsar = c.rsar&0x00FF | uint16(b)<<8
	case PortRBCR0:
		c.rbcr = c.rbcr&0xFF00 | uint16(b)
	case PortRBCR1:
		c.rbcr = c.rbcr&0x00FF | uint16(b)<<8
	case PortData:
		for i := 0; i < size; i++ {
			c.remoteWrite(uint8(v >> (8 * i)))
		}
	case PortReset:
		c.reset()
	}
}

func (c *Card) reset() {
	c.started = false
	c.isr = 0
	c.page1 = false
	c.rsar, c.rbcr = 0, 0
}

// remoteRead returns the next byte of the remote-DMA window: the PROM below
// SRAMBase, packet SRAM above it.
func (c *Card) remoteRead() uint8 {
	if c.rbcr == 0 {
		return 0xFF
	}
	var b uint8
	if c.rsar < SRAMBase {
		b = c.prom[int(c.rsar)%len(c.prom)]
	} else if int(c.rsar)-SRAMBase < SRAMSize {
		b = c.sram[int(c.rsar)-SRAMBase]
	}
	c.rsar++
	c.rbcr--
	return b
}

func (c *Card) remoteWrite(b uint8) {
	if c.rbcr == 0 {
		return
	}
	if c.rsar >= SRAMBase && int(c.rsar)-SRAMBase < SRAMSize {
		c.sram[int(c.rsar)-SRAMBase] = b
	}
	c.rsar++
	c.rbcr--
}

// transmit sends tbcr bytes starting at page tpsr. The transmitter is busy
// for the frame's wire time: a TXP issued while a previous transmit is in
// flight queues behind it, so back-to-back transmits serialise at the
// card's 10 Mbit/s rate and PTX completions pace the driver honestly.
func (c *Card) transmit() {
	if !c.started || c.link == nil {
		return
	}
	start := int(c.tpsr)*PageSize - SRAMBase
	n := int(c.tbcr)
	if start < 0 || n <= 0 || start+n > SRAMSize || n > ethlink.MaxFrame {
		c.isr |= IsrPTX
		c.raise()
		return
	}
	frame := make([]byte, n)
	copy(frame, c.sram[start:start+n])
	begin := c.txBusyUntil
	if now := c.loop.Now(); begin < now {
		begin = now
	}
	c.txBusyUntil = begin + TxTime(n)
	c.loop.At(c.txBusyUntil, func() {
		if c.link.Send(c.side, frame) == nil {
			c.TxPackets++
		}
		c.isr |= IsrPTX
		c.raise()
	})
}

// LinkDeliver implements ethlink.Endpoint: store the frame into the receive
// ring with the 4-byte NE2000 header and advance CURR.
func (c *Card) LinkDeliver(frame []byte) {
	if !c.started {
		return
	}
	pages := (len(frame) + 4 + PageSize - 1) / PageSize
	next := c.curr + uint8(pages)
	if next >= c.pstop {
		next = c.pstart + (next - c.pstop)
	}
	// Overrun when the write would pass BNRY.
	if c.wouldOverrun(pages) {
		c.RxDrops++
		c.isr |= IsrOVW
		c.raise()
		return
	}
	total := len(frame) + 4
	hdr := []byte{0x01, next, byte(total), byte(total >> 8)}
	c.writeRing(int(c.curr)*PageSize-SRAMBase, append(hdr, frame...))
	c.curr = next
	c.RxPackets++
	c.isr |= IsrPRX
	c.raise()
}

func (c *Card) wouldOverrun(pages int) bool {
	ringPages := int(c.pstop - c.pstart)
	if ringPages <= 0 {
		return true
	}
	used := (int(c.curr) - int(c.bnry) + ringPages) % ringPages
	return used+pages >= ringPages
}

// writeRing copies data into the SRAM ring with wraparound.
func (c *Card) writeRing(off int, data []byte) {
	ringStart := int(c.pstart)*PageSize - SRAMBase
	ringEnd := int(c.pstop)*PageSize - SRAMBase
	for i, b := range data {
		pos := off + i
		if pos >= ringEnd {
			pos = ringStart + (pos - ringEnd)
		}
		if pos >= 0 && pos < SRAMSize {
			c.sram[pos] = b
		}
	}
}

func (c *Card) raise() { c.RaiseMSI() }
