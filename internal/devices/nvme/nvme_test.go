package nvme

import (
	"bytes"
	"testing"

	"sud/internal/hw"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// rig is a bare-metal harness: controller attached to the fabric with a
// passthrough IOMMU domain, queues programmed directly (no driver).
type rig struct {
	m *hw.Machine
	c *Ctrl

	asq, acq mem.Addr
	aTail    int
	aHead    int
	aPhase   bool
	aCID     uint16
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	c := New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, p)
	c.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
	m.AttachDevice(c)
	dom := m.IOMMU.NewDomain()
	dom.Passthrough = true
	m.IOMMU.Attach(c.BDF(), dom)

	r := &rig{m: m, c: c, aPhase: true}
	alloc := func(pages int) mem.Addr {
		a, ok := m.Alloc.AllocPages(pages)
		if !ok {
			t.Fatal("out of memory")
		}
		return a
	}
	r.asq, r.acq = alloc(1), alloc(1)
	c.MMIOWrite(0, RegAQA, 4, uint64(15|15<<16))
	c.MMIOWrite(0, RegASQL, 4, uint64(uint32(r.asq)))
	c.MMIOWrite(0, RegASQH, 4, uint64(r.asq>>32))
	c.MMIOWrite(0, RegACQL, 4, uint64(uint32(r.acq)))
	c.MMIOWrite(0, RegACQH, 4, uint64(r.acq>>32))
	c.MMIOWrite(0, RegCC, 4, CcEnable)
	if c.MMIORead(0, RegCSTS, 4)&CstsReady == 0 {
		t.Fatal("controller not ready after CC.EN")
	}
	return r
}

func (r *rig) admin(t *testing.T, sqe []byte) uint16 {
	t.Helper()
	r.aCID++
	putLE16(sqe[2:4], r.aCID)
	r.m.Mem.MustWrite(r.asq+mem.Addr(r.aTail*SQESize), sqe)
	r.aTail = (r.aTail + 1) % 16
	r.c.MMIOWrite(0, SQDoorbell(0), 4, uint64(r.aTail))

	cqe := make([]byte, CQESize)
	if err := r.m.Mem.Read(r.acq+mem.Addr(r.aHead*CQESize), cqe); err != nil {
		t.Fatal(err)
	}
	st := le16(cqe[14:16])
	if (st&1 != 0) != r.aPhase {
		t.Fatalf("admin completion missing (phase %x)", st)
	}
	r.aHead = (r.aHead + 1) % 16
	if r.aHead == 0 {
		r.aPhase = !r.aPhase
	}
	r.c.MMIOWrite(0, CQDoorbell(0), 4, uint64(r.aHead))
	return st >> 1
}

func (r *rig) createPair(t *testing.T, qid int, sqBase, cqBase mem.Addr, entries int) {
	t.Helper()
	sqe := make([]byte, SQESize)
	sqe[0] = AdminCreateIOCQ
	putLE64(sqe[24:32], uint64(cqBase))
	putLE16(sqe[40:42], uint16(qid))
	putLE16(sqe[42:44], uint16(entries-1))
	if st := r.admin(t, sqe); st != StatusOK {
		t.Fatalf("create CQ %d: status %d", qid, st)
	}
	sqe = make([]byte, SQESize)
	sqe[0] = AdminCreateIOSQ
	putLE64(sqe[24:32], uint64(sqBase))
	putLE16(sqe[40:42], uint16(qid))
	putLE16(sqe[42:44], uint16(entries-1))
	putLE16(sqe[44:46], uint16(qid))
	if st := r.admin(t, sqe); st != StatusOK {
		t.Fatalf("create SQ %d: status %d", qid, st)
	}
}

func TestIdentifyReportsGeometry(t *testing.T) {
	r := newRig(t, MultiQueueParams(4))
	page, ok := r.m.Alloc.AllocPages(1)
	if !ok {
		t.Fatal("oom")
	}
	sqe := make([]byte, SQESize)
	sqe[0] = AdminIdentify
	putLE64(sqe[24:32], uint64(page))
	if st := r.admin(t, sqe); st != StatusOK {
		t.Fatalf("identify: status %d", st)
	}
	out := make([]byte, IdentifyLen)
	if err := r.m.Mem.Read(page, out); err != nil {
		t.Fatal(err)
	}
	if got := le64(out[0:8]); got != r.c.blocks {
		t.Fatalf("identify blocks = %d, want %d", got, r.c.blocks)
	}
	if got := le32(out[8:12]); got != BlockSize {
		t.Fatalf("identify block size = %d", got)
	}
	if got := le16(out[12:14]); got != 4 {
		t.Fatalf("identify IO queues = %d, want 4", got)
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// submitIO writes one I/O SQE and rings the doorbell.
func (r *rig) submitIO(t *testing.T, qid int, slot int, sqBase mem.Addr, op byte, cid uint16, prp1 mem.Addr, lba uint64) {
	t.Helper()
	sqe := make([]byte, SQESize)
	sqe[0] = op
	putLE16(sqe[2:4], cid)
	putLE64(sqe[24:32], uint64(prp1))
	putLE64(sqe[40:48], lba)
	r.m.Mem.MustWrite(sqBase+mem.Addr(slot*SQESize), sqe)
	r.c.MMIOWrite(0, SQDoorbell(qid), 4, uint64(slot+1))
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, DefaultParams())
	alloc := func(pages int) mem.Addr {
		a, ok := r.m.Alloc.AllocPages(pages)
		if !ok {
			t.Fatal("oom")
		}
		return a
	}
	sqb, cqb, buf := alloc(1), alloc(1), alloc(1)
	r.createPair(t, 1, sqb, cqb, 8)

	pattern := bytes.Repeat([]byte{0xA7}, BlockSize)
	r.m.Mem.MustWrite(buf, pattern)
	r.submitIO(t, 1, 0, sqb, CmdWrite, 7, buf, 3)
	r.m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(r.c.PeekMedia(3), pattern) {
		t.Fatal("write did not reach media")
	}

	// Read it back into a scratch page and check the CQE.
	scratch := alloc(1)
	r.submitIO(t, 1, 1, sqb, CmdRead, 8, scratch, 3)
	r.m.Loop.RunFor(sim.Millisecond)
	got := make([]byte, BlockSize)
	if err := r.m.Mem.Read(scratch, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatal("read returned wrong data")
	}
	cqe := make([]byte, CQESize)
	if err := r.m.Mem.Read(cqb+CQESize, cqe); err != nil {
		t.Fatal(err)
	}
	if cid := le16(cqe[12:14]); cid != 8 {
		t.Fatalf("CQE cid = %d, want 8", cid)
	}
	if st := le16(cqe[14:16]); st>>1 != StatusOK || st&1 == 0 {
		t.Fatalf("CQE status = %#x", st)
	}
	// The bare rig never programs the MSI capability, so deliveries are
	// suppressed — but the completion must have attempted an interrupt.
	if r.c.InterruptsRaised+r.c.InterruptsSuppressedBy == 0 {
		t.Fatal("no completion interrupt attempted")
	}
}

func TestLBAOutOfRangeRejectedBeforeDMA(t *testing.T) {
	r := newRig(t, DefaultParams())
	alloc := func() mem.Addr {
		a, ok := r.m.Alloc.AllocPages(1)
		if !ok {
			t.Fatal("oom")
		}
		return a
	}
	sqb, cqb, buf := alloc(), alloc(), alloc()
	r.createPair(t, 1, sqb, cqb, 8)

	faults := r.c.DMAFaults
	r.submitIO(t, 1, 0, sqb, CmdWrite, 1, buf, r.c.blocks+1000)
	r.m.Loop.RunFor(sim.Millisecond)
	cqe := make([]byte, CQESize)
	if err := r.m.Mem.Read(cqb, cqe); err != nil {
		t.Fatal(err)
	}
	if st := le16(cqe[14:16]) >> 1; st != StatusLBARange {
		t.Fatalf("status = %d, want LBA-range reject", st)
	}
	if r.c.LBARejects != 1 {
		t.Fatalf("LBARejects = %d", r.c.LBARejects)
	}
	// The reject happens before any data DMA: no new payload faults, and
	// media is untouched.
	if r.c.DMAFaults != faults {
		t.Fatalf("payload DMA attempted on rejected LBA (%d faults)", r.c.DMAFaults-faults)
	}
}

func TestQueueManagementClamps(t *testing.T) {
	r := newRig(t, MultiQueueParams(2))
	a, ok := r.m.Alloc.AllocPages(1)
	if !ok {
		t.Fatal("oom")
	}
	// qid beyond the exposed pair count must be rejected.
	sqe := make([]byte, SQESize)
	sqe[0] = AdminCreateIOCQ
	putLE64(sqe[24:32], uint64(a))
	putLE16(sqe[40:42], 3)
	putLE16(sqe[42:44], 7)
	if st := r.admin(t, sqe); st != StatusInvalidField {
		t.Fatalf("out-of-range qid accepted (status %d)", st)
	}
	// SQ naming a CQ that does not exist must be rejected.
	sqe = make([]byte, SQESize)
	sqe[0] = AdminCreateIOSQ
	putLE64(sqe[24:32], uint64(a))
	putLE16(sqe[40:42], 1)
	putLE16(sqe[42:44], 7)
	putLE16(sqe[44:46], 2)
	if st := r.admin(t, sqe); st != StatusNoQueue {
		t.Fatalf("SQ with missing CQ accepted (status %d)", st)
	}
	// Doorbells for queues never created are dropped and counted.
	before := r.c.BadDoorbells
	r.c.MMIOWrite(0, SQDoorbell(2), 4, 5)
	if r.c.BadDoorbells != before+1 {
		t.Fatal("doorbell for missing queue not counted")
	}
}

func TestMaskedCauseStaysLatched(t *testing.T) {
	// A completion on a masked CQ must stay latched while an unmasked
	// sibling's interrupt delivers, and fire when the mask clears —
	// clearing every pending cause on delivery would hang the masked
	// queue's requests.
	r := newRig(t, MultiQueueParams(2))
	alloc := func() mem.Addr {
		a, ok := r.m.Alloc.AllocPages(1)
		if !ok {
			t.Fatal("oom")
		}
		return a
	}
	sq1, cq1, sq2, cq2, buf := alloc(), alloc(), alloc(), alloc(), alloc()
	r.createPair(t, 1, sq1, cq1, 8)
	r.createPair(t, 2, sq2, cq2, 8)

	// Mask CQ 2 (under test) and the admin CQ: the bare rig never
	// enables the MSI capability, so the admin causes latched during
	// queue creation would otherwise drive extra delivery attempts.
	r.c.MMIOWrite(0, RegINTMS, 4, 1<<0|1<<2)
	base := r.c.InterruptsRaised + r.c.InterruptsSuppressedBy
	r.submitIO(t, 2, 0, sq2, CmdRead, 1, buf, 0)
	r.m.Loop.RunFor(sim.Millisecond)
	if attempts := r.c.InterruptsRaised + r.c.InterruptsSuppressedBy - base; attempts != 0 {
		t.Fatalf("masked CQ attempted %d interrupts", attempts)
	}
	// An unmasked sibling completes and delivers its own interrupt.
	r.submitIO(t, 1, 0, sq1, CmdRead, 2, buf, 1)
	r.m.Loop.RunFor(sim.Millisecond)
	before := r.c.InterruptsRaised + r.c.InterruptsSuppressedBy
	if before == 0 {
		t.Fatal("unmasked CQ raised nothing")
	}
	// Unmasking CQ 2 must fire its still-latched cause.
	r.c.MMIOWrite(0, RegINTMC, 4, 1<<2)
	if after := r.c.InterruptsRaised + r.c.InterruptsSuppressedBy; after == before {
		t.Fatal("latched cause lost: no interrupt attempt on unmask")
	}
}

func TestEnginesRunPerQueuePair(t *testing.T) {
	// Engine time serialises within a queue pair only: N commands spread
	// over two pairs drain in about half the time N commands on one pair
	// take. (A command executes when its engine slot arrives and paces the
	// queue's next command, so the difference shows in drain time.)
	const cmds = 8
	elapsed := func(spread bool) sim.Duration {
		r := newRig(t, MultiQueueParams(2))
		alloc := func() mem.Addr {
			a, ok := r.m.Alloc.AllocPages(1)
			if !ok {
				t.Fatal("oom")
			}
			return a
		}
		sq1, cq1, sq2, cq2, buf := alloc(), alloc(), alloc(), alloc(), alloc()
		r.createPair(t, 1, sq1, cq1, 16)
		r.createPair(t, 2, sq2, cq2, 16)
		start := r.m.Now()
		for i := 0; i < cmds; i++ {
			q, slot := 1, i
			if spread && i%2 == 1 {
				q = 2
			}
			if spread {
				slot = i / 2
			}
			r.submitIO(t, q, slot, map[int]mem.Addr{1: sq1, 2: sq2}[q], CmdRead, uint16(i), buf, uint64(i))
		}
		for r.c.ReadBlocks < cmds && r.m.Now()-start < sim.Second {
			r.m.Loop.RunFor(sim.Microsecond)
		}
		return r.m.Now() - start
	}
	spread := elapsed(true)
	serial := elapsed(false)
	if spread*3/2 >= serial {
		t.Fatalf("no queue parallelism: spread %v vs serial %v", spread, serial)
	}
}
