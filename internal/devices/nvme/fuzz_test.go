package nvme

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
)

// FuzzNVMeRegBank hammers the register and doorbell surface an untrusted
// driver controls: arbitrary writes over the configuration registers —
// including the write-cache control register — and the whole doorbell
// array, interleaved with arbitrary admin submission entries fetched from
// memory the fuzzer also controls. The controller must never panic, never
// run an engine against a queue that was not created, keep every doorbell
// value clamped inside its live ring, keep the volatile cache inside its
// modelled capacity with RegVWC reading back only its decoded bits, and
// reject out-of-range queue-management commands — the invariants the
// BlkRedirect and FlushLie attack rows rely on.
func FuzzNVMeRegBank(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(
		// CC enable, then a wild SQ0 doorbell value.
		[]byte{0x14, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x10, 0xFF, 0xFF, 0xFF, 0xFF},
		[]byte{AdminCreateIOSQ, 0, 1, 0},
	)
	f.Add(
		// Doorbells for queues that do not exist.
		[]byte{0x08, 0x10, 0x05, 0x00, 0x00, 0x00, 0x24, 0x10, 0x80, 0x00, 0x00, 0x00},
		[]byte{AdminCreateIOCQ, 0, 2, 0, 0xFF, 0xFF},
	)
	f.Add(
		// Scribbles over the write-cache control register, then a flush.
		[]byte{0x3C, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x3C, 0x00, 0x00, 0x00, 0x00, 0x00},
		[]byte{CmdFlush, 0, 1, 0},
	)
	f.Fuzz(func(t *testing.T, writes, sqes []byte) {
		m := hw.NewMachine(hw.DefaultPlatform())
		c := New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, CachedParams(MaxIOQueues, 8))
		c.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace|pci.CmdBusMaster)
		m.AttachDevice(c)
		dom := m.IOMMU.NewDomain()
		dom.Passthrough = true
		m.IOMMU.Attach(c.BDF(), dom)

		// A live admin queue seeded with fuzzer-controlled SQEs, so
		// doorbell scribbles can reach command execution.
		asq, ok1 := m.Alloc.AllocPages(1)
		acq, ok2 := m.Alloc.AllocPages(1)
		if !ok1 || !ok2 {
			t.Skip("oom")
		}
		for i := 0; i+1 <= len(sqes) && i < 16*SQESize; i += SQESize {
			end := i + SQESize
			if end > len(sqes) {
				end = len(sqes)
			}
			m.Mem.MustWrite(asq+mem.Addr(i), sqes[i:end])
		}
		c.MMIOWrite(0, RegAQA, 4, uint64(15|15<<16))
		c.MMIOWrite(0, RegASQL, 4, uint64(uint32(asq)))
		c.MMIOWrite(0, RegACQL, 4, uint64(uint32(acq)))
		c.MMIOWrite(0, RegCC, 4, CcEnable)

		// The register surface under attack: config block + the whole
		// doorbell array, with slack beyond it.
		const lo, hi = uint64(0), DoorbellBase + 2*(1+MaxIOQueues)*DoorbellStride + 0x100
		for i := 0; i+6 <= len(writes); i += 6 {
			off := lo + (uint64(writes[i])|uint64(writes[i+1])<<8)%(hi-lo)
			val := uint64(writes[i+2]) | uint64(writes[i+3])<<8 |
				uint64(writes[i+4])<<16 | uint64(writes[i+5])<<24
			c.MMIOWrite(0, off&^3, 4, val)
		}
		m.Loop.RunFor(sim.Millisecond)

		// Every live doorbell register reads back inside its ring; no
		// engine may be running against a queue that does not exist.
		for q := 0; q <= MaxIOQueues; q++ {
			if c.sq[q].created {
				if v := uint32(c.MMIORead(0, SQDoorbell(q), 4)); v >= c.sq[q].size {
					t.Fatalf("SQ%d doorbell %d escaped ring of %d", q, v, c.sq[q].size)
				}
			}
			if c.cq[q].created {
				if v := uint32(c.MMIORead(0, CQDoorbell(q), 4)); v >= c.cq[q].size {
					t.Fatalf("CQ%d doorbell %d escaped ring of %d", q, v, c.cq[q].size)
				}
			}
			if q > 0 && c.engineActive[q] && !c.sq[q].created {
				t.Fatalf("engine %d active without a created queue", q)
			}
		}
		// The volatile cache never exceeds its modelled capacity, and
		// RegVWC reads back only decoded bits: the enable flag plus the
		// (clamped-by-construction) occupancy.
		if c.DirtyBlocks() > c.CacheCapacity() {
			t.Fatalf("cache holds %d blocks, capacity %d", c.DirtyBlocks(), c.CacheCapacity())
		}
		if v := c.MMIORead(0, RegVWC, 4); v&^uint64(VwcEnable) != uint64(c.DirtyBlocks())<<16 {
			t.Fatalf("RegVWC reads %#x with %d dirty blocks", v, c.DirtyBlocks())
		}
	})
}
