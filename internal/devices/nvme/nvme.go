// Package nvme models an NVMe-lite storage controller at register level: an
// admin submission/completion queue pair plus up to MaxIOQueues I/O queue
// pairs, each behind its own doorbell in the BAR0 doorbell array, with
// 64-byte submission entries and 16-byte phase-tagged completion entries
// fetched and written back via DMA — so a driver bug (or attack) that
// programs a bad queue base or PRP produces a real IOMMU fault. The nvmed
// driver in internal/drivers/nvmed programs it the way the Linux NVMe driver
// programs real silicon: through BAR0 registers, admin commands and
// in-memory queue rings.
//
// The per-queue design is the point: like real NVMe, every I/O queue pair
// has its own doorbells and its own command engine, so queues make progress
// in parallel — the per-command engine and media time serialise within a
// queue, not across queues. That is what the multi-queue uchan transport
// scales against.
//
// The model is the storage surface SUD's confinement mechanisms are
// exercised against: the register decode clamps out-of-range doorbells and
// LBAs (§3.2.1's "validate everything the driver programs" applied at the
// device), all ring and payload traffic moves by DMA through the process's
// IOMMU domain (§3.2, Figure 9), and a controller reset (CC enable 1→0)
// clears every queue — which is what makes driver bring-up idempotent and
// shadow-driver restart (§2, §5.2) possible after a kill -9.
package nvme

import (
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/trace"
)

// PCI identity: the QEMU NVMe controller ID, class = mass storage.
const (
	VendorID = 0x1B36
	DeviceID = 0x0010
)

// Register offsets in BAR0 (a condensed NVMe 1.x map).
const (
	// RegCAP is the read-only capability register (low dword): bits
	// [0:16) MQES (max queue entries, 0's based), bits [16:20) the
	// number of I/O queue pairs the controller exposes — our stand-in
	// for the Set Features "Number of Queues" negotiation.
	RegCAP = 0x0000
	// RegVS is the version register.
	RegVS = 0x0008
	// RegINTMS/RegINTMC set/clear bits in the interrupt mask (write-1s);
	// bit q masks completions of CQ q (bit 0 = admin CQ).
	RegINTMS = 0x000C
	RegINTMC = 0x0010
	// RegCC is controller configuration; writing CcEnable brings the
	// controller up, clearing it resets every queue.
	RegCC = 0x0014
	// RegCSTS is controller status; CstsReady reflects CC enable.
	RegCSTS = 0x001C
	// RegAQA holds the admin queue sizes (0's based): bits [0:12) the
	// admin SQ size, bits [16:28) the admin CQ size.
	RegAQA = 0x0024
	// RegASQL/H and RegACQL/H hold the admin SQ/CQ base addresses.
	RegASQL = 0x0028
	RegASQH = 0x002C
	RegACQL = 0x0030
	RegACQH = 0x0034
	// RegINTCOAL is the interrupt-coalescing interval in 256 ns units
	// (the register stand-in for NVMe's Interrupt Coalescing feature):
	// at most one completion MSI per interval, further completions
	// riding the deferred message. 0 disables coalescing.
	RegINTCOAL = 0x0038
	// RegVWC is the volatile-write-cache control register (the register
	// stand-in for NVMe's Set Features / Volatile Write Cache): bit 0
	// enables the cache. Writes on a part without a cache are ignored;
	// reads report the enable bit plus the current dirty-block count in
	// bits [16:32) — always clamped to the modelled capacity, whatever
	// the driver scribbles here.
	RegVWC = 0x003C

	// DoorbellBase is the start of the doorbell array: queue q's SQ tail
	// doorbell lives at DoorbellBase + (2q)·DoorbellStride and its CQ
	// head doorbell at DoorbellBase + (2q+1)·DoorbellStride. Queue 0 is
	// the admin queue.
	DoorbellBase   = 0x1000
	DoorbellStride = 4

	// BARSize is the size of BAR0.
	BARSize = 0x4000
)

// CC/CSTS bits.
const (
	CcEnable  = 1 << 0
	CstsReady = 1 << 0
)

// VwcEnable is RegVWC bit 0: volatile write cache enabled.
const VwcEnable = 1 << 0

// Queue entry sizes, as on real NVMe.
const (
	SQESize = 64
	CQESize = 16
)

// Submission-entry layout (byte offsets inside the 64-byte SQE; a condensed
// rendition of the NVMe command format, little-endian):
//
//	[0]      opcode
//	[2:4)    CID (command identifier)
//	[24:32)  PRP1 — data pointer, first page
//	[32:40)  PRP2 — second page when the buffer crosses a page boundary
//	[40:48)  SLBA (I/O) or queue-management dword: qid [40:42),
//	         qsize-1 [42:44), cqid [44:46) (admin create/delete)
//	[48:50)  NLB, 0's based (I/O commands)
//	[50]     I/O flags: bit 0 = FUA (force unit access — the write
//	         bypasses the volatile cache straight to media, NVMe's
//	         CDW12 FUA bit condensed to a byte)
const (
	sqeOpcode = 0
	sqeCID    = 2
	sqePRP1   = 24
	sqePRP2   = 32
	sqeSLBA   = 40
	sqeQID    = 40
	sqeQSize  = 42
	sqeCQID   = 44
	sqeNLB    = 48
	sqeFlags  = 50
)

// SqeFlagFUA is the FUA bit in the SQE's I/O flags byte.
const SqeFlagFUA = 1 << 0

// Admin opcodes (NVMe values).
const (
	AdminDeleteIOSQ = 0x00
	AdminCreateIOSQ = 0x01
	AdminDeleteIOCQ = 0x04
	AdminCreateIOCQ = 0x05
	AdminIdentify   = 0x06
)

// I/O opcodes (NVMe values).
const (
	CmdFlush = 0x00
	CmdWrite = 0x01
	CmdRead  = 0x02
)

// Completion status codes, stored in CQE bits [1:16) above the phase tag.
const (
	StatusOK            = 0
	StatusInvalidOpcode = 1
	StatusInvalidField  = 2
	StatusLBARange      = 3
	StatusQueueExists   = 4
	StatusNoQueue       = 5
)

// Identify-page layout: the controller DMA-writes its geometry into the
// caller's PRP1 page.
//
//	[0:8)   capacity in logical blocks
//	[8:12)  logical block size in bytes
//	[12:14) I/O queue pairs available
//	[14]    volatile write cache present (NVMe's Identify VWC bit)
const (
	idBlocks   = 0
	idBlkSize  = 8
	idIOQueues = 12
	idVWC      = 14
	// IdentifyLen is how many bytes the Identify command writes.
	IdentifyLen = 16
)

// BlockSize is the logical block size: one 4 KiB page, so a single-block
// transfer is one PRP page (plus PRP2 when the buffer is not page-aligned).
const BlockSize = 4096

// MaxIOQueues is the most I/O queue pairs the controller exposes.
const MaxIOQueues = 4

// MaxQueueEntries bounds SQ/CQ ring sizes (MQES).
const MaxQueueEntries = 256

// Params tunes the controller's internal engines. Per-command costs
// serialise within one I/O queue pair only; the admin queue is control
// plane and executes inline.
type Params struct {
	// CmdOverhead is the fixed per-command engine cost (SQE fetch
	// scheduling, completion posting), on top of media and DMA time.
	CmdOverhead sim.Duration
	// MediaPerByte is the flash array's per-byte access time.
	MediaPerByte float64
	// IOQueues is the number of I/O queue pairs (1..MaxIOQueues; 0
	// means 1).
	IOQueues int
	// Blocks is the media capacity in logical blocks (0 picks 4096,
	// a 16 MiB device).
	Blocks uint64
	// CacheBlocks is the volatile write cache capacity in logical
	// blocks. 0 models the always-durable part every earlier PR
	// measured (writes land on media, CmdFlush is a fixed-cost no-op).
	// With a cache, non-FUA writes land in volatile RAM and become
	// durable only on eviction, CmdFlush, or FUA — and PowerFail
	// discards whatever was not yet drained.
	CacheBlocks int
}

// DefaultParams models a single-queue NVMe-lite part: ~2.5 µs command
// overhead plus ~1.6 µs media time per 4 KiB block (~240 Kops/s per queue
// ceiling before DMA time).
func DefaultParams() Params {
	return Params{
		CmdOverhead:  2500 * sim.Nanosecond,
		MediaPerByte: 0.4,
	}
}

// MultiQueueParams is DefaultParams with queues I/O queue pairs.
func MultiQueueParams(queues int) Params {
	p := DefaultParams()
	p.IOQueues = queues
	return p
}

// CachedParams is MultiQueueParams with a volatile write cache of
// cacheBlocks logical blocks.
func CachedParams(queues, cacheBlocks int) Params {
	p := MultiQueueParams(queues)
	p.CacheBlocks = cacheBlocks
	return p
}

// sqState is one submission queue as the controller sees it.
type sqState struct {
	created bool
	base    mem.Addr
	size    uint32 // entries
	head    uint32 // controller-side consumer index
	cqid    int
}

// cqState is one completion queue as the controller sees it.
type cqState struct {
	created bool
	base    mem.Addr
	size    uint32
	tail    uint32 // controller-side producer index
	phase   bool   // current phase tag (starts true, flips per wrap)
}

// Ctrl is one NVMe-lite controller instance.
type Ctrl struct {
	pci.FuncBase

	loop   *sim.Loop
	params Params

	regs  map[uint64]uint32
	ready bool
	tr    *trace.Tracer

	media  []byte
	blocks uint64

	// Volatile write cache: dirty blocks not yet on media, plus their
	// arrival order (FIFO eviction). The cache is device RAM — it
	// survives a controller reset and a driver kill, and is lost only
	// on PowerFail. cacheOrder never holds an LBA twice.
	cache      map[uint64][]byte
	cacheOrder []uint64

	// Queue 0 is the admin pair; 1..MaxIOQueues are I/O pairs.
	sq [1 + MaxIOQueues]sqState
	cq [1 + MaxIOQueues]cqState

	// Per-I/O-queue engine state (index by qid; 0 unused — admin runs
	// inline).
	engineActive    [1 + MaxIOQueues]bool
	engineBusyUntil [1 + MaxIOQueues]sim.Time

	// intPending latches per-CQ completion causes awaiting MSI delivery.
	intPending uint32
	// Interrupt coalescing state (RegINTCOAL).
	lastIntAt   sim.Time
	intDeferred bool

	// Counters.
	Commands               uint64
	ReadBlocks             uint64
	WriteBlocks            uint64
	DMAFaults              uint64
	LBARejects             uint64
	BadCommands            uint64 // malformed/out-of-range SQEs rejected
	BadDoorbells           uint64 // doorbell writes outside any live queue
	SQDoorbellWrites       uint64 // I/O SQ tail MMIO arrivals (coalescing metric)
	CQOverruns             uint64
	InterruptsRaised       uint64
	InterruptsSuppressedBy uint64

	// Durability counters — the ground truth the FlushLie attack row and
	// the crash-consistency harness attribute lies against: what the
	// driver told the kernel versus what actually reached the device.
	Flushes        uint64 // CmdFlush commands executed
	FlushedBlocks  uint64 // dirty blocks drained by CmdFlush
	FUAWrites      uint64 // writes carrying the FUA flag
	CacheEvictions uint64 // dirty blocks drained by capacity eviction
	CacheHits      uint64 // reads served from the dirty cache
	PowerFails     uint64 // PowerFail invocations
	LostBlocks     uint64 // dirty blocks discarded by the last PowerFail
}

// New creates an NVMe-lite controller with the given identity and BAR0
// base. It must then be attached to the fabric via Machine.AttachDevice.
func New(loop *sim.Loop, bdf pci.BDF, barBase uint64, p Params) *Ctrl {
	if p.Blocks == 0 {
		p.Blocks = 4096
	}
	c := &Ctrl{
		loop:   loop,
		params: p,
		regs:   make(map[uint64]uint32),
		blocks: p.Blocks,
		media:  make([]byte, int(p.Blocks)*BlockSize),
		cache:  make(map[uint64][]byte),
	}
	cfg := pci.NewConfigSpace(VendorID, DeviceID, 0x01) // class = mass storage
	cfg.SetBAR(0, barBase, BARSize, false)
	cfg.AddMSICapability()
	c.InitFunc(bdf, cfg)
	cfg.OnMSIChange = func() {
		if !cfg.MSI().Masked {
			c.maybeInterrupt()
		}
	}
	c.reset()
	return c
}

// SetTracer hands the controller the machine's tracing plane (called by
// Machine.AttachDevice); engine start/complete span events are keyed by
// (I/O queue, CID).
func (c *Ctrl) SetTracer(tr *trace.Tracer) { c.tr = tr }

// Geometry reports the modelled media shape.
func (c *Ctrl) Geometry() (blockSize int, blocks uint64) { return BlockSize, c.blocks }

// FlushGroundTruth reports the device-side halves of flush-lie
// attribution: CmdFlush commands actually executed and writes that carried
// the FUA flag. The supervisor's policy plane compares these against the
// proxy's issued/acked counters; a driver that acked more barriers than
// the device executed has lied about durability.
func (c *Ctrl) FlushGroundTruth() (flushes, fuaWrites uint64) { return c.Flushes, c.FUAWrites }

// SeedMedia fills block lba with data (test/harness backdoor standing in
// for a factory image; real traffic goes through the queues).
func (c *Ctrl) SeedMedia(lba uint64, data []byte) {
	if lba >= c.blocks {
		return
	}
	copy(c.media[int(lba)*BlockSize:(int(lba)+1)*BlockSize], data)
}

// PeekMedia returns a copy of block lba (tests).
func (c *Ctrl) PeekMedia(lba uint64) []byte {
	if lba >= c.blocks {
		return nil
	}
	out := make([]byte, BlockSize)
	copy(out, c.media[int(lba)*BlockSize:])
	return out
}

func (c *Ctrl) reset() {
	for k := range c.regs {
		delete(c.regs, k)
	}
	c.ready = false
	c.intPending = 0
	for i := range c.sq {
		c.sq[i] = sqState{}
		c.cq[i] = cqState{}
	}
	// The write cache is device RAM: a controller reset (and thus a
	// driver restart) does not lose it — only PowerFail does. The enable
	// bit returns to its power-on default.
	if c.params.CacheBlocks > 0 {
		c.regs[RegVWC] = VwcEnable
	}
}

// cacheOn reports whether writes currently land in the volatile cache.
func (c *Ctrl) cacheOn() bool {
	return c.params.CacheBlocks > 0 && c.regs[RegVWC]&VwcEnable != 0
}

// DirtyBlocks reports the volatile-cache occupancy: acked writes that
// would be lost by a power failure right now.
func (c *Ctrl) DirtyBlocks() int { return len(c.cache) }

// CacheCapacity reports the modelled cache size in blocks.
func (c *Ctrl) CacheCapacity() int { return c.params.CacheBlocks }

// PowerFail models power loss: every un-flushed cache block is discarded
// and the controller resets. Media contents persist. The crash-consistency
// harness calls this between kill -9 and the verifying restart; LostBlocks
// records how much acked-but-volatile data the failure destroyed.
func (c *Ctrl) PowerFail() {
	c.PowerFails++
	c.LostBlocks = uint64(len(c.cache))
	c.cache = make(map[uint64][]byte)
	c.cacheOrder = c.cacheOrder[:0]
	cc := c.regs[RegCC]
	c.reset()
	c.regs[RegCC] = cc &^ CcEnable
}

// drainOne writes the oldest dirty cache block to media and returns its
// size in bytes (0 when the cache is clean).
func (c *Ctrl) drainOne() int {
	if len(c.cacheOrder) == 0 {
		return 0
	}
	lba := c.cacheOrder[0]
	c.cacheOrder = c.cacheOrder[1:]
	data, ok := c.cache[lba]
	if !ok {
		return 0
	}
	delete(c.cache, lba)
	copy(c.media[int(lba)*BlockSize:], data)
	return len(data)
}

// cacheInsert stages one block in the volatile cache, evicting the oldest
// entry to media when the capacity is reached. It returns the extra media
// bytes the eviction moved (charged to the triggering command's engine).
func (c *Ctrl) cacheInsert(lba uint64, data []byte) (evicted int) {
	if _, dirty := c.cache[lba]; dirty {
		c.cache[lba] = data // overwrite in place, order unchanged
		return 0
	}
	if len(c.cache) >= c.params.CacheBlocks {
		evicted = c.drainOne()
		if evicted > 0 {
			c.CacheEvictions++
		}
	}
	c.cache[lba] = data
	c.cacheOrder = append(c.cacheOrder, lba)
	return evicted
}

func (c *Ctrl) ioQueues() int {
	q := c.params.IOQueues
	if q < 1 {
		return 1
	}
	if q > MaxIOQueues {
		return MaxIOQueues
	}
	return q
}

// capWord assembles the read-only CAP register.
func (c *Ctrl) capWord() uint32 {
	return uint32(MaxQueueEntries-1) | uint32(c.ioQueues())<<16
}

// --- register decode --------------------------------------------------------

// MMIORead implements pci.Device.
func (c *Ctrl) MMIORead(bar int, off uint64, size int) uint64 {
	if bar != 0 {
		return ^uint64(0)
	}
	switch off {
	case RegCAP:
		return uint64(c.capWord())
	case RegVS:
		return 0x00010400 // 1.4
	case RegCSTS:
		if c.ready {
			return CstsReady
		}
		return 0
	case RegINTMS, RegINTMC:
		return uint64(c.regs[RegINTMS])
	case RegVWC:
		// Enable bit plus occupancy; the count is clamped by construction
		// (the cache never exceeds CacheBlocks), so a driver reading this
		// register cannot observe an impossible state.
		return uint64(c.regs[RegVWC]&VwcEnable) | uint64(len(c.cache))<<16
	default:
		return uint64(c.regs[off])
	}
}

// MMIOWrite implements pci.Device.
func (c *Ctrl) MMIOWrite(bar int, off uint64, size int, v uint64) {
	if bar != 0 {
		return
	}
	val := uint32(v)
	switch off {
	case RegCC:
		was := c.regs[RegCC]
		c.regs[RegCC] = val
		if val&CcEnable != 0 && was&CcEnable == 0 {
			c.enable()
		} else if val&CcEnable == 0 && was&CcEnable != 0 {
			cc := c.regs[RegCC] // controller reset clears all queue state
			c.reset()
			c.regs[RegCC] = cc &^ CcEnable
		}
	case RegINTMS:
		c.regs[RegINTMS] |= val
	case RegINTMC:
		c.regs[RegINTMS] &^= val
		c.maybeInterrupt()
	case RegAQA, RegASQL, RegASQH, RegACQL, RegACQH:
		c.regs[off] = val
	case RegVWC:
		// Only the enable bit is writable, and only on a part that has a
		// cache — everything else a driver scribbles here is dropped at
		// the decode, like the doorbell clamp.
		if c.params.CacheBlocks > 0 {
			c.regs[RegVWC] = val & VwcEnable
		}
	default:
		if qid, isCQ, ok := doorbellFor(off); ok {
			c.doorbell(qid, isCQ, val)
			return
		}
		c.regs[off] = val
	}
}

// doorbellFor maps a register offset into the doorbell array: (queue id,
// CQ-head?) — ok for any offset inside the array.
func doorbellFor(off uint64) (qid int, isCQ bool, ok bool) {
	if off < DoorbellBase || off >= DoorbellBase+uint64(2*(1+MaxIOQueues))*DoorbellStride {
		return 0, false, false
	}
	idx := (off - DoorbellBase) / DoorbellStride
	return int(idx / 2), idx%2 == 1, true
}

// SQDoorbell returns queue qid's submission tail doorbell offset.
func SQDoorbell(qid int) uint64 { return DoorbellBase + uint64(2*qid)*DoorbellStride }

// CQDoorbell returns queue qid's completion head doorbell offset.
func CQDoorbell(qid int) uint64 { return DoorbellBase + uint64(2*qid+1)*DoorbellStride }

// doorbell services one doorbell write. Values are clamped into the live
// ring — an out-of-range tail from a buggy or malicious driver degrades to
// a valid index instead of wild fetch state, and doorbells for queues that
// do not exist are dropped and counted.
func (c *Ctrl) doorbell(qid int, isCQ bool, val uint32) {
	if !c.ready {
		c.BadDoorbells++
		return
	}
	if isCQ {
		cq := &c.cq[qid]
		if !cq.created {
			c.BadDoorbells++
			return
		}
		c.regs[CQDoorbell(qid)] = val % cq.size
		// Freeing CQ space may unblock a stalled engine — any engine
		// whose SQ completes into this CQ (createSQ permits fan-in,
		// cqid != qid, as real NVMe does).
		for sqid := 1; sqid <= MaxIOQueues; sqid++ {
			if c.sq[sqid].created && c.sq[sqid].cqid == qid {
				c.kickEngine(sqid)
			}
		}
		return
	}
	sq := &c.sq[qid]
	if !sq.created {
		c.BadDoorbells++
		return
	}
	if qid != 0 {
		// Ground truth for the submit-side doorbell-coalescing metric:
		// I/O SQ tail MMIO arrivals (admin is control plane).
		c.SQDoorbellWrites++
	}
	c.regs[SQDoorbell(qid)] = val % sq.size
	if qid == 0 {
		// Admin commands are control plane: executed inline, no engine
		// time modelled.
		for c.sq[0].created && c.sq[0].head != c.regs[SQDoorbell(0)] {
			c.adminStep()
		}
		return
	}
	c.kickEngine(qid)
}

// --- queue plumbing ---------------------------------------------------------

func (c *Ctrl) enable() {
	aqa := c.regs[RegAQA]
	asqs := aqa&0xFFF + 1
	acqs := (aqa>>16)&0xFFF + 1
	if asqs > MaxQueueEntries {
		asqs = MaxQueueEntries
	}
	if acqs > MaxQueueEntries {
		acqs = MaxQueueEntries
	}
	c.sq[0] = sqState{
		created: true,
		base:    mem.Addr(uint64(c.regs[RegASQH])<<32 | uint64(c.regs[RegASQL])),
		size:    asqs,
		cqid:    0,
	}
	c.cq[0] = cqState{
		created: true,
		base:    mem.Addr(uint64(c.regs[RegACQH])<<32 | uint64(c.regs[RegACQL])),
		size:    acqs,
		phase:   true,
	}
	c.ready = true
}

// postCQE writes one completion entry to CQ cqid and latches its interrupt
// cause. It reports false when the CQ is full (the engine must stall). The
// writeback TLP is stamped with the CQ's stream tag — the ring belongs to
// that queue's sub-domain; the admin CQ (cqid 0) writes untagged.
func (c *Ctrl) postCQE(cqid int, sqid int, cid uint16, result uint32, status uint16) bool {
	cq := &c.cq[cqid]
	if !cq.created {
		return true // nowhere to complete to; drop silently like hardware
	}
	next := (cq.tail + 1) % cq.size
	if next == c.regs[CQDoorbell(cqid)] {
		c.CQOverruns++
		return false
	}
	var e [CQESize]byte
	putLE32(e[0:4], result)
	putLE16(e[8:10], uint16(c.sq[sqid].head))
	putLE16(e[10:12], uint16(sqid))
	putLE16(e[12:14], cid)
	st := status << 1
	if cq.phase {
		st |= 1
	}
	putLE16(e[14:16], st)
	if err := c.DMAWriteQ(cqid, cq.base+mem.Addr(cq.tail*CQESize), e[:]); err != nil {
		c.DMAFaults++
		return true
	}
	cq.tail = next
	if cq.tail == 0 {
		cq.phase = !cq.phase
	}
	c.intPending |= 1 << uint(cqid)
	c.maybeInterrupt()
	return true
}

// coalesceInterval returns the minimum gap between completion interrupts.
func (c *Ctrl) coalesceInterval() sim.Duration {
	return sim.Duration(c.regs[RegINTCOAL]) * 256
}

func (c *Ctrl) maybeInterrupt() {
	if c.intPending&^c.regs[RegINTMS] == 0 {
		return
	}
	// Interrupt coalescing: completions inside the interval aggregate
	// behind one deferred message, so a busy device interrupts at the
	// programmed rate, not once per command.
	now := c.loop.Now()
	gap := c.coalesceInterval()
	if gap > 0 && now-c.lastIntAt < gap {
		if !c.intDeferred {
			c.intDeferred = true
			c.loop.At(c.lastIntAt+gap, func() {
				c.intDeferred = false
				c.maybeInterrupt()
			})
		}
		return
	}
	// The cause stays latched until a message is actually delivered: with
	// the MSI masked (SUD masks re-raised interrupts until the driver
	// acks, §3.2.2) the unmask path re-fires via OnMSIChange.
	if c.RaiseMSI() {
		c.lastIntAt = now
		c.InterruptsRaised++
		// Only the unmasked causes were delivered; causes for masked
		// CQs stay latched until RegINTMC unmasks them.
		c.intPending &= c.regs[RegINTMS]
	} else {
		c.InterruptsSuppressedBy++
	}
}

// --- admin command execution -------------------------------------------------

func (c *Ctrl) adminStep() {
	sq := &c.sq[0]
	sqe, err := c.DMARead(sq.base+mem.Addr(sq.head*SQESize), SQESize)
	sq.head = (sq.head + 1) % sq.size
	if err != nil {
		c.DMAFaults++
		return
	}
	c.Commands++
	op := sqe[sqeOpcode]
	cid := le16(sqe[sqeCID : sqeCID+2])
	status := uint16(StatusOK)
	switch op {
	case AdminIdentify:
		var page [IdentifyLen]byte
		putLE64(page[idBlocks:idBlocks+8], c.blocks)
		putLE32(page[idBlkSize:idBlkSize+4], BlockSize)
		putLE16(page[idIOQueues:idIOQueues+2], uint16(c.ioQueues()))
		if c.params.CacheBlocks > 0 {
			page[idVWC] = 1
		}
		if err := c.DMAWrite(mem.Addr(le64(sqe[sqePRP1:sqePRP1+8])), page[:]); err != nil {
			c.DMAFaults++
			status = StatusInvalidField
		}
	case AdminCreateIOCQ:
		status = c.createCQ(sqe)
	case AdminCreateIOSQ:
		status = c.createSQ(sqe)
	case AdminDeleteIOCQ:
		status = c.deleteQueue(sqe, true)
	case AdminDeleteIOSQ:
		status = c.deleteQueue(sqe, false)
	default:
		c.BadCommands++
		status = StatusInvalidOpcode
	}
	c.postCQE(0, 0, cid, 0, status)
}

// qidOf decodes and bounds-checks the queue-management qid field.
func (c *Ctrl) qidOf(sqe []byte) (int, bool) {
	qid := int(le16(sqe[sqeQID : sqeQID+2]))
	if qid < 1 || qid > c.ioQueues() {
		return 0, false
	}
	return qid, true
}

func (c *Ctrl) createCQ(sqe []byte) uint16 {
	qid, ok := c.qidOf(sqe)
	if !ok {
		c.BadCommands++
		return StatusInvalidField
	}
	if c.cq[qid].created {
		c.BadCommands++
		return StatusQueueExists
	}
	size := uint32(le16(sqe[sqeQSize:sqeQSize+2])) + 1
	if size < 2 || size > MaxQueueEntries {
		c.BadCommands++
		return StatusInvalidField
	}
	c.cq[qid] = cqState{
		created: true,
		base:    mem.Addr(le64(sqe[sqePRP1 : sqePRP1+8])),
		size:    size,
		phase:   true,
	}
	c.regs[CQDoorbell(qid)] = 0
	return StatusOK
}

func (c *Ctrl) createSQ(sqe []byte) uint16 {
	qid, ok := c.qidOf(sqe)
	if !ok {
		c.BadCommands++
		return StatusInvalidField
	}
	if c.sq[qid].created {
		c.BadCommands++
		return StatusQueueExists
	}
	cqid := int(le16(sqe[sqeCQID : sqeCQID+2]))
	if cqid < 1 || cqid > c.ioQueues() || !c.cq[cqid].created {
		c.BadCommands++
		return StatusNoQueue
	}
	size := uint32(le16(sqe[sqeQSize:sqeQSize+2])) + 1
	if size < 2 || size > MaxQueueEntries {
		c.BadCommands++
		return StatusInvalidField
	}
	c.sq[qid] = sqState{
		created: true,
		base:    mem.Addr(le64(sqe[sqePRP1 : sqePRP1+8])),
		size:    size,
		cqid:    cqid,
	}
	c.regs[SQDoorbell(qid)] = 0
	return StatusOK
}

func (c *Ctrl) deleteQueue(sqe []byte, isCQ bool) uint16 {
	qid, ok := c.qidOf(sqe)
	if !ok {
		c.BadCommands++
		return StatusInvalidField
	}
	if isCQ {
		if !c.cq[qid].created {
			c.BadCommands++
			return StatusNoQueue
		}
		c.cq[qid] = cqState{}
	} else {
		if !c.sq[qid].created {
			c.BadCommands++
			return StatusNoQueue
		}
		c.sq[qid] = sqState{}
	}
	return StatusOK
}

// --- I/O command engines ------------------------------------------------------

func (c *Ctrl) kickEngine(qid int) {
	sq := &c.sq[qid]
	if c.engineActive[qid] || !sq.created || sq.head == c.regs[SQDoorbell(qid)] {
		return
	}
	c.engineActive[qid] = true
	start := c.engineBusyUntil[qid]
	if now := c.loop.Now(); start < now {
		start = now
	}
	c.loop.At(start, func() { c.ioStep(qid) })
}

// ioStep processes one I/O command on queue qid, then reschedules itself
// after the engine's command time. Queues step independently: engine and
// media time serialise within a queue only.
func (c *Ctrl) ioStep(qid int) {
	c.engineActive[qid] = false
	sq := &c.sq[qid]
	if !sq.created || sq.head == c.regs[SQDoorbell(qid)] {
		return
	}
	sqe, err := c.DMAReadQ(qid, sq.base+mem.Addr(sq.head*SQESize), SQESize)
	engine := c.params.CmdOverhead + sim.DMA(SQESize)
	if err != nil {
		c.DMAFaults++
		sq.head = (sq.head + 1) % sq.size
		c.finishIO(qid, engine)
		return
	}
	c.Commands++
	op := sqe[sqeOpcode]
	cid := le16(sqe[sqeCID : sqeCID+2])
	c.tr.Event(trace.ClassDev, qid, uint64(cid), trace.HopDevStart)
	status := uint16(StatusOK)

	switch op {
	case CmdFlush:
		// Drain the volatile cache to media with real drain time: one
		// media write per dirty block. On an always-durable part (or a
		// clean cache) this degenerates to the fixed-cost barrier every
		// earlier PR measured.
		drained := 0
		for len(c.cacheOrder) > 0 {
			n := c.drainOne()
			engine += sim.Duration(c.params.MediaPerByte * float64(n))
			if n > 0 {
				drained++
			}
		}
		c.Flushes++
		c.FlushedBlocks += uint64(drained)
	case CmdRead, CmdWrite:
		status = c.execRW(qid, sqe, op == CmdWrite, &engine)
	default:
		c.BadCommands++
		status = StatusInvalidOpcode
	}

	sq.head = (sq.head + 1) % sq.size
	if !c.postCQE(sq.cqid, qid, cid, 0, status) {
		// CQ full: the engine stalls with the command unconsumed; the CQ
		// head doorbell re-kicks processing once software frees entries.
		sq.head = (sq.head - 1 + sq.size) % sq.size
		now := c.loop.Now()
		if c.engineBusyUntil[qid] < now {
			c.engineBusyUntil[qid] = now
		}
		c.engineBusyUntil[qid] += engine
		return
	}
	c.tr.Event(trace.ClassDev, qid, uint64(cid), trace.HopDevComplete)
	c.finishIO(qid, engine)
}

// execRW performs one single-block read or write: LBA bounds are checked
// before any DMA (an out-of-range LBA is rejected with media untouched),
// and the data moves through PRP1/PRP2 — crossing into the PRP2 page when
// the buffer is not page-aligned, as NVMe PRPs do for 4 KiB transfers.
//
// With the volatile cache enabled, a non-FUA write lands in cache RAM (no
// media time; a capacity eviction drains the oldest block and charges its
// media time to this command) and a read is served from the cache when the
// dirty copy is newer than media. A FUA write — or any write with the
// cache absent or disabled — pays full media time and lands durable.
//
// All payload DMA carries qid as its stream tag: the PRPs a queue's SQE
// names are walked in that queue's IOMMU sub-domain, so a descriptor naming
// a sibling queue's buffer faults instead of reading it.
func (c *Ctrl) execRW(qid int, sqe []byte, write bool, engine *sim.Duration) uint16 {
	if nlb := le16(sqe[sqeNLB : sqeNLB+2]); nlb != 0 {
		// NVMe-lite: exactly one logical block per command.
		c.BadCommands++
		return StatusInvalidField
	}
	lba := le64(sqe[sqeSLBA : sqeSLBA+8])
	if lba >= c.blocks {
		c.LBARejects++
		return StatusLBARange
	}
	prp1 := mem.Addr(le64(sqe[sqePRP1 : sqePRP1+8]))
	prp2 := mem.Addr(le64(sqe[sqePRP2 : sqePRP2+8]))
	first := BlockSize - int(uint64(prp1)%mem.PageSize)
	if first > BlockSize {
		first = BlockSize
	}
	rest := BlockSize - first

	mediaOff := int(lba) * BlockSize
	if write {
		fua := sqe[sqeFlags]&SqeFlagFUA != 0
		cached := c.cacheOn() && !fua
		// Cached writes stage in a private buffer (the cache owns it);
		// direct writes — FUA, or no cache — land straight in media, so
		// the default configuration pays no staging copy.
		dst := c.media[mediaOff : mediaOff+BlockSize]
		if cached {
			dst = make([]byte, BlockSize)
		}
		chunk, err := c.DMAReadQ(qid, prp1, first)
		*engine += sim.DMA(first)
		if err != nil {
			c.DMAFaults++
			*engine += sim.Duration(c.params.MediaPerByte * BlockSize)
			return StatusInvalidField
		}
		copy(dst, chunk)
		if rest > 0 {
			chunk, err = c.DMAReadQ(qid, prp2, rest)
			*engine += sim.DMA(rest)
			if err != nil {
				c.DMAFaults++
				*engine += sim.Duration(c.params.MediaPerByte * BlockSize)
				return StatusInvalidField
			}
			copy(dst[first:], chunk)
		}
		if fua {
			c.FUAWrites++
		}
		if cached {
			evicted := c.cacheInsert(lba, dst)
			*engine += sim.Duration(c.params.MediaPerByte * float64(evicted))
		} else {
			*engine += sim.Duration(c.params.MediaPerByte * BlockSize)
			// A direct media write supersedes any older dirty copy: the
			// stale cache entry must not drain over it later.
			c.cacheDrop(lba)
		}
		c.WriteBlocks++
		return StatusOK
	}
	src := c.media[mediaOff : mediaOff+BlockSize]
	if dirty, ok := c.cache[lba]; ok {
		// The cache holds the newest copy; serving it costs no media time.
		src = dirty
		c.CacheHits++
	} else {
		*engine += sim.Duration(c.params.MediaPerByte * BlockSize)
	}
	if err := c.DMAWriteQ(qid, prp1, src[:first]); err != nil {
		c.DMAFaults++
		return StatusInvalidField
	}
	*engine += sim.DMA(first)
	if rest > 0 {
		if err := c.DMAWriteQ(qid, prp2, src[first:BlockSize]); err != nil {
			c.DMAFaults++
			return StatusInvalidField
		}
		*engine += sim.DMA(rest)
	}
	c.ReadBlocks++
	return StatusOK
}

// cacheDrop removes lba's dirty entry (superseded by a direct media write).
func (c *Ctrl) cacheDrop(lba uint64) {
	if _, ok := c.cache[lba]; !ok {
		return
	}
	delete(c.cache, lba)
	for i, l := range c.cacheOrder {
		if l == lba {
			c.cacheOrder = append(c.cacheOrder[:i], c.cacheOrder[i+1:]...)
			break
		}
	}
}

func (c *Ctrl) finishIO(qid int, engine sim.Duration) {
	now := c.loop.Now()
	if c.engineBusyUntil[qid] < now {
		c.engineBusyUntil[qid] = now
	}
	c.engineBusyUntil[qid] += engine
	sq := &c.sq[qid]
	if sq.created && sq.head != c.regs[SQDoorbell(qid)] {
		c.engineActive[qid] = true
		c.loop.At(c.engineBusyUntil[qid], func() { c.ioStep(qid) })
	}
}

// IORead/IOWrite: no IO BAR.
func (c *Ctrl) IORead(bar int, off uint64, size int) uint32     { return 0xFFFFFFFF }
func (c *Ctrl) IOWrite(bar int, off uint64, size int, v uint32) {}

// --- little-endian helpers ----------------------------------------------------

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLE16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putLE32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
