package nvme

import (
	"bytes"
	"testing"

	"sud/internal/mem"
	"sud/internal/sim"
)

// submitIOF is submitIO with the I/O flags byte (FUA).
func (r *rig) submitIOF(t *testing.T, qid int, slot int, sqBase mem.Addr, op byte, cid uint16, prp1 mem.Addr, lba uint64, flags byte) {
	t.Helper()
	sqe := make([]byte, SQESize)
	sqe[0] = op
	putLE16(sqe[2:4], cid)
	putLE64(sqe[24:32], uint64(prp1))
	putLE64(sqe[40:48], lba)
	sqe[sqeFlags] = flags
	r.m.Mem.MustWrite(sqBase+mem.Addr(slot*SQESize), sqe)
	r.c.MMIOWrite(0, SQDoorbell(qid), 4, uint64(slot+1))
}

// cacheRig boots a controller with a volatile write cache of cap blocks
// and one live I/O queue pair.
func cacheRig(t *testing.T, cap int) (*rig, mem.Addr, mem.Addr) {
	t.Helper()
	p := CachedParams(1, cap)
	r := newRig(t, p)
	alloc := func() mem.Addr {
		a, ok := r.m.Alloc.AllocPages(1)
		if !ok {
			t.Fatal("oom")
		}
		return a
	}
	sqb, cqb := alloc(), alloc()
	r.createPair(t, 1, sqb, cqb, 16)
	return r, sqb, alloc()
}

func fillPage(b byte) []byte { return bytes.Repeat([]byte{b}, BlockSize) }

func TestWriteLandsInCacheAndFlushDrains(t *testing.T) {
	r, sqb, buf := cacheRig(t, 8)
	r.m.Mem.MustWrite(buf, fillPage(0x5A))
	r.submitIO(t, 1, 0, sqb, CmdWrite, 1, buf, 3)
	r.m.Loop.RunFor(sim.Millisecond)

	// The write was acked but is volatile: media untouched, one dirty
	// block, and a read is served from the cache (newest copy).
	if bytes.Equal(r.c.PeekMedia(3), fillPage(0x5A)) {
		t.Fatal("cached write reached media before any flush")
	}
	if r.c.DirtyBlocks() != 1 {
		t.Fatalf("dirty = %d, want 1", r.c.DirtyBlocks())
	}
	scratch, _ := r.m.Alloc.AllocPages(1)
	r.submitIO(t, 1, 1, sqb, CmdRead, 2, scratch, 3)
	r.m.Loop.RunFor(sim.Millisecond)
	got := make([]byte, BlockSize)
	if err := r.m.Mem.Read(scratch, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillPage(0x5A)) {
		t.Fatal("read did not observe the cached write")
	}
	if r.c.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", r.c.CacheHits)
	}

	// CmdFlush drains the cache to media.
	r.submitIO(t, 1, 2, sqb, CmdFlush, 3, 0, 0)
	r.m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(r.c.PeekMedia(3), fillPage(0x5A)) {
		t.Fatal("flush did not drain the cache to media")
	}
	if r.c.DirtyBlocks() != 0 || r.c.Flushes != 1 || r.c.FlushedBlocks != 1 {
		t.Fatalf("post-flush: dirty=%d flushes=%d drained=%d",
			r.c.DirtyBlocks(), r.c.Flushes, r.c.FlushedBlocks)
	}
}

func TestFlushCostsDrainTime(t *testing.T) {
	// A flush over a dirty cache must take longer than one over a clean
	// cache: drain time is real (one media write per dirty block), not a
	// fixed-cost ack.
	timeFlush := func(dirty int) sim.Duration {
		r, sqb, buf := cacheRig(t, 16)
		for i := 0; i < dirty; i++ {
			r.m.Mem.MustWrite(buf, fillPage(byte(i)))
			r.submitIO(t, 1, i, sqb, CmdWrite, uint16(i+1), buf, uint64(i))
			r.m.Loop.RunFor(sim.Millisecond)
		}
		start := r.m.Now()
		r.submitIO(t, 1, dirty, sqb, CmdFlush, 99, 0, 0)
		r.m.Loop.RunFor(5 * sim.Millisecond)
		if r.c.Flushes != 1 || r.c.DirtyBlocks() != 0 {
			t.Fatalf("flush did not run (flushes=%d dirty=%d)", r.c.Flushes, r.c.DirtyBlocks())
		}
		if r.c.FlushedBlocks != uint64(dirty) {
			t.Fatalf("drained %d blocks, want %d", r.c.FlushedBlocks, dirty)
		}
		// The engine's busy horizon records when the flush finished.
		return sim.Duration(r.c.engineBusyUntil[1] - start)
	}
	costDirty := timeFlush(6)
	costClean := timeFlush(0)
	perBlock := sim.Duration(DefaultParams().MediaPerByte * BlockSize)
	if costDirty < costClean+6*perBlock {
		t.Fatalf("dirty flush %v vs clean %v: drain time not charged (per block %v)",
			costDirty, costClean, perBlock)
	}
}

func TestFUABypassesCache(t *testing.T) {
	r, sqb, buf := cacheRig(t, 8)
	r.m.Mem.MustWrite(buf, fillPage(0xC4))
	r.submitIOF(t, 1, 0, sqb, CmdWrite, 1, buf, 5, SqeFlagFUA)
	r.m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(r.c.PeekMedia(5), fillPage(0xC4)) {
		t.Fatal("FUA write not durable on completion")
	}
	if r.c.DirtyBlocks() != 0 || r.c.FUAWrites != 1 {
		t.Fatalf("dirty=%d fua=%d", r.c.DirtyBlocks(), r.c.FUAWrites)
	}

	// A FUA write over an LBA with an older dirty copy supersedes it: the
	// stale cache entry must never drain over the durable bytes.
	r.m.Mem.MustWrite(buf, fillPage(0x01))
	r.submitIO(t, 1, 1, sqb, CmdWrite, 2, buf, 6)
	r.m.Loop.RunFor(sim.Millisecond)
	r.m.Mem.MustWrite(buf, fillPage(0x02))
	r.submitIOF(t, 1, 2, sqb, CmdWrite, 3, buf, 6, SqeFlagFUA)
	r.m.Loop.RunFor(sim.Millisecond)
	r.submitIO(t, 1, 3, sqb, CmdFlush, 4, 0, 0)
	r.m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(r.c.PeekMedia(6), fillPage(0x02)) {
		t.Fatal("stale cache entry drained over the FUA write")
	}
}

func TestCacheEvictsFIFOAtCapacity(t *testing.T) {
	r, sqb, buf := cacheRig(t, 2)
	for i := 0; i < 3; i++ {
		r.m.Mem.MustWrite(buf, fillPage(byte(0x10+i)))
		r.submitIO(t, 1, i, sqb, CmdWrite, uint16(i+1), buf, uint64(i))
		r.m.Loop.RunFor(sim.Millisecond)
	}
	// The oldest write (LBA 0) was evicted to media; 1 and 2 are dirty.
	if !bytes.Equal(r.c.PeekMedia(0), fillPage(0x10)) {
		t.Fatal("capacity eviction did not drain the oldest block")
	}
	if r.c.DirtyBlocks() != 2 || r.c.CacheEvictions != 1 {
		t.Fatalf("dirty=%d evictions=%d", r.c.DirtyBlocks(), r.c.CacheEvictions)
	}
	// Rewriting a dirty LBA overwrites in place: no eviction.
	r.m.Mem.MustWrite(buf, fillPage(0x77))
	r.submitIO(t, 1, 3, sqb, CmdWrite, 4, buf, 2)
	r.m.Loop.RunFor(sim.Millisecond)
	if r.c.CacheEvictions != 1 || r.c.DirtyBlocks() != 2 {
		t.Fatalf("in-place rewrite evicted (evictions=%d dirty=%d)",
			r.c.CacheEvictions, r.c.DirtyBlocks())
	}
}

func TestPowerFailDiscardsUnflushed(t *testing.T) {
	r, sqb, buf := cacheRig(t, 8)
	r.m.Mem.MustWrite(buf, fillPage(0xAA))
	r.submitIO(t, 1, 0, sqb, CmdWrite, 1, buf, 1)
	r.m.Loop.RunFor(sim.Millisecond)
	r.submitIO(t, 1, 1, sqb, CmdFlush, 2, 0, 0)
	r.m.Loop.RunFor(sim.Millisecond)
	r.m.Mem.MustWrite(buf, fillPage(0xBB))
	r.submitIO(t, 1, 2, sqb, CmdWrite, 3, buf, 2)
	r.m.Loop.RunFor(sim.Millisecond)

	r.c.PowerFail()
	if !bytes.Equal(r.c.PeekMedia(1), fillPage(0xAA)) {
		t.Fatal("flushed block lost across power failure")
	}
	if bytes.Equal(r.c.PeekMedia(2), fillPage(0xBB)) {
		t.Fatal("un-flushed block survived power failure")
	}
	if r.c.PowerFails != 1 || r.c.LostBlocks != 1 || r.c.DirtyBlocks() != 0 {
		t.Fatalf("powerfails=%d lost=%d dirty=%d",
			r.c.PowerFails, r.c.LostBlocks, r.c.DirtyBlocks())
	}
	if r.c.MMIORead(0, RegCSTS, 4)&CstsReady != 0 {
		t.Fatal("controller still ready after power failure")
	}
}

func TestCacheSurvivesControllerReset(t *testing.T) {
	// The cache is device RAM: a driver restart (controller reset) must
	// not lose acked writes — only PowerFail may.
	r, sqb, buf := cacheRig(t, 8)
	r.m.Mem.MustWrite(buf, fillPage(0xD1))
	r.submitIO(t, 1, 0, sqb, CmdWrite, 1, buf, 4)
	r.m.Loop.RunFor(sim.Millisecond)
	if r.c.DirtyBlocks() != 1 {
		t.Fatalf("dirty = %d", r.c.DirtyBlocks())
	}
	r.c.MMIOWrite(0, RegCC, 4, 0) // reset, as a restarted driver does
	if r.c.DirtyBlocks() != 1 {
		t.Fatal("controller reset discarded the volatile cache")
	}
}

func TestVWCRegisterDecode(t *testing.T) {
	r, sqb, buf := cacheRig(t, 4)
	if v := r.c.MMIORead(0, RegVWC, 4); v&VwcEnable == 0 || v>>16 != 0 {
		t.Fatalf("RegVWC = %#x, want enabled and clean", v)
	}
	r.m.Mem.MustWrite(buf, fillPage(1))
	r.submitIO(t, 1, 0, sqb, CmdWrite, 1, buf, 0)
	r.m.Loop.RunFor(sim.Millisecond)
	if v := r.c.MMIORead(0, RegVWC, 4); v>>16 != 1 {
		t.Fatalf("RegVWC occupancy = %d, want 1", v>>16)
	}
	// Only the enable bit is writable; scribbles do not corrupt state.
	r.c.MMIOWrite(0, RegVWC, 4, 0xFFFF0000)
	if v := r.c.MMIORead(0, RegVWC, 4); v&VwcEnable != 0 {
		t.Fatalf("RegVWC = %#x after disable write", v)
	}
	// Disabled: writes go straight to media.
	r.m.Mem.MustWrite(buf, fillPage(2))
	r.submitIO(t, 1, 1, sqb, CmdWrite, 2, buf, 7)
	r.m.Loop.RunFor(sim.Millisecond)
	if !bytes.Equal(r.c.PeekMedia(7), fillPage(2)) {
		t.Fatal("write with cache disabled did not reach media")
	}

	// A cacheless part ignores RegVWC writes entirely.
	plain := newRig(t, DefaultParams())
	plain.c.MMIOWrite(0, RegVWC, 4, VwcEnable)
	if v := plain.c.MMIORead(0, RegVWC, 4); v != 0 {
		t.Fatalf("cacheless RegVWC = %#x", v)
	}
}

func TestIdentifyReportsWriteCache(t *testing.T) {
	for _, tc := range []struct {
		cap  int
		want byte
	}{{0, 0}, {8, 1}} {
		p := MultiQueueParams(1)
		p.CacheBlocks = tc.cap
		r := newRig(t, p)
		page, ok := r.m.Alloc.AllocPages(1)
		if !ok {
			t.Fatal("oom")
		}
		sqe := make([]byte, SQESize)
		sqe[0] = AdminIdentify
		putLE64(sqe[24:32], uint64(page))
		if st := r.admin(t, sqe); st != StatusOK {
			t.Fatalf("identify: status %d", st)
		}
		out := make([]byte, IdentifyLen)
		if err := r.m.Mem.Read(page, out); err != nil {
			t.Fatal(err)
		}
		if out[idVWC] != tc.want {
			t.Fatalf("cap %d: identify VWC = %d, want %d", tc.cap, out[idVWC], tc.want)
		}
	}
}
