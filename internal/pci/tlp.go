package pci

import (
	"fmt"

	"sud/internal/mem"
)

// TLPType distinguishes memory read and write transactions. Config and IO
// transactions are CPU-initiated and modelled separately.
type TLPType int

const (
	// MemRead is a DMA read request (device reads host memory).
	MemRead TLPType = iota
	// MemWrite is a DMA write request (device writes host memory); MSIs
	// are MemWrites to the MSI address window.
	MemWrite
)

func (t TLPType) String() string {
	switch t {
	case MemRead:
		return "MemRead"
	case MemWrite:
		return "MemWrite"
	default:
		return fmt.Sprintf("TLPType(%d)", int(t))
	}
}

// TLP is a transaction-layer packet travelling the PCIe fabric.
type TLP struct {
	Type      TLPType
	Requester BDF      // stamped by the (trusted) device hardware
	Stream    int      // PASID-like queue tag, stamped by the issuing hardware queue engine; 0 = untagged
	Addr      mem.Addr // bus address (IO-virtual once an IOMMU is active)
	Data      []byte   // payload for MemWrite
	Len       int      // requested length for MemRead
}

// Completion is the fabric's response to a TLP.
type Completion struct {
	Data []byte // read data for MemRead
	Err  error  // non-nil if the transaction aborted (UR/CA/IOMMU fault)
}

// OK reports whether the transaction completed successfully.
func (c Completion) OK() bool { return c.Err == nil }

// RouteError describes a TLP the fabric refused to deliver.
type RouteError struct {
	TLP    TLP
	Reason string
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("pci: %s from %s to %#x: %s",
		e.TLP.Type, e.TLP.Requester, uint64(e.TLP.Addr), e.Reason)
}

// Port is the upstream path a device (or switch) uses to issue transactions
// toward the root complex.
type Port interface {
	// Upstream submits a TLP travelling toward the root and returns its
	// completion synchronously (PCIe is split-transaction; the model
	// collapses the round trip).
	Upstream(tlp TLP) Completion
}
