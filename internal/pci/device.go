package pci

import "sud/internal/mem"

// Device is a PCI function attached to the fabric. Device models in
// internal/devices implement this; the kernel and the SUD safe-access module
// talk to devices only through it.
type Device interface {
	// BDF returns the function's bus/device/function address.
	BDF() BDF

	// Config returns the function's configuration space.
	Config() *ConfigSpace

	// MMIORead/MMIOWrite access a memory BAR at the given byte offset.
	// size is 1, 2, 4 or 8. Device register side effects happen here.
	MMIORead(bar int, off uint64, size int) uint64
	MMIOWrite(bar int, off uint64, size int, v uint64)

	// IORead/IOWrite access an IO-space BAR (legacy devices such as
	// ne2k-pci). Devices without IO BARs return all-ones / ignore.
	IORead(bar int, off uint64, size int) uint32
	IOWrite(bar int, off uint64, size int, v uint32)

	// Attach gives the device its upstream port; called by the topology
	// when the device is plugged in.
	Attach(port Port)
}

// FuncBase provides the boilerplate half of Device: identity, config space
// and the upstream port, plus DMA and MSI helpers. Device models embed it.
type FuncBase struct {
	bdf  BDF
	cfg  *ConfigSpace
	port Port
}

// InitFunc initialises the embedded base.
func (f *FuncBase) InitFunc(bdf BDF, cfg *ConfigSpace) {
	f.bdf = bdf
	f.cfg = cfg
}

// BDF implements Device.
func (f *FuncBase) BDF() BDF { return f.bdf }

// Config implements Device.
func (f *FuncBase) Config() *ConfigSpace { return f.cfg }

// Attach implements Device.
func (f *FuncBase) Attach(port Port) { f.port = port }

// Attached reports whether the device has an upstream port.
func (f *FuncBase) Attached() bool { return f.port != nil }

// DMARead issues an untagged memory read TLP for n bytes at bus address
// addr. It fails if bus mastering is disabled (the command register gates
// DMA on real hardware too).
func (f *FuncBase) DMARead(addr mem.Addr, n int) ([]byte, error) {
	return f.DMAReadQ(0, addr, n)
}

// DMAReadQ is DMARead with the issuing hardware queue's stream tag stamped
// on the TLP (the trusted device silicon stamps it, like the requester BDF),
// so a per-queue IOMMU sub-domain can confine the access.
func (f *FuncBase) DMAReadQ(stream int, addr mem.Addr, n int) ([]byte, error) {
	if f.port == nil {
		return nil, &RouteError{Reason: "device not attached"}
	}
	if !f.cfg.BusMasterEnabled() {
		return nil, &RouteError{
			TLP:    TLP{Type: MemRead, Requester: f.bdf, Stream: stream, Addr: addr, Len: n},
			Reason: "bus mastering disabled",
		}
	}
	c := f.port.Upstream(TLP{Type: MemRead, Requester: f.bdf, Stream: stream, Addr: addr, Len: n})
	return c.Data, c.Err
}

// DMAWrite issues an untagged memory write TLP.
func (f *FuncBase) DMAWrite(addr mem.Addr, data []byte) error {
	return f.DMAWriteQ(0, addr, data)
}

// DMAWriteQ is DMAWrite with the issuing hardware queue's stream tag.
func (f *FuncBase) DMAWriteQ(stream int, addr mem.Addr, data []byte) error {
	if f.port == nil {
		return &RouteError{Reason: "device not attached"}
	}
	if !f.cfg.BusMasterEnabled() {
		return &RouteError{
			TLP:    TLP{Type: MemWrite, Requester: f.bdf, Stream: stream, Addr: addr, Data: data},
			Reason: "bus mastering disabled",
		}
	}
	c := f.port.Upstream(TLP{Type: MemWrite, Requester: f.bdf, Stream: stream, Addr: addr, Data: data})
	return c.Err
}

// RaiseMSI signals the function's MSI, if enabled and unmasked: a memory
// write of the message data to the message address, travelling the same
// fabric path as any other DMA (§3.2.2). It reports whether a message was
// actually sent.
func (f *FuncBase) RaiseMSI() bool {
	msi := f.cfg.MSI()
	if !msi.Present || !msi.Enabled || msi.Masked || f.port == nil {
		return false
	}
	data := []byte{byte(msi.Data), byte(msi.Data >> 8), 0, 0}
	c := f.port.Upstream(TLP{
		Type:      MemWrite,
		Requester: f.bdf,
		Addr:      mem.Addr(msi.Address),
		Data:      data,
	})
	return c.OK()
}
