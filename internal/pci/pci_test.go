package pci

import (
	"testing"
	"testing/quick"

	"sud/internal/mem"
)

// fakeDev is a minimal Device with one 4 KiB memory BAR backed by a byte
// array, for routing tests.
type fakeDev struct {
	FuncBase
	regs [4096]byte
	io   [64]byte
}

func newFakeDev(bdf BDF, barBase uint64) *fakeDev {
	d := &fakeDev{}
	cfg := NewConfigSpace(0x8086, 0x10D3, 0x02)
	cfg.SetBAR(0, barBase, 4096, false)
	cfg.SetBAR(1, 0xC000, 64, true)
	cfg.AddMSICapability()
	cfg.Write(CfgCommand, 2, CmdMemSpace|CmdBusMaster|CmdIOSpace)
	d.InitFunc(bdf, cfg)
	return d
}

func (d *fakeDev) MMIORead(bar int, off uint64, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(d.regs[(off+uint64(i))%4096])
	}
	return v
}

func (d *fakeDev) MMIOWrite(bar int, off uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		d.regs[(off+uint64(i))%4096] = byte(v >> (8 * i))
	}
}

func (d *fakeDev) IORead(bar int, off uint64, size int) uint32 {
	return uint32(d.io[off%64])
}

func (d *fakeDev) IOWrite(bar int, off uint64, size int, v uint32) {
	d.io[off%64] = byte(v)
}

// memHandler terminates upstream TLPs in a plain Memory (no IOMMU).
type memHandler struct {
	m      *mem.Memory
	seen   []TLP
	reject bool
}

func (h *memHandler) HandleUpstream(tlp TLP) Completion {
	h.seen = append(h.seen, tlp)
	if h.reject {
		return Completion{Err: &RouteError{TLP: tlp, Reason: "rejected"}}
	}
	switch tlp.Type {
	case MemWrite:
		if err := h.m.Write(tlp.Addr, tlp.Data); err != nil {
			return Completion{Err: err}
		}
		return Completion{}
	case MemRead:
		buf := make([]byte, tlp.Len)
		if err := h.m.Read(tlp.Addr, buf); err != nil {
			return Completion{Err: err}
		}
		return Completion{Data: buf}
	}
	return Completion{Err: &RouteError{TLP: tlp, Reason: "bad type"}}
}

func TestBDFString(t *testing.T) {
	b := MakeBDF(3, 0x1C, 2)
	if b.String() != "03:1c.2" {
		t.Fatalf("BDF string = %q", b.String())
	}
}

func TestConfigIDsReadOnly(t *testing.T) {
	c := NewConfigSpace(0x8086, 0x10D3, 0x02)
	c.Write(CfgVendorID, 4, 0x12345678)
	if c.VendorID() != 0x8086 || c.DeviceID() != 0x10D3 {
		t.Fatal("vendor/device ID writable")
	}
}

func TestConfigBARSizeProbe(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	c.SetBAR(0, 0xFEB00000, 0x20000, false)
	c.Write(CfgBAR0, 4, 0xFFFFFFFF)
	got := c.Read(CfgBAR0, 4)
	if got != ^uint32(0x20000-1) {
		t.Fatalf("size probe = %#x, want %#x", got, ^uint32(0x20000-1))
	}
	// Restore the base.
	c.Write(CfgBAR0, 4, 0xFEB00000)
	base, info := c.BAR(0)
	if base != 0xFEB00000 || info.Size != 0x20000 || info.IO {
		t.Fatalf("BAR = %#x %+v", base, info)
	}
}

func TestConfigBARTypeBitsPreserved(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	c.SetBAR(2, 0xC000, 64, true)
	c.Write(CfgBAR0+8, 4, 0xD007) // low bits must be forced back to IO type
	if got := c.Read(CfgBAR0+8, 4); got != 0xD005 {
		t.Fatalf("IO BAR raw = %#x, want 0xD005", got)
	}
}

func TestConfigUnimplementedBAR(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	c.Write(CfgBAR0+20, 4, 0xFFFFFFFF)
	if got := c.Read(CfgBAR0+20, 4); got != 0 {
		t.Fatalf("unimplemented BAR reads %#x, want 0", got)
	}
}

func TestMSICapability(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	off := c.AddMSICapability()
	if c.Read(CfgCapPtr, 1) != uint32(off) {
		t.Fatal("capability pointer not set")
	}
	msi := c.MSI()
	if !msi.Present || msi.Enabled || msi.Masked {
		t.Fatalf("fresh MSI state = %+v", msi)
	}
	// Program address/data and enable, as a driver would.
	c.Write(off+4, 4, 0xFEE00000)
	c.Write(off+8, 2, 0x41)
	c.Write(off+2, 2, MSICtlEnable)
	msi = c.MSI()
	if !msi.Enabled || msi.Address != 0xFEE00000 || msi.Data != 0x41 {
		t.Fatalf("programmed MSI state = %+v", msi)
	}
	var changed int
	c.OnMSIChange = func() { changed++ }
	c.SetMSIMasked(true)
	if !c.MSI().Masked || changed != 1 {
		t.Fatal("SetMSIMasked did not take or did not notify")
	}
	c.SetMSIMasked(false)
	if c.MSI().Masked {
		t.Fatal("unmask did not take")
	}
}

func TestMSIChangeHookOnDirectWrite(t *testing.T) {
	c := NewConfigSpace(1, 2, 0)
	off := c.AddMSICapability()
	var changed int
	c.OnMSIChange = func() { changed++ }
	c.Write(off+2, 2, MSICtlEnable)
	if changed != 1 {
		t.Fatalf("config write in MSI cap fired %d change hooks, want 1", changed)
	}
}

// buildFabric creates root—switch with two devices, returning everything.
func buildFabric(acs ACS) (*RootComplex, *Switch, *fakeDev, *fakeDev, *memHandler) {
	m := mem.New()
	m.AllocRange(0x100000, 16*mem.PageSize)
	h := &memHandler{m: m}
	sw := NewSwitch("sw0", acs)
	a := newFakeDev(MakeBDF(1, 0, 0), 0xFEB00000)
	b := newFakeDev(MakeBDF(1, 1, 0), 0xFEB10000)
	sw.AttachDevice(a)
	sw.AttachDevice(b)
	rc := NewRootComplex(sw, h)
	return rc, sw, a, b, h
}

func TestDMAThroughRoot(t *testing.T) {
	_, _, a, _, h := buildFabric(ACS{SourceValidation: true, P2PRedirect: true})
	if err := a.DMAWrite(0x100000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := a.DMARead(0x100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("DMA round trip got % x", got)
	}
	if len(h.seen) != 2 {
		t.Fatalf("root saw %d TLPs, want 2", len(h.seen))
	}
}

func TestBusMasterGate(t *testing.T) {
	_, _, a, _, _ := buildFabric(ACS{})
	a.Config().Write(CfgCommand, 2, CmdMemSpace) // clear bus master
	if err := a.DMAWrite(0x100000, []byte{1}); err == nil {
		t.Fatal("DMA with bus mastering disabled succeeded")
	}
}

func TestP2PDirectWithoutACS(t *testing.T) {
	// Without P2P redirection, a DMA to a peer's BAR lands on the peer's
	// registers without ever reaching the root (the attack).
	_, _, a, b, h := buildFabric(ACS{})
	if err := a.DMAWrite(0xFEB10010, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	if b.regs[0x10] != 0xAA || b.regs[0x11] != 0xBB {
		t.Fatal("peer-to-peer write did not reach peer registers")
	}
	if len(h.seen) != 0 {
		t.Fatal("P2P TLP leaked to the root complex")
	}
}

func TestP2PRedirectedWithACS(t *testing.T) {
	// With ACS P2P redirection the TLP is forced upstream to the root,
	// where the IOMMU (here: the plain handler) decides.
	_, _, a, b, h := buildFabric(ACS{P2PRedirect: true})
	h.reject = true // stand-in for an IOMMU fault
	err := a.DMAWrite(0xFEB10010, []byte{0xAA})
	if err == nil {
		t.Fatal("redirected P2P write unexpectedly succeeded")
	}
	if b.regs[0x10] == 0xAA {
		t.Fatal("P2P write reached peer despite redirection")
	}
	if len(h.seen) != 1 {
		t.Fatalf("root saw %d TLPs, want 1", len(h.seen))
	}
}

func TestP2PLegacyBusCannotBeFiltered(t *testing.T) {
	// On a conventional PCI bus ACS settings are ineffective (§3.2.2:
	// "when multiple devices share the same physical PCI bus, there is
	// nothing that can prevent a device-to-device DMA attack").
	_, sw, a, b, _ := buildFabric(ACS{SourceValidation: true, P2PRedirect: true})
	sw.Legacy = true
	if err := a.DMAWrite(0xFEB10000, []byte{0x77}); err != nil {
		t.Fatal(err)
	}
	if b.regs[0] != 0x77 {
		t.Fatal("legacy-bus P2P write blocked, should be unstoppable")
	}
}

func TestACSSourceValidationDropsSpoof(t *testing.T) {
	_, sw, _, _, h := buildFabric(ACS{SourceValidation: true, P2PRedirect: true})
	// Craft a TLP with a spoofed requester ID and inject it via the
	// device's port (modelling a misdesigned/hostile device).
	spoofed := TLP{Type: MemWrite, Requester: MakeBDF(1, 1, 0), Addr: 0x100000, Data: []byte{9}}
	c := sw.fromDownstream(sw.ports[0], spoofed)
	if c.OK() {
		t.Fatal("spoofed TLP passed source validation")
	}
	if sw.DroppedTLPs != 1 {
		t.Fatalf("DroppedTLPs = %d, want 1", sw.DroppedTLPs)
	}
	if len(h.seen) != 0 {
		t.Fatal("spoofed TLP reached root")
	}
}

func TestNestedSwitchRouting(t *testing.T) {
	m := mem.New()
	m.AllocRange(0x200000, 4*mem.PageSize)
	h := &memHandler{m: m}
	rootSw := NewSwitch("root", ACS{SourceValidation: true, P2PRedirect: true})
	leafSw := NewSwitch("leaf", ACS{SourceValidation: true, P2PRedirect: true})
	d := newFakeDev(MakeBDF(2, 0, 0), 0xFEB20000)
	leafSw.AttachDevice(d)
	rootSw.AttachSwitch(leafSw)
	rc := NewRootComplex(rootSw, h)
	if err := d.DMAWrite(0x200000, []byte{5}); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	m.MustRead(0x200000, b)
	if b[0] != 5 {
		t.Fatal("DMA through nested switch failed")
	}
	if _, err := rc.DeviceByBDF(MakeBDF(2, 0, 0)); err != nil {
		t.Fatal("nested device not enumerable:", err)
	}
	if len(rc.Devices()) != 1 {
		t.Fatalf("enumerated %d devices, want 1", len(rc.Devices()))
	}
}

func TestRaiseMSIRequiresEnable(t *testing.T) {
	_, _, a, _, h := buildFabric(ACS{})
	if a.RaiseMSI() {
		t.Fatal("MSI fired while disabled")
	}
	off := a.Config().MSICapOffset()
	a.Config().Write(off+4, 4, 0xFEE00000)
	a.Config().Write(off+8, 2, 0x31)
	a.Config().Write(off+2, 2, MSICtlEnable)
	// MSI address is not DRAM here, so populate it to let the handler
	// accept the write.
	h.m.AllocPage(0xFEE00000)
	if !a.RaiseMSI() {
		t.Fatal("enabled MSI did not fire")
	}
	if len(h.seen) != 1 || h.seen[0].Addr != 0xFEE00000 {
		t.Fatalf("MSI TLP = %+v", h.seen)
	}
	a.Config().SetMSIMasked(true)
	if a.RaiseMSI() {
		t.Fatal("masked MSI fired")
	}
}

func TestRootComplexConfigAccess(t *testing.T) {
	rc, _, a, _, _ := buildFabric(ACS{})
	v, err := rc.ConfigRead(a.BDF(), CfgVendorID, 2)
	if err != nil || v != 0x8086 {
		t.Fatalf("ConfigRead = %#x, %v", v, err)
	}
	if err := rc.ConfigWrite(a.BDF(), CfgIntLine, 1, 9); err != nil {
		t.Fatal(err)
	}
	if got, _ := rc.ConfigRead(a.BDF(), CfgIntLine, 1); got != 9 {
		t.Fatalf("IntLine = %d, want 9", got)
	}
	if _, err := rc.ConfigRead(MakeBDF(7, 7, 7), 0, 2); err == nil {
		t.Fatal("config read of missing device succeeded")
	}
	if err := rc.ConfigWrite(MakeBDF(7, 7, 7), 4, 2, 0); err == nil {
		t.Fatal("config write of missing device succeeded")
	}
}

func TestFindMMIO(t *testing.T) {
	rc, _, _, b, _ := buildFabric(ACS{})
	dev, bar, off, ok := rc.FindMMIO(0xFEB10020)
	if !ok || dev != Device(b) || bar != 0 || off != 0x20 {
		t.Fatalf("FindMMIO = %v %d %d %v", dev, bar, off, ok)
	}
	if _, _, _, ok := rc.FindMMIO(0xDEAD0000); ok {
		t.Fatal("FindMMIO matched unmapped address")
	}

}

func TestDetachedDeviceDMAFails(t *testing.T) {
	d := newFakeDev(MakeBDF(0, 1, 0), 0xFEB00000)
	if err := d.DMAWrite(0x1000, []byte{1}); err == nil {
		t.Fatal("DMA from detached device succeeded")
	}
	if _, err := d.DMARead(0x1000, 1); err == nil {
		t.Fatal("DMA read from detached device succeeded")
	}
	if d.Attached() {
		t.Fatal("detached device claims attachment")
	}
}

// Property: for any 4-byte-aligned offset and value, a config write outside
// read-only and BAR regions reads back the bytes written.
func TestConfigWriteReadProperty(t *testing.T) {
	f := func(off8 uint8, v uint32) bool {
		c := NewConfigSpace(1, 2, 0)
		off := 0x40 + int(off8)%0x40 // scratch area, no caps registered
		c.Write(off, 4, v)
		return c.Read(off, 4) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MemWrite then MemRead of the same bytes through the full fabric
// round-trips for arbitrary payloads.
func TestFabricRoundTripProperty(t *testing.T) {
	_, _, a, _, _ := buildFabric(ACS{SourceValidation: true, P2PRedirect: true})
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 4096 {
			return true
		}
		if err := a.DMAWrite(0x100800, data); err != nil {
			return false
		}
		got, err := a.DMARead(0x100800, len(data))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
