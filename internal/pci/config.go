// Package pci models the PCI express fabric SUD depends on: configuration
// space with capabilities (notably MSI), memory/IO BARs, transaction-layer
// packets (TLPs), and a switch topology with Access Control Services (ACS).
//
// The paper's §3.2 threat model lives here: a device under a malicious
// driver's control issues arbitrary memory TLPs; whether those TLPs can reach
// another device's registers (peer-to-peer DMA) or physical memory is decided
// entirely by switch routing (ACS) and the IOMMU at the root complex.
package pci

import "fmt"

// BDF is a bus/device/function triple — the requester ID stamped on every
// TLP a device issues. The (trusted) device hardware stamps it; ACS source
// validation checks it.
type BDF uint16

// MakeBDF assembles a BDF from bus, device and function numbers.
func MakeBDF(bus, dev, fn int) BDF {
	return BDF(bus<<8 | (dev&0x1f)<<3 | fn&0x7)
}

func (b BDF) String() string {
	return fmt.Sprintf("%02x:%02x.%d", int(b>>8), int(b>>3)&0x1f, int(b)&0x7)
}

// Standard configuration space offsets.
const (
	CfgVendorID  = 0x00
	CfgDeviceID  = 0x02
	CfgCommand   = 0x04
	CfgStatus    = 0x06
	CfgRevision  = 0x08
	CfgClassCode = 0x09
	CfgHeader    = 0x0E
	CfgBAR0      = 0x10
	CfgCapPtr    = 0x34
	CfgIntLine   = 0x3C
	CfgIntPin    = 0x3D

	// CfgSize is the size of the (legacy) config space we model.
	CfgSize = 256
)

// Command register bits.
const (
	CmdIOSpace    = 1 << 0
	CmdMemSpace   = 1 << 1
	CmdBusMaster  = 1 << 2
	CmdIntDisable = 1 << 10
)

// Capability IDs.
const (
	CapIDMSI = 0x05
)

// MSI capability layout (32-bit address variant), relative to the capability
// base: [0]=cap ID, [1]=next ptr, [2:4]=message control, [4:8]=message
// address, [8:10]=message data, [12:16]=per-vector mask bits.
const (
	msiCtlOff  = 2
	msiAddrOff = 4
	msiDataOff = 8
	msiMaskOff = 12

	// MSICapSize is the number of config bytes the MSI capability spans.
	MSICapSize = 16

	// MSI message control bits.
	MSICtlEnable  = 1 << 0
	MSICtlMaskCap = 1 << 8
)

// BARInfo describes one base address register.
type BARInfo struct {
	Size uint64 // 0 means the BAR is not implemented
	IO   bool   // true for legacy IO-space BARs
}

// ConfigSpace is one function's 256-byte configuration space. Reads and
// writes go through Read/Write so size probing (writing all-ones to a BAR)
// and read-only fields behave as on hardware.
type ConfigSpace struct {
	raw  [CfgSize]byte
	bars [6]BARInfo

	msiBase int // offset of the MSI capability, 0 if absent

	// OnMSIChange, if set, is invoked whenever a write lands in the MSI
	// capability (the interrupt subsystem watches mask/enable changes).
	OnMSIChange func()
}

// NewConfigSpace builds a config space for a function with the given IDs.
func NewConfigSpace(vendor, device uint16, class uint8) *ConfigSpace {
	c := &ConfigSpace{}
	c.putU16(CfgVendorID, vendor)
	c.putU16(CfgDeviceID, device)
	c.raw[CfgClassCode+2] = class
	return c
}

func (c *ConfigSpace) putU16(off int, v uint16) {
	c.raw[off] = byte(v)
	c.raw[off+1] = byte(v >> 8)
}

func (c *ConfigSpace) u16(off int) uint16 {
	return uint16(c.raw[off]) | uint16(c.raw[off+1])<<8
}

func (c *ConfigSpace) putU32(off int, v uint32) {
	for i := 0; i < 4; i++ {
		c.raw[off+i] = byte(v >> (8 * i))
	}
}

func (c *ConfigSpace) u32(off int) uint32 {
	var v uint32
	for i := 3; i >= 0; i-- {
		v = v<<8 | uint32(c.raw[off+i])
	}
	return v
}

// SetBAR declares BAR i with the given size (must be a power of two >= 16 for
// memory BARs) and kind, at the given initial base address.
func (c *ConfigSpace) SetBAR(i int, base uint64, size uint64, io bool) {
	if i < 0 || i >= 6 {
		panic("pci: BAR index out of range")
	}
	if size&(size-1) != 0 || size == 0 {
		panic("pci: BAR size must be a power of two")
	}
	c.bars[i] = BARInfo{Size: size, IO: io}
	v := uint32(base)
	if io {
		v |= 1
	}
	c.putU32(CfgBAR0+4*i, v)
}

// BAR returns BAR i's current base address and static info.
func (c *ConfigSpace) BAR(i int) (base uint64, info BARInfo) {
	info = c.bars[i]
	v := c.u32(CfgBAR0 + 4*i)
	if info.IO {
		return uint64(v &^ 0x3), info
	}
	return uint64(v &^ 0xF), info
}

// AddMSICapability appends an MSI capability (with per-vector masking) to
// the capability list and returns its config offset.
func (c *ConfigSpace) AddMSICapability() int {
	base := 0x50
	for c.raw[base] != 0 {
		base += MSICapSize
		if base+MSICapSize > CfgSize {
			panic("pci: config space capability area full")
		}
	}
	c.raw[base] = CapIDMSI
	c.raw[base+1] = c.raw[CfgCapPtr] // chain in front
	c.raw[CfgCapPtr] = byte(base)
	c.raw[CfgStatus] |= 0x10 // capabilities list present
	c.putU16(base+msiCtlOff, MSICtlMaskCap)
	c.msiBase = base
	return base
}

// MSICapOffset returns the MSI capability's config offset, or 0 if absent.
func (c *ConfigSpace) MSICapOffset() int { return c.msiBase }

// MSIState is a decoded view of the MSI capability.
type MSIState struct {
	Present bool
	Enabled bool
	Masked  bool // per-vector mask bit 0
	Address uint64
	Data    uint16
}

// MSI decodes the MSI capability.
func (c *ConfigSpace) MSI() MSIState {
	if c.msiBase == 0 {
		return MSIState{}
	}
	ctl := c.u16(c.msiBase + msiCtlOff)
	return MSIState{
		Present: true,
		Enabled: ctl&MSICtlEnable != 0,
		Masked:  c.u32(c.msiBase+msiMaskOff)&1 != 0,
		Address: uint64(c.u32(c.msiBase + msiAddrOff)),
		Data:    c.u16(c.msiBase + msiDataOff),
	}
}

// SetMSIMasked sets/clears the per-vector mask bit. This is what the kernel's
// safe-access module uses for generic interrupt masking (§3.2.2: MSI supports
// "generic interrupt masking that does not depend on the specific device").
func (c *ConfigSpace) SetMSIMasked(masked bool) {
	if c.msiBase == 0 {
		return
	}
	v := c.u32(c.msiBase + msiMaskOff)
	if masked {
		v |= 1
	} else {
		v &^= 1
	}
	c.putU32(c.msiBase+msiMaskOff, v)
	if c.OnMSIChange != nil {
		c.OnMSIChange()
	}
}

// BusMasterEnabled reports whether the function may issue DMA.
func (c *ConfigSpace) BusMasterEnabled() bool {
	return c.u16(CfgCommand)&CmdBusMaster != 0
}

// Read returns size (1, 2 or 4) bytes at offset off.
func (c *ConfigSpace) Read(off, size int) uint32 {
	if off < 0 || size < 1 || size > 4 || off+size > CfgSize {
		return 0xFFFFFFFF
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(c.raw[off+i])
	}
	return v
}

// Write stores size bytes of v at offset off, honoring hardware semantics:
// read-only ID fields are ignored, and writing all-ones to a BAR performs
// size probing (the next read returns the size mask).
func (c *ConfigSpace) Write(off, size int, v uint32) {
	if off < 0 || size < 1 || size > 4 || off+size > CfgSize {
		return
	}
	// Vendor/device ID are read-only.
	if off+size <= CfgCommand {
		return
	}
	// BAR size probing.
	if off >= CfgBAR0 && off < CfgBAR0+24 && size == 4 && (off-CfgBAR0)%4 == 0 {
		i := (off - CfgBAR0) / 4
		info := c.bars[i]
		if info.Size == 0 {
			return // unimplemented BAR: writes ignored, reads return 0
		}
		if v == 0xFFFFFFFF {
			mask := uint32(^(info.Size - 1))
			if info.IO {
				c.putU32(off, mask|1)
			} else {
				c.putU32(off, mask)
			}
			return
		}
		// Regular base update; preserve the type bits.
		if info.IO {
			c.putU32(off, (v&^0x3)|1)
		} else {
			c.putU32(off, v&^0xF)
		}
		return
	}
	for i := 0; i < size; i++ {
		c.raw[off+i] = byte(v >> (8 * i))
	}
	if c.msiBase != 0 && off+size > c.msiBase && off < c.msiBase+MSICapSize {
		if c.OnMSIChange != nil {
			c.OnMSIChange()
		}
	}
}

// VendorID and DeviceID return the function's identity.
func (c *ConfigSpace) VendorID() uint16 { return c.u16(CfgVendorID) }
func (c *ConfigSpace) DeviceID() uint16 { return c.u16(CfgDeviceID) }
