package pci

import (
	"fmt"

	"sud/internal/mem"
)

// ACS holds the Access Control Services settings of a PCI express switch
// (§3.2.2). With both features enabled, every DMA request is forced through
// the root complex (and hence the IOMMU), and devices cannot spoof requester
// IDs — the two properties SUD needs to stop peer-to-peer DMA attacks.
type ACS struct {
	// SourceValidation drops TLPs whose requester ID does not belong to
	// the downstream port they arrived on.
	SourceValidation bool
	// P2PRedirect forwards peer-to-peer requests upstream to the root
	// instead of routing them directly between downstream ports.
	P2PRedirect bool
}

// UpstreamHandler terminates TLPs at the root complex. The hw package
// implements it with IOMMU translation + DRAM + the MSI window.
type UpstreamHandler interface {
	HandleUpstream(tlp TLP) Completion
}

// Switch is a PCI express switch (or, with Legacy set, a conventional shared
// PCI bus where peer-to-peer traffic cannot be filtered at all).
type Switch struct {
	Name   string
	ACS    ACS
	Legacy bool // conventional PCI: P2P is wired into the bus, ACS impossible

	parent Port // toward the root; nil for the switch directly under the root
	ports  []*downPort

	// DroppedTLPs counts TLPs discarded by source validation.
	DroppedTLPs uint64
}

type downPort struct {
	sw    *Switch
	dev   Device
	child *Switch
}

// Upstream implements Port for a child switch: TLPs from the child arrive at
// this switch as if from a downstream port.
func (p *downPort) Upstream(tlp TLP) Completion {
	return p.sw.fromDownstream(p, tlp)
}

// NewSwitch returns a switch with the given ACS settings.
func NewSwitch(name string, acs ACS) *Switch {
	return &Switch{Name: name, ACS: acs}
}

// AttachDevice plugs dev into a new downstream port.
func (s *Switch) AttachDevice(dev Device) {
	p := &downPort{sw: s, dev: dev}
	s.ports = append(s.ports, p)
	dev.Attach(p)
}

// AttachSwitch plugs child into a new downstream port.
func (s *Switch) AttachSwitch(child *Switch) {
	p := &downPort{sw: s, child: child}
	s.ports = append(s.ports, p)
	child.parent = p
}

// Devices returns the devices below this switch, depth-first.
func (s *Switch) Devices() []Device {
	var out []Device
	for _, p := range s.ports {
		if p.dev != nil {
			out = append(out, p.dev)
		}
		if p.child != nil {
			out = append(out, p.child.Devices()...)
		}
	}
	return out
}

// portOwns reports whether requester is a valid source for TLPs arriving on
// port p (the device on p, or any device below p's child switch).
func portOwns(p *downPort, requester BDF) bool {
	if p.dev != nil {
		return p.dev.BDF() == requester
	}
	if p.child != nil {
		for _, d := range p.child.Devices() {
			if d.BDF() == requester {
				return true
			}
		}
	}
	return false
}

// fromDownstream routes a TLP that arrived from downstream port src.
func (s *Switch) fromDownstream(src *downPort, tlp TLP) Completion {
	// ACS source validation (meaningless on legacy shared buses).
	if !s.Legacy && s.ACS.SourceValidation && !portOwns(src, tlp.Requester) {
		s.DroppedTLPs++
		return Completion{Err: &RouteError{TLP: tlp, Reason: "ACS source validation: spoofed requester ID"}}
	}

	// Peer-to-peer routing: on a legacy bus, or on a PCIe switch without
	// P2P redirection, a TLP whose address falls inside a peer device's
	// BAR is delivered directly — bypassing the IOMMU. This is the attack
	// §3.2.2 closes with ACS.
	direct := s.Legacy || !s.ACS.P2PRedirect
	if direct {
		for _, p := range s.ports {
			if p == src {
				continue
			}
			if p.dev != nil {
				if bar, off, ok := barContaining(p.dev, tlp.Addr); ok {
					return deliverMMIO(p.dev, bar, off, tlp)
				}
			}
		}
	}

	if s.parent == nil {
		return Completion{Err: &RouteError{TLP: tlp, Reason: "no upstream port"}}
	}
	return s.parent.Upstream(tlp)
}

// barContaining locates the memory BAR of dev that contains addr.
func barContaining(dev Device, addr mem.Addr) (bar int, off uint64, ok bool) {
	cfg := dev.Config()
	if cfg.Read(CfgCommand, 2)&CmdMemSpace == 0 {
		return 0, 0, false
	}
	for i := 0; i < 6; i++ {
		base, info := cfg.BAR(i)
		if info.Size == 0 || info.IO || base == 0 {
			continue
		}
		if uint64(addr) >= base && uint64(addr) < base+info.Size {
			return i, uint64(addr) - base, true
		}
	}
	return 0, 0, false
}

// DeliverMMIO turns a routed TLP into register accesses on the target
// device. Peer-to-peer writes hit device registers just like CPU MMIO. The
// root complex also uses it for ACS-redirected P2P traffic the IOMMU permits.
func DeliverMMIO(dev Device, bar int, off uint64, tlp TLP) Completion {
	return deliverMMIO(dev, bar, off, tlp)
}

func deliverMMIO(dev Device, bar int, off uint64, tlp TLP) Completion {
	switch tlp.Type {
	case MemWrite:
		// Deliver in 4-byte chunks, as the fabric would.
		for i := 0; i < len(tlp.Data); i += 4 {
			n := 4
			if i+n > len(tlp.Data) {
				n = len(tlp.Data) - i
			}
			var v uint64
			for j := n - 1; j >= 0; j-- {
				v = v<<8 | uint64(tlp.Data[i+j])
			}
			dev.MMIOWrite(bar, off+uint64(i), n, v)
		}
		return Completion{}
	case MemRead:
		out := make([]byte, tlp.Len)
		for i := 0; i < tlp.Len; i += 4 {
			n := 4
			if i+n > tlp.Len {
				n = tlp.Len - i
			}
			v := dev.MMIORead(bar, off+uint64(i), n)
			for j := 0; j < n; j++ {
				out[i+j] = byte(v >> (8 * j))
			}
		}
		return Completion{Data: out}
	default:
		return Completion{Err: &RouteError{TLP: tlp, Reason: "unsupported TLP type"}}
	}
}

// RootComplex is the top of the fabric. Every TLP that reaches it is handed
// to the platform's UpstreamHandler (IOMMU + DRAM + MSI window).
type RootComplex struct {
	Handler UpstreamHandler
	root    *Switch
}

// NewRootComplex builds a root complex with the given root switch and
// handler.
func NewRootComplex(root *Switch, h UpstreamHandler) *RootComplex {
	rc := &RootComplex{Handler: h, root: root}
	root.parent = rootPort{rc}
	return rc
}

type rootPort struct{ rc *RootComplex }

func (p rootPort) Upstream(tlp TLP) Completion {
	if p.rc.Handler == nil {
		return Completion{Err: &RouteError{TLP: tlp, Reason: "no upstream handler"}}
	}
	return p.rc.Handler.HandleUpstream(tlp)
}

// Root returns the switch directly below the root complex.
func (rc *RootComplex) Root() *Switch { return rc.root }

// Devices enumerates every device in the fabric.
func (rc *RootComplex) Devices() []Device { return rc.root.Devices() }

// DeviceByBDF finds a device by its address.
func (rc *RootComplex) DeviceByBDF(bdf BDF) (Device, error) {
	for _, d := range rc.Devices() {
		if d.BDF() == bdf {
			return d, nil
		}
	}
	return nil, fmt.Errorf("pci: no device at %s", bdf)
}

// FindMMIO locates the device and BAR containing physical address addr, for
// CPU-initiated MMIO dispatch.
func (rc *RootComplex) FindMMIO(addr mem.Addr) (dev Device, bar int, off uint64, ok bool) {
	for _, d := range rc.Devices() {
		if b, o, found := barContaining(d, addr); found {
			return d, b, o, true
		}
	}
	return nil, 0, 0, false
}

// ConfigRead performs a CPU-initiated config read.
func (rc *RootComplex) ConfigRead(bdf BDF, off, size int) (uint32, error) {
	d, err := rc.DeviceByBDF(bdf)
	if err != nil {
		return 0xFFFFFFFF, err
	}
	return d.Config().Read(off, size), nil
}

// ConfigWrite performs a CPU-initiated config write.
func (rc *RootComplex) ConfigWrite(bdf BDF, off, size int, v uint32) error {
	d, err := rc.DeviceByBDF(bdf)
	if err != nil {
		return err
	}
	d.Config().Write(off, size, v)
	return nil
}
