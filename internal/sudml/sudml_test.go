package sudml

import (
	"bytes"
	"strings"
	"testing"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sim"
	"sud/internal/uchan"
)

var (
	dutMAC  = [6]byte{0x00, 0x1B, 0x21, 0x11, 0x22, 0x33}
	peerMAC = netstack.MAC{0x00, 0x1B, 0x21, 0x44, 0x55, 0x66}
	dutIP   = netstack.IP{10, 0, 0, 1}
	peerIP  = netstack.IP{10, 0, 0, 2}
)

type echoPeer struct {
	link *ethlink.Link
	loop *sim.Loop
	seen [][]byte
}

func (p *echoPeer) LinkDeliver(frame []byte) {
	p.seen = append(p.seen, frame)
	eh, ipPkt, err := netstack.ParseEth(frame)
	if err != nil || eh.EtherType != netstack.EtherTypeIPv4 {
		return
	}
	ih, l4, err := netstack.ParseIPv4(ipPkt)
	if err != nil || ih.Proto != netstack.ProtoUDP {
		return
	}
	uh, payload, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true)
	if err != nil || uh.DstPort != 7 {
		return
	}
	reply := netstack.BuildUDPFrame(peerMAC, netstack.MAC(eh.Src), ih.Dst, ih.Src, 7, uh.SrcPort, payload)
	p.loop.After(5*sim.Microsecond, func() { _ = p.link.Send(1, reply) })
}

type world struct {
	m    *hw.Machine
	k    *kernel.Kernel
	nic  *e1000.NIC
	peer *echoPeer
	link *ethlink.Link
	proc *Process
	ifc  *netstack.Iface
}

func boot(t *testing.T, plat hw.Platform) *world {
	t.Helper()
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(dev, peer)
	dev.AttachLink(link, 0)

	proc, err := Start(k, dev, e1000e.New(), "e1000e", 1001)
	if err != nil {
		t.Fatal(err)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(50 * sim.Microsecond)
	return &world{m: m, k: k, nic: dev, peer: peer, link: link, proc: proc, ifc: ifc}
}

func TestStartProbesUnmodifiedDriver(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	if w.ifc.MAC != netstack.MAC(dutMAC) {
		t.Fatal("netdev MAC not mirrored from driver probe")
	}
	// The driver process has its own CPU account with charges.
	if w.proc.Acct.Busy() == 0 {
		t.Fatal("driver process never charged CPU")
	}
	found := false
	for _, line := range w.k.Log() {
		if strings.Contains(line, "e1000e: probed") {
			found = true
		}
	}
	if !found {
		t.Fatal("driver probe log missing")
	}
}

func TestDriverDMAConfinedToOwnBuffers(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	// The device's translation state — device domain plus per-queue
	// sub-domains — contains exactly the driver's allocations: rings,
	// buffer pools, the proxy's TX slot pools — and nothing else
	// (Figure 9).
	maps := w.proc.DF.Mappings()
	if len(maps) == 0 {
		t.Fatal("no IOMMU mappings after open")
	}
	for _, mp := range maps {
		if mp.IOVA < 0x42430000 {
			t.Fatalf("unexpected low mapping %v", mp)
		}
	}
	// The device cannot DMA into kernel memory.
	if err := w.nic.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("device DMA to kernel memory succeeded under SUD")
	}
}

func TestUDPEchoThroughSUD(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	var replies int
	if _, err := w.k.Net.UDPBind(5000, func(p []byte, src netstack.IP, sport uint16) {
		replies++
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 5000, 7, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(sim.Millisecond)
	}
	if replies != 10 {
		t.Fatalf("got %d echo replies, want 10", replies)
	}
	if w.proc.ZeroCopyRx != 10 {
		t.Fatalf("zero-copy receives = %d, want 10", w.proc.ZeroCopyRx)
	}
	st := w.proc.Chan.Stats()
	if st.Upcalls == 0 || st.Downcalls == 0 {
		t.Fatalf("uchan stats %+v", st)
	}
}

func TestIoctlSyncUpcall(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	out, err := w.ifc.Ioctl(api.IoctlGetMIIStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&e1000.StatusLU == 0 {
		t.Fatal("MII status via sync upcall reports link down")
	}
}

func TestHungDriverInterruptibleUpcalls(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	w.proc.Hang()
	// Synchronous ioctl fails with an error instead of blocking forever —
	// the user can Ctrl-C ifconfig (§3.1.1).
	if _, err := w.ifc.Ioctl(api.IoctlGetMIIStatus, nil); err == nil {
		t.Fatal("ioctl to hung driver succeeded")
	}
	// Transmits don't block the kernel either; they fill the ring and
	// then fail cleanly.
	var sendErr error
	for i := 0; i < 4096 && sendErr == nil; i++ {
		sendErr = w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 9, []byte("x"))
	}
	if sendErr == nil {
		t.Fatal("sends to hung driver never backpressured")
	}
	// Kernel remains fully responsive.
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if w.proc.Chan.Dead() {
		t.Fatal("hung != dead")
	}
}

func TestKillAndRestartDriver(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	w.proc.Kill()
	if !w.proc.Killed() {
		t.Fatal("not killed")
	}
	// Interface is gone.
	if _, err := w.k.Net.Iface("eth0"); err == nil {
		t.Fatal("interface survived kill")
	}
	// Device DMA faults now (domain detached).
	if err := w.nic.DMAWrite(0x42430000, []byte{1}); err == nil {
		t.Fatal("device DMA after kill succeeded")
	}
	// Restart: a fresh process binds the same device and works again.
	proc2, err := Start(w.k, w.nic, e1000e.New(), "e1000e-2", 1002)
	if err != nil {
		t.Fatal("restart failed:", err)
	}
	ifc, err := w.k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	if err := w.k.Net.UDPSendTo(ifc, peerMAC, peerIP, 5000, 9, []byte("after restart")); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(sim.Millisecond)
	if len(w.peer.seen) == 0 {
		t.Fatal("no frame on wire after restart")
	}
	_ = proc2
}

func TestDMARlimit(t *testing.T) {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(dev, peer)
	dev.AttachLink(link, 0)

	proc, err := Start(k, dev, e1000e.New(), "e1000e", 1001)
	if err != nil {
		t.Fatal(err)
	}
	// Constrain the driver's DMA memory below what Open needs; opening
	// the interface must fail without harming the kernel (§4.1
	// setrlimit).
	proc.DF.MaxDMAPages = proc.DF.Allocs()[0].Pages + 2
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err == nil {
		t.Fatal("open under tight rlimit succeeded")
	}
}

func TestCarrierMirroring(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	w.m.Loop.RunFor(3 * sim.Second)
	if !w.ifc.Carrier() {
		t.Fatal("carrier not mirrored up")
	}
	w.link.SetCarrier(false)
	w.m.Loop.RunFor(3 * sim.Second)
	if w.ifc.Carrier() {
		t.Fatal("carrier not mirrored down")
	}
	if w.proc.Eth.MirrorUpdates < 2 {
		t.Fatalf("mirror updates = %d", w.proc.Eth.MirrorUpdates)
	}
}

func TestStreamThroughSUDDeliversPayload(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	var got bytes.Buffer
	if _, err := w.k.Net.UDPBind(9000, func(p []byte, _ netstack.IP, _ uint16) {
		got.Write(p)
	}); err != nil {
		t.Fatal(err)
	}
	// Peer pushes 50 frames at the DUT.
	want := bytes.Repeat([]byte("0123456789abcdef"), 64) // 1024 bytes
	for i := 0; i < 50; i++ {
		f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(dutMAC), peerIP, dutIP, 1, 9000, want)
		w.m.Loop.After(sim.Duration(i)*20*sim.Microsecond, func() { _ = w.link.Send(1, f) })
	}
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if got.Len() != 50*len(want) {
		t.Fatalf("app received %d bytes, want %d", got.Len(), 50*len(want))
	}
	if !bytes.Equal(got.Bytes()[:len(want)], want) {
		t.Fatal("payload corrupted through guard copy")
	}
}

func TestInterruptAckUnmasksAfterStorm(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	// Device raises interrupts faster than the driver acks: SUD masks.
	// This is exercised naturally under load; assert the policy hook
	// fires at least zero times without breaking traffic.
	for i := 0; i < 100; i++ {
		f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(dutMAC), peerIP, dutIP, 1, 12345, []byte{byte(i)})
		w.m.Loop.After(sim.Duration(i)*2*sim.Microsecond, func() { _ = w.link.Send(1, f) })
	}
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if w.nic.RxPackets != 100 {
		t.Fatalf("device rx = %d", w.nic.RxPackets)
	}
	// Traffic kept flowing: the stack dropped them (unbound port) but
	// counted them.
	if w.k.Net.RxFrames != 100 {
		t.Fatalf("stack rx = %d", w.k.Net.RxFrames)
	}
}

func TestMaliciousBufferReferenceRejected(t *testing.T) {
	w := boot(t, hw.DefaultPlatform())
	// A malicious driver downcalls netif_rx with a reference to kernel
	// memory it does not own.
	err := w.proc.Chan.Down(uchan.Msg{Op: ethproxy.OpNetifRx, Args: [6]uint64{uint64(hw.DRAMBase), 64}})
	if err != nil {
		t.Fatal(err)
	}
	w.proc.Chan.Flush()
	if w.proc.Eth.RxInvalidRef != 1 {
		t.Fatalf("invalid reference not rejected: %d", w.proc.Eth.RxInvalidRef)
	}
	if w.k.Net.RxFrames != 0 {
		t.Fatal("evil frame reached the stack")
	}
	// Absurd length is also rejected.
	if err := w.proc.Chan.Down(uchan.Msg{Op: ethproxy.OpNetifRx, Args: [6]uint64{0x42430000, 1 << 20}}); err != nil {
		t.Fatal(err)
	}
	w.proc.Chan.Flush()
	if w.proc.Eth.RxBadLength != 1 {
		t.Fatal("bad length not rejected")
	}
}
