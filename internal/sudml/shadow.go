package sudml

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel"
	"sud/internal/kernel/shadow"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml/policy"
	"sud/internal/trace"
)

// Supervisor implements the shadow-driver recovery the paper points at
// (§2: "SUD's architecture could also use shadow drivers to gracefully
// restart untrusted device drivers"; §5.2: "It is also relatively simple to
// restart a crashed device driver"). It watches one driver process, detects
// death or unresponsiveness, and recovers transparently: the kernel-side
// device object (netstack.Iface or blockdev.Dev) survives in the recovering
// state, the next incarnation adopts it, bring-up is replayed, and — for
// block devices — the shadow's in-flight request log is re-submitted under
// the original tags. Applications see a latency blip, never an error.
//
// What the supervisor does about a death is no longer hardwired: every
// detection is graded by the policy engine (internal/sudml/policy) into one
// of four verdicts —
//
//   - restart: respawn immediately (an isolated fault);
//   - restart with exponential backoff: the driver is crash-looping, pace
//     the respawns so a probe-time crasher cannot burn the whole budget
//     inside one health-check period;
//   - failover: promote the pre-spawned hot standby (ArmStandby), paying
//     probe + bring-up + replay instead of the full respawn path;
//   - quarantine: the sliding-window restart budget is exhausted, or the
//     evidence (flush lies, interrupt storms, stale-epoch floods) convicts
//     the driver outright — bar it, fail the parked work cleanly, and
//     leave the device down for the admin.
//
// Death detection is immediate (the process's OnDeath hook — SIGCHLD, in
// effect). Hang detection uses per-queue progress watermarks a malicious
// driver cannot suppress — a ring whose backlog persists while its served
// counter stands still is wedged, even when sibling queues are making
// progress — plus a failed synchronous probe (the interruptible MII ioctl)
// for netdev drivers.
type Supervisor struct {
	K      *kernel.Kernel
	Dev    pci.Device
	Driver api.Driver
	Name   string
	UID    int
	Queues int

	// CheckEvery is the health-check period.
	CheckEvery sim.Duration
	// BacklogLimit flags the driver when one queue's upcall ring holds at
	// least a proportional share (BacklogLimit / queues, at minimum 8) of
	// this many messages across consecutive checks with no served
	// progress on that queue.
	BacklogLimit int
	// MaxRestarts is the sliding-window restart budget: one more death
	// with this many restarts inside Policy.Cfg.RestartWindow is a crash
	// loop and quarantines the driver. Isolated kills separated by
	// healthy service age out of the window and never exhaust it.
	MaxRestarts int

	// Policy grades every detection into a verdict; its config is the
	// supervisor's knob surface for backoff and conviction thresholds.
	Policy *policy.Engine

	// Flight is the per-device flight recorder: a bounded ring holding the
	// last detection/evidence/verdict/recovery transitions. One ring is
	// shared by the supervisor, the policy engine, every process
	// incarnation (kill events) and the supervised kernel objects
	// (park/adopt/replay/drain), so a dump reads as one ordered timeline.
	Flight *trace.Flight

	// OnRestart, if set, runs after each successful recovery.
	OnRestart func(generation int)

	// BlkGuard is the guard mode (blkproxy.GuardCopy / GuardPageFlip)
	// applied to every incarnation's block proxy — including respawns and
	// armed standbys. A page-aware driver (nvmed.NewFlipQ) must always
	// face a GuardPageFlip proxy, or the restarted incarnation would defer
	// descriptor re-arm to a recycle lane that never runs.
	BlkGuard int

	proc        *Process
	standby     *Process // pre-spawned hot-standby shell (nil = disarmed)
	stopped     bool
	lastBad     bool
	lastServedQ []uint64 // per-queue driver-produced messages at the previous check
	recovering  bool
	backingOff  bool // a paced restart is scheduled; don't grade this death again
	Restarts    int
	// Failovers counts recoveries served by standby promotion; Quarantined
	// latches when supervision ends with the driver barred. LastVerdict is
	// the most recent grading.
	Failovers   int
	Quarantined bool
	LastVerdict policy.Verdict

	// QueueRecoveries counts surgical single-queue recoveries: sub-domain
	// faults attributable to one queue, answered by revoking that queue's
	// DMA and replaying only its work while siblings keep serving.
	QueueRecoveries int
	// lastStreamFaults is the per-queue IOMMU sub-domain fault watermark
	// (stream q+1) at the previous health check; a delta is the detection
	// signal for surgical recovery.
	lastStreamFaults []uint64

	// staleHarvest accumulates stale-epoch downcall counts from dead
	// incarnations' proxies (evidence for the policy plane).
	staleHarvest uint64

	// ifName / blkName select the device class under supervision (either
	// or both may be set); they name the kernel object to recover.
	ifName  string
	blkName string

	// NetShadow / BlkShadow are the recovery-state mirrors attached to the
	// supervised kernel objects (internal/kernel/shadow).
	NetShadow *shadow.Net
	BlkShadow *shadow.Block

	// LastReplayed is the number of logged block requests re-submitted by
	// the most recent recovery; LastRecoveryAt is when it finished.
	LastReplayed   int
	LastRecoveryAt sim.Time
}

// Supervise starts a netdev-class driver process under supervision,
// single-queue. Pass the interface name so its configuration can be
// shadowed and replayed.
func Supervise(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName string, uid int) (*Supervisor, error) {
	return supervise(k, dev, drv, name, ifName, "", uid, 1)
}

// SuperviseNetQ starts a netdev-class driver process under supervision with
// `queues` uchan ring pairs — the multi-queue net analogue of SuperviseBlock.
// The tenant plane uses it so the NIC queue carrying one tenant's flows can
// be revoked, parked and surgically recovered without touching siblings.
func SuperviseNetQ(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName string, uid, queues int) (*Supervisor, error) {
	return supervise(k, dev, drv, name, ifName, "", uid, queues)
}

// SuperviseBlock starts a block-class driver process under supervision with
// `queues` uchan ring pairs. blkName is the block device the driver
// registers (e.g. "nvme0"); its geometry and in-flight request log are
// shadowed so a kill is invisible to ReadAt/WriteAt callers.
func SuperviseBlock(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, blkName string, uid, queues int) (*Supervisor, error) {
	return supervise(k, dev, drv, name, "", blkName, uid, queues)
}

func supervise(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName, blkName string, uid, queues int) (*Supervisor, error) {
	if queues < 1 {
		queues = 1
	}
	s := &Supervisor{
		K: k, Dev: dev, Driver: drv, Name: name, UID: uid, Queues: queues,
		CheckEvery:   5 * sim.Millisecond,
		BacklogLimit: 64,
		MaxRestarts:  8,
		Policy:       policy.NewEngine(policy.DefaultConfig()),
		ifName:       ifName,
		blkName:      blkName,
		Flight:       trace.NewFlight(k.M.Loop, trace.FlightSize),
	}
	s.Policy.Flight = s.Flight
	if err := s.start(0); err != nil {
		return nil, err
	}
	s.attachShadows()
	s.schedule()
	return s, nil
}

// baselineQueueFaults snapshots the per-queue sub-domain fault counters so
// only faults raised under supervision trigger surgical recovery.
func (s *Supervisor) baselineQueueFaults() {
	bdf := s.Dev.BDF()
	s.lastStreamFaults = make([]uint64, s.Queues)
	for q := 0; q < s.Queues; q++ {
		s.lastStreamFaults[q] = s.K.M.IOMMU.StreamFaults(bdf, q+1)
	}
}

// attachShadows arms recovery recording on the supervised kernel objects.
// The kernel objects survive restarts (adoption), so this runs once.
func (s *Supervisor) attachShadows() {
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil {
			s.NetShadow = &shadow.Net{}
			ifc.Shadow = s.NetShadow
			ifc.Flight = s.Flight
		}
	}
	if s.blkName != "" {
		if d, err := s.K.Blk.Dev(s.blkName); err == nil {
			s.BlkShadow = shadow.NewBlock(d.Geom)
			d.AttachShadow(s.BlkShadow)
			d.Flight = s.Flight
		}
	}
}

func (s *Supervisor) start(gen int) error {
	name := s.Name
	if gen > 0 {
		name = fmt.Sprintf("%s-r%d", s.Name, gen)
	}
	proc, err := StartQ(s.K, s.Dev, s.Driver, name, s.UID, s.Queues)
	if err != nil {
		return err
	}
	if proc.Blk != nil {
		proc.Blk.GuardMode = s.BlkGuard
	}
	proc.Flight = s.Flight
	proc.Recoverable = true
	proc.OnDeath = s.onDeath
	s.proc = proc
	s.lastBad = false
	s.lastServedQ = nil
	// Faults raised while the previous incarnation was dying (in-flight DMA
	// after the kill) belong to that incarnation; rebase the surgical
	// watermarks so they are not charged to the fresh process.
	s.baselineQueueFaults()
	return nil
}

// Proc returns the currently supervised process.
func (s *Supervisor) Proc() *Process { return s.proc }

// StandbyProc returns the armed hot-standby shell (nil when disarmed).
func (s *Supervisor) StandbyProc() *Process { return s.standby }

// ArmStandby pre-spawns a hot-standby driver process for the supervised
// device and pre-registers it with the kernel — before any kill — so a
// later death is graded to failover: the standby adopts the device through
// the same name+geometry/MAC identity checks a restarted driver would pass,
// but with the respawn cost already sunk. After each failover a fresh
// standby is re-armed automatically (best effort).
func (s *Supervisor) ArmStandby() error {
	if s.stopped {
		return fmt.Errorf("sudml: supervision of %s has ended", s.Name)
	}
	if s.standby != nil {
		return nil
	}
	name := fmt.Sprintf("%s-sb%d", s.Name, s.Restarts)
	sb, err := StartStandbyQ(s.K, s.Dev, s.Driver, name, s.UID, s.Queues)
	if err != nil {
		return err
	}
	sb.Flight = s.Flight
	if s.blkName != "" {
		d, err := s.K.Blk.Dev(s.blkName)
		if err != nil {
			sb.Kill()
			return err
		}
		if err := sb.ArmBlockStandby(s.blkName, d.Geom); err != nil {
			sb.Kill()
			return err
		}
		if sb.Blk != nil {
			sb.Blk.GuardMode = s.BlkGuard
		}
	}
	if s.ifName != "" {
		ifc, err := s.K.Net.Iface(s.ifName)
		if err != nil {
			s.disarmKernelStandby()
			sb.Kill()
			return err
		}
		if err := sb.ArmNetStandby(s.ifName, ifc.MAC); err != nil {
			s.disarmKernelStandby()
			sb.Kill()
			return err
		}
	}
	s.standby = sb
	return nil
}

// DisarmStandby kills the armed standby shell and removes its kernel
// registrations.
func (s *Supervisor) DisarmStandby() {
	if s.standby == nil {
		return
	}
	s.disarmKernelStandby()
	s.standby.Kill()
	s.standby = nil
}

// disarmKernelStandby clears the kernel-side standby tables for the
// supervised objects (safe when nothing is registered).
func (s *Supervisor) disarmKernelStandby() {
	if s.blkName != "" {
		s.K.Blk.UnregisterStandby(s.blkName)
	}
	if s.ifName != "" {
		s.K.Net.UnregisterStandby(s.ifName)
	}
}

// Stop ends supervision (the process keeps running; an armed standby shell
// is torn down). It is idempotent, and an onDeath or health-check event
// already in flight when it runs becomes a no-op.
func (s *Supervisor) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.DisarmStandby()
}

func (s *Supervisor) schedule() {
	s.K.M.Loop.After(s.CheckEvery, s.check)
}

// onDeath is the immediate kill notification: the supervised process died
// (kill -9, confinement kill, or crash). Grading runs from a fresh loop
// event — the death may have been signalled mid-upcall.
func (s *Supervisor) onDeath() {
	if s.stopped || s.recovering {
		return
	}
	s.K.M.Loop.After(0, func() {
		if s.stopped || s.recovering || s.backingOff || s.proc == nil || !s.proc.Killed() {
			return
		}
		s.decide("died")
	})
}

// check is the periodic health probe, run in kernel context. Once the
// supervisor has stopped — including a quarantine verdict issued by a
// recovery this check triggered — no further check is scheduled: the give-up
// path must not leave a stray timer behind.
func (s *Supervisor) check() {
	if s.stopped || s.proc == nil {
		return
	}
	if s.proc.Killed() {
		// Death is normally handled by onDeath; this is the fallback for a
		// process that died without the hook firing (and the path that
		// re-grades a death during backoff pacing — decide() dedups).
		s.decide("died")
		if s.stopped {
			return
		}
		s.schedule()
		return
	}
	if s.observeEvidence() {
		// The evidence convicted the driver outright: kill it and let the
		// grading (now latched at quarantine) run the give-up path.
		s.K.Logf("supervisor: %s convicted: %s", s.Name, s.Policy.Reason())
		s.decide("convicted")
		if s.stopped {
			return
		}
		s.schedule()
		return
	}
	if s.checkQueueFaults() {
		// A surgical recovery ran (or escalated to quarantine) this check.
		if s.stopped {
			return
		}
		s.schedule()
		return
	}
	bad := s.unhealthy()
	if bad && s.lastBad {
		s.lastBad = false
		s.decide("wedged")
		if s.stopped {
			return
		}
	} else {
		s.lastBad = bad
	}
	s.schedule()
}

// observeEvidence assembles the misbehaviour counters from the proxies,
// the confinement layer and the device ground truth into one policy
// snapshot. It reports whether the snapshot convicted the driver.
func (s *Supervisor) observeEvidence() bool {
	ev := policy.Evidence{StaleEpoch: s.staleHarvest}
	if p := s.proc; p != nil {
		if p.Blk != nil {
			ev.BarrierViolations = p.Blk.BarrierViolations()
			ev.FlushesAcked = p.Blk.FlushesAcked
			ev.StaleEpoch += p.Blk.CompStaleEpoch
		}
		if p.Eth != nil {
			ev.StaleEpoch += p.Eth.StaleEpochDowncalls()
		}
		if p.DF != nil {
			ev.StormTrips = p.DF.StormResponses
		}
	}
	// Device ground truth, when the supervised device exports it: barriers
	// the proxy saw acked versus flushes the device says it executed.
	if gt, ok := s.Dev.(interface{ FlushGroundTruth() (uint64, uint64) }); ok {
		flushes, _ := gt.FlushGroundTruth()
		ev.FlushesExecuted = flushes
	} else {
		ev.FlushesExecuted = ev.FlushesAcked // no ground truth — no lie to find
	}
	return s.Policy.Observe(ev)
}

// unhealthy applies the per-queue progress watermarks: queue q is wedged
// when its own upcall ring holds a backlog while its own served counter
// (downcalls + doorbells produced by that queue's service thread) has not
// moved since the previous check. Saturation with progress is healthy
// backpressure; a deep ring with zero progress is a wedge — and tracking
// it per queue means one hung service thread is visible even while
// siblings serve at full rate.
func (s *Supervisor) unhealthy() bool {
	nq := s.proc.Chan.NumQueues()
	if len(s.lastServedQ) != nq {
		s.lastServedQ = make([]uint64, nq)
		for q := 0; q < nq; q++ {
			s.lastServedQ[q] = s.proc.Chan.QueueStats(q).Served()
		}
		return false
	}
	limit := s.BacklogLimit / nq
	if limit < 8 {
		limit = 8
	}
	wedged := false
	for q := 0; q < nq; q++ {
		served := s.proc.Chan.QueueStats(q).Served()
		if s.proc.Chan.QueuePending(q) >= limit && served == s.lastServedQ[q] {
			wedged = true
		}
		s.lastServedQ[q] = served
	}
	if wedged {
		return true
	}
	// Active probe for netdev drivers: the interruptible sync ioctl.
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil && ifc.IsUp() && !ifc.Recovering() {
			if _, err := ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
				return true
			}
		}
	}
	return false
}

// checkQueueFaults scans the per-queue IOMMU sub-domain fault counters
// (stream q+1 for driver queue q) for deltas since the previous check and
// answers each afflicted queue with a surgical recovery. It reports whether
// any queue was recovered (or the recovery escalated to full quarantine),
// so the caller can skip the wedge heuristics for this period.
func (s *Supervisor) checkQueueFaults() bool {
	if s.recovering || s.backingOff || s.proc == nil || s.proc.DF == nil {
		return false
	}
	bdf := s.Dev.BDF()
	if len(s.lastStreamFaults) != s.Queues {
		s.baselineQueueFaults()
		return false
	}
	acted := false
	for q := 0; q < s.Queues; q++ {
		n := s.K.M.IOMMU.StreamFaults(bdf, q+1)
		if n > s.lastStreamFaults[q] {
			delta := n - s.lastStreamFaults[q]
			s.lastStreamFaults[q] = n
			s.surgical(q, delta)
			acted = true
			if s.stopped {
				return true
			}
			continue
		}
		s.lastStreamFaults[q] = n
	}
	return acted
}

// surgical is the single-queue recovery path: queue q raised sub-domain
// faults, so exactly that queue is killed (its DMA sub-domain revoked),
// parked, graded, re-armed and replayed — the driver process and every
// sibling queue keep running throughout. The flight ring reads the ISSUE
// timeline in order: kill -> park -> verdict -> replay -> drain. A queue
// that re-offends past Policy.Cfg.QueueOffenseLimit escalates to the full
// quarantine verdict.
func (s *Supervisor) surgical(q int, faults uint64) {
	cause := fmt.Sprintf("%d sub-domain faults", faults)
	// Kill: the queue's DMA dies first, before any grading — a faulting
	// queue must not get another descriptor fetch in.
	s.Flight.Recordf(trace.FKill, "%s q%d: DMA revoked (%s)", s.Name, q, cause)
	if err := s.proc.DF.RevokeQueueDMA(q + 1); err != nil {
		s.K.Logf("supervisor: %s q%d DMA revoke failed: %v", s.Name, q, err)
	}
	// Park: proxy first (advisory epoch frame to the runtime), then the
	// kernel object (epoch bump + drain watermark, records FPark).
	if s.proc.Blk != nil {
		s.proc.Blk.ParkQueue(q)
	}
	if s.proc.Eth != nil {
		s.proc.Eth.ParkQueue(q)
	}
	for _, rd := range s.recoverables() {
		rd.BeginQueueRecovery(q)
	}
	// Verdict: grade the offense. Repeat offenders escalate to the
	// device-wide quarantine path.
	d := s.Policy.OnQueueFault(s.K.M.Now(), q, cause)
	s.LastVerdict = d.Verdict
	if d.Verdict == policy.Quarantine {
		s.quarantine(d.Reason)
		return
	}
	s.K.Logf("supervisor: %s q%d surgically recovered: %s", s.Name, q, d.Reason)
	// Replay: re-arm the sub-domain (mappings survived the revoke), bump
	// the queue epoch through the proxy (stale-completion fence), and
	// release the kernel queue — its shadow log replays under original
	// tags, then the drain leg closes the timeline.
	if err := s.proc.DF.RearmQueueDMA(q + 1); err != nil {
		s.K.Logf("supervisor: %s q%d DMA re-arm failed: %v", s.Name, q, err)
	}
	if s.proc.Blk != nil {
		s.proc.Blk.RearmQueue(q)
	}
	if s.proc.Eth != nil {
		s.proc.Eth.RearmQueue(q)
	}
	replayed := 0
	for _, rd := range s.recoverables() {
		if n, rerr := rd.CompleteQueueRecovery(q); rerr != nil {
			s.K.Logf("supervisor: %s q%d recovery failed: %v", s.Name, q, rerr)
		} else {
			replayed += n
		}
	}
	s.LastReplayed = replayed
	s.QueueRecoveries++
	s.LastRecoveryAt = s.K.M.Now()
}

// recoverables returns the supervised kernel-side device objects behind the
// unified api.RecoverableDevice contract — whichever of the block device and
// the network interface this supervisor watches. The class-specific legs
// (proxy park/re-arm, adoption binding, quarantine) stay per class; the
// epoch/park/replay protocol itself is driven through this one surface.
func (s *Supervisor) recoverables() []api.RecoverableDevice {
	var out []api.RecoverableDevice
	if s.blkName != "" {
		if d, err := s.K.Blk.Dev(s.blkName); err == nil {
			out = append(out, d)
		}
	}
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil {
			out = append(out, ifc)
		}
	}
	return out
}

// decide grades one detection through the policy engine and executes the
// verdict. cause is the detector's trail for the log.
func (s *Supervisor) decide(cause string) {
	if s.stopped || s.proc == nil || s.recovering || s.backingOff {
		return
	}
	s.Flight.Recordf(trace.FDetect, "%s: %s", s.Name, cause)
	now := s.K.M.Now()
	s.Policy.Cfg.WindowBudget = s.MaxRestarts
	d := s.Policy.OnDeath(now, s.standby != nil && !s.standby.Killed(), cause)
	s.LastVerdict = d.Verdict
	switch d.Verdict {
	case policy.Quarantine:
		s.quarantine(d.Reason)
	case policy.Failover:
		if !s.failover() {
			s.recover()
		}
	case policy.RestartBackoff:
		s.K.Logf("supervisor: %s %s; restarting in %v (generation %d)",
			s.Name, d.Reason, d.Delay, s.Restarts+1)
		// Kill now — the device parks under recovery for the whole wait —
		// and respawn when the pacing delay expires.
		s.proc.Kill()
		s.Flight.Recordf(trace.FBackoff, "pacing restart by %v (generation %d)", d.Delay, s.Restarts+1)
		s.backingOff = true
		s.K.M.Loop.After(d.Delay, func() {
			s.backingOff = false
			if s.stopped {
				return
			}
			s.recover()
		})
	default:
		s.recover()
	}
}

// recover kills the wedged (or buries the dead) process and brings up a
// fresh one against the same device model: the kill routes the supervised
// devices into shadow recovery (Recoverable), the fresh probe adopts them,
// and CompleteRecovery replays bring-up and the pending request log. The
// respawn takes startupCost of wall-clock time — booting the UML
// environment is real work — during which the devices stay parked; this is
// exactly the window a hot standby (ArmStandby) pre-pays.
func (s *Supervisor) recover() {
	if s.stopped || s.proc == nil || s.recovering {
		return
	}
	s.recovering = true
	s.Restarts++
	s.Policy.RecordRestart(s.K.M.Now())
	s.K.Logf("supervisor: %s down; restarting (generation %d)", s.Name, s.Restarts)
	s.harvestStale(s.proc)
	s.proc.Kill() // no-op if already dead; devices enter recovery either way
	gen := s.Restarts
	s.K.M.Loop.After(startupCost, func() {
		defer func() { s.recovering = false }()
		if s.stopped {
			return
		}
		s.Flight.Recordf(trace.FRespawn, "generation %d spawning", gen)
		if err := s.start(gen); err != nil {
			s.K.Logf("supervisor: restart of %s failed: %v", s.Name, err)
			s.quarantine(fmt.Sprintf("respawn failed: %v", err))
			return
		}
		s.completeRecovery()
	})
}

// failover promotes the armed hot standby instead of respawning: the
// device object moves to the standby's pre-registered proxy, the standby
// probes the (now orphaned) hardware, and replay proceeds as in any
// recovery — but the respawn cost was paid before the kill. It reports
// false if no promotion was possible (the caller falls back to a cold
// restart); activation failures after promotion are handled internally by
// killing the standby, which re-parks the device for the next grading.
func (s *Supervisor) failover() bool {
	sb := s.standby
	if sb == nil || sb.Killed() {
		s.standby = nil
		return false
	}
	if s.stopped || s.proc == nil || s.recovering {
		return false
	}
	s.recovering = true
	defer func() { s.recovering = false }()
	s.harvestStale(s.proc)
	s.proc.Kill() // no-op if already dead; parks the devices, bumps the epoch
	s.Flight.Recordf(trace.FPromote, "promoting hot standby %s", sb.Name)
	promoted := false
	if s.blkName != "" {
		d, err := s.K.Blk.PromoteStandby(s.blkName)
		if err != nil {
			s.K.Logf("supervisor: block failover of %s failed: %v", s.blkName, err)
		} else {
			sb.Blk.Bind(d)
			promoted = true
		}
	}
	if s.ifName != "" {
		ifc, err := s.K.Net.PromoteStandby(s.ifName)
		if err != nil {
			s.K.Logf("supervisor: net failover of %s failed: %v", s.ifName, err)
		} else {
			sb.Eth.Bind(ifc)
			promoted = true
		}
	}
	if !promoted {
		return false
	}
	s.Restarts++
	s.Failovers++
	s.Policy.RecordRestart(s.K.M.Now())
	s.K.Logf("supervisor: %s down; promoting hot standby %s (generation %d)",
		s.Name, sb.Name, s.Restarts)
	s.standby = nil
	s.proc = sb
	s.lastBad = false
	s.lastServedQ = nil
	s.baselineQueueFaults()
	sb.Recoverable = true
	sb.OnDeath = s.onDeath
	if err := sb.ActivateDriver(); err != nil {
		// The standby could not bring up the orphaned hardware: kill it,
		// which re-parks the device (BeginRecovery) and routes the next
		// grading through the cold-restart path.
		s.K.Logf("supervisor: standby activation of %s failed: %v", sb.Name, err)
		sb.Kill()
		return true
	}
	s.completeRecovery()
	// Re-arm for the next fault (best effort — a failed re-arm just means
	// the next death takes the cold path).
	if err := s.ArmStandby(); err != nil {
		s.K.Logf("supervisor: re-arming standby for %s failed: %v", s.Name, err)
	}
	return true
}

// completeRecovery replays bring-up and the block request log into the
// adopted (or promoted) incarnation; parked work drains behind it. A
// failure means the new incarnation is broken too — kill it, which
// re-enters recovery bounded by the policy window.
func (s *Supervisor) completeRecovery() {
	s.LastReplayed = 0
	for _, rd := range s.recoverables() {
		n, rerr := rd.CompleteRecovery()
		if rerr != nil {
			s.K.Logf("supervisor: recovery of %s failed: %v", s.Name, rerr)
			s.proc.Kill()
			return
		}
		s.LastReplayed += n
	}
	s.LastRecoveryAt = s.K.M.Now()
	if s.OnRestart != nil {
		s.OnRestart(s.Restarts)
	}
}

// harvestStale folds a dying incarnation's stale-epoch counters into the
// supervisor's running total before its proxies are replaced (evidence for
// the policy plane: a flood means a zombie replaying traffic).
func (s *Supervisor) harvestStale(p *Process) {
	if p == nil {
		return
	}
	if p.Blk != nil {
		s.staleHarvest += p.Blk.CompStaleEpoch
	}
	if p.Eth != nil {
		s.staleHarvest += p.Eth.StaleEpochDowncalls()
	}
}

// quarantine executes the give-up verdict: supervision ends, the driver is
// barred (killed if still alive, its standby torn down), and the supervised
// devices are quarantined — they survive, down and driverless, with every
// parked and logged request failed cleanly with ErrDown rather than left
// waiting for a restart that will never come.
func (s *Supervisor) quarantine(reason string) {
	s.K.Logf("supervisor: %s quarantined: %s", s.Name, reason)
	s.Flight.Recordf(trace.FQuarantine, "%s: %s", s.Name, reason)
	s.stopped = true
	s.Quarantined = true
	s.LastVerdict = policy.Quarantine
	s.Policy.Convict(reason)
	s.DisarmStandby()
	if s.proc != nil && !s.proc.Killed() {
		s.proc.Kill()
	}
	if s.blkName != "" {
		s.K.Blk.Quarantine(s.blkName)
	}
	if s.ifName != "" {
		s.K.Net.Quarantine(s.ifName)
	}
}
