package sudml

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel"
	"sud/internal/kernel/shadow"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Supervisor implements the shadow-driver recovery the paper points at
// (§2: "SUD's architecture could also use shadow drivers to gracefully
// restart untrusted device drivers"; §5.2: "It is also relatively simple to
// restart a crashed device driver"). It watches one driver process, detects
// death or unresponsiveness, and transparently restarts it against the same
// device model: the kernel-side device object (netstack.Iface or
// blockdev.Dev) survives in the recovering state, the restarted process
// adopts it at registration, bring-up is replayed, and — for block devices —
// the shadow's in-flight request log is re-submitted under the original
// tags. Applications see a latency blip, never an error.
//
// Death detection is immediate (the process's OnDeath hook — SIGCHLD, in
// effect). Hang detection uses two signals a malicious driver cannot
// suppress: an upcall ring that stays backed up across consecutive checks,
// and a failed synchronous probe (the interruptible MII ioctl).
type Supervisor struct {
	K      *kernel.Kernel
	Dev    pci.Device
	Driver api.Driver
	Name   string
	UID    int
	Queues int

	// CheckEvery is the health-check period.
	CheckEvery sim.Duration
	// BacklogLimit flags the driver when the upcall ring holds at least
	// this many messages on two consecutive checks.
	BacklogLimit int
	// MaxRestarts stops supervision after this many recoveries
	// (a crash-looping driver should be left dead for the admin).
	MaxRestarts int

	// OnRestart, if set, runs after each successful recovery.
	OnRestart func(generation int)

	proc       *Process
	stopped    bool
	lastBad    bool
	lastServed uint64 // driver-produced messages at the previous check
	recovering bool
	Restarts   int

	// ifName / blkName select the device class under supervision (either
	// or both may be set); they name the kernel object to recover.
	ifName  string
	blkName string

	// NetShadow / BlkShadow are the recovery-state mirrors attached to the
	// supervised kernel objects (internal/kernel/shadow).
	NetShadow *shadow.Net
	BlkShadow *shadow.Block

	// LastReplayed is the number of logged block requests re-submitted by
	// the most recent recovery; LastRecoveryAt is when it finished.
	LastReplayed   int
	LastRecoveryAt sim.Time
}

// Supervise starts a netdev-class driver process under supervision,
// single-queue. Pass the interface name so its configuration can be
// shadowed and replayed.
func Supervise(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName string, uid int) (*Supervisor, error) {
	return supervise(k, dev, drv, name, ifName, "", uid, 1)
}

// SuperviseBlock starts a block-class driver process under supervision with
// `queues` uchan ring pairs. blkName is the block device the driver
// registers (e.g. "nvme0"); its geometry and in-flight request log are
// shadowed so a kill is invisible to ReadAt/WriteAt callers.
func SuperviseBlock(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, blkName string, uid, queues int) (*Supervisor, error) {
	return supervise(k, dev, drv, name, "", blkName, uid, queues)
}

func supervise(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName, blkName string, uid, queues int) (*Supervisor, error) {
	if queues < 1 {
		queues = 1
	}
	s := &Supervisor{
		K: k, Dev: dev, Driver: drv, Name: name, UID: uid, Queues: queues,
		CheckEvery:   5 * sim.Millisecond,
		BacklogLimit: 64,
		MaxRestarts:  8,
		ifName:       ifName,
		blkName:      blkName,
	}
	if err := s.start(0); err != nil {
		return nil, err
	}
	s.attachShadows()
	s.schedule()
	return s, nil
}

// attachShadows arms recovery recording on the supervised kernel objects.
// The kernel objects survive restarts (adoption), so this runs once.
func (s *Supervisor) attachShadows() {
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil {
			s.NetShadow = &shadow.Net{}
			ifc.Shadow = s.NetShadow
		}
	}
	if s.blkName != "" {
		if d, err := s.K.Blk.Dev(s.blkName); err == nil {
			s.BlkShadow = shadow.NewBlock(d.Geom)
			d.AttachShadow(s.BlkShadow)
		}
	}
}

func (s *Supervisor) start(gen int) error {
	name := s.Name
	if gen > 0 {
		name = fmt.Sprintf("%s-r%d", s.Name, gen)
	}
	proc, err := StartQ(s.K, s.Dev, s.Driver, name, s.UID, s.Queues)
	if err != nil {
		return err
	}
	proc.Recoverable = true
	proc.OnDeath = s.onDeath
	s.proc = proc
	s.lastBad = false
	s.lastServed = 0
	return nil
}

// Proc returns the currently supervised process.
func (s *Supervisor) Proc() *Process { return s.proc }

// Stop ends supervision (the process keeps running).
func (s *Supervisor) Stop() { s.stopped = true }

func (s *Supervisor) schedule() {
	s.K.M.Loop.After(s.CheckEvery, s.check)
}

// onDeath is the immediate kill notification: the supervised process died
// (kill -9, confinement kill, or crash). Recovery runs from a fresh loop
// event — the death may have been signalled mid-upcall.
func (s *Supervisor) onDeath() {
	if s.stopped || s.recovering {
		return
	}
	s.K.M.Loop.After(0, func() {
		if s.stopped || s.recovering || s.proc == nil || !s.proc.Killed() {
			return
		}
		s.recover()
	})
}

// check is the periodic health probe, run in kernel context.
func (s *Supervisor) check() {
	if s.stopped || s.proc == nil {
		return
	}
	if s.proc.Killed() {
		// Death is normally handled by onDeath; this is the fallback for
		// a process that died without the hook firing.
		s.recover()
		s.schedule()
		return
	}
	bad := s.unhealthy()
	if bad && s.lastBad {
		s.recover()
		s.lastBad = false
	} else {
		s.lastBad = bad
	}
	s.schedule()
}

func (s *Supervisor) unhealthy() bool {
	// A backed-up upcall ring flags the driver only when it also served
	// nothing since the last check: saturation with progress is healthy
	// backpressure, a deep ring with zero driver-produced messages
	// (downcalls, doorbells) is a wedge.
	st := s.proc.Chan.Stats()
	served := st.Downcalls + st.Doorbells
	stalled := s.proc.Chan.Pending() >= s.BacklogLimit && served == s.lastServed
	s.lastServed = served
	if stalled {
		return true
	}
	// Active probe for netdev drivers: the interruptible sync ioctl.
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil && ifc.IsUp() && !ifc.Recovering() {
			if _, err := ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
				return true
			}
		}
	}
	return false
}

// recover kills the wedged (or buries the dead) process and brings up a
// fresh one against the same device model. The kill routes the supervised
// devices into shadow recovery (Recoverable), the fresh probe adopts them,
// and CompleteRecovery replays bring-up and the pending request log.
func (s *Supervisor) recover() {
	if s.stopped || s.proc == nil || s.recovering {
		return
	}
	if s.Restarts >= s.MaxRestarts {
		s.K.Logf("supervisor: %s crash-looping; giving up after %d restarts", s.Name, s.Restarts)
		s.stopped = true
		s.abortRecovery()
		return
	}
	s.recovering = true
	defer func() { s.recovering = false }()
	s.Restarts++
	s.K.Logf("supervisor: %s down; restarting (generation %d)", s.Name, s.Restarts)
	s.proc.Kill() // no-op if already dead; devices enter recovery either way
	if err := s.start(s.Restarts); err != nil {
		s.K.Logf("supervisor: restart of %s failed: %v", s.Name, err)
		s.stopped = true
		s.abortRecovery()
		return
	}
	// Replay: bring-up, then the block request log; parked work drains
	// behind it. A failure here means the new incarnation is broken too —
	// kill it, which re-enters recovery bounded by MaxRestarts.
	s.LastReplayed = 0
	if s.blkName != "" {
		if d, err := s.K.Blk.Dev(s.blkName); err == nil {
			n, rerr := d.CompleteRecovery()
			if rerr != nil {
				s.K.Logf("supervisor: block recovery of %s failed: %v", s.blkName, rerr)
				s.proc.Kill()
				return
			}
			s.LastReplayed += n
		}
	}
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil {
			if rerr := ifc.CompleteRecovery(); rerr != nil {
				s.K.Logf("supervisor: net recovery of %s failed: %v", s.ifName, rerr)
				s.proc.Kill()
				return
			}
		}
	}
	s.LastRecoveryAt = s.K.M.Now()
	if s.OnRestart != nil {
		s.OnRestart(s.Restarts)
	}
}

// abortRecovery runs when supervision gives up with a device still parked
// mid-recovery: the device is unregistered so every parked and logged
// request fails with ErrDown instead of waiting forever for a restart that
// will never come.
func (s *Supervisor) abortRecovery() {
	if s.blkName != "" {
		if d, err := s.K.Blk.Dev(s.blkName); err == nil && d.Recovering() {
			s.K.Blk.Unregister(s.blkName)
		}
	}
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil && ifc.Recovering() {
			s.K.Net.Unregister(s.ifName)
		}
	}
}
