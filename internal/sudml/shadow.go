package sudml

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Supervisor implements the shadow-driver-style recovery the paper points
// at (§2: "SUD's architecture could also use shadow drivers to gracefully
// restart untrusted device drivers"; §5.2: "It is also relatively simple to
// restart a crashed device driver"). It watches one driver process, detects
// unresponsiveness, and transparently kills and restarts it, replaying the
// mirrored interface state (the shadow state) so applications see a brief
// stall instead of a dead device.
//
// Detection uses two signals a malicious driver cannot suppress: an upcall
// ring that stays backed up across consecutive checks, and a failed
// synchronous probe (the interruptible MII ioctl).
type Supervisor struct {
	K      *kernel.Kernel
	Dev    pci.Device
	Driver api.Driver
	Name   string
	UID    int

	// CheckEvery is the health-check period.
	CheckEvery sim.Duration
	// BacklogLimit flags the driver when the upcall ring holds at least
	// this many messages on two consecutive checks.
	BacklogLimit int
	// MaxRestarts stops supervision after this many recoveries
	// (a crash-looping driver should be left dead for the admin).
	MaxRestarts int

	// OnRestart, if set, runs after each successful recovery.
	OnRestart func(generation int)

	proc     *Process
	stopped  bool
	lastBad  bool
	Restarts int

	// shadow state for netdev-class drivers: whether the interface was
	// up and with which address.
	ifName string
	wasUp  bool
	addr   netstack.IP
}

// Supervise starts a driver process under supervision. For netdev drivers,
// pass the interface name so its up/address state can be replayed.
func Supervise(k *kernel.Kernel, dev pci.Device, drv api.Driver, name, ifName string, uid int) (*Supervisor, error) {
	s := &Supervisor{
		K: k, Dev: dev, Driver: drv, Name: name, UID: uid,
		CheckEvery:   5 * sim.Millisecond,
		BacklogLimit: 64,
		MaxRestarts:  8,
		ifName:       ifName,
	}
	if err := s.start(0); err != nil {
		return nil, err
	}
	s.schedule()
	return s, nil
}

func (s *Supervisor) start(gen int) error {
	name := s.Name
	if gen > 0 {
		name = fmt.Sprintf("%s-r%d", s.Name, gen)
	}
	proc, err := Start(s.K, s.Dev, s.Driver, name, s.UID)
	if err != nil {
		return err
	}
	s.proc = proc
	return nil
}

// Proc returns the currently supervised process.
func (s *Supervisor) Proc() *Process { return s.proc }

// Stop ends supervision (the process keeps running).
func (s *Supervisor) Stop() { s.stopped = true }

func (s *Supervisor) schedule() {
	s.K.M.Loop.After(s.CheckEvery, s.check)
}

// check is the periodic health probe, run in kernel context.
func (s *Supervisor) check() {
	if s.stopped || s.proc == nil {
		return
	}
	bad := s.unhealthy()
	if bad && s.lastBad {
		s.recover()
		s.lastBad = false
	} else {
		s.lastBad = bad
	}
	s.schedule()
}

func (s *Supervisor) unhealthy() bool {
	if s.proc.Killed() {
		return true
	}
	if s.proc.Chan.Pending() >= s.BacklogLimit {
		return true
	}
	// Active probe for netdev drivers: the interruptible sync ioctl.
	if s.ifName != "" {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil && ifc.IsUp() {
			// Record shadow state while healthy.
			s.wasUp = true
			s.addr = ifc.IP
			if _, err := ifc.Ioctl(api.IoctlGetMIIStatus, nil); err != nil {
				return true
			}
		}
	}
	return false
}

// recover kills the wedged process and brings up a fresh one, replaying the
// recorded shadow state.
func (s *Supervisor) recover() {
	if s.Restarts >= s.MaxRestarts {
		s.K.Logf("supervisor: %s crash-looping; giving up after %d restarts", s.Name, s.Restarts)
		s.stopped = true
		return
	}
	s.Restarts++
	s.K.Logf("supervisor: %s unresponsive; restarting (generation %d)", s.Name, s.Restarts)
	s.proc.Kill()
	if err := s.start(s.Restarts); err != nil {
		s.K.Logf("supervisor: restart of %s failed: %v", s.Name, err)
		s.stopped = true
		return
	}
	// Shadow-state replay: re-open the interface as it was configured.
	if s.ifName != "" && s.wasUp {
		if ifc, err := s.K.Net.Iface(s.ifName); err == nil {
			if err := ifc.Up(s.addr); err != nil {
				s.K.Logf("supervisor: re-up %s: %v", s.ifName, err)
			}
		}
	}
	if s.OnRestart != nil {
		s.OnRestart(s.Restarts)
	}
}
