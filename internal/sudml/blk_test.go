package sudml_test

import (
	"bytes"
	"testing"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/blockdev"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// blkWorld is one machine with the NVMe-lite controller driven by an
// untrusted nvmed process over a Q-ring channel.
type blkWorld struct {
	m    *hw.Machine
	k    *kernel.Kernel
	ctrl *nvme.Ctrl
	proc *sudml.Process
	dev  *blockdev.Dev
}

func newBlkWorld(t *testing.T, queues int) *blkWorld {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(queues))
	m.AttachDevice(ctrl)
	proc, err := sudml.StartQ(k, ctrl, nvmed.NewQ(queues), "nvmed", 1200, queues)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Up(); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(100 * sim.Microsecond)
	return &blkWorld{m: m, k: k, ctrl: ctrl, proc: proc, dev: dev}
}

func block(fill byte) []byte { return bytes.Repeat([]byte{fill}, nvme.BlockSize) }

func TestSUDBlockWriteReadRoundTrip(t *testing.T) {
	for _, queues := range []int{1, 4} {
		w := newBlkWorld(t, queues)
		pattern := block(0x5C)
		var wErr error
		done := false
		if err := w.dev.WriteAt(17, pattern, func(err error) { wErr, done = err, true }); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(5 * sim.Millisecond)
		if !done || wErr != nil {
			t.Fatalf("Q=%d write: done=%v err=%v", queues, done, wErr)
		}
		if !bytes.Equal(w.ctrl.PeekMedia(17), pattern) {
			t.Fatalf("Q=%d: write did not reach media", queues)
		}
		var got []byte
		if err := w.dev.ReadAt(17, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append([]byte(nil), data...)
		}); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(5 * sim.Millisecond)
		if !bytes.Equal(got, pattern) {
			t.Fatalf("Q=%d: read back wrong data", queues)
		}
	}
}

func TestSUDBlockCompletionsBatchOnMultiQueue(t *testing.T) {
	w := newBlkWorld(t, 4)
	done := 0
	for i := 0; i < 200; i++ {
		if err := w.dev.ReadAt(uint64(i%32), func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read %v", err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if done != 200 {
		t.Fatalf("completed %d/200", done)
	}
	if w.proc.BlkBatches == 0 {
		t.Fatal("no batched completion downcalls on a multi-queue channel")
	}
	// Every queue pair saw traffic and completions were validated as
	// zero-copy references, not inline bounces.
	var comps uint64
	for q := 0; q < 4; q++ {
		comps += w.proc.Blk.QueueComps[q]
		if w.dev.Queue(q).Completions == 0 {
			t.Fatalf("queue %d idle", q)
		}
	}
	if comps < 200 {
		t.Fatalf("proxy saw %d completions", comps)
	}
}

func TestSUDBlockForgedCompletionRefRejected(t *testing.T) {
	w := newBlkWorld(t, 2)
	// A malicious driver process forges completion downcalls pointing at
	// IOVAs it does not own (below the DMA window, and far above it). The
	// proxy must reject the references — counted, and the affected tag
	// failed rather than fed attacker-chosen kernel bytes.
	var got []byte
	var gotErr error
	completed := false
	if err := w.dev.ReadAtQ(3, 0, func(data []byte, err error) {
		got, gotErr, completed = data, err, true
	}); err != nil {
		t.Fatal(err)
	}
	// Forge before the honest driver's interrupt path can answer: tag 0
	// is the first tag the block core allocates.
	for _, iova := range []uint64{0x1000, 1 << 60} {
		if err := w.proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpComplete,
			Args: [6]uint64{0, 0, iova, uint64(nvme.BlockSize)}}); err != nil {
			t.Fatal(err)
		}
	}
	w.proc.Chan.Flush()
	if !completed {
		t.Fatal("forged completion not processed")
	}
	if gotErr == nil || got != nil {
		t.Fatalf("forged reference delivered data: %v err=%v", got, gotErr)
	}
	if w.proc.Blk.CompInvalidRef == 0 {
		t.Fatal("invalid reference not counted")
	}
}

func TestSUDBlockMalformedBatchDropped(t *testing.T) {
	w := newBlkWorld(t, 2)
	bad := [][]byte{
		{},
		{0xFF, 0xFF, 1, 2, 3},
		append(blkproxy.EncodeBlkBatch([]blkproxy.CompRef{{Tag: 5}}), 0xAA),
	}
	for _, b := range bad {
		if err := w.proc.Chan.DownQ(1, uchan.Msg{Op: blkproxy.OpCompleteBatch, Data: b}); err != nil {
			t.Fatal(err)
		}
	}
	w.proc.Chan.Flush()
	if w.proc.Blk.CompBadBatch != uint64(len(bad)) {
		t.Fatalf("CompBadBatch = %d, want %d", w.proc.Blk.CompBadBatch, len(bad))
	}
	// The device still works afterwards.
	ok := false
	if err := w.dev.ReadAt(0, func(_ []byte, err error) { ok = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !ok {
		t.Fatal("device wedged by malformed batches")
	}
}

func TestSUDBlockKillFailsInflightAndRestartSurvives(t *testing.T) {
	w := newBlkWorld(t, 2)
	pattern := block(0x77)
	if err := w.dev.WriteAt(9, pattern, func(error) {}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)

	var inflightErr error
	if err := w.dev.ReadAt(9, func(_ []byte, err error) { inflightErr = err }); err != nil {
		t.Fatal(err)
	}
	w.proc.Kill()
	if inflightErr == nil {
		t.Fatal("in-flight request survived process death unanswered")
	}
	if _, err := w.k.Blk.Dev("nvme0"); err == nil {
		t.Fatal("device still registered after kill")
	}

	// A fresh process binds the same controller; media survives.
	proc2, err := sudml.StartQ(w.k, w.ctrl, nvmed.NewQ(2), "nvmed", 1201, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer proc2.Kill()
	dev2, err := w.k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev2.Up(); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := dev2.ReadAt(9, func(data []byte, err error) {
		if err != nil {
			t.Errorf("read after restart: %v", err)
			return
		}
		got = append([]byte(nil), data...)
	}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !bytes.Equal(got, pattern) {
		t.Fatal("media lost across kill/restart")
	}
}

// TestSUDBlockReadDataStableUnderSlotReuse is the slot-reuse TOCTOU
// regression: a read completion's zero-copy reference must be guard-copied
// before the driver's pool slot can be reused by a held submission drained
// in the same interrupt dispatch. A saturated queue with mixed reads and
// writes exercises exactly that interleaving; every read must return its
// LBA's own pattern, never a concurrent write's payload for another block.
func TestSUDBlockReadDataStableUnderSlotReuse(t *testing.T) {
	for _, queues := range []int{1, 2} {
		w := newBlkWorld(t, queues)
		const span = 40 // LBAs in play, each holding its own fill byte
		for lba := uint64(0); lba < span; lba++ {
			w.ctrl.SeedMedia(lba, block(byte(lba)))
		}
		reads, bad := 0, 0
		var issue func(seq uint64)
		issue = func(seq uint64) {
			lba := (seq * 7) % span
			if seq%3 == 0 {
				// Writes keep every block's invariant fill byte, so any
				// cross-block corruption is visible to the reads.
				_ = w.dev.WriteAt(lba, block(byte(lba)), func(error) {
					w.m.Loop.After(200, func() { issue(seq + span) })
				})
				return
			}
			err := w.dev.ReadAt(lba, func(data []byte, err error) {
				if err == nil {
					reads++
					for _, b := range data {
						if b != byte(lba) {
							bad++
							break
						}
					}
				}
				w.m.Loop.After(200, func() { issue(seq + span) })
			})
			if err != nil {
				w.m.Loop.After(10*sim.Microsecond, func() { issue(seq) })
			}
		}
		// Far more outstanding than one queue's 64-deep hardware queue, so
		// submissions hold in pendingBlk and drain on completion IRQs.
		for j := uint64(0); j < 160; j++ {
			issue(j)
		}
		w.m.Loop.RunFor(30 * sim.Millisecond)
		if reads < 500 {
			t.Fatalf("Q=%d: only %d reads completed", queues, reads)
		}
		if bad != 0 {
			t.Fatalf("Q=%d: %d/%d reads returned another block's data", queues, bad, reads)
		}
	}
}

func TestSUDBlockPerQueuePools(t *testing.T) {
	w := newBlkWorld(t, 4)
	// The proxy's shared-slot pools and the driver's data pools are
	// per-queue device-file allocations: distinct IOMMU-visible objects,
	// one per queue (groundwork for per-queue IOMMU domains).
	if got := len(w.proc.Blk.Pools()); got != 4 {
		t.Fatalf("proxy pools = %d, want 4", got)
	}
	labels := map[string]bool{}
	for _, a := range w.proc.DF.Allocs() {
		labels[a.Label] = true
	}
	for q := 0; q < 4; q++ {
		if !labels[blkPoolLabel(q)] {
			t.Fatalf("missing per-queue pool %q in device-file allocs", blkPoolLabel(q))
		}
	}
}

func blkPoolLabel(q int) string {
	return "blk q" + string(rune('0'+q)) + " slot pool"
}
