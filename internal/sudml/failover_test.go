package sudml_test

import (
	"bytes"
	"testing"

	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml/policy"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// TestFailoverBlockInvisible: with a hot standby armed before the kill, a
// kill -9 mid-saturation is graded to failover — the standby adopts the
// device through its pre-registered identity, replay completes everything
// exactly once, and a fresh standby is re-armed for the next fault.
func TestFailoverBlockInvisible(t *testing.T) {
	for _, queues := range []int{1, 4} {
		w := newSupBlkWorld(t, queues)
		if err := w.sup.ArmStandby(); err != nil {
			t.Fatalf("Q=%d: arm standby: %v", queues, err)
		}
		if w.sup.StandbyProc() == nil || !w.sup.StandbyProc().Standby() {
			t.Fatalf("Q=%d: standby not armed", queues)
		}
		const span = 40
		for lba := uint64(0); lba < span; lba++ {
			w.ctrl.SeedMedia(lba, block(byte(lba)))
		}
		st := &satStats{}
		saturate(w, span, 120, st)
		w.m.Loop.RunFor(2 * sim.Millisecond)
		if w.dev.InFlight() == 0 {
			t.Fatalf("Q=%d: no requests in flight at kill time", queues)
		}
		primary := w.sup.Proc()
		w.sup.Proc().Kill()
		w.m.Loop.RunFor(30 * sim.Millisecond)
		st.stopped = true

		if w.sup.Failovers != 1 {
			t.Fatalf("Q=%d: failovers = %d, want 1", queues, w.sup.Failovers)
		}
		if w.sup.LastVerdict != policy.Failover {
			t.Fatalf("Q=%d: last verdict = %v, want failover", queues, w.sup.LastVerdict)
		}
		if w.sup.Proc() == primary {
			t.Fatalf("Q=%d: supervisor did not swap to the standby process", queues)
		}
		if w.sup.LastReplayed == 0 {
			t.Fatalf("Q=%d: nothing replayed across the failover", queues)
		}
		if st.readErrs != 0 || st.writeErrs != 0 {
			t.Fatalf("Q=%d: %d read / %d write errors surfaced to callers",
				queues, st.readErrs, st.writeErrs)
		}
		if st.corrupt != 0 {
			t.Fatalf("Q=%d: %d reads returned another block's data", queues, st.corrupt)
		}
		if st.reads < 500 {
			t.Fatalf("Q=%d: only %d reads completed (failover did not resume traffic)",
				queues, st.reads)
		}
		for lba := uint64(0); lba < span; lba++ {
			if !bytes.Equal(w.ctrl.PeekMedia(lba), block(byte(lba))) {
				t.Fatalf("Q=%d: media corrupted at LBA %d after failover", queues, lba)
			}
		}
		// A fresh standby is re-armed for the next fault.
		if w.sup.StandbyProc() == nil {
			t.Fatalf("Q=%d: no standby re-armed after failover", queues)
		}
		// Failover timeline: the standby is promoted instead of a cold
		// respawn, otherwise the same recovery choreography.
		assertFlightOrder(t, w.sup.Flight.Kinds(),
			trace.FKill, trace.FPark, trace.FDetect, trace.FVerdict,
			trace.FPromote, trace.FAdopt, trace.FReplay, trace.FDrain)
		w.sup.Stop()
	}
}

// TestStandbyAdoptionRejectsStaleDowncall: a completion signed by the dead
// primary's proxy arriving after the standby has adopted the device must be
// dropped by the epoch check — never matched against the standby's live
// tags.
func TestStandbyAdoptionRejectsStaleDowncall(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	if err := w.sup.ArmStandby(); err != nil {
		t.Fatal(err)
	}
	w.ctrl.SeedMedia(5, block(0xAB))

	completions := 0
	var got []byte
	if err := w.dev.ReadAtQ(5, 0, func(data []byte, err error) {
		completions++
		if err == nil {
			got = append([]byte(nil), data...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(50 * sim.Microsecond) // the submit reaches the primary
	oldProxy := w.sup.Proc().Blk
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(20 * sim.Millisecond) // failover + replay complete

	if w.sup.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", w.sup.Failovers)
	}
	// The dead primary tries to complete tag 0 — replayed and live again in
	// the standby incarnation — with a bogus payload.
	oldProxy.HandleDowncall(0, uchan.Msg{Op: blkproxy.OpComplete,
		Data: block(0xEE), Args: [6]uint64{0, 0}})
	if oldProxy.CompStaleEpoch == 0 {
		t.Fatal("stale-epoch completion not counted")
	}
	if completions != 1 {
		t.Fatalf("request completed %d times", completions)
	}
	if !bytes.Equal(got, block(0xAB)) {
		t.Fatal("read did not return the media's data after failover")
	}
	// The promoted standby's proxy is a different incarnation and serves.
	if w.sup.Proc().Blk == oldProxy {
		t.Fatal("failover did not produce a fresh proxy")
	}
	ok := false
	if err := w.dev.ReadAt(5, func(_ []byte, err error) { ok = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !ok {
		t.Fatal("device wedged after stale completion")
	}
	w.sup.Stop()
}

// TestManyIsolatedKillsSurviveSupervision is the regression test for the
// lifetime-restart-counter bug: ten kill -9s spread over a long healthy run
// must each be recovered — isolated faults age out of the sliding restart
// window and never exhaust the budget, so supervision survives far past
// MaxRestarts total restarts.
func TestManyIsolatedKillsSurviveSupervision(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	const kills = 10
	if kills <= w.sup.MaxRestarts {
		t.Fatalf("test must exceed the window budget (%d kills vs budget %d)",
			kills, w.sup.MaxRestarts)
	}
	w.ctrl.SeedMedia(3, block(0x5A))
	for i := 0; i < kills; i++ {
		w.sup.Proc().Kill()
		// 100ms of healthy service between faults — well past the
		// 500ms/8 window density and the HealthyAfter threshold.
		w.m.Loop.RunFor(100 * sim.Millisecond)
		if w.sup.Quarantined {
			t.Fatalf("quarantined after %d isolated kills (budget %d): %s",
				i+1, w.sup.MaxRestarts, w.sup.Policy.Reason())
		}
		ok := false
		if err := w.dev.ReadAt(3, func(data []byte, err error) {
			ok = err == nil && bytes.Equal(data, block(0x5A))
		}); err != nil {
			t.Fatalf("kill %d: submit failed: %v", i+1, err)
		}
		w.m.Loop.RunFor(2 * sim.Millisecond)
		if !ok {
			t.Fatalf("kill %d: device not serving after recovery", i+1)
		}
	}
	if w.sup.Restarts != kills {
		t.Fatalf("restarts = %d, want %d", w.sup.Restarts, kills)
	}
	if w.sup.Quarantined {
		t.Fatal("supervision gave up on isolated faults")
	}
	w.sup.Stop()
}

// TestSingleQueueWedgeDetected: a driver serving three of four queues at
// full rate while one service thread is wedged must still be flagged — the
// per-queue watermarks see queue 2's backlog persist with zero served
// progress even though the aggregate counters race ahead.
func TestSingleQueueWedgeDetected(t *testing.T) {
	w := newSupBlkWorld(t, 4)
	const span = 16
	for lba := uint64(0); lba < span; lba++ {
		w.ctrl.SeedMedia(lba, block(byte(lba)))
	}
	// Wedge queue 2's service thread only.
	w.sup.Proc().HangQueue(2)

	// Pile work onto the wedged queue (it parks behind the hang) and keep
	// the siblings busy with closed-loop traffic so the aggregate counters
	// keep moving.
	wedgedDone, wedgedErrs := 0, 0
	for i := 0; i < 32; i++ {
		lba := uint64(i) % span
		if err := w.dev.ReadAtQ(lba, 2, func(_ []byte, err error) {
			if err != nil {
				wedgedErrs++
			} else {
				wedgedDone++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	siblingReads := 0
	var pump func(q int, seq uint64)
	pump = func(q int, seq uint64) {
		lba := seq % span
		if err := w.dev.ReadAtQ(lba, q, func(_ []byte, err error) {
			if err == nil {
				siblingReads++
			}
			w.m.Loop.After(200, func() { pump(q, seq+1) })
		}); err != nil {
			w.m.Loop.After(10*sim.Microsecond, func() { pump(q, seq) })
		}
	}
	for _, q := range []int{0, 1, 3} {
		for j := 0; j < 8; j++ {
			pump(q, uint64(j))
		}
	}

	// Two health-check periods (5ms each) plus slack: the wedge must be
	// detected and recovered within this budget.
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if w.sup.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (single-queue wedge undetected)", w.sup.Restarts)
	}
	if siblingReads == 0 {
		t.Fatal("sibling queues made no progress (hang was not queue-local)")
	}
	// The parked reads on the wedged queue were replayed into the fresh
	// incarnation and complete without error.
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if wedgedErrs != 0 {
		t.Fatalf("%d wedged-queue reads surfaced errors", wedgedErrs)
	}
	if wedgedDone != 32 {
		t.Fatalf("wedged-queue reads completed %d/32 after recovery", wedgedDone)
	}
	w.sup.Stop()
}

// TestCrashLoopWalksBackoffLadderToQuarantine: a driver that dies the
// instant it comes up walks restart → backoff (doubling) → quarantine, with
// the device surviving quarantine registered but down.
func TestCrashLoopWalksBackoffLadderToQuarantine(t *testing.T) {
	w := newSupBlkWorld(t, 1)
	sawBackoff := false
	w.sup.OnRestart = func(int) {
		if w.sup.LastVerdict == policy.RestartBackoff {
			sawBackoff = true
		}
		w.sup.Proc().Kill() // flap: die the instant recovery completes
	}
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(600 * sim.Millisecond)

	if !w.sup.Quarantined {
		t.Fatalf("crash-looping driver not quarantined (restarts = %d)", w.sup.Restarts)
	}
	if !sawBackoff {
		t.Fatal("crash loop never graded to restart-with-backoff")
	}
	if w.sup.Restarts != w.sup.MaxRestarts {
		t.Fatalf("restarts = %d, want the window budget %d",
			w.sup.Restarts, w.sup.MaxRestarts)
	}
	// Quarantine leaves the device present, down, and cleanly failing.
	d, err := w.k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatalf("quarantined device must survive registered: %v", err)
	}
	if d.IsUp() {
		t.Fatal("quarantined device must be down")
	}
	// Stop() after quarantine is an idempotent no-op.
	w.sup.Stop()
	w.sup.Stop()
}
