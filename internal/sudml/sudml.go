// Package sudml is SUD-UML (§3.3, §4): the user-space runtime that lets an
// unmodified driver run in an untrusted process. It implements the same
// Linux-like api.Env the real kernel implements, but every operation is
// serviced through the safe PCI device access module and the uchan RPC
// channel instead of by direct kernel privilege:
//
//   - pci_enable_device / config access → filtered ctl-file syscalls
//   - ioremap → the mmio device file
//   - dma_alloc_coherent / caching pool → the dma_coherent / dma_caching
//     files, which also map the pages into the device's IOMMU domain at the
//     driver's own virtual address (§4.1)
//   - request_irq → interrupt upcalls, acknowledged with the interrupt_ack
//     downcall (Figure 7)
//   - netif_rx / carrier changes → downcalls; received payloads travel as
//     shared-buffer references (zero copy, §3.1.2)
//
// A Process models one driver process: it has its own CPU account, Unix
// UID, resource limits, and can be killed and restarted without kernel harm
// (§4.1). The Supervisor (shadow.go) takes that last property the rest of
// the way — the shadow-driver restart the paper sketches in §2 and §5.2:
// a supervised process that dies is respawned against the same device, the
// restarted driver adopts the surviving kernel objects, and the logged
// in-flight work is replayed so applications never see the kill.
package sudml

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/proxy/audioproxy"
	"sud/internal/proxy/blkproxy"
	"sud/internal/proxy/ethproxy"
	"sud/internal/proxy/pciaccess"
	"sud/internal/proxy/protocol"
	"sud/internal/proxy/wifiproxy"
	"sud/internal/sim"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// RuntimeMemoryBytes is SUD-UML's resident footprint per driver process
// (~3 MB, Figure 5 caption).
const RuntimeMemoryBytes = 3 << 20

// startupCost is the one-time CPU cost of starting the UML environment.
const startupCost sim.Duration = 100 * sim.Microsecond

// Process is one untrusted driver process.
type Process struct {
	Name string
	UID  int

	K    *kernel.Kernel
	DF   *pciaccess.DeviceFile
	Chan *uchan.MultiChan
	Acct *sim.CPUAccount
	Eth  *ethproxy.Proxy

	// QueueAccts are the per-queue service-thread CPU accounts; index q
	// is the thread draining uchan ring q. Single-queue processes have
	// exactly one, named like the process account.
	QueueAccts []*sim.CPUAccount

	driver     api.Driver
	inst       api.Instance
	netdev     api.NetDevice
	wifidev    api.WifiDevice
	audiodev   api.AudioDevice
	blockdev   api.BlockDevice
	ctl        api.CtlHandler
	Wifi       *wifiproxy.Proxy
	Audio      *audioproxy.Proxy
	Blk        *blkproxy.Proxy
	irqHandler func()
	ki         *ethproxy.KernelIface

	// sliceAddrs maps handed-out DMA slice identities (pointer to first
	// byte) to bus addresses, enabling zero-copy netif_rx.
	sliceAddrs map[*byte]mem.Addr

	// pendingTx holds, per queue, transmit upcalls the driver's TX ring
	// had no room for; they drain after descriptor reclaim (interrupt
	// handling).
	pendingTx  [][]uchan.Msg
	retryTimer []bool

	// pendingBlk holds, per queue, block submissions the driver's
	// hardware queue had no room for; they drain after completion
	// processing, exactly like pendingTx.
	pendingBlk    [][]uchan.Msg
	blkRetryTimer []bool

	// blkComp accumulates, per queue, I/O completion references awaiting
	// the batched OpCompleteBatch downcall — the block analogue of
	// rxBatch, flushed on the same dispatch boundaries. Single-queue
	// channels bypass batching, keeping one message per completion.
	blkComp [][]blkproxy.CompRef

	// flushMeta maps an in-flight flush barrier's kernel tag to the
	// framing the OpFlush upcall carried; the completion echoes it back
	// as OpFlushDone so the proxy's barrier accounting can verify it.
	flushMeta map[uint64]blkproxy.FlushOp

	// qep mirrors, per queue, the epoch the kernel last armed the queue
	// at (OpQueueEpoch frames from a surgical quarantine); the runtime
	// stamps it on every completion it sends for that queue, so the
	// proxy can reject completions minted for a dead incarnation of one
	// queue without touching its siblings. qparked marks queues the
	// kernel has told the runtime are quarantined (advisory).
	qep     []uint64
	qparked []bool

	// rxBatch accumulates, per queue, received-frame references awaiting
	// the batched OpNetifRxBatch downcall: up to ethproxy.MaxRxBatch
	// frames ride one ring slot. Batches flush when full and at the end
	// of the dispatch that produced them, so delivery never waits on
	// future traffic. Single-queue channels bypass batching entirely —
	// the Figure 8 transport is unchanged.
	rxBatch [][]ethproxy.RxRef

	// NoRxBatch disables RX batch framing (ablation): every received
	// frame crosses the channel as its own OpNetifRx downcall, one
	// message — and with uchan batching also disabled, one doorbell —
	// per frame.
	NoRxBatch bool

	// kicker is the probed driver's staged-doorbell flush hook
	// (api.BatchKicker), discovered once at probe. When set, a drain-end
	// hook flushes the driver's staged doorbells — and the completions or
	// frames the flush produced — on the same drain that serviced the
	// batch. Nil for stock drivers: the transport is untouched.
	kicker api.BatchKicker

	// Counters.
	ZeroCopyRx, BouncedRx uint64
	RxBatches             uint64
	BlkBatches            uint64
	XmitRingDrops         uint64
	BadFlushFrames        uint64
	BadRecycleFrames      uint64
	BadQStateFrames       uint64

	// Recoverable marks the process as supervised: on death its devices
	// enter shadow recovery (parked, adoptable) instead of being
	// unregistered. Set by the supervisor before traffic flows.
	Recoverable bool

	// OnDeath, if set, runs once at the end of Kill — the supervisor's
	// immediate death notification (SIGCHLD, in effect).
	OnDeath func()

	// Flight is the supervisor's per-device flight recorder (nil when
	// unsupervised; records are nil-safe). Kill logs here first, so the
	// timeline reads kill → park → detect → verdict → ...
	Flight *trace.Flight

	// standby marks a hot-standby shell: spawned and (possibly) armed, but
	// with the driver probe deferred to promotion. Cleared by
	// ActivateDriver.
	standby bool

	killed bool
}

// Standby reports whether the process is an unactivated hot-standby shell.
func (p *Process) Standby() bool { return p.standby }

// Start launches a single-queue driver process for dev running drv under
// the given UID. It models the §4.1 flow: SUD-UML finds the device in sysfs,
// asks the kernel to start a proxy driver, opens a uchan, and probes the
// driver.
func Start(k *kernel.Kernel, dev pci.Device, drv api.Driver, name string, uid int) (*Process, error) {
	return StartQ(k, dev, drv, name, uid, 1)
}

// StartQ launches a driver process with `queues` uchan ring pairs — one
// service thread (and CPU account) per simulated CPU/queue, plus the shared
// urgent lane for forwarded interrupts. queues=1 is exactly Start.
func StartQ(k *kernel.Kernel, dev pci.Device, drv api.Driver, name string, uid, queues int) (*Process, error) {
	p, err := newShellQ(k, dev, drv, name, uid, queues, false)
	if err != nil {
		return nil, err
	}
	if err := p.probeDriver(); err != nil {
		return nil, err
	}
	return p, nil
}

// StartStandbyQ spawns a driver process SHELL in hot-standby mode: the
// process exists — device file open, uchan rings and service threads up,
// the startup cost paid — but the driver is deliberately NOT probed, since
// bringing up hardware the live primary still owns would wreck it (an NVMe
// probe resets the controller). The supervisor arms the standby's proxy
// against the live kernel object (ArmBlockStandby / ArmNetStandby) and
// calls ActivateDriver at promotion, when the hardware is orphaned — so at
// failover time the respawn cost is already sunk and only probe + bring-up
// + replay remain on the kill-to-drained path.
func StartStandbyQ(k *kernel.Kernel, dev pci.Device, drv api.Driver, name string, uid, queues int) (*Process, error) {
	p, err := newShellQ(k, dev, drv, name, uid, queues, true)
	if err != nil {
		return nil, err
	}
	p.standby = true
	return p, nil
}

// newShellQ builds the process shell — everything in the §4.1 flow up to
// (but excluding) the driver probe. A standby shell opens the device file
// detached: its DMA mappings build up in its own IOMMU domain, but the
// device's bus identity stays with the live primary until promotion.
func newShellQ(k *kernel.Kernel, dev pci.Device, drv api.Driver, name string, uid, queues int, standby bool) (*Process, error) {
	cfg := dev.Config()
	if !drv.Match(cfg.VendorID(), cfg.DeviceID()) {
		return nil, fmt.Errorf("sudml: driver %s does not match device %s", drv.Name(), dev.BDF())
	}
	accts := k.M.CPU.QueueAccounts("driver:"+name, queues)
	acct := accts[0]
	var df *pciaccess.DeviceFile
	if standby {
		df = pciaccess.OpenDetached(k, dev, uid, acct)
	} else {
		df = pciaccess.Open(k, dev, uid, acct)
	}
	ch := uchan.NewMulti(k.M.Loop, k.Acct, accts)
	p := &Process{
		Name:          name,
		UID:           uid,
		K:             k,
		DF:            df,
		Chan:          ch,
		Acct:          acct,
		QueueAccts:    accts,
		driver:        drv,
		sliceAddrs:    make(map[*byte]mem.Addr),
		pendingTx:     make([][]uchan.Msg, len(accts)),
		retryTimer:    make([]bool, len(accts)),
		rxBatch:       make([][]ethproxy.RxRef, len(accts)),
		pendingBlk:    make([][]uchan.Msg, len(accts)),
		blkRetryTimer: make([]bool, len(accts)),
		blkComp:       make([][]blkproxy.CompRef, len(accts)),
		flushMeta:     make(map[uint64]blkproxy.FlushOp),
		qep:           make([]uint64, len(accts)),
		qparked:       make([]bool, len(accts)),
	}
	ch.SetDriverHandler(p.dispatch)
	ch.SetKernelHandler(p.routeDowncall)
	acct.Charge(startupCost)
	return p, nil
}

// probeDriver runs the driver's probe inside the process. For a normal
// start this happens at spawn; for a hot standby it is deferred to
// promotion (ActivateDriver).
func (p *Process) probeDriver() error {
	inst, err := p.driver.Probe(&env{p: p})
	if err != nil {
		p.DF.Close()
		p.Chan.Kill()
		return fmt.Errorf("sudml: probe %s: %w", p.driver.Name(), err)
	}
	p.inst = inst
	if h, ok := inst.(api.CtlHandler); ok {
		p.ctl = h
	}
	p.wireFastPath()
	p.Chan.Flush() // deliver any downcalls queued during probe
	return nil
}

// wireFastPath installs the drain-end hook when the probed driver stages
// doorbells (api.BatchKicker). KickPending runs first — flushing staged TX
// tails / SQ tails may complete commands or surface frames — and the batches
// those produced flush right after, so everything rides the drain that
// serviced the upcalls. Stock drivers install nothing.
func (p *Process) wireFastPath() {
	var k api.BatchKicker
	if kk, ok := p.netdev.(api.BatchKicker); ok {
		k = kk
	} else if kk, ok := p.blockdev.(api.BatchKicker); ok {
		k = kk
	} else if kk, ok := p.inst.(api.BatchKicker); ok {
		k = kk
	}
	if k == nil {
		return
	}
	p.kicker = k
	p.Chan.SetOnDrainEnd(func() {
		if p.killed {
			return
		}
		k.KickPending()
		p.flushRxBatches()
		p.flushBlkComps()
	})
}

// kickPending flushes the driver's staged doorbells from paths that run
// outside an upcall drain (retry timers, driver timers).
func (p *Process) kickPending() {
	if p.kicker != nil && !p.killed {
		p.kicker.KickPending()
	}
}

// ActivateDriver probes the driver inside a promoted standby shell. The
// primary is dead and its kernel object already rebound to this process's
// proxy, so the probe's RegisterNetDev/RegisterBlockDev binds the driver
// instance to the pre-armed proxy instead of registering anew.
func (p *Process) ActivateDriver() error {
	if !p.standby {
		return fmt.Errorf("sudml: %s is not a standby shell", p.Name)
	}
	if p.killed {
		return fmt.Errorf("sudml: standby %s is dead", p.Name)
	}
	p.standby = false
	// The dead primary has detached; the device's bus identity now points
	// at this process's domain, making its pre-built DMA mappings live.
	p.DF.AttachDevice()
	return p.probeDriver()
}

// ArmBlockStandby pre-registers this standby shell with the block core for
// the named live device: the proxy (and its IOMMU-mapped slot pools) is
// created now, the geometry identity check runs now, and only the device
// binding waits for promotion.
func (p *Process) ArmBlockStandby(name string, geom api.BlockGeometry) error {
	if !p.standby {
		return fmt.Errorf("sudml: %s is not a standby shell", p.Name)
	}
	if p.Blk != nil {
		return fmt.Errorf("sudml: standby %s already armed", p.Name)
	}
	ki := &blkproxy.KernelIface{Acct: p.K.Acct, Mem: p.K.M.Mem, Blk: p.K.Blk}
	proxy, err := blkproxy.NewStandby(ki, p.DF, p.Chan, name, geom)
	if err != nil {
		return err
	}
	p.Blk = proxy
	return nil
}

// ArmNetStandby pre-registers this standby shell with the netstack for the
// named live interface; the MAC identity check runs now.
func (p *Process) ArmNetStandby(name string, mac [6]byte) error {
	if !p.standby {
		return fmt.Errorf("sudml: %s is not a standby shell", p.Name)
	}
	if p.Eth != nil {
		return fmt.Errorf("sudml: standby %s already armed", p.Name)
	}
	p.ki = &ethproxy.KernelIface{Acct: p.K.Acct, Mem: p.K.M.Mem, Net: p.K.Net}
	proxy, err := ethproxy.NewStandby(p.ki, p.DF, p.Chan, name, mac)
	if err != nil {
		return err
	}
	p.Eth = proxy
	return nil
}

// Kill terminates the driver process (kill -9): the uchan dies, the device
// file tears down DMA mappings and interrupts, and the network interface
// disappears. The kernel and other processes are unaffected — the device
// can still attempt DMA, which now faults in the IOMMU.
//
// A supervised (Recoverable) process dies differently at the kernel edge:
// its netdev and block devices enter shadow recovery — parked and awaiting
// adoption by the restarted process — instead of being unregistered, so
// applications holding them see a stall, not an error. Wifi and audio
// devices have no recovery path yet and unregister either way.
func (p *Process) Kill() {
	if p.killed {
		return
	}
	p.killed = true
	p.Flight.Recordf(trace.FKill, "%s (uid %d) killed", p.Name, p.UID)
	p.Chan.Kill()
	p.DF.Close()
	if p.ki != nil && p.ki.IfaceNm != "" {
		if p.Recoverable {
			_, _ = p.K.Net.BeginRecovery(p.ki.IfaceNm)
		} else {
			p.K.Net.Unregister(p.ki.IfaceNm)
		}
	}
	if p.Wifi != nil {
		p.K.Wifi.Unregister(p.Wifi.Ifc.Name)
	}
	if p.Audio != nil {
		p.K.Audio.Unregister(p.Audio.PCM.Name)
	}
	if p.Blk != nil && p.Blk.Dev != nil {
		// A standby proxy that was never bound to a device (armed, then
		// disarmed or superseded) has nothing at the kernel edge to
		// recover or unregister.
		if p.Recoverable {
			_, _ = p.K.Blk.BeginRecovery(p.Blk.Dev.Name)
		} else {
			p.K.Blk.Unregister(p.Blk.Dev.Name)
		}
	}
	p.K.Logf("sudml: driver process %s (uid %d) killed", p.Name, p.UID)
	if h := p.OnDeath; h != nil {
		p.OnDeath = nil
		h()
	}
}

// Killed reports process death.
func (p *Process) Killed() bool { return p.killed }

// Ctl invokes the driver instance's generic control surface through the SUD
// ctl channel (a synchronous, interruptible upcall) — the path classes
// without a dedicated proxy use, e.g. the USB host class.
func (p *Process) Ctl(cmd uint32, arg []byte) ([]byte, error) {
	reply, err := p.Chan.Send(uchan.Msg{Op: protocol.OpCtl, Args: [6]uint64{uint64(cmd)}, Data: arg})
	if err != nil {
		return nil, err
	}
	if reply.Args[0] != 0 {
		return nil, fmt.Errorf("sudml: ctl failed: %s", reply.Data)
	}
	return reply.Data, nil
}

// Hang simulates the §3.1.1 liveness attack: the process stops servicing
// its uchan (infinite loop). Sync upcalls become interruptible errors;
// async upcalls pile up until the ring reports the driver hung.
func (p *Process) Hang() { p.Chan.SetHung(true) }

// Unhang resumes servicing (for tests).
func (p *Process) Unhang() { p.Chan.SetHung(false) }

// HangQueue wedges a single queue's service thread (§3.1.1 generalised):
// sibling queues, the urgent lane and the control ring keep servicing.
func (p *Process) HangQueue(q int) { p.Chan.HangQueue(q, true) }

// routeDowncall demultiplexes driver→kernel messages to the class proxy (or
// the common handlers) by operation range. Runs in kernel context; q is the
// ring the downcall arrived on.
func (p *Process) routeDowncall(q int, m uchan.Msg) {
	switch {
	case m.Op == protocol.OpIRQAck:
		p.DF.Ack()
	case m.Op >= protocol.EthBase && m.Op < protocol.WifiBase:
		if p.Eth != nil {
			p.Eth.HandleDowncall(q, m)
		}
	case m.Op >= protocol.WifiBase && m.Op < protocol.AudioBase:
		if p.Wifi != nil {
			p.Wifi.HandleDowncall(m)
		}
	case m.Op >= protocol.AudioBase && m.Op < protocol.BlockBase:
		if p.Audio != nil {
			p.Audio.HandleDowncall(m)
		}
	case m.Op >= protocol.BlockBase:
		if p.Blk != nil {
			p.Blk.HandleDowncall(q, m)
		}
	}
}

// dispatch services one upcall in driver-process context; q is the ring the
// message arrived on (its service thread runs the handler).
func (p *Process) dispatch(q int, m uchan.Msg) *uchan.Msg {
	if p.killed {
		return nil
	}
	if m.Op >= protocol.WifiBase && m.Op < protocol.AudioBase && p.wifidev != nil {
		return p.dispatchWifi(m)
	}
	if m.Op >= protocol.AudioBase && m.Op < protocol.BlockBase && p.audiodev != nil {
		return p.dispatchAudio(m)
	}
	if m.Op >= protocol.BlockBase && p.blockdev != nil {
		return p.dispatchBlock(q, m)
	}
	switch m.Op {
	case protocol.OpCtl:
		if p.ctl == nil {
			return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}, Data: []byte("no ctl handler")}
		}
		p.Acct.Charge(sim.CostWorkerDispatch)
		out, err := p.ctl.Ctl(uint32(m.Args[0]), m.Data)
		r := replyErr(m, err)
		if err == nil {
			r.Data = out
		}
		return r
	case ethproxy.OpOpen:
		// Open may block (the e1000e sleeps probing interrupt modes,
		// §4.2), so the idle thread hands it to a worker.
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.netdev.Open())
	case ethproxy.OpStop:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.netdev.Stop())
	case ethproxy.OpIoctl:
		p.Acct.Charge(sim.CostWorkerDispatch)
		out, err := p.netdev.DoIoctl(uint32(m.Args[0]), m.Data)
		r := replyErr(m, err)
		if err == nil {
			r.Data = out
		}
		return r
	case ethproxy.OpXmit:
		p.handleXmit(q, m)
		return &uchan.Msg{Seq: m.Seq}
	case ethproxy.OpPageRecycle:
		p.handleRecycle(q, m, ethproxy.OpRecycleAck)
		return &uchan.Msg{Seq: m.Seq}
	case ethproxy.OpQueueEpoch:
		p.handleQueueEpoch(m)
		return &uchan.Msg{Seq: m.Seq}
	case protocol.OpInterrupt:
		if p.irqHandler != nil {
			p.irqHandler()
		}
		// Block completions the handler collected must be DELIVERED —
		// flushed through the ring into the proxy's guard copy — before
		// held submissions run: a drained submission reuses the driver's
		// pool slots, and a still-undelivered zero-copy completion
		// reference into a reused slot would read the new request's
		// bytes (the slot-reuse cousin of the §3.1.2 TOCTOU). Net
		// processes skip this: their RX buffers are only overwritten by
		// device DMA, which cannot run inside this dispatch.
		if p.Blk != nil {
			p.flushBlkComps()
			p.Chan.Flush()
		}
		// The handler reclaimed TX descriptors (or drained block
		// completion queues); feed held work in.
		p.drainPendingTx()
		p.drainPendingBlk()
		// RX frames the handler collected ride out as per-queue batches
		// on the same drain that serviced the interrupt.
		p.flushRxBatches()
		p.flushBlkComps()
		return &uchan.Msg{Seq: m.Seq}
	default:
		return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}}
	}
}

// dispatchWifi services wireless-class upcalls.
func (p *Process) dispatchWifi(m uchan.Msg) *uchan.Msg {
	switch m.Op {
	case wifiproxy.OpOpen:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.wifidev.Open())
	case wifiproxy.OpStop:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.wifidev.Stop())
	case wifiproxy.OpScan:
		if err := p.wifidev.StartScan(); err != nil {
			p.K.Logf("[sud:%s] scan failed: %v", p.Name, err)
		}
		return &uchan.Msg{Seq: m.Seq}
	case wifiproxy.OpAssoc:
		if err := p.wifidev.Associate(string(m.Data)); err != nil {
			// Report failure through the mirrored state path.
			_ = p.Chan.Down(uchan.Msg{Op: wifiproxy.OpDisassociated})
		}
		return &uchan.Msg{Seq: m.Seq}
	case wifiproxy.OpDisassoc:
		_ = p.wifidev.Disassociate()
		return &uchan.Msg{Seq: m.Seq}
	case wifiproxy.OpXmit:
		p.Acct.Charge(sim.Copy(len(m.Data)))
		if err := p.wifidev.StartXmit(m.Data); err != nil {
			p.XmitRingDrops++
		}
		return &uchan.Msg{Seq: m.Seq}
	default:
		return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}}
	}
}

// dispatchAudio services audio-class upcalls.
func (p *Process) dispatchAudio(m uchan.Msg) *uchan.Msg {
	switch m.Op {
	case audioproxy.OpPrepare:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.audiodev.PrepareStream(int(m.Args[0]), int(m.Args[1]), int(m.Args[2])))
	case audioproxy.OpWritePeriod:
		p.Acct.Charge(sim.Copy(len(m.Data)))
		if err := p.audiodev.WritePeriod(int(m.Args[0]), m.Data); err != nil {
			p.K.Logf("[sud:%s] period write failed: %v", p.Name, err)
		}
		return &uchan.Msg{Seq: m.Seq}
	case audioproxy.OpTrigger:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.audiodev.Trigger(m.Args[0] == 1))
	case audioproxy.OpPointer:
		pos, err := p.audiodev.Pointer()
		r := replyErr(m, err)
		r.Args[1] = uint64(pos)
		return r
	default:
		return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}}
	}
}

// dispatchBlock services block-class upcalls.
func (p *Process) dispatchBlock(q int, m uchan.Msg) *uchan.Msg {
	switch m.Op {
	case blkproxy.OpOpen:
		// Open may block (queue creation sleeps); hand it to a worker.
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.blockdev.Open())
	case blkproxy.OpStop:
		p.Acct.Charge(sim.CostWorkerDispatch)
		return replyErr(m, p.blockdev.Stop())
	case blkproxy.OpSubmit, blkproxy.OpFlush:
		// Flush barriers ride the same hold-queue machinery as
		// submissions, so a full hardware queue delays — never drops —
		// a barrier, and held work stays in order.
		p.handleBlkSubmit(q, m)
		return &uchan.Msg{Seq: m.Seq}
	case blkproxy.OpPageRecycle:
		p.handleRecycle(q, m, blkproxy.OpRecycleAck)
		return &uchan.Msg{Seq: m.Seq}
	case blkproxy.OpQueueEpoch:
		p.handleQueueEpoch(m)
		return &uchan.Msg{Seq: m.Seq}
	default:
		return &uchan.Msg{Seq: m.Seq, Args: [6]uint64{1}}
	}
}

// handleQueueEpoch services an OpQueueEpoch upcall (either class): one
// queue's epoch transition from a surgical quarantine. A parked frame just
// marks the queue so the runtime stops burning CPU on it; an armed frame
// adopts the queue's new epoch for completion stamping and drops work held
// for the dead incarnation — the kernel replays its own request log, so
// re-submitting held upcalls (or flushing completions gathered before the
// quarantine) would double-deliver those tags.
func (p *Process) handleQueueEpoch(m uchan.Msg) {
	p.Acct.Charge(sim.CostUMLCall)
	s, err := protocol.DecodeQState(m.Data)
	if err != nil || s.Queue >= len(p.qep) {
		p.BadQStateFrames++
		return
	}
	if s.Parked() {
		p.qparked[s.Queue] = true
		return
	}
	p.qep[s.Queue] = uint64(s.Epoch)
	p.qparked[s.Queue] = false
	p.pendingBlk[s.Queue] = nil
	p.pendingTx[s.Queue] = nil
	p.blkComp[s.Queue] = p.blkComp[s.Queue][:0]
}

// handleRecycle services an OpPageRecycle upcall (either class): the frame
// names buffer pages the kernel has finished with, remapped back into this
// process's domain. They go to the page-aware driver's pool, and the frame is
// echoed back verbatim as the class's recycle ack so the proxy's epoch check
// can reject credits addressed to a dead incarnation.
func (p *Process) handleRecycle(q int, m uchan.Msg, ackOp uint32) {
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	_, pages, err := protocol.DecodeRecycle(m.Data)
	if err != nil {
		p.BadRecycleFrames++
		return
	}
	var rec api.PageRecycler
	if r, ok := p.netdev.(api.PageRecycler); ok {
		rec = r
	} else if r, ok := p.blockdev.(api.PageRecycler); ok {
		rec = r
	}
	if rec != nil {
		addrs := make([]mem.Addr, len(pages))
		for i, pg := range pages {
			addrs[i] = mem.Addr(pg)
		}
		rec.RecyclePages(q, addrs)
	}
	if err := p.Chan.DownQ(q, uchan.Msg{Op: ackOp, Data: m.Data}); err != nil {
		p.BadRecycleFrames++
	}
}

func replyErr(m uchan.Msg, err error) *uchan.Msg {
	r := &uchan.Msg{Seq: m.Seq}
	if err != nil {
		r.Args[0] = 1
		r.Data = []byte(err.Error())
	}
	return r
}

// xmitRetryDelay is the fallback pacing when held packets cannot ride on an
// interrupt (the UML qdisc timer).
const xmitRetryDelay = 100 * sim.Microsecond

// maxPendingTx bounds the UML-side transmit hold queue.
const maxPendingTx = uchan.RingSlots

// handleXmit maps the shared TX slot and hands the frame to the driver's
// hardware queue q. If that queue's device ring is full, the message is held
// — slot unreleased — so a full ring backpressures the kernel through
// shared-pool exhaustion instead of dropping packets and burning CPU on
// doomed work. Hold queues and retry timers are per queue: one saturated
// hardware queue never stalls a sibling's transmit path.
func (p *Process) handleXmit(q int, m uchan.Msg) {
	p.K.M.Trace.Event(trace.ClassNetTx, q, m.Args[2], trace.HopUchanDeq)
	if len(p.pendingTx[q]) > 0 {
		p.holdXmit(q, m)
		return
	}
	if !p.tryXmit(q, m) {
		p.holdXmit(q, m)
	}
}

func (p *Process) holdXmit(q int, m uchan.Msg) {
	if len(p.pendingTx[q]) >= maxPendingTx {
		p.XmitRingDrops++
		p.xmitDone(q, m.Args[2])
		return
	}
	p.pendingTx[q] = append(p.pendingTx[q], m)
	if !p.retryTimer[q] {
		p.retryTimer[q] = true
		p.K.M.Loop.After(xmitRetryDelay, func() { p.retryPendingTx(q) })
	}
}

func (p *Process) retryPendingTx(q int) {
	p.retryTimer[q] = false
	if p.killed {
		return
	}
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	p.drainPendingTxQ(q)
	p.kickPending()
	p.Chan.Flush()
	if len(p.pendingTx[q]) > 0 && !p.retryTimer[q] {
		p.retryTimer[q] = true
		p.K.M.Loop.After(xmitRetryDelay, func() { p.retryPendingTx(q) })
	}
}

// drainPendingTx feeds every queue's held packets into the (hopefully
// reclaimed) TX rings; the interrupt handler reclaims all rings at once.
func (p *Process) drainPendingTx() {
	for q := range p.pendingTx {
		p.drainPendingTxQ(q)
	}
}

// drainPendingTxQ feeds queue q's held packets in order.
func (p *Process) drainPendingTxQ(q int) {
	for len(p.pendingTx[q]) > 0 {
		if !p.tryXmit(q, p.pendingTx[q][0]) {
			return
		}
		p.pendingTx[q] = p.pendingTx[q][1:]
	}
}

// tryXmit attempts one transmit on hardware queue q; it reports false if the
// ring was full (the message should be held). Invalid references complete
// immediately.
func (p *Process) tryXmit(q int, m uchan.Msg) bool {
	iova := mem.Addr(m.Args[0])
	n := int(m.Args[1])
	phys, ok := p.DF.PhysFor(iova)
	if !ok {
		p.XmitRingDrops++
		p.xmitDone(q, m.Args[2])
		return true
	}
	frame, ok := p.K.M.Mem.Slice(phys, n)
	if !ok {
		p.XmitRingDrops++
		p.xmitDone(q, m.Args[2])
		return true
	}
	var err error
	if mq, isMQ := p.netdev.(api.MultiQueueNetDevice); isMQ {
		err = mq.StartXmitQ(frame, q)
	} else {
		err = p.netdev.StartXmit(frame)
	}
	if err != nil {
		return false
	}
	p.K.M.Trace.Event(trace.ClassNetTx, q, m.Args[2], trace.HopDoorbell)
	p.xmitDone(q, m.Args[2])
	return true
}

func (p *Process) xmitDone(q int, slot uint64) {
	p.K.M.Trace.Event(trace.ClassNetTx, q, slot, trace.HopDrvComplete)
	if err := p.Chan.DownQ(q, uchan.Msg{Op: ethproxy.OpXmitDone, Args: [6]uint64{slot}}); err != nil {
		p.XmitRingDrops++
	}
}

// handleBlkSubmit maps the submission's shared slot and hands the request
// to the driver's hardware queue q. If that queue is full, the message is
// held and retried after completion processing — the block mirror of
// handleXmit, with per-queue hold queues so one saturated hardware queue
// never stalls a sibling's submissions.
func (p *Process) handleBlkSubmit(q int, m uchan.Msg) {
	if m.Op != blkproxy.OpFlush {
		p.K.M.Trace.Event(trace.ClassBlk, q, m.Args[5], trace.HopUchanDeq)
	}
	if len(p.pendingBlk[q]) > 0 {
		p.holdBlkSubmit(q, m)
		return
	}
	if !p.tryBlkSubmit(q, m) {
		p.holdBlkSubmit(q, m)
	}
}

func (p *Process) holdBlkSubmit(q int, m uchan.Msg) {
	if len(p.pendingBlk[q]) >= maxPendingTx {
		// Hold queue overflow: complete the request as a drop so the
		// kernel's slot is released.
		p.blkCompDone(q, m.Args[5], 1)
		return
	}
	p.pendingBlk[q] = append(p.pendingBlk[q], m)
	if !p.blkRetryTimer[q] {
		p.blkRetryTimer[q] = true
		p.K.M.Loop.After(xmitRetryDelay, func() { p.retryPendingBlk(q) })
	}
}

func (p *Process) retryPendingBlk(q int) {
	p.blkRetryTimer[q] = false
	if p.killed {
		return
	}
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	// Deliver any undelivered completion references before reusing their
	// slots (see the OpInterrupt dispatch for the reuse hazard).
	p.flushBlkComps()
	p.Chan.Flush()
	p.drainPendingBlkQ(q)
	p.kickPending()
	p.flushBlkComps()
	p.Chan.Flush()
	if len(p.pendingBlk[q]) > 0 && !p.blkRetryTimer[q] {
		p.blkRetryTimer[q] = true
		p.K.M.Loop.After(xmitRetryDelay, func() { p.retryPendingBlk(q) })
	}
}

// drainPendingBlk feeds every queue's held submissions into the (hopefully
// drained) hardware queues; the interrupt handler polls all of them.
func (p *Process) drainPendingBlk() {
	for q := range p.pendingBlk {
		p.drainPendingBlkQ(q)
	}
}

func (p *Process) drainPendingBlkQ(q int) {
	for len(p.pendingBlk[q]) > 0 {
		if !p.tryBlkSubmit(q, p.pendingBlk[q][0]) {
			return
		}
		p.pendingBlk[q] = p.pendingBlk[q][1:]
	}
}

// tryBlkSubmit attempts one submission (or flush barrier) on hardware
// queue q; it reports false if the queue was full (the message should be
// held). Invalid write references complete immediately as errors.
func (p *Process) tryBlkSubmit(q int, m uchan.Msg) bool {
	if m.Op == blkproxy.OpFlush {
		fo, err := blkproxy.DecodeFlushOp(m.Data)
		if err != nil {
			// The frame is kernel-written, so this cannot happen today —
			// but a dropped barrier wedges the device (the kernel-side
			// barrier waits forever), so the drop is counted and logged,
			// never silent.
			p.BadFlushFrames++
			p.K.Logf("sudml: %s dropped undecodable flush frame (%v)", p.Name, err)
			return true
		}
		p.flushMeta[fo.Tag] = fo
		if err := p.blockdev.Submit(q, api.BlockRequest{Flush: true, Tag: fo.Tag}); err != nil {
			delete(p.flushMeta, fo.Tag)
			return false
		}
		return true
	}
	req := api.BlockRequest{
		Write: m.Args[0]&blkproxy.SubmitWrite != 0,
		FUA:   m.Args[0]&blkproxy.SubmitFUA != 0,
		LBA:   m.Args[1],
		Tag:   m.Args[5],
	}
	if req.Write {
		iova := mem.Addr(m.Args[2])
		n := int(m.Args[3])
		phys, ok := p.DF.PhysFor(iova)
		if !ok {
			p.blkCompDone(q, req.Tag, 1)
			return true
		}
		payload, ok := p.K.M.Mem.Slice(phys, n)
		if !ok {
			p.blkCompDone(q, req.Tag, 1)
			return true
		}
		req.Data = payload
	}
	if err := p.blockdev.Submit(q, req); err != nil {
		return false
	}
	p.K.M.Trace.Event(trace.ClassBlk, q, req.Tag, trace.HopDoorbell)
	return true
}

// blkCompDone reports a request finished with a bare status (no payload) —
// used for kernel-side drops so the proxy releases the request's slot.
func (p *Process) blkCompDone(q int, tag uint64, status uint16) {
	_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpComplete,
		Args: [6]uint64{tag, uint64(status), 0, 0, p.qep[q]}})
}

// --- api.Env implementation ---------------------------------------------------

// env is what the unmodified driver sees: the SUD-UML kernel environment.
type env struct {
	p *Process
}

var _ api.Env = (*env)(nil)

func (e *env) uml() { e.p.Acct.Charge(sim.CostUMLCall) }

func (e *env) ConfigRead(off, size int) (uint32, error) {
	e.uml()
	return e.p.DF.ConfigRead(off, size)
}

func (e *env) ConfigWrite(off, size int, v uint32) error {
	e.uml()
	return e.p.DF.ConfigWrite(off, size, v)
}

func (e *env) EnableDevice() error {
	e.uml()
	cur, err := e.p.DF.ConfigRead(pci.CfgCommand, 2)
	if err != nil {
		return err
	}
	return e.p.DF.ConfigWrite(pci.CfgCommand, 2, cur|pci.CmdMemSpace|pci.CmdIOSpace)
}

func (e *env) SetMaster() error {
	e.uml()
	cur, err := e.p.DF.ConfigRead(pci.CfgCommand, 2)
	if err != nil {
		return err
	}
	return e.p.DF.ConfigWrite(pci.CfgCommand, 2, cur|pci.CmdBusMaster)
}

func (e *env) FindCapability(id uint8) int {
	e.uml()
	off, err := e.p.DF.ConfigRead(pci.CfgCapPtr, 1)
	if err != nil {
		return 0
	}
	for iter := 0; off != 0 && iter < 16; iter++ {
		cap, err := e.p.DF.ConfigRead(int(off), 2)
		if err != nil {
			return 0
		}
		if uint8(cap) == id {
			return int(off)
		}
		off = cap >> 8
	}
	return 0
}

func (e *env) IORemap(bar int) (api.MMIO, error) {
	e.uml()
	m, err := e.p.DF.MapMMIO(bar)
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (e *env) RequestRegion(bar int) (api.PortIO, error) {
	e.uml()
	io, err := e.p.DF.RequestIOPorts(bar)
	if err != nil {
		return nil, err
	}
	return io, nil
}

func (e *env) AllocCoherent(size int) (api.DMABuf, error) {
	e.uml()
	a, err := e.p.DF.AllocDMA(size, fmt.Sprintf("coherent #%d", len(e.p.DF.Allocs())), true)
	if err != nil {
		return nil, err
	}
	return &umlDMA{p: e.p, a: a, size: size}, nil
}

func (e *env) AllocCaching(size int) (api.DMABuf, error) {
	e.uml()
	a, err := e.p.DF.AllocDMA(size, fmt.Sprintf("caching #%d", len(e.p.DF.Allocs())), false)
	if err != nil {
		return nil, err
	}
	return &umlDMA{p: e.p, a: a, size: size}, nil
}

// AllocCoherentQ/AllocCachingQ implement api.QueueDMAAllocator: the
// allocation is mapped only into the stream's per-queue IOMMU sub-domain,
// the device-side half of queue-granular DMA confinement. The driver-side
// window is unchanged — the process sees one DMA address space either way.
func (e *env) AllocCoherentQ(size, stream int) (api.DMABuf, error) {
	e.uml()
	a, err := e.p.DF.AllocDMAQ(size, fmt.Sprintf("coherent q%d #%d", stream, len(e.p.DF.Allocs())), true, stream)
	if err != nil {
		return nil, err
	}
	return &umlDMA{p: e.p, a: a, size: size}, nil
}

func (e *env) AllocCachingQ(size, stream int) (api.DMABuf, error) {
	e.uml()
	a, err := e.p.DF.AllocDMAQ(size, fmt.Sprintf("caching q%d #%d", stream, len(e.p.DF.Allocs())), false, stream)
	if err != nil {
		return nil, err
	}
	return &umlDMA{p: e.p, a: a, size: size}, nil
}

func (e *env) FreeDMA(b api.DMABuf) error {
	e.uml()
	ub, ok := b.(*umlDMA)
	if !ok {
		return fmt.Errorf("sudml: foreign DMA buffer")
	}
	return e.p.DF.FreeDMA(ub.a)
}

func (e *env) RequestIRQ(handler func()) error {
	e.uml()
	p := e.p
	p.irqHandler = handler
	return p.DF.RequestIRQ(func() {
		// Kernel context: forward the interrupt as an urgent upcall —
		// interrupt wakes are the pump for batched async upcalls.
		if err := p.Chan.ASendUrgent(uchan.Msg{Op: protocol.OpInterrupt}); err != nil {
			// Ring full or dead: the interrupt is dropped; masking
			// policy in pciaccess protects the system.
			return
		}
	})
}

func (e *env) FreeIRQ() error {
	e.uml()
	e.p.irqHandler = nil
	return e.p.DF.FreeIRQ()
}

func (e *env) IRQAck() {
	e.uml()
	if err := e.p.Chan.Down(uchan.Msg{Op: protocol.OpIRQAck}); err != nil {
		return
	}
}

func (e *env) RegisterNetDev(name string, macAddr [6]byte, dev api.NetDevice) (api.NetKernel, error) {
	e.uml()
	p := e.p
	if p.Eth != nil && p.netdev == nil && p.Eth.Ifc != nil {
		// Promoted hot standby: the proxy pre-registered (and was identity
		// checked) before the kill and is already bound to the adopted
		// interface; the probing driver binds to it instead of registering
		// anew. The MAC the driver read back from the hardware must still
		// match — same EEPROM, same interface.
		if p.Eth.Ifc.MAC != netstack.MAC(macAddr) {
			return nil, fmt.Errorf("sudml: standby driver MAC does not match %s", p.Eth.Ifc.Name)
		}
		p.netdev = dev
		return &umlNetKernel{p: p}, nil
	}
	if p.Eth != nil {
		return nil, fmt.Errorf("sudml: netdev already registered")
	}
	p.netdev = dev
	p.ki = &ethproxy.KernelIface{Acct: p.K.Acct, Mem: p.K.M.Mem, Net: p.K.Net}
	proxy, err := ethproxy.New(p.ki, p.DF, p.Chan, name, macAddr)
	if err != nil {
		return nil, err
	}
	p.Eth = proxy
	return &umlNetKernel{p: p}, nil
}

func (e *env) Jiffies() uint64 {
	e.uml()
	return e.p.K.Jiffies()
}

func (e *env) Timer(delayJiffies uint64, fn func()) {
	e.uml()
	p := e.p
	p.K.M.Loop.After(sim.Duration(delayJiffies)*(sim.Second/kernel.HZ), func() {
		if p.killed {
			return
		}
		p.Acct.Charge(sim.CostUMLCall)
		fn()
		p.kickPending()
		p.flushRxBatches()
		p.flushBlkComps()
		p.Chan.Flush()
	})
}

func (e *env) Logf(format string, args ...any) {
	e.p.K.Logf("[sud:"+e.p.Name+"] "+format, args...)
}

// RegisterWifiDev implements api.EnvWifi for the untrusted host: a wireless
// proxy is created in the kernel, with the driver's static feature set
// mirrored at registration (§3.1.1).
func (e *env) RegisterWifiDev(name string, macAddr [6]byte, dev api.WifiDevice) (api.WifiKernel, error) {
	e.uml()
	p := e.p
	if p.Wifi != nil {
		return nil, fmt.Errorf("sudml: wifi device already registered")
	}
	p.wifidev = dev
	proxy, err := wifiproxy.New(p.K.Wifi, p.DF, p.Chan.Queue(0), name, macAddr, dev.Features())
	if err != nil {
		return nil, err
	}
	p.Wifi = proxy
	return &umlWifiKernel{p: p}, nil
}

// RegisterSoundDev implements api.EnvAudio for the untrusted host.
func (e *env) RegisterSoundDev(name string, dev api.AudioDevice) (api.AudioKernel, error) {
	e.uml()
	p := e.p
	if p.Audio != nil {
		return nil, fmt.Errorf("sudml: sound device already registered")
	}
	p.audiodev = dev
	proxy, err := audioproxy.New(p.K.Audio, p.DF, p.Chan.Queue(0), name)
	if err != nil {
		return nil, err
	}
	p.Audio = proxy
	return &umlAudioKernel{p: p}, nil
}

// RegisterBlockDev implements api.EnvBlock for the untrusted host: a block
// proxy is created in the kernel with the media geometry mirrored at
// registration (§3.3), and its per-queue shared-slot pools become distinct
// device-file allocations in the process's IOMMU domain.
func (e *env) RegisterBlockDev(name string, geom api.BlockGeometry, dev api.BlockDevice) (api.BlockKernel, error) {
	e.uml()
	p := e.p
	if p.Blk != nil && p.blockdev == nil && p.Blk.Dev != nil {
		// Promoted hot standby: the proxy pre-registered (and was geometry
		// checked) before the kill and is already bound to the adopted
		// device; the probing driver binds to it instead of registering
		// anew. The geometry the driver read back from the controller must
		// still match — same media, same device.
		if p.Blk.Dev.Geom != geom {
			return nil, fmt.Errorf("sudml: standby driver geometry %+v does not match %s's %+v",
				geom, p.Blk.Dev.Name, p.Blk.Dev.Geom)
		}
		p.blockdev = dev
		return &umlBlockKernel{p: p}, nil
	}
	if p.Blk != nil {
		return nil, fmt.Errorf("sudml: block device already registered")
	}
	p.blockdev = dev
	ki := &blkproxy.KernelIface{Acct: p.K.Acct, Mem: p.K.M.Mem, Blk: p.K.Blk}
	proxy, err := blkproxy.New(ki, p.DF, p.Chan, name, geom)
	if err != nil {
		return nil, err
	}
	p.Blk = proxy
	return &umlBlockKernel{p: p}, nil
}

// umlBlockKernel is the driver-side api.BlockKernel: completions cross the
// channel as shared-buffer references, batched per queue.
type umlBlockKernel struct {
	p *Process
}

var _ api.BlockKernel = (*umlBlockKernel)(nil)

// Complete forwards one I/O completion to the real kernel. If the read
// payload is a view of the driver's DMA memory (it is, for queue-pair
// drivers), only the buffer reference crosses the channel — the zero-copy
// path of §3.1.2; the kernel-side guard copy happens in the proxy. On
// multi-queue channels references accumulate into per-queue batches (up to
// blkproxy.MaxBlkBatch per message); a single-queue channel keeps one
// message per completion, like the paper's transport.
func (bk *umlBlockKernel) Complete(q int, tag uint64, err error, data []byte) {
	p := bk.p
	if p.killed {
		return
	}
	if q < 0 || q >= len(p.blkComp) {
		q = 0
	}
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	p.K.M.Trace.Event(trace.ClassBlk, q, tag, trace.HopDrvComplete)
	if fo, ok := p.flushMeta[tag]; ok {
		// A flush barrier: deliver every completion gathered before the
		// barrier ack, then echo the OpFlush frame back with the status —
		// the proxy's barrier accounting verifies the echo.
		delete(p.flushMeta, tag)
		p.flushBlkComps()
		if err != nil {
			fo.Status = 1
		}
		_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpFlushDone, Data: blkproxy.EncodeFlushOp(fo)})
		return
	}
	comp := p.completionRef(tag, err, data)
	if comp.IOVA == 0 && len(data) > 0 && err == nil {
		// Slice identity lost (the payload is not a registered DMA
		// view): bounce it inline on either transport — a zero
		// reference in the batch framing would read as a write
		// completion.
		p.BouncedRx++
		p.QueueAccts[q].Charge(sim.Copy(len(data)))
		buf := make([]byte, len(data))
		copy(buf, data)
		_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpComplete, Data: buf,
			Args: [6]uint64{comp.Tag, uint64(comp.Status), 0, 0, p.qep[q]}})
		return
	}
	if p.Chan.NumQueues() > 1 {
		p.blkComp[q] = append(p.blkComp[q], comp)
		if len(p.blkComp[q]) >= blkproxy.MaxBlkBatch {
			p.flushBlkCompQ(q)
		}
		return
	}
	_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpComplete,
		Args: [6]uint64{comp.Tag, uint64(comp.Status), comp.IOVA, uint64(comp.Len), p.qep[q]}})
}

// completionRef builds the wire form of one completion: successful reads
// resolve the payload view back to its bus address for the zero-copy
// reference; failures carry a bare status.
func (p *Process) completionRef(tag uint64, err error, data []byte) blkproxy.CompRef {
	comp := blkproxy.CompRef{Tag: tag}
	if err != nil {
		comp.Status = 1
		return comp
	}
	if len(data) == 0 {
		return comp // write completion
	}
	if iova, ok := p.sliceAddrs[&data[0]]; ok {
		p.ZeroCopyRx++
		comp.IOVA = uint64(iova)
		comp.Len = uint32(len(data))
	}
	return comp
}

// WakeQueueQ implements api.BlockKernel: queue q's hardware queue regained
// space; the wake downcall rides queue q's own ring and names the queue,
// so the proxy releases only that queue's block-core context.
func (bk *umlBlockKernel) WakeQueueQ(q int) {
	p := bk.p
	if q < 0 || q >= len(p.QueueAccts) {
		q = 0
	}
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpWakeQueue, Args: [6]uint64{uint64(q)}})
}

// flushBlkCompQ emits queue q's accumulated completions as one batched
// downcall message on ring q.
func (p *Process) flushBlkCompQ(q int) {
	if len(p.blkComp[q]) == 0 {
		return
	}
	data := blkproxy.EncodeBlkBatch(p.blkComp[q])
	p.blkComp[q] = p.blkComp[q][:0]
	p.QueueAccts[q].Charge(sim.Copy(len(data)))
	p.BlkBatches++
	_ = p.Chan.DownQ(q, uchan.Msg{Op: blkproxy.OpCompleteBatch, Data: data,
		Args: [6]uint64{p.qep[q]}})
}

// flushBlkComps emits every queue's partial completion batch; called at the
// end of a dispatch so completions never wait on future I/O.
func (p *Process) flushBlkComps() {
	for q := range p.blkComp {
		p.flushBlkCompQ(q)
	}
}

// umlAudioKernel is the driver-side api.AudioKernel.
type umlAudioKernel struct {
	p *Process
}

var _ api.AudioKernel = (*umlAudioKernel)(nil)

// PeriodElapsed forwards the latency-critical refill cue; it flushes
// immediately rather than waiting for batching, because a late period is an
// audible underrun (§4.1 real-time scheduling).
func (ak *umlAudioKernel) PeriodElapsed() {
	p := ak.p
	p.Acct.Charge(sim.CostUMLCall)
	_ = p.Chan.Down(uchan.Msg{Op: audioproxy.OpPeriodElapsed})
	p.Chan.Flush()
}

// XRun reports an underrun.
func (ak *umlAudioKernel) XRun() {
	p := ak.p
	p.Acct.Charge(sim.CostUMLCall)
	_ = p.Chan.Down(uchan.Msg{Op: audioproxy.OpXRun})
}

// umlWifiKernel is the driver-side api.WifiKernel: every notification is a
// downcall synchronising mirrored kernel state (§3.3).
type umlWifiKernel struct {
	p *Process
}

var _ api.WifiKernel = (*umlWifiKernel)(nil)

func (wk *umlWifiKernel) NetifRx(frame []byte) {
	p := wk.p
	if p.killed || len(frame) == 0 || len(frame) > wifiproxy.MaxFrame {
		return
	}
	p.Acct.Charge(sim.CostUMLCall + sim.Copy(len(frame)))
	buf := make([]byte, len(frame))
	copy(buf, frame)
	_ = p.Chan.Down(uchan.Msg{Op: wifiproxy.OpNetifRx, Data: buf})
}

func (wk *umlWifiKernel) ScanDone(results []api.BSS) {
	p := wk.p
	p.Acct.Charge(sim.CostUMLCall)
	_ = p.Chan.Down(uchan.Msg{Op: wifiproxy.OpScanDone, Data: wifiproxy.EncodeBSSList(results)})
}

func (wk *umlWifiKernel) Associated(ssid string) {
	p := wk.p
	p.Acct.Charge(sim.CostUMLCall)
	_ = p.Chan.Down(uchan.Msg{Op: wifiproxy.OpAssociated, Data: []byte(ssid)})
}

func (wk *umlWifiKernel) Disassociated() {
	p := wk.p
	p.Acct.Charge(sim.CostUMLCall)
	_ = p.Chan.Down(uchan.Msg{Op: wifiproxy.OpDisassociated})
}

// --- DMA buffers ----------------------------------------------------------------

// umlDMA is driver-process DMA memory: the same physical pages are mapped
// into the process, the kernel, and the device's IOMMU domain, at a bus
// address equal to the process virtual address (§4.1).
type umlDMA struct {
	p    *Process
	a    *pciaccess.Alloc
	size int
}

func (b *umlDMA) BusAddr() mem.Addr { return b.a.IOVA }
func (b *umlDMA) Size() int         { return b.size }

// touch routes a driver-side access through the safe PCI module's page-flip
// bookkeeping: on a revoked page the process's mapping is gone, so the access
// faults (recorded as evidence) instead of reading kernel-owned bytes. Gated
// on RevokedPages so a process that never flips pays nothing.
func (b *umlDMA) touch(off, n int, write bool) error {
	if b.p.DF.RevokedPages() == 0 {
		return nil
	}
	_, err := b.p.DF.DriverTouch(b.a.IOVA+mem.Addr(off), n, write)
	return err
}

func (b *umlDMA) Read(off int, p []byte) error {
	if off < 0 || off+len(p) > b.size {
		return fmt.Errorf("sudml: DMA read out of bounds")
	}
	if err := b.touch(off, len(p), false); err != nil {
		return err
	}
	b.p.Acct.Charge(sim.Copy(len(p)))
	return b.p.K.M.Mem.Read(b.a.Phys+mem.Addr(off), p)
}

func (b *umlDMA) Write(off int, p []byte) error {
	if off < 0 || off+len(p) > b.size {
		return fmt.Errorf("sudml: DMA write out of bounds")
	}
	if err := b.touch(off, len(p), true); err != nil {
		return err
	}
	b.p.Acct.Charge(sim.Copy(len(p)))
	return b.p.K.M.Mem.Write(b.a.Phys+mem.Addr(off), p)
}

func (b *umlDMA) Slice(off, n int) ([]byte, bool) {
	if off < 0 || n <= 0 || off+n > b.size {
		return nil, false
	}
	if b.touch(off, n, true) != nil {
		return nil, false
	}
	view, ok := b.p.K.M.Mem.Slice(b.a.Phys+mem.Addr(off), n)
	if !ok {
		return nil, false
	}
	// Remember the view's identity so netif_rx can recover the bus
	// address for the zero-copy downcall.
	if len(b.p.sliceAddrs) > 8192 {
		b.p.sliceAddrs = make(map[*byte]mem.Addr)
	}
	b.p.sliceAddrs[&view[0]] = b.a.IOVA + mem.Addr(off)
	return view, true
}

// --- NetKernel (driver → "kernel" inside SUD-UML) --------------------------------

type umlNetKernel struct {
	p *Process
}

var _ api.NetKernel = (*umlNetKernel)(nil)

// NetifRx forwards a received frame to the real kernel: the frame arrived
// on RX ring q and is delivered on queue q's uchan ring, charged to queue
// q's service account. If the frame is a view of the driver's DMA memory
// (it is, for ring-based drivers), only the buffer reference crosses the
// channel — the zero-copy path of §3.1.2; the kernel-side guard copy
// happens in the proxy, fused with checksumming. On multi-queue channels
// zero-copy references accumulate into a per-queue batch (up to
// ethproxy.MaxRxBatch per message) instead of paying one downcall per
// frame; a single-queue channel keeps the paper's exact
// one-message-per-frame transport.
func (nk *umlNetKernel) NetifRx(frame []byte, q int) {
	p := nk.p
	if len(frame) == 0 || p.killed {
		return
	}
	if q < 0 || q >= len(p.rxBatch) {
		q = 0
	}
	multi := p.Chan.NumQueues() > 1 && !p.NoRxBatch
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	if iova, ok := p.sliceAddrs[&frame[0]]; ok {
		p.ZeroCopyRx++
		p.K.M.Trace.Event(trace.ClassNetRx, q, uint64(iova), trace.HopUchanEnq)
		if multi {
			p.rxBatch[q] = append(p.rxBatch[q], ethproxy.RxRef{IOVA: uint64(iova), Len: uint32(len(frame))})
			if len(p.rxBatch[q]) >= ethproxy.MaxRxBatch {
				p.flushRxBatchQ(q)
			}
			return
		}
		_ = p.Chan.DownQ(q, uchan.Msg{Op: ethproxy.OpNetifRx, Args: [6]uint64{uint64(iova), uint64(len(frame))}})
		return
	}
	// Fallback: bounce through an inline copy in the message.
	p.BouncedRx++
	p.QueueAccts[q].Charge(sim.Copy(len(frame)))
	buf := make([]byte, len(frame))
	copy(buf, frame)
	_ = p.Chan.DownQ(q, uchan.Msg{Op: ethproxy.OpNetifRx, Data: buf,
		Args: [6]uint64{0, uint64(len(frame))}})
}

// flushRxBatchQ emits queue q's accumulated frame references as one batched
// downcall message on ring q.
func (p *Process) flushRxBatchQ(q int) {
	if len(p.rxBatch[q]) == 0 {
		return
	}
	data := ethproxy.EncodeRxBatch(p.rxBatch[q])
	p.rxBatch[q] = p.rxBatch[q][:0]
	p.QueueAccts[q].Charge(sim.Copy(len(data)))
	p.RxBatches++
	_ = p.Chan.DownQ(q, uchan.Msg{Op: ethproxy.OpNetifRxBatch, Data: data})
}

// flushRxBatches emits every queue's partial batch; called at the end of a
// dispatch so received frames never wait on future traffic.
func (p *Process) flushRxBatches() {
	for q := range p.rxBatch {
		p.flushRxBatchQ(q)
	}
}

// CarrierOn mirrors link state to the kernel (§3.3 shared-memory state).
func (nk *umlNetKernel) CarrierOn() {
	nk.p.Acct.Charge(sim.CostUMLCall)
	_ = nk.p.Chan.Down(uchan.Msg{Op: ethproxy.OpCarrierOn})
}

// CarrierOff mirrors link state to the kernel.
func (nk *umlNetKernel) CarrierOff() {
	nk.p.Acct.Charge(sim.CostUMLCall)
	_ = nk.p.Chan.Down(uchan.Msg{Op: ethproxy.OpCarrierOff})
}

// WakeQueue mirrors TX queue state to the kernel: queue q's device ring
// regained space; the wake downcall rides queue q's own ring and names the
// queue, so the proxy releases only that queue's netstack context.
func (nk *umlNetKernel) WakeQueue(q int) {
	p := nk.p
	if q < 0 || q >= len(p.QueueAccts) {
		q = 0
	}
	p.QueueAccts[q].Charge(sim.CostUMLCall)
	_ = p.Chan.DownQ(q, uchan.Msg{Op: ethproxy.OpWakeQueue, Args: [6]uint64{uint64(q)}})
}
