package sudml

import (
	"testing"

	"sud/internal/devices/e1000"
	"sud/internal/devices/hda"
	"sud/internal/devices/usb"
	"sud/internal/devices/wifi"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/ehci"
	"sud/internal/drivers/iwl"
	"sud/internal/drivers/sndhda"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
)

// TestFourDriverProcessesIsolated boots one machine with four devices, each
// driven by its own untrusted process (§2: "SUD runs a separate UML process
// for each device driver"), runs all four classes concurrently, then hangs
// and kills the Ethernet driver and verifies the other three keep working —
// the paper's core isolation claim between drivers.
func TestFourDriverProcessesIsolated(t *testing.T) {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)

	// Devices.
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	ap := &wifi.AP{SSID: "lab", BSSID: [6]byte{0xAA, 1, 1, 1, 1, 1}, Channel: 1, Signal: -50}
	air := &wifi.Air{APs: []*wifi.AP{ap}}
	wcard := wifi.New(m.Loop, pci.MakeBDF(1, 1, 0), 0xFEB20000, [6]byte{0, 0x21, 0x6A, 9, 9, 9}, air)
	m.AttachDevice(wcard)

	codec := hda.New(m.Loop, pci.MakeBDF(1, 2, 0), 0xFEB30000)
	m.AttachDevice(codec)

	hc := usb.New(m.Loop, pci.MakeBDF(1, 3, 0), 0xFEB40000)
	m.AttachDevice(hc)
	kbd := usb.NewKeyboard()
	if err := hc.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}

	// One untrusted process per driver, distinct UIDs.
	ethProc, err := Start(k, nic, e1000e.New(), "e1000e", 1001)
	if err != nil {
		t.Fatal(err)
	}
	wifiProc, err := Start(k, wcard, iwl.New(), "iwlagn", 1002)
	if err != nil {
		t.Fatal(err)
	}
	audioProc, err := Start(k, codec, sndhda.New(), "snd-hda", 1003)
	if err != nil {
		t.Fatal(err)
	}
	usbProc, err := Start(k, hc, ehci.New(), "ehci", 1004)
	if err != nil {
		t.Fatal(err)
	}

	// Every process has its own IOMMU domain — no sharing.
	doms := map[interface{}]bool{}
	for _, p := range []*Process{ethProc, wifiProc, audioProc, usbProc} {
		if doms[p.DF.Dom] {
			t.Fatal("two driver processes share an IOMMU domain")
		}
		doms[p.DF.Dom] = true
	}

	// Bring everything up and run all four classes.
	eth, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := eth.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	wl, err := k.Wifi.Iface("wlan0")
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Up(); err != nil {
		t.Fatal(err)
	}
	pcm, err := k.Audio.PCMDev("hda0")
	if err != nil {
		t.Fatal(err)
	}
	if err := pcm.Prepare(48000, 4800, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := pcm.WritePeriod(make([]byte, 4800)); err != nil {
			t.Fatal(err)
		}
	}
	pcm.OnPeriod = func() {
		for pcm.QueuedPeriods() < 4 {
			if err := pcm.WritePeriod(make([]byte, 4800)); err != nil {
				return
			}
		}
	}
	if err := pcm.Start(); err != nil {
		t.Fatal(err)
	}

	var echoes int
	if _, err := k.Net.UDPBind(5000, func([]byte, netstack.IP, uint16) { echoes++ }); err != nil {
		t.Fatal(err)
	}
	sendPing := func(ifc *netstack.Iface) {
		_ = k.Net.UDPSendTo(ifc, peerMAC, peerIP, 5000, 7, []byte("ping"))
	}
	if err := wl.Scan(); err != nil {
		t.Fatal(err)
	}
	sendPing(eth)
	m.Loop.RunFor(40 * sim.Millisecond)

	if echoes != 1 {
		t.Fatalf("ethernet echo failed pre-kill: %d", echoes)
	}
	if len(wl.LastScan) != 1 {
		t.Fatal("wifi scan failed pre-kill")
	}

	// Hang, then kill, the Ethernet driver.
	ethProc.Hang()
	if _, err := eth.Ioctl(api.IoctlGetMIIStatus, nil); err == nil {
		t.Fatal("hung eth driver answered ioctl")
	}
	ethProc.Kill()

	// The other three classes keep functioning.
	if err := wl.Associate("lab"); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(10 * sim.Millisecond)
	if !wl.Carrier {
		t.Fatal("wifi association failed after eth driver death")
	}
	periodsBefore := pcm.PeriodsElapsed
	m.Loop.RunFor(100 * sim.Millisecond)
	if pcm.PeriodsElapsed <= periodsBefore {
		t.Fatal("audio stalled after eth driver death")
	}
	if pcm.XRuns != 0 {
		t.Fatalf("audio underruns after eth driver death: %d", pcm.XRuns)
	}
	kbd.PressKey(0x04)
	devsRaw, err := usbProc.Ctl(ehci.CtlEnumerate, nil)
	if err != nil {
		t.Fatal(err)
	}
	devs, err := ehci.ParseDevices(devsRaw)
	if err != nil || len(devs) != 1 {
		t.Fatalf("usb enumeration after eth death: %v %v", devs, err)
	}
	rep, err := usbProc.Ctl(ehci.CtlHIDPoll, []byte{devs[0].Address})
	if err != nil || len(rep) != 8 || rep[2] != 0x04 {
		t.Fatalf("keyboard report after eth death: % x %v", rep, err)
	}

	// The dead NIC's DMA faults; the other devices' DMA still works
	// (audio keeps streaming, proven above).
	if err := nic.DMAWrite(0x42430000, []byte{1}); err == nil {
		t.Fatal("dead driver's device can still DMA")
	}

	// And a restarted Ethernet process restores service.
	if _, err := Start(k, nic, e1000e.New(), "e1000e-2", 1005); err != nil {
		t.Fatal(err)
	}
	eth2, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := eth2.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	sendPing(eth2)
	m.Loop.RunFor(10 * sim.Millisecond)
	if echoes != 2 {
		t.Fatalf("ethernet echo failed post-restart: %d", echoes)
	}
}

// TestSupervisorRecoversHungDriver exercises the shadow-driver extension:
// the supervised e1000e hangs mid-service; the supervisor detects it via the
// failed ioctl probe, restarts the process, replays the interface state, and
// traffic resumes without administrator action.
func TestSupervisorRecoversHungDriver(t *testing.T) {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &echoPeer{link: link, loop: m.Loop}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	sup, err := Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		t.Fatal(err)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	var echoes int
	if _, err := k.Net.UDPBind(5000, func([]byte, netstack.IP, uint16) { echoes++ }); err != nil {
		t.Fatal(err)
	}
	send := func() {
		cur, err := k.Net.Iface("eth0")
		if err != nil {
			return
		}
		_ = k.Net.UDPSendTo(cur, peerMAC, peerIP, 5000, 7, []byte("ping"))
	}
	send()
	m.Loop.RunFor(20 * sim.Millisecond)
	if echoes != 1 {
		t.Fatalf("pre-hang echo failed: %d", echoes)
	}

	// The driver wedges (infinite loop).
	sup.Proc().Hang()
	var gen int
	sup.OnRestart = func(g int) { gen = g }
	m.Loop.RunFor(50 * sim.Millisecond) // two health checks + recovery
	if sup.Restarts != 1 || gen != 1 {
		t.Fatalf("restarts = %d (gen %d), want 1", sup.Restarts, gen)
	}
	// Interface state was replayed; traffic flows again.
	cur, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.IsUp() {
		t.Fatal("interface not re-upped by supervisor")
	}
	send()
	m.Loop.RunFor(20 * sim.Millisecond)
	if echoes != 2 {
		t.Fatalf("post-recovery echo failed: %d", echoes)
	}
	// The supervisor stays quiet on a healthy driver.
	m.Loop.RunFor(100 * sim.Millisecond)
	if sup.Restarts != 1 {
		t.Fatalf("spurious restarts: %d", sup.Restarts)
	}
	sup.Stop()
}

// TestSupervisorGivesUpOnCrashLoop verifies the crash-loop bound.
func TestSupervisorGivesUpOnCrashLoop(t *testing.T) {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, dutMAC, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	link.Connect(nic, &echoPeer{link: link, loop: m.Loop})
	nic.AttachLink(link, 0)

	sup, err := Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		t.Fatal(err)
	}
	sup.MaxRestarts = 2
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(dutIP); err != nil {
		t.Fatal(err)
	}
	// Hang every generation as soon as it comes up.
	sup.OnRestart = func(int) { sup.Proc().Hang() }
	sup.Proc().Hang()
	m.Loop.RunFor(500 * sim.Millisecond)
	if sup.Restarts != 2 {
		t.Fatalf("restarts = %d, want MaxRestarts=2 then give up", sup.Restarts)
	}
}
