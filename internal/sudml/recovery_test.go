package sudml_test

import (
	"bytes"
	"testing"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/blockdev"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/sudml/policy"
	"sud/internal/trace"
	"sud/internal/uchan"
)

// supBlkWorld is one machine with the NVMe-lite controller driven by a
// SUPERVISED untrusted nvmed process: kill -9 triggers shadow recovery.
type supBlkWorld struct {
	m    *hw.Machine
	k    *kernel.Kernel
	ctrl *nvme.Ctrl
	sup  *sudml.Supervisor
	dev  *blockdev.Dev
}

func newSupBlkWorld(t *testing.T, queues int) *supBlkWorld {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(queues))
	m.AttachDevice(ctrl)
	sup, err := sudml.SuperviseBlock(k, ctrl, nvmed.NewQ(queues), "nvmed", "nvme0", 1200, queues)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Up(); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(100 * sim.Microsecond)
	return &supBlkWorld{m: m, k: k, ctrl: ctrl, sup: sup, dev: dev}
}

// saturate runs a mixed read/write closed loop over span LBAs, each block
// holding its own invariant fill byte, and returns counters the caller
// inspects after the run. outstanding bounds the offered depth.
type satStats struct {
	reads, writes  int
	readErrs       int
	writeErrs      int
	corrupt        int
	stopped        bool
	submitBackoffs int
}

func saturate(w *supBlkWorld, span uint64, outstanding int, st *satStats) {
	var issue func(seq uint64)
	issue = func(seq uint64) {
		if st.stopped {
			return
		}
		lba := (seq * 7) % span
		if seq%3 == 0 {
			err := w.dev.WriteAt(lba, block(byte(lba)), func(err error) {
				if st.stopped {
					return
				}
				if err != nil {
					st.writeErrs++
				} else {
					st.writes++
				}
				w.m.Loop.After(200, func() { issue(seq + span) })
			})
			if err != nil {
				st.submitBackoffs++
				w.m.Loop.After(10*sim.Microsecond, func() { issue(seq) })
			}
			return
		}
		err := w.dev.ReadAt(lba, func(data []byte, err error) {
			if st.stopped {
				return
			}
			if err != nil {
				st.readErrs++
			} else {
				st.reads++
				for _, b := range data {
					if b != byte(lba) {
						st.corrupt++
						break
					}
				}
			}
			w.m.Loop.After(200, func() { issue(seq + span) })
		})
		if err != nil {
			st.submitBackoffs++
			w.m.Loop.After(10*sim.Microsecond, func() { issue(seq) })
		}
	}
	for j := uint64(0); j < uint64(outstanding); j++ {
		issue(j)
	}
}

// TestBlockKillMidSaturationIsInvisible is the acceptance criterion: kill -9
// of the nvmed process during multi-queue saturation — with completions
// mid-CQ-drain and guard copies held — must complete every submitted
// request with correct data and surface no error to ReadAt/WriteAt callers.
func TestBlockKillMidSaturationIsInvisible(t *testing.T) {
	for _, queues := range []int{1, 4} {
		w := newSupBlkWorld(t, queues)
		const span = 40
		for lba := uint64(0); lba < span; lba++ {
			w.ctrl.SeedMedia(lba, block(byte(lba)))
		}
		st := &satStats{}
		saturate(w, span, 120, st)
		// Run into the middle of the storm, then kill the driver process
		// with completions in flight everywhere.
		w.m.Loop.RunFor(2 * sim.Millisecond)
		if w.dev.InFlight() == 0 {
			t.Fatalf("Q=%d: no requests in flight at kill time", queues)
		}
		w.sup.Proc().Kill()
		w.m.Loop.RunFor(30 * sim.Millisecond)
		st.stopped = true

		if w.sup.Restarts != 1 {
			t.Fatalf("Q=%d: restarts = %d, want 1", queues, w.sup.Restarts)
		}
		if w.sup.LastReplayed == 0 {
			t.Fatalf("Q=%d: nothing replayed across the restart", queues)
		}
		if st.readErrs != 0 || st.writeErrs != 0 {
			t.Fatalf("Q=%d: %d read / %d write errors surfaced to callers",
				queues, st.readErrs, st.writeErrs)
		}
		if st.corrupt != 0 {
			t.Fatalf("Q=%d: %d reads returned another block's data", queues, st.corrupt)
		}
		if st.reads < 500 {
			t.Fatalf("Q=%d: only %d reads completed (recovery did not resume traffic)", queues, st.reads)
		}
		// Media integrity after recovery: every block still holds its
		// invariant pattern.
		for lba := uint64(0); lba < span; lba++ {
			if !bytes.Equal(w.ctrl.PeekMedia(lba), block(byte(lba))) {
				t.Fatalf("Q=%d: media corrupted at LBA %d after recovery", queues, lba)
			}
		}
		// The flight recorder captured the whole recovery as one ordered
		// timeline: kill → park → detect → verdict → respawn → adopt →
		// replay → drain.
		assertFlightOrder(t, w.sup.Flight.Kinds(),
			trace.FKill, trace.FPark, trace.FDetect, trace.FVerdict,
			trace.FRespawn, trace.FAdopt, trace.FReplay, trace.FDrain)
	}
}

// assertFlightOrder checks that want appears as an ordered subsequence of
// the recorded flight-event kinds (other events may be interleaved).
func assertFlightOrder(t *testing.T, kinds []string, want ...string) {
	t.Helper()
	i := 0
	for _, k := range kinds {
		if i < len(want) && k == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("flight timeline missing %q in order\nwant subsequence: %v\ngot: %v",
			want[i], want, kinds)
	}
}

// TestBlockStaleEpochCompletionRejected: a completion still signed by the
// dead incarnation's proxy — same tags as the replayed requests — must be
// dropped and counted, never matched against the new incarnation.
func TestBlockStaleEpochCompletionRejected(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	w.ctrl.SeedMedia(5, block(0xAB))

	completions := 0
	var got []byte
	if err := w.dev.ReadAtQ(5, 0, func(data []byte, err error) {
		completions++
		if err == nil {
			got = append([]byte(nil), data...)
		}
	}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(50 * sim.Microsecond) // the submit reaches the driver
	oldProxy := w.sup.Proc().Blk
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(20 * sim.Millisecond) // recovery + replay complete

	// The zombie incarnation tries to complete tag 0 (now replayed and
	// live again in the new incarnation) with a bogus inline payload.
	oldProxy.HandleDowncall(0, uchan.Msg{Op: blkproxy.OpComplete,
		Data: block(0xEE), Args: [6]uint64{0, 0}})
	if oldProxy.CompStaleEpoch == 0 {
		t.Fatal("stale-epoch completion not counted")
	}
	if completions != 1 {
		t.Fatalf("request completed %d times", completions)
	}
	if !bytes.Equal(got, block(0xAB)) {
		t.Fatal("read did not return the media's data after recovery")
	}
	// The live proxy is a different incarnation and still works.
	newProxy := w.sup.Proc().Blk
	if newProxy == oldProxy {
		t.Fatal("supervisor did not produce a fresh proxy")
	}
	ok := false
	if err := w.dev.ReadAt(5, func(_ []byte, err error) { ok = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !ok {
		t.Fatal("device wedged after stale completion")
	}
}

// TestBlockDoubleKillDuringReplay: the restarted process is killed again
// before its replayed requests complete; a second recovery must rebuild the
// replay schedule from the shadow log and still complete everything exactly
// once.
func TestBlockDoubleKillDuringReplay(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	const span = 16
	for lba := uint64(0); lba < span; lba++ {
		w.ctrl.SeedMedia(lba, block(byte(lba)))
	}
	completions := make(map[uint64]int)
	errs := 0
	for lba := uint64(0); lba < span; lba++ {
		lba := lba
		if err := w.dev.ReadAt(lba, func(data []byte, err error) {
			completions[lba]++
			if err != nil || len(data) == 0 || data[0] != byte(lba) {
				errs++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.m.Loop.RunFor(30 * sim.Microsecond)
	// First kill; at generation 1, kill again the instant recovery hands
	// the replay to the fresh process (completions still pending).
	w.sup.OnRestart = func(gen int) {
		if gen == 1 {
			w.sup.Proc().Kill()
		}
	}
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(40 * sim.Millisecond)

	if w.sup.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", w.sup.Restarts)
	}
	if errs != 0 {
		t.Fatalf("%d requests completed wrongly", errs)
	}
	for lba := uint64(0); lba < span; lba++ {
		if completions[lba] != 1 {
			t.Fatalf("LBA %d completed %d times, want exactly once", lba, completions[lba])
		}
	}
}

// TestBlockQuarantineFailsParked: when supervision gives up (crash loop,
// restart budget exhausted), the parked requests must fail with ErrDown
// rather than wait forever — and under quarantine the device *survives*,
// registered but down and driverless, so the admin can inspect it and a
// fixed driver can later reclaim it.
func TestBlockQuarantineFailsParked(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	w.sup.MaxRestarts = 0 // first death exhausts the restart budget
	errs := 0
	pending := 0
	for lba := uint64(0); lba < 8; lba++ {
		if err := w.dev.ReadAt(lba, func(_ []byte, err error) {
			if err != nil {
				errs++
			}
		}); err != nil {
			t.Fatal(err)
		}
		pending++
	}
	w.m.Loop.RunFor(30 * sim.Microsecond)
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if errs != pending {
		t.Fatalf("%d/%d parked requests failed after give-up", errs, pending)
	}
	if !w.sup.Quarantined {
		t.Fatal("supervisor not quarantined after budget exhaustion")
	}
	if w.sup.LastVerdict != policy.Quarantine {
		t.Fatalf("last verdict = %v, want quarantine", w.sup.LastVerdict)
	}
	d, err := w.k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatalf("quarantined device must survive registered: %v", err)
	}
	if d.IsUp() {
		t.Fatal("quarantined device must be down")
	}
	// New I/O against the quarantined device fails immediately.
	if err := w.dev.ReadAt(0, func(_ []byte, err error) {
		if err != nil {
			errs++
		}
	}); err == nil {
		w.m.Loop.RunFor(1 * sim.Millisecond)
		if errs != pending+1 {
			t.Fatal("post-quarantine I/O neither rejected nor failed")
		}
	}
}
