package sudml_test

import (
	"bytes"
	"testing"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// newCachedBlkWorld boots the SUD block world with a volatile write cache
// of cacheBlocks on the controller.
func newCachedBlkWorld(t *testing.T, queues, cacheBlocks int) *blkWorld {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.CachedParams(queues, cacheBlocks))
	m.AttachDevice(ctrl)
	proc, err := sudml.StartQ(k, ctrl, nvmed.NewQ(queues), "nvmed", 1200, queues)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Up(); err != nil {
		t.Fatal(err)
	}
	m.Loop.RunFor(100 * sim.Microsecond)
	return &blkWorld{m: m, k: k, ctrl: ctrl, proc: proc, dev: dev}
}

func TestSUDBlockFlushMakesAckedWritesDurable(t *testing.T) {
	w := newCachedBlkWorld(t, 2, 16)
	if !w.dev.Geom.WriteCache {
		t.Fatal("geometry does not mirror the write cache")
	}

	acked := false
	if err := w.dev.WriteAt(7, block(0x3C), func(err error) { acked = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !acked {
		t.Fatal("write never acked")
	}
	// Acked is not durable: the payload is in the device's volatile
	// cache, media still holds zeroes.
	if bytes.Equal(w.ctrl.PeekMedia(7), block(0x3C)) {
		t.Fatal("write durable before any flush — the cache is not being modelled")
	}
	if w.ctrl.DirtyBlocks() == 0 {
		t.Fatal("no dirty cache blocks after an acked write")
	}

	flushed := false
	if err := w.dev.Flush(func(err error) { flushed = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !flushed {
		t.Fatal("flush never completed")
	}
	if !bytes.Equal(w.ctrl.PeekMedia(7), block(0x3C)) {
		t.Fatal("flush completed without draining the acked write to media")
	}
	if w.ctrl.Flushes != 1 {
		t.Fatalf("device executed %d flushes, want 1", w.ctrl.Flushes)
	}
	if w.proc.Blk.FlushesIssued != 1 || w.proc.Blk.FlushesAcked != 1 {
		t.Fatalf("proxy accounting: issued=%d acked=%d",
			w.proc.Blk.FlushesIssued, w.proc.Blk.FlushesAcked)
	}
	if w.dev.Flushes != 1 {
		t.Fatalf("block core counted %d barriers", w.dev.Flushes)
	}
}

func TestSUDBlockFUAWriteDurableOnCompletion(t *testing.T) {
	w := newCachedBlkWorld(t, 2, 16)
	acked := false
	if err := w.dev.WriteAtFUA(9, block(0x77), func(err error) { acked = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !acked {
		t.Fatal("FUA write never acked")
	}
	if !bytes.Equal(w.ctrl.PeekMedia(9), block(0x77)) {
		t.Fatal("FUA completion delivered with the payload still volatile")
	}
	if w.ctrl.FUAWrites != 1 || w.proc.Blk.FUAIssued != 1 {
		t.Fatalf("FUA accounting: device=%d proxy=%d", w.ctrl.FUAWrites, w.proc.Blk.FUAIssued)
	}
}

func TestSUDBlockBarrierParksNewSubmissions(t *testing.T) {
	w := newCachedBlkWorld(t, 2, 16)
	// Saturate with writes, issue a flush, then more writes: everything
	// must complete, in particular nothing may error or deadlock, and
	// the flush must drain every write acked before it.
	var ackedBefore, flushed bool
	var after int
	for lba := uint64(0); lba < 8; lba++ {
		lba := lba
		if err := w.dev.WriteAt(lba, block(byte(lba+1)), func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", lba, err)
			}
			ackedBefore = true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.dev.Flush(func(err error) {
		if err != nil {
			t.Errorf("flush: %v", err)
		}
		flushed = true
	}); err != nil {
		t.Fatal(err)
	}
	for lba := uint64(8); lba < 12; lba++ {
		if err := w.dev.WriteAt(lba, block(byte(lba+1)), func(err error) {
			if err == nil {
				after++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.m.Loop.RunFor(20 * sim.Millisecond)
	if !ackedBefore || !flushed || after != 4 {
		t.Fatalf("ackedBefore=%v flushed=%v after=%d", ackedBefore, flushed, after)
	}
	// Every pre-barrier write is durable (the flush drained them; the
	// post-barrier ones may or may not still be dirty).
	for lba := uint64(0); lba < 8; lba++ {
		if got := w.ctrl.PeekMedia(lba); !bytes.Equal(got, block(byte(lba+1))) {
			if w.ctrl.DirtyBlocks() > 0 {
				// Only post-barrier writes may be volatile; a pre-barrier
				// LBA missing from media is a barrier violation.
				t.Fatalf("pre-barrier write %d not durable after flush", lba)
			}
		}
	}
}

func TestSUDBlockForgedFlushDoneRejected(t *testing.T) {
	w := newCachedBlkWorld(t, 2, 16)

	// No barrier in flight: a FlushDone out of nowhere (a barrier
	// "completed" before it was issued) must be dropped and counted.
	forged := blkproxy.EncodeFlushOp(blkproxy.FlushOp{Barrier: 1, Epoch: 0, Tag: 0})
	if err := w.proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpFlushDone, Data: forged}); err != nil {
		t.Fatal(err)
	}
	// Malformed framing is counted separately.
	if err := w.proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpFlushDone, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	w.proc.Chan.Flush()
	if w.proc.Blk.CompBadBarrier != 1 || w.proc.Blk.CompBadFlushFrame != 1 {
		t.Fatalf("badBarrier=%d badFrame=%d", w.proc.Blk.CompBadBarrier, w.proc.Blk.CompBadFlushFrame)
	}

	// A real barrier afterwards: forge wrong-sequence and wrong-epoch
	// completions while it is in flight — only the genuine echo may
	// complete it.
	if err := w.dev.WriteAt(3, block(0xEE), func(error) {}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	flushed := false
	if err := w.dev.Flush(func(err error) { flushed = err == nil }); err != nil {
		t.Fatal(err)
	}
	for _, f := range []blkproxy.FlushOp{
		{Barrier: 99, Epoch: 0, Tag: 1}, // wrong sequence
		{Barrier: 1, Epoch: 77, Tag: 1}, // wrong epoch
		{Barrier: 1, Epoch: 0, Tag: 42}, // wrong tag
	} {
		if err := w.proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpFlushDone,
			Data: blkproxy.EncodeFlushOp(f)}); err != nil {
			t.Fatal(err)
		}
	}
	w.proc.Chan.Flush()
	if flushed {
		t.Fatal("a forged FlushDone completed the barrier")
	}
	if w.proc.Blk.CompBadBarrier < 3 {
		t.Fatalf("CompBadBarrier = %d, want >= 3 more", w.proc.Blk.CompBadBarrier)
	}
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if !flushed {
		t.Fatal("the honest flush never completed after the forgeries")
	}
	if !bytes.Equal(w.ctrl.PeekMedia(3), block(0xEE)) {
		t.Fatal("flush acked without the write durable")
	}
}
