package policy

import (
	"strings"
	"testing"

	"sud/internal/sim"
)

func cfg() Config {
	return Config{
		WindowBudget:  3,
		RestartWindow: 100 * sim.Millisecond,
		BackoffBase:   1 * sim.Millisecond,
		BackoffMax:    8 * sim.Millisecond,
		HealthyAfter:  10 * sim.Millisecond,
		StormLimit:    3,
		StaleLimit:    16,
	}
}

// TestVerdictTransitions replays the canonical crash-loop sequence in
// deterministic virtual time: the first death restarts immediately, each
// consecutive crash-loop death doubles the backoff, and exhausting the
// window budget converges on quarantine.
func TestVerdictTransitions(t *testing.T) {
	e := NewEngine(cfg())
	now := sim.Time(0)

	d := e.OnDeath(now, false, "died")
	if d.Verdict != Restart || d.Delay != 0 {
		t.Fatalf("first death: %v delay %v, want immediate restart", d.Verdict, d.Delay)
	}
	e.RecordRestart(now)

	// Death 1 ms after the restart: crash loop, ladder starts at base.
	now += 1 * sim.Millisecond
	d = e.OnDeath(now, false, "died")
	if d.Verdict != RestartBackoff || d.Delay != 1*sim.Millisecond {
		t.Fatalf("crash-loop death: %v delay %v, want backoff 1ms", d.Verdict, d.Delay)
	}
	e.RecordRestart(now + d.Delay)

	// Immediate death again: the ladder doubles.
	now += d.Delay
	d = e.OnDeath(now, false, "died")
	if d.Verdict != RestartBackoff || d.Delay != 2*sim.Millisecond {
		t.Fatalf("second crash-loop death: %v delay %v, want backoff 2ms", d.Verdict, d.Delay)
	}
	e.RecordRestart(now + d.Delay)

	// Third restart is in the window: the budget (3) is exhausted.
	now += d.Delay
	d = e.OnDeath(now, false, "died")
	if d.Verdict != Quarantine {
		t.Fatalf("budget-exhausted death: %v, want quarantine", d.Verdict)
	}
	if !e.Quarantined() || !strings.Contains(e.Reason(), "crash loop") {
		t.Fatalf("engine not quarantined (reason %q)", e.Reason())
	}
	// Quarantine is terminal.
	if d := e.OnDeath(now+sim.Second, true, "died"); d.Verdict != Quarantine {
		t.Fatalf("post-quarantine death: %v, want quarantine", d.Verdict)
	}
}

// TestBackoffCapsAndResets: the ladder saturates at BackoffMax and resets
// after sustained health.
func TestBackoffCapsAndResets(t *testing.T) {
	c := cfg()
	c.WindowBudget = 100 // keep the budget out of the way
	e := NewEngine(c)
	now := sim.Time(0)
	e.RecordRestart(now)
	var last sim.Duration
	for i := 0; i < 6; i++ {
		now += 1 * sim.Millisecond
		d := e.OnDeath(now, false, "died")
		if d.Verdict != RestartBackoff {
			t.Fatalf("death %d: %v, want backoff", i, d.Verdict)
		}
		last = d.Delay
		e.RecordRestart(now + d.Delay)
		now += d.Delay
	}
	if last != c.BackoffMax {
		t.Fatalf("ladder topped out at %v, want cap %v", last, c.BackoffMax)
	}
	// Sustained health: the next death is a fresh fault again.
	now += 2 * c.HealthyAfter
	if d := e.OnDeath(now, false, "died"); d.Verdict != Restart {
		t.Fatalf("death after sustained health: %v, want immediate restart", d.Verdict)
	}
}

// TestSlidingWindowForgetsOldRestarts: kills separated by healthy service
// never exhaust the budget, no matter how many accumulate over a lifetime.
func TestSlidingWindowForgetsOldRestarts(t *testing.T) {
	e := NewEngine(cfg()) // budget 3 within 100 ms
	now := sim.Time(0)
	for i := 0; i < 50; i++ {
		d := e.OnDeath(now, false, "died")
		if d.Verdict != Restart {
			t.Fatalf("kill %d at %v: %v, want restart (in window: %d)",
				i, now, d.Verdict, e.InWindow(now))
		}
		e.RecordRestart(now)
		now += 60 * sim.Millisecond // at most 2 restarts ever share a window
	}
	if e.Quarantined() {
		t.Fatal("isolated kills exhausted the lifetime budget")
	}
}

// TestFailoverPreferredWhenArmed: a fresh fault uses the hot standby; a
// crash loop does not consume it.
func TestFailoverPreferredWhenArmed(t *testing.T) {
	e := NewEngine(cfg())
	if d := e.OnDeath(0, true, "died"); d.Verdict != Failover {
		t.Fatalf("fresh death with standby: %v, want failover", d.Verdict)
	}
	e.RecordRestart(0)
	if d := e.OnDeath(1*sim.Millisecond, true, "died"); d.Verdict != RestartBackoff {
		t.Fatalf("crash-loop death with standby: %v, want backoff (spare the standby)", d.Verdict)
	}
}

// TestEvidenceConviction: flush lies, storm trips and stale-epoch floods
// convict directly, and conviction turns every later verdict into
// quarantine.
func TestEvidenceConviction(t *testing.T) {
	cases := []struct {
		name string
		ev   Evidence
		want string
	}{
		{"barrier violations", Evidence{BarrierViolations: 1}, "flush lie"},
		{"acked > executed", Evidence{FlushesAcked: 5, FlushesExecuted: 3}, "flush lie"},
		{"storm trips", Evidence{StormTrips: 3}, "interrupt storm"},
		{"stale flood", Evidence{StaleEpoch: 16}, "stale-epoch flood"},
	}
	for _, tc := range cases {
		e := NewEngine(cfg())
		if !e.Observe(tc.ev) {
			t.Fatalf("%s: evidence did not convict", tc.name)
		}
		if !strings.Contains(e.Reason(), tc.want) {
			t.Fatalf("%s: reason %q does not name %q", tc.name, e.Reason(), tc.want)
		}
		if d := e.OnDeath(0, true, "died"); d.Verdict != Quarantine {
			t.Fatalf("%s: post-conviction verdict %v, want quarantine", tc.name, d.Verdict)
		}
	}
	// Healthy counters never convict.
	e := NewEngine(cfg())
	if e.Observe(Evidence{FlushesAcked: 7, FlushesExecuted: 7, StormTrips: 2, StaleEpoch: 2}) {
		t.Fatal("healthy evidence convicted the driver")
	}
}
