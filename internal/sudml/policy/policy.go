// Package policy is the supervisor's policy plane: it converts the raw
// evidence the recovery machinery accumulates — driver deaths, per-queue
// progress wedges, barrier-accounting violations from the block proxy,
// stale-epoch downcall floods from dead incarnations, interrupt-storm
// suppressions — into graded verdicts. PRs 4–5 built the *mechanism*
// (shadow recovery, flush-lie attribution); this package is the *policy*
// that decides what a driver's behaviour has earned:
//
//   - Restart: an isolated death or wedge. Recover immediately — the
//     ~100 µs respawn path, invisible to applications.
//   - RestartBackoff: the driver is crash-looping (it died again before
//     sustaining health). Recover after an exponentially growing delay,
//     so a probe-time crasher cannot burn the whole restart budget inside
//     one health-check period.
//   - Failover: a hot standby is armed — a second SUD process spawned and
//     pre-registered before the kill. Promote it instead of respawning,
//     turning kill-to-drained from respawn latency into failover latency.
//   - Quarantine: the driver exhausted its sliding-window restart budget,
//     or the evidence convicts it of active malice (flush lies, storm
//     abuse, stale-epoch flooding). The driver is barred; parked work is
//     failed cleanly instead of waiting for a restart that never comes.
//
// The engine is deterministic: verdicts are a pure function of the
// observation times and counters fed to it, so tests can replay exact
// decision sequences in virtual time.
package policy

import (
	"fmt"

	"sud/internal/sim"
	"sud/internal/trace"
)

// Verdict is one graded supervisor response.
type Verdict int

const (
	// Restart respawns the driver process immediately.
	Restart Verdict = iota
	// RestartBackoff respawns after Decision.Delay (crash loop pacing).
	RestartBackoff
	// Failover promotes the pre-spawned hot standby.
	Failover
	// Quarantine bars the driver: no further restarts, parked work is
	// failed cleanly, the device survives (down) for the admin.
	Quarantine
	// QuarantineQueue surgically quarantines one queue: its DMA
	// sub-domain stays revoked until the supervisor re-arms it and
	// replays the queue's log, while sibling queues — and the driver
	// process — keep running. Decision.Queue names the queue.
	QuarantineQueue
)

func (v Verdict) String() string {
	switch v {
	case Restart:
		return "restart"
	case RestartBackoff:
		return "restart-backoff"
	case Failover:
		return "failover"
	case Quarantine:
		return "quarantine"
	case QuarantineQueue:
		return "quarantine-queue"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Decision is one verdict plus how to execute it.
type Decision struct {
	Verdict Verdict
	// Delay is how long to wait before the restart (RestartBackoff only).
	Delay sim.Duration
	// Queue names the afflicted queue (QuarantineQueue only).
	Queue int
	// Reason is the one-line evidence trail for the kernel log.
	Reason string
}

// Config are the policy knobs. The defaults are chosen so that honest
// drivers suffering isolated faults are never quarantined (kills separated
// by sustained healthy service never exhaust the window budget), while a
// flapping driver — even one pacing itself against the backoff ladder —
// runs out of window budget in bounded time: at BackoffMax cadence,
// RestartWindow/BackoffMax restarts land in one window, which must exceed
// WindowBudget for the loop to converge on quarantine.
type Config struct {
	// WindowBudget is the restart allowance inside RestartWindow: one more
	// death once this many restarts sit in the window is a crash loop.
	WindowBudget int
	// RestartWindow is the sliding window W the budget is counted over.
	RestartWindow sim.Duration
	// BackoffBase is the first crash-loop restart delay; it doubles per
	// consecutive crash-loop death up to BackoffMax.
	BackoffBase sim.Duration
	// BackoffMax caps the ladder.
	BackoffMax sim.Duration
	// HealthyAfter is the sustained service time after a restart that
	// resets the ladder: a death later than this is a fresh fault, not a
	// crash loop.
	HealthyAfter sim.Duration
	// StormLimit convicts the driver once this many interrupt-storm
	// suppressions have fired on its device file.
	StormLimit uint64
	// StaleLimit convicts once dead incarnations of the driver have
	// produced this many stale-epoch downcalls: a handful is the normal
	// wake-vs-death race, a flood is a zombie replaying traffic.
	StaleLimit uint64
	// QueueOffenseLimit is the per-queue fault tolerance: the first
	// offenses on a queue earn surgical QuarantineQueue verdicts (park,
	// re-arm, replay — siblings untouched); reaching the limit escalates
	// to a full process quarantine, because a queue that keeps faulting
	// after fresh sub-domains is a compromised driver, not a glitch.
	QueueOffenseLimit int
}

// DefaultConfig returns the supervisor defaults (virtual time).
func DefaultConfig() Config {
	return Config{
		WindowBudget:      8,
		RestartWindow:     500 * sim.Millisecond,
		BackoffBase:       1 * sim.Millisecond,
		BackoffMax:        50 * sim.Millisecond,
		HealthyAfter:      25 * sim.Millisecond,
		StormLimit:        3,
		StaleLimit:        256,
		QueueOffenseLimit: 3,
	}
}

// Evidence is one health-check snapshot of the misbehaviour counters the
// proxies and the confinement layer export. All counters are cumulative
// over the supervised driver's lifetime (across incarnations).
type Evidence struct {
	// BarrierViolations counts flush completions the block proxy's barrier
	// accounting rejected (CompBadBarrier + CompBarrierEarly): the driver
	// acked durability it cannot have provided.
	BarrierViolations uint64
	// FlushesAcked / FlushesExecuted are the issued-vs-executed halves of
	// flush-lie attribution: barriers the driver acked versus CmdFlush
	// commands the device ground truth says were executed. Acked > executed
	// is a lie no matter how it was framed.
	FlushesAcked    uint64
	FlushesExecuted uint64
	// StaleEpoch counts downcalls from dead incarnations (harvested from
	// each incarnation's proxy at restart, plus the live proxy's count).
	StaleEpoch uint64
	// StormTrips counts interrupt-storm suppressions on the device file.
	StormTrips uint64
}

// Engine holds the sliding-window restart history, the backoff ladder and
// the conviction state for one supervised driver.
type Engine struct {
	Cfg Config

	// Flight, when set by the supervisor, receives every conviction and
	// graded verdict (nil-safe): the policy plane's entries in the
	// per-device flight recorder.
	Flight *trace.Flight

	restarts    []sim.Time // restart times still inside the window
	backoff     sim.Duration
	lastRestart sim.Time
	restarted   bool // at least one restart has happened

	quarantined bool
	reason      string

	// qconvictions counts surgical quarantines per queue; reaching
	// Cfg.QueueOffenseLimit escalates to a full conviction.
	qconvictions map[int]int
}

// NewEngine returns an engine with the given knobs.
func NewEngine(cfg Config) *Engine { return &Engine{Cfg: cfg} }

// Quarantined reports whether the driver has been barred.
func (e *Engine) Quarantined() bool { return e.quarantined }

// Reason returns the evidence trail behind the quarantine ("" if none).
func (e *Engine) Reason() string { return e.reason }

// Backoff returns the current ladder position (tests and logging).
func (e *Engine) Backoff() sim.Duration { return e.backoff }

// InWindow reports how many restarts sit inside the sliding window at now.
func (e *Engine) InWindow(now sim.Time) int {
	e.prune(now)
	return len(e.restarts)
}

// prune drops restart timestamps that have aged out of the window.
func (e *Engine) prune(now sim.Time) {
	cut := now - e.Cfg.RestartWindow
	i := 0
	for i < len(e.restarts) && e.restarts[i] <= cut {
		i++
	}
	e.restarts = e.restarts[i:]
}

// Convict bars the driver on direct evidence, independent of the restart
// history. The next OnDeath (and every later one) returns Quarantine.
func (e *Engine) Convict(reason string) {
	if e.quarantined {
		return
	}
	e.quarantined = true
	e.reason = reason
	e.Flight.Recordf(trace.FEvidence, "convicted: %s", reason)
}

// Observe folds one health-check evidence snapshot into the conviction
// state. It returns true if the snapshot convicted the driver — the caller
// should then kill the process and execute the Quarantine verdict.
func (e *Engine) Observe(ev Evidence) bool {
	if e.quarantined {
		return false
	}
	switch {
	case ev.BarrierViolations > 0:
		e.Convict(fmt.Sprintf("flush lie: %d barrier-accounting violations", ev.BarrierViolations))
	case ev.FlushesAcked > ev.FlushesExecuted:
		e.Convict(fmt.Sprintf("flush lie: %d barriers acked, %d executed by the device",
			ev.FlushesAcked, ev.FlushesExecuted))
	case e.Cfg.StormLimit > 0 && ev.StormTrips >= e.Cfg.StormLimit:
		e.Convict(fmt.Sprintf("interrupt storm: %d suppressions", ev.StormTrips))
	case e.Cfg.StaleLimit > 0 && ev.StaleEpoch >= e.Cfg.StaleLimit:
		e.Convict(fmt.Sprintf("stale-epoch flood: %d downcalls from dead incarnations", ev.StaleEpoch))
	default:
		return false
	}
	return true
}

// OnDeath grades the response to a driver death (or a wedge the supervisor
// is about to kill). standbyArmed reports whether a hot standby is ready
// for promotion; cause is the detector's one-word trail for the log.
//
// Grading order: a convicted or budget-exhausted driver is quarantined; a
// crash-looping one (death within HealthyAfter of its last restart) climbs
// the backoff ladder — a crash loop never consumes the hot standby, which
// would just be killed again; otherwise the death is a fresh fault and the
// standby (when armed) takes over at failover latency, falling back to an
// immediate restart.
func (e *Engine) OnDeath(now sim.Time, standbyArmed bool, cause string) Decision {
	if e.quarantined {
		return e.graded(Decision{Verdict: Quarantine, Reason: e.reason})
	}
	e.prune(now)
	if len(e.restarts) >= e.Cfg.WindowBudget {
		e.Convict(fmt.Sprintf("crash loop: %d restarts within %v (%s)",
			len(e.restarts), e.Cfg.RestartWindow, cause))
		return e.graded(Decision{Verdict: Quarantine, Reason: e.reason})
	}
	crashLoop := e.restarted && now-e.lastRestart < e.Cfg.HealthyAfter
	if !crashLoop {
		e.backoff = 0 // sustained health resets the ladder
		if standbyArmed {
			return e.graded(Decision{Verdict: Failover, Reason: cause})
		}
		return e.graded(Decision{Verdict: Restart, Reason: cause})
	}
	if e.backoff == 0 {
		e.backoff = e.Cfg.BackoffBase
	} else if e.backoff < e.Cfg.BackoffMax {
		e.backoff *= 2
		if e.backoff > e.Cfg.BackoffMax {
			e.backoff = e.Cfg.BackoffMax
		}
	}
	return e.graded(Decision{Verdict: RestartBackoff, Delay: e.backoff,
		Reason: fmt.Sprintf("crash loop (%s): backing off %v", cause, e.backoff)})
}

// OnQueueFault grades the response to DMA faults attributable to exactly one
// queue — descriptors naming memory outside the queue's own sub-domain. The
// first offenses earn a surgical QuarantineQueue: park and re-arm that queue
// alone, siblings untouched. A queue that keeps offending after fresh
// sub-domains (QueueOffenseLimit reached) is evidence of a compromised
// driver, not a transient glitch, and escalates to a full Quarantine via
// conviction.
func (e *Engine) OnQueueFault(now sim.Time, q int, cause string) Decision {
	if e.quarantined {
		return e.graded(Decision{Verdict: Quarantine, Queue: q, Reason: e.reason})
	}
	if e.qconvictions == nil {
		e.qconvictions = make(map[int]int)
	}
	e.qconvictions[q]++
	if e.Cfg.QueueOffenseLimit > 0 && e.qconvictions[q] >= e.Cfg.QueueOffenseLimit {
		e.Convict(fmt.Sprintf("queue %d: %d surgical quarantines (%s)", q, e.qconvictions[q], cause))
		return e.graded(Decision{Verdict: Quarantine, Queue: q, Reason: e.reason})
	}
	return e.graded(Decision{Verdict: QuarantineQueue, Queue: q,
		Reason: fmt.Sprintf("queue %d offense %d/%d: %s", q, e.qconvictions[q], e.Cfg.QueueOffenseLimit, cause)})
}

// QueueOffenses reports how many surgical quarantines queue q has earned.
func (e *Engine) QueueOffenses(q int) int { return e.qconvictions[q] }

// graded records the decision in the flight recorder on its way out.
func (e *Engine) graded(d Decision) Decision {
	e.Flight.Recordf(trace.FVerdict, "%s: %s", d.Verdict, d.Reason)
	return d
}

// RecordRestart logs a completed restart (or failover) into the window.
func (e *Engine) RecordRestart(now sim.Time) {
	e.prune(now)
	e.restarts = append(e.restarts, now)
	e.lastRestart = now
	e.restarted = true
}
