package sudml_test

import (
	"testing"

	"sud/internal/mem"
	"sud/internal/sim"
	"sud/internal/sudml/policy"
	"sud/internal/trace"
)

// breach makes queue q's DMA engine walk an IOVA nothing mapped into its
// sub-domain — the signal a corrupted descriptor produces under
// queue-granular confinement, attributed to (BDF, stream q+1).
func breach(w *supBlkWorld, q int) {
	for i := 0; i < 2; i++ {
		_, _, _ = w.m.IOMMU.TranslateQ(w.ctrl.BDF(), q+1, mem.Addr(0xDEAD0000+i*0x1000), true)
	}
}

// qSatStats tracks a per-queue-pinned closed loop: per-queue completions,
// plus the invariants (no error, no foreign data, no duplicate completion).
type qSatStats struct {
	completed []int
	errs      int
	corrupt   int
	dups      int
	stopped   bool
}

// saturateQ pins `outstanding` closed-loop readers to each queue.
func saturateQ(w *supBlkWorld, queues int, span uint64, outstanding int, st *qSatStats) {
	st.completed = make([]int, queues)
	var issue func(q int, seq uint64)
	issue = func(q int, seq uint64) {
		if st.stopped {
			return
		}
		lba := (uint64(q)*977 + seq*13) % span
		done := false
		err := w.dev.ReadAtQ(lba, q, func(data []byte, err error) {
			if st.stopped {
				return
			}
			if done {
				st.dups++
				return
			}
			done = true
			st.completed[q]++
			if err != nil {
				st.errs++
			} else if len(data) == 0 || data[0] != byte(lba) {
				st.corrupt++
			}
			w.m.Loop.After(200, func() { issue(q, seq+1) })
		})
		if err != nil {
			w.m.Loop.After(10*sim.Microsecond, func() { issue(q, seq) })
		}
	}
	for q := 0; q < queues; q++ {
		for d := 0; d < outstanding; d++ {
			issue(q, uint64(d*100))
		}
	}
}

// TestSurgicalQueueRecoveryExactlyOnce: queue 2 of a Q=4 supervised testbed
// raises sub-domain faults with requests in flight on every queue. The
// supervisor must answer with a surgical recovery of exactly that queue —
// no process restart — replaying its logged requests exactly once under the
// original tags while sibling queues keep completing, and the flight ring
// must read kill → park → verdict → replay → drain.
func TestSurgicalQueueRecoveryExactlyOnce(t *testing.T) {
	const queues, breachQ = 4, 2
	w := newSupBlkWorld(t, queues)
	const span = 40
	for lba := uint64(0); lba < span; lba++ {
		w.ctrl.SeedMedia(lba, block(byte(lba)))
	}
	st := &qSatStats{}
	saturateQ(w, queues, span, 24, st)
	w.m.Loop.RunFor(2 * sim.Millisecond)
	if w.dev.InFlight() == 0 {
		t.Fatal("no requests in flight at breach time")
	}
	breach(w, breachQ)
	w.m.Loop.RunFor(15 * sim.Millisecond)
	st.stopped = true

	if w.sup.QueueRecoveries != 1 {
		t.Fatalf("surgical recoveries = %d, want 1", w.sup.QueueRecoveries)
	}
	if w.sup.Restarts != 0 {
		t.Fatalf("surgical recovery cost %d process restarts", w.sup.Restarts)
	}
	if w.sup.Quarantined {
		t.Fatal("first offense escalated to full quarantine")
	}
	if w.sup.LastVerdict != policy.QuarantineQueue {
		t.Fatalf("last verdict = %v, want quarantine-queue", w.sup.LastVerdict)
	}
	if got := w.sup.Policy.QueueOffenses(breachQ); got != 1 {
		t.Fatalf("queue offenses = %d, want 1", got)
	}
	if w.sup.LastReplayed == 0 {
		t.Fatal("nothing replayed — the breach missed the in-flight window")
	}
	if st.errs != 0 || st.corrupt != 0 || st.dups != 0 {
		t.Fatalf("%d errors, %d corrupt reads, %d duplicate completions", st.errs, st.corrupt, st.dups)
	}
	// Surgical means q only: the afflicted queue's epoch bumped, siblings'
	// stayed put — and every queue (including the recovered one) kept
	// completing work.
	for q := 0; q < queues; q++ {
		wantEpoch := uint64(0)
		if q == breachQ {
			wantEpoch = 1
		}
		if got := w.dev.QueueEpoch(q); got != wantEpoch {
			t.Fatalf("queue %d epoch = %d, want %d", q, got, wantEpoch)
		}
		if st.completed[q] < 100 {
			t.Fatalf("queue %d completed only %d reads", q, st.completed[q])
		}
		if w.dev.QueueRecovering(q) {
			t.Fatalf("queue %d still parked after recovery", q)
		}
	}
	if got := w.sup.Proc().Blk.QueueEpochMirror(breachQ); got != 1 {
		t.Fatalf("proxy epoch mirror = %d, want 1", got)
	}
	// The per-queue timeline, in order, on the shared flight ring.
	assertFlightOrder(t, w.sup.Flight.Kinds(),
		trace.FKill, trace.FPark, trace.FVerdict, trace.FReplay, trace.FDrain)
}

// TestSurgicalRepeatOffenderEscalates: each surgical quarantine of the same
// queue is an offense; at Policy.Cfg.QueueOffenseLimit the policy engine
// stops trusting the sub-domain boundary to hold a persistently faulting
// driver and escalates to the full device quarantine.
func TestSurgicalRepeatOffenderEscalates(t *testing.T) {
	const queues, badQ = 2, 1
	w := newSupBlkWorld(t, queues)
	limit := w.sup.Policy.Cfg.QueueOffenseLimit
	if limit < 2 {
		t.Fatalf("default QueueOffenseLimit = %d, want >= 2", limit)
	}
	for i := 1; i < limit; i++ {
		breach(w, badQ)
		w.m.Loop.RunFor(10 * sim.Millisecond)
		if w.sup.QueueRecoveries != i {
			t.Fatalf("after offense %d: surgical recoveries = %d", i, w.sup.QueueRecoveries)
		}
		if w.sup.Quarantined {
			t.Fatalf("offense %d/%d escalated early", i, limit)
		}
	}
	breach(w, badQ)
	w.m.Loop.RunFor(10 * sim.Millisecond)
	if !w.sup.Quarantined {
		t.Fatalf("offense %d did not escalate to full quarantine", limit)
	}
	if w.sup.LastVerdict != policy.Quarantine {
		t.Fatalf("last verdict = %v, want quarantine", w.sup.LastVerdict)
	}
	if w.sup.Restarts != 0 {
		t.Fatalf("escalation took %d restarts, want direct quarantine", w.sup.Restarts)
	}
	if w.dev.IsUp() {
		t.Fatal("device still up after escalated quarantine")
	}
}

// TestSurgicalDoubleQuarantineIdempotent: quarantining an already-
// quarantined queue is a no-op at every layer — one epoch bump, one
// revocation, and the completion path stays an error-free single release.
func TestSurgicalDoubleQuarantineIdempotent(t *testing.T) {
	w := newSupBlkWorld(t, 2)
	df := w.sup.Proc().DF

	w.dev.BeginQueueRecovery(1)
	w.dev.BeginQueueRecovery(1) // second park: no second epoch bump
	if got := w.dev.QueueEpoch(1); got != 1 {
		t.Fatalf("epoch after double park = %d, want 1", got)
	}
	if err := df.RevokeQueueDMA(2); err != nil {
		t.Fatal(err)
	}
	if err := df.RevokeQueueDMA(2); err != nil {
		t.Fatalf("second revoke of a quarantined stream: %v", err)
	}
	if !df.QueueQuarantined(2) {
		t.Fatal("stream not quarantined")
	}
	if err := df.RearmQueueDMA(2); err != nil {
		t.Fatal(err)
	}
	w.sup.Proc().Blk.RearmQueue(1) // resync the proxy's epoch mirror
	if _, err := w.dev.CompleteQueueRecovery(1); err != nil {
		t.Fatal(err)
	}
	// Releasing a queue that is not parked is a clean no-op.
	if n, err := w.dev.CompleteQueueRecovery(1); err != nil || n != 0 {
		t.Fatalf("second release: n=%d err=%v, want 0, nil", n, err)
	}
	// Re-arming a stream that is not quarantined is the layer's one error.
	if err := df.RearmQueueDMA(2); err == nil {
		t.Fatal("re-arming an armed stream did not error")
	}
	// The queue still serves.
	w.ctrl.SeedMedia(3, block(0x3C))
	ok := false
	if err := w.dev.ReadAtQ(3, 1, func(data []byte, err error) {
		ok = err == nil && len(data) > 0 && data[0] == 0x3C
	}); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(5 * sim.Millisecond)
	if !ok {
		t.Fatal("queue dead after double quarantine cycle")
	}
}

// TestSurgicalQuarantineThenProcessKill: the whole driver process dies while
// one queue sits surgically parked mid-recovery. The device-wide recovery
// must subsume the queue-level state — every queue (including the parked
// one) is adopted, replayed and released by the full path, exactly once.
func TestSurgicalQuarantineThenProcessKill(t *testing.T) {
	const queues, parkedQ = 4, 2
	w := newSupBlkWorld(t, queues)
	const span = 40
	for lba := uint64(0); lba < span; lba++ {
		w.ctrl.SeedMedia(lba, block(byte(lba)))
	}
	st := &qSatStats{}
	saturateQ(w, queues, span, 12, st)
	w.m.Loop.RunFor(2 * sim.Millisecond)

	// Freeze the surgical path mid-flight: DMA revoked, queue parked, but
	// no re-arm yet — then kill the whole process.
	if err := w.sup.Proc().DF.RevokeQueueDMA(parkedQ + 1); err != nil {
		t.Fatal(err)
	}
	w.sup.Proc().Blk.ParkQueue(parkedQ)
	w.dev.BeginQueueRecovery(parkedQ)
	if !w.dev.QueueRecovering(parkedQ) {
		t.Fatal("queue not parked")
	}
	w.sup.Proc().Kill()
	w.m.Loop.RunFor(30 * sim.Millisecond)
	st.stopped = true

	if w.sup.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", w.sup.Restarts)
	}
	if w.sup.Quarantined {
		t.Fatal("kill during surgical recovery escalated to quarantine")
	}
	if w.dev.QueueRecovering(parkedQ) {
		t.Fatal("device-wide recovery left the surgically parked queue parked")
	}
	if st.errs != 0 || st.corrupt != 0 || st.dups != 0 {
		t.Fatalf("%d errors, %d corrupt reads, %d duplicate completions", st.errs, st.corrupt, st.dups)
	}
	for q := 0; q < queues; q++ {
		if st.completed[q] < 100 {
			t.Fatalf("queue %d completed only %d reads after the combined recovery", q, st.completed[q])
		}
	}
}
