package report

import (
	"fmt"
	"strings"

	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/netperf"
	"sud/internal/sim"
)

// Fig9Entry is one row of the IO virtual memory map.
type Fig9Entry struct {
	Use        string
	Start, End uint64
}

// RunFig9 boots the e1000e under SUD, brings the interface up, and walks the
// device's IO page directory — exactly the paper's §5.2 methodology — then
// labels the mappings from the driver's allocation records.
func RunFig9(plat hw.Platform) ([]Fig9Entry, error) {
	tb, err := netperf.NewTestbed(netperf.ModeSUD, plat)
	if err != nil {
		return nil, err
	}
	tb.M.Loop.RunFor(sim.Millisecond)

	// Label allocations by their order and kind, as the e1000e makes
	// them: per-queue TX ring then TX buffers (one queue here), RX ring,
	// RX buffers, then the proxy's shared pool.
	names := map[string]string{
		"TX q0 slot pool": "TX shared pool (uchan)",
		"coherent q1 #1":  "TX ring descriptor",
		"caching q1 #2":   "TX buffers",
		"coherent q1 #3":  "RX ring descriptor",
		"caching q1 #4":   "RX buffers",
	}
	var out []Fig9Entry
	for _, a := range tb.Proc.DF.Allocs() {
		name := names[a.Label]
		if name == "" {
			name = a.Label
		}
		out = append(out, Fig9Entry{
			Use:   name,
			Start: uint64(a.IOVA),
			End:   uint64(a.IOVA) + uint64(a.Pages)*4096,
		})
	}
	// Cross-check against the page-directory walk — the device domain
	// plus every per-queue sub-domain: every labelled byte must be
	// mapped, and nothing else may be — except the explicit MSI window
	// the kernel maps on AMD IOMMUs (§6).
	mapped := 0
	for _, m := range tb.Proc.DF.Mappings() {
		if m.IOVA >= iommu.MSIBase && m.End <= iommu.MSILimit {
			continue
		}
		mapped += int(m.End - m.IOVA)
	}
	labelled := 0
	for _, e := range out {
		labelled += int(e.End - e.Start)
	}
	if mapped != labelled {
		return nil, fmt.Errorf("report: page walk shows %d mapped bytes, allocations account for %d", mapped, labelled)
	}
	if plat.IOMMU.Vendor == iommu.VendorIntel {
		out = append(out, Fig9Entry{
			Use:   "Implicit MSI mapping",
			Start: uint64(iommu.MSIBase),
			End:   uint64(iommu.MSILimit),
		})
	}
	return out, nil
}

// FormatFig9 renders the map in the paper's layout.
func FormatFig9(entries []Fig9Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: IO virtual memory mappings for the e1000e driver\n")
	fmt.Fprintf(&b, "%-26s %12s %12s\n", "Memory use", "Start", "End")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-26s %#12x %#12x\n", e.Use, e.Start, e.End)
	}
	return b.String()
}
