package report_test

import (
	"bytes"
	"fmt"
	"testing"

	"sud/internal/diskperf"
	"sud/internal/hw"
	"sud/internal/netperf"
	"sud/internal/report"
	"sud/internal/sim"
	"sud/internal/trace"
)

// The trace plane's zero-cost contract: with the span recorder compiled in
// but disabled (the default), the headline benchmark numbers are
// bit-for-bit the ones the repo produced before the plane existed. The
// always-on pieces (latency stamps, histograms, flight ring) never charge
// CPU and never schedule events, so they are invisible to virtual time by
// construction — these tests pin that construction against regression.

// TestFig8BitForBitWithTracePlaneOff pins the full Figure 8 table to one
// decimal, kernel and SUD rows. Any drift means the trace plane (or
// anything else) perturbed the deterministic schedule.
func TestFig8BitForBitWithTracePlaneOff(t *testing.T) {
	rows, err := report.RunFig8(hw.DefaultPlatform(), netperf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"TCP_STREAM/Kernel driver":       "948.9",
		"TCP_STREAM/Untrusted driver":    "948.9",
		"UDP_STREAM TX/Kernel driver":    "319.8",
		"UDP_STREAM TX/Untrusted driver": "319.8",
		"UDP_STREAM RX/Kernel driver":    "254.7",
		"UDP_STREAM RX/Untrusted driver": "254.7",
		"UDP_RR/Kernel driver":           "9598.3",
		"UDP_RR/Untrusted driver":        "9488.3",
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		key := fmt.Sprintf("%s/%s", row.Benchmark, row.Mode)
		got := fmt.Sprintf("%.1f", row.Value)
		if got != want[key] {
			t.Errorf("%s: %s %s, want %s", key, got, row.Unit, want[key])
		}
	}
}

// TestBlockIOPSBitForBitWithTracePlaneOff pins the block scale run at the
// queue counts the acceptance criteria name — and asserts the pinned
// numbers are achieved WITH queue-granular DMA confinement active: every
// SUD row runs with per-queue IOMMU sub-domains attached, so the pins
// double as the zero-cost proof for the confinement plane.
func TestBlockIOPSBitForBitWithTracePlaneOff(t *testing.T) {
	want := map[int]string{1: "186.3", 2: "371.8", 4: "646.9"}
	for _, q := range []int{1, 2, 4} {
		tb, err := diskperf.NewTestbed(diskperf.ModeSUD, q, hw.DefaultPlatform())
		if err != nil {
			t.Fatal(err)
		}
		if n := tb.M.IOMMU.QueueDomains(tb.Ctrl.BDF()); n == 0 {
			t.Fatalf("Q=%d: no per-queue sub-domains attached — the pin would not cover the confinement plane", q)
		}
		res, err := diskperf.BlockIOPS(tb, 16, 6, netperf.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%.1f", res.ReadKIOPS); got != want[q] {
			t.Errorf("Q=%d: %s Kiops, want %s", q, got, want[q])
		}
	}
}

// TestFig8RunsWithQueueDomainsAttached: the Figure 8 pins above run on the
// same SUD testbed construction as this one, which must carry per-queue
// sub-domains even at Q=1 — the kernel force-tags the per-queue slot pools
// regardless of fan-out, so the bit-for-bit Fig8 numbers are measured with
// queue-granular confinement on.
func TestFig8RunsWithQueueDomainsAttached(t *testing.T) {
	tb, err := netperf.NewTestbed(netperf.ModeSUD, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if n := tb.M.IOMMU.QueueDomains(tb.NIC.BDF()); n == 0 {
		t.Fatal("SUD net testbed has no per-queue sub-domains attached")
	}
}

// TestTraceEnabledLeavesThroughputUnchanged runs the same block workload
// with the span recorder off and on. Throughput must be identical — span
// events charge a dedicated trace CPU account, never the accounts the
// workload schedule runs on — while the enabled run shows its measured
// overhead only in the CPU column.
func TestTraceEnabledLeavesThroughputUnchanged(t *testing.T) {
	run := func(enable bool) diskperf.Result {
		tb, err := diskperf.NewTestbed(diskperf.ModeSUD, 2, hw.DefaultPlatform())
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			tb.M.Trace.Enable()
		}
		res, err := diskperf.BlockIOPS(tb, 8, 4, netperf.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if off.ReadKIOPS != on.ReadKIOPS {
		t.Errorf("throughput moved with tracing on: %.3f vs %.3f Kiops", off.ReadKIOPS, on.ReadKIOPS)
	}
	if off.LatP50US != on.LatP50US || off.LatP99US != on.LatP99US {
		t.Errorf("latency moved with tracing on: p50 %.3f/%.3f p99 %.3f/%.3f",
			off.LatP50US, on.LatP50US, off.LatP99US, on.LatP99US)
	}
	if on.CPU < off.CPU {
		t.Errorf("tracing on reported less CPU (%.4f) than off (%.4f)", on.CPU, off.CPU)
	}
	t.Logf("trace overhead: CPU %.2f%% off vs %.2f%% on (+%.2f points)",
		off.CPU*100, on.CPU*100, (on.CPU-off.CPU)*100)
}

// TestTraceExportDeterministic: two same-seed traced runs must produce
// byte-identical Chrome trace files — the determinism guarantee sudbench
// --trace inherits from virtual time.
func TestTraceExportDeterministic(t *testing.T) {
	export := func() []byte {
		tb, err := diskperf.NewTestbed(diskperf.ModeSUD, 2, hw.DefaultPlatform())
		if err != nil {
			t.Fatal(err)
		}
		tb.M.Trace.Enable()
		opt := netperf.DefaultOptions()
		opt.Window = 20 * sim.Millisecond
		if _, err := diskperf.BlockIOPS(tb, 4, 4, opt); err != nil {
			t.Fatal(err)
		}
		return trace.ChromeJSON(tb.M.Trace.Events(), tb.M.Trace.Dropped())
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace files differ across same-seed runs (%d vs %d bytes)", len(a), len(b))
	}
	evs, err := trace.ParseChromeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("traced run exported no span events")
	}
}
