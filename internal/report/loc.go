// Package report regenerates the paper's tables and figures: the Figure 5
// lines-of-code inventory, the Figure 8 netperf table, the Figure 9 IO
// virtual memory map, and the §5.2 security matrix. The cmd/sudbench and
// cmd/sudattack binaries print them.
package report

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Fig5Component maps one paper Figure 5 row to this repository's packages.
type Fig5Component struct {
	Name     string
	Dirs     []string // module-relative package directories
	PaperLoC int      // the paper's reported count
	LoC      int      // measured in this repository
}

// Fig5Components returns the Figure 5 rows (counts unfilled).
func Fig5Components() []Fig5Component {
	return []Fig5Component{
		{Name: "Safe PCI device access module", Dirs: []string{"internal/proxy/pciaccess"}, PaperLoC: 2800},
		{Name: "Ethernet proxy driver", Dirs: []string{"internal/proxy/ethproxy"}, PaperLoC: 300},
		{Name: "Wireless proxy driver", Dirs: []string{"internal/proxy/wifiproxy"}, PaperLoC: 600},
		{Name: "Audio card proxy driver", Dirs: []string{"internal/proxy/audioproxy"}, PaperLoC: 550},
		{Name: "USB host proxy driver", Dirs: []string{"internal/proxy/usbproxy"}, PaperLoC: 0},
		// The block class is beyond the paper (its prototype had no
		// storage drivers); the paper column is 0 by construction.
		{Name: "Block proxy driver", Dirs: []string{"internal/proxy/blkproxy"}, PaperLoC: 0},
		{Name: "Block core (kernel side)", Dirs: []string{"internal/kernel/blockdev"}, PaperLoC: 0},
		// Shadow-driver recovery is the restart extension the paper
		// sketches (§2, §5.2) but did not build; paper column 0.
		{Name: "Shadow recovery layer", Dirs: []string{"internal/kernel/shadow"}, PaperLoC: 0},
		{Name: "SUD-UML runtime", Dirs: []string{"internal/sudml", "internal/uchan"}, PaperLoC: 5000},
	}
}

// ModuleRoot locates the repository root by walking up from dir looking for
// go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("report: go.mod not found above %s", dir)
		}
		d = parent
	}
}

// CountLoC counts non-blank lines of non-test Go source under dir.
func CountLoC(dir string) (int, error) {
	total := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		return sc.Err()
	})
	return total, err
}

// RunFig5 measures every component from the module root.
func RunFig5(root string) ([]Fig5Component, error) {
	comps := Fig5Components()
	for i := range comps {
		for _, d := range comps[i].Dirs {
			full := filepath.Join(root, filepath.FromSlash(d))
			if _, err := os.Stat(full); os.IsNotExist(err) {
				continue
			}
			n, err := CountLoC(full)
			if err != nil {
				return nil, err
			}
			comps[i].LoC += n
		}
	}
	return comps, nil
}

// FormatFig5 renders the table with the paper's numbers alongside.
func FormatFig5(comps []Fig5Component) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Lines of code per SUD component (this repo vs paper)\n")
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "Feature", "This repo", "Paper")
	for _, c := range comps {
		fmt.Fprintf(&b, "%-34s %10d %10d\n", c.Name, c.LoC, c.PaperLoC)
	}
	return b.String()
}
