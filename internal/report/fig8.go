package report

import (
	"fmt"
	"strings"

	"sud/internal/hw"
	"sud/internal/netperf"
)

// PaperFig8 holds the paper's Figure 8 numbers for comparison.
type PaperFig8 struct {
	Value float64
	CPU   float64 // percent
}

// paperNumbers indexes the paper's cells by benchmark and mode.
var paperNumbers = map[string]map[netperf.Mode]PaperFig8{
	"TCP_STREAM": {
		netperf.ModeKernel: {941, 12},
		netperf.ModeSUD:    {941, 13},
	},
	"UDP_STREAM TX": {
		netperf.ModeKernel: {317, 35},
		netperf.ModeSUD:    {308, 39},
	},
	"UDP_STREAM RX": {
		netperf.ModeKernel: {238, 20},
		netperf.ModeSUD:    {235, 26},
	},
	"UDP_RR": {
		netperf.ModeKernel: {9590, 5},
		netperf.ModeSUD:    {9489, 10},
	},
}

// Fig8Row is one table row: measured plus the paper's reference cell.
type Fig8Row struct {
	netperf.Result
	Paper PaperFig8
}

// RunFig8 executes all four benchmarks in both modes on the given platform.
func RunFig8(plat hw.Platform, opt netperf.Options) ([]Fig8Row, error) {
	benches := []func(*netperf.Testbed, netperf.Options) (netperf.Result, error){
		netperf.TCPStream, netperf.UDPStreamTX, netperf.UDPStreamRX, netperf.UDPRR,
	}
	var rows []Fig8Row
	for _, bench := range benches {
		for _, mode := range []netperf.Mode{netperf.ModeKernel, netperf.ModeSUD} {
			tb, err := netperf.NewTestbed(mode, plat)
			if err != nil {
				return nil, err
			}
			res, err := bench(tb, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{Result: res, Paper: paperNumbers[res.Benchmark][mode]})
		}
	}
	return rows, nil
}

// FormatFig8 renders the table with paper columns.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: netperf on the e1000e, in-kernel vs untrusted SUD driver\n")
	fmt.Fprintf(&b, "%-14s %-17s | %12s %7s | %12s %7s\n",
		"Test", "Driver", "Throughput", "CPU %", "Paper thpt", "CPU %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-17s | %8.1f %-4s %6.1f%% | %8.1f %-4s %5.1f%%\n",
			r.Benchmark, r.Mode, r.Value, shortUnit(r.Unit), r.CPU*100,
			r.Paper.Value, shortUnit(r.Unit), r.Paper.CPU)
	}
	return b.String()
}

func shortUnit(u string) string {
	switch u {
	case "Mbit/s":
		return "Mb/s"
	case "Kpkt/s":
		return "Kp/s"
	default:
		return u
	}
}
