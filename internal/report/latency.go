package report

import (
	"fmt"
	"strings"

	"sud/internal/diskperf"
	"sud/internal/hw"
	"sud/internal/netperf"
)

// QueueLatency is one queue's end-to-end latency percentiles in virtual µs.
type QueueLatency struct {
	Queue int
	P50US float64
	P99US float64
}

// LatencyRow is one BENCH_latency.json entry: the end-to-end latency
// percentiles for one benchmark configuration, merged across queues and
// split per queue. Kind "rx" rows cover device DMA writeback → stack
// delivery plus transmit submit → completion credit on the SUD net path;
// kind "blk" rows cover block-core dispatch → completion delivery.
// benchgate bands P50US/P99US and the per-queue splits against the
// checked-in baseline.
type LatencyRow struct {
	Kind     string // "rx" | "blk"
	Queues   int
	P50US    float64
	P99US    float64
	PerQueue []QueueLatency
}

func (r LatencyRow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LATENCY %-3s Q=%d p50 %8.1fµs p99 %8.1fµs\n", r.Kind, r.Queues, r.P50US, r.P99US)
	for _, q := range r.PerQueue {
		fmt.Fprintf(&b, "  queue %d: p50 %8.1fµs p99 %8.1fµs\n", q.Queue, q.P50US, q.P99US)
	}
	return b.String()
}

// RunLatency measures the per-queue latency artifact: the SUD receive path
// at 1 and netQueues uchan rings, and the SUD block path at 1 and blkQueues
// NVMe I/O queues. Both reuse the standard scale testbeds, so the numbers
// are the latency face of the same runs BENCH_rx.json and BENCH_blk.json
// report throughput for.
func RunLatency(plat hw.Platform, netQueues, flows, blkQueues, jobs, depth int, opt netperf.Options) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, q := range queueSweep(netQueues) {
		tb, err := netperf.NewMultiFlowTestbed(q, plat)
		if err != nil {
			return nil, err
		}
		res, err := netperf.MultiFlowDir(tb, flows, netperf.DirRX, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, latencyRow("rx", q, res.LatP50US, res.LatP99US, res.PerQueue))
	}
	for _, q := range queueSweep(blkQueues) {
		tb, err := diskperf.NewTestbed(diskperf.ModeSUD, q, plat)
		if err != nil {
			return nil, err
		}
		res, err := diskperf.BlockIOPS(tb, jobs, depth, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, latencyRow("blk", q, res.LatP50US, res.LatP99US, res.PerQueue))
	}
	return rows, nil
}

func queueSweep(target int) []int {
	if target <= 1 {
		return []int{1}
	}
	return []int{1, target}
}

func latencyRow(kind string, queues int, p50, p99 float64, perQueue []netperf.QueueReport) LatencyRow {
	row := LatencyRow{Kind: kind, Queues: queues, P50US: p50, P99US: p99}
	for _, q := range perQueue {
		row.PerQueue = append(row.PerQueue, QueueLatency{Queue: q.Queue, P50US: q.P50US, P99US: q.P99US})
	}
	return row
}
