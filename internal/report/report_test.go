package report

import (
	"strings"
	"testing"

	"sud/internal/attack"
	"sud/internal/hw"
	"sud/internal/netperf"
	"sud/internal/sim"
)

func TestModuleRootFindsGoMod(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Fatalf("root = %q", root)
	}
	if _, err := ModuleRoot("/"); err == nil {
		t.Fatal("found go.mod above filesystem root")
	}
}

func TestFig5CountsComponents(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	comps, err := RunFig5(root)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, c := range comps {
		byName[c.Name] = c.LoC
	}
	if byName["Safe PCI device access module"] == 0 {
		t.Fatal("pciaccess counted as zero lines")
	}
	if byName["USB host proxy driver"] != 0 {
		t.Fatal("USB host proxy should be zero lines (it has no proxy)")
	}
	if byName["SUD-UML runtime"] < byName["Ethernet proxy driver"] {
		t.Fatal("runtime should dominate a proxy driver, as in the paper")
	}
	out := FormatFig5(comps)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "2800") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestFig9Structure(t *testing.T) {
	entries, err := RunFig9(hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Use)
		if e.End <= e.Start {
			t.Fatalf("degenerate range %+v", e)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{
		"TX ring descriptor", "RX ring descriptor",
		"TX buffers", "RX buffers", "Implicit MSI mapping",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
	// First mapping starts at the paper's IOVA base.
	if entries[0].Start != 0x42430000 {
		t.Fatalf("first mapping at %#x, want 0x42430000", entries[0].Start)
	}
	out := FormatFig9(entries)
	if !strings.Contains(out, "0xfee00000") {
		t.Fatalf("format missing MSI row:\n%s", out)
	}
}

func TestFig9NoMSIRowOnAMD(t *testing.T) {
	p := hw.DefaultPlatform()
	p.IOMMU.Vendor = 1 // iommu.VendorAMD
	entries, err := RunFig9(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Use == "Implicit MSI mapping" {
			t.Fatal("AMD walk shows an implicit MSI mapping")
		}
	}
}

func TestFig8RunsAndFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig8 is slow")
	}
	opt := netperf.Options{
		Warmup: 5 * sim.Millisecond, Window: 20 * sim.Millisecond,
		MinWindows: 3, MaxWindows: 3, HalfWidthFrac: 1,
	}
	rows, err := RunFig8(hw.DefaultPlatform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("fig8 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Paper.Value == 0 {
			t.Fatalf("row %s/%v missing paper reference", r.Benchmark, r.Mode)
		}
		if r.Value <= 0 {
			t.Fatalf("row %s/%v measured nothing", r.Benchmark, r.Mode)
		}
	}
	out := FormatFig8(rows)
	for _, want := range []string{"TCP_STREAM", "UDP_RR", "941", "9590"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestSecuritySummaryFormat(t *testing.T) {
	outcomes := []attack.Outcome{
		{Attack: "a", Config: "c1", Compromised: true, Detail: "d"},
		{Attack: "a", Config: "c2", Compromised: false, Detail: "d"},
		{Attack: "b", Config: "c1", Compromised: true, Detail: "d"},
	}
	sum := SecuritySummary(outcomes)
	if !strings.Contains(sum, "c1") || !strings.Contains(sum, "0/2") || !strings.Contains(sum, "1/1") {
		t.Fatalf("summary:\n%s", sum)
	}
	full := FormatSecurity(outcomes)
	if !strings.Contains(full, "COMPROMISED") || !strings.Contains(full, "CONFINED") {
		t.Fatalf("matrix:\n%s", full)
	}
}
