package report

import (
	"fmt"
	"strings"

	"sud/internal/attack"
)

// RunSecurity executes the full §5.2 attack matrix.
func RunSecurity() ([]attack.Outcome, error) {
	return attack.RunMatrix()
}

// FormatSecurity renders the matrix grouped by attack.
func FormatSecurity(outcomes []attack.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Security evaluation (§5.2): malicious driver attacks by configuration\n")
	fmt.Fprintf(&b, "%-26s %-34s %-11s %s\n", "Attack", "Configuration", "Verdict", "Detail")
	last := ""
	for _, o := range outcomes {
		if o.Attack != last {
			if last != "" {
				b.WriteString("\n")
			}
			last = o.Attack
		}
		fmt.Fprintln(&b, o.String())
	}
	return b.String()
}

// SecuritySummary condenses the matrix: attacks confined under each config.
func SecuritySummary(outcomes []attack.Outcome) string {
	confined := map[string][2]int{}
	var order []string
	for _, o := range outcomes {
		c, ok := confined[o.Config]
		if !ok {
			order = append(order, o.Config)
		}
		c[1]++
		if !o.Compromised {
			c[0]++
		}
		confined[o.Config] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Attacks confined per configuration:\n")
	for _, name := range order {
		c := confined[name]
		fmt.Fprintf(&b, "  %-34s %d/%d\n", name, c[0], c[1])
	}
	return b.String()
}
