package diskperf

import (
	"bytes"
	"fmt"

	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// CrashResult is one crash-consistency run: a seeded write/FUA/flush
// workload, a kill -9 of the driver process mid-traffic, a device power
// failure, and an honest restart that reads everything back.
type CrashResult struct {
	Seed uint64
	// Writes/FUAs/Flushes count acked operations before the crash.
	Writes, FUAs, Flushes int
	// Durable is how many blocks the durability contract covered at the
	// crash (acked before an acked flush, or FUA-acked); every one of
	// them survived, or the run errors.
	Durable int
	// Lost is how many blocks came back older than their last acked
	// write — every one of them was un-flushed (volatile by contract).
	Lost int
}

func (r CrashResult) String() string {
	return fmt.Sprintf(
		"BLOCK_CRASH seed=%d: %d writes (%d FUA) %d flushes; %d durable blocks intact, %d volatile blocks lost\n",
		r.Seed, r.Writes, r.FUAs, r.Flushes, r.Durable, r.Lost)
}

// crashStreams is the number of independent per-LBA write chains the
// workload drives; each stream owns one LBA and issues sequential
// versions, so every block's media state maps to exactly one version.
const crashStreams = 24

// crashPattern is block content for (lba, version): version 0 is the
// seeded factory image, each acked write bumps the version.
func crashPattern(lba uint64, ver int) byte { return byte(lba*31 + uint64(ver)*7 + 5) }

// CrashConsistency runs one seeded crash-consistency check against a fresh
// SUD testbed whose controller has a volatile write cache of cacheBlocks:
//
//	write/FUA/flush (seeded mix) → kill -9 → device power fail →
//	honest driver restart → read back and verify
//
// The verified contract is the durability half of SUD's bounded-damage
// claim: every block acked before an acked flush — and every FUA-acked
// block — holds exactly its acked bytes after the crash, and every block
// that came back older was un-flushed or unacked (the app was never told
// it was durable). Any other state is an error.
func CrashConsistency(queues, cacheBlocks int, seed uint64, plat hw.Platform) (CrashResult, error) {
	tb, err := NewTestbedWC(ModeSUD, queues, cacheBlocks, plat)
	if err != nil {
		return CrashResult{}, err
	}
	res := CrashResult{Seed: seed}

	// Seed the factory image (version 0) on every stream's LBA.
	buf := make([]byte, tb.Dev.Geom.BlockSize)
	for lba := uint64(0); lba < crashStreams; lba++ {
		for i := range buf {
			buf[i] = crashPattern(lba, 0)
		}
		tb.Ctrl.SeedMedia(lba, buf)
	}

	// Per-LBA version accounting. issued is the newest version handed to
	// the device (it may reach media by eviction even if never acked);
	// acked is the newest version whose completion the app saw; durable
	// is the newest version the contract guarantees.
	var issued, acked, durable [crashStreams]int
	rng := seed*2862933555777941757 + 3037000493
	next := func(n uint64) uint64 {
		rng = rng*2862933555777941757 + 3037000493
		return (rng >> 33) % n
	}

	stopped := false
	var issue func(s uint64)
	issue = func(s uint64) {
		if stopped {
			return
		}
		// Flushes are deliberately rare (~4% of ops): a barrier drains the
		// whole cache, and a workload that flushes constantly never holds
		// acked-volatile data long enough for the crash to matter.
		op := next(24)
		switch {
		case op == 0:
			// Flush barrier: on ack, everything acked so far is durable —
			// snapshot at completion time, per the barrier contract.
			err := tb.Dev.Flush(func(err error) {
				if stopped || err != nil {
					return
				}
				res.Flushes++
				durable = acked
				tb.M.Loop.After(2*sim.Microsecond, func() { issue(s) })
			})
			if err != nil {
				tb.M.Loop.After(10*sim.Microsecond, func() { issue(s) })
			}
		default:
			fua := op == 1
			ver := issued[s] + 1
			if ver > 255 {
				// crashPattern encodes the version in one byte; past 255
				// versions the verify step could alias v and v-256. No
				// current run window gets near this — stop issuing on the
				// stream rather than silently wrapping.
				return
			}
			data := make([]byte, tb.Dev.Geom.BlockSize)
			for i := range data {
				data[i] = crashPattern(s, ver)
			}
			done := func(err error) {
				if stopped || err != nil {
					return
				}
				res.Writes++
				if ver > acked[s] {
					acked[s] = ver
				}
				if fua {
					res.FUAs++
					if ver > durable[s] {
						durable[s] = ver
					}
				}
				tb.M.Loop.After(2*sim.Microsecond, func() { issue(s) })
			}
			var err error
			if fua {
				err = tb.Dev.WriteAtFUA(s, data, done)
			} else {
				err = tb.Dev.WriteAt(s, data, done)
			}
			if err != nil {
				tb.M.Loop.After(10*sim.Microsecond, func() { issue(s) })
				return
			}
			issued[s] = ver
		}
	}
	for s := uint64(0); s < crashStreams; s++ {
		issue(s)
	}

	// Run mid-saturation, then crash: kill -9 the driver process and cut
	// device power, discarding every un-flushed cache block.
	tb.M.Loop.RunFor(sim.Duration(3+next(5)) * sim.Millisecond)
	stopped = true
	tb.Proc.Kill()
	tb.Ctrl.PowerFail()
	tb.M.Loop.RunFor(sim.Millisecond)

	// Honest restart against the same controller, then read every block
	// back through the kernel block core.
	if _, err := sudml.StartQ(tb.K, tb.Ctrl, nvmed.NewQ(tb.Queues), "nvmed-verify", 1004, tb.Queues); err != nil {
		return res, fmt.Errorf("diskperf: verify restart: %w", err)
	}
	dev2, err := tb.K.Blk.Dev("nvme0")
	if err != nil {
		return res, err
	}
	if err := dev2.Up(); err != nil {
		return res, err
	}
	for s := uint64(0); s < crashStreams; s++ {
		s := s
		var got []byte
		var gotErr error
		if err := dev2.ReadAt(s, func(b []byte, err error) { got, gotErr = b, err }); err != nil {
			return res, err
		}
		tb.M.Loop.RunFor(5 * sim.Millisecond)
		if gotErr != nil {
			return res, fmt.Errorf("diskperf: verify read of block %d: %w", s, gotErr)
		}
		mediaVer := -1
		for v := 0; v <= issued[s]; v++ {
			want := crashPattern(s, v)
			if len(got) > 0 && got[0] == want && bytes.Equal(got, bytes.Repeat([]byte{want}, len(got))) {
				mediaVer = v
				break
			}
		}
		if mediaVer < 0 {
			return res, fmt.Errorf("diskperf: block %d holds bytes no write ever issued", s)
		}
		if mediaVer < durable[s] {
			return res, fmt.Errorf(
				"diskperf: block %d lost acked-durable data (media v%d, durable v%d)",
				s, mediaVer, durable[s])
		}
		if durable[s] > 0 {
			res.Durable++
		}
		if mediaVer < acked[s] {
			// Acked but never flushed: legitimately lost to the power
			// failure — the app was never told it was durable.
			res.Lost++
		}
	}
	return res, nil
}
