// Package diskperf is the block-I/O measurement harness — the storage
// sibling of internal/netperf. It boots a DUT machine with the NVMe-lite
// controller, runs the nvmed driver either trusted in-kernel or inside an
// untrusted SUD process with Q uchan ring pairs, and measures 4 KiB random
// read IOPS under J concurrent jobs each keeping D requests outstanding —
// an fio-style workload in deterministic virtual time. Per-queue transport
// rates (doorbells, wakes, completion batching) are reported the way the
// multi-flow network harness reports them, so the block path's multi-queue
// scaling is measured with the same vocabulary.
package diskperf

import (
	"fmt"
	"math"
	"strings"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/blockdev"
	"sud/internal/netperf"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/trace"
)

// Mode selects the hosting configuration under test.
type Mode int

const (
	// ModeKernel is the trusted baseline: nvmed runs in the kernel.
	ModeKernel Mode = iota
	// ModeSUD hosts nvmed in an untrusted user-space process.
	ModeSUD
)

func (m Mode) String() string {
	if m == ModeKernel {
		return "kernel"
	}
	return "sud"
}

// MarshalJSON records the mode by name.
func (m Mode) MarshalJSON() ([]byte, error) { return []byte(`"` + m.String() + `"`), nil }

// UnmarshalJSON parses the recorded name (the benchgate regression gate
// reads trajectory files back). An unknown name is an error — a corrupted
// baseline must fail the load, not silently band against the wrong row.
func (m *Mode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"kernel"`:
		*m = ModeKernel
	case `"sud"`:
		*m = ModeSUD
	default:
		return fmt.Errorf("diskperf: unknown mode %s", b)
	}
	return nil
}

// Application-side costs per I/O (submission syscall, completion wake).
const (
	costAppSubmit sim.Duration = 700
	costAppReap   sim.Duration = 500
)

// ScaleCores is the block DUT's core count: like the multi-flow network
// scenario it models a server-class machine, so the device — not the CPU —
// is the bottleneck under test.
const ScaleCores = 16

// Testbed is one block DUT.
type Testbed struct {
	Mode   Mode
	Queues int
	Flip   bool // zero-copy read path: page-aware nvmed + GuardPageFlip proxy

	M    *hw.Machine
	K    *kernel.Kernel
	Ctrl *nvme.Ctrl
	Proc *sudml.Process    // nil under ModeKernel
	Sup  *sudml.Supervisor // non-nil only for supervised testbeds
	Dev  *blockdev.Dev
}

// NewTestbed boots a machine with the NVMe-lite controller driven by nvmed
// in the given mode, with `queues` I/O queue pairs end to end (device
// engines, driver queue pairs, and — under SUD — uchan ring pairs).
func NewTestbed(mode Mode, queues int, plat hw.Platform) (*Testbed, error) {
	return NewTestbedWC(mode, queues, 0, plat)
}

// NewTestbedFlip is NewTestbed with the zero-copy read fast path enabled:
// the nvmed is built page-aware (slot lending, staged SQ doorbells,
// submit-path CQ polling) and the block proxy guards read completions by
// page-flip instead of copy. Only meaningful under ModeSUD — the trusted
// in-kernel baseline has no guard to amortise, so the flag is ignored there.
func NewTestbedFlip(mode Mode, queues int, plat hw.Platform) (*Testbed, error) {
	return newTestbed(mode, queues, 0, true, plat)
}

// NewTestbedWC is NewTestbed with a volatile write cache of cacheBlocks
// logical blocks on the controller (0 keeps the always-durable seed part —
// the Figure 8 / block-IOPS reference configuration, bit for bit).
func NewTestbedWC(mode Mode, queues, cacheBlocks int, plat hw.Platform) (*Testbed, error) {
	return newTestbed(mode, queues, cacheBlocks, false, plat)
}

func newTestbed(mode Mode, queues, cacheBlocks int, flip bool, plat hw.Platform) (*Testbed, error) {
	if queues < 1 {
		queues = 1
	}
	if queues > nvme.MaxIOQueues {
		queues = nvme.MaxIOQueues
	}
	if plat.Cores == 0 {
		plat.Cores = ScaleCores
	}
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	params := nvme.MultiQueueParams(queues)
	params.CacheBlocks = cacheBlocks
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, params)
	m.AttachDevice(ctrl)

	tb := &Testbed{Mode: mode, Queues: queues, Flip: flip && mode == ModeSUD, M: m, K: k, Ctrl: ctrl}
	switch mode {
	case ModeKernel:
		if _, err := k.BindInKernel(nvmed.NewQ(queues), ctrl); err != nil {
			return nil, err
		}
	case ModeSUD:
		drv := nvmed.NewQ(queues)
		if tb.Flip {
			drv = nvmed.NewFlipQ(queues)
		}
		proc, err := sudml.StartQ(k, ctrl, drv, "nvmed", 1003, queues)
		if err != nil {
			return nil, err
		}
		tb.Proc = proc
		if tb.Flip {
			// Strictly paired with NewFlipQ: the page-aware driver defers
			// slot reuse to the proxy's recycle lane, and the proxy only
			// runs it under GuardPageFlip.
			proc.Blk.GuardMode = blkproxy.GuardPageFlip
		}
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return nil, err
	}
	if err := dev.Up(); err != nil {
		return nil, err
	}
	tb.Dev = dev
	m.Loop.RunFor(100 * sim.Microsecond)
	return tb, nil
}

// Result aggregates one block-IOPS measurement. ReadKIOPS carries the
// aggregate rate of whichever direction the workload ran (reads for
// BlockIOPS, writes for BlockIOPSWrite — the field name is kept for the
// recorded-trajectory schema); Write and FsyncEvery identify the write
// workload, and Flushes counts the barriers it completed.
type Result struct {
	Mode             Mode
	Queues, Jobs     int
	Depth            int
	Write            bool   `json:",omitempty"`
	FsyncEvery       int    `json:",omitempty"`
	Flushes          uint64 `json:",omitempty"`
	Flip             bool   `json:",omitempty"`
	ReadKIOPS        float64
	MBps             float64
	CPU              float64
	Wakeups          uint64
	CompsPerDoorbell float64
	MaxDownBatch     uint64

	// GuardBytesPerIO is how many completion-payload bytes the proxy
	// guard-copied per completed I/O (4096 under the copy guard, ~0 under
	// GuardPageFlip); SQDoorbellsPerIO is how many I/O SQ tail MMIO
	// writes reached the controller per completed I/O (the submit-side
	// coalescing metric — 1.0 uncoalesced, below it when staged doorbells
	// flush once per upcall batch). Both are measured at the ground
	// truth: the proxy's copy accounting and the device's register file.
	GuardBytesPerIO  float64 `json:",omitempty"`
	SQDoorbellsPerIO float64 `json:",omitempty"`

	// LatP50US / LatP99US are end-to-end request latency percentiles
	// (block-core dispatch → completion delivery) over the measured span,
	// merged across queues; PerQueue carries the per-queue split.
	LatP50US float64 `json:",omitempty"`
	LatP99US float64 `json:",omitempty"`

	PerQueue []netperf.QueueReport
	Windows  int
	CIRel    float64
}

func (r Result) String() string {
	var b strings.Builder
	label := "BLOCK_IOPS"
	if r.Write {
		label = "BLOCK_WIOPS"
	}
	fmt.Fprintf(&b, "%s %s Q=%d J=%d D=%d", label, r.Mode, r.Queues, r.Jobs, r.Depth)
	if r.Write {
		fmt.Fprintf(&b, " fsync=%d", r.FsyncEvery)
	}
	fmt.Fprintf(&b, " %9.1f Kiops (%.1f MB/s) %5.1f%% CPU, %d wakes",
		r.ReadKIOPS, r.MBps, r.CPU*100, r.Wakeups)
	if r.Write {
		fmt.Fprintf(&b, ", %d flushes", r.Flushes)
	}
	if r.Mode == ModeSUD {
		fmt.Fprintf(&b, ", %.1f comps/doorbell (max batch %d)", r.CompsPerDoorbell, r.MaxDownBatch)
	}
	if r.Flip {
		fmt.Fprintf(&b, ", flip: %.0f guard B/io, %.2f sq-doorbells/io", r.GuardBytesPerIO, r.SQDoorbellsPerIO)
	}
	if r.LatP99US > 0 {
		fmt.Fprintf(&b, ", lat p50 %.1fµs p99 %.1fµs", r.LatP50US, r.LatP99US)
	}
	b.WriteString("\n")
	for _, q := range r.PerQueue {
		fmt.Fprintf(&b, "  queue %d: %8d upcalls %8d downcalls %7d doorbells (%8.0f/s) %6d wakes %6d spin pickups",
			q.Queue, q.Upcalls, q.Downcalls, q.Doorbells, q.DoorbellsPerSec, q.Wakeups, q.SpinPickups)
		if q.P99US > 0 {
			fmt.Fprintf(&b, " lat p50 %.1fµs p99 %.1fµs", q.P50US, q.P99US)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// BlockIOPS runs jobs concurrent readers, each keeping depth single-block
// reads outstanding over a striding LBA pattern (steered across the queue
// pairs by the block core's LBA hash), and reports aggregate read IOPS.
func BlockIOPS(tb *Testbed, jobs, depth int, opt netperf.Options) (Result, error) {
	if jobs < 1 || depth < 1 {
		return Result{}, fmt.Errorf("diskperf: need at least one job and depth 1")
	}
	stopped := false
	var completed uint64

	// Each job strides its own LBA region; a completed read immediately
	// issues the next after the app's reap+submit time, so the offered
	// depth stays constant — fio's io_depth behaviour. ErrCongested backs
	// off briefly instead of spinning.
	var issue func(j int, seq uint64)
	issue = func(j int, seq uint64) {
		if stopped {
			return
		}
		lba := (uint64(j)*977 + seq*13) % tb.Dev.Geom.Blocks
		tb.K.Acct.Charge(costAppSubmit)
		err := tb.Dev.ReadAt(lba, func(_ []byte, err error) {
			if stopped {
				return
			}
			completed++
			tb.K.Acct.Charge(costAppReap)
			tb.M.Loop.After(costAppReap, func() { issue(j, seq+1) })
		})
		if err != nil {
			tb.M.Loop.After(10*sim.Microsecond, func() { issue(j, seq) })
		}
	}
	for j := 0; j < jobs; j++ {
		for d := 0; d < depth; d++ {
			issue(j, uint64(d*100))
		}
	}
	defer func() { stopped = true }()

	res := measureWindows(tb, opt, &completed)
	res.Jobs, res.Depth = jobs, depth
	return res, nil
}

// BlockIOPSWrite runs the write-side workload: jobs concurrent writers,
// each keeping depth single-block writes outstanding; with fsyncEvery > 0
// each pipeline issues a Flush barrier after every fsyncEvery acked writes
// and waits for it before continuing — fio's fsync=N behaviour, which is
// what bounds IOPS on a volatile-write-cache device. fsyncEvery = 0 never
// flushes (cache-speed writes).
func BlockIOPSWrite(tb *Testbed, jobs, depth, fsyncEvery int, opt netperf.Options) (Result, error) {
	if jobs < 1 || depth < 1 {
		return Result{}, fmt.Errorf("diskperf: need at least one job and depth 1")
	}
	stopped := false
	var completed uint64
	payload := make([]byte, tb.Dev.Geom.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	// acked[j] counts job j's completed writes since its last flush; all
	// of job j's pipelines share the fsync cadence, as one fsyncing
	// process would.
	acked := make([]int, jobs)

	var issue func(j int, seq uint64)
	issue = func(j int, seq uint64) {
		if stopped {
			return
		}
		lba := (uint64(j)*977 + seq*13) % tb.Dev.Geom.Blocks
		tb.K.Acct.Charge(costAppSubmit)
		err := tb.Dev.WriteAt(lba, payload, func(err error) {
			if stopped {
				return
			}
			completed++
			tb.K.Acct.Charge(costAppReap)
			acked[j]++
			if fsyncEvery > 0 && acked[j] >= fsyncEvery {
				acked[j] = 0
				tb.K.Acct.Charge(costAppSubmit)
				if ferr := tb.Dev.Flush(func(error) {
					if stopped {
						return
					}
					tb.K.Acct.Charge(costAppReap)
					tb.M.Loop.After(costAppReap, func() { issue(j, seq+1) })
				}); ferr != nil {
					tb.M.Loop.After(10*sim.Microsecond, func() { issue(j, seq+1) })
				}
				return
			}
			tb.M.Loop.After(costAppReap, func() { issue(j, seq+1) })
		})
		if err != nil {
			tb.M.Loop.After(10*sim.Microsecond, func() { issue(j, seq) })
		}
	}
	for j := 0; j < jobs; j++ {
		for d := 0; d < depth; d++ {
			issue(j, uint64(d*100))
		}
	}
	defer func() { stopped = true }()

	flushBase := tb.Dev.Flushes
	res := measureWindows(tb, opt, &completed)
	res.Jobs, res.Depth = jobs, depth
	res.Write, res.FsyncEvery = true, fsyncEvery
	res.Flushes = tb.Dev.Flushes - flushBase
	return res, nil
}

// measureWindows runs the shared sampling loop: warmup, then fixed windows
// until the 99% confidence half-width tightens (or MaxWindows), recording
// the rate of *completed, the CPU, and — under SUD — the per-queue
// transport stats.
func measureWindows(tb *Testbed, opt netperf.Options, completed *uint64) Result {
	tb.M.Loop.RunFor(opt.Warmup)

	base := *completed
	sqdbBase := tb.Ctrl.SQDoorbellWrites
	latBase := make([]trace.Hist, tb.Queues)
	for q := range latBase {
		latBase[q] = *tb.Dev.QueueLatency(q)
	}
	var qBase []netperf.QueueReport
	var wakeBase, guardBase uint64
	if tb.Proc != nil {
		guardBase = tb.Proc.Blk.GuardCopiedBytes
		qBase = make([]netperf.QueueReport, tb.Queues)
		for q := range qBase {
			s := tb.Proc.Chan.QueueStats(q)
			qBase[q] = netperf.QueueReport{Queue: q, Upcalls: s.Upcalls, Downcalls: s.Downcalls,
				Doorbells: s.Doorbells, Wakeups: s.Wakeups, SpinPickups: s.SpinPickups}
		}
		wakeBase = tb.Proc.Chan.Stats().Wakeups
	}

	var vals, cpus []float64
	for len(vals) < opt.MaxWindows {
		start := tb.M.Now()
		tb.M.CPU.Reset(start)
		before := *completed
		tb.M.Loop.RunFor(opt.Window)
		vals = append(vals, float64(*completed-before)/opt.Window.Seconds()/1e3)
		cpus = append(cpus, tb.M.CPU.Utilization(tb.M.Now()))
		if len(vals) >= opt.MinWindows {
			m, hw99 := meanCI(vals)
			if m > 0 && hw99/m <= opt.HalfWidthFrac {
				break
			}
		}
	}
	span := sim.Duration(len(vals)) * opt.Window

	mean, hw99 := meanCI(vals)
	cpu, _ := meanCI(cpus)
	res := Result{
		Mode: tb.Mode, Queues: tb.Queues, Flip: tb.Flip,
		ReadKIOPS: mean,
		MBps:      mean * 1e3 * float64(tb.Dev.Geom.BlockSize) / 1e6,
		CPU:       cpu,
		Windows:   len(vals),
	}
	if mean > 0 {
		res.CIRel = hw99 / mean
	}
	qLat := make([]trace.Hist, tb.Queues)
	var allLat trace.Hist
	for q := range qLat {
		qLat[q] = tb.Dev.QueueLatency(q).Sub(&latBase[q])
		allLat.Merge(&qLat[q])
	}
	if allLat.Count() > 0 {
		res.LatP50US = allLat.PercentileUS(0.50)
		res.LatP99US = allLat.PercentileUS(0.99)
	}
	if tb.Proc != nil {
		res.Wakeups = tb.Proc.Chan.Stats().Wakeups - wakeBase
		res.MaxDownBatch = tb.Proc.Chan.Stats().MaxDownBatch
		var doorbells uint64
		for q := range qBase {
			s := tb.Proc.Chan.QueueStats(q)
			r := netperf.QueueReport{
				Queue:       q,
				Upcalls:     s.Upcalls - qBase[q].Upcalls,
				Downcalls:   s.Downcalls - qBase[q].Downcalls,
				Doorbells:   s.Doorbells - qBase[q].Doorbells,
				Wakeups:     s.Wakeups - qBase[q].Wakeups,
				SpinPickups: s.SpinPickups - qBase[q].SpinPickups,
			}
			r.DoorbellsPerSec = float64(r.Doorbells) / span.Seconds()
			if qLat[q].Count() > 0 {
				r.P50US, r.P99US = qLat[q].PercentileUS(0.50), qLat[q].PercentileUS(0.99)
			}
			res.PerQueue = append(res.PerQueue, r)
			doorbells += r.Doorbells
		}
		if ios := *completed - base; ios > 0 && doorbells > 0 {
			res.CompsPerDoorbell = float64(ios) / float64(doorbells)
		}
	}
	if ios := *completed - base; ios > 0 {
		res.SQDoorbellsPerIO = float64(tb.Ctrl.SQDoorbellWrites-sqdbBase) / float64(ios)
		if tb.Proc != nil {
			res.GuardBytesPerIO = float64(tb.Proc.Blk.GuardCopiedBytes-guardBase) / float64(ios)
		}
	}
	return res
}

// meanCI returns the sample mean and the 99% confidence half-width
// (t≈2.58 for the small window counts used here).
func meanCI(vals []float64) (mean, halfWidth float64) {
	n := float64(len(vals))
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / n
	if len(vals) < 2 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 2.58 * sd / math.Sqrt(n)
}
