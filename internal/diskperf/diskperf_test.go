package diskperf

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/netperf"
	"sud/internal/sim"
)

func testOpt() netperf.Options {
	return netperf.Options{
		Warmup:        10 * sim.Millisecond,
		Window:        50 * sim.Millisecond,
		MinWindows:    3,
		MaxWindows:    4,
		HalfWidthFrac: 0.05,
	}
}

func runIOPS(t *testing.T, mode Mode, queues int) Result {
	t.Helper()
	tb, err := NewTestbed(mode, queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BlockIOPS(tb, 16, 6, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBlockIOPSScalesWithQueues is the block acceptance bar: Q=4 must
// deliver at least twice the Q=1 rate under the same offered load, because
// the device engines, the driver queue pairs, the uchan rings and the
// block-core queue contexts all scale per queue.
func TestBlockIOPSScalesWithQueues(t *testing.T) {
	q1 := runIOPS(t, ModeSUD, 1)
	q4 := runIOPS(t, ModeSUD, 4)
	if q1.ReadKIOPS <= 0 {
		t.Fatalf("Q=1 rate %v", q1.ReadKIOPS)
	}
	if q4.ReadKIOPS < 2*q1.ReadKIOPS {
		t.Fatalf("no multi-queue payoff: Q=4 %.1f vs Q=1 %.1f Kiops",
			q4.ReadKIOPS, q1.ReadKIOPS)
	}
	// Every ring pair carried traffic.
	for _, q := range q4.PerQueue {
		if q.Doorbells == 0 {
			t.Fatalf("queue %d idle", q.Queue)
		}
	}
}

// TestSUDMatchesKernelWhenDeviceBound mirrors the Figure 8 TCP row's story
// for storage: with a single queue pair the device is the bottleneck, so
// the untrusted configuration delivers the same IOPS as the trusted one and
// pays only CPU.
func TestSUDMatchesKernelWhenDeviceBound(t *testing.T) {
	kern := runIOPS(t, ModeKernel, 1)
	sud := runIOPS(t, ModeSUD, 1)
	if sud.ReadKIOPS < 0.95*kern.ReadKIOPS {
		t.Fatalf("SUD %.1f vs kernel %.1f Kiops", sud.ReadKIOPS, kern.ReadKIOPS)
	}
	if sud.CPU <= kern.CPU {
		t.Fatalf("SUD CPU %.3f not above kernel %.3f (isolation is not free)", sud.CPU, kern.CPU)
	}
}

// TestCompletionsBatchPerDoorbell checks the batched completion payoff: a
// busy queue delivers many completions per driver doorbell, not one.
func TestCompletionsBatchPerDoorbell(t *testing.T) {
	res := runIOPS(t, ModeSUD, 1)
	if res.CompsPerDoorbell < 4 {
		t.Fatalf("completions per doorbell = %.2f", res.CompsPerDoorbell)
	}
}

// TestKillRecoveryInvisible drives the recovery smoke the CI step records:
// kill -9 of the supervised nvmed process mid-saturation must complete
// every request with correct data (zero app-visible errors), replay the
// in-flight log, and resume the workload.
func TestKillRecoveryInvisible(t *testing.T) {
	tb, err := NewSupervisedTestbed(2, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := KillRecovery(tb, 8, 4, 2*sim.Millisecond, 60*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d app-visible errors across the kill", res.Errors)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if res.Replayed == 0 {
		t.Fatal("no requests replayed")
	}
	if res.RecoveryLatencyUS <= 0 {
		t.Fatal("no recovery latency measured")
	}
	if res.Completed < 1000 {
		t.Fatalf("only %d requests completed (workload did not resume)", res.Completed)
	}
}
