package diskperf

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/sim"
)

// TestSurgicalRecoveryMidFlipReclaimsPages: the surgical single-queue
// recovery lands while the page-flip fast path has the breached queue's
// pages lent out by reference and its recycle lane active. The quarantined
// queue's flip pages must be reclaimed leak-free — physical memory in use
// returns exactly to the pre-run level once the episode drains — with no
// process restart, no application-visible error, and the fast path still
// engaged on every queue afterwards.
func TestSurgicalRecoveryMidFlipReclaimsPages(t *testing.T) {
	tb, err := NewSupervisedTestbedFlip(4, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	inUse0 := tb.K.M.Alloc.InUse()

	res, err := QueueBreachRecovery(tb, 8, 4, 20*sim.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Errors != 0 {
		t.Fatalf("%d app-visible errors across the surgical recovery", res.Errors)
	}
	if res.QueueRecoveries == 0 {
		t.Fatal("breach was never answered by a surgical recovery")
	}
	if res.Restarts != 0 {
		t.Fatalf("surgical recovery cost %d process restarts", res.Restarts)
	}
	if tb.Proc.Blk.PagesFlipped == 0 {
		t.Fatal("no page ever flipped — the breach did not exercise the fast path")
	}

	// Let the last deliveries and the recycle lane drain, then hold the
	// allocator to account: every page the quarantined queue had in flight
	// (flipped out, parked in the recycle lane, or reclaimed by the re-arm)
	// is back where it started.
	tb.M.Loop.RunFor(10 * sim.Millisecond)
	if got := tb.K.M.Alloc.InUse(); got != inUse0 {
		t.Fatalf("physical memory in use %d after the episode, want %d (flip-lane page leak across the queue quarantine)",
			got, inUse0)
	}
	if tb.Proc.BadRecycleFrames != 0 {
		t.Fatalf("%d malformed recycle frames", tb.Proc.BadRecycleFrames)
	}
	if tb.Proc.BadQStateFrames != 0 {
		t.Fatalf("%d malformed queue-epoch frames", tb.Proc.BadQStateFrames)
	}
}
