package diskperf

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/proxy/blkproxy"
	"sud/internal/proxy/protocol"
	"sud/internal/sim"
	"sud/internal/uchan"
)

// runFlipKillRecovery drives the kill -9 smoke with the page-flip fast path
// enabled and checks the invariants specific to flipped ownership: the kill
// lands while pages are lent out by reference, yet every request completes
// exactly once with correct data, no physical page leaks across the
// incarnation boundary, the restarted process re-engages the fast path, and
// recycle acks minted by the dead incarnation are rejected by epoch.
func runFlipKillRecovery(t *testing.T, queues int) {
	t.Helper()
	tb, err := NewSupervisedTestbedFlip(queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Flip {
		t.Fatal("supervised flip testbed did not mark itself flip")
	}
	old := tb.Sup.Proc()
	inUse0 := tb.K.M.Alloc.InUse()

	res, err := KillRecovery(tb, 8, 4, 2*sim.Millisecond, 60*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	// The baseline recovery contract must hold unchanged under page flip:
	// exactly-once completion (a replayed duplicate would double-complete a
	// tag and surface as an error or an extra completion against preKill
	// accounting inside KillRecovery), correct bytes, workload resumed.
	if res.Errors != 0 {
		t.Fatalf("%d app-visible errors across the kill", res.Errors)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if res.Replayed == 0 {
		t.Fatal("no requests replayed — the kill missed the in-flight window")
	}
	if res.Completed < 1000 {
		t.Fatalf("only %d requests completed (workload did not resume)", res.Completed)
	}

	// The kill landed mid-flip: the dead incarnation had revoked pages and
	// an active recycle lane.
	if old.Blk.PagesFlipped == 0 {
		t.Fatal("old incarnation never flipped a page — the kill did not exercise the fast path")
	}
	if old.Blk.RecycleUpcalls == 0 {
		t.Fatal("old incarnation's recycle lane never ran")
	}

	// No page leaked: the dead incarnation's teardown reclaims every DMA
	// page — including pages revoked (flipped) but not yet recycled at kill
	// time — and the successor allocates the identical layout, so physical
	// memory in use returns exactly to the pre-kill level.
	if !old.DF.Closed() {
		t.Fatal("dead incarnation's device file not torn down")
	}
	if n := len(old.DF.Allocs()); n != 0 {
		t.Fatalf("dead incarnation still holds %d DMA allocations", n)
	}
	if got := tb.K.M.Alloc.InUse(); got != inUse0 {
		t.Fatalf("physical pages in use %d after recovery, want %d (page leak across incarnations)", got, inUse0)
	}

	// The successor inherited the page-flip contract and re-engaged it.
	cur := tb.Sup.Proc()
	if cur == old {
		t.Fatal("supervisor did not swap in a new process")
	}
	if cur.Blk.GuardMode != blkproxy.GuardPageFlip {
		t.Fatal("restarted incarnation lost GuardPageFlip — its page-aware driver would starve")
	}
	if cur.Blk.PagesFlipped == 0 {
		t.Fatal("restarted incarnation never flipped a page")
	}
	if tb.Proc.BadRecycleFrames != 0 || cur.BadRecycleFrames != 0 {
		t.Fatalf("malformed recycle frames: old=%d new=%d", tb.Proc.BadRecycleFrames, cur.BadRecycleFrames)
	}

	// A recycle ack minted by the dead incarnation (replayed across the
	// recovery, or forged with the stale epoch) must be rejected by the
	// epoch check, not re-arm pages for the successor.
	staleBefore, acksBefore := cur.Blk.RecycleStaleAck, cur.Blk.RecycleAcks
	cur.Blk.HandleDowncall(0, uchan.Msg{
		Op:   blkproxy.OpRecycleAck,
		Data: protocol.EncodeRecycle(0, []uint64{0x42430000}),
	})
	if cur.Blk.RecycleStaleAck != staleBefore+1 {
		t.Fatalf("stale-epoch recycle ack not rejected (stale=%d)", cur.Blk.RecycleStaleAck)
	}
	if cur.Blk.RecycleAcks != acksBefore {
		t.Fatal("stale-epoch recycle ack was counted as live")
	}
}

// TestKillRecoveryMidFlipQ1 covers the single-queue geometry, where the
// flip lane and the replay lane share one ring pair.
func TestKillRecoveryMidFlipQ1(t *testing.T) { runFlipKillRecovery(t, 1) }

// TestKillRecoveryMidFlipQ4 covers the fanned-out geometry, where the kill
// strands flipped pages on four queues at once.
func TestKillRecoveryMidFlipQ4(t *testing.T) { runFlipKillRecovery(t, 4) }
