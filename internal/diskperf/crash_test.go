package diskperf

import (
	"testing"

	"sud/internal/hw"
)

// TestCrashConsistencySeeded is the crash-consistency harness loop: seeded
// write/FUA/flush traffic, kill -9, device power failure, honest restart,
// verify. Every acked-before-flush (or FUA) block must survive, and every
// lost block must have been volatile by contract — CrashConsistency errors
// otherwise. Across the seeds the workload must also actually exercise the
// cache: some runs lose volatile blocks (proving acked ≠ durable) and
// every run covers some blocks with the durability contract.
func TestCrashConsistencySeeded(t *testing.T) {
	// Cache capacity 64 exceeds the 24-stream working set, so acked
	// writes stay volatile until a flush — the regime where flush
	// semantics are load-bearing (a tiny cache self-drains by eviction
	// faster than the ~100µs coalesced ack latency).
	lostTotal := 0
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := CrashConsistency(2, 64, seed, hw.DefaultPlatform())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Log(res.String())
		if res.Writes == 0 || res.Flushes == 0 {
			t.Fatalf("seed %d: workload too thin: %+v", seed, res)
		}
		if res.Durable == 0 {
			t.Fatalf("seed %d: durability contract never exercised", seed)
		}
		lostTotal += res.Lost
	}
	if lostTotal == 0 {
		t.Fatal("no seed lost a volatile block — the power-fail model is not discarding the cache")
	}
}
