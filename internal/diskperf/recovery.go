package diskperf

import (
	"fmt"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/trace"
)

// NewSupervisedTestbed boots the SUD block testbed with the nvmed process
// under shadow-driver supervision (internal/sudml.SuperviseBlock): a kill
// of the driver process triggers transparent restart, adoption and replay
// instead of failing in-flight requests.
func NewSupervisedTestbed(queues int, plat hw.Platform) (*Testbed, error) {
	return newSupervisedTestbed(queues, false, plat)
}

// NewSupervisedTestbedFlip is NewSupervisedTestbed with the page-flip fast
// path enabled: the page-aware nvmed driver paired with a GuardPageFlip
// proxy, on every incarnation — the supervisor re-applies the guard mode to
// respawned and promoted processes, so a kill -9 mid-flip recovers onto the
// same zero-copy contract.
func NewSupervisedTestbedFlip(queues int, plat hw.Platform) (*Testbed, error) {
	return newSupervisedTestbed(queues, true, plat)
}

func newSupervisedTestbed(queues int, flip bool, plat hw.Platform) (*Testbed, error) {
	if queues < 1 {
		queues = 1
	}
	if queues > nvme.MaxIOQueues {
		queues = nvme.MaxIOQueues
	}
	if plat.Cores == 0 {
		plat.Cores = ScaleCores
	}
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(queues))
	m.AttachDevice(ctrl)
	drv := nvmed.NewQ(queues)
	if flip {
		drv = nvmed.NewFlipQ(queues)
	}
	sup, err := sudml.SuperviseBlock(k, ctrl, drv, "nvmed", "nvme0", 1003, queues)
	if err != nil {
		return nil, err
	}
	if flip {
		// Generation 0 was probed before this knob existed on the
		// supervisor; later incarnations inherit it from BlkGuard.
		sup.BlkGuard = blkproxy.GuardPageFlip
		sup.Proc().Blk.GuardMode = blkproxy.GuardPageFlip
	}
	tb := &Testbed{Mode: ModeSUD, Queues: queues, Flip: flip, M: m, K: k, Ctrl: ctrl,
		Proc: sup.Proc(), Sup: sup}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return nil, err
	}
	if err := dev.Up(); err != nil {
		return nil, err
	}
	tb.Dev = dev
	m.Loop.RunFor(100 * sim.Microsecond)
	return tb, nil
}

// NewFailoverTestbed boots the supervised block testbed and arms a hot
// standby before returning: a kill of the driver process is graded to
// failover (standby promotion) instead of a cold respawn, so the
// kill-to-drained path pays only probe + bring-up + replay.
func NewFailoverTestbed(queues int, plat hw.Platform) (*Testbed, error) {
	tb, err := NewSupervisedTestbed(queues, plat)
	if err != nil {
		return nil, err
	}
	if err := tb.Sup.ArmStandby(); err != nil {
		return nil, err
	}
	return tb, nil
}

// RecoveryResult is one kill-during-saturation measurement: how invisibly
// the block path survived a kill -9 of its driver process.
type RecoveryResult struct {
	Queues, Jobs, Depth int
	// KillAfterUS is when the kill fired, virtual µs from workload start.
	KillAfterUS float64
	// Restarts is the supervised restart count (1 for a single kill).
	Restarts int
	// Failovers counts recoveries served by hot-standby promotion (1 when
	// the testbed was armed with NewFailoverTestbed, 0 for cold respawn).
	Failovers int
	// Replayed is the number of logged in-flight requests re-submitted to
	// the restarted process.
	Replayed int
	// RecoveryLatencyUS is the application-visible gap: virtual µs from
	// the kill until every request outstanding at kill time had completed.
	RecoveryLatencyUS float64
	// DrainP50US/DrainP99US are percentiles over the per-request drain
	// latencies (kill → that request's completion) of the requests
	// outstanding at kill time — the distribution behind the
	// kill-to-drained figure, which the CI recovery SLO gates on p99.
	DrainP50US float64
	DrainP99US float64
	// Completed counts requests finished over the whole run; Errors counts
	// completions that surfaced an error or wrong data to the caller —
	// the acceptance criterion is zero.
	Completed uint64
	Errors    uint64
}

func (r RecoveryResult) String() string {
	kind := "restart(s)"
	if r.Failovers > 0 {
		kind = "failover(s)"
	}
	return fmt.Sprintf(
		"BLOCK_RECOVERY Q=%d J=%d D=%d kill@%.0fµs: %d %s, %d replayed, recovered in %.1fµs (drain p50 %.1fµs p99 %.1fµs), %d completed, %d errors\n",
		r.Queues, r.Jobs, r.Depth, r.KillAfterUS, r.Restarts, kind, r.Replayed,
		r.RecoveryLatencyUS, r.DrainP50US, r.DrainP99US, r.Completed, r.Errors)
}

// KillRecovery drives the fio-style workload against a supervised testbed,
// kills the driver process killAfter into the run, and measures the
// recovery: replayed requests, the kill-to-drained latency, and — the
// invariant — that no submitted request surfaced an error or wrong bytes.
// Each LBA holds an invariant fill pattern, so a read serviced from the
// wrong incarnation's buffers is detected as an error.
func KillRecovery(tb *Testbed, jobs, depth int, killAfter, runFor sim.Duration) (RecoveryResult, error) {
	if tb.Sup == nil {
		return RecoveryResult{}, fmt.Errorf("diskperf: KillRecovery needs a supervised testbed")
	}
	if jobs < 1 || depth < 1 {
		return RecoveryResult{}, fmt.Errorf("diskperf: need at least one job and depth 1")
	}
	const span = 64
	pattern := func(lba uint64) byte { return byte(lba*31 + 7) }
	for lba := uint64(0); lba < span; lba++ {
		buf := make([]byte, tb.Dev.Geom.BlockSize)
		for i := range buf {
			buf[i] = pattern(lba)
		}
		tb.Ctrl.SeedMedia(lba, buf)
	}

	res := RecoveryResult{Queues: tb.Queues, Jobs: jobs, Depth: depth,
		KillAfterUS: float64(killAfter) / float64(sim.Microsecond)}
	stopped := false
	var killedAt sim.Time
	preKill := 0 // requests outstanding at kill time, not yet completed
	outstanding := 0
	var recoveredAt sim.Time
	var drain trace.Hist // per-request kill→completion latencies

	var issue func(j int, seq uint64)
	issue = func(j int, seq uint64) {
		if stopped {
			return
		}
		lba := (uint64(j)*977 + seq*13) % span
		issuedAt := tb.M.Now()
		tb.K.Acct.Charge(costAppSubmit)
		outstanding++
		err := tb.Dev.ReadAt(lba, func(data []byte, err error) {
			if stopped {
				return
			}
			outstanding--
			res.Completed++
			if err != nil {
				res.Errors++
			} else {
				for _, b := range data {
					if b != pattern(lba) {
						res.Errors++
						break
					}
				}
			}
			if killedAt != 0 && issuedAt <= killedAt {
				preKill--
				drain.Record(tb.M.Now() - killedAt)
				if preKill == 0 && recoveredAt == 0 {
					recoveredAt = tb.M.Now()
				}
			}
			tb.K.Acct.Charge(costAppReap)
			tb.M.Loop.After(costAppReap, func() { issue(j, seq+1) })
		})
		if err != nil {
			outstanding--
			tb.M.Loop.After(10*sim.Microsecond, func() { issue(j, seq) })
		}
	}
	for j := 0; j < jobs; j++ {
		for d := 0; d < depth; d++ {
			issue(j, uint64(d*100))
		}
	}
	tb.M.Loop.After(killAfter, func() {
		killedAt = tb.M.Now()
		preKill = outstanding
		tb.Sup.Proc().Kill()
	})
	if runFor < killAfter+50*sim.Millisecond {
		runFor = killAfter + 50*sim.Millisecond
	}
	tb.M.Loop.RunFor(runFor)
	stopped = true

	res.Restarts = tb.Sup.Restarts
	res.Failovers = tb.Sup.Failovers
	res.Replayed = tb.Sup.LastReplayed
	if recoveredAt != 0 {
		res.RecoveryLatencyUS = float64(recoveredAt-killedAt) / float64(sim.Microsecond)
	} else if preKill > 0 {
		return res, fmt.Errorf("diskperf: %d pre-kill requests never completed", preKill)
	}
	res.DrainP50US = drain.PercentileUS(0.50)
	res.DrainP99US = drain.PercentileUS(0.99)
	return res, nil
}
