package diskperf

import (
	"fmt"

	"sud/internal/mem"
	"sud/internal/sim"
)

// QueueRecoveryResult is one surgical single-queue recovery measurement:
// one queue of a supervised multi-queue testbed raises DMA sub-domain
// faults mid-saturation, the supervisor quarantines and re-arms exactly
// that queue, and the siblings must not notice. The CI gate bands the
// sibling throughput during the episode against the checked-in baseline
// (±15%) and against the same run's pre-breach rate.
type QueueRecoveryResult struct {
	Queues, Jobs, Depth int
	// BreachAfterUS is when the breached queue started faulting, virtual µs
	// from workload start.
	BreachAfterUS float64
	// QueueRecoveries is the supervisor's surgical recovery count: the
	// breach must have been answered per-queue, not by a process restart.
	QueueRecoveries int
	// Restarts stays zero — a surgical recovery must not cost a respawn.
	Restarts int
	// Replayed is the number of logged requests re-submitted on the
	// breached queue by the surgical recovery.
	Replayed int
	// PreSiblingKIOPS / SiblingKIOPS are the sibling queues' aggregate
	// read rate over the measurement window before the breach and over the
	// window spanning detection, quarantine, re-arm and replay.
	PreSiblingKIOPS float64
	SiblingKIOPS    float64
	// BreachedKIOPS is the breached queue's own rate over the episode
	// window — it dips for the quarantine but recovers within the window.
	BreachedKIOPS float64
	// Completed counts requests finished over the whole run; Errors counts
	// completions that surfaced an error, wrong bytes, or a duplicate —
	// the acceptance criterion is zero.
	Completed uint64
	Errors    uint64
}

func (r QueueRecoveryResult) String() string {
	return fmt.Sprintf(
		"BLOCK_QRECOVERY Q=%d J=%d D=%d breach@%.0fµs: %d surgical, %d restarts, %d replayed, sibling %.1f -> %.1f KIOPS, breached %.1f KIOPS, %d completed, %d errors\n",
		r.Queues, r.Jobs, r.Depth, r.BreachAfterUS, r.QueueRecoveries, r.Restarts,
		r.Replayed, r.PreSiblingKIOPS, r.SiblingKIOPS, r.BreachedKIOPS,
		r.Completed, r.Errors)
}

// qrecoveryWindow is the measurement window on either side of the breach:
// long enough to span fault, detection (one supervisor check period),
// quarantine, re-arm and replay, short enough that a sibling dip cannot
// hide in the average.
const qrecoveryWindow = 10 * sim.Millisecond

// QueueBreachRecovery drives the fio-style read workload against a
// supervised multi-queue testbed with jobs pinned round-robin to queues,
// then makes the last queue's DMA engine fault (an unmapped IOVA walked
// through its sub-domain — what a corrupted descriptor produces under
// queue-granular confinement). The supervisor's next health check answers
// with a surgical recovery: that one queue is revoked, parked, graded,
// re-armed and replayed while the driver process and every sibling queue
// keep running. Measured: sibling throughput before vs during the episode,
// the breached queue's own recovery, and — the invariant — that no request
// surfaces an error, wrong bytes, or a duplicate completion.
func QueueBreachRecovery(tb *Testbed, jobs, depth int, breachAfter, runFor sim.Duration) (QueueRecoveryResult, error) {
	if tb.Sup == nil {
		return QueueRecoveryResult{}, fmt.Errorf("diskperf: QueueBreachRecovery needs a supervised testbed")
	}
	if tb.Queues < 2 {
		return QueueRecoveryResult{}, fmt.Errorf("diskperf: QueueBreachRecovery needs at least 2 queues")
	}
	if jobs < 1 || depth < 1 {
		return QueueRecoveryResult{}, fmt.Errorf("diskperf: need at least one job and depth 1")
	}
	if breachAfter < qrecoveryWindow+sim.Millisecond {
		breachAfter = qrecoveryWindow + sim.Millisecond
	}
	const span = 64
	pattern := func(lba uint64) byte { return byte(lba*31 + 7) }
	for lba := uint64(0); lba < span; lba++ {
		buf := make([]byte, tb.Dev.Geom.BlockSize)
		for i := range buf {
			buf[i] = pattern(lba)
		}
		tb.Ctrl.SeedMedia(lba, buf)
	}

	breachQ := tb.Queues - 1
	res := QueueRecoveryResult{Queues: tb.Queues, Jobs: jobs, Depth: depth,
		BreachAfterUS: float64(breachAfter) / float64(sim.Microsecond)}
	stopped := false
	var breachAt sim.Time
	pre := make([]uint64, tb.Queues)    // completions in [breach-window, breach)
	during := make([]uint64, tb.Queues) // completions in [breach, breach+window)
	preStart := sim.Time(breachAfter - qrecoveryWindow)

	var issue func(j int, seq uint64)
	issue = func(j int, seq uint64) {
		if stopped {
			return
		}
		q := j % tb.Queues
		lba := (uint64(j)*977 + seq*13) % span
		tb.K.Acct.Charge(costAppSubmit)
		done := false
		err := tb.Dev.ReadAtQ(lba, q, func(data []byte, err error) {
			if stopped {
				return
			}
			if done {
				// A request answered twice — the replay was not exactly-once.
				res.Errors++
				return
			}
			done = true
			res.Completed++
			if err != nil {
				res.Errors++
			} else {
				for _, b := range data {
					if b != pattern(lba) {
						res.Errors++
						break
					}
				}
			}
			now := tb.M.Now()
			switch {
			case breachAt == 0:
				if now >= preStart {
					pre[q]++
				}
			case now < breachAt+sim.Time(qrecoveryWindow):
				during[q]++
			}
			tb.K.Acct.Charge(costAppReap)
			tb.M.Loop.After(costAppReap, func() { issue(j, seq+1) })
		})
		if err != nil {
			tb.M.Loop.After(10*sim.Microsecond, func() { issue(j, seq) })
		}
	}
	for j := 0; j < jobs; j++ {
		for d := 0; d < depth; d++ {
			issue(j, uint64(d*100))
		}
	}
	tb.M.Loop.After(breachAfter, func() {
		breachAt = tb.M.Now()
		// The breached queue's engine walks an IOVA nothing mapped into its
		// sub-domain: the fault is attributed to (BDF, stream breachQ+1),
		// which is exactly the signal the supervisor's surgical detector
		// scans for.
		for i := 0; i < 3; i++ {
			_, _, _ = tb.M.IOMMU.TranslateQ(tb.Ctrl.BDF(), breachQ+1, mem.Addr(0xDEAD0000+i*0x1000), true)
		}
	})
	if runFor < breachAfter+qrecoveryWindow+10*sim.Millisecond {
		runFor = breachAfter + qrecoveryWindow + 10*sim.Millisecond
	}
	tb.M.Loop.RunFor(runFor)
	stopped = true

	res.QueueRecoveries = tb.Sup.QueueRecoveries
	res.Restarts = tb.Sup.Restarts
	res.Replayed = tb.Sup.LastReplayed
	windowSec := float64(qrecoveryWindow) / float64(sim.Second)
	var preSib, durSib uint64
	for q := 0; q < tb.Queues; q++ {
		if q == breachQ {
			continue
		}
		preSib += pre[q]
		durSib += during[q]
	}
	res.PreSiblingKIOPS = float64(preSib) / windowSec / 1e3
	res.SiblingKIOPS = float64(durSib) / windowSec / 1e3
	res.BreachedKIOPS = float64(during[breachQ]) / windowSec / 1e3
	return res, nil
}
