package diskperf

import (
	"bytes"
	"testing"

	"sud/internal/hw"
	"sud/internal/sim"
)

func runIOPSFlip(t *testing.T, queues int) Result {
	t.Helper()
	tb, err := NewTestbedFlip(ModeSUD, queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := BlockIOPS(tb, 16, 6, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBlockFlipZeroCopyReads is the block half of the zero-copy claim: under
// GuardPageFlip every benign 4-KiB read completion flips its page instead of
// guard-copying it, so the copied bytes per I/O collapse from a full block
// to ~0 while the delivered rate does not regress — and the page-aware
// driver's staged SQ doorbells land measurably below one MMIO write per
// command.
func TestBlockFlipZeroCopyReads(t *testing.T) {
	copyGuard := runIOPS(t, ModeSUD, 4)
	flip := runIOPSFlip(t, 4)

	if copyGuard.GuardBytesPerIO < 4000 {
		t.Fatalf("copy guard only copied %.0f B/io, want ~4096", copyGuard.GuardBytesPerIO)
	}
	if flip.GuardBytesPerIO > 64 {
		t.Fatalf("page flip still copying %.0f B/io, want ~0", flip.GuardBytesPerIO)
	}
	if flip.ReadKIOPS < copyGuard.ReadKIOPS {
		t.Fatalf("flip %.1f Kiops below copy guard %.1f", flip.ReadKIOPS, copyGuard.ReadKIOPS)
	}
	if flip.SQDoorbellsPerIO >= copyGuard.SQDoorbellsPerIO {
		t.Fatalf("staged SQ doorbells not coalesced: flip %.2f/io vs copy %.2f/io",
			flip.SQDoorbellsPerIO, copyGuard.SQDoorbellsPerIO)
	}
	for _, q := range flip.PerQueue {
		if q.Upcalls == 0 {
			t.Fatalf("queue %d idle under flip", q.Queue)
		}
	}
}

// TestBlockFlipDataIntact verifies the reference-delivered payload is the
// block's actual content: a pattern written through the flip testbed reads
// back bit-for-bit, through many rounds so recycled pages are reused.
func TestBlockFlipDataIntact(t *testing.T) {
	tb, err := NewTestbedFlip(ModeSUD, 2, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	bs := int(tb.Dev.Geom.BlockSize)
	const blocks = 64
	want := make([][]byte, blocks)
	pending := 0
	for i := 0; i < blocks; i++ {
		want[i] = make([]byte, bs)
		for j := range want[i] {
			want[i][j] = byte(i*31 + j)
		}
		pending++
		if err := tb.Dev.WriteAt(uint64(i), want[i], func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			pending--
		}); err != nil {
			t.Fatal(err)
		}
	}
	tb.M.Loop.RunFor(20 * sim.Millisecond)
	if pending != 0 {
		t.Fatalf("%d writes never completed", pending)
	}
	// Three read rounds: the first flips fresh pages, later rounds land in
	// recycled ones.
	for round := 0; round < 3; round++ {
		verified := 0
		for i := 0; i < blocks; i++ {
			i := i
			if err := tb.Dev.ReadAt(uint64(i), func(data []byte, err error) {
				if err != nil {
					t.Errorf("round %d read %d: %v", round, i, err)
					return
				}
				if !bytes.Equal(data, want[i]) {
					t.Errorf("round %d block %d corrupt", round, i)
				}
				verified++
			}); err != nil {
				t.Fatal(err)
			}
		}
		tb.M.Loop.RunFor(20 * sim.Millisecond)
		if verified != blocks {
			t.Fatalf("round %d: verified %d/%d blocks", round, verified, blocks)
		}
	}
	if tb.Proc.Blk.PagesFlipped == 0 {
		t.Fatal("no pages flipped: the fast path never engaged")
	}
	if tb.Proc.Blk.RecycleAcks == 0 {
		t.Fatal("recycle lane never acked")
	}
	if tb.Proc.BadRecycleFrames != 0 {
		t.Fatalf("%d malformed recycle frames", tb.Proc.BadRecycleFrames)
	}
}

// TestBlockFlipOffBitForBit pins the ablation identity: a flip-disabled
// testbed must measure exactly what NewTestbed measures — same construction,
// same transport, same rate — so the Figure 8 / block-IOPS reference rows
// cannot drift when the fast path is merely compiled in.
func TestBlockFlipOffBitForBit(t *testing.T) {
	plain := runIOPS(t, ModeSUD, 1)
	again := runIOPS(t, ModeSUD, 1)
	if plain.ReadKIOPS != again.ReadKIOPS {
		t.Fatalf("baseline not deterministic: %.3f vs %.3f", plain.ReadKIOPS, again.ReadKIOPS)
	}
	if plain.Flip {
		t.Fatal("plain testbed reports Flip")
	}
	if plain.GuardBytesPerIO < 4000 {
		t.Fatalf("plain SUD guard copies %.0f B/io, want full blocks", plain.GuardBytesPerIO)
	}
}
