package ethlink

import (
	"testing"

	"sud/internal/sim"
)

type sink struct {
	frames [][]byte
	at     []sim.Time
	loop   *sim.Loop
}

func (s *sink) LinkDeliver(f []byte) {
	s.frames = append(s.frames, f)
	s.at = append(s.at, s.loop.Now())
}

func pair(loop *sim.Loop, prop sim.Duration) (*Link, *sink, *sink) {
	l := NewGigabit(loop, prop)
	a, b := &sink{loop: loop}, &sink{loop: loop}
	l.Connect(a, b)
	return l, a, b
}

func TestSerializationDelay(t *testing.T) {
	loop := sim.NewLoop()
	l := NewGigabit(loop, 0)
	// A 1514-byte frame: (1514+24)*8 = 12304 bits at 1 Gb/s = 12304 ns.
	if d := l.SerializationDelay(1514); d != 12304 {
		t.Fatalf("delay = %v, want 12304ns", d)
	}
	// Runt frames are padded to the 60-byte minimum.
	if d := l.SerializationDelay(10); d != l.SerializationDelay(60) {
		t.Fatal("runt frame not padded to minimum")
	}
}

func TestDeliveryAndTiming(t *testing.T) {
	loop := sim.NewLoop()
	l, _, b := pair(loop, 500)
	frame := make([]byte, 1514)
	frame[0] = 0xAB
	if err := l.Send(0, frame); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	if len(b.frames) != 1 || b.frames[0][0] != 0xAB {
		t.Fatalf("delivered %d frames", len(b.frames))
	}
	if b.at[0] != 12304+500 {
		t.Fatalf("delivered at %v, want 12804ns", b.at[0])
	}
}

func TestFrameIsCopied(t *testing.T) {
	loop := sim.NewLoop()
	l, _, b := pair(loop, 0)
	frame := make([]byte, 64)
	frame[5] = 1
	if err := l.Send(0, frame); err != nil {
		t.Fatal(err)
	}
	frame[5] = 99 // sender reuses its buffer
	loop.Run()
	if b.frames[0][5] != 1 {
		t.Fatal("link did not copy the frame at send time")
	}
}

func TestBackToBackSerialization(t *testing.T) {
	loop := sim.NewLoop()
	l, _, b := pair(loop, 0)
	f := make([]byte, 1514)
	for i := 0; i < 3; i++ {
		if err := l.Send(0, f); err != nil {
			t.Fatal(err)
		}
	}
	loop.Run()
	if len(b.frames) != 3 {
		t.Fatalf("delivered %d", len(b.frames))
	}
	// Frames serialize sequentially: 12304, 24608, 36912.
	for i, want := range []sim.Time{12304, 24608, 36912} {
		if b.at[i] != want {
			t.Fatalf("frame %d at %v, want %v", i, b.at[i], want)
		}
	}
}

func TestFullDuplexIndependentPipes(t *testing.T) {
	loop := sim.NewLoop()
	l, a, b := pair(loop, 0)
	f := make([]byte, 1514)
	if err := l.Send(0, f); err != nil {
		t.Fatal(err)
	}
	if err := l.Send(1, f); err != nil {
		t.Fatal(err)
	}
	loop.Run()
	// Both directions complete at the same time: no shared medium.
	if a.at[0] != b.at[0] {
		t.Fatalf("duplex directions interfered: %v vs %v", a.at[0], b.at[0])
	}
}

func TestCarrierDown(t *testing.T) {
	loop := sim.NewLoop()
	l, _, b := pair(loop, 0)
	l.SetCarrier(false)
	if err := l.Send(0, make([]byte, 64)); err == nil {
		t.Fatal("send without carrier succeeded")
	}
	if l.Carrier() {
		t.Fatal("carrier reads up")
	}
	loop.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame delivered without carrier")
	}
	_, _, drops := l.Stats(0)
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	loop := sim.NewLoop()
	l, _, _ := pair(loop, 0)
	if err := l.Send(0, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestQueueLimitDrops(t *testing.T) {
	loop := sim.NewLoop()
	l, _, _ := pair(loop, 0)
	l.QueueLimit = 20 * sim.Microsecond
	f := make([]byte, 1514) // 12.3 µs each
	var errs int
	for i := 0; i < 10; i++ {
		if err := l.Send(0, f); err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("FIFO never overran")
	}
	frames, _, drops := l.Stats(0)
	if int(frames)+errs != 10 || int(drops) != errs {
		t.Fatalf("frames=%d drops=%d errs=%d", frames, drops, errs)
	}
}

func TestBadSideAndUnconnected(t *testing.T) {
	loop := sim.NewLoop()
	l := NewGigabit(loop, 0)
	if err := l.Send(2, make([]byte, 64)); err == nil {
		t.Fatal("bad side accepted")
	}
	if err := l.Send(0, make([]byte, 64)); err == nil {
		t.Fatal("send on unconnected link succeeded")
	}
}

func TestGigabitSaturationRate(t *testing.T) {
	// Sanity-check the 941 Mbit/s figure: 1448-byte TCP payload in a
	// 1514-byte frame at line rate.
	loop := sim.NewLoop()
	l, _, b := pair(loop, 0)
	payload := 1448
	frame := make([]byte, HeaderLen+20+32+payload) // eth + IP + TCP w/ options
	n := 0
	for loop.Now() < 10*sim.Millisecond {
		if err := l.Send(0, frame); err == nil {
			n++
		}
		loop.RunFor(l.SerializationDelay(len(frame)))
	}
	elapsed := loop.Now().Seconds()
	mbps := float64(len(b.frames)*payload*8) / elapsed / 1e6
	if mbps < 935 || mbps > 950 {
		t.Fatalf("saturated payload rate = %.1f Mbit/s, want ~941", mbps)
	}
	_ = n
}
