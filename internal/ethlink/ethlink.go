// Package ethlink models a full-duplex Gigabit Ethernet link between two
// endpoints, with per-frame serialization delay and the physical-layer
// overhead (preamble, inter-frame gap, FCS) that makes 941 Mbit/s the
// achievable TCP payload rate on a saturated 1 Gb/s link — the number both
// the in-kernel driver and SUD hit in Figure 8.
package ethlink

import (
	"fmt"

	"sud/internal/sim"
)

// Physical-layer constants for Ethernet.
const (
	// OverheadBytes is preamble (8) + FCS (4) + inter-frame gap (12):
	// bytes the wire carries per frame beyond the MAC frame itself.
	OverheadBytes = 24
	// MinFrame is the minimum MAC frame size (without FCS in our model).
	MinFrame = 60
	// MTU is the payload capacity of a standard frame.
	MTU = 1500
	// HeaderLen is the Ethernet MAC header length.
	HeaderLen = 14
	// MaxFrame is the largest MAC frame we carry.
	MaxFrame = HeaderLen + MTU
)

// GigabitBps is 1 Gb/s in bits per second.
const GigabitBps = 1_000_000_000

// Endpoint receives frames from the link.
type Endpoint interface {
	// LinkDeliver hands a received frame to the endpoint. The slice is
	// owned by the callee.
	LinkDeliver(frame []byte)
}

// Link is a point-to-point full-duplex link. Side 0 and side 1 each have an
// independent serialization pipe.
type Link struct {
	loop *sim.Loop
	rate int64 // bits per second
	prop sim.Duration

	ends      [2]Endpoint
	busyUntil [2]sim.Time
	carrier   bool

	// Stats per direction (index = sending side).
	frames [2]uint64
	bytes  [2]uint64
	drops  [2]uint64

	// QueueLimit bounds how far ahead of the clock a sender may queue
	// serialization (a switch/NIC FIFO); beyond it frames drop. Zero
	// means a generous default.
	QueueLimit sim.Duration
}

// NewGigabit returns a 1 Gb/s link with the given propagation delay (a
// switched LAN hop is sub-microsecond; the paper used one switch).
func NewGigabit(loop *sim.Loop, prop sim.Duration) *Link {
	return &Link{loop: loop, rate: GigabitBps, prop: prop, carrier: true, QueueLimit: 2 * sim.Millisecond}
}

// Connect attaches both endpoints. Side 0 and 1 are arbitrary but fixed.
func (l *Link) Connect(a, b Endpoint) {
	l.ends[0] = a
	l.ends[1] = b
}

// SetCarrier raises or drops link carrier (cable pull). Frames sent without
// carrier are dropped.
func (l *Link) SetCarrier(up bool) { l.carrier = up }

// Carrier reports link state.
func (l *Link) Carrier() bool { return l.carrier }

// SerializationDelay returns the wire time for a frame of n MAC bytes.
func (l *Link) SerializationDelay(n int) sim.Duration {
	if n < MinFrame {
		n = MinFrame
	}
	bits := int64(n+OverheadBytes) * 8
	return sim.Duration(bits * int64(sim.Second) / l.rate)
}

// Send transmits frame from the given side (0 or 1). It models the sender's
// FIFO: transmission begins when the pipe is free, and delivery happens one
// serialization delay plus propagation later. Send never blocks; overrunning
// the queue limit drops the frame, as a real FIFO would.
func (l *Link) Send(side int, frame []byte) error {
	if side != 0 && side != 1 {
		return fmt.Errorf("ethlink: bad side %d", side)
	}
	if len(frame) > MaxFrame {
		l.drops[side]++
		return fmt.Errorf("ethlink: frame of %d bytes exceeds max %d", len(frame), MaxFrame)
	}
	if !l.carrier {
		l.drops[side]++
		return fmt.Errorf("ethlink: no carrier")
	}
	peer := l.ends[1-side]
	if peer == nil {
		l.drops[side]++
		return fmt.Errorf("ethlink: side %d not connected", 1-side)
	}
	now := l.loop.Now()
	start := l.busyUntil[side]
	if start < now {
		start = now
	}
	if start-now > l.QueueLimit {
		l.drops[side]++
		return fmt.Errorf("ethlink: transmit FIFO overrun")
	}
	done := start + l.SerializationDelay(len(frame))
	l.busyUntil[side] = done
	l.frames[side]++
	l.bytes[side] += uint64(len(frame))
	buf := make([]byte, len(frame))
	copy(buf, frame)
	l.loop.At(done+l.prop, func() { peer.LinkDeliver(buf) })
	return nil
}

// Stats returns per-direction counters for the given sending side.
func (l *Link) Stats(side int) (frames, bytes, drops uint64) {
	return l.frames[side], l.bytes[side], l.drops[side]
}
