package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if c.Now() != 5000 {
		t.Fatalf("clock at %v, want 5000", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestLoopDispatchOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(30, func() { got = append(got, 3) })
	l.At(10, func() { got = append(got, 1) })
	l.At(20, func() { got = append(got, 2) })
	l.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order %v, want [1 2 3]", got)
	}
	if l.Now() != 30 {
		t.Fatalf("clock at %v after run, want 30", l.Now())
	}
}

func TestLoopTieBreakBySchedulingOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(100, func() { got = append(got, i) })
	}
	l.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestLoopEventsScheduledDuringDispatch(t *testing.T) {
	l := NewLoop()
	var fired bool
	l.At(10, func() {
		l.After(5, func() { fired = true })
	})
	l.Run()
	if !fired {
		t.Fatal("nested event did not fire")
	}
	if l.Now() != 15 {
		t.Fatalf("clock at %v, want 15", l.Now())
	}
}

func TestLoopCancel(t *testing.T) {
	l := NewLoop()
	var fired bool
	e := l.At(10, func() { fired = true })
	l.Cancel(e)
	l.Cancel(e) // double cancel is a no-op
	l.Cancel(nil)
	l.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestLoopCancelMiddleOfHeap(t *testing.T) {
	l := NewLoop()
	var got []int
	l.At(10, func() { got = append(got, 1) })
	e := l.At(20, func() { got = append(got, 2) })
	l.At(30, func() { got = append(got, 3) })
	l.Cancel(e)
	l.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	var count int
	l.At(10, func() { count++ })
	l.At(20, func() { count++ })
	l.At(30, func() { count++ })
	l.RunUntil(20)
	if count != 2 {
		t.Fatalf("fired %d events by t=20, want 2", count)
	}
	if l.Now() != 20 {
		t.Fatalf("clock at %v, want 20", l.Now())
	}
	if l.Pending() != 1 {
		t.Fatalf("%d pending, want 1", l.Pending())
	}
}

func TestLoopRunUntilAdvancesIdleClock(t *testing.T) {
	l := NewLoop()
	l.RunUntil(500)
	if l.Now() != 500 {
		t.Fatalf("idle RunUntil left clock at %v, want 500", l.Now())
	}
}

func TestLoopStop(t *testing.T) {
	l := NewLoop()
	var count int
	l.At(10, func() { count++; l.Stop() })
	l.At(20, func() { count++ })
	l.Run()
	if count != 1 {
		t.Fatalf("fired %d events, want 1 (stopped)", count)
	}
}

func TestLoopPastSchedulingPanics(t *testing.T) {
	l := NewLoop()
	l.At(10, func() {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	l.At(5, func() {})
}

func TestLoopDispatchedCounter(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 7; i++ {
		l.At(Time(i), func() {})
	}
	l.Run()
	if l.Dispatched() != 7 {
		t.Fatalf("Dispatched() = %d, want 7", l.Dispatched())
	}
}

// Property: for any set of non-negative delays, the loop dispatches events in
// non-decreasing timestamp order and ends with the clock at the max.
func TestLoopOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		l := NewLoop()
		var last Time = -1
		ok := true
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			l.At(at, func() {
				if l.Now() < last {
					ok = false
				}
				last = l.Now()
			})
		}
		l.Run()
		if len(delays) > 0 && l.Now() != max {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
