package sim

// Rand is a small, fast, deterministic pseudo-random source (xorshift64*).
// The standard library's math/rand would also be deterministic when seeded,
// but having our own keeps the simulation's determinism independent of
// library version changes and makes the state trivially snapshottable.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (0 is remapped: xorshift has a
// zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// Duration returns a pseudo-random duration in [0, max).
func (r *Rand) Duration(max Duration) Duration {
	if max <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(max))
}
