package sim

// Cost model.
//
// Every virtual-time charge in the simulation comes from a named constant in
// this file, so the whole calibration is auditable in one place. The target
// machine is the paper's device-under-test: a Thinkpad X301 with a 1.4 GHz
// dual-core CPU driving an Intel e1000e Gigabit NIC (§5.1). Constants marked
// "paper" are stated in the paper; the rest are calibrated so the Figure 8
// *shape* (who wins, by what factor, where the overhead shows up) reproduces,
// and carry a rationale. EXPERIMENTS.md records paper-vs-measured for every
// row we regenerate.
const (
	// Cores is the number of CPU cores in the modelled machine (X301 is
	// dual-core). CPU utilisation is reported against Cores × elapsed.
	Cores = 2

	// CostSyscall is the user→kernel→user trap cost for a lightweight
	// system call (read of a ready fd, doorbell write). ~420 cycles at
	// 1.4 GHz.
	CostSyscall Duration = 300

	// CostContextSwitch is a voluntary switch between two runnable
	// processes (register state + address-space switch + scheduler).
	CostContextSwitch Duration = 1500

	// CostProcessWakeup is the latency and CPU cost of waking a process
	// blocked in select/poll. Paper §5.1: "waking up the sleeping process
	// can take as long as 4µs in Linux", and this is why UDP_RR shows a
	// 2x CPU overhead under SUD.
	CostProcessWakeup Duration = 4000

	// CostInterruptEntry is the CPU cost of taking an interrupt: vector
	// dispatch, register save/restore, EOI.
	CostInterruptEntry Duration = 800

	// CostMMIORead is an uncached read from a device BAR (a PCIe round
	// trip; reads are non-posted and stall the CPU).
	CostMMIORead Duration = 250

	// CostMMIOWrite is a posted write to a device BAR.
	CostMMIOWrite Duration = 150

	// CostIOPort is a legacy x86 in/out instruction (slower than MMIO).
	CostIOPort Duration = 400

	// CostPCIConfig is one PCI configuration space dword access. Under
	// SUD this goes through the safe-access system call (§3.2.1), which
	// adds CostSyscall on top.
	CostPCIConfig Duration = 1000

	// CostCopyPerByte is a cache-warm memcpy on the 1.4 GHz core
	// (~3 GB/s).
	CostCopyPerByte float64 = 0.33

	// CostChecksumPerByte is the Internet checksum over payload. Paper
	// §3.1.2: SUD's guard copy (against TOCTOU on shared buffers) is
	// fused with checksum verification "at which point the data is
	// already being brought into the CPU's data cache", so the fused
	// checksum+copy costs CostChecksumCopyPerByte, not the sum.
	CostChecksumPerByte     float64 = 0.45
	CostChecksumCopyPerByte float64 = 0.50

	// CostIOMMUWalk is a two-level IO page table walk on an IOTLB miss,
	// charged to the DMA transaction's latency (not CPU).
	CostIOMMUWalk Duration = 250

	// CostIOTLBInvalidate is a single IOTLB invalidation. Paper §3.1.2
	// found invalidating IOMMU TLB entries "prohibitively expensive on
	// current hardware"; the read-only-page-table alternative to the
	// guard copy is benchmarked as an ablation.
	CostIOTLBInvalidate Duration = 2000

	// CostPageFlipRevoke is clearing one present PTE in the IO page table
	// (a single two-level walk plus the entry write) when the kernel takes
	// page-granularity ownership of a shared buffer page. The IOTLB
	// shootdown that makes the revocation globally visible is charged
	// separately (CostIOTLBShootdown) and amortised over a batch.
	CostPageFlipRevoke Duration = 300

	// CostIOTLBShootdown is one invalidation command covering every page a
	// batch revoked — the batch-amortised form of CostIOTLBInvalidate. The
	// paper found *per-buffer* invalidation prohibitive (§3.1.2); one
	// shootdown per ~16-page batch is what makes the page-flip guard pay.
	CostIOTLBShootdown Duration = 2000

	// CostPageRecycleMap is re-installing the PTE when a flipped page is
	// returned to the driver on the recycle ring (walk + entry write; no
	// invalidation needed — the entry goes from absent to present).
	CostPageRecycleMap Duration = 120

	// CostIRTEUpdate is rewriting an interrupt remapping table entry and
	// flushing the interrupt entry cache. Paper §3.2.2: "changing an
	// interrupt remapping table is more expensive than using MSI
	// masking", so SUD masks first and remaps only on storms.
	CostIRTEUpdate Duration = 3000

	// CostMSIMask is masking/unmasking MSI via the device's PCI config
	// MSI capability (one config write through the safe-access module).
	CostMSIMask Duration = 1200

	// CostDMASetup is the fixed PCIe/DMA engine overhead per DMA
	// transaction (TLP header processing, engine scheduling); device
	// time, not CPU time.
	CostDMASetup Duration = 200

	// CostDMAPerByte is the DMA engine's per-byte transfer time
	// (~5 GB/s effective).
	CostDMAPerByte float64 = 0.2

	// CostUchanEnqueue / CostUchanDequeue are one message through the
	// shared-memory ring (§3.1.2): write/read a slot plus head/tail
	// pointer maintenance. No kernel entry in the fast path.
	CostUchanEnqueue Duration = 80
	CostUchanDequeue Duration = 80

	// CostUchanDoorbell is notifying the other side when its ring was
	// empty (a write to the uchan file descriptor, i.e. a syscall).
	CostUchanDoorbell Duration = CostSyscall

	// CostUMLCall is SUD-UML's per-call bookkeeping when translating
	// between the Linux driver API and the uchan protocol (marshalling,
	// dispatch table, thread-pool handoff checks). §4.2.
	CostUMLCall Duration = 150

	// CostWorkerDispatch is handing an upcall from the UML idle thread to
	// a pooled worker thread, for callbacks that may block (§4.2).
	CostWorkerDispatch Duration = 700

	// CostTraceEvent is one span-plane hop record when tracing is enabled:
	// a clock read plus an append to a preallocated per-CPU buffer (~55
	// cycles at 1.4 GHz). Charged to the dedicated "trace" CPU account so
	// enabled-tracing overhead is visible in utilisation; with tracing
	// disabled no site charges it, which is what keeps the Figure 8
	// baselines bit-for-bit.
	CostTraceEvent Duration = 40
)

// Copy returns the CPU cost of copying n bytes.
func Copy(n int) Duration { return Duration(CostCopyPerByte * float64(n)) }

// Checksum returns the CPU cost of checksumming n bytes.
func Checksum(n int) Duration { return Duration(CostChecksumPerByte * float64(n)) }

// ChecksumCopy returns the CPU cost of the fused guard-copy+checksum pass
// SUD uses on untrusted shared buffers (§3.1.2).
func ChecksumCopy(n int) Duration { return Duration(CostChecksumCopyPerByte * float64(n)) }

// DMA returns the device-side time to move n bytes in one transaction.
func DMA(n int) Duration { return CostDMASetup + Duration(CostDMAPerByte*float64(n)) }
