package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events fire in timestamp order; ties are
// broken by scheduling order so the simulation is fully deterministic.
type Event struct {
	At  Time
	Fn  func()
	seq uint64
	idx int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was cancelled or already dispatched.
func (e *Event) Cancelled() bool { return e.idx == -1 && e.Fn == nil }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Loop is the discrete event loop that drives an entire simulated machine.
// It is single-threaded by design: determinism matters more than parallelism
// for reproducing microsecond-scale measurements.
type Loop struct {
	Clock Clock

	queue   eventQueue
	nextSeq uint64
	stopped bool

	dispatched uint64
}

// NewLoop returns an empty event loop at time zero.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.Clock.Now() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it would mean the model lost causality.
func (l *Loop) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: scheduling nil event func")
	}
	if t < l.Clock.Now() {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, l.Clock.Now()))
	}
	e := &Event{At: t, Fn: fn, seq: l.nextSeq}
	l.nextSeq++
	heap.Push(&l.queue, e)
	return e
}

// After schedules fn to run d nanoseconds from now.
func (l *Loop) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %d", d))
	}
	return l.At(l.Clock.Now()+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a harmless no-op.
func (l *Loop) Cancel(e *Event) {
	if e == nil || e.idx == -1 {
		return
	}
	heap.Remove(&l.queue, e.idx)
	e.idx = -1
	e.Fn = nil
}

// Pending reports the number of events waiting to fire.
func (l *Loop) Pending() int { return len(l.queue) }

// Dispatched reports how many events have fired since the loop was created.
func (l *Loop) Dispatched() uint64 { return l.dispatched }

// Stop makes Run/RunUntil return after the current event completes.
func (l *Loop) Stop() { l.stopped = true }

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false if the queue was empty.
func (l *Loop) Step() bool {
	if len(l.queue) == 0 {
		return false
	}
	e := heap.Pop(&l.queue).(*Event)
	l.Clock.advanceTo(e.At)
	fn := e.Fn
	e.Fn = nil
	l.dispatched++
	fn()
	return true
}

// Run dispatches events until the queue is empty or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// RunUntil dispatches events with timestamps <= deadline, then advances the
// clock to the deadline (if it is not already past it). Events scheduled
// beyond the deadline remain queued.
func (l *Loop) RunUntil(deadline Time) {
	l.stopped = false
	for !l.stopped {
		if len(l.queue) == 0 || l.queue[0].At > deadline {
			break
		}
		l.Step()
	}
	if l.Clock.Now() < deadline {
		l.Clock.advanceTo(deadline)
	}
}

// RunFor runs the loop for d nanoseconds of virtual time from now.
func (l *Loop) RunFor(d Duration) { l.RunUntil(l.Clock.Now() + d) }
