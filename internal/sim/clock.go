// Package sim provides the deterministic virtual-time substrate every other
// package in this repository runs on: a discrete event loop, a virtual clock
// with nanosecond resolution, per-context CPU accounting, and a seeded
// pseudo-random source.
//
// The paper's evaluation depends on microsecond-scale effects (a 4 µs process
// wakeup doubles UDP_RR CPU use). Go's garbage collector and goroutine
// scheduler cannot reproduce those effects faithfully in wall-clock time, so
// all measured results in this repository are taken in virtual time: every
// modelled operation charges an explicit, documented cost (see costs.go) to
// the clock and to a CPU account. Re-running an experiment is bit-identical.
package sim

import "fmt"

// Time is a virtual timestamp in nanoseconds since machine power-on.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Clock is the virtual clock. It only moves forward, driven either by the
// event loop dispatching a scheduled event or by code explicitly charging
// elapsed time with Advance.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time is monotonic by construction.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advance by negative duration %d", d))
	}
	c.now += d
}

// advanceTo is used by the event loop when dispatching an event scheduled in
// the future.
func (c *Clock) advanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: %v -> %v", c.now, t))
	}
	c.now = t
}
