package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCPUAccountCharge(t *testing.T) {
	s := NewCPUStats(2)
	k := s.Account("kernel")
	k.Charge(100)
	k.Charge(50)
	if k.Busy() != 150 {
		t.Fatalf("busy = %d, want 150", k.Busy())
	}
	if again := s.Account("kernel"); again != k {
		t.Fatal("Account did not return the same account for the same name")
	}
}

func TestCPUNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	s := NewCPUStats(1)
	s.Account("x").Charge(-1)
}

func TestCPUUtilizationDualCore(t *testing.T) {
	s := NewCPUStats(2)
	s.Account("kernel").Charge(240 * Millisecond)
	// 240 ms busy over 1 s elapsed on 2 cores = 12% (the paper's
	// TCP_STREAM kernel-driver CPU number).
	got := s.Utilization(1 * Second)
	if math.Abs(got-0.12) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.12", got)
	}
}

func TestCPUUtilizationWindowReset(t *testing.T) {
	s := NewCPUStats(1)
	s.Account("a").Charge(500)
	s.Reset(1000)
	if s.TotalBusy() != 0 {
		t.Fatal("Reset did not clear busy time")
	}
	s.Account("a").Charge(250)
	if got := s.Utilization(1500); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("windowed utilization = %v, want 0.5", got)
	}
}

func TestCPUAccountUtilization(t *testing.T) {
	s := NewCPUStats(2)
	s.Account("kernel").Charge(100)
	s.Account("driver").Charge(300)
	if got := s.AccountUtilization("driver", 1000); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("driver utilization = %v, want 0.15", got)
	}
	if got := s.AccountUtilization("missing", 1000); got != 0 {
		t.Fatalf("missing account utilization = %v, want 0", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("zero-elapsed utilization = %v, want 0", got)
	}
}

func TestCPUNamesSorted(t *testing.T) {
	s := NewCPUStats(1)
	s.Account("zeta")
	s.Account("alpha")
	s.Account("mid")
	names := s.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("Names() = %v, want sorted", names)
	}
}

// Property: total utilisation equals the sum of per-account utilisations.
func TestCPUUtilizationAdditive(t *testing.T) {
	f := func(a, b, c uint32) bool {
		s := NewCPUStats(2)
		s.Account("a").Charge(Duration(a))
		s.Account("b").Charge(Duration(b))
		s.Account("c").Charge(Duration(c))
		now := Time(1) * Second
		sum := s.AccountUtilization("a", now) +
			s.AccountUtilization("b", now) +
			s.AccountUtilization("c", now)
		return math.Abs(sum-s.Utilization(now)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
	}
}

func TestRandBytesFills(t *testing.T) {
	r := NewRand(11)
	b := make([]byte, 37)
	r.Bytes(b)
	allZero := true
	for _, v := range b {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes left buffer all zero")
	}
}

func TestCostHelpers(t *testing.T) {
	if Copy(1000) <= 0 || Checksum(1000) <= 0 || ChecksumCopy(1000) <= 0 {
		t.Fatal("cost helpers returned non-positive durations")
	}
	// The fused guard-copy+checksum must be cheaper than doing the two
	// passes separately — that is the point of the §3.1.2 optimization.
	if ChecksumCopy(1500) >= Copy(1500)+Checksum(1500) {
		t.Fatal("fused checksum+copy is not cheaper than separate passes")
	}
	if DMA(64) <= CostDMASetup {
		t.Fatal("DMA cost missing per-byte component")
	}
}
