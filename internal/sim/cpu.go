package sim

import (
	"fmt"
	"sort"
)

// CPUAccount accumulates virtual CPU-busy time for one execution context: the
// kernel, a driver process, a benchmark peer. The netperf harness reports
// CPU utilisation as busy time divided by elapsed virtual time, which mirrors
// how netperf's local CPU utilisation numbers in Figure 8 were produced.
type CPUAccount struct {
	Name string
	busy Duration
}

// Charge adds d of busy time to the account.
func (a *CPUAccount) Charge(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative CPU charge %d to %s", d, a.Name))
	}
	a.busy += d
}

// Busy returns the accumulated busy time.
func (a *CPUAccount) Busy() Duration { return a.busy }

// Reset clears the accumulated busy time (used between benchmark phases).
func (a *CPUAccount) Reset() { a.busy = 0 }

// CPUStats owns all accounts for one machine and computes utilisation.
// The modelled machine is dual-core, like the paper's Thinkpad X301; an
// account's utilisation is its share of total capacity across all cores.
type CPUStats struct {
	Cores    int
	accounts map[string]*CPUAccount

	// epoch is the virtual time at the last Reset, so utilisation is
	// measured over a window rather than since power-on.
	epoch Time
}

// NewCPUStats returns stats for a machine with the given core count.
func NewCPUStats(cores int) *CPUStats {
	if cores < 1 {
		panic("sim: machine needs at least one core")
	}
	return &CPUStats{Cores: cores, accounts: make(map[string]*CPUAccount)}
}

// Account returns (creating if needed) the account with the given name.
func (s *CPUStats) Account(name string) *CPUAccount {
	a, ok := s.accounts[name]
	if !ok {
		a = &CPUAccount{Name: name}
		s.accounts[name] = a
	}
	return a
}

// QueueAccounts returns per-queue service accounts for a multi-queue context
// (one per simulated CPU/queue). With n == 1 the single account keeps the
// plain base name, so single-queue configurations report exactly as before;
// n > 1 yields base/q0 .. base/qN-1.
func (s *CPUStats) QueueAccounts(base string, n int) []*CPUAccount {
	if n < 1 {
		n = 1
	}
	if n == 1 {
		return []*CPUAccount{s.Account(base)}
	}
	accts := make([]*CPUAccount, n)
	for i := range accts {
		accts[i] = s.Account(fmt.Sprintf("%s/q%d", base, i))
	}
	return accts
}

// Reset zeroes every account and starts a new measurement window at now.
func (s *CPUStats) Reset(now Time) {
	s.epoch = now
	for _, a := range s.accounts {
		a.Reset()
	}
}

// TotalBusy sums busy time across all accounts.
func (s *CPUStats) TotalBusy() Duration {
	var t Duration
	for _, a := range s.accounts {
		t += a.busy
	}
	return t
}

// Utilization returns total busy time as a fraction of elapsed capacity
// (elapsed × cores), in [0,1]. It is what Figure 8 reports as "CPU %".
func (s *CPUStats) Utilization(now Time) float64 {
	elapsed := now - s.epoch
	if elapsed <= 0 {
		return 0
	}
	return float64(s.TotalBusy()) / (float64(elapsed) * float64(s.Cores))
}

// AccountUtilization returns one account's share of elapsed capacity.
func (s *CPUStats) AccountUtilization(name string, now Time) float64 {
	elapsed := now - s.epoch
	if elapsed <= 0 {
		return 0
	}
	a, ok := s.accounts[name]
	if !ok {
		return 0
	}
	return float64(a.busy) / (float64(elapsed) * float64(s.Cores))
}

// Names returns all account names, sorted, for stable reporting.
func (s *CPUStats) Names() []string {
	names := make([]string, 0, len(s.accounts))
	for n := range s.accounts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
