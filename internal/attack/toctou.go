package attack

import (
	"fmt"

	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/mem"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sudml"
	"sud/internal/uchan"

	e1000dev "sud/internal/devices/e1000"
	pcipkg "sud/internal/pci"
)

// toctouRig is the shared machinery of the TOCTOU attack family: an honest
// e1000e driver process hosting the NIC (the "malicious driver" behaviour is
// injected at the uchan level), a firewall that admits only destination port
// 80, and sockets on 80 and on the firewalled port 6666 recording which one
// the payload actually reached.
type toctouRig struct {
	m    *hw.Machine
	k    *kernel.Kernel
	proc *sudml.Process
	ifc  *netstack.Iface

	deliveredTo []uint16
}

func newTOCTOURig() (*toctouRig, error) {
	r := &toctouRig{}
	r.m = hw.NewMachine(hw.DefaultPlatform())
	r.k = kernel.New(r.m)
	nic := e1000dev.New(r.m.Loop, pcipkg.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000dev.DefaultParams())
	r.m.AttachDevice(nic)
	link := ethlink.NewGigabit(r.m.Loop, 300)
	link.Connect(nic, nopEnd{})
	nic.AttachLink(link, 0)

	// A well-behaved driver process hosts the device; the "malicious
	// driver" behaviour is injected at the uchan level by the attacks.
	var err error
	if r.proc, err = sudml.Start(r.k, nic, e1000e.New(), "e1000e", 1001); err != nil {
		return nil, err
	}
	if r.ifc, err = r.k.Net.Iface("eth0"); err != nil {
		return nil, err
	}
	if err := r.ifc.Up(netstack.IP{10, 0, 0, 1}); err != nil {
		return nil, err
	}

	// Firewall: allow only destination port 80.
	r.k.Net.Firewall = func(frame []byte) bool {
		_, ipPkt, err := netstack.ParseEth(frame)
		if err != nil {
			return false
		}
		ih, l4, err := netstack.ParseIPv4(ipPkt)
		if err != nil || ih.Proto != netstack.ProtoUDP {
			return false
		}
		uh, _, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, false)
		return err == nil && uh.DstPort == 80
	}
	for _, port := range []uint16{80, 6666} {
		port := port
		if _, err := r.k.Net.UDPBind(port, func([]byte, netstack.IP, uint16) {
			r.deliveredTo = append(r.deliveredTo, port)
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// frames builds the attack's packet pair: an innocuous-looking frame for the
// approved port 80, and its evil twin targeting the firewalled service
// (checksum fixed up by rebuilding).
func (r *toctouRig) frames() (innocent, evil []byte) {
	innocent = netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 2}, r.ifc.MAC,
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1}, 1234, 80, []byte("GET /"))
	evil = netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 2}, r.ifc.MAC,
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1}, 1234, 6666, []byte("GET /"))
	return innocent, evil
}

func (r *toctouRig) reachedBlocked() bool {
	for _, p := range r.deliveredTo {
		if p == 6666 {
			return true
		}
	}
	return false
}

// TOCTOU runs the paper's §3.1.2 shared-buffer attack: a malicious driver
// submits a packet that passes the firewall, then rewrites the shared buffer
// so the kernel consumes different bytes. With SUD's fused guard copy the
// attack fails; with the insecure zero-copy variant (guardMode
// ethproxy.GuardNone) it succeeds — which is exactly why the copy exists.
func TOCTOU(guardMode int) (Outcome, error) {
	r, err := newTOCTOURig()
	if err != nil {
		return Outcome{}, err
	}
	r.proc.Eth.GuardMode = guardMode

	// The malicious driver stages an innocuous-looking frame (dst port
	// 80) in its own DMA memory and downcalls netif_rx with a reference.
	innocent, evil := r.frames()
	alloc := r.proc.DF.Allocs()[0] // the shared TX pool doubles as scratch
	bufIOVA := alloc.IOVA
	bufPhys := alloc.Phys
	r.m.Mem.MustWrite(bufPhys, innocent)

	// The downcall is queued, and the buffer is rewritten *after* the
	// proxy handler runs for the no-guard case to matter; with no guard
	// the stack holds a live view, so any later read sees evil bytes.
	// Model the race by swapping the buffer between the firewall check
	// (inside Flush) and the socket consuming the payload: we swap
	// immediately after Flush returns, then deliverables are inspected.
	// To make the race visible even though our Flush is synchronous, the
	// firewall records approval and the app defers its read:
	var firewallApproved int
	innerFirewall := r.k.Net.Firewall
	r.k.Net.Firewall = func(frame []byte) bool {
		ok := innerFirewall(frame)
		if ok {
			firewallApproved++
			// The instant the firewall approves, the malicious driver
			// rewrites the shared buffer (it runs concurrently on
			// another core).
			r.m.Mem.MustWrite(bufPhys, evil)
		}
		return ok
	}

	if err := r.proc.Chan.Down(uchan.Msg{
		Op:   ethproxy.OpNetifRx,
		Args: [6]uint64{uint64(bufIOVA), uint64(len(innocent))},
	}); err != nil {
		return Outcome{}, err
	}
	r.proc.Chan.Flush()

	compromised := false
	detail := "guard copy held: payload immutable after firewall approval"
	if r.reachedBlocked() {
		compromised = true
		detail = "firewall bypassed: swapped packet reached the blocked service"
	}
	if firewallApproved == 0 {
		detail = "firewall never approved the innocent packet"
	}
	name := "TOCTOU via shared buffer"
	cfg := "SUD (fused guard copy)"
	if guardMode == ethproxy.GuardNone {
		cfg = "SUD without guard copy (insecure)"
	}
	return Outcome{Attack: name, Config: cfg, Compromised: compromised, Detail: detail}, nil
}

// TOCTOUPageFlip runs the same race against the zero-copy fast path: the
// malicious driver stages a fully slot-packed page of innocent frames, posts
// them as one batch (which GuardPageFlip revokes and delivers by reference,
// copying nothing), and rewrites the buffer the instant the firewall
// approves. The rewrite is modelled through the driver's legal access path —
// DriverTouch — so the defence is honest: the store faults because the
// process's mapping of the page is already gone, and the fault is recorded
// as evidence. The attack succeeds only if the swapped bytes reach the
// firewalled service, which would mean revocation left a writable window.
func TOCTOUPageFlip() (Outcome, error) {
	r, err := newTOCTOURig()
	if err != nil {
		return Outcome{}, err
	}
	r.proc.Eth.GuardMode = ethproxy.GuardPageFlip

	// Stage one innocent frame per RX slot so the batch fully tiles the
	// page — the precondition for the flip (anything less falls back to
	// the guard copy, which TOCTOU already covers).
	innocent, evil := r.frames()
	alloc := r.proc.DF.Allocs()[0] // one page, page-aligned by construction
	bufIOVA := alloc.IOVA
	bufPhys := alloc.Phys
	var refs []ethproxy.RxRef
	for off := 0; off < mem.PageSize; off += ethproxy.RxSlotSize {
		r.m.Mem.MustWrite(bufPhys+mem.Addr(off), innocent)
		refs = append(refs, ethproxy.RxRef{IOVA: uint64(bufIOVA) + uint64(off), Len: uint32(len(innocent))})
	}

	// The instant the firewall approves, the malicious driver stores the
	// evil twin through its shared mapping — if the store lands, the
	// kernel's by-reference view changes under it.
	var firewallApproved, storeFaults int
	innerFirewall := r.k.Net.Firewall
	r.k.Net.Firewall = func(frame []byte) bool {
		ok := innerFirewall(frame)
		if ok {
			firewallApproved++
			if phys, err := r.proc.DF.DriverTouch(bufIOVA, len(evil), true); err == nil {
				r.m.Mem.MustWrite(phys, evil)
			} else {
				storeFaults++
			}
		}
		return ok
	}

	if err := r.proc.Chan.Down(uchan.Msg{
		Op:   ethproxy.OpNetifRxBatch,
		Data: ethproxy.EncodeRxBatch(refs),
	}); err != nil {
		return Outcome{}, err
	}
	r.proc.Chan.Flush()

	// The harness must have exercised the fast path, or the verdict says
	// nothing about it.
	if r.proc.Eth.PagesFlipped == 0 {
		return Outcome{}, fmt.Errorf("attack: batch did not flip the page (flipped=0, badbatch=%d)", r.proc.Eth.RxBadBatch)
	}
	if firewallApproved == 0 {
		return Outcome{}, fmt.Errorf("attack: firewall never approved the innocent frames")
	}

	o := Outcome{Attack: "TOCTOU via shared buffer", Config: "SUD (page-flip zero copy)"}
	switch {
	case r.reachedBlocked():
		o.Compromised = true
		o.Detail = "page flip left a writable window: swapped packet reached the blocked service"
	case storeFaults == 0 || r.proc.DF.RevokedFaults == 0:
		o.Compromised = true
		o.Detail = "driver store to a flipped page did not fault — revocation is not being enforced"
	default:
		o.Detail = fmt.Sprintf("flip held: %d stores faulted on the revoked page, 0 bytes guard-copied for %d flipped page(s)",
			storeFaults, r.proc.Eth.PagesFlipped)
	}
	return o, nil
}

// TOCTOUAttack adapts the TOCTOU scenario to the matrix. A trusted in-kernel
// driver needs no race — it reads and writes kernel memory at will — so the
// baseline is compromised by construction; under SUD both guard flavours
// must hold: the fused copy on the standard path and page-flip revocation on
// the zero-copy path.
func TOCTOUAttack(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "TOCTOU via shared buffer",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver owns kernel memory; no race needed",
		}, nil
	}
	o, err := TOCTOU(ethproxy.GuardFused)
	if err != nil {
		return Outcome{}, err
	}
	flip, err := TOCTOUPageFlip()
	if err != nil {
		return Outcome{}, err
	}
	o.Config = cfg.Name
	if flip.Compromised {
		o.Compromised = true
		o.Detail = flip.Detail
	} else if !o.Compromised {
		o.Detail += "; " + flip.Detail
	}
	return o, nil
}

type nopEnd struct{}

func (nopEnd) LinkDeliver([]byte) {}
