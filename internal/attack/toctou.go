package attack

import (
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sudml"
	"sud/internal/uchan"

	e1000dev "sud/internal/devices/e1000"
	pcipkg "sud/internal/pci"
)

// TOCTOU runs the paper's §3.1.2 shared-buffer attack: a malicious driver
// submits a packet that passes the firewall, then rewrites the shared buffer
// so the kernel consumes different bytes. With SUD's fused guard copy the
// attack fails; with the insecure zero-copy variant (guardMode
// ethproxy.GuardNone) it succeeds — which is exactly why the copy exists.
func TOCTOU(guardMode int) (Outcome, error) {
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	nic := e1000dev.New(m.Loop, pcipkg.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000dev.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	link.Connect(nic, nopEnd{})
	nic.AttachLink(link, 0)

	// A well-behaved driver process hosts the device; the "malicious
	// driver" behaviour is injected at the uchan level below.
	proc, err := sudml.Start(k, nic, e1000e.New(), "e1000e", 1001)
	if err != nil {
		return Outcome{}, err
	}
	proc.Eth.GuardMode = guardMode
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		return Outcome{}, err
	}
	if err := ifc.Up(netstack.IP{10, 0, 0, 1}); err != nil {
		return Outcome{}, err
	}

	// Firewall: allow only destination port 80.
	k.Net.Firewall = func(frame []byte) bool {
		_, ipPkt, err := netstack.ParseEth(frame)
		if err != nil {
			return false
		}
		ih, l4, err := netstack.ParseIPv4(ipPkt)
		if err != nil || ih.Proto != netstack.ProtoUDP {
			return false
		}
		uh, _, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, false)
		return err == nil && uh.DstPort == 80
	}
	var deliveredTo []uint16
	for _, port := range []uint16{80, 6666} {
		port := port
		if _, err := k.Net.UDPBind(port, func([]byte, netstack.IP, uint16) {
			deliveredTo = append(deliveredTo, port)
		}); err != nil {
			return Outcome{}, err
		}
	}

	// The malicious driver stages an innocuous-looking frame (dst port
	// 80) in its own DMA memory and downcalls netif_rx with a reference.
	innocent := netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 2}, ifc.MAC,
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1}, 1234, 80, []byte("GET /"))
	// Evil twin: identical except the destination port targets the
	// firewalled service (checksum fixed up by rebuilding).
	evil := netstack.BuildUDPFrame(
		netstack.MAC{2, 0, 0, 0, 0, 2}, ifc.MAC,
		netstack.IP{10, 0, 0, 2}, netstack.IP{10, 0, 0, 1}, 1234, 6666, []byte("GET /"))

	alloc := proc.DF.Allocs()[0] // the shared TX pool doubles as scratch
	bufIOVA := alloc.IOVA
	bufPhys := alloc.Phys
	m.Mem.MustWrite(bufPhys, innocent)

	// The downcall is queued, and the buffer is rewritten *after* the
	// proxy handler runs for the no-guard case to matter; with no guard
	// the stack holds a live view, so any later read sees evil bytes.
	// Model the race by swapping the buffer between the firewall check
	// (inside Flush) and the socket consuming the payload: we swap
	// immediately after Flush returns, then deliverables are inspected.
	// To make the race visible even though our Flush is synchronous, the
	// firewall records approval and the app defers its read:
	var firewallApproved int
	innerFirewall := k.Net.Firewall
	k.Net.Firewall = func(frame []byte) bool {
		ok := innerFirewall(frame)
		if ok {
			firewallApproved++
			// The instant the firewall approves, the malicious driver
			// rewrites the shared buffer (it runs concurrently on
			// another core).
			m.Mem.MustWrite(bufPhys, evil)
		}
		return ok
	}

	if err := proc.Chan.Down(uchan.Msg{
		Op:   ethproxy.OpNetifRx,
		Args: [6]uint64{uint64(bufIOVA), uint64(len(innocent))},
	}); err != nil {
		return Outcome{}, err
	}
	proc.Chan.Flush()

	compromised := false
	detail := "guard copy held: payload immutable after firewall approval"
	for _, p := range deliveredTo {
		if p == 6666 {
			compromised = true
			detail = "firewall bypassed: swapped packet reached the blocked service"
		}
	}
	if firewallApproved == 0 {
		detail = "firewall never approved the innocent packet"
	}
	name := "TOCTOU via shared buffer"
	cfg := "SUD (fused guard copy)"
	if guardMode == ethproxy.GuardNone {
		cfg = "SUD without guard copy (insecure)"
	}
	return Outcome{Attack: name, Config: cfg, Compromised: compromised, Detail: detail}, nil
}

// TOCTOUAttack adapts the TOCTOU scenario to the matrix. A trusted in-kernel
// driver needs no race — it reads and writes kernel memory at will — so the
// baseline is compromised by construction; under SUD the fused guard copy
// defends.
func TOCTOUAttack(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "TOCTOU via shared buffer",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver owns kernel memory; no race needed",
		}, nil
	}
	o, err := TOCTOU(ethproxy.GuardFused)
	if err != nil {
		return Outcome{}, err
	}
	o.Config = cfg.Name
	return o, nil
}

type nopEnd struct{}

func (nopEnd) LinkDeliver([]byte) {}
