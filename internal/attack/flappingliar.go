package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/devices/nvme"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/nvmed"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/sudml/policy"
)

// FlappingLiar is the supervisor-policy row of the matrix: a driver that
// tries to turn the recovery machinery itself into the attack surface, two
// ways.
//
// The FLAPPER crash-loops: it dies the instant each recovery completes,
// betting that the supervisor either restarts it forever (pinning the
// device in a park/replay churn and burning kernel CPU) or — under the old
// lifetime counter — that isolated faults from weeks past have already
// eaten the budget and one crash kills supervision. The policy plane
// defeats both readings: restarts are counted in a sliding window, the
// backoff ladder paces the churn, and when the window budget is exhausted
// the verdict is quarantine — the device survives registered-but-down,
// parked work fails cleanly with ErrDown, and a sibling driver's traffic on
// the same machine stays inside its normal band throughout.
//
// The LIAR acks flush barriers without executing them, and crash-loops so
// each fresh incarnation's proxy counters start at zero (laundering the
// evidence). The supervisor's evidence observer compares the proxy's
// acked-flush count against the device's own ground truth each health
// check, so the very first lie that survives to a check convicts the
// driver outright — quarantine, not another restart for the flapping to
// launder.
//
// A trusted in-kernel driver has no such story: a crash loop is a reboot
// loop, and a flush lie is silent data loss.
func FlappingLiar(cfg Config) (Outcome, error) {
	o := Outcome{Attack: "crash-loop flapper + flush-lie launderer", Config: cfg.Name}
	if cfg.Mode == InKernel {
		o.Compromised = true
		o.Detail = "trusted driver: a crash loop is a kernel reboot loop; no budget, backoff or quarantine exists"
		return o, nil
	}
	flapDetail, err := flapperConfined(cfg, &o)
	if err != nil || o.Compromised {
		return o, err
	}
	liarDetail, err := liarConvicted(cfg, &o)
	if err != nil || o.Compromised {
		return o, err
	}
	o.Detail = flapDetail + "; " + liarDetail
	return o, nil
}

// flapWorld runs the sibling workload — a supervised e1000e transmitting a
// closed-loop UDP stream — for runFor, alongside a supervised nvmed that
// either serves honestly (reference) or crash-loops (attack). It returns
// the sibling's delivered frame count and the block supervisor.
func flapWorld(cfg Config, flap bool, runFor sim.Duration) (frames int, sup *sudml.Supervisor, ctrl *nvme.Ctrl, k *kernel.Kernel, err error) {
	m := hw.NewMachine(cfg.Platform)
	k = kernel.New(m)

	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &wirePeer{loop: m.Loop, link: link}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	ctrl = nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(2))
	m.AttachDevice(ctrl)

	netSup, err := sudml.Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	_ = netSup
	sup, err = sudml.SuperviseBlock(k, ctrl, nvmed.NewQ(2), "nvmed", "nvme0", 1339, 2)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if err := ifc.Up(netstack.IP{10, 0, 0, 1}); err != nil {
		return 0, nil, nil, nil, err
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if err := dev.Up(); err != nil {
		return 0, nil, nil, nil, err
	}
	m.Loop.RunFor(100 * sim.Microsecond)

	payload := bytes.Repeat([]byte("SIBLING"), 24)
	stopped := false
	var send func()
	send = func() {
		if stopped {
			return
		}
		_ = k.Net.UDPSendTo(ifc, netstack.MAC{2, 0, 0, 0, 0, 2},
			netstack.IP{10, 0, 0, 2}, 5000, 7, payload)
		m.Loop.After(20*sim.Microsecond, send)
	}
	send()

	if flap {
		sup.OnRestart = func(int) { sup.Proc().Kill() }
		sup.Proc().Kill()
	}
	m.Loop.RunFor(runFor)
	stopped = true
	return len(peer.captured), sup, ctrl, k, nil
}

// flapperConfined runs the crash-loop half: reference sibling throughput
// without the flapper, then the same machine with nvmed flapping.
func flapperConfined(cfg Config, o *Outcome) (string, error) {
	const window = 400 * sim.Millisecond
	refFrames, _, _, _, err := flapWorld(cfg, false, window)
	if err != nil {
		return "", err
	}
	frames, sup, ctrl, k, err := flapWorld(cfg, true, window)
	if err != nil {
		return "", err
	}

	// Parked work and fresh I/O against the quarantined device must fail
	// cleanly rather than hang.
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		o.Compromised = true
		o.Detail = "flapper took the device object down with it: " + err.Error()
		return "", nil
	}
	failed, done := 0, false
	if serr := dev.ReadAt(0, func(_ []byte, rerr error) {
		done = true
		if rerr != nil {
			failed++
		}
	}); serr != nil {
		failed, done = 1, true
	}
	k.M.Loop.RunFor(2 * sim.Millisecond)

	mediaIntact := ctrl.PeekMedia(0) != nil // device model still sane

	if refFrames == 0 {
		o.Compromised = true
		o.Detail = "sibling reference run delivered no frames"
		return "", nil
	}
	band := 0.15
	devFrac := float64(frames-refFrames) / float64(refFrames)
	switch {
	case !sup.Quarantined || sup.LastVerdict != policy.Quarantine:
		o.Compromised = true
		o.Detail = fmt.Sprintf("flapper not quarantined after %d restarts — unbounded recovery churn", sup.Restarts)
	case sup.Restarts > sup.MaxRestarts:
		o.Compromised = true
		o.Detail = fmt.Sprintf("flapper extracted %d restarts from a budget of %d", sup.Restarts, sup.MaxRestarts)
	case dev.IsUp():
		o.Compromised = true
		o.Detail = "quarantined device still reports up"
	case !done || failed == 0:
		o.Compromised = true
		o.Detail = "I/O against the quarantined device hung instead of failing with ErrDown"
	case !mediaIntact:
		o.Compromised = true
		o.Detail = "media lost across the crash loop"
	case devFrac < -band || devFrac > band:
		o.Compromised = true
		o.Detail = fmt.Sprintf("sibling throughput moved %.1f%% under the flapper (band ±%.0f%%, %d vs %d frames)",
			devFrac*100, band*100, frames, refFrames)
	}
	return fmt.Sprintf("flapper: quarantined after %d restarts, sibling %d vs %d frames (%+.1f%%)",
		sup.Restarts, frames, refFrames, devFrac*100), nil
}

// liarConvicted runs the flush-lie half: a supervised driver that acks
// barriers it never executed is convicted by the evidence observer at the
// first health check — the crash-loop laundering never gets a chance.
func liarConvicted(cfg Config, o *Outcome) (string, error) {
	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.CachedParams(1, 16))
	m.AttachDevice(ctrl)
	sup, err := sudml.SuperviseBlock(k, ctrl, NewEvilFlush(), "evil-nvmed", "nvme0", 1339, 1)
	if err != nil {
		return "", err
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return "", err
	}
	if err := dev.Up(); err != nil {
		return "", err
	}
	m.Loop.RunFor(100 * sim.Microsecond)

	// The application does everything right: a write, then fsync.
	buf := bytes.Repeat([]byte{0x5D}, nvme.BlockSize)
	_ = dev.WriteAt(1, buf, func(error) {})
	m.Loop.RunFor(200 * sim.Microsecond)
	flushAcked := false
	_ = dev.Flush(func(err error) { flushAcked = err == nil })

	// Two health-check periods: the observer compares the proxy's acked
	// flushes against the device's ground truth and convicts.
	m.Loop.RunFor(15 * sim.Millisecond)

	switch {
	case !flushAcked:
		o.Compromised = true
		o.Detail = "liar setup failed: the flush was never acked, nothing to convict"
	case !sup.Quarantined:
		o.Compromised = true
		o.Detail = fmt.Sprintf("flush lie not convicted (restarts=%d): acked barriers with zero device flushes went unnoticed", sup.Restarts)
	case sup.Restarts != 0:
		o.Compromised = true
		o.Detail = fmt.Sprintf("liar was restarted %d times instead of convicted — counter laundering works", sup.Restarts)
	}
	return fmt.Sprintf("liar: convicted at first check (%s)", sup.Policy.Reason()), nil
}
