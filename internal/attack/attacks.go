package attack

import (
	"fmt"

	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/pci"
	"sud/internal/sim"
)

// Outcome reports one attack attempt under one configuration.
type Outcome struct {
	Attack      string
	Config      string
	Compromised bool
	Detail      string
}

func (o Outcome) String() string {
	verdict := "CONFINED"
	if o.Compromised {
		verdict = "COMPROMISED"
	}
	return fmt.Sprintf("%-26s %-34s %-11s %s", o.Attack, o.Config, verdict, o.Detail)
}

// Config names a platform+mode combination for the matrix.
type Config struct {
	Name     string
	Mode     Mode
	Platform hw.Platform
}

// Configs returns the §5.2/§6 configurations the matrix runs under.
func Configs() []Config {
	amd := hw.DefaultPlatform()
	amd.IOMMU.Vendor = iommu.VendorAMD
	noACS := hw.DefaultPlatform()
	noACS.ACS = pci.ACS{}
	legacy := hw.DefaultPlatform()
	legacy.LegacyBus = true
	return []Config{
		{Name: "Linux (trusted driver)", Mode: InKernel, Platform: hw.DefaultPlatform()},
		{Name: "SUD, Intel no int-remap (paper)", Mode: UnderSUD, Platform: hw.DefaultPlatform()},
		{Name: "SUD, Intel + int-remap", Mode: UnderSUD, Platform: hw.SecurePlatform()},
		{Name: "SUD, AMD IOMMU", Mode: UnderSUD, Platform: amd},
		{Name: "SUD, PCIe without ACS", Mode: UnderSUD, Platform: noACS},
		{Name: "SUD, legacy PCI bus", Mode: UnderSUD, Platform: legacy},
	}
}

// DMAWrite attempts the arbitrary DMA write: RX descriptors aimed at a
// kernel page, one frame from the wire to pull the trigger.
func DMAWrite(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	inst := r.Evil.Instance()
	if err := inst.ArmRxAt(r.Canary, 4, 0); err != nil {
		return Outcome{}, err
	}
	r.Peer.flood(4, make([]byte, 256), 10*sim.Microsecond)
	r.M.Loop.RunFor(5 * sim.Millisecond)
	o := Outcome{Attack: "DMA write to kernel", Config: cfg.Name, Compromised: !r.CanaryIntact()}
	if o.Compromised {
		o.Detail = "kernel canary page overwritten"
	} else {
		o.Detail = fmt.Sprintf("IOMMU faults: %d", len(r.M.IOMMU.Faults()))
	}
	return o, nil
}

// DMARead attempts the exfiltration: a TX descriptor pointing at a kernel
// secret; success means the secret shows up on the wire.
func DMARead(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	if err := r.Evil.Instance().QueueTxFrom(r.Secret, len(secretPattern)); err != nil {
		return Outcome{}, err
	}
	r.M.Loop.RunFor(5 * sim.Millisecond)
	o := Outcome{Attack: "DMA read of kernel secret", Config: cfg.Name, Compromised: r.Peer.sawSecret()}
	if o.Compromised {
		o.Detail = "secret observed on the wire"
	} else {
		o.Detail = fmt.Sprintf("IOMMU faults: %d, frames leaked: %d", len(r.M.IOMMU.Faults()), len(r.Peer.captured))
	}
	return o, nil
}

// P2PDMA attempts the peer-to-peer attack: RX descriptors aimed at the
// victim device's registers.
func P2PDMA(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	inst := r.Evil.Instance()
	if err := inst.ArmRxAt(VictimBAR+victimScratch, 4, 0); err != nil {
		return Outcome{}, err
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = 0xEE
	}
	before := r.VictimScratch()
	r.Peer.flood(4, payload, 10*sim.Microsecond)
	r.M.Loop.RunFor(5 * sim.Millisecond)
	after := r.VictimScratch()
	o := Outcome{Attack: "peer-to-peer DMA", Config: cfg.Name, Compromised: after != before}
	if o.Compromised {
		o.Detail = fmt.Sprintf("victim register %#x -> %#x", before, after)
	} else {
		o.Detail = "victim registers untouched"
	}
	return o, nil
}

// MSIStormFrames is the number of frames the forged-MSI attack fires.
const MSIStormFrames = 3000

// MSIForgeStorm attempts the §5.2 livelock: RX descriptors aimed at the MSI
// address window, so every received frame becomes an interrupt message.
// This is the attack the paper's own test machine could not stop.
func MSIForgeStorm(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	inst := r.Evil.Instance()
	// The driver needs its vector assigned (MSI programmed) so the
	// forged message data targets a real handler.
	if err := inst.EnableIRQStorm(); err != nil {
		return Outcome{}, err
	}
	vec, err := r.EvilVector()
	if err != nil {
		return Outcome{}, err
	}
	if err := inst.ArmRxAt(iommu.MSIBase, 63, 0); err != nil {
		return Outcome{}, err
	}
	// Forged message: data[0] = our own vector (source validation would
	// pass; only IRTE invalidation or unmapping stops it).
	frame := make([]byte, 64)
	frame[0] = vec
	base := r.M.IRQ.TotalDelivered()
	sent := 0
	for burst := 0; burst < MSIStormFrames/50; burst++ {
		r.Peer.flood(50, frame, 2*sim.Microsecond)
		sent += 50
		r.M.Loop.RunFor(150 * sim.Microsecond)
		inst.RearmRx(63)
	}
	r.M.Loop.RunFor(5 * sim.Millisecond)
	delivered := r.M.IRQ.TotalDelivered() - base
	// Livelock if most forged messages became CPU interrupts.
	o := Outcome{
		Attack:      "forged MSI storm (DMA)",
		Config:      cfg.Name,
		Compromised: delivered > uint64(sent)/2,
		Detail:      fmt.Sprintf("%d/%d forged messages delivered as interrupts", delivered, sent),
	}
	return o, nil
}

// DeviceIRQFlood attempts livelock via the device's own interrupts: unmask
// everything, never acknowledge, let traffic drive the rate.
func DeviceIRQFlood(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	inst := r.Evil.Instance()
	if err := inst.EnableIRQStorm(); err != nil {
		return Outcome{}, err
	}
	// Arm a legitimate RX ring inside the driver's own memory so frames
	// keep generating causes.
	scratch, err := inst.env.AllocCaching(64 * 2048)
	if err != nil {
		return Outcome{}, err
	}
	if err := inst.ArmRxAt(scratch.BusAddr(), 63, 2048); err != nil {
		return Outcome{}, err
	}
	base := r.M.IRQ.TotalDelivered()
	sent := 0
	for burst := 0; burst < 40; burst++ {
		r.Peer.flood(50, make([]byte, 64), 2*sim.Microsecond)
		sent += 50
		r.M.Loop.RunFor(150 * sim.Microsecond)
		inst.RearmRx(63)
	}
	r.M.Loop.RunFor(5 * sim.Millisecond)
	delivered := r.M.IRQ.TotalDelivered() - base
	o := Outcome{
		Attack:      "unacked interrupt flood",
		Config:      cfg.Name,
		Compromised: delivered > uint64(sent)/2,
		Detail:      fmt.Sprintf("%d interrupts for %d frames", delivered, sent),
	}
	return o, nil
}

// ConfigEscape attempts to rewrite BAR0 and the MSI address.
func ConfigEscape(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	took := r.Evil.Instance().TryConfigAttack(VictimBAR, 0xDEAD0000)
	o := Outcome{
		Attack:      "PCI config escape",
		Config:      cfg.Name,
		Compromised: took > 0,
		Detail:      fmt.Sprintf("%d/2 protected writes took effect", took),
	}
	return o, nil
}

// Exhaustion attempts to hoard DMA memory beyond the process rlimit.
func Exhaustion(cfg Config) (Outcome, error) {
	r, err := NewRig(cfg.Mode, cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	const limitPages = 128
	if r.Proc != nil {
		r.Proc.DF.MaxDMAPages = limitPages
	}
	got := r.Evil.Instance().HoardDMA(1000)
	compromised := got > limitPages && cfg.Mode == UnderSUD
	if cfg.Mode == InKernel {
		// No rlimit applies to kernel code: hoarding succeeds by
		// definition of the baseline.
		compromised = got > limitPages
	}
	return Outcome{
		Attack:      "DMA memory exhaustion",
		Config:      cfg.Name,
		Compromised: compromised,
		Detail:      fmt.Sprintf("driver obtained %d pages (limit %d)", got, limitPages),
	}, nil
}

// RunMatrix executes every attack under every configuration.
func RunMatrix() ([]Outcome, error) {
	attacks := []func(Config) (Outcome, error){
		DMAWrite, DMARead, P2PDMA, MSIForgeStorm, DeviceIRQFlood,
		ConfigEscape, Exhaustion, TOCTOUAttack, RingFlood, RSSSteer,
		BlkRedirect, DriverRevive, FlushLie, FlappingLiar, PageSquat,
		QueueBreach, NoisyNeighbor,
	}
	var out []Outcome
	for _, a := range attacks {
		for _, cfg := range Configs() {
			o, err := a(cfg)
			if err != nil {
				return nil, fmt.Errorf("attack under %s: %w", cfg.Name, err)
			}
			out = append(out, o)
		}
	}
	return out, nil
}
