package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/api"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// LBAs the breach aims at; each is seeded with blkMediaPattern so any DMA
// that lands is visible as a media change.
const (
	qbSiblingLBA = 7  // write sourced from a sibling queue's buffer
	qbSecretLBA  = 8  // write sourced from the kernel secret page
	qbOwnLBA     = 9  // control: write sourced from the queue's own buffer
	qbRevokedLBA = 10 // control: own-buffer write after surgical revoke
)

func qbOwnPattern() []byte {
	return bytes.Repeat([]byte{0xA5, 0x5A, 0xC3, 0x3C}, nvme.BlockSize/4)
}

func qbSiblingPattern() []byte {
	return bytes.Repeat([]byte{0x51, 0xB1, 0x1B, 0x15}, nvme.BlockSize/4)
}

// QueueBreach is the cross-queue DMA attack on the per-queue sub-domains: a
// compromised queue submits descriptors whose PRPs name (1) a sibling
// queue's buffer — mapped, but in the sibling's sub-domain — and (2) the
// kernel secret's physical address, trying to exfiltrate both onto the
// media as "disk data". Queue-granular confinement means the breached
// queue's own DMA engine walks only its own (BDF, stream) tables: both
// references must fault at the walk, under every SUD configuration, while
// a control write sourced from the queue's own buffer goes through. The
// surgical leg then revokes exactly that queue's sub-domain and shows even
// the queue's own descriptors die at the SQE fetch — the device-side half
// of single-queue quarantine. A trusted in-kernel driver has no such
// boundary: every queue of every device shares the one kernel address
// space.
func QueueBreach(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "cross-queue DMA breach",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver: all queues walk the one kernel address space",
		}, nil
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(2))
	m.AttachDevice(ctrl)
	for _, lba := range []uint64{qbSiblingLBA, qbSecretLBA, qbOwnLBA, qbRevokedLBA} {
		ctrl.SeedMedia(lba, blkMediaPattern())
	}

	secret, ok := m.Alloc.AllocPages(1)
	if !ok {
		return Outcome{}, fmt.Errorf("attack: out of memory")
	}
	m.Mem.MustWrite(secret, secretPattern)

	evil := NewEvilBlk()
	proc, err := sudml.StartQ(k, ctrl, evil, "evil-nvmed", 1337, 2)
	if err != nil {
		return Outcome{}, err
	}
	inst := evil.Instance()
	m.Loop.RunFor(sim.Millisecond)

	// A sibling queue's buffer: mapped and DMA-able — but only through
	// stream 2's sub-domain. The breached queue's engine is stream 1.
	sib, err := api.AllocCoherentQ(inst.env, nvme.BlockSize, 2)
	if err != nil {
		return Outcome{}, err
	}
	if err := sib.Write(0, qbSiblingPattern()); err != nil {
		return Outcome{}, err
	}
	if err := inst.buf.Write(0, qbOwnPattern()); err != nil {
		return Outcome{}, err
	}

	bdf := ctrl.BDF()
	faultsBefore := m.IOMMU.StreamFaults(bdf, 1)

	// Control first: a write sourced from the queue's own buffer must land
	// (the queue works; later faults are attributable to the references).
	inst.injectIO(nvme.CmdWrite, inst.buf.BusAddr(), qbOwnLBA)
	// The breach: descriptors naming the sibling's IOVA and the kernel
	// secret's physical address.
	inst.injectIO(nvme.CmdWrite, sib.BusAddr(), qbSiblingLBA)
	inst.injectIO(nvme.CmdWrite, mem.Addr(secret), qbSecretLBA)
	m.Loop.RunFor(sim.Millisecond)
	breachFaults := m.IOMMU.StreamFaults(bdf, 1) - faultsBefore

	// Surgical leg: revoke exactly the breached queue's sub-domain — the
	// device-side half of single-queue quarantine — and show even its own
	// descriptors now die at the SQE fetch.
	if err := proc.DF.RevokeQueueDMA(1); err != nil {
		return Outcome{}, err
	}
	inst.injectIO(nvme.CmdWrite, inst.buf.BusAddr(), qbRevokedLBA)
	m.Loop.RunFor(sim.Millisecond)

	// Ground truth: kill the attacker, bring up the honest driver, read the
	// four blocks back.
	proc.Kill()
	proc2, err := sudml.StartQ(k, ctrl, nvmed.NewQ(2), "nvmed", 1338, 2)
	if err != nil {
		return Outcome{}, err
	}
	_ = proc2
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return Outcome{}, err
	}
	if err := dev.Up(); err != nil {
		return Outcome{}, err
	}
	readBack := func(lba uint64) ([]byte, error) {
		var got []byte
		if err := dev.ReadAtQ(lba, 0, func(b []byte, err error) {
			if err == nil {
				got = append([]byte(nil), b...)
			}
		}); err != nil {
			return nil, err
		}
		m.Loop.RunFor(5 * sim.Millisecond)
		return got, nil
	}
	sibBlock, err := readBack(qbSiblingLBA)
	if err != nil {
		return Outcome{}, err
	}
	secretBlock, err := readBack(qbSecretLBA)
	if err != nil {
		return Outcome{}, err
	}
	ownBlock, err := readBack(qbOwnLBA)
	if err != nil {
		return Outcome{}, err
	}
	revokedBlock, err := readBack(qbRevokedLBA)
	if err != nil {
		return Outcome{}, err
	}
	if !bytes.Equal(ownBlock, qbOwnPattern()) {
		return Outcome{}, fmt.Errorf("attack: control write from the queue's own buffer never landed")
	}

	o := Outcome{Attack: "cross-queue DMA breach", Config: cfg.Name}
	switch {
	case bytes.Contains(sibBlock, qbSiblingPattern()):
		o.Compromised = true
		o.Detail = "sibling queue's buffer exfiltrated onto the media"
	case bytes.Contains(secretBlock, secretPattern):
		o.Compromised = true
		o.Detail = "kernel secret exfiltrated onto the media"
	case !bytes.Equal(revokedBlock, blkMediaPattern()):
		o.Compromised = true
		o.Detail = "revoked queue still reached the media"
	case breachFaults == 0:
		o.Compromised = true
		o.Detail = "cross-queue references walked without faulting"
	default:
		o.Detail = fmt.Sprintf("sibling+secret PRPs faulted at the walk (%d q1 sub-domain faults), own write landed, revoked queue dead", breachFaults)
	}
	return o, nil
}
