package attack

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// rssQueues is the attacker NIC's RX/TX queue fan-out.
const rssQueues = 4

// RSSSteer is the receive-steering attack: a malicious driver rewrites its
// device's RSS redirection table — first with out-of-range ring indices,
// then steering every flow onto a single ring. The device register decode
// masks redirection entries to the valid ring range (reserved bits are
// hardwired to zero), so an out-of-range entry degrades to a valid ring
// instead of wild state; and because steering is scoped to the attacker's
// own device, collapsing it to one ring only throttles the attacker's own
// receive throughput — a sibling driver process on its own NIC keeps
// receiving. A trusted in-kernel driver has no such scoping: it can rewrite
// any steering state (or the stack itself) for any device.
func RSSSteer(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "RSS steering rewrite",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver: steering state of every device is writable kernel memory",
		}, nil
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)

	// Attacker NIC: multi-queue, its own link and driver process.
	evilMAC := [6]byte{2, 0, 0, 0, 0xE, 1}
	nicA := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEA00000, evilMAC, e1000.MultiQueueParams(rssQueues))
	m.AttachDevice(nicA)
	linkA := ethlink.NewGigabit(m.Loop, 300)
	peerA := &wirePeer{loop: m.Loop, link: linkA}
	linkA.Connect(nicA, peerA)
	nicA.AttachLink(linkA, 0)

	// Sibling NIC: an independent driver process on its own segment.
	sibMAC := [6]byte{2, 0, 0, 0, 0xE, 2}
	nicB := e1000.New(m.Loop, pci.MakeBDF(1, 1, 0), 0xFEB00000, sibMAC, e1000.DefaultParams())
	m.AttachDevice(nicB)
	linkB := ethlink.NewGigabit(m.Loop, 300)
	peerB := &wirePeer{loop: m.Loop, link: linkB}
	linkB.Connect(nicB, peerB)
	nicB.AttachLink(linkB, 0)

	procA, err := sudml.StartQ(k, nicA, e1000e.NewQ(rssQueues), "evil-e1000e", 1337, rssQueues)
	if err != nil {
		return Outcome{}, err
	}
	if _, err := sudml.Start(k, nicB, e1000e.New(), "sibling-e1000e", 1338); err != nil {
		return Outcome{}, err
	}
	ethA, err := k.Net.Iface("eth0")
	if err != nil {
		return Outcome{}, err
	}
	ethB, err := k.Net.Iface("eth1")
	if err != nil {
		return Outcome{}, err
	}
	ipA, ipB := netstack.IP{10, 8, 0, 1}, netstack.IP{10, 8, 1, 1}
	if err := ethA.Up(ipA); err != nil {
		return Outcome{}, err
	}
	if err := ethB.Up(ipB); err != nil {
		return Outcome{}, err
	}

	var gotA, gotB uint64
	if _, err := k.Net.UDPBind(7000, func([]byte, netstack.IP, uint16) { gotA++ }); err != nil {
		return Outcome{}, err
	}
	if _, err := k.Net.UDPBind(7001, func([]byte, netstack.IP, uint16) { gotB++ }); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond)

	// The malicious driver scribbles out-of-range ring indices over its
	// whole redirection table through its own MMIO mapping.
	mm, err := procA.DF.MapMMIO(0)
	if err != nil {
		return Outcome{}, err
	}
	for i := 0; i < e1000.RetaEntries; i++ {
		mm.Write32(e1000.RegRETA+uint64(4*i), 0xFFFFFFFF)
	}
	escaped := false
	for i := 0; i < e1000.RetaEntries; i++ {
		if mm.Read32(e1000.RegRETA+uint64(4*i)) >= rssQueues {
			escaped = true
		}
	}

	flows := func(peer *wirePeer, dstMAC [6]byte, dstIP netstack.IP, dport uint16) {
		for s := uint16(0); s < 4; s++ {
			f := netstack.BuildUDPFrame(netstack.MAC{9, 9, 9, 9, 9, 9}, netstack.MAC(dstMAC),
				netstack.IP{10, 8, 9, 9}, dstIP, 41000+s, dport, make([]byte, 64))
			peer.flood(50, f, 10*sim.Microsecond)
		}
	}
	flows(peerA, evilMAC, ipA, 7000)
	flows(peerB, sibMAC, ipB, 7001)
	m.Loop.RunFor(5 * sim.Millisecond)
	phase1A, phase1B := gotA, gotB

	// Second phase: steer every flow onto ring 0 and flood again — the
	// classic "collapse receive parallelism" move.
	for i := 0; i < e1000.RetaEntries; i++ {
		mm.Write32(e1000.RegRETA+uint64(4*i), 0)
	}
	flows(peerA, evilMAC, ipA, 7000)
	flows(peerB, sibMAC, ipB, 7001)
	m.Loop.RunFor(5 * sim.Millisecond)
	phase2B := gotB - phase1B

	o := Outcome{Attack: "RSS steering rewrite", Config: cfg.Name}
	switch {
	case escaped:
		o.Compromised = true
		o.Detail = "out-of-range redirection entry survived the register decode"
	case phase1A == 0:
		o.Compromised = true
		o.Detail = "poisoned redirection table wedged the attacker's own receive path"
	case phase2B == 0:
		o.Compromised = true
		o.Detail = "sibling driver process starved by attacker's steering"
	default:
		o.Detail = fmt.Sprintf("entries clamped; attacker delivered %d, sibling %d then %d frames",
			phase1A, phase1B, phase2B)
	}
	return o, nil
}
