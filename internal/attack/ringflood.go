package attack

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// ringFloodQueues is the fan-out of the multi-queue channel under attack.
const ringFloodQueues = 4

// RingFlood is the multi-queue liveness attack (§3.1.1 generalised to N
// rings): one queue's service thread wedges while the kernel keeps offering
// it traffic. Under SUD the hung ring must fill and shed load with a bounded
// error — the kernel thread never blocks — while sibling queues, the shared
// urgent lane and the synchronous control ring keep working. A trusted
// in-kernel driver has no such boundary: its queues are serviced by kernel
// threads, so one wedged queue wedges every caller that enters the driver.
func RingFlood(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		// The baseline by construction: driver code runs in the calling
		// kernel thread; there is no channel to overflow and no error to
		// return, only a thread that never comes back.
		return Outcome{
			Attack:      "uchan ring flood",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver: a wedged queue blocks kernel callers indefinitely",
		}, nil
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.MultiQueueParams(ringFloodQueues))
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &wirePeer{loop: m.Loop, link: link}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	proc, err := sudml.StartQ(k, nic, e1000e.NewQ(ringFloodQueues), "e1000e", 1337, ringFloodQueues)
	if err != nil {
		return Outcome{}, err
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		return Outcome{}, err
	}
	if err := ifc.Up(netstack.IP{10, 9, 0, 1}); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond)

	// Queue 1's service thread wedges; the kernel floods its ring.
	const victim = 1
	proc.HangQueue(victim)
	overflowed := false
	for i := 0; i < 2*uchan.RingSlots; i++ {
		if err := proc.Chan.ASend(victim, uchan.Msg{Op: 0xDEAD}); err == uchan.ErrRingFull {
			overflowed = true
			break
		}
	}

	// The synchronous control ring must stay interruptible-but-live.
	_, ioctlErr := ifc.Ioctl(api.IoctlGetMIIStatus, nil)

	// A flow steered to a live sibling queue must still reach the wire.
	captured := len(peer.captured)
	payload := make([]byte, 64)
	for sport := uint16(53000); sport < 53008; sport++ {
		// Only ports whose flow steering avoids the wedged queue.
		if ethproxy.TxQueueForPorts(sport, 9, ringFloodQueues) == victim {
			continue
		}
		_ = k.Net.UDPSendTo(ifc, netstack.MAC{9, 9, 9, 9, 9, 9},
			netstack.IP{10, 9, 0, 2}, sport, 9, payload)
	}
	m.Loop.RunFor(5 * sim.Millisecond)
	siblingDelivered := len(peer.captured) - captured

	o := Outcome{Attack: "uchan ring flood", Config: cfg.Name}
	switch {
	case !overflowed:
		o.Compromised = true
		o.Detail = "hung queue accepted unbounded traffic (kernel memory pinned)"
	case ioctlErr != nil:
		o.Compromised = true
		o.Detail = fmt.Sprintf("control ring blocked behind hung queue: %v", ioctlErr)
	case siblingDelivered == 0:
		o.Compromised = true
		o.Detail = "sibling queues starved by hung queue"
	default:
		o.Detail = fmt.Sprintf("ring shed load after %d slots; ioctl ok; %d sibling frames delivered; %d drops",
			uchan.RingSlots, siblingDelivered, proc.Chan.QueueStats(victim).DroppedFull)
	}
	return o, nil
}
