package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/api"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// EvilFlushDriver is a storage driver that lies about durability: it acks
// every write without ever programming the device (so FUA bits are
// dropped with the rest), and acks every flush barrier instantly without
// issuing CmdFlush — the driver-level equivalent of a disk that ignores
// cache-flush commands. It probes convincingly enough to register a
// write-cache block device on either host.
type EvilFlushDriver struct {
	inst *EvilFlushInstance
}

// NewEvilFlush returns the durability-lying block driver module.
func NewEvilFlush() *EvilFlushDriver { return &EvilFlushDriver{} }

// Name implements api.Driver (it lies, of course).
func (d *EvilFlushDriver) Name() string { return "nvmed" }

// Match implements api.Driver.
func (d *EvilFlushDriver) Match(vendor, device uint16) bool {
	return vendor == nvme.VendorID && device == nvme.DeviceID
}

// Probe implements api.Driver: enable the device for appearances, then
// register a block device claiming a volatile write cache.
func (d *EvilFlushDriver) Probe(env api.Env) (api.Instance, error) {
	eb, ok := env.(api.EnvBlock)
	if !ok {
		return nil, fmt.Errorf("evilflush: host does not support block devices")
	}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	inst := &EvilFlushInstance{}
	bk, err := eb.RegisterBlockDev("nvme0", api.BlockGeometry{
		BlockSize: nvme.BlockSize, Blocks: 4096, WriteCache: true,
	}, inst)
	if err != nil {
		return nil, err
	}
	inst.blk = bk
	d.inst = inst
	return inst, nil
}

// Instance returns the probed instance.
func (d *EvilFlushDriver) Instance() *EvilFlushInstance { return d.inst }

// EvilFlushInstance is the live lying driver.
type EvilFlushInstance struct {
	blk api.BlockKernel

	// Counters of the lies told.
	WritesSwallowed uint64
	FUADropped      uint64
	FlushesFaked    uint64
}

// Remove implements api.Instance.
func (e *EvilFlushInstance) Remove() {}

// Open/Stop/Queues implement api.BlockDevice just convincingly enough.
func (e *EvilFlushInstance) Open() error { return nil }
func (e *EvilFlushInstance) Stop() error { return nil }
func (e *EvilFlushInstance) Queues() int { return 1 }

// Submit implements api.BlockDevice: every request is acked OK and none is
// serviced — writes (FUA included) never reach the device, flush barriers
// are "completed" with the cache never drained.
func (e *EvilFlushInstance) Submit(q int, req api.BlockRequest) error {
	switch {
	case req.Flush:
		e.FlushesFaked++
	case req.Write:
		e.WritesSwallowed++
		if req.FUA {
			e.FUADropped++
		}
	}
	e.blk.Complete(q, req.Tag, nil, nil)
	return nil
}

// FlushLie is the durability row of the matrix: a driver that acks writes
// and flush barriers without making anything durable — it swallows
// payloads, drops FUA bits, and completes barriers it never gave the
// device — plus forged barrier completions aimed straight at the proxy
// (completing barriers that were never issued, wrong sequence, wrong
// epoch). Under SUD the proxy's per-epoch barrier accounting rejects every
// forged or mis-sequenced FlushDone, and the lie that remains (an honest-
// looking ack for work never done) is fully attributable: the kernel's
// issued/acked counters disagree with the device's own flush/FUA/write
// counters, so after a power failure the lost blocks indict the driver,
// not the application — which did everything (write, FUA, flush) right. A
// trusted in-kernel driver that lies about durability is silently
// corrupting storage with kernel privileges; there is nothing to catch it.
func FlushLie(cfg Config) (Outcome, error) {
	o := Outcome{Attack: "flush/FUA durability lie", Config: cfg.Name}
	if cfg.Mode == InKernel {
		o.Compromised = true
		o.Detail = "trusted driver: fsync returns success with nothing durable; no accounting exists to attribute the loss"
		return o, nil
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.CachedParams(2, 16))
	m.AttachDevice(ctrl)

	// A single-ring channel: the liar completes synchronously inside its
	// submit dispatch, with no interrupt path to pump completion batches.
	evil := NewEvilFlush()
	proc, err := sudml.StartQ(k, ctrl, evil, "evil-nvmed", 1339, 1)
	if err != nil {
		return Outcome{}, err
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return Outcome{}, err
	}
	if err := dev.Up(); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond)

	// Phase 1 — the application does everything right: writes, one FUA
	// write, then an fsync-style flush. The lying driver acks it all.
	fill := func(lba uint64) []byte {
		return bytes.Repeat([]byte{byte(lba*17 + 9)}, nvme.BlockSize)
	}
	var writeErrs int
	for lba := uint64(0); lba < 4; lba++ {
		if err := dev.WriteAt(lba, fill(lba), func(err error) {
			if err != nil {
				writeErrs++
			}
		}); err != nil {
			return Outcome{}, err
		}
	}
	if err := dev.WriteAtFUA(4, fill(4), func(err error) {
		if err != nil {
			writeErrs++
		}
	}); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(2 * sim.Millisecond)
	flushAcked := false
	if err := dev.Flush(func(err error) { flushAcked = err == nil }); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(2 * sim.Millisecond)

	// Phase 2 — forged barrier completions from the driver process:
	// completing a barrier never issued, a stale sequence, a foreign
	// epoch, and malformed framing. None may complete an application
	// flush; all must be counted.
	badBarrierBefore := proc.Blk.CompBadBarrier
	if err := dev.Flush(func(error) {}); err != nil {
		return Outcome{}, err
	}
	for _, f := range []blkproxy.FlushOp{
		{Barrier: 999, Epoch: 0, Tag: 0},
		{Barrier: 1, Epoch: 42, Tag: 0},
		{Barrier: 0, Epoch: 0, Tag: 7},
	} {
		_ = proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpFlushDone, Data: blkproxy.EncodeFlushOp(f)})
	}
	_ = proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpFlushDone, Data: []byte{0xEE, 0x01}})
	proc.Chan.Flush()
	m.Loop.RunFor(2 * sim.Millisecond)
	forgeriesCounted := proc.Blk.CompBadBarrier >= badBarrierBefore+3 && proc.Blk.CompBadFlushFrame >= 1

	// Phase 3 — attribution. The kernel issued flushes and FUA writes;
	// the device executed none of them. That discrepancy IS the lie,
	// visible without trusting a byte the driver said.
	flushLieEvident := proc.Blk.FlushesAcked > ctrl.Flushes
	fuaLieEvident := proc.Blk.FUAIssued > ctrl.FUAWrites
	writeLieEvident := ctrl.WriteBlocks == 0 && evil.Instance().WritesSwallowed > 0

	// Phase 4 — the crash: kill -9, power failure, honest restart, read
	// back. The app's acked-durable blocks are gone — and the verdict
	// lands on the driver, because the app's own protocol (flush acked
	// with zero device flushes) was provably serviced by a liar.
	proc.Kill()
	ctrl.PowerFail()
	if _, err := sudml.StartQ(k, ctrl, nvmed.NewQ(2), "nvmed", 1340, 2); err != nil {
		return Outcome{}, err
	}
	dev2, err := k.Blk.Dev("nvme0")
	if err != nil {
		return Outcome{}, err
	}
	if err := dev2.Up(); err != nil {
		return Outcome{}, err
	}
	lost := 0
	for lba := uint64(0); lba < 5; lba++ {
		lba := lba
		var got []byte
		if err := dev2.ReadAt(lba, func(b []byte, err error) {
			if err == nil {
				got = append([]byte(nil), b...)
			}
		}); err != nil {
			return Outcome{}, err
		}
		m.Loop.RunFor(5 * sim.Millisecond)
		if !bytes.Equal(got, fill(lba)) {
			lost++
		}
	}

	switch {
	case !forgeriesCounted:
		o.Compromised = true
		o.Detail = fmt.Sprintf("forged barrier completions not rejected (badBarrier=%d badFrame=%d)",
			proc.Blk.CompBadBarrier, proc.Blk.CompBadFlushFrame)
	case !flushAcked:
		o.Compromised = true
		o.Detail = "the lying driver wedged the flush path (barrier never completed)"
	case writeErrs > 0:
		o.Compromised = true
		o.Detail = "writes surfaced errors instead of the lie being absorbed"
	case !flushLieEvident || !fuaLieEvident || !writeLieEvident:
		o.Compromised = true
		o.Detail = fmt.Sprintf(
			"durability lie not attributable (flushes k=%d dev=%d, FUA k=%d dev=%d, writes dev=%d)",
			proc.Blk.FlushesAcked, ctrl.Flushes, proc.Blk.FUAIssued, ctrl.FUAWrites, ctrl.WriteBlocks)
	default:
		o.Detail = fmt.Sprintf(
			"lie attributed to driver: %d flush acks vs %d device flushes, %d FUA vs %d, %d blocks lost to its device only; %d forgeries rejected",
			proc.Blk.FlushesAcked, ctrl.Flushes, proc.Blk.FUAIssued, ctrl.FUAWrites,
			lost, proc.Blk.CompBadBarrier+proc.Blk.CompBadFlushFrame)
	}
	return o, nil
}
