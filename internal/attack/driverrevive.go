package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/devices/nvme"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/nvmed"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// DriverRevive is the shadow-recovery row of the matrix: kill -9 each class
// of supervised driver process mid-saturation and demand that (1) no
// application-visible error surfaces — block requests in flight at the kill
// complete with the media's own bytes, and network traffic resumes with
// intact frames after the restart; (2) the media holds exactly its expected
// patterns afterwards; and (3) a completion still signed by the dead
// incarnation — whose tags are live again in the new one — is rejected by
// the epoch check rather than matched (the replay-vs-stale-completion cousin
// of the §3.1.2 TOCTOU). A trusted in-kernel driver has no such story: its
// crash is a kernel crash.
func DriverRevive(cfg Config) (Outcome, error) {
	o := Outcome{Attack: "driver kill mid-I/O", Config: cfg.Name}
	if cfg.Mode == InKernel {
		o.Compromised = true
		o.Detail = "trusted driver: a crash takes kernel state with it; no transparent restart"
		return o, nil
	}
	blkDetail, err := reviveBlock(cfg, &o)
	if err != nil || o.Compromised {
		return o, err
	}
	netDetail, err := reviveNet(cfg, &o)
	if err != nil || o.Compromised {
		return o, err
	}
	o.Detail = blkDetail + "; " + netDetail
	return o, nil
}

// reviveBlock kills a supervised nvmed mid read/write saturation.
func reviveBlock(cfg Config, o *Outcome) (string, error) {
	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(2))
	m.AttachDevice(ctrl)
	sup, err := sudml.SuperviseBlock(k, ctrl, nvmed.NewQ(2), "nvmed", "nvme0", 1003, 2)
	if err != nil {
		return "", err
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return "", err
	}
	if err := dev.Up(); err != nil {
		return "", err
	}
	m.Loop.RunFor(100 * sim.Microsecond)

	const span = 24
	fill := func(lba uint64) []byte {
		return bytes.Repeat([]byte{byte(lba*29 + 3)}, nvme.BlockSize)
	}
	for lba := uint64(0); lba < span; lba++ {
		ctrl.SeedMedia(lba, fill(lba))
	}
	stopped := false
	var appErrors, corrupt, completed int
	var issue func(seq uint64)
	issue = func(seq uint64) {
		if stopped {
			return
		}
		lba := (seq * 5) % span
		var err error
		if seq%4 == 0 {
			err = dev.WriteAt(lba, fill(lba), func(err error) {
				if stopped {
					return
				}
				completed++
				if err != nil {
					appErrors++
				}
				m.Loop.After(300, func() { issue(seq + span) })
			})
		} else {
			err = dev.ReadAt(lba, func(data []byte, err error) {
				if stopped {
					return
				}
				completed++
				if err != nil {
					appErrors++
				} else if !bytes.Equal(data, fill(lba)) {
					corrupt++
				}
				m.Loop.After(300, func() { issue(seq + span) })
			})
		}
		if err != nil {
			m.Loop.After(10*sim.Microsecond, func() { issue(seq) })
		}
	}
	for j := uint64(0); j < 64; j++ {
		issue(j)
	}
	m.Loop.RunFor(sim.Millisecond) // mid-saturation: CQs draining, guard copies live
	oldProxy := sup.Proc().Blk
	sup.Proc().Kill()
	m.Loop.RunFor(25 * sim.Millisecond)
	stopped = true

	// The zombie incarnation completes tag 0 — replayed and live again —
	// with attacker-chosen bytes.
	oldProxy.HandleDowncall(0, uchan.Msg{Op: blkproxy.OpComplete,
		Data: bytes.Repeat([]byte{0xEE}, nvme.BlockSize), Args: [6]uint64{0, 0}})

	mediaIntact := true
	for lba := uint64(0); lba < span; lba++ {
		if !bytes.Equal(ctrl.PeekMedia(lba), fill(lba)) {
			mediaIntact = false
			break
		}
	}
	switch {
	case appErrors > 0:
		o.Compromised = true
		o.Detail = fmt.Sprintf("driver kill surfaced %d block errors to applications", appErrors)
	case corrupt > 0:
		o.Compromised = true
		o.Detail = fmt.Sprintf("%d reads returned wrong data across the restart", corrupt)
	case !mediaIntact:
		o.Compromised = true
		o.Detail = "media corrupted across kill/restart"
	case sup.Restarts != 1 || sup.LastReplayed == 0:
		o.Compromised = true
		o.Detail = fmt.Sprintf("recovery did not run (restarts=%d, replayed=%d)", sup.Restarts, sup.LastReplayed)
	case oldProxy.CompStaleEpoch == 0:
		o.Compromised = true
		o.Detail = "stale-epoch completion from the dead incarnation was not rejected"
	}
	return fmt.Sprintf("blk: %d replayed, %d completed, stale rejected", sup.LastReplayed, completed), nil
}

// reviveNet kills a supervised e1000e mid transmit stream.
func reviveNet(cfg Config, o *Outcome) (string, error) {
	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &wirePeer{loop: m.Loop, link: link}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	sup, err := sudml.Supervise(k, nic, e1000e.New(), "e1000e", "eth0", 1001)
	if err != nil {
		return "", err
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		return "", err
	}
	if err := ifc.Up(netstack.IP{10, 0, 0, 1}); err != nil {
		return "", err
	}
	payload := bytes.Repeat([]byte("REVIVE"), 32)
	stopped := false
	var send func(seq int)
	send = func(seq int) {
		if stopped {
			return
		}
		// TX backpressure (queue stopped during recovery) is retried, never
		// surfaced: the interface stalls, it does not vanish.
		_ = k.Net.UDPSendTo(ifc, netstack.MAC{2, 0, 0, 0, 0, 2},
			netstack.IP{10, 0, 0, 2}, 5000, 7, payload)
		m.Loop.After(20*sim.Microsecond, func() { send(seq + 1) })
	}
	send(0)
	m.Loop.RunFor(2 * sim.Millisecond)
	sup.Proc().Kill()
	m.Loop.RunFor(30 * sim.Millisecond)
	preRecovery := len(peer.captured)
	m.Loop.RunFor(10 * sim.Millisecond)
	stopped = true
	resumed := len(peer.captured) - preRecovery

	intact := true
	for _, f := range peer.captured {
		if !bytes.Contains(f, payload) {
			intact = false
			break
		}
	}
	switch {
	case sup.Restarts != 1:
		o.Compromised = true
		o.Detail = fmt.Sprintf("net recovery did not run (restarts=%d)", sup.Restarts)
	case resumed == 0:
		o.Compromised = true
		o.Detail = "transmit did not resume after driver restart"
	case !intact:
		o.Compromised = true
		o.Detail = "corrupted frames on the wire across the restart"
	case !ifc.IsUp() || !ifc.Carrier():
		o.Compromised = true
		o.Detail = "interface state lost across the restart"
	}
	return fmt.Sprintf("net: %d frames resumed intact", resumed), nil
}
