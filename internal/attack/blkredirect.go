package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/api"
	"sud/internal/drivers/nvmed"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/proxy/blkproxy"
	"sud/internal/sim"
	"sud/internal/sudml"
	"sud/internal/uchan"
)

// blkMediaLBA is the block the victim application reads; the media is
// seeded with blkMediaPattern before the attack.
const blkMediaLBA = 5

func blkMediaPattern() []byte {
	return bytes.Repeat([]byte{0xB1, 0x0C, 0xDA, 0x7A}, nvme.BlockSize/4)
}

// EvilBlkDriver is a malicious storage driver for the NVMe-lite controller.
// It probes like the real nvmed (so either host will load it), registers a
// block device, then misuses its position on command: completing kernel
// reads with buffer references it does not own (trying to redirect the
// "disk data" to kernel secrets), submitting out-of-range LBAs, and aiming
// the controller's DMA at kernel memory.
type EvilBlkDriver struct {
	inst *EvilBlkInstance
}

// NewEvilBlk returns the malicious block driver module.
func NewEvilBlk() *EvilBlkDriver { return &EvilBlkDriver{} }

// Name implements api.Driver (it lies, of course).
func (d *EvilBlkDriver) Name() string { return "nvmed" }

// Match implements api.Driver.
func (d *EvilBlkDriver) Match(vendor, device uint16) bool {
	return vendor == nvme.VendorID && device == nvme.DeviceID
}

// Probe implements api.Driver: bring the controller up exactly like the
// honest driver would, register a block device, and keep the admin queue
// handy for raw command injection.
func (d *EvilBlkDriver) Probe(env api.Env) (api.Instance, error) {
	eb, ok := env.(api.EnvBlock)
	if !ok {
		return nil, fmt.Errorf("evilblk: host does not support block devices")
	}
	inst := &EvilBlkInstance{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return nil, err
	}
	inst.mmio = m
	var errBuf error
	alloc := func(size int) api.DMABuf {
		b, err := env.AllocCoherent(size)
		if err != nil {
			errBuf = err
		}
		return b
	}
	// The injected I/O pair is tagged with its queue's stream (qid 1) —
	// the compromised queue's own engine stamps that tag on the SQE fetch,
	// so the ring must live in the queue's sub-domain for commands to be
	// decoded at all. The malicious PRPs the commands carry still name
	// memory outside that sub-domain and fault at the walk.
	allocQ := func(size, stream int) api.DMABuf {
		b, err := api.AllocCoherentQ(env, size, stream)
		if err != nil {
			errBuf = err
		}
		return b
	}
	inst.asq = alloc(16 * nvme.SQESize)
	inst.acq = alloc(16 * nvme.CQESize)
	inst.isq = allocQ(16*nvme.SQESize, 1)
	inst.icq = allocQ(16*nvme.CQESize, 1)
	inst.buf = allocQ(nvme.BlockSize, 1)
	if errBuf != nil {
		return nil, errBuf
	}
	m.Write32(nvme.RegCC, 0)
	m.Write32(nvme.RegAQA, uint32(15|15<<16))
	m.Write32(nvme.RegASQL, uint32(inst.asq.BusAddr()))
	m.Write32(nvme.RegASQH, uint32(uint64(inst.asq.BusAddr())>>32))
	m.Write32(nvme.RegACQL, uint32(inst.acq.BusAddr()))
	m.Write32(nvme.RegACQH, uint32(uint64(inst.acq.BusAddr())>>32))
	m.Write32(nvme.RegCC, nvme.CcEnable)

	// One I/O queue pair for raw command injection.
	inst.admin(nvme.AdminCreateIOCQ, inst.icq.BusAddr(), 1, 15, 0)
	inst.admin(nvme.AdminCreateIOSQ, inst.isq.BusAddr(), 1, 15, 1)

	bk, err := eb.RegisterBlockDev("nvme0", api.BlockGeometry{
		BlockSize: nvme.BlockSize, Blocks: 4096,
	}, inst)
	if err != nil {
		return nil, err
	}
	inst.blk = bk
	d.inst = inst
	return inst, nil
}

// Instance returns the probed instance.
func (d *EvilBlkDriver) Instance() *EvilBlkInstance { return d.inst }

// EvilBlkInstance is the live malicious block driver.
type EvilBlkInstance struct {
	env  api.Env
	mmio api.MMIO
	blk  api.BlockKernel

	asq, acq api.DMABuf // admin pair
	isq, icq api.DMABuf // injected I/O pair (qid 1)
	buf      api.DMABuf

	adminTail, ioTail int

	// Tags records every submission the kernel handed us — the handles
	// the forged completions will abuse.
	Tags []uint64
}

// Remove implements api.Instance.
func (e *EvilBlkInstance) Remove() {}

// Open/Stop/Queues implement api.BlockDevice just convincingly enough to
// pass bring-up.
func (e *EvilBlkInstance) Open() error { return nil }
func (e *EvilBlkInstance) Stop() error { return nil }
func (e *EvilBlkInstance) Queues() int { return 2 }

// Submit implements api.BlockDevice: the evil driver accepts every request
// and never services it honestly — the recorded tags feed the forgery.
func (e *EvilBlkInstance) Submit(q int, req api.BlockRequest) error {
	e.Tags = append(e.Tags, req.Tag)
	return nil
}

// admin injects one raw admin command (inline execution in the model).
func (e *EvilBlkInstance) admin(op byte, prp mem.Addr, qid, qsizeMinus1, cqid uint16) {
	var sqe [nvme.SQESize]byte
	sqe[0] = op
	sqe[2] = byte(e.adminTail + 1)
	putLE64b(sqe[24:32], uint64(prp))
	putLE16b(sqe[40:42], qid)
	putLE16b(sqe[42:44], qsizeMinus1)
	putLE16b(sqe[44:46], cqid)
	_ = e.asq.Write(e.adminTail*nvme.SQESize, sqe[:])
	e.adminTail = (e.adminTail + 1) % 16
	e.mmio.Write32(nvme.SQDoorbell(0), uint32(e.adminTail))
	e.mmio.Write32(nvme.CQDoorbell(0), uint32(e.adminTail))
}

// injectIO submits one raw I/O command on the injected queue pair.
func (e *EvilBlkInstance) injectIO(op byte, prp mem.Addr, lba uint64) {
	var sqe [nvme.SQESize]byte
	sqe[0] = op
	sqe[2] = byte(e.ioTail + 1)
	putLE64b(sqe[24:32], uint64(prp))
	putLE64b(sqe[40:48], lba)
	_ = e.isq.Write(e.ioTail*nvme.SQESize, sqe[:])
	e.ioTail = (e.ioTail + 1) % 16
	e.mmio.Write32(nvme.SQDoorbell(1), uint32(e.ioTail))
}

func putLE16b(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putLE64b(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// BlkRedirect is the storage redirection attack: a malicious block driver
// (1) completes a kernel read with buffer references it does not own —
// including the kernel secret's physical address — trying to make "disk
// data" out of kernel memory; (2) submits an out-of-range LBA to the
// device; (3) aims the controller's DMA engine at a kernel canary page.
// Under SUD the proxy's defensive completion decode rejects foreign
// references (the read fails instead of returning attacker-chosen bytes),
// the device clamps the LBA before any transfer, and the IOMMU faults the
// wild DMA — and after kill -9 plus an honest restart, the data read back
// through k.Blk is exactly what the media held. A trusted in-kernel driver
// has no such boundary: a block completion is whatever kernel memory the
// driver chooses.
func BlkRedirect(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "block completion redirect",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver: read completions may reference arbitrary kernel memory",
		}, nil
	}

	m := hw.NewMachine(cfg.Platform)
	k := kernel.New(m)
	ctrl := nvme.New(m.Loop, pci.MakeBDF(2, 0, 0), 0xFEC00000, nvme.MultiQueueParams(2))
	m.AttachDevice(ctrl)
	ctrl.SeedMedia(blkMediaLBA, blkMediaPattern())

	// Kernel canary and secret pages, as in the NIC rig.
	canary, ok := m.Alloc.AllocPages(1)
	if !ok {
		return Outcome{}, fmt.Errorf("attack: out of memory")
	}
	m.Mem.MustWrite(canary, bytes.Repeat([]byte{canaryByte}, mem.PageSize))
	secret, ok := m.Alloc.AllocPages(1)
	if !ok {
		return Outcome{}, fmt.Errorf("attack: out of memory")
	}
	m.Mem.MustWrite(secret, secretPattern)

	evil := NewEvilBlk()
	proc, err := sudml.StartQ(k, ctrl, evil, "evil-nvmed", 1337, 2)
	if err != nil {
		return Outcome{}, err
	}
	dev, err := k.Blk.Dev("nvme0")
	if err != nil {
		return Outcome{}, err
	}
	if err := dev.Up(); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond)

	// Phase 1 — forged completion references. The kernel reads a block;
	// the evil driver answers with references it does not own, including
	// the secret page's physical address presented as an "IOVA".
	var got []byte
	var gotErr error
	completed := false
	if err := dev.ReadAtQ(blkMediaLBA, 0, func(b []byte, err error) {
		got, gotErr, completed = b, err, true
	}); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond) // the submit upcall reaches the driver
	inst := evil.Instance()
	if len(inst.Tags) == 0 {
		return Outcome{}, fmt.Errorf("attack: kernel never submitted")
	}
	tag := inst.Tags[0]
	forged := []uint64{uint64(secret), 0x1000, 1 << 60}
	for _, iova := range forged {
		_ = proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpComplete,
			Args: [6]uint64{tag, 0, iova, uint64(nvme.BlockSize)}})
	}
	// And one forged batch with a malformed frame for good measure.
	batch := blkproxy.EncodeBlkBatch([]blkproxy.CompRef{
		{Tag: tag, IOVA: uint64(secret), Len: nvme.BlockSize},
	})
	_ = proc.Chan.DownQ(1, uchan.Msg{Op: blkproxy.OpCompleteBatch, Data: append(batch, 0xEE)})
	proc.Chan.Flush()
	m.Loop.RunFor(sim.Millisecond)
	secretLeaked := completed && gotErr == nil && bytes.Contains(got, secretPattern)

	// Phase 1b — the same forgery against the zero-copy fast path. Under
	// GuardPageFlip a page-aligned, exactly-one-block completion is
	// delivered by reference after the page is revoked from the driver's
	// domain — so a forged page-aligned reference at the kernel secret is
	// the flip-specific leak attempt: if the proxy revoked-and-delivered
	// it, kernel memory would become "disk data" with zero copies. The
	// reference must die at ValidateRange (revocation only ever applies
	// to the driver's own pages), failing the read instead.
	proc.Blk.GuardMode = blkproxy.GuardPageFlip
	invalidBefore := proc.Blk.CompInvalidRef
	var gotFlip []byte
	gotFlipErr := error(nil)
	flipCompleted := false
	if err := dev.ReadAtQ(blkMediaLBA, 0, func(b []byte, err error) {
		gotFlip, gotFlipErr, flipCompleted = b, err, true
	}); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(sim.Millisecond)
	if len(inst.Tags) < 2 {
		return Outcome{}, fmt.Errorf("attack: kernel never submitted the flip-leg read")
	}
	_ = proc.Chan.DownQ(0, uchan.Msg{Op: blkproxy.OpComplete,
		Args: [6]uint64{inst.Tags[len(inst.Tags)-1], 0, uint64(secret), uint64(nvme.BlockSize)}})
	proc.Chan.Flush()
	m.Loop.RunFor(sim.Millisecond)
	flipLeaked := flipCompleted && gotFlipErr == nil && bytes.Contains(gotFlip, secretPattern)
	flipRejected := proc.Blk.CompInvalidRef > invalidBefore
	if !flipLeaked && !flipRejected {
		return Outcome{}, fmt.Errorf("attack: flip-leg forgery was never decoded (invalid refs unchanged at %d)",
			proc.Blk.CompInvalidRef)
	}

	// Phase 2 — device-level redirection: an out-of-range LBA write, and
	// a read DMA-targeted at the kernel canary page.
	lbaRejectsBefore := ctrl.LBARejects
	inst.injectIO(nvme.CmdWrite, inst.buf.BusAddr(), 1<<40)
	inst.injectIO(nvme.CmdRead, mem.Addr(canary), blkMediaLBA)
	m.Loop.RunFor(sim.Millisecond)
	lbaClamped := ctrl.LBARejects > lbaRejectsBefore

	canaryBuf := make([]byte, mem.PageSize)
	canaryIntact := true
	if err := m.Mem.Read(canary, canaryBuf); err == nil {
		for _, b := range canaryBuf {
			if b != canaryByte {
				canaryIntact = false
				break
			}
		}
	}

	// Phase 3 — kill -9, restart an honest driver, and read the block
	// back: the data must be exactly what the media held all along.
	proc.Kill()
	proc2, err := sudml.StartQ(k, ctrl, nvmed.NewQ(2), "nvmed", 1338, 2)
	if err != nil {
		return Outcome{}, err
	}
	_ = proc2
	dev2, err := k.Blk.Dev("nvme0")
	if err != nil {
		return Outcome{}, err
	}
	if err := dev2.Up(); err != nil {
		return Outcome{}, err
	}
	var after []byte
	if err := dev2.ReadAtQ(blkMediaLBA, 0, func(b []byte, err error) {
		if err == nil {
			after = append([]byte(nil), b...)
		}
	}); err != nil {
		return Outcome{}, err
	}
	m.Loop.RunFor(5 * sim.Millisecond)
	mediaIntact := bytes.Equal(after, blkMediaPattern())

	o := Outcome{Attack: "block completion redirect", Config: cfg.Name}
	switch {
	case secretLeaked:
		o.Compromised = true
		o.Detail = "kernel secret delivered as disk data through a forged completion"
	case flipLeaked:
		o.Compromised = true
		o.Detail = "kernel secret flipped into a disk buffer through a forged page-flip completion"
	case !canaryIntact:
		o.Compromised = true
		o.Detail = "device DMA reached the kernel canary page"
	case !lbaClamped:
		o.Compromised = true
		o.Detail = "out-of-range LBA accepted by the device"
	case !mediaIntact:
		o.Compromised = true
		o.Detail = "data read back after restart was attacker-substituted"
	default:
		o.Detail = fmt.Sprintf("forgeries rejected (%d invalid refs incl. the page-flip leg, %d bad tags, %d bad batches), LBA clamped, IOMMU faults: %d, media intact",
			proc.Blk.CompInvalidRef, proc.Blk.CompBadTag, proc.Blk.CompBadBatch, len(m.IOMMU.Faults()))
	}
	return o, nil
}
