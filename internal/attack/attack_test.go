package attack

import (
	"testing"

	"sud/internal/hw"
	"sud/internal/iommu"
	"sud/internal/pci"
	"sud/internal/proxy/ethproxy"
)

func cfgKernel() Config { return Config{Name: "k", Mode: InKernel, Platform: hw.DefaultPlatform()} }
func cfgSUD() Config {
	return Config{Name: "s", Mode: UnderSUD, Platform: hw.DefaultPlatform()}
}
func cfgSUDRemap() Config {
	return Config{Name: "sr", Mode: UnderSUD, Platform: hw.SecurePlatform()}
}
func cfgSUDAMD() Config {
	p := hw.DefaultPlatform()
	p.IOMMU.Vendor = iommu.VendorAMD
	return Config{Name: "sa", Mode: UnderSUD, Platform: p}
}
func cfgSUDNoACS() Config {
	p := hw.DefaultPlatform()
	p.ACS = pci.ACS{}
	return Config{Name: "sn", Mode: UnderSUD, Platform: p}
}

func run(t *testing.T, f func(Config) (Outcome, error), cfg Config, wantCompromised bool) Outcome {
	t.Helper()
	o, err := f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Compromised != wantCompromised {
		t.Fatalf("%s under %s: compromised=%v, want %v (%s)",
			o.Attack, cfg.Name, o.Compromised, wantCompromised, o.Detail)
	}
	return o
}

func TestDMAWriteAttack(t *testing.T) {
	// Trusted driver: the attack succeeds (the Linux baseline has no
	// defence). Under SUD the IOMMU confines it.
	run(t, DMAWrite, cfgKernel(), true)
	o := run(t, DMAWrite, cfgSUD(), false)
	if o.Detail == "IOMMU faults: 0" {
		t.Fatal("confinement without IOMMU faults is suspicious")
	}
}

func TestDMAReadAttack(t *testing.T) {
	run(t, DMARead, cfgKernel(), true)
	run(t, DMARead, cfgSUD(), false)
}

func TestP2PDMAAttack(t *testing.T) {
	// §3.2.2: ACS closes peer-to-peer DMA; without ACS (or on legacy
	// PCI) even SUD cannot stop it — which is why SUD requires PCIe+ACS.
	run(t, P2PDMA, cfgKernel(), true)
	run(t, P2PDMA, cfgSUD(), false)
	run(t, P2PDMA, cfgSUDNoACS(), true)
}

func TestMSIForgeStormMatrix(t *testing.T) {
	// The paper's own machine (Intel, no interrupt remapping): livelock,
	// cannot be prevented (§5.2). With interrupt remapping or on AMD,
	// the storm is put down (§6).
	run(t, MSIForgeStorm, cfgSUD(), true)
	oRemap := run(t, MSIForgeStorm, cfgSUDRemap(), false)
	oAMD := run(t, MSIForgeStorm, cfgSUDAMD(), false)
	_ = oRemap
	_ = oAMD
}

func TestDeviceIRQFloodMaskedBySUD(t *testing.T) {
	// A device-raised interrupt flood with an unresponsive driver:
	// in-kernel it pins the CPU; SUD masks the MSI after the second
	// unacknowledged interrupt (§3.2.2).
	run(t, DeviceIRQFlood, cfgKernel(), true)
	run(t, DeviceIRQFlood, cfgSUD(), false)
}

func TestConfigEscapeFiltered(t *testing.T) {
	run(t, ConfigEscape, cfgKernel(), true)
	o := run(t, ConfigEscape, cfgSUD(), false)
	_ = o
}

func TestExhaustionBoundedByRlimit(t *testing.T) {
	run(t, Exhaustion, cfgKernel(), true)
	run(t, Exhaustion, cfgSUD(), false)
}

func TestRingFloodIsolatedPerQueue(t *testing.T) {
	// A wedged queue on a multi-queue channel: the trusted baseline
	// wedges its callers; under SUD the ring overflows with a bounded
	// error while the control ring and sibling queues keep running
	// (§3.1.1 generalised to N rings).
	run(t, RingFlood, cfgKernel(), true)
	o := run(t, RingFlood, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	// Channel isolation is transport-level: it must hold on every
	// platform flavour, IOMMU or not.
	run(t, RingFlood, cfgSUDRemap(), false)
	run(t, RingFlood, cfgSUDAMD(), false)
	run(t, RingFlood, cfgSUDNoACS(), false)
}

func TestRSSSteerClampedAndScoped(t *testing.T) {
	// A malicious driver rewriting its RSS redirection table: in-kernel
	// there is no boundary; under SUD the device decode clamps
	// out-of-range entries and steering stays scoped to the attacker's
	// own NIC — a sibling driver process keeps receiving even with every
	// flow collapsed onto one ring.
	run(t, RSSSteer, cfgKernel(), true)
	o := run(t, RSSSteer, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	// Steering confinement is register-decode + process scoping: it must
	// hold on every platform flavour.
	run(t, RSSSteer, cfgSUDRemap(), false)
	run(t, RSSSteer, cfgSUDAMD(), false)
	run(t, RSSSteer, cfgSUDNoACS(), false)
}

func TestBlkRedirectConfinedUnderEverySUDConfig(t *testing.T) {
	// A malicious block driver forging completion references, submitting
	// out-of-range LBAs and aiming DMA at kernel pages: the trusted
	// baseline is compromised by construction; under SUD the defensive
	// completion decode, the device's LBA clamp and the IOMMU confine it
	// on every platform flavour — and the data read back through k.Blk
	// after an honest restart is never attacker-substituted.
	run(t, BlkRedirect, cfgKernel(), true)
	o := run(t, BlkRedirect, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, BlkRedirect, cfgSUDRemap(), false)
	run(t, BlkRedirect, cfgSUDAMD(), false)
	run(t, BlkRedirect, cfgSUDNoACS(), false)
}

func TestDriverReviveTransparentUnderEverySUDConfig(t *testing.T) {
	// kill -9 of a supervised driver process mid-saturation: the trusted
	// baseline has no recovery story (a driver crash is a kernel crash);
	// under SUD the shadow layer restarts the process, the restarted
	// driver adopts the surviving kernel objects, the in-flight block log
	// replays under the original tags, and stale-epoch completions from
	// the dead incarnation are rejected — on every platform flavour.
	run(t, DriverRevive, cfgKernel(), true)
	o := run(t, DriverRevive, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, DriverRevive, cfgSUDRemap(), false)
	run(t, DriverRevive, cfgSUDAMD(), false)
	run(t, DriverRevive, cfgSUDNoACS(), false)
}

func TestFlappingLiarConfinedUnderEverySUDConfig(t *testing.T) {
	// A crash-looping driver betting on unbounded restarts (or on a
	// lifetime counter poisoned by old isolated faults), and a flush liar
	// betting on counter laundering across incarnations: the trusted
	// baseline is a reboot loop by construction; under SUD the sliding
	// restart window, the backoff ladder and the evidence observer
	// converge on quarantine — the device survives down, parked work
	// fails with ErrDown, and the sibling driver's throughput stays in
	// band — on every platform flavour.
	run(t, FlappingLiar, cfgKernel(), true)
	o := run(t, FlappingLiar, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, FlappingLiar, cfgSUDRemap(), false)
	run(t, FlappingLiar, cfgSUDAMD(), false)
	run(t, FlappingLiar, cfgSUDNoACS(), false)
}

func TestRunMatrixCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow")
	}
	out, err := RunMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 17*len(Configs()) {
		t.Fatalf("matrix has %d outcomes", len(out))
	}
	// Every outcome under the trusted-driver baseline must be
	// compromised; every outcome under SUD+remap must be confined.
	for _, o := range out {
		if o.Config == "Linux (trusted driver)" && !o.Compromised {
			t.Errorf("baseline not compromised: %s", o)
		}
		if o.Config == "SUD, Intel + int-remap" && o.Compromised {
			t.Errorf("hardened config compromised: %s", o)
		}
		if o.String() == "" {
			t.Error("empty outcome string")
		}
	}
}

func TestPageSquatConfinedUnderEverySUDConfig(t *testing.T) {
	// A malicious driver abusing the page-flip ownership protocol:
	// dribbling partial coverage to drain the pool, storing through stale
	// mappings of flipped pages, and re-doorbelling references into pages
	// the kernel owns. The trusted baseline is compromised by construction
	// (ownership never transfers); under SUD every squat leaves evidence
	// instead of effect and the sibling queue's throughput stays within
	// ±15% of an unattacked run — on every platform flavour.
	run(t, PageSquat, cfgKernel(), true)
	o := run(t, PageSquat, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, PageSquat, cfgSUDRemap(), false)
	run(t, PageSquat, cfgSUDAMD(), false)
	run(t, PageSquat, cfgSUDNoACS(), false)
}

func TestQueueBreachConfinedUnderEverySUDConfig(t *testing.T) {
	// A compromised queue naming a sibling queue's buffer and the kernel
	// secret in its descriptors: the trusted baseline shares one address
	// space across every queue (compromised by construction); under SUD
	// each queue's DMA engine walks only its own (BDF, stream) sub-domain,
	// so both references fault at the walk, the queue's own control write
	// still lands, and a surgical RevokeQueueDMA leaves the queue unable
	// to fetch even its own descriptors — on every platform flavour.
	run(t, QueueBreach, cfgKernel(), true)
	o := run(t, QueueBreach, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, QueueBreach, cfgSUDRemap(), false)
	run(t, QueueBreach, cfgSUDAMD(), false)
	run(t, QueueBreach, cfgSUDNoACS(), false)
}

func TestNoisyNeighborConfinedUnderEverySUDConfig(t *testing.T) {
	// The matrix re-run through the tenant plane: four KV tenants, one per
	// driver queue, and tenant 1's queue turns hostile three ways (wedged
	// ring, breached sub-domain, durability lie). The trusted baseline is
	// compromised by construction — one bad queue is every tenant's outage.
	// Under SUD every leg must convict the fault while the sibling tenants'
	// p99 stays inside the ±15% band — on every platform flavour.
	if testing.Short() {
		t.Skip("three testbeds per config is slow")
	}
	run(t, NoisyNeighbor, cfgKernel(), true)
	o := run(t, NoisyNeighbor, cfgSUD(), false)
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
	run(t, NoisyNeighbor, cfgSUDRemap(), false)
	run(t, NoisyNeighbor, cfgSUDAMD(), false)
	run(t, NoisyNeighbor, cfgSUDNoACS(), false)
}

func TestTOCTOUPageFlip(t *testing.T) {
	// The §3.1.2 race against the zero-copy path: the rewrite attempt goes
	// through the driver's legal access path and must fault on the revoked
	// page, with zero bytes guard-copied for the flipped page.
	o, err := TOCTOUPageFlip()
	if err != nil {
		t.Fatal(err)
	}
	if o.Compromised {
		t.Fatalf("page flip failed to confine the rewrite: %s", o.Detail)
	}
	if o.Detail == "" {
		t.Fatal("no detail recorded")
	}
}

func TestTOCTOUGuardCopy(t *testing.T) {
	// With the fused guard copy (SUD's design) the swapped packet never
	// reaches the firewalled service; without it, the attack lands.
	o, err := TOCTOU(ethproxy.GuardFused)
	if err != nil {
		t.Fatal(err)
	}
	if o.Compromised {
		t.Fatalf("guard copy failed: %s", o.Detail)
	}
	o, err = TOCTOU(ethproxy.GuardNone)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Compromised {
		t.Fatalf("insecure zero-copy variant not compromised: %s", o.Detail)
	}
}

func TestFlushLieAttack(t *testing.T) {
	// Trusted driver: a durability lie is silent corruption with kernel
	// privileges. Under SUD (every platform flavour) the forged barrier
	// completions are rejected and the lie is attributed to the driver by
	// the issued-vs-executed accounting.
	run(t, FlushLie, cfgKernel(), true)
	for _, cfg := range []Config{cfgSUD(), cfgSUDRemap(), cfgSUDAMD(), cfgSUDNoACS()} {
		o := run(t, FlushLie, cfg, false)
		if o.Detail == "" {
			t.Fatal("no attribution detail")
		}
	}
}
