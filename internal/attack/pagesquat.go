package attack

import (
	"fmt"

	"sud/internal/drivers/e1000e"
	"sud/internal/mem"
	"sud/internal/netperf"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sim"
	"sud/internal/uchan"
)

// PageSquat is the zero-copy fast path's resource attack: a malicious driver
// tries to abuse the page-flip ownership protocol itself. It (1) dribbles
// slot-0-only references so pages enter the lent set without ever flipping,
// betting the proxy forgets to return partially-covered pages and the pool
// drains; (2) posts a fully-tiled batch to force a flip, then stores through
// its stale mapping of the now-kernel-owned page; and (3) re-doorbells
// references into the flipped page, trying to get the kernel to deliver from
// memory it owns. All of it lands on queue 0 of a live two-queue receive
// workload, so the verdict is measured, not asserted: the sibling queue's
// delivered-frame count must stay within ±15% of an unattacked run of the
// same scenario, and every squat attempt must show up as recorded evidence
// (revoked-page faults, revoked-reference drops) rather than as kernel
// effect.
//
// A trusted in-kernel driver is compromised by construction: its buffers
// stay writable after delivery because kernel memory has a single owner.
func PageSquat(cfg Config) (Outcome, error) {
	if cfg.Mode == InKernel {
		return Outcome{
			Attack:      "page-flip squatting",
			Config:      cfg.Name,
			Compromised: true,
			Detail:      "trusted driver: delivered buffers remain driver-writable; ownership never transfers",
		}, nil
	}

	baseline, _, err := pageSquatRun(cfg, false)
	if err != nil {
		return Outcome{}, err
	}
	attacked, tb, err := pageSquatRun(cfg, true)
	if err != nil {
		return Outcome{}, err
	}

	baseQ1 := baseline.q1Frames
	if baseQ1 < 100 {
		return Outcome{}, fmt.Errorf("attack: sibling queue idle in the baseline run (%d frames) — RSS did not spread the flows", baseQ1)
	}
	ratio := float64(attacked.q1Frames) / float64(baseQ1)

	// The squats must have been exercised and must have left evidence:
	// flips happened, the post-flip stores faulted, and the re-doorbelled
	// references were dropped as revoked — otherwise the run says nothing.
	eth, df := tb.EthProc.Eth, tb.EthProc.DF
	if eth.PagesFlipped == 0 || attacked.storeFaults == 0 || eth.RxRevokedRef == 0 || df.RevokedFaults == 0 {
		return Outcome{}, fmt.Errorf("attack: squat rounds left no evidence (flipped=%d storeFaults=%d revokedRefs=%d)",
			eth.PagesFlipped, attacked.storeFaults, eth.RxRevokedRef)
	}

	o := Outcome{Attack: "page-flip squatting", Config: cfg.Name}
	switch {
	case ratio < 0.85 || ratio > 1.15:
		o.Compromised = true
		o.Detail = fmt.Sprintf("sibling queue disturbed: %.0f%% of baseline throughput (outside the ±15%% band)", ratio*100)
	case attacked.rxFrames == 0:
		o.Compromised = true
		o.Detail = "attacked run delivered nothing — the squat starved the receive path"
	default:
		o.Detail = fmt.Sprintf("confined: sibling at %.0f%% of baseline, %d squat stores faulted, %d revoked refs dropped, %d recycle upcalls kept the pool whole",
			ratio*100, attacked.storeFaults, eth.RxRevokedRef, eth.RecycleUpcalls)
	}
	return o, nil
}

// pageSquatResult carries the per-run measurements PageSquat compares.
type pageSquatResult struct {
	q1Frames    uint64 // frames the proxy delivered on the sibling queue
	rxFrames    uint64 // datagrams the application received in total
	storeFaults int    // post-flip driver stores that faulted
}

// pageSquatRun boots the two-queue zero-copy receive scenario and runs it
// for a fixed measured span; with attacked set, queue 0 additionally takes a
// squat round every 200 µs (dribble, flip + stale store, re-doorbell).
func pageSquatRun(cfg Config, attacked bool) (pageSquatResult, *netperf.MultiFlowTestbed, error) {
	tb, err := netperf.NewMultiFlowTestbedFlip(2, cfg.Platform)
	if err != nil {
		return pageSquatResult{}, nil, err
	}
	var res pageSquatResult

	if attacked {
		// The squat scratch is the q0 TX buffer pool: driver-owned DMA
		// pages (so references into them validate, and flips genuinely
		// revoke driver memory) that the receive direction never uses,
		// and that sit outside every RX ring's pool — so the honest
		// driver rightly ignores them when they come back on the recycle
		// lane, and the proxy must keep the accounting straight anyway.
		var pool mem.Addr
		poolPages := e1000e.RingSize * e1000e.BufSize / mem.PageSize
		for _, a := range tb.EthProc.DF.Allocs() {
			if !a.Coherent && a.Pages == poolPages {
				pool = a.IOVA
				break
			}
		}
		if pool == 0 {
			return pageSquatResult{}, nil, fmt.Errorf("attack: TX buffer pool not found among the driver's allocations")
		}

		round := 0
		const rounds = 24
		var squat func()
		squat = func() {
			if round >= rounds {
				return
			}
			flipPage := pool + mem.Addr(round)*mem.PageSize
			dribblePage := pool + mem.Addr(poolPages/2+round)*mem.PageSize
			round++

			// (1) Dribble: a lone slot-0 reference can never tile its
			// page, so it guard-copies — and the page must still come
			// back on the recycle lane, or dribbling would drain the
			// pool one page per message.
			_ = tb.EthProc.Chan.DownQ(0, uchan.Msg{
				Op: ethproxy.OpNetifRxBatch,
				Data: ethproxy.EncodeRxBatch([]ethproxy.RxRef{
					{IOVA: uint64(dribblePage), Len: 60},
				}),
			})

			// (2) Force a flip with a fully-tiled batch, then store
			// through the stale mapping — the driver's window onto the
			// page is gone, so the store must fault and be recorded.
			refs := make([]ethproxy.RxRef, 0, mem.PageSize/ethproxy.RxSlotSize)
			for off := 0; off < mem.PageSize; off += ethproxy.RxSlotSize {
				refs = append(refs, ethproxy.RxRef{IOVA: uint64(flipPage) + uint64(off), Len: 60})
			}
			_ = tb.EthProc.Chan.DownQ(0, uchan.Msg{
				Op:   ethproxy.OpNetifRxBatch,
				Data: ethproxy.EncodeRxBatch(refs),
			})
			tb.EthProc.Chan.Flush()
			if _, err := tb.EthProc.DF.DriverTouch(flipPage, 64, true); err != nil {
				res.storeFaults++
			}

			// (3) Re-doorbell references into the flipped page: the
			// kernel owns it now, so each reference must drop as
			// revoked, never deliver.
			_ = tb.EthProc.Chan.DownQ(0, uchan.Msg{
				Op:   ethproxy.OpNetifRxBatch,
				Data: ethproxy.EncodeRxBatch(refs),
			})
			tb.EthProc.Chan.Flush()

			tb.M.Loop.After(200*sim.Microsecond, squat)
		}
		// First round lands after warmup, inside the measured span.
		tb.M.Loop.After(3*sim.Millisecond, squat)
	}

	opt := netperf.Options{
		Warmup: 2 * sim.Millisecond, Window: 5 * sim.Millisecond,
		MinWindows: 3, MaxWindows: 3,
	}
	r, err := netperf.MultiFlowDir(tb, 4, netperf.DirRX, opt)
	if err != nil {
		return pageSquatResult{}, nil, err
	}
	res.q1Frames = tb.EthProc.Eth.RxQueueFrames[1]
	res.rxFrames = uint64(r.RxKpps * 1000)
	return res, tb, nil
}
