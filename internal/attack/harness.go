package attack

import (
	"bytes"
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/mem"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// Mode selects how the malicious driver is hosted.
type Mode int

const (
	// InKernel is the Linux baseline: the malicious driver is trusted.
	InKernel Mode = iota
	// UnderSUD hosts the malicious driver in an untrusted process.
	UnderSUD
)

func (m Mode) String() string {
	if m == UnderSUD {
		return "SUD"
	}
	return "in-kernel"
}

// secretPattern is the kernel data the exfiltration attack tries to leak.
var secretPattern = []byte("SUD-KERNEL-SECRET-0123456789-SUD-KERNEL-SECRET-0123456789------")

// canaryByte fills the kernel integrity page.
const canaryByte = 0x5A

// wirePeer captures every frame the compromised NIC emits and can flood
// frames at it.
type wirePeer struct {
	loop     *sim.Loop
	link     *ethlink.Link
	captured [][]byte
}

func (p *wirePeer) LinkDeliver(f []byte) { p.captured = append(p.captured, f) }

// flood schedules n raw frames at the DUT, spaced by interval.
func (p *wirePeer) flood(n int, frame []byte, interval sim.Duration) {
	for i := 0; i < n; i++ {
		p.loop.After(sim.Duration(i)*interval, func() {
			_ = p.link.Send(1, frame)
		})
	}
}

// sawSecret reports whether any captured frame contains the secret.
func (p *wirePeer) sawSecret() bool {
	for _, f := range p.captured {
		if bytes.Contains(f, secretPattern) {
			return true
		}
	}
	return false
}

// Rig is one attack testbed: machine, kernel, malicious driver on the
// primary NIC, a victim second device, a kernel canary page and a kernel
// secret page.
type Rig struct {
	Mode   Mode
	M      *hw.Machine
	K      *kernel.Kernel
	NIC    *e1000.NIC
	Victim *e1000.NIC
	Link   *ethlink.Link
	Peer   *wirePeer
	Evil   *EvilDriver
	Proc   *sudml.Process // nil for InKernel

	Canary mem.Addr
	Secret mem.Addr
}

// VictimBAR is the second device's register window.
const VictimBAR = 0xFEB40000

// victimScratch is a plain-storage register offset inside the victim's BAR
// used to detect peer-to-peer writes.
const victimScratch = 0x5800

// NewRig builds a rig for the given hosting mode and platform.
func NewRig(mode Mode, plat hw.Platform) (*Rig, error) {
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000,
		[6]byte{2, 0, 0, 0, 0, 1}, e1000.DefaultParams())
	m.AttachDevice(nic)
	victim := e1000.New(m.Loop, pci.MakeBDF(1, 1, 0), VictimBAR,
		[6]byte{2, 0, 0, 0, 0, 2}, e1000.DefaultParams())
	victim.Config().Write(pci.CfgCommand, 2, pci.CmdMemSpace)
	m.AttachDevice(victim)

	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &wirePeer{loop: m.Loop, link: link}
	link.Connect(nic, peer)
	nic.AttachLink(link, 0)

	// Kernel canary and secret pages.
	canary, ok := m.Alloc.AllocPages(1)
	if !ok {
		return nil, fmt.Errorf("attack: out of memory")
	}
	m.Mem.MustWrite(canary, bytes.Repeat([]byte{canaryByte}, mem.PageSize))
	secret, ok := m.Alloc.AllocPages(1)
	if !ok {
		return nil, fmt.Errorf("attack: out of memory")
	}
	m.Mem.MustWrite(secret, secretPattern)

	r := &Rig{
		Mode: mode, M: m, K: k, NIC: nic, Victim: victim,
		Link: link, Peer: peer, Evil: NewEvil(),
		Canary: canary, Secret: secret,
	}
	switch mode {
	case InKernel:
		if _, err := k.BindInKernel(r.Evil, nic); err != nil {
			return nil, err
		}
	case UnderSUD:
		proc, err := sudml.Start(k, nic, r.Evil, "evil", 1337)
		if err != nil {
			return nil, err
		}
		r.Proc = proc
	}
	return r, nil
}

// CanaryIntact re-reads the canary page.
func (r *Rig) CanaryIntact() bool {
	buf := make([]byte, mem.PageSize)
	if err := r.M.Mem.Read(r.Canary, buf); err != nil {
		return false
	}
	for _, b := range buf {
		if b != canaryByte {
			return false
		}
	}
	return true
}

// VictimScratch reads the victim device's scratch register.
func (r *Rig) VictimScratch() uint32 {
	return uint32(r.Victim.MMIORead(0, victimScratch, 4))
}

// EvilVector returns the interrupt vector the host assigned to the evil
// driver (readable through filtered config space — reads are harmless).
func (r *Rig) EvilVector() (uint8, error) {
	inst := r.Evil.Instance()
	capOff := inst.env.FindCapability(pci.CapIDMSI)
	if capOff == 0 {
		return 0, fmt.Errorf("attack: no MSI capability")
	}
	data, err := inst.env.ConfigRead(capOff+8, 2)
	if err != nil {
		return 0, err
	}
	return uint8(data), nil
}
