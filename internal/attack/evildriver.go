// Package attack reproduces the paper's security evaluation (§5.2): a
// malicious device driver — running either as a trusted in-kernel driver
// (the Linux baseline) or as an untrusted SUD process — attempts DMA
// attacks, peer-to-peer DMA, MSI forgery/storms, liveness attacks and
// confinement escapes, against machines configured like §5.2's (Intel
// without interrupt remapping), §6's (interrupt remapping enabled, AMD), and
// a legacy PCI bus.
//
// Each attack reports whether the system was compromised; the matrix of
// outcomes is the reproduction of the paper's security claims.
package attack

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/api"
	"sud/internal/mem"
)

// EvilDriver is a malicious device driver for the e1000 NIC. It probes like
// the real e1000e (so either host will load it), then misuses its hardware
// access on command: pointing DMA descriptors at memory it does not own,
// directing device writes at the MSI window, and ignoring every protocol
// the kernel expects of it.
type EvilDriver struct {
	// inst is filled at probe.
	inst *EvilInstance
}

// NewEvil returns the malicious driver module.
func NewEvil() *EvilDriver { return &EvilDriver{} }

// Name implements api.Driver (it lies, of course).
func (d *EvilDriver) Name() string { return "e1000e" }

// Match implements api.Driver.
func (d *EvilDriver) Match(vendor, device uint16) bool {
	return vendor == 0x8086 && device == 0x10D3
}

// Probe implements api.Driver: look like a well-behaved driver long enough
// to be granted the device.
func (d *EvilDriver) Probe(env api.Env) (api.Instance, error) {
	inst := &EvilInstance{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return nil, err
	}
	inst.mmio = m
	m.Write32(e1000.RegCTRL, e1000.CtrlSLU)
	// A small descriptor ring for the attacks.
	ring, err := env.AllocCoherent(64 * e1000.DescSize)
	if err != nil {
		return nil, err
	}
	inst.ring = ring
	d.inst = inst
	return inst, nil
}

// Instance returns the probed instance.
func (d *EvilDriver) Instance() *EvilInstance { return d.inst }

// EvilInstance is the live malicious driver.
type EvilInstance struct {
	env  api.Env
	mmio api.MMIO
	ring api.DMABuf

	// Interrupts counts upcalls/interrupts the driver received.
	Interrupts int
}

// Remove implements api.Instance.
func (e *EvilInstance) Remove() {}

// writeDesc writes one 16-byte descriptor into the attack ring.
func (e *EvilInstance) writeDesc(i int, bufAddr mem.Addr, length int, cmd byte) error {
	var d [e1000.DescSize]byte
	for b := 0; b < 8; b++ {
		d[b] = byte(uint64(bufAddr) >> (8 * b))
	}
	d[8] = byte(length)
	d[9] = byte(length >> 8)
	d[11] = cmd
	return e.ring.Write(i*e1000.DescSize, d[:])
}

// ArmRxAt points `count` RX descriptors at consecutive targets starting at
// target and enables the receiver: every arriving frame is DMA-written over
// the target — the arbitrary-DMA-write attack. stride 0 reuses the same
// address.
func (e *EvilInstance) ArmRxAt(target mem.Addr, count int, stride int) error {
	if count > 63 {
		return fmt.Errorf("attack: ring too small for %d descriptors", count)
	}
	for i := 0; i < count; i++ {
		if err := e.writeDesc(i, target+mem.Addr(i*stride), 0, 0); err != nil {
			return err
		}
	}
	m := e.mmio
	m.Write32(e1000.RegRDBAL, uint32(e.ring.BusAddr()))
	m.Write32(e1000.RegRDBAH, uint32(uint64(e.ring.BusAddr())>>32))
	m.Write32(e1000.RegRDLEN, 64*e1000.DescSize)
	m.Write32(e1000.RegRDH, 0)
	m.Write32(e1000.RegRDT, uint32(count))
	m.Write32(e1000.RegRCTL, e1000.RctlEN)
	return nil
}

// RearmRx resets the RX ring head/tail so the storm can continue (a live
// malicious driver keeps re-arming).
func (e *EvilInstance) RearmRx(count int) {
	e.mmio.Write32(e1000.RegRDH, 0)
	e.mmio.Write32(e1000.RegRDT, uint32(count))
}

// QueueTxFrom points a TX descriptor at target and triggers transmission:
// the device reads `length` bytes of (hopefully secret) memory and puts
// them on the wire — the DMA-read exfiltration attack.
func (e *EvilInstance) QueueTxFrom(target mem.Addr, length int) error {
	if err := e.writeDesc(32, target, length, e1000.TxCmdEOP|e1000.TxCmdRS); err != nil {
		return err
	}
	m := e.mmio
	m.Write32(e1000.RegTDBAL, uint32(e.ring.BusAddr()+32*e1000.DescSize))
	m.Write32(e1000.RegTDBAH, uint32(uint64(e.ring.BusAddr())>>32))
	m.Write32(e1000.RegTDLEN, 16*e1000.DescSize)
	m.Write32(e1000.RegTDH, 0)
	m.Write32(e1000.RegTDT, 0)
	m.Write32(e1000.RegTCTL, e1000.TctlEN)
	m.Write32(e1000.RegTDT, 1)
	return nil
}

// EnableIRQStorm requests the interrupt and unmasks every cause but never
// acknowledges anything — combined with traffic, the device interrupts as
// fast as the throttle allows while the "handler" does no work.
func (e *EvilInstance) EnableIRQStorm() error {
	if err := e.env.RequestIRQ(func() {
		e.Interrupts++
		// Maliciously: no ICR read, no ack — and under SUD, no IRQAck
		// downcall.
	}); err != nil {
		return err
	}
	e.mmio.Write32(e1000.RegITR, 0) // no throttling
	e.mmio.Write32(e1000.RegIMS, 0xFFFFFFFF)
	return nil
}

// TryConfigAttack attempts the §3.2.1 configuration-space escapes: moving
// BAR0 over another device and hijacking the MSI address. It returns the
// number of writes that took effect (0 under SUD).
func (e *EvilInstance) TryConfigAttack(newBAR uint32, newMSIAddr uint32) int {
	took := 0
	// Remember, then try to move, BAR0.
	before, _ := e.env.ConfigRead(0x10, 4)
	if err := e.env.ConfigWrite(0x10, 4, newBAR); err == nil {
		after, _ := e.env.ConfigRead(0x10, 4)
		if after != before {
			took++
		}
	}
	// Redirect MSI to an arbitrary address.
	if capOff := e.env.FindCapability(0x05); capOff != 0 {
		beforeMSI, _ := e.env.ConfigRead(capOff+4, 4)
		if err := e.env.ConfigWrite(capOff+4, 4, newMSIAddr); err == nil {
			afterMSI, _ := e.env.ConfigRead(capOff+4, 4)
			if afterMSI != beforeMSI && afterMSI == newMSIAddr {
				took++
			}
		}
	}
	return took
}

// HoardDMA allocates DMA memory until the kernel refuses — the resource
// exhaustion attack bounded by rlimits (§4.1). It returns the number of
// pages obtained.
func (e *EvilInstance) HoardDMA(maxAllocs int) int {
	pages := 0
	for i := 0; i < maxAllocs; i++ {
		buf, err := e.env.AllocCaching(16 * 4096)
		if err != nil {
			break
		}
		pages += buf.Size() / 4096
	}
	return pages
}
