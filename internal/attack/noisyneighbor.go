package attack

import (
	"fmt"

	"sud/internal/drivers/api"
	"sud/internal/hw"
	"sud/internal/sim"
	"sud/internal/sudml/policy"
	"sud/internal/tenantperf"
	"sud/internal/uchan"
)

// The noisy-neighbour scenario runs the attack matrix *through* the tenant
// plane: four tenants drive the sharded KV service, each pinned to one
// driver queue end to end, and tenant 1's queue turns hostile three ways —
// its NIC ring service thread wedges under kernel-offered load (the
// RingFlood leg), its block sub-domain raises DMA faults (the QueueBreach
// leg), and its storage driver lies about durability (the FlushLie leg).
// The claim under test is the tenant-isolation restatement of §3/§6: the
// fault is convicted (load shed + wedge verdict, surgical queue recovery,
// or durability-lie quarantine) while the sibling tenants' p99 latency
// stays inside the SLO band.
const (
	noisyTenants  = 4
	noisyConns    = 4
	noisyQueues   = 4
	noisyAttacker = 1 // tenant 1 <-> NIC queue 1 <-> block queue 1 <-> stream 2

	// VictimBand is the sibling-tenant p99 drift tolerance while the
	// attacker's queue is being convicted.
	VictimBand = 0.15
)

// Leg measurement windows. The during window for the ring-flood leg stays
// under the supervisor's 5ms check period so the wedge verdict (a full
// process restart) lands in the conviction phase, after the victim SLOs are
// measured under the live wedge.
const (
	noisyWarmup  = 10 * sim.Millisecond
	noisyPre     = 6 * sim.Millisecond
	noisyDuring  = 6 * sim.Millisecond
	noisyHangWin = 4 * sim.Millisecond
	noisyConvict = 25 * sim.Millisecond
)

func noisyTestbed(plat hw.Platform, blkDrv api.Driver, blkQueues int) (*tenantperf.Testbed, error) {
	return tenantperf.NewTestbed(tenantperf.Config{
		Mode:        tenantperf.ModeSUD,
		Tenants:     noisyTenants,
		Conns:       noisyConns,
		Queues:      noisyQueues,
		Platform:    plat,
		BlockDriver: blkDrv,
		BlockQueues: blkQueues,
	})
}

// NoisyLegRingFlood wedges the attacker tenant's NIC queue service thread
// while the kernel keeps offering that ring traffic. Confinement: the ring
// sheds load with a bounded error, the attacker tenant alone goes dark, and
// the supervisor's per-queue progress watermark convicts the wedge.
func NoisyLegRingFlood(plat hw.Platform) (tenantperf.NoisyResult, error) {
	res := tenantperf.NoisyResult{Leg: "ringflood", Attacker: noisyAttacker}
	tb, err := noisyTestbed(plat, nil, 0)
	if err != nil {
		return res, err
	}
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(noisyWarmup)
	pre := tb.MeasureWindow(noisyPre)

	proc := tb.NetSup.Proc()
	proc.HangQueue(noisyAttacker)
	overflowed := false
	for i := 0; i < 2*uchan.RingSlots; i++ {
		if err := proc.Chan.ASend(noisyAttacker, uchan.Msg{Op: 0xDEAD}); err == uchan.ErrRingFull {
			overflowed = true
			break
		}
	}
	during := tb.MeasureWindow(noisyHangWin)
	// Conviction phase — the victim SLOs above were measured under the
	// live wedge. While load flows, the attacker's own retransmits keep
	// producing RX upcalls on the hung ring, which the per-queue watermark
	// rightly reads as progress; once the load stops, the ring sits with a
	// full backlog and a frozen served counter, and two consecutive
	// zero-progress checks grade the wedge and restart the driver.
	tb.Client.Stop()
	tb.M.Loop.RunFor(noisyConvict)

	res.VictimPreP99US, res.VictimP99US, res.MaxDriftFrac = tenantperf.VictimDrift(pre, during, noisyAttacker)
	convictedByRestart := tb.NetSup.Restarts >= 1 || tb.NetSup.Quarantined
	attackerDark := during[noisyAttacker].Replies == 0
	res.Convicted = overflowed && attackerDark && convictedByRestart
	res.Detail = fmt.Sprintf("ring shed load=%v, attacker replies %d->%d, restarts %d, drops %d",
		overflowed, pre[noisyAttacker].Replies, during[noisyAttacker].Replies,
		tb.NetSup.Restarts, proc.Chan.QueueStats(noisyAttacker).DroppedFull)
	return res, nil
}

// NoisyLegQueueBreach raises DMA faults on the attacker tenant's block
// sub-domain (stream q+1); the supervisor answers with a surgical
// single-queue recovery. The attacker's in-flight writes drain and replay on
// its own queue; siblings never park.
func NoisyLegQueueBreach(plat hw.Platform) (tenantperf.NoisyResult, error) {
	res := tenantperf.NoisyResult{Leg: "queuebreach", Attacker: noisyAttacker}
	tb, err := noisyTestbed(plat, nil, 0)
	if err != nil {
		return res, err
	}
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(noisyWarmup)
	pre := tb.MeasureWindow(noisyPre)

	// The breached queue's DMA engine walks garbage: sub-domain faults on
	// the attacker's stream of the storage controller.
	bdf := tb.Ctrl.BDF()
	for i := 0; i < 4; i++ {
		_, _, _ = tb.M.IOMMU.TranslateQ(bdf, noisyAttacker+1, 0xDEAD0000, true)
	}
	during := tb.MeasureWindow(noisyDuring)
	tb.M.Loop.RunFor(noisyConvict)

	res.VictimPreP99US, res.VictimP99US, res.MaxDriftFrac = tenantperf.VictimDrift(pre, during, noisyAttacker)
	res.Convicted = tb.BlkSup.QueueRecoveries >= 1
	res.Detail = fmt.Sprintf("surgical queue recoveries %d, verdict %v, attacker persist errs %d",
		tb.BlkSup.QueueRecoveries, tb.BlkSup.LastVerdict, tb.Srv.Tenant(noisyAttacker).PersistErrs)
	return res, nil
}

// NoisyLegFlushLie serves the tenants' persistence through the
// durability-lying block driver. An fsync burst exposes the lie (barriers
// acked, zero device flushes); the policy engine quarantines the driver; and
// the service degrades to memory-only — acknowledged, counted, and inside
// the victim band — instead of going down.
func NoisyLegFlushLie(plat hw.Platform) (tenantperf.NoisyResult, error) {
	res := tenantperf.NoisyResult{Leg: "flushlie", Attacker: noisyAttacker}
	tb, err := noisyTestbed(plat, NewEvilFlush(), 1)
	if err != nil {
		return res, err
	}
	tb.Client.Start()
	defer tb.Client.Stop()
	tb.M.Loop.RunFor(noisyWarmup)
	pre := tb.MeasureWindow(noisyPre)

	// fsync-style barriers: the liar acks them instantly, the device
	// executes none — the discrepancy is the evidence. The during window
	// opens before any check can fire, so it brackets the conviction
	// itself: service under the lie, the quarantine verdict landing, and
	// the first degraded (memory-only) replies afterwards.
	for i := 0; i < 3; i++ {
		if err := tb.Dev.Flush(func(error) {}); err != nil {
			return res, err
		}
	}
	during := tb.MeasureWindow(noisyDuring)
	tb.M.Loop.RunFor(noisyConvict) // settle: restart blip drains, counters final

	res.VictimPreP99US, res.VictimP99US, res.MaxDriftFrac = tenantperf.VictimDrift(pre, during, noisyAttacker)
	degraded := tb.Srv.Tenant(0).PersistErrs+tb.Srv.Tenant(noisyAttacker).PersistErrs > 0
	res.Convicted = tb.BlkSup.Quarantined && tb.BlkSup.LastVerdict == policy.Quarantine && degraded
	res.Detail = fmt.Sprintf("quarantined=%v verdict %v, served-from-memory errs %d",
		tb.BlkSup.Quarantined, tb.BlkSup.LastVerdict, totalPersistErrs(tb))
	return res, nil
}

func totalPersistErrs(tb *tenantperf.Testbed) uint64 {
	var n uint64
	for t := 0; t < tb.Srv.Tenants(); t++ {
		n += tb.Srv.Tenant(t).PersistErrs
	}
	return n
}

// RunNoisyLegs runs all three legs on one platform and returns their rows —
// the BENCH_tenant.json noisy section.
func RunNoisyLegs(plat hw.Platform) ([]tenantperf.NoisyResult, error) {
	var out []tenantperf.NoisyResult
	for _, leg := range []func(hw.Platform) (tenantperf.NoisyResult, error){
		NoisyLegRingFlood, NoisyLegQueueBreach, NoisyLegFlushLie,
	} {
		r, err := leg(plat)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// NoisyNeighbor is matrix row 17: the attack matrix re-run through the
// tenant-facing service. Under SUD every leg must convict the hostile queue
// with every sibling tenant's p99 inside the ±15% band. A trusted in-kernel
// driver has no queue boundary to convict: a wedged service thread or lying
// storage driver is every tenant's outage.
func NoisyNeighbor(cfg Config) (Outcome, error) {
	o := Outcome{Attack: "noisy neighbour (KV tenants)", Config: cfg.Name}
	if cfg.Mode == InKernel {
		o.Compromised = true
		o.Detail = "trusted driver: one wedged or lying queue is every tenant's outage; nothing convicts it"
		return o, nil
	}
	legs, err := RunNoisyLegs(cfg.Platform)
	if err != nil {
		return Outcome{}, err
	}
	worst := 0.0
	for _, l := range legs {
		if l.MaxDriftFrac > worst {
			worst = l.MaxDriftFrac
		}
		switch {
		case !l.Convicted:
			o.Compromised = true
			o.Detail = fmt.Sprintf("%s leg unconvicted: %s", l.Leg, l.Detail)
			return o, nil
		case l.MaxDriftFrac > VictimBand:
			o.Compromised = true
			o.Detail = fmt.Sprintf("%s leg broke the victim SLO: p99 %.1fµs -> %.1fµs (%.0f%% > %.0f%%)",
				l.Leg, l.VictimPreP99US, l.VictimP99US, l.MaxDriftFrac*100, VictimBand*100)
			return o, nil
		}
	}
	o.Detail = fmt.Sprintf("3 legs convicted, worst victim p99 drift %.1f%% (band %.0f%%)",
		worst*100, VictimBand*100)
	return o, nil
}
