package netperf

import (
	"testing"

	"sud/internal/hw"
)

func multiFlowRunFlip(t *testing.T, queues, flows int, dir Direction) MultiFlowResult {
	t.Helper()
	tb, err := NewMultiFlowTestbedFlip(queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiFlowDir(tb, flows, dir, quick())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiFlowRXFlipZeroCopy is the receive half of the zero-copy claim:
// under GuardPageFlip a wire-bound Q=4 flood delivers almost every frame by
// page ownership transfer — the guard-copied bytes per frame collapse from
// a full frame to near zero (only batch-boundary partial pages fall back to
// the fused copy) while the delivered rate stays at the copy-guard level.
func TestMultiFlowRXFlipZeroCopy(t *testing.T) {
	copyGuard := multiFlowRunDir(t, 4, 6, DirRX, nil)
	flip := multiFlowRunFlip(t, 4, 6, DirRX)

	if copyGuard.GuardBytesPerFrame < 80 {
		t.Fatalf("copy guard only copied %.1f B/frame, want full frames", copyGuard.GuardBytesPerFrame)
	}
	if flip.GuardBytesPerFrame > 0.1*copyGuard.GuardBytesPerFrame {
		t.Fatalf("page flip still copying %.1f B/frame (copy guard %.1f)",
			flip.GuardBytesPerFrame, copyGuard.GuardBytesPerFrame)
	}
	if flip.PagesFlipped == 0 {
		t.Fatal("no pages flipped: the fast path never engaged")
	}
	if flip.RxKpps < 0.95*copyGuard.RxKpps {
		t.Fatalf("flip RX %.1f Kpkt/s regressed vs copy guard %.1f", flip.RxKpps, copyGuard.RxKpps)
	}
}

// TestMultiFlowTXFlipCoalescesDoorbells is the submit-side claim: with TDT
// writes staged to the end of each upcall drain, a Q=4 transmit load rings
// well under one device doorbell per packet, and the delivered rate does not
// regress.
func TestMultiFlowTXFlipCoalescesDoorbells(t *testing.T) {
	copyGuard := multiFlowRunDir(t, 4, 6, DirTX, nil)
	flip := multiFlowRunFlip(t, 4, 6, DirTX)

	if copyGuard.TxDoorbellsPerPkt < 0.8 {
		t.Fatalf("uncoalesced path already at %.2f doorbells/pkt", copyGuard.TxDoorbellsPerPkt)
	}
	if flip.TxDoorbellsPerPkt > 0.7*copyGuard.TxDoorbellsPerPkt {
		t.Fatalf("staged TDT not coalescing: %.2f vs %.2f doorbells/pkt",
			flip.TxDoorbellsPerPkt, copyGuard.TxDoorbellsPerPkt)
	}
	if flip.EthKpps < 0.95*copyGuard.EthKpps {
		t.Fatalf("flip TX %.1f Kpkt/s regressed vs %.1f", flip.EthKpps, copyGuard.EthKpps)
	}
}

// TestMultiFlowFlipRecycleKeepsRingFed runs the RX flood long enough that
// every ring page must have been flipped and recycled many times over: if
// the recycle lane ever wedged, the 128-page ring would drain and delivery
// would collapse well below the copy-guard rate.
func TestMultiFlowFlipRecycleKeepsRingFed(t *testing.T) {
	tb, err := NewMultiFlowTestbedFlip(2, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiFlowDir(tb, 4, DirRX, quick())
	if err != nil {
		t.Fatal(err)
	}
	eth := tb.EthProc.Eth
	if eth.RecycleUpcalls == 0 || eth.RecycleAcks == 0 {
		t.Fatalf("recycle lane dead: %d upcalls, %d acks", eth.RecycleUpcalls, eth.RecycleAcks)
	}
	if eth.RecycleBadAck != 0 || eth.RecycleStaleAck != 0 {
		t.Fatalf("recycle acks rejected: %d bad, %d stale", eth.RecycleBadAck, eth.RecycleStaleAck)
	}
	// Far more pages flipped than the ring holds = sustained reuse.
	if eth.PagesFlipped < 1000 {
		t.Fatalf("only %d pages flipped over the run", eth.PagesFlipped)
	}
	if res.RxKpps < 100 {
		t.Fatalf("RX collapsed to %.1f Kpkt/s: ring starving", res.RxKpps)
	}
}
