package netperf

import (
	"errors"
	"fmt"
	"math"

	"sud/internal/kernel/netstack"
	"sud/internal/sim"
)

// Application-level costs on the DUT (the netperf/netserver processes).
const (
	// costAppSend is the netperf send loop + syscall entry per sendto.
	costAppSend sim.Duration = 650
	// costAppRecv is the per-datagram receive work (amortised recvfrom).
	costAppRecv sim.Duration = 450
	// costAppRecvTCP is per-segment receive work with the big (87380 B)
	// receive buffers of the TCP test (fewer syscalls per byte).
	costAppRecvTCP sim.Duration = 250
	// appWakeLatency is the netserver process wakeup latency for the RR
	// ping-pong (the 4 µs §5.1 effect applies to the app too).
	appWakeLatency sim.Duration = 1500
)

// Options controls measurement windows and stopping.
type Options struct {
	Warmup     sim.Duration
	Window     sim.Duration
	MinWindows int
	MaxWindows int
	// Confidence: stop when the 99% CI is within ±HalfWidthFrac of the
	// mean (netperf's "accurate to 5%" = ±2.5%).
	HalfWidthFrac float64
}

// DefaultOptions mirror the paper's netperf configuration scaled to
// simulation-friendly windows.
func DefaultOptions() Options {
	return Options{
		Warmup:        30 * sim.Millisecond,
		Window:        200 * sim.Millisecond,
		MinWindows:    3,
		MaxWindows:    10,
		HalfWidthFrac: 0.025,
	}
}

// Result is one Figure 8 cell pair: throughput and CPU utilisation.
type Result struct {
	Benchmark string
	Mode      Mode
	Value     float64 // throughput in Unit
	Unit      string
	CPU       float64 // fraction of machine capacity, 0..1
	Windows   int
	CIRel     float64 // relative 99% CI half-width actually achieved
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s %-17s %9.1f %-13s %5.1f%% CPU", r.Benchmark, r.Mode, r.Value, r.Unit, r.CPU*100)
}

// Student-t 99% two-sided critical values by degrees of freedom.
var tTable99 = []float64{0, 63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169}

func t99(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tTable99) {
		return tTable99[df]
	}
	return 2.9
}

// measure runs windows until the CI converges. sample must return the
// window's throughput value; CPU is read from the machine's accounts.
func measure(tb *Testbed, opt Options, sample func(window sim.Duration) float64) (mean, cpu, ciRel float64, n int) {
	tb.M.Loop.RunFor(opt.Warmup)
	var vals, cpus []float64
	for len(vals) < opt.MaxWindows {
		start := tb.M.Now()
		tb.M.CPU.Reset(start)
		v := sample(opt.Window)
		vals = append(vals, v)
		cpus = append(cpus, tb.M.CPU.Utilization(tb.M.Now()))
		if len(vals) >= opt.MinWindows {
			m, hw := meanCI(vals)
			if m > 0 && hw/m <= opt.HalfWidthFrac {
				break
			}
		}
	}
	m, hw := meanCI(vals)
	cm, _ := meanCI(cpus)
	rel := 0.0
	if m > 0 {
		rel = hw / m
	}
	return m, cm, rel, len(vals)
}

func meanCI(vals []float64) (mean, halfWidth float64) {
	n := float64(len(vals))
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean = sum / n
	if len(vals) < 2 {
		return mean, math.Inf(1)
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, t99(len(vals)-1) * sd / math.Sqrt(n)
}

// TCPStream measures TCP receive throughput (Mbit/s): the remote streams
// MSS-sized segments at the DUT; 87380-byte receive buffers, delayed ACKs.
func TCPStream(tb *Testbed, opt Options) (Result, error) {
	recv, err := tb.K.Net.TCPListen(PortStream, func(n int) {
		tb.K.Acct.Charge(costAppRecvTCP)
	})
	if err != nil {
		return Result{}, err
	}
	defer tb.K.Net.TCPCloseListener(PortStream)
	tb.Remote.StartTCP()
	defer tb.Remote.StopTCP()

	mean, cpu, ci, n := measure(tb, opt, func(w sim.Duration) float64 {
		before := recv.RxBytes
		tb.M.Loop.RunFor(w)
		return float64(recv.RxBytes-before) * 8 / w.Seconds() / 1e6
	})
	return Result{Benchmark: "TCP_STREAM", Mode: tb.Mode, Value: mean, Unit: "Mbit/s", CPU: cpu, Windows: n, CIRel: ci}, nil
}

// UDPStreamTX measures DUT transmit rate for 64-byte datagrams (Kpkt/s,
// measured as delivered at the remote, as netperf reports).
func UDPStreamTX(tb *Testbed, opt Options) (Result, error) {
	payload := make([]byte, 64)
	stopped := false
	waiting := false
	var send func()
	send = func() {
		if stopped {
			return
		}
		before := tb.K.Acct.Busy()
		tb.K.Acct.Charge(costAppSend)
		err := tb.K.Net.UDPSendTo(tb.Ifc, RemoteMAC, RemoteIP, 50000, PortSink, payload)
		serial := tb.K.Acct.Busy() - before
		if err != nil {
			if errors.Is(err, netstack.ErrQueueStopped) {
				waiting = true // resume on WakeQueue
				return
			}
			// Transient failure: retry shortly.
			tb.M.Loop.After(10*sim.Microsecond, send)
			return
		}
		// The send path is serial on the app's core: the next sendto
		// issues after the path's CPU time has elapsed.
		tb.M.Loop.After(serial, send)
	}
	tb.Ifc.OnWake = func() {
		if waiting && !stopped {
			waiting = false
			// Blocked sender wakeup (scheduler cost + latency).
			tb.K.Acct.Charge(sim.CostProcessWakeup / 2)
			tb.M.Loop.After(appWakeLatency, send)
		}
	}
	defer func() { stopped = true; tb.Ifc.OnWake = nil }()
	send()

	mean, cpu, ci, n := measure(tb, opt, func(w sim.Duration) float64 {
		before := tb.Remote.SinkPkts
		tb.M.Loop.RunFor(w)
		return float64(tb.Remote.SinkPkts-before) / w.Seconds() / 1e3
	})
	return Result{Benchmark: "UDP_STREAM TX", Mode: tb.Mode, Value: mean, Unit: "Kpkt/s", CPU: cpu, Windows: n, CIRel: ci}, nil
}

// UDPStreamRX measures DUT receive rate for 64-byte datagrams (Kpkt/s
// delivered to the application).
func UDPStreamRX(tb *Testbed, opt Options) (Result, error) {
	sock, err := tb.K.Net.UDPBind(PortFlood, func(p []byte, _ netstack.IP, _ uint16) {
		tb.K.Acct.Charge(costAppRecv)
	})
	if err != nil {
		return Result{}, err
	}
	defer tb.K.Net.UDPClose(PortFlood)
	// Offered load: the Optiplex's transmit capability, above the DUT's
	// receive capacity so the DUT path is the bottleneck.
	tb.Remote.StartFlood(64, 330_000)
	defer tb.Remote.StopFlood()

	mean, cpu, ci, n := measure(tb, opt, func(w sim.Duration) float64 {
		before := sock.RxDatagrams
		tb.M.Loop.RunFor(w)
		return float64(sock.RxDatagrams-before) / w.Seconds() / 1e3
	})
	return Result{Benchmark: "UDP_STREAM RX", Mode: tb.Mode, Value: mean, Unit: "Kpkt/s", CPU: cpu, Windows: n, CIRel: ci}, nil
}

// UDPRR measures request/response transactions per second with 64-byte
// payloads — the latency-bound worst case for SUD (§5.1).
func UDPRR(tb *Testbed, opt Options) (Result, error) {
	_, err := tb.K.Net.UDPBind(PortRR, func(p []byte, srcIP netstack.IP, srcPort uint16) {
		// netserver wakes from recv, processes, and echoes.
		reply := make([]byte, len(p))
		copy(reply, p)
		tb.M.Loop.After(appWakeLatency, func() {
			tb.K.Acct.Charge(sim.CostProcessWakeup)
			tb.K.Acct.Charge(costAppSend)
			_ = tb.K.Net.UDPSendTo(tb.Ifc, RemoteMAC, srcIP, PortRR, srcPort, reply)
		})
	})
	if err != nil {
		return Result{}, err
	}
	defer tb.K.Net.UDPClose(PortRR)
	tb.Remote.StartRR(64)
	defer tb.Remote.StopRR()

	mean, cpu, ci, n := measure(tb, opt, func(w sim.Duration) float64 {
		before := tb.Remote.RRCount
		tb.M.Loop.RunFor(w)
		return float64(tb.Remote.RRCount-before) / w.Seconds()
	})
	return Result{Benchmark: "UDP_RR", Mode: tb.Mode, Value: mean, Unit: "Tx/s", CPU: cpu, Windows: n, CIRel: ci}, nil
}
