package netperf

import (
	"math"
	"testing"

	"sud/internal/hw"
	"sud/internal/sim"
)

// quick returns fast measurement options for tests.
func quick() Options {
	return Options{
		Warmup:        10 * sim.Millisecond,
		Window:        50 * sim.Millisecond,
		MinWindows:    3,
		MaxWindows:    4,
		HalfWidthFrac: 0.05,
	}
}

func bed(t *testing.T, mode Mode) *Testbed {
	t.Helper()
	tb, err := NewTestbed(mode, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTCPStreamKernelSaturatesLink(t *testing.T) {
	tb := bed(t, ModeKernel)
	res, err := TCPStream(tb, quick())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 941 Mbit/s — a saturated Gigabit link.
	if res.Value < 900 || res.Value > 950 {
		t.Fatalf("TCP_STREAM kernel = %.1f Mbit/s, want ~941", res.Value)
	}
	if res.CPU <= 0.02 || res.CPU > 0.5 {
		t.Fatalf("CPU = %.1f%%, implausible", res.CPU*100)
	}
}

func TestTCPStreamSUDSameThroughput(t *testing.T) {
	k := bed(t, ModeKernel)
	s := bed(t, ModeSUD)
	rk, err := TCPStream(k, quick())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := TCPStream(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8's headline: same throughput, modest CPU overhead.
	if rs.Value < rk.Value*0.97 {
		t.Fatalf("SUD TCP throughput %.1f vs kernel %.1f: more than 3%% down", rs.Value, rk.Value)
	}
	if rs.CPU <= rk.CPU {
		t.Fatalf("SUD CPU %.1f%% not above kernel %.1f%%", rs.CPU*100, rk.CPU*100)
	}
	if rs.CPU > rk.CPU*2 {
		t.Fatalf("SUD TCP CPU %.1f%% more than 2x kernel %.1f%%", rs.CPU*100, rk.CPU*100)
	}
}

func TestUDPStreamTXRates(t *testing.T) {
	k := bed(t, ModeKernel)
	rk, err := UDPStreamTX(k, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 317 Kpkt/s kernel. Engine-bound; expect the same decade.
	if rk.Value < 250 || rk.Value > 400 {
		t.Fatalf("kernel UDP TX = %.1f Kpkt/s, want ~317", rk.Value)
	}
	s := bed(t, ModeSUD)
	rs, err := UDPStreamTX(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Value < rk.Value*0.9 {
		t.Fatalf("SUD TX rate %.1f more than 10%% below kernel %.1f", rs.Value, rk.Value)
	}
	if rs.CPU <= rk.CPU {
		t.Fatal("SUD TX CPU not above kernel")
	}
}

func TestUDPStreamRXRates(t *testing.T) {
	k := bed(t, ModeKernel)
	rk, err := UDPStreamRX(k, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 238 Kpkt/s kernel (device receive engine bound).
	if rk.Value < 180 || rk.Value > 300 {
		t.Fatalf("kernel UDP RX = %.1f Kpkt/s, want ~238", rk.Value)
	}
	s := bed(t, ModeSUD)
	rs, err := UDPStreamRX(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Value < rk.Value*0.9 {
		t.Fatalf("SUD RX rate %.1f more than 10%% below kernel %.1f", rs.Value, rk.Value)
	}
	if rs.CPU <= rk.CPU {
		t.Fatal("SUD RX CPU not above kernel")
	}
}

func TestUDPRRRatesAndCPUDoubling(t *testing.T) {
	k := bed(t, ModeKernel)
	rk, err := UDPRR(k, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 9590 Tx/s kernel at ~5% CPU.
	if rk.Value < 8000 || rk.Value > 11000 {
		t.Fatalf("kernel UDP_RR = %.1f Tx/s, want ~9590", rk.Value)
	}
	s := bed(t, ModeSUD)
	rs, err := UDPRR(s, quick())
	if err != nil {
		t.Fatal(err)
	}
	// Rate within a few percent; CPU roughly doubles (the paper's 2x).
	if rs.Value < rk.Value*0.93 {
		t.Fatalf("SUD RR rate %.1f more than 7%% below kernel %.1f", rs.Value, rk.Value)
	}
	ratio := rs.CPU / rk.CPU
	if ratio < 1.4 || ratio > 3.0 {
		t.Fatalf("SUD RR CPU ratio = %.2fx (SUD %.1f%%, kernel %.1f%%), want ~2x",
			ratio, rs.CPU*100, rk.CPU*100)
	}
}

func TestConfidenceMachinery(t *testing.T) {
	m, hw99 := meanCI([]float64{10, 10, 10})
	if m != 10 || hw99 != 0 {
		t.Fatalf("meanCI deterministic = %v ± %v", m, hw99)
	}
	m, hw99 = meanCI([]float64{5})
	if m != 5 || hw99 <= 1e308 {
		// single sample: infinite CI
		t.Fatalf("single sample CI = %v", hw99)
	}
	if !math.IsInf(t99(0), 1) {
		t.Fatal("t99(0) should be +Inf")
	}
	if t99(1) != 63.657 || t99(100) != 2.9 {
		t.Fatal("t table lookup wrong")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Benchmark: "TCP_STREAM", Mode: ModeKernel, Value: 941, Unit: "Mbit/s", CPU: 0.12}
	if r.String() == "" {
		t.Fatal("empty result string")
	}
	if ModeKernel.String() == ModeSUD.String() {
		t.Fatal("mode strings identical")
	}
}

func TestTCPSenderGoBackN(t *testing.T) {
	// Lose one mid-stream segment on the wire; the receiver's duplicate
	// ACKs must trigger a go-back-N retransmission and the stream must
	// still deliver every byte in order.
	tb := bed(t, ModeKernel)
	var got uint64
	recv, err := tb.K.Net.TCPListen(PortStream, func(n int) { got += uint64(n) })
	if err != nil {
		t.Fatal(err)
	}
	tb.Remote.StartTCP()
	tb.M.Loop.RunFor(10 * sim.Millisecond)
	tb.Remote.DropNextSegment = true
	tb.M.Loop.RunFor(90 * sim.Millisecond)
	tb.Remote.StopTCP()
	if tb.Remote.Retrans == 0 {
		t.Fatal("no retransmissions despite FIFO overrun")
	}
	if recv.OutOfOrder == 0 {
		t.Fatal("receiver never saw the gap")
	}
	if got == 0 || got != recv.RxBytes {
		t.Fatalf("app bytes %d vs receiver bytes %d", got, recv.RxBytes)
	}
	// Everything ACKed was genuinely delivered in order (cumulative ACK
	// property of the receiver).
	if tb.Remote.TCPAcked == 0 || tb.Remote.TCPAcked > recv.RxBytes+MSS {
		t.Fatalf("acked %d vs delivered %d", tb.Remote.TCPAcked, recv.RxBytes)
	}
}

func TestFloodOfferedRateHonored(t *testing.T) {
	tb := bed(t, ModeKernel)
	tb.Remote.StartFlood(64, 100_000)
	tb.M.Loop.RunFor(50 * sim.Millisecond)
	tb.Remote.StopFlood()
	// 100 Kpps for 50 ms ≈ 5000 frames (±1 tick).
	if tb.Remote.FloodSent < 4990 || tb.Remote.FloodSent > 5010 {
		t.Fatalf("flood sent %d frames, want ~5000", tb.Remote.FloodSent)
	}
}
