package netperf

import (
	"fmt"

	"sud/internal/devices/e1000"
	"sud/internal/drivers/e1000e"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

// Mode selects the driver configuration under test (the two rows of each
// Figure 8 benchmark).
type Mode int

const (
	// ModeKernel runs the e1000e as a trusted in-kernel driver.
	ModeKernel Mode = iota
	// ModeSUD runs the identical driver in an untrusted SUD process.
	ModeSUD
)

func (m Mode) String() string {
	if m == ModeSUD {
		return "Untrusted driver"
	}
	return "Kernel driver"
}

// Testbed is the paper's two-machine setup: the DUT (Thinkpad X301 model)
// connected to a fast wire-level peer (Optiplex model) by a Gigabit link.
type Testbed struct {
	Mode   Mode
	M      *hw.Machine
	K      *kernel.Kernel
	NIC    *e1000.NIC
	Link   *ethlink.Link
	Remote *RemoteHost
	Ifc    *netstack.Iface
	Proc   *sudml.Process // nil in ModeKernel
}

// NewTestbed builds and boots a testbed; the interface is up and carrier is
// established.
func NewTestbed(mode Mode, plat hw.Platform) (*Testbed, error) {
	m := hw.NewMachine(plat)
	k := kernel.New(m)
	dev := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, [6]byte(DUTMAC), e1000.DefaultParams())
	m.AttachDevice(dev)
	link := ethlink.NewGigabit(m.Loop, 300)
	remote := NewRemote(m.Loop, link, 1)
	link.Connect(dev, remote)
	dev.AttachLink(link, 0)

	tb := &Testbed{Mode: mode, M: m, K: k, NIC: dev, Link: link, Remote: remote}
	switch mode {
	case ModeKernel:
		if _, err := k.BindInKernel(e1000e.New(), dev); err != nil {
			return nil, err
		}
	case ModeSUD:
		proc, err := sudml.Start(k, dev, e1000e.New(), "e1000e", 1001)
		if err != nil {
			return nil, err
		}
		tb.Proc = proc
	default:
		return nil, fmt.Errorf("netperf: unknown mode %d", mode)
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		return nil, err
	}
	if err := ifc.Up(DUTIP); err != nil {
		return nil, err
	}
	tb.Ifc = ifc
	m.Loop.RunFor(100 * sim.Microsecond)
	return tb, nil
}
