// Package netperf reproduces the paper's §5.1 evaluation: the four netperf
// benchmarks (TCP_STREAM, UDP_STREAM TX and RX, UDP_RR) run against the
// e1000e driver in both configurations of Figure 8 — trusted in-kernel and
// untrusted under SUD — measuring throughput and CPU utilisation in virtual
// time, with netperf-style confidence-interval stopping ("accurate to 5%
// with 99% confidence").
//
// The remote end of the link models the paper's 2.8 GHz Dell Optiplex at
// wire level: it terminates the benchmark protocols with realistic
// turnaround latencies but consumes no device-under-test CPU.
package netperf

import (
	"encoding/binary"

	"sud/internal/ethlink"
	"sud/internal/kernel/netstack"
	"sud/internal/sim"
)

// Benchmark endpoint addressing.
var (
	DUTMAC    = netstack.MAC{0x00, 0x1B, 0x21, 0x11, 0x22, 0x33}
	RemoteMAC = netstack.MAC{0x00, 0x1B, 0x21, 0x44, 0x55, 0x66}
	DUTIP     = netstack.IP{10, 0, 0, 1}
	RemoteIP  = netstack.IP{10, 0, 0, 2}
)

// Well-known benchmark ports.
const (
	PortRR     = 7    // UDP request/response echo
	PortSink   = 9    // UDP discard (DUT transmit test)
	PortFlood  = 9000 // UDP receive test
	PortStream = 5201 // TCP stream
)

// TCP sender parameters (the remote's side of TCP_STREAM).
const (
	MSS       = 1448
	SendWin   = 64 * 1024
	remotePrt = 40000
)

// RemoteHost is the wire-level peer.
type RemoteHost struct {
	loop *sim.Loop
	link *ethlink.Link
	side int

	// Turnaround is the remote's per-packet processing time (its NIC,
	// stack and application): calibrated so the in-kernel UDP_RR rate
	// lands near the paper's 9590 transactions/s.
	Turnaround sim.Duration

	// --- UDP_RR client state ---
	rrActive  bool
	rrPayload int
	RRCount   uint64 // completed transactions

	// --- UDP sink (DUT transmit test) ---
	SinkPkts  uint64
	SinkBytes uint64

	// --- UDP flood generator (DUT receive test) ---
	floodEvery sim.Duration
	floodStop  bool
	FloodSent  uint64

	// --- multi-flow flood generators (RX scale scenario) ---
	flowsStop bool
	FlowsSent uint64

	// --- TCP sender state ---
	tcpActive bool
	// DropNextSegment simulates wire loss: the next data segment is
	// consumed but never delivered (tests of the go-back-N recovery).
	DropNextSegment bool
	tcpSeq          uint32 // next unsent byte
	tcpBase         uint32 // oldest unacked byte
	lastAck         uint32
	dupAcks         int
	TCPAcked        uint64
	Retrans         uint64
}

// NewRemote attaches a remote host to side `side` of link.
func NewRemote(loop *sim.Loop, link *ethlink.Link, side int) *RemoteHost {
	return &RemoteHost{loop: loop, link: link, side: side, Turnaround: 99 * sim.Microsecond}
}

// LinkDeliver implements ethlink.Endpoint.
func (r *RemoteHost) LinkDeliver(frame []byte) {
	eh, ipPkt, err := netstack.ParseEth(frame)
	if err != nil || eh.EtherType != netstack.EtherTypeIPv4 {
		return
	}
	ih, l4, err := netstack.ParseIPv4(ipPkt)
	if err != nil {
		return
	}
	switch ih.Proto {
	case netstack.ProtoUDP:
		uh, payload, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true)
		if err != nil {
			return
		}
		r.udp(ih, uh, payload)
	case netstack.ProtoTCP:
		th, _, err := netstack.ParseTCP(ih.Src, ih.Dst, l4, true)
		if err != nil {
			return
		}
		r.tcpAck(th)
	}
}

func (r *RemoteHost) udp(ih netstack.IPv4Header, uh netstack.UDPHeader, payload []byte) {
	switch uh.DstPort {
	case remotePrt:
		// Reply to our RR request: transaction complete; fire the next
		// request after client processing time.
		if r.rrActive {
			r.RRCount++
			r.loop.After(r.Turnaround, r.sendRRRequest)
		}
	case PortSink:
		r.SinkPkts++
		r.SinkBytes += uint64(len(payload))
	case PortRR:
		// Generic echo service (the DUT acting as client, e.g. the
		// quickstart example).
		reply := netstack.BuildUDPFrame(RemoteMAC, DUTMAC, ih.Dst, ih.Src, PortRR, uh.SrcPort, payload)
		r.loop.After(r.Turnaround, func() { _ = r.link.Send(r.side, reply) })
	}
}

// --- UDP_RR -------------------------------------------------------------------

// StartRR begins the request/response loop with the given payload size
// (64 bytes in Figure 8).
func (r *RemoteHost) StartRR(payload int) {
	r.rrActive = true
	r.rrPayload = payload
	r.sendRRRequest()
}

// StopRR halts the loop.
func (r *RemoteHost) StopRR() { r.rrActive = false }

func (r *RemoteHost) sendRRRequest() {
	if !r.rrActive {
		return
	}
	req := make([]byte, r.rrPayload)
	binary.BigEndian.PutUint64(req, r.RRCount)
	f := netstack.BuildUDPFrame(RemoteMAC, DUTMAC, RemoteIP, DUTIP, remotePrt, PortRR, req)
	_ = r.link.Send(r.side, f)
}

// --- UDP flood (DUT receive test) ----------------------------------------------

// StartFlood sends `payload`-byte datagrams to the DUT's flood port at the
// given offered rate (packets/s). The paper's sender is the faster machine;
// the DUT's receive path is the bottleneck under test.
func (r *RemoteHost) StartFlood(payload int, pps int) {
	r.floodStop = false
	r.floodEvery = sim.Duration(int64(sim.Second) / int64(pps))
	var tick func()
	buf := make([]byte, payload)
	tick = func() {
		if r.floodStop {
			return
		}
		binary.BigEndian.PutUint64(buf, r.FloodSent)
		f := netstack.BuildUDPFrame(RemoteMAC, DUTMAC, RemoteIP, DUTIP, remotePrt, PortFlood, buf)
		if r.link.Send(r.side, f) == nil {
			r.FloodSent++
		}
		r.loop.After(r.floodEvery, tick)
	}
	tick()
}

// StopFlood halts the generator.
func (r *RemoteHost) StopFlood() { r.floodStop = true }

// StartFloodFlows starts `flows` independent datagram generators, each a
// distinct flow (source ports baseSport..baseSport+flows-1, so RSS steering
// spreads them over the DUT's RX rings) sending `payload`-byte datagrams to
// dport at ppsPerFlow each. The aggregate offered load is meant to exceed
// the DUT's receive capacity; the wire FIFO sheds the excess.
func (r *RemoteHost) StartFloodFlows(payload, ppsPerFlow, flows int, baseSport, dport uint16) {
	r.flowsStop = false
	every := sim.Duration(int64(sim.Second) / int64(ppsPerFlow))
	for i := 0; i < flows; i++ {
		sport := baseSport + uint16(i)
		buf := make([]byte, payload)
		var tick func()
		tick = func() {
			if r.flowsStop {
				return
			}
			binary.BigEndian.PutUint64(buf, r.FlowsSent)
			f := netstack.BuildUDPFrame(RemoteMAC, DUTMAC, RemoteIP, DUTIP, sport, dport, buf)
			if r.link.Send(r.side, f) == nil {
				r.FlowsSent++
			}
			r.loop.After(every, tick)
		}
		tick()
	}
}

// StopFloodFlows halts every flow generator.
func (r *RemoteHost) StopFloodFlows() { r.flowsStop = true }

// --- TCP sender (TCP_STREAM: remote → DUT) --------------------------------------

// StartTCP opens the stream and fills the send window; ACKs from the DUT
// clock further segments (go-back-N on triple duplicate ACK).
func (r *RemoteHost) StartTCP() {
	r.tcpActive = true
	r.tcpSeq = 1 // byte 0 is the SYN
	r.tcpBase = 1
	syn := netstack.BuildTCPFrame(RemoteMAC, DUTMAC, RemoteIP, DUTIP, netstack.TCPHeader{
		SrcPort: remotePrt, DstPort: PortStream, Seq: 0, Flags: netstack.TCPSyn, Window: 0xFFFF,
	}, nil)
	_ = r.link.Send(r.side, syn)
	// Data flows once the SYN is acked (tcpAck pumps).
}

// StopTCP halts the stream.
func (r *RemoteHost) StopTCP() { r.tcpActive = false }

func (r *RemoteHost) tcpAck(th netstack.TCPHeader) {
	if !r.tcpActive || th.Flags&netstack.TCPAck == 0 {
		return
	}
	if th.Ack == r.lastAck {
		r.dupAcks++
		if r.dupAcks >= 3 {
			// Go-back-N: rewind to the ack point.
			r.dupAcks = 0
			r.Retrans++
			r.tcpSeq = th.Ack
		}
	} else if th.Ack > r.lastAck {
		r.TCPAcked += uint64(th.Ack - r.lastAck)
		r.lastAck = th.Ack
		r.tcpBase = th.Ack
		r.dupAcks = 0
	}
	r.pump()
}

// pump sends segments while the window allows.
func (r *RemoteHost) pump() {
	for r.tcpActive && r.tcpSeq-r.tcpBase+MSS <= SendWin {
		if r.DropNextSegment {
			// The wire ate this one; the receiver's duplicate ACKs
			// will bring it back via go-back-N.
			r.DropNextSegment = false
			r.tcpSeq += MSS
			continue
		}
		payload := make([]byte, MSS)
		binary.BigEndian.PutUint32(payload, r.tcpSeq)
		seg := netstack.BuildTCPFrame(RemoteMAC, DUTMAC, RemoteIP, DUTIP, netstack.TCPHeader{
			SrcPort: remotePrt, DstPort: PortStream, Seq: r.tcpSeq,
			Flags: netstack.TCPAck, Window: 0xFFFF,
		}, payload)
		if err := r.link.Send(r.side, seg); err != nil {
			// Sender FIFO full: back off one segment; ACK clocking
			// retries.
			return
		}
		r.tcpSeq += MSS
	}
}
