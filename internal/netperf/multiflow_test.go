package netperf

import (
	"testing"

	"sud/internal/hw"
)

func multiFlowRun(t *testing.T, queues, flows int) MultiFlowResult {
	t.Helper()
	tb, err := NewMultiFlowTestbed(queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiFlow(tb, flows, quick())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiFlowScalesWithQueues is the tentpole claim: the same offered load
// through Q=4 ring pairs (and 4 device TX engines) beats Q=1 decisively,
// while the Q=1 e1000e rate stays at the engine-bound Figure 8 value.
func TestMultiFlowScalesWithQueues(t *testing.T) {
	q1 := multiFlowRun(t, 1, 6)
	q4 := multiFlowRun(t, 4, 6)

	// Q=1 must reproduce the single-queue UDP TX bound (~317 Kpkt/s on
	// the e1000e) — multi-flow offered load cannot exceed the engine.
	if q1.EthKpps < 250 || q1.EthKpps > 400 {
		t.Fatalf("Q=1 e1000e rate = %.1f Kpkt/s, want engine-bound ~317", q1.EthKpps)
	}
	// Q=4 scales the e1000e well beyond double.
	if q4.EthKpps < 2*q1.EthKpps {
		t.Fatalf("Q=4 e1000e rate %.1f not 2x Q=1 rate %.1f", q4.EthKpps, q1.EthKpps)
	}
	if q4.AggregateKpps < 1.3*q1.AggregateKpps {
		t.Fatalf("Q=4 aggregate %.1f not well above Q=1 aggregate %.1f",
			q4.AggregateKpps, q1.AggregateKpps)
	}
	// Both driver processes moved traffic in both runs.
	for _, r := range []MultiFlowResult{q1, q4} {
		if r.Ne2kKpps <= 0 {
			t.Fatalf("ne2k process idle (Q=%d)", r.Queues)
		}
	}
}

// TestMultiFlowSpreadsAcrossQueues verifies flow steering: with more flows
// than queues, every ring pair carries upcalls and pays its own doorbells.
func TestMultiFlowSpreadsAcrossQueues(t *testing.T) {
	res := multiFlowRun(t, 4, 6)
	if len(res.PerQueue) != 4 {
		t.Fatalf("per-queue reports = %d", len(res.PerQueue))
	}
	for _, q := range res.PerQueue {
		if q.Upcalls == 0 {
			t.Fatalf("queue %d carried no upcalls: steering broken", q.Queue)
		}
		if q.Doorbells == 0 {
			t.Fatalf("queue %d rang no doorbells", q.Queue)
		}
	}
	if res.Wakeups == 0 {
		t.Fatal("no wakeups counted")
	}
	if res.CPU <= 0 || res.CPU > 1 {
		t.Fatalf("scale DUT CPU = %.1f%%, want a fraction of %d cores", res.CPU*100, ScaleCores)
	}
}

// TestMultiFlowSingleFlowMatchesFigure8 pins the degenerate case: one flow,
// one queue behaves like the classic UDP_STREAM TX cell.
func TestMultiFlowSingleFlowMatchesFigure8(t *testing.T) {
	res := multiFlowRun(t, 1, 1)
	if res.EthKpps < 250 || res.EthKpps > 400 {
		t.Fatalf("single-flow rate = %.1f Kpkt/s, want ~317", res.EthKpps)
	}
	if res.Ne2kKpps != 0 {
		t.Fatalf("single flow leaked onto the ne2k (%f Kpkt/s)", res.Ne2kKpps)
	}
}
