package netperf

import (
	"testing"

	"sud/internal/hw"
)

func multiFlowRun(t *testing.T, queues, flows int) MultiFlowResult {
	t.Helper()
	return multiFlowRunDir(t, queues, flows, DirTX, nil)
}

func multiFlowRunDir(t *testing.T, queues, flows int, dir Direction, tweak func(*MultiFlowTestbed)) MultiFlowResult {
	t.Helper()
	tb, err := NewMultiFlowTestbed(queues, hw.DefaultPlatform())
	if err != nil {
		t.Fatal(err)
	}
	if tweak != nil {
		tweak(tb)
	}
	res, err := MultiFlowDir(tb, flows, dir, quick())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiFlowScalesWithQueues is the tentpole claim: the same offered load
// through Q=4 ring pairs (and 4 device TX engines) beats Q=1 decisively,
// while the Q=1 e1000e rate stays at the engine-bound Figure 8 value.
func TestMultiFlowScalesWithQueues(t *testing.T) {
	q1 := multiFlowRun(t, 1, 6)
	q4 := multiFlowRun(t, 4, 6)

	// Q=1 must reproduce the single-queue UDP TX bound (~317 Kpkt/s on
	// the e1000e) — multi-flow offered load cannot exceed the engine.
	if q1.EthKpps < 250 || q1.EthKpps > 400 {
		t.Fatalf("Q=1 e1000e rate = %.1f Kpkt/s, want engine-bound ~317", q1.EthKpps)
	}
	// Q=4 scales the e1000e well beyond double.
	if q4.EthKpps < 2*q1.EthKpps {
		t.Fatalf("Q=4 e1000e rate %.1f not 2x Q=1 rate %.1f", q4.EthKpps, q1.EthKpps)
	}
	if q4.AggregateKpps < 1.3*q1.AggregateKpps {
		t.Fatalf("Q=4 aggregate %.1f not well above Q=1 aggregate %.1f",
			q4.AggregateKpps, q1.AggregateKpps)
	}
	// Both driver processes moved traffic in both runs.
	for _, r := range []MultiFlowResult{q1, q4} {
		if r.Ne2kKpps <= 0 {
			t.Fatalf("ne2k process idle (Q=%d)", r.Queues)
		}
	}
}

// TestMultiFlowSpreadsAcrossQueues verifies flow steering: with more flows
// than queues, every ring pair carries upcalls and pays its own doorbells.
func TestMultiFlowSpreadsAcrossQueues(t *testing.T) {
	res := multiFlowRun(t, 4, 6)
	if len(res.PerQueue) != 4 {
		t.Fatalf("per-queue reports = %d", len(res.PerQueue))
	}
	for _, q := range res.PerQueue {
		if q.Upcalls == 0 {
			t.Fatalf("queue %d carried no upcalls: steering broken", q.Queue)
		}
		if q.Doorbells == 0 {
			t.Fatalf("queue %d rang no doorbells", q.Queue)
		}
	}
	if res.Wakeups == 0 {
		t.Fatal("no wakeups counted")
	}
	if res.CPU <= 0 || res.CPU > 1 {
		t.Fatalf("scale DUT CPU = %.1f%%, want a fraction of %d cores", res.CPU*100, ScaleCores)
	}
}

// TestMultiFlowSingleFlowMatchesFigure8 pins the degenerate case: one flow,
// one queue behaves like the classic UDP_STREAM TX cell.
func TestMultiFlowSingleFlowMatchesFigure8(t *testing.T) {
	res := multiFlowRun(t, 1, 1)
	if res.EthKpps < 250 || res.EthKpps > 400 {
		t.Fatalf("single-flow rate = %.1f Kpkt/s, want ~317", res.EthKpps)
	}
	if res.Ne2kKpps != 0 {
		t.Fatalf("single flow leaked onto the ne2k (%f Kpkt/s)", res.Ne2kKpps)
	}
}

// TestMultiFlowNe2kSelfPaces: with the TXP busy-time model in the device,
// the legacy flow self-paces at the card's 10 Mbit/s rate — no harness
// pacing — and still makes progress alongside the e1000e flows.
func TestMultiFlowNe2kSelfPaces(t *testing.T) {
	res := multiFlowRun(t, 2, 4)
	if res.Ne2kKpps <= 1 {
		t.Fatalf("ne2k flow starved: %.1f Kpkt/s", res.Ne2kKpps)
	}
	// 10 Mbit/s of minimum frames is ~14.9 Kpkt/s; the busy-time model
	// must keep the delivered rate at or under the wire's ceiling.
	if res.Ne2kKpps > 15 {
		t.Fatalf("ne2k rate %.1f Kpkt/s exceeds the card's 10 Mbit/s ceiling", res.Ne2kKpps)
	}
}

// TestMultiFlowRXScalesWithQueues is the receive-side tentpole claim: the
// same offered flood through Q=4 RX rings (RSS-steered, one uchan ring per
// RX queue) beats Q=1 by well over the 2.2x acceptance bar, while Q=1 stays
// at the single-engine Figure 8 receive bound.
func TestMultiFlowRXScalesWithQueues(t *testing.T) {
	q1 := multiFlowRunDir(t, 1, 6, DirRX, nil)
	q4 := multiFlowRunDir(t, 4, 6, DirRX, nil)

	// Q=1 must reproduce the single-queue UDP RX bound (~255 Kpkt/s).
	if q1.RxKpps < 200 || q1.RxKpps > 300 {
		t.Fatalf("Q=1 RX rate = %.1f Kpkt/s, want engine-bound ~255", q1.RxKpps)
	}
	if q4.AggregateKpps < 2.2*q1.AggregateKpps {
		t.Fatalf("Q=4 RX aggregate %.1f not >= 2.2x Q=1 %.1f",
			q4.AggregateKpps, q1.AggregateKpps)
	}
	// Every ring carried batched RX downcalls and paid its own doorbells.
	for _, q := range q4.PerQueue {
		if q.Downcalls == 0 {
			t.Fatalf("queue %d carried no RX downcalls: steering broken", q.Queue)
		}
		if q.Doorbells == 0 {
			t.Fatalf("queue %d rang no doorbells", q.Queue)
		}
	}
}

// TestMultiFlowRXBatchingCutsDoorbells is the batched-delivery claim: with
// batch framing and downcall coalescing on, a doorbell delivers tens of
// frames; with both ablated (one message, one doorbell per frame) the ratio
// collapses to ~1 and the per-queue doorbell rate explodes.
func TestMultiFlowRXBatchingCutsDoorbells(t *testing.T) {
	batched := multiFlowRunDir(t, 4, 6, DirRX, nil)
	ablated := multiFlowRunDir(t, 4, 6, DirRX, func(tb *MultiFlowTestbed) {
		tb.EthProc.NoRxBatch = true
		tb.EthProc.Chan.SetNoBatch(true)
	})
	if batched.RxFramesPerDoorbell < 8 {
		t.Fatalf("batched delivery only %.1f frames/doorbell", batched.RxFramesPerDoorbell)
	}
	if ablated.RxFramesPerDoorbell > 1.5 {
		t.Fatalf("ablation still batching: %.1f frames/doorbell", ablated.RxFramesPerDoorbell)
	}
	if batched.RxFramesPerDoorbell < 8*ablated.RxFramesPerDoorbell {
		t.Fatalf("batching cut doorbells by only %.1fx",
			batched.RxFramesPerDoorbell/ablated.RxFramesPerDoorbell)
	}
	var batchedRate, ablatedRate float64
	for _, q := range batched.PerQueue {
		batchedRate += q.DoorbellsPerSec
	}
	for _, q := range ablated.PerQueue {
		ablatedRate += q.DoorbellsPerSec
	}
	if batchedRate*4 > ablatedRate {
		t.Fatalf("per-queue doorbell rate not measurably cut: %.0f/s vs %.0f/s",
			batchedRate, ablatedRate)
	}
}

// TestMultiFlowBidi runs both directions at once: transmit flows and the RX
// flood share the queues, and the aggregate exceeds either direction alone.
func TestMultiFlowBidi(t *testing.T) {
	res := multiFlowRunDir(t, 4, 6, DirBidi, nil)
	if res.EthKpps <= 0 || res.RxKpps <= 0 || res.Ne2kKpps <= 0 {
		t.Fatalf("a direction starved: tx eth %.1f, ne2k %.1f, rx %.1f",
			res.EthKpps, res.Ne2kKpps, res.RxKpps)
	}
	if res.AggregateKpps < 1.3*res.RxKpps {
		t.Fatalf("bidi aggregate %.1f not clearly above RX-only %.1f",
			res.AggregateKpps, res.RxKpps)
	}
}
