package netperf

import (
	"errors"
	"fmt"
	"strings"

	"sud/internal/devices/e1000"
	"sud/internal/devices/ne2k"
	"sud/internal/drivers/e1000e"
	"sud/internal/drivers/ne2kpci"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/proxy/ethproxy"
	"sud/internal/sim"
	"sud/internal/trace"
	"sud/internal/sudml"
)

// Multi-flow scale scenario: K concurrent 64-byte UDP flows spread across Q
// uchan ring pairs and two untrusted driver processes — the multi-queue
// e1000e on eth0 plus the legacy PIO ne2k-pci on eth1 — all on one simulated
// machine. The scenario runs in three directions: transmit (the DUT sends),
// receive (the remote floods K distinct flows, RSS-steered across the DUT's
// RX rings), and bidirectional. It measures what the single-ring transport
// of the paper's Figure 8 cannot: aggregate packet rate when the channel,
// the driver process and the device all scale per queue, in both directions.

// Addressing for the second (ne2k) segment.
var (
	Ne2kMAC    = netstack.MAC{0x00, 0x1B, 0x21, 0x77, 0x88, 0x99}
	Remote2MAC = netstack.MAC{0x00, 0x1B, 0x21, 0xAA, 0xBB, 0xCC}
	DUT2IP     = netstack.IP{10, 0, 1, 1}
	Remote2IP  = netstack.IP{10, 0, 1, 2}
)

// MultiFlowTestbed is the two-NIC, two-driver-process DUT.
type MultiFlowTestbed struct {
	Queues int
	Flip   bool // zero-copy RX path: page-aware e1000e + GuardPageFlip proxy

	M *hw.Machine
	K *kernel.Kernel

	Nic *e1000.NIC // the fast NIC (doorbell ground truth)

	EthProc  *sudml.Process // multi-queue e1000e
	Ne2kProc *sudml.Process // single-queue legacy PIO driver

	EthIfc, Ne2kIfc       *netstack.Iface
	EthRemote, Ne2kRemote *RemoteHost
}

// ScaleCores is the multi-flow DUT's core count: unlike the Figure 8
// reproduction (the dual-core X301), the scale scenario models a
// server-class machine with a core per flow plus headroom, so reported CPU
// stays a fraction of capacity.
const ScaleCores = 16

// NewMultiFlowTestbed boots a machine with both NICs driven by untrusted
// processes; the e1000e uses `queues` TX queues end to end (device engines,
// driver rings, uchan ring pairs, proxy slot partitions).
func NewMultiFlowTestbed(queues int, plat hw.Platform) (*MultiFlowTestbed, error) {
	return newMultiFlowTestbed(queues, false, plat)
}

// NewMultiFlowTestbedFlip is NewMultiFlowTestbed with the zero-copy RX fast
// path on the e1000e: the driver is built page-aware (descriptor re-arm
// deferred to the recycle lane, TDT staged to drain end) and its proxy
// guards received frames by page-flip instead of the fused copy. The ne2k
// segment is untouched — a legacy PIO driver has no pages to flip.
func NewMultiFlowTestbedFlip(queues int, plat hw.Platform) (*MultiFlowTestbed, error) {
	return newMultiFlowTestbed(queues, true, plat)
}

func newMultiFlowTestbed(queues int, flip bool, plat hw.Platform) (*MultiFlowTestbed, error) {
	if queues < 1 {
		queues = 1
	}
	if queues > e1000.MaxTxQueues {
		queues = e1000.MaxTxQueues
	}
	if plat.Cores == 0 {
		plat.Cores = ScaleCores
	}
	m := hw.NewMachine(plat)
	k := kernel.New(m)

	// Fast NIC: multi-queue e1000 on its own gigabit segment.
	nic := e1000.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000, [6]byte(DUTMAC), e1000.MultiQueueParams(queues))
	m.AttachDevice(nic)
	link := ethlink.NewGigabit(m.Loop, 300)
	remote := NewRemote(m.Loop, link, 1)
	link.Connect(nic, remote)
	nic.AttachLink(link, 0)

	// Legacy NIC: NE2000 PIO card on a second segment.
	card := ne2k.New(m.Loop, pci.MakeBDF(1, 1, 0), 0xC000, [6]byte(Ne2kMAC))
	m.AttachDevice(card)
	link2 := ethlink.NewGigabit(m.Loop, 300)
	remote2 := NewRemote(m.Loop, link2, 1)
	link2.Connect(card, remote2)
	card.AttachLink(link2, 0)

	tb := &MultiFlowTestbed{
		Queues: queues, Flip: flip, M: m, K: k, Nic: nic,
		EthRemote: remote, Ne2kRemote: remote2,
	}
	drv := e1000e.NewQ(queues)
	if flip {
		drv = e1000e.NewFlipQ(queues)
	}
	var err error
	if tb.EthProc, err = sudml.StartQ(k, nic, drv, "e1000e", 1001, queues); err != nil {
		return nil, err
	}
	if flip {
		// Strictly paired with NewFlipQ: the page-aware driver re-arms RX
		// descriptors only on recycle, which only the GuardPageFlip proxy
		// drives.
		tb.EthProc.Eth.GuardMode = ethproxy.GuardPageFlip
	}
	if tb.Ne2kProc, err = sudml.Start(k, card, ne2kpci.New(), "ne2k-pci", 1002); err != nil {
		return nil, err
	}
	// The ne2k asked for eth0 too; the netdev core renamed it eth1.
	if tb.EthIfc, err = k.Net.Iface("eth0"); err != nil {
		return nil, err
	}
	if tb.Ne2kIfc, err = k.Net.Iface("eth1"); err != nil {
		return nil, err
	}
	if err := tb.EthIfc.Up(DUTIP); err != nil {
		return nil, err
	}
	if err := tb.Ne2kIfc.Up(DUT2IP); err != nil {
		return nil, err
	}
	m.Loop.RunFor(100 * sim.Microsecond)
	return tb, nil
}

// Direction selects which way the multi-flow scenario pushes traffic.
type Direction int

const (
	// DirTX: the DUT transmits K flows (the PR-1 scenario).
	DirTX Direction = iota
	// DirRX: the remote floods K distinct flows at the DUT; RSS steering
	// fans them across the e1000e's RX rings.
	DirRX
	// DirBidi runs both at once.
	DirBidi
)

func (d Direction) String() string {
	switch d {
	case DirRX:
		return "rx"
	case DirBidi:
		return "bidi"
	default:
		return "tx"
	}
}

// MarshalJSON records the direction by name, keeping the perf-trajectory
// JSON self-describing.
func (d Direction) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON parses the recorded name (the benchgate regression gate
// reads trajectory files back). An unknown name is an error — a corrupted
// baseline must fail the load, not silently band against the wrong row.
func (d *Direction) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"tx"`:
		*d = DirTX
	case `"rx"`:
		*d = DirRX
	case `"bidi"`:
		*d = DirBidi
	default:
		return fmt.Errorf("netperf: unknown direction %s", b)
	}
	return nil
}

// RX flood parameters: per-flow offered rate (the aggregate is far above
// both the wire and the DUT's receive capacity, so the DUT path is the
// bottleneck under test) and the flows' source-port base (distinct ports =
// distinct RSS steering).
const (
	rxFloodPerFlowPPS = 250_000
	rxFloodBaseSport  = 53000
)

// QueueReport is one uchan ring pair's transport activity over the
// measurement span.
type QueueReport struct {
	Queue                                               int
	Upcalls, Downcalls, Doorbells, Wakeups, SpinPickups uint64
	DoorbellsPerSec                                     float64

	// P50US / P99US are end-to-end latency percentiles for this queue
	// over the measured span, from the always-on histograms: device DMA →
	// stack delivery for received frames (merged with transmit
	// submit → credit), or block dispatch → completion for block I/O.
	// Zero when the queue carried no measured traffic.
	P50US float64 `json:",omitempty"`
	P99US float64 `json:",omitempty"`
}

// MultiFlowResult aggregates the scenario's measurements.
type MultiFlowResult struct {
	Queues, Flows int
	Direction     Direction

	AggregateKpps float64 // delivered, both devices and directions
	EthKpps       float64 // DUT transmit, delivered at the eth remote
	Ne2kKpps      float64 // DUT transmit, delivered at the ne2k remote
	RxKpps        float64 // DUT receive, delivered to the application
	CPU           float64

	// Wakeups counts driver service-thread wakes across all rings and
	// the urgent lane (the §5.1 cost multi-queue amortises per ring).
	Wakeups uint64

	// RxFramesPerDoorbell is how many received frames one driver-side
	// doorbell delivered on average — the batched-delivery payoff. With
	// batching ablated (one message and one doorbell per frame) it falls
	// toward 1. The denominator is every downcall doorbell on the eth
	// channel, so in the bidi direction TX completions share it and the
	// ratio reads lower than the pure-RX run — it is the channel's
	// overall doorbell efficiency, not an RX-only number.
	RxFramesPerDoorbell float64
	// MaxDownBatch is the deepest downcall batch one doorbell flushed.
	MaxDownBatch uint64

	// Zero-copy fast-path metrics (Flip testbeds; zero otherwise).
	// GuardBytesPerFrame is how many payload bytes the proxy guard-copied
	// per frame delivered to the application — the full frame under the
	// fused guard, ~0 under GuardPageFlip where only batch-boundary
	// partial pages fall back to the copy. TxDoorbellsPerPkt is TDT MMIO
	// arrivals at the device per packet delivered on the eth segment (the
	// submit-side coalescing metric — ~1 uncoalesced, below it when
	// staged tails flush once per upcall batch). PagesFlipped counts RX
	// pages whose ownership transferred in the measured span.
	Flip               bool    `json:",omitempty"`
	GuardBytesPerFrame float64 `json:",omitempty"`
	TxDoorbellsPerPkt  float64 `json:",omitempty"`
	PagesFlipped       uint64  `json:",omitempty"`

	// LatP50US / LatP99US are the per-queue latency distributions merged
	// across all queues — the headline end-to-end numbers BENCH_latency.json
	// carries. Populated only under SUD (the proxies record the histograms).
	LatP50US float64 `json:",omitempty"`
	LatP99US float64 `json:",omitempty"`

	PerQueue []QueueReport
	Windows  int
	CIRel    float64
}

func (r MultiFlowResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MULTI_FLOW %s Q=%d K=%d %9.1f Kpkt/s aggregate (tx e1000e %.1f + ne2k %.1f, rx %.1f) %5.1f%% CPU, %d wakes",
		r.Direction, r.Queues, r.Flows, r.AggregateKpps, r.EthKpps, r.Ne2kKpps, r.RxKpps, r.CPU*100, r.Wakeups)
	if r.Direction != DirTX {
		fmt.Fprintf(&b, ", %.1f rx frames/doorbell (max batch %d)", r.RxFramesPerDoorbell, r.MaxDownBatch)
	}
	if r.Flip {
		fmt.Fprintf(&b, ", flip: %.1f guard B/frame, %.2f tdt/pkt, %d pages flipped",
			r.GuardBytesPerFrame, r.TxDoorbellsPerPkt, r.PagesFlipped)
	}
	b.WriteString("\n")
	for _, q := range r.PerQueue {
		fmt.Fprintf(&b, "  queue %d: %8d upcalls %8d downcalls %7d doorbells (%8.0f/s) %6d wakes %6d spin pickups",
			q.Queue, q.Upcalls, q.Downcalls, q.Doorbells, q.DoorbellsPerSec, q.Wakeups, q.SpinPickups)
		if q.P99US > 0 {
			fmt.Fprintf(&b, " lat p50 %.1fµs p99 %.1fµs", q.P50US, q.P99US)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MultiFlow runs K concurrent 64-byte UDP transmit flows (DirTX) — see
// MultiFlowDir.
func MultiFlow(tb *MultiFlowTestbed, flows int, opt Options) (MultiFlowResult, error) {
	return MultiFlowDir(tb, flows, DirTX, opt)
}

// MultiFlowDir runs K concurrent 64-byte UDP flows in the given direction
// and reports aggregate throughput plus per-queue transport rates.
//
// Transmit flows are pinned to devices up front: with K >= 2 the last flow
// drives the ne2k segment (self-paced by the card's TXP busy time) and the
// rest drive the e1000e, whose per-flow source ports spread them across the
// TX queues by flow hash. Receive flows flood from the eth remote with
// distinct source ports, so the device's RSS steering spreads them across
// the RX rings and each ring's frames arrive on its own uchan queue in
// batched downcalls.
func MultiFlowDir(tb *MultiFlowTestbed, flows int, dir Direction, opt Options) (MultiFlowResult, error) {
	if flows < 1 {
		return MultiFlowResult{}, fmt.Errorf("netperf: need at least one flow")
	}
	payload := make([]byte, 64)
	stopped := false

	// Parked send loops per interface, resumed in FIFO order on WakeQueue
	// (slices, not a map, to keep the event order deterministic).
	var ethWaiters, ne2kWaiters []func()
	park := func(ifc *netstack.Iface, resume func()) {
		if ifc == tb.EthIfc {
			ethWaiters = append(ethWaiters, resume)
		} else {
			ne2kWaiters = append(ne2kWaiters, resume)
		}
	}
	hookWake := func(ifc *netstack.Iface, list *[]func()) {
		ifc.OnWake = func() {
			if stopped {
				return
			}
			ws := *list
			*list = nil
			for _, w := range ws {
				// Blocked sender wakeup (scheduler cost + latency).
				tb.K.Acct.Charge(sim.CostProcessWakeup / 2)
				tb.M.Loop.After(appWakeLatency, w)
			}
		}
	}
	hookWake(tb.EthIfc, &ethWaiters)
	hookWake(tb.Ne2kIfc, &ne2kWaiters)
	defer func() {
		stopped = true
		tb.EthIfc.OnWake = nil
		tb.Ne2kIfc.OnWake = nil
	}()

	startFlow := func(ifc *netstack.Iface, dstMAC netstack.MAC, dstIP netstack.IP, sport uint16) {
		var send func()
		send = func() {
			if stopped {
				return
			}
			before := tb.K.Acct.Busy()
			tb.K.Acct.Charge(costAppSend)
			err := tb.K.Net.UDPSendTo(ifc, dstMAC, dstIP, sport, PortSink, payload)
			serial := tb.K.Acct.Busy() - before
			if err != nil {
				if errors.Is(err, netstack.ErrQueueStopped) {
					park(ifc, send)
					return
				}
				tb.M.Loop.After(10*sim.Microsecond, send)
				return
			}
			// The send path is serial on the flow's core: the next
			// sendto issues after its CPU time has elapsed. Device
			// backpressure (e1000e ring full, ne2k TXP busy) parks the
			// flow instead of any artificial pacing.
			tb.M.Loop.After(serial, send)
		}
		send()
	}
	if dir != DirRX {
		for i := 0; i < flows; i++ {
			if flows >= 2 && i == flows-1 {
				startFlow(tb.Ne2kIfc, Remote2MAC, Remote2IP, uint16(52000+i))
				continue
			}
			startFlow(tb.EthIfc, RemoteMAC, RemoteIP, uint16(52000+i))
		}
	}

	// Receive direction: a netserver-style sink plus K distinct remote
	// flows; RSS steering fans them across the e1000e's RX rings.
	var rxSock *netstack.UDPSock
	if dir != DirTX {
		var err error
		rxSock, err = tb.K.Net.UDPBind(PortFlood, func(p []byte, _ netstack.IP, _ uint16) {
			tb.K.Acct.Charge(costAppRecv)
		})
		if err != nil {
			return MultiFlowResult{}, err
		}
		defer tb.K.Net.UDPClose(PortFlood)
		tb.EthRemote.StartFloodFlows(64, rxFloodPerFlowPPS, flows, rxFloodBaseSport, PortFlood)
		defer tb.EthRemote.StopFloodFlows()
	}

	tb.M.Loop.RunFor(opt.Warmup)

	// Baselines after warmup, so rates cover the measured span only.
	ethBase, ne2kBase := tb.EthRemote.SinkPkts, tb.Ne2kRemote.SinkPkts
	var rxBase uint64
	if rxSock != nil {
		rxBase = rxSock.RxDatagrams
	}
	guardBase := tb.EthProc.Eth.GuardCopiedBytes
	flippedBase := tb.EthProc.Eth.PagesFlipped
	tdtBase := tb.Nic.TDTWrites
	qBase := make([]QueueReport, tb.Queues)
	rxLatBase := make([]trace.Hist, tb.Queues)
	txLatBase := make([]trace.Hist, tb.Queues)
	for q := range qBase {
		s := tb.EthProc.Chan.QueueStats(q)
		qBase[q] = QueueReport{Queue: q, Upcalls: s.Upcalls, Downcalls: s.Downcalls,
			Doorbells: s.Doorbells, Wakeups: s.Wakeups, SpinPickups: s.SpinPickups}
		iq := tb.EthIfc.Queue(q)
		rxLatBase[q], txLatBase[q] = iq.RxLat, iq.TxLat
	}
	wakeBase := tb.EthProc.Chan.Stats().Wakeups + tb.Ne2kProc.Chan.Stats().Wakeups

	rxDelivered := func() uint64 {
		if rxSock == nil {
			return 0
		}
		return rxSock.RxDatagrams
	}

	var vals, cpus []float64
	for len(vals) < opt.MaxWindows {
		start := tb.M.Now()
		tb.M.CPU.Reset(start)
		ethBefore, ne2kBefore := tb.EthRemote.SinkPkts, tb.Ne2kRemote.SinkPkts
		rxBefore := rxDelivered()
		tb.M.Loop.RunFor(opt.Window)
		delta := (tb.EthRemote.SinkPkts - ethBefore) + (tb.Ne2kRemote.SinkPkts - ne2kBefore) +
			(rxDelivered() - rxBefore)
		vals = append(vals, float64(delta)/opt.Window.Seconds()/1e3)
		cpus = append(cpus, tb.M.CPU.Utilization(tb.M.Now()))
		if len(vals) >= opt.MinWindows {
			m, hw99 := meanCI(vals)
			if m > 0 && hw99/m <= opt.HalfWidthFrac {
				break
			}
		}
	}
	span := sim.Duration(len(vals)) * opt.Window

	mean, hw99 := meanCI(vals)
	cpu, _ := meanCI(cpus)
	res := MultiFlowResult{
		Queues: tb.Queues, Flows: flows, Direction: dir,
		AggregateKpps: mean,
		EthKpps:       float64(tb.EthRemote.SinkPkts-ethBase) / span.Seconds() / 1e3,
		Ne2kKpps:      float64(tb.Ne2kRemote.SinkPkts-ne2kBase) / span.Seconds() / 1e3,
		RxKpps:        float64(rxDelivered()-rxBase) / span.Seconds() / 1e3,
		CPU:           cpu,
		Wakeups:       tb.EthProc.Chan.Stats().Wakeups + tb.Ne2kProc.Chan.Stats().Wakeups - wakeBase,
		MaxDownBatch:  tb.EthProc.Chan.Stats().MaxDownBatch,
		Windows:       len(vals),
	}
	if mean > 0 {
		res.CIRel = hw99 / mean
	}
	var doorbells uint64
	var allLat trace.Hist
	for q := range qBase {
		s := tb.EthProc.Chan.QueueStats(q)
		r := QueueReport{
			Queue:       q,
			Upcalls:     s.Upcalls - qBase[q].Upcalls,
			Downcalls:   s.Downcalls - qBase[q].Downcalls,
			Doorbells:   s.Doorbells - qBase[q].Doorbells,
			Wakeups:     s.Wakeups - qBase[q].Wakeups,
			SpinPickups: s.SpinPickups - qBase[q].SpinPickups,
		}
		r.DoorbellsPerSec = float64(r.Doorbells) / span.Seconds()
		iq := tb.EthIfc.Queue(q)
		lat := iq.RxLat.Sub(&rxLatBase[q])
		txl := iq.TxLat.Sub(&txLatBase[q])
		lat.Merge(&txl)
		if lat.Count() > 0 {
			r.P50US, r.P99US = lat.PercentileUS(0.50), lat.PercentileUS(0.99)
		}
		allLat.Merge(&lat)
		res.PerQueue = append(res.PerQueue, r)
		doorbells += r.Doorbells
	}
	if rxFrames := rxDelivered() - rxBase; rxFrames > 0 && doorbells > 0 {
		res.RxFramesPerDoorbell = float64(rxFrames) / float64(doorbells)
	}
	if allLat.Count() > 0 {
		res.LatP50US = allLat.PercentileUS(0.50)
		res.LatP99US = allLat.PercentileUS(0.99)
	}
	res.Flip = tb.Flip
	res.PagesFlipped = tb.EthProc.Eth.PagesFlipped - flippedBase
	if rxFrames := rxDelivered() - rxBase; rxFrames > 0 {
		res.GuardBytesPerFrame = float64(tb.EthProc.Eth.GuardCopiedBytes-guardBase) / float64(rxFrames)
	}
	if ethPkts := tb.EthRemote.SinkPkts - ethBase; ethPkts > 0 {
		res.TxDoorbellsPerPkt = float64(tb.Nic.TDTWrites-tdtBase) / float64(ethPkts)
	}
	return res, nil
}
