// Package ne2kpci is the driver for the NE2000-compatible card — the
// paper's legacy-IO example (§4). All device access is programmed IO through
// the IO permission bitmap; the device never masters the bus, so its SUD
// IOMMU domain stays empty. Same code runs in-kernel and under SUD.
package ne2kpci

import (
	"fmt"

	"sud/internal/devices/ne2k"
	"sud/internal/drivers/api"
)

// Ring layout: transmit buffer in the first 6 pages of SRAM, receive ring in
// the rest.
const (
	txPage   = ne2k.SRAMBase / ne2k.PageSize // 0x40
	rxStart  = txPage + 6
	rxStop   = (ne2k.SRAMBase + ne2k.SRAMSize) / ne2k.PageSize // 0x80
	maxFrame = 1514
)

// Driver is the module object.
type Driver struct{}

// New returns the driver module.
func New() api.Driver { return Driver{} }

// Name implements api.Driver.
func (Driver) Name() string { return "ne2k-pci" }

// Match implements api.Driver (RTL8029).
func (Driver) Match(vendor, device uint16) bool {
	return vendor == 0x10EC && device == 0x8029
}

// Probe implements api.Driver.
func (Driver) Probe(env api.Env) (api.Instance, error) {
	n := &card{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	io, err := env.RequestRegion(0)
	if err != nil {
		return nil, err
	}
	n.io = io
	io.Out8(ne2k.PortReset, 0)
	// Read the MAC from the PROM (bytes doubled) via remote DMA.
	n.remoteSetup(0, 12)
	io.Out8(ne2k.PortCmd, ne2k.CmdStart|ne2k.CmdRRead)
	for i := 0; i < 6; i++ {
		n.mac[i] = io.In8(ne2k.PortData)
		_ = io.In8(ne2k.PortData) // doubled byte
	}
	nk, err := env.RegisterNetDev("eth0", n.mac, n)
	if err != nil {
		return nil, err
	}
	n.net = nk
	env.Logf("ne2k-pci: probed, MAC %02x:%02x:%02x:%02x:%02x:%02x",
		n.mac[0], n.mac[1], n.mac[2], n.mac[3], n.mac[4], n.mac[5])
	return n, nil
}

type card struct {
	env api.Env
	io  api.PortIO
	net api.NetKernel
	mac [6]byte

	next   uint8 // next ring page to read (BNRY trails it by one)
	opened bool

	// txBusy: a transmit is in flight (the card has one TX buffer).
	// StartXmit backpressures until the PTX interrupt completes it —
	// the driver-side half of the device's TXP busy-time model.
	txBusy bool

	// Counters.
	TxPkts, RxPkts uint64
}

var _ api.NetDevice = (*card)(nil)
var _ api.Instance = (*card)(nil)

// Remove implements api.Instance.
func (n *card) Remove() {
	if n.opened {
		_ = n.Stop()
	}
}

func (n *card) remoteSetup(addr, count uint16) {
	n.io.Out8(ne2k.PortRSAR0, uint8(addr))
	n.io.Out8(ne2k.PortRSAR1, uint8(addr>>8))
	n.io.Out8(ne2k.PortRBCR0, uint8(count))
	n.io.Out8(ne2k.PortRBCR1, uint8(count>>8))
}

// Open implements ndo_open.
func (n *card) Open() error {
	if n.opened {
		return nil
	}
	if err := n.env.RequestIRQ(n.irq); err != nil {
		return err
	}
	io := n.io
	io.Out8(ne2k.PortPSTART, rxStart)
	io.Out8(ne2k.PortPSTOP, rxStop)
	io.Out8(ne2k.PortBNRY, rxStart)
	// CURR lives in register page 1; BNRY trails the read pointer by one
	// page, NE2000 convention.
	io.Out8(ne2k.PortCmd, ne2k.CmdPage1|ne2k.CmdStart)
	io.Out8(ne2k.PortISR, rxStart+1) // CURR
	io.Out8(ne2k.PortCmd, ne2k.CmdStart)
	n.next = rxStart + 1
	n.opened = true
	n.net.CarrierOn()
	return nil
}

// Stop implements ndo_stop.
func (n *card) Stop() error {
	if !n.opened {
		return nil
	}
	n.opened = false
	n.txBusy = false
	n.io.Out8(ne2k.PortCmd, ne2k.CmdStop)
	n.net.CarrierOff()
	return n.env.FreeIRQ()
}

// StartXmit implements ndo_start_xmit: PIO-copy the frame into the TX pages
// and trigger transmission. The card has a single transmit buffer, so a
// frame offered while the transmitter is busy backpressures the stack until
// the PTX interrupt — real ne2k drivers stop the queue the same way.
func (n *card) StartXmit(frame []byte) error {
	if !n.opened {
		return fmt.Errorf("ne2k-pci: closed")
	}
	if len(frame) > maxFrame {
		return fmt.Errorf("ne2k-pci: frame too large")
	}
	if n.txBusy {
		return fmt.Errorf("ne2k-pci: transmitter busy")
	}
	io := n.io
	n.remoteSetup(txPage*ne2k.PageSize, uint16(len(frame)))
	io.Out8(ne2k.PortCmd, ne2k.CmdStart|ne2k.CmdRWrite)
	for i := 0; i+1 < len(frame); i += 2 {
		io.Out16(ne2k.PortData, uint16(frame[i])|uint16(frame[i+1])<<8)
	}
	if len(frame)%2 == 1 {
		io.Out8(ne2k.PortData, frame[len(frame)-1])
	}
	io.Out8(ne2k.PortTPSR, txPage)
	io.Out8(ne2k.PortTBCR0, uint8(len(frame)))
	io.Out8(ne2k.PortTBCR1, uint8(len(frame)>>8))
	io.Out8(ne2k.PortCmd, ne2k.CmdStart|ne2k.CmdTXP)
	n.txBusy = true
	n.TxPkts++
	return nil
}

// DoIoctl implements ndo_do_ioctl.
func (n *card) DoIoctl(cmd uint32, arg []byte) ([]byte, error) {
	switch cmd {
	case api.IoctlGetMIIStatus:
		var up byte
		if n.opened {
			up = 1
		}
		return []byte{up}, nil
	default:
		return nil, fmt.Errorf("ne2k-pci: unsupported ioctl %#x", cmd)
	}
}

func (n *card) irq() {
	if !n.opened {
		return
	}
	isr := n.io.In8(ne2k.PortISR)
	if isr&ne2k.IsrPRX != 0 {
		n.pollRing()
	}
	if isr&ne2k.IsrPTX != 0 && n.txBusy {
		// Transmit complete: the single TX buffer is free again.
		n.txBusy = false
		n.net.WakeQueue(0)
	}
	n.io.Out8(ne2k.PortISR, isr) // acknowledge causes
	n.env.IRQAck()
}

// pollRing drains received packets from the SRAM ring via remote DMA.
func (n *card) pollRing() {
	io := n.io
	for i := 0; i < 64; i++ { // bounded work per interrupt
		// CURR (page 1) tells where hardware will write next.
		io.Out8(ne2k.PortCmd, ne2k.CmdPage1|ne2k.CmdStart)
		curr := io.In8(ne2k.PortISR)
		io.Out8(ne2k.PortCmd, ne2k.CmdStart)
		if n.next == curr {
			return
		}
		// Read the 4-byte ring header.
		addr := uint16(n.next) * ne2k.PageSize
		n.remoteSetup(addr, 4)
		io.Out8(ne2k.PortCmd, ne2k.CmdStart|ne2k.CmdRRead)
		_ = io.In8(ne2k.PortData) // status
		next := io.In8(ne2k.PortData)
		total := int(io.In8(ne2k.PortData)) | int(io.In8(ne2k.PortData))<<8
		length := total - 4
		if length <= 0 || length > maxFrame || next < rxStart || next >= rxStop {
			// Corrupt ring: resynchronise.
			n.next = curr
			io.Out8(ne2k.PortBNRY, bnryFor(n.next))
			return
		}
		// Read the frame (it may wrap the ring; the device's remote
		// DMA window is linear, so read in two chunks if needed).
		frame := make([]byte, length)
		n.readWrapped(addr+4, frame)
		n.RxPkts++
		n.net.NetifRx(frame, 0)
		n.next = next
		io.Out8(ne2k.PortBNRY, bnryFor(n.next))
	}
}

// bnryFor returns the boundary register value trailing the read pointer.
func bnryFor(next uint8) uint8 {
	if next == rxStart {
		return rxStop - 1
	}
	return next - 1
}

// readWrapped reads length bytes from the RX ring starting at addr,
// wrapping at PSTOP.
func (n *card) readWrapped(addr uint16, out []byte) {
	io := n.io
	ringEnd := uint16(rxStop) * ne2k.PageSize
	ringStart := uint16(rxStart) * ne2k.PageSize
	pos := 0
	for pos < len(out) {
		if addr >= ringEnd {
			addr = ringStart + (addr - ringEnd)
		}
		chunk := len(out) - pos
		if int(ringEnd-addr) < chunk {
			chunk = int(ringEnd - addr)
		}
		n.remoteSetup(addr, uint16(chunk))
		io.Out8(ne2k.PortCmd, ne2k.CmdStart|ne2k.CmdRRead)
		for i := 0; i+1 < chunk; i += 2 {
			v := io.In16(ne2k.PortData)
			out[pos+i] = byte(v)
			out[pos+i+1] = byte(v >> 8)
		}
		if chunk%2 == 1 {
			out[pos+chunk-1] = io.In8(ne2k.PortData)
		}
		pos += chunk
		addr += uint16(chunk)
	}
}
