package ne2kpci

import (
	"bytes"
	"testing"

	"sud/internal/devices/ne2k"
	"sud/internal/drivers/api"
	"sud/internal/ethlink"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/netstack"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

var (
	cardMAC = [6]byte{0x00, 0x40, 0x05, 0x11, 0x22, 0x33}
	peerMAC = netstack.MAC{0x00, 0x40, 0x05, 0x44, 0x55, 0x66}
	cardIP  = netstack.IP{10, 0, 1, 1}
	peerIP  = netstack.IP{10, 0, 1, 2}
)

type capturePeer struct {
	loop *sim.Loop
	link *ethlink.Link
	seen [][]byte
}

func (p *capturePeer) LinkDeliver(f []byte) { p.seen = append(p.seen, f) }

type world struct {
	m    *hw.Machine
	k    *kernel.Kernel
	card *ne2k.Card
	peer *capturePeer
	link *ethlink.Link
	ifc  *netstack.Iface
	proc *sudml.Process
}

func boot(t *testing.T, underSUD bool) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	card := ne2k.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xC000, cardMAC)
	m.AttachDevice(card)
	link := ethlink.NewGigabit(m.Loop, 300)
	peer := &capturePeer{loop: m.Loop, link: link}
	link.Connect(card, peer)
	card.AttachLink(link, 0)

	w := &world{m: m, k: k, card: card, peer: peer, link: link}
	if underSUD {
		proc, err := sudml.Start(k, card, New(), "ne2k-pci", 1001)
		if err != nil {
			t.Fatal(err)
		}
		w.proc = proc
	} else {
		if _, err := k.BindInKernel(New(), card); err != nil {
			t.Fatal(err)
		}
	}
	ifc, err := k.Net.Iface("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ifc.Up(cardIP); err != nil {
		t.Fatal(err)
	}
	w.ifc = ifc
	return w
}

func hosts(t *testing.T, f func(t *testing.T, w *world)) {
	t.Run("in-kernel", func(t *testing.T) { f(t, boot(t, false)) })
	t.Run("under-SUD", func(t *testing.T) { f(t, boot(t, true)) })
}

func TestPROMMACRead(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		if w.ifc.MAC != netstack.MAC(cardMAC) {
			t.Fatalf("MAC %v, want %v", w.ifc.MAC, netstack.MAC(cardMAC))
		}
	})
}

func TestPIOTransmit(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		payload := bytes.Repeat([]byte{0x77}, 120)
		if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1000, 2000, payload); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(2 * sim.Millisecond)
		if len(w.peer.seen) != 1 {
			t.Fatalf("wire saw %d frames", len(w.peer.seen))
		}
		_, ipPkt, _ := netstack.ParseEth(w.peer.seen[0])
		ih, l4, err := netstack.ParseIPv4(ipPkt)
		if err != nil {
			t.Fatal(err)
		}
		if _, got, err := netstack.ParseUDP(ih.Src, ih.Dst, l4, true); err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("PIO transmit corrupted payload: %v", err)
		}
	})
}

func TestPIOReceive(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		var got []byte
		if _, err := w.k.Net.UDPBind(7777, func(p []byte, _ netstack.IP, _ uint16) {
			got = append([]byte(nil), p...)
		}); err != nil {
			t.Fatal(err)
		}
		payload := []byte("through the SRAM ring")
		f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(cardMAC), peerIP, cardIP, 1, 7777, payload)
		if err := w.link.Send(1, f); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(2 * sim.Millisecond)
		if !bytes.Equal(got, payload) {
			t.Fatalf("received %q", got)
		}
	})
}

func TestRingWrapsManyPackets(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		var count int
		if _, err := w.k.Net.UDPBind(7777, func(p []byte, _ netstack.IP, _ uint16) {
			count++
		}); err != nil {
			t.Fatal(err)
		}
		// 120 frames of ~1 KiB: several times around the 58-page ring.
		payload := bytes.Repeat([]byte{0xA5}, 1000)
		for i := 0; i < 120; i++ {
			f := netstack.BuildUDPFrame(peerMAC, netstack.MAC(cardMAC), peerIP, cardIP, 1, 7777, payload)
			w.m.Loop.After(sim.Duration(i)*200*sim.Microsecond, func() { _ = w.link.Send(1, f) })
		}
		w.m.Loop.RunFor(60 * sim.Millisecond)
		if count != 120 {
			t.Fatalf("app received %d/120 datagrams (card drops: %d)", count, w.card.RxDrops)
		}
	})
}

func TestNoDriverDMAMappingsUnderSUD(t *testing.T) {
	// The NE2000 never masters the bus and its driver allocates no DMA
	// memory; the only mapping in its translation state is the proxy's
	// uchan TX slot pool, held in queue 0's sub-domain. Pure IOPB
	// confinement otherwise (§3.2.1).
	w := boot(t, true)
	allocs := w.proc.DF.Allocs()
	if len(allocs) != 1 || allocs[0].Label != "TX q0 slot pool" {
		t.Fatalf("unexpected DMA allocations: %+v", allocs)
	}
	mapped := 0
	for _, mp := range w.proc.DF.Mappings() {
		mapped += int(mp.End - mp.IOVA)
	}
	if mapped != allocs[0].Pages*4096 {
		t.Fatalf("walk shows %d mapped bytes, want only the %d-page slot pool", mapped, allocs[0].Pages)
	}
	// And the device genuinely cannot DMA.
	if err := w.card.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("NE2000 DMA succeeded?!")
	}
}

func TestIoctlAndStop(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		out, err := w.ifc.Ioctl(api.IoctlGetMIIStatus, nil)
		if err != nil || out[0] != 1 {
			t.Fatalf("ioctl: %v %v", out, err)
		}
		if err := w.ifc.Down(); err != nil {
			t.Fatal(err)
		}
		if err := w.k.Net.UDPSendTo(w.ifc, peerMAC, peerIP, 1, 2, []byte("x")); err == nil {
			t.Fatal("send on downed ne2k succeeded")
		}
	})
}
