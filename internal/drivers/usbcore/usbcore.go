// Package usbcore is the driver-side USB core: device enumeration and the
// HID/storage class logic, layered over any host controller driver (HCD).
// It runs wherever the host controller driver runs — in the kernel for the
// trusted baseline, inside the untrusted SUD process otherwise — which is
// how the paper's USB host class needs no proxy code of its own (Figure 5).
package usbcore

import (
	"fmt"

	"sud/internal/devices/usb"
)

// HCD is the contract a host controller driver provides to the core.
type HCD interface {
	Ports() int
	PortConnected(p int) bool
	ResetPort(p int) error
	ControlTransfer(addr uint8, setup usb.SetupPacket, data []byte) ([]byte, error)
	BulkIn(addr uint8, ep, maxLen int) ([]byte, error)
	BulkOut(addr uint8, ep int, data []byte) error
	InterruptIn(addr uint8, ep, maxLen int) ([]byte, error)
}

// DeviceInfo describes one enumerated device.
type DeviceInfo struct {
	Address  uint8
	Port     int
	VendorID uint16
	DeviceID uint16
	Class    uint8
}

// Core is the enumerator + class-driver layer.
type Core struct {
	hcd     HCD
	devices []DeviceInfo
	nextAdr uint8
}

// New wraps an HCD.
func New(hcd HCD) *Core { return &Core{hcd: hcd, nextAdr: 1} }

// Devices returns the enumerated devices.
func (c *Core) Devices() []DeviceInfo { return c.devices }

// Enumerate resets every connected port, assigns addresses, and reads device
// descriptors — the standard USB bring-up dance.
func (c *Core) Enumerate() error {
	c.devices = c.devices[:0]
	for p := 0; p < c.hcd.Ports(); p++ {
		if !c.hcd.PortConnected(p) {
			continue
		}
		if err := c.hcd.ResetPort(p); err != nil {
			return fmt.Errorf("usbcore: reset port %d: %w", p, err)
		}
		addr := c.nextAdr
		c.nextAdr++
		// SET_ADDRESS to the default-addressed device.
		if _, err := c.hcd.ControlTransfer(0, usb.SetupPacket{
			Request: usb.ReqSetAddress, Value: uint16(addr),
		}, nil); err != nil {
			return fmt.Errorf("usbcore: set address on port %d: %w", p, err)
		}
		// GET_DESCRIPTOR at the new address.
		desc, err := c.hcd.ControlTransfer(addr, usb.SetupPacket{
			RequestType: 0x80, Request: usb.ReqGetDescriptor,
			Value: usb.DescDevice << 8, Length: 18,
		}, nil)
		if err != nil {
			return fmt.Errorf("usbcore: descriptor on port %d: %w", p, err)
		}
		if len(desc) < 18 {
			return fmt.Errorf("usbcore: short descriptor (%d bytes)", len(desc))
		}
		// SET_CONFIGURATION 1.
		if _, err := c.hcd.ControlTransfer(addr, usb.SetupPacket{
			Request: usb.ReqSetConfiguration, Value: 1,
		}, nil); err != nil {
			return fmt.Errorf("usbcore: configure port %d: %w", p, err)
		}
		c.devices = append(c.devices, DeviceInfo{
			Address:  addr,
			Port:     p,
			VendorID: uint16(desc[8]) | uint16(desc[9])<<8,
			DeviceID: uint16(desc[10]) | uint16(desc[11])<<8,
			Class:    desc[4],
		})
	}
	return nil
}

// FindClass returns the first device of the given class.
func (c *Core) FindClass(class uint8) (DeviceInfo, bool) {
	for _, d := range c.devices {
		if d.Class == class {
			return d, true
		}
	}
	return DeviceInfo{}, false
}

// --- HID class driver ---------------------------------------------------------

// HIDPoll reads one boot-protocol keyboard report; nil means no input.
func (c *Core) HIDPoll(addr uint8) ([]byte, error) {
	return c.hcd.InterruptIn(addr, 1, 8)
}

// --- Storage class driver -------------------------------------------------------

// DiskRead reads count blocks starting at lba.
func (c *Core) DiskRead(addr uint8, lba, count int) ([]byte, error) {
	cmd := make([]byte, 16)
	cmd[0] = usb.DiskOpRead
	putLBA(cmd, lba, count)
	if err := c.hcd.BulkOut(addr, 2, cmd); err != nil {
		return nil, err
	}
	out := make([]byte, 0, count*usb.BlockSize)
	for len(out) < count*usb.BlockSize {
		chunk, err := c.hcd.BulkIn(addr, 1, 512)
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return nil, fmt.Errorf("usbcore: disk NAKed mid-read")
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// DiskWrite writes count blocks starting at lba.
func (c *Core) DiskWrite(addr uint8, lba int, data []byte) error {
	if len(data)%usb.BlockSize != 0 {
		return fmt.Errorf("usbcore: write must be block-aligned")
	}
	count := len(data) / usb.BlockSize
	cmd := make([]byte, 16, 16+len(data))
	cmd[0] = usb.DiskOpWrite
	putLBA(cmd, lba, count)
	return c.hcd.BulkOut(addr, 2, append(cmd, data...))
}

func putLBA(cmd []byte, lba, count int) {
	cmd[1] = byte(lba)
	cmd[2] = byte(lba >> 8)
	cmd[3] = byte(lba >> 16)
	cmd[4] = byte(lba >> 24)
	cmd[5] = byte(count)
	cmd[6] = byte(count >> 8)
}
