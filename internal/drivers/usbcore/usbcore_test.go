package usbcore

import (
	"bytes"
	"fmt"
	"testing"

	"sud/internal/devices/usb"
)

// fakeHCD emulates a 2-port bus with a keyboard and a disk, without any
// hardware model — pure protocol-level testing of the core.
type fakeHCD struct {
	kbd  *usb.Keyboard
	disk *usb.Disk

	byAddr map[uint8]usb.Device
	dflt   usb.Device

	failReset bool
}

func newFakeHCD() *fakeHCD {
	return &fakeHCD{
		kbd:    usb.NewKeyboard(),
		disk:   usb.NewDisk(16),
		byAddr: map[uint8]usb.Device{},
	}
}

func (h *fakeHCD) Ports() int { return 4 }
func (h *fakeHCD) PortConnected(p int) bool {
	return p == 0 || p == 2
}
func (h *fakeHCD) ResetPort(p int) error {
	if h.failReset {
		return fmt.Errorf("reset failed")
	}
	switch p {
	case 0:
		h.dflt = h.kbd
	case 2:
		h.dflt = h.disk
	}
	return nil
}

func (h *fakeHCD) dev(addr uint8) usb.Device {
	if addr == 0 {
		return h.dflt
	}
	return h.byAddr[addr]
}

func (h *fakeHCD) ControlTransfer(addr uint8, setup usb.SetupPacket, data []byte) ([]byte, error) {
	d := h.dev(addr)
	if d == nil {
		return nil, fmt.Errorf("no device at %d", addr)
	}
	if setup.Request == usb.ReqSetAddress && setup.RequestType == 0 {
		h.byAddr[uint8(setup.Value)] = d
		h.dflt = nil
		return nil, nil
	}
	return d.Control(setup, data)
}

func (h *fakeHCD) BulkIn(addr uint8, ep, maxLen int) ([]byte, error) {
	d := h.dev(addr)
	if d == nil {
		return nil, fmt.Errorf("no device")
	}
	return d.In(ep, maxLen)
}

func (h *fakeHCD) BulkOut(addr uint8, ep int, data []byte) error {
	d := h.dev(addr)
	if d == nil {
		return fmt.Errorf("no device")
	}
	return d.Out(ep, data)
}

func (h *fakeHCD) InterruptIn(addr uint8, ep, maxLen int) ([]byte, error) {
	return h.BulkIn(addr, ep, maxLen)
}

var _ HCD = (*fakeHCD)(nil)

func TestEnumerateAssignsAddressesAndClasses(t *testing.T) {
	h := newFakeHCD()
	c := New(h)
	if err := c.Enumerate(); err != nil {
		t.Fatal(err)
	}
	devs := c.Devices()
	if len(devs) != 2 {
		t.Fatalf("%d devices", len(devs))
	}
	if devs[0].Address == devs[1].Address || devs[0].Address == 0 {
		t.Fatalf("bad addresses: %+v", devs)
	}
	kbd, ok := c.FindClass(usb.ClassHID)
	if !ok || kbd.Port != 0 {
		t.Fatalf("HID: %+v %v", kbd, ok)
	}
	disk, ok := c.FindClass(usb.ClassStorage)
	if !ok || disk.Port != 2 {
		t.Fatalf("storage: %+v %v", disk, ok)
	}
	if _, ok := c.FindClass(0x77); ok {
		t.Fatal("phantom class found")
	}
}

func TestEnumerateResetFailure(t *testing.T) {
	h := newFakeHCD()
	h.failReset = true
	if err := New(h).Enumerate(); err == nil {
		t.Fatal("reset failure not propagated")
	}
}

func TestHIDPollThroughCore(t *testing.T) {
	h := newFakeHCD()
	c := New(h)
	if err := c.Enumerate(); err != nil {
		t.Fatal(err)
	}
	kbd, _ := c.FindClass(usb.ClassHID)
	rep, err := c.HIDPoll(kbd.Address)
	if err != nil || rep != nil {
		t.Fatalf("idle poll: %v %v", rep, err)
	}
	h.kbd.PressKey(0x2C)
	rep, err = c.HIDPoll(kbd.Address)
	if err != nil || len(rep) != 8 || rep[2] != 0x2C {
		t.Fatalf("report: % x %v", rep, err)
	}
}

func TestDiskReadWriteThroughCore(t *testing.T) {
	h := newFakeHCD()
	c := New(h)
	if err := c.Enumerate(); err != nil {
		t.Fatal(err)
	}
	disk, _ := c.FindClass(usb.ClassStorage)
	data := bytes.Repeat([]byte{0xD7}, 3*usb.BlockSize)
	if err := c.DiskWrite(disk.Address, 2, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.DiskRead(disk.Address, 2, 3)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
	if err := c.DiskWrite(disk.Address, 0, []byte{1, 2, 3}); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if _, err := c.DiskRead(disk.Address, 100, 1); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}
