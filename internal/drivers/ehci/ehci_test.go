package ehci

import (
	"bytes"
	"testing"

	"sud/internal/devices/usb"
	"sud/internal/drivers/api"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/pci"
	"sud/internal/sudml"
)

type world struct {
	m    *hw.Machine
	k    *kernel.Kernel
	hc   *usb.HostController
	kbd  *usb.Keyboard
	disk *usb.Disk
	proc *sudml.Process
	inst api.Instance

	// ctl invokes the driver's control surface through whichever
	// boundary the host imposes.
	ctl func(cmd uint32, arg []byte) ([]byte, error)
}

func boot(t *testing.T, underSUD bool) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	hc := usb.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(hc)
	kbd := usb.NewKeyboard()
	disk := usb.NewDisk(64)
	if err := hc.AttachUSB(0, kbd); err != nil {
		t.Fatal(err)
	}
	if err := hc.AttachUSB(2, disk); err != nil {
		t.Fatal(err)
	}

	w := &world{m: m, k: k, hc: hc, kbd: kbd, disk: disk}
	if underSUD {
		proc, err := sudml.Start(k, hc, New(), "ehci", 1001)
		if err != nil {
			t.Fatal(err)
		}
		w.proc = proc
		w.ctl = proc.Ctl
	} else {
		inst, err := k.BindInKernel(New(), hc)
		if err != nil {
			t.Fatal(err)
		}
		w.inst = inst
		w.ctl = inst.(api.CtlHandler).Ctl
	}
	return w
}

func hosts(t *testing.T, f func(t *testing.T, w *world)) {
	t.Run("in-kernel", func(t *testing.T) { f(t, boot(t, false)) })
	t.Run("under-SUD", func(t *testing.T) { f(t, boot(t, true)) })
}

func enumerate(t *testing.T, w *world) []byte {
	t.Helper()
	out, err := w.ctl(CtlEnumerate, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEnumerationFindsDevices(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		devs, err := ParseDevices(enumerate(t, w))
		if err != nil {
			t.Fatal(err)
		}
		if len(devs) != 2 {
			t.Fatalf("enumerated %d devices, want 2", len(devs))
		}
		classes := map[uint8]bool{}
		for _, d := range devs {
			classes[d.Class] = true
			if d.Address == 0 {
				t.Fatal("device left at default address")
			}
		}
		if !classes[usb.ClassHID] || !classes[usb.ClassStorage] {
			t.Fatalf("classes: %+v", devs)
		}
	})
}

func TestKeyboardReports(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		devs, _ := ParseDevices(enumerate(t, w))
		var kbdAddr uint8
		for _, d := range devs {
			if d.Class == usb.ClassHID {
				kbdAddr = d.Address
			}
		}
		// Empty poll: NAK → empty reply.
		rep, err := w.ctl(CtlHIDPoll, []byte{kbdAddr})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep) != 0 {
			t.Fatalf("idle keyboard returned %d bytes", len(rep))
		}
		// Press 'a' (usage 0x04): press report then release report.
		w.kbd.PressKey(0x04)
		rep, err = w.ctl(CtlHIDPoll, []byte{kbdAddr})
		if err != nil || len(rep) != 8 || rep[2] != 0x04 {
			t.Fatalf("press report: % x, %v", rep, err)
		}
		rep, err = w.ctl(CtlHIDPoll, []byte{kbdAddr})
		if err != nil || len(rep) != 8 || rep[2] != 0 {
			t.Fatalf("release report: % x, %v", rep, err)
		}
	})
}

func TestDiskReadWrite(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		devs, _ := ParseDevices(enumerate(t, w))
		var diskAddr uint8
		for _, d := range devs {
			if d.Class == usb.ClassStorage {
				diskAddr = d.Address
			}
		}
		// Write 2 blocks at LBA 5.
		data := bytes.Repeat([]byte("sud-block-data!!"), 2*usb.BlockSize/16)
		if _, err := w.ctl(CtlDiskWrite, append(DiskArgs(diskAddr, 5, 2), data...)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w.disk.Peek(5, 2), data) {
			t.Fatal("disk image does not contain written data")
		}
		// Read them back through the stack.
		got, err := w.ctl(CtlDiskRead, DiskArgs(diskAddr, 5, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read-back mismatch")
		}
	})
}

func TestDiskBoundsEnforced(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		devs, _ := ParseDevices(enumerate(t, w))
		var diskAddr uint8
		for _, d := range devs {
			if d.Class == usb.ClassStorage {
				diskAddr = d.Address
			}
		}
		if _, err := w.ctl(CtlDiskRead, DiskArgs(diskAddr, 1000, 1)); err == nil {
			t.Fatal("read beyond capacity succeeded")
		}
	})
}

func TestUSBConfinedUnderSUD(t *testing.T) {
	w := boot(t, true)
	enumerate(t, w)
	// The controller's DMA is confined to the driver's single page +
	// shared pool? No netdev here, so only the driver's own allocation.
	if err := w.hc.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("EHCI DMA to kernel memory succeeded under SUD")
	}
	// Hang the driver: ctl (sync upcall) is interruptible.
	w.proc.Hang()
	if _, err := w.ctl(CtlEnumerate, nil); err == nil {
		t.Fatal("ctl to hung USB driver succeeded")
	}
	w.proc.Unhang()
	if _, err := w.ctl(CtlEnumerate, nil); err != nil {
		t.Fatal("ctl after unhang failed:", err)
	}
}

func TestBadTDFaultsInIOMMU(t *testing.T) {
	// A malicious/buggy TD buffer pointer (the paper's §5.2 "bug in our
	// SUD-UML DMA code ... triggered a page fault" anecdote, for USB).
	w := boot(t, true)
	enumerate(t, w)
	faultsBefore := len(w.m.IOMMU.Faults())
	// Craft a TD pointing at kernel memory and ring the doorbell through
	// the driver's own MMIO mapping (what a hostile driver would do).
	df := w.proc.DF
	alloc := df.Allocs()[0]
	w.kbd.PressKey(0x05) // ensure the IN endpoint has data to DMA
	var td [usb.TDSize]byte
	td[0] = 1 // the keyboard's assigned address (port 0 enumerates first)
	td[1] = 1 // interrupt IN endpoint
	td[2] = usb.DirIn
	td[4] = 64
	evil := uint64(hw.DRAMBase) + 0x1000
	for i := 0; i < 8; i++ {
		td[8+i] = byte(evil >> (8 * i))
	}
	w.m.Mem.MustWrite(alloc.Phys, td[:])
	mm, err := df.MapMMIO(0)
	if err != nil {
		t.Fatal(err)
	}
	mm.Write32(usb.RegTDAddr, uint32(alloc.IOVA))
	mm.Write32(usb.RegDoorbell, 1)
	if len(w.m.IOMMU.Faults()) <= faultsBefore {
		t.Fatal("evil TD buffer did not fault in the IOMMU")
	}
}
