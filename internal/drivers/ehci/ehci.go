// Package ehci is the USB host controller driver — the repository's EHCI
// stand-in (§4). It implements the usbcore HCD contract over the transfer-
// descriptor mailbox of the usb device model, and exposes enumeration plus
// the HID/storage class operations through the generic SUD ctl surface
// (api.CtlHandler): the USB host class needs no proxy driver of its own
// (Figure 5). Same code runs in-kernel and under SUD.
package ehci

import (
	"fmt"

	"sud/internal/devices/usb"
	"sud/internal/drivers/api"
	"sud/internal/drivers/usbcore"
)

// Ctl commands on the SUD ctl surface.
const (
	// CtlEnumerate scans the bus; reply: one byte count, then 6 bytes per
	// device {addr, port, vid16, pid16... } (see marshalDevices).
	CtlEnumerate uint32 = 1
	// CtlHIDPoll polls the keyboard at Args-encoded address (arg[0]);
	// reply: 8-byte report or empty.
	CtlHIDPoll uint32 = 2
	// CtlDiskRead reads blocks: arg = {addr, lba[4], count[2]}.
	CtlDiskRead uint32 = 3
	// CtlDiskWrite writes blocks: arg = {addr, lba[4], count[2], data...}.
	CtlDiskWrite uint32 = 4
)

// Driver is the module object.
type Driver struct{}

// New returns the driver module.
func New() api.Driver { return Driver{} }

// Name implements api.Driver.
func (Driver) Name() string { return "ehci-hcd" }

// Match implements api.Driver (ICH9 EHCI).
func (Driver) Match(vendor, device uint16) bool {
	return vendor == 0x8086 && device == 0x293A
}

// Probe implements api.Driver.
func (Driver) Probe(env api.Env) (api.Instance, error) {
	h := &hcd{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return nil, err
	}
	h.mmio = m
	// One page of DMA memory: TD at offset 0, data buffer after it.
	buf, err := env.AllocCoherent(4096)
	if err != nil {
		return nil, err
	}
	h.dma = buf
	m.Write32(usb.RegUSBIntr, usb.StsXferDone|usb.StsPortChange)
	m.Write32(usb.RegUSBCmd, 1) // RUN
	h.core = usbcore.New(h)
	env.Logf("ehci-hcd: probed, %d root ports", h.Ports())
	return h, nil
}

// hcd is the live driver; it implements usbcore.HCD and api.CtlHandler.
type hcd struct {
	env  api.Env
	mmio api.MMIO
	dma  api.DMABuf
	core *usbcore.Core

	// Counters.
	Transfers uint64
}

var _ usbcore.HCD = (*hcd)(nil)
var _ api.CtlHandler = (*hcd)(nil)
var _ api.Instance = (*hcd)(nil)

// Remove implements api.Instance.
func (h *hcd) Remove() {
	if h.mmio != nil {
		h.mmio.Write32(usb.RegUSBCmd, 0)
	}
	if h.dma != nil {
		_ = h.env.FreeDMA(h.dma)
		h.dma = nil
	}
}

// dataOff is where transfer payloads live inside the DMA page.
const dataOff = usb.TDSize

// submit writes a TD, rings the doorbell, and reads back the completion.
func (h *hcd) submit(devAddr uint8, ep, dir, length int, setup *usb.SetupPacket) (status, actual int, err error) {
	if length > 4096-dataOff {
		return 0, 0, fmt.Errorf("ehci: transfer too large")
	}
	var td [usb.TDSize]byte
	td[0] = devAddr
	td[1] = byte(ep)
	td[2] = byte(dir)
	td[4] = byte(length)
	td[5] = byte(length >> 8)
	bufAddr := uint64(h.dma.BusAddr()) + dataOff
	for i := 0; i < 8; i++ {
		td[8+i] = byte(bufAddr >> (8 * i))
	}
	if setup != nil {
		sp := setup.Marshal()
		copy(td[16:24], sp[:])
	}
	if err := h.dma.Write(0, td[:]); err != nil {
		return 0, 0, err
	}
	h.mmio.Write32(usb.RegTDAddr, uint32(h.dma.BusAddr()))
	h.mmio.Write32(usb.RegDoorbell, 1)
	h.Transfers++
	// Busy-wait on completion (short transfers finish in-frame; the
	// status read also clears USBSTS).
	_ = h.mmio.Read32(usb.RegUSBSts)
	back := make([]byte, usb.TDSize)
	if err := h.dma.Read(0, back); err != nil {
		return 0, 0, err
	}
	return int(back[3]), int(back[6]) | int(back[7])<<8, nil
}

// --- usbcore.HCD -------------------------------------------------------------

// Ports implements usbcore.HCD.
func (h *hcd) Ports() int { return usb.NumPorts }

// PortConnected implements usbcore.HCD.
func (h *hcd) PortConnected(p int) bool {
	v := h.mmio.Read32(usb.RegPortBase + uint64(4*p))
	return v&usb.PortConnected != 0
}

// ResetPort implements usbcore.HCD.
func (h *hcd) ResetPort(p int) error {
	h.mmio.Write32(usb.RegPortBase+uint64(4*p), usb.PortReset)
	return nil
}

// ControlTransfer implements usbcore.HCD.
func (h *hcd) ControlTransfer(addr uint8, setup usb.SetupPacket, data []byte) ([]byte, error) {
	length := int(setup.Length)
	if setup.RequestType&0x80 == 0 && data != nil {
		if err := h.dma.Write(dataOff, data); err != nil {
			return nil, err
		}
		length = len(data)
	}
	status, actual, err := h.submit(addr, 0, usb.DirSetup, length, &setup)
	if err != nil {
		return nil, err
	}
	if status != usb.TDOK {
		return nil, fmt.Errorf("ehci: control transfer stalled")
	}
	if setup.RequestType&0x80 != 0 && actual > 0 {
		out := make([]byte, actual)
		if err := h.dma.Read(dataOff, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	return nil, nil
}

// BulkIn implements usbcore.HCD.
func (h *hcd) BulkIn(addr uint8, ep, maxLen int) ([]byte, error) {
	status, actual, err := h.submit(addr, ep, usb.DirIn, maxLen, nil)
	if err != nil {
		return nil, err
	}
	switch status {
	case usb.TDNak:
		return nil, nil
	case usb.TDOK:
		out := make([]byte, actual)
		if err := h.dma.Read(dataOff, out); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ehci: bulk IN stalled")
	}
}

// BulkOut implements usbcore.HCD.
func (h *hcd) BulkOut(addr uint8, ep int, data []byte) error {
	if err := h.dma.Write(dataOff, data); err != nil {
		return err
	}
	status, _, err := h.submit(addr, ep, usb.DirOut, len(data), nil)
	if err != nil {
		return err
	}
	if status != usb.TDOK {
		return fmt.Errorf("ehci: bulk OUT stalled")
	}
	return nil
}

// InterruptIn implements usbcore.HCD (same mechanics as bulk in this model).
func (h *hcd) InterruptIn(addr uint8, ep, maxLen int) ([]byte, error) {
	return h.BulkIn(addr, ep, maxLen)
}

// --- api.CtlHandler ------------------------------------------------------------

// Ctl implements the generic SUD control surface.
func (h *hcd) Ctl(cmd uint32, arg []byte) ([]byte, error) {
	switch cmd {
	case CtlEnumerate:
		if err := h.core.Enumerate(); err != nil {
			return nil, err
		}
		return marshalDevices(h.core.Devices()), nil
	case CtlHIDPoll:
		if len(arg) < 1 {
			return nil, fmt.Errorf("ehci: HID poll needs an address")
		}
		return h.core.HIDPoll(arg[0])
	case CtlDiskRead:
		if len(arg) < 7 {
			return nil, fmt.Errorf("ehci: short disk read request")
		}
		addr, lba, count := parseDiskArgs(arg)
		return h.core.DiskRead(addr, lba, count)
	case CtlDiskWrite:
		if len(arg) < 7 {
			return nil, fmt.Errorf("ehci: short disk write request")
		}
		addr, lba, _ := parseDiskArgs(arg)
		return nil, h.core.DiskWrite(addr, lba, arg[7:])
	default:
		return nil, fmt.Errorf("ehci: unknown ctl %d", cmd)
	}
}

func parseDiskArgs(arg []byte) (addr uint8, lba, count int) {
	addr = arg[0]
	lba = int(arg[1]) | int(arg[2])<<8 | int(arg[3])<<16 | int(arg[4])<<24
	count = int(arg[5]) | int(arg[6])<<8
	return
}

// DiskArgs marshals a disk request header.
func DiskArgs(addr uint8, lba, count int) []byte {
	return []byte{addr, byte(lba), byte(lba >> 8), byte(lba >> 16), byte(lba >> 24), byte(count), byte(count >> 8)}
}

func marshalDevices(devs []usbcore.DeviceInfo) []byte {
	out := []byte{byte(len(devs))}
	for _, d := range devs {
		out = append(out, d.Address, byte(d.Port),
			byte(d.VendorID), byte(d.VendorID>>8),
			byte(d.DeviceID), byte(d.DeviceID>>8),
			d.Class)
	}
	return out
}

// ParseDevices unmarshals a CtlEnumerate reply.
func ParseDevices(data []byte) ([]usbcore.DeviceInfo, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ehci: empty device list")
	}
	n := int(data[0])
	if len(data) != 1+7*n {
		return nil, fmt.Errorf("ehci: malformed device list")
	}
	out := make([]usbcore.DeviceInfo, 0, n)
	for i := 0; i < n; i++ {
		b := data[1+7*i:]
		out = append(out, usbcore.DeviceInfo{
			Address:  b[0],
			Port:     int(b[1]),
			VendorID: uint16(b[2]) | uint16(b[3])<<8,
			DeviceID: uint16(b[4]) | uint16(b[5])<<8,
			Class:    b[6],
		})
	}
	return out, nil
}
