package sndhda

import (
	"bytes"
	"testing"

	"sud/internal/devices/hda"
	"sud/internal/hw"
	"sud/internal/kernel"
	"sud/internal/kernel/audio"
	"sud/internal/pci"
	"sud/internal/sim"
	"sud/internal/sudml"
)

type world struct {
	m     *hw.Machine
	k     *kernel.Kernel
	codec *hda.Codec
	pcm   *audio.PCM
	proc  *sudml.Process
}

func boot(t *testing.T, underSUD bool) *world {
	t.Helper()
	m := hw.NewMachine(hw.DefaultPlatform())
	k := kernel.New(m)
	codec := hda.New(m.Loop, pci.MakeBDF(1, 0, 0), 0xFEB00000)
	m.AttachDevice(codec)
	w := &world{m: m, k: k, codec: codec}
	if underSUD {
		proc, err := sudml.Start(k, codec, New(), "snd-hda", 1001)
		if err != nil {
			t.Fatal(err)
		}
		w.proc = proc
	} else {
		if _, err := k.BindInKernel(New(), codec); err != nil {
			t.Fatal(err)
		}
	}
	pcm, err := k.Audio.PCMDev("hda0")
	if err != nil {
		t.Fatal(err)
	}
	w.pcm = pcm
	return w
}

func hosts(t *testing.T, f func(t *testing.T, w *world)) {
	t.Run("in-kernel", func(t *testing.T) { f(t, boot(t, false)) })
	t.Run("under-SUD", func(t *testing.T) { f(t, boot(t, true)) })
}

// waveform generates a recognisable sample pattern for period idx.
func waveform(idx, periodBytes int) []byte {
	out := make([]byte, periodBytes)
	for i := range out {
		out[i] = byte(idx*31 + i)
	}
	return out
}

func TestPlaybackBitExact(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		const (
			rate        = 48000
			periodBytes = 4800 // 25 ms per period at 4 B/frame
			periods     = 4
		)
		if err := w.pcm.Prepare(rate, periodBytes, periods); err != nil {
			t.Fatal(err)
		}
		// Application refill loop: keep the ring full.
		written := 0
		fill := func() {
			for w.pcm.QueuedPeriods() < periods {
				if err := w.pcm.WritePeriod(waveform(written, periodBytes)); err != nil {
					t.Fatal(err)
				}
				written++
			}
		}
		fill()
		w.pcm.OnPeriod = func() { fill() }
		if err := w.pcm.Start(); err != nil {
			t.Fatal(err)
		}
		// 10 periods of playback = 250 ms.
		w.m.Loop.RunFor(260 * sim.Millisecond)
		if err := w.pcm.Stop(); err != nil {
			t.Fatal(err)
		}
		if w.pcm.PeriodsElapsed < 9 {
			t.Fatalf("only %d periods elapsed", w.pcm.PeriodsElapsed)
		}
		if w.pcm.XRuns != 0 {
			t.Fatalf("%d underruns", w.pcm.XRuns)
		}
		// The "speaker" heard the exact waveform, in order.
		played := w.codec.Played
		if len(played) < 9*periodBytes {
			t.Fatalf("played %d bytes", len(played))
		}
		for i := 0; i < 9; i++ {
			got := played[i*periodBytes : (i+1)*periodBytes]
			if !bytes.Equal(got, waveform(i, periodBytes)) {
				t.Fatalf("period %d corrupted in playback", i)
			}
		}
	})
}

func TestPointerAdvances(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		if err := w.pcm.Prepare(48000, 4800, 4); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := w.pcm.WritePeriod(waveform(i, 4800)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.pcm.Start(); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(30 * sim.Millisecond) // just over one period
		// Hardware pointer should have advanced by one period (wrapped
		// within the ring).
		if w.codec.Periods == 0 {
			t.Fatal("no periods consumed")
		}
	})
}

func TestUnderrunDetected(t *testing.T) {
	hosts(t, func(t *testing.T, w *world) {
		if err := w.pcm.Prepare(48000, 4800, 4); err != nil {
			t.Fatal(err)
		}
		// Queue only 2 periods, never refill: underrun after ~50 ms.
		for i := 0; i < 2; i++ {
			if err := w.pcm.WritePeriod(waveform(i, 4800)); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.pcm.Start(); err != nil {
			t.Fatal(err)
		}
		w.m.Loop.RunFor(200 * sim.Millisecond)
		if w.pcm.XRuns == 0 {
			t.Fatal("underrun not detected")
		}
	})
}

func TestPrepareValidation(t *testing.T) {
	w := boot(t, false)
	if err := w.pcm.Prepare(0, 4800, 4); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := w.pcm.Prepare(48000, 4800, 1); err == nil {
		t.Fatal("single-period ring accepted")
	}
	if err := w.pcm.WritePeriod(make([]byte, 16)); err == nil {
		t.Fatal("write before prepare accepted")
	}
}

func TestAudioConfinedUnderSUD(t *testing.T) {
	w := boot(t, true)
	if err := w.pcm.Prepare(48000, 4800, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.codec.DMAWrite(hw.DRAMBase, []byte{1}); err == nil {
		t.Fatal("codec DMA to kernel memory succeeded under SUD")
	}
	w.proc.Kill()
	if _, err := w.k.Audio.PCMDev("hda0"); err == nil {
		t.Fatal("hda0 survived process kill")
	}
}

func TestPeriodDowncallsFlushPromptly(t *testing.T) {
	w := boot(t, true)
	if err := w.pcm.Prepare(48000, 4800, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.pcm.WritePeriod(waveform(i, 4800)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.pcm.Start(); err != nil {
		t.Fatal(err)
	}
	w.m.Loop.RunFor(60 * sim.Millisecond)
	if w.proc.Audio.PeriodDowncalls == 0 {
		t.Fatal("no period-elapsed downcalls")
	}
}
