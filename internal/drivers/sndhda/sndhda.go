// Package sndhda is the sound driver for the HDA codec model — the
// repository's stand-in for snd_hda_intel (§4). Written only against
// internal/drivers/api; identical code runs in-kernel and under SUD.
package sndhda

import (
	"fmt"

	"sud/internal/devices/hda"
	"sud/internal/drivers/api"
)

// Driver is the module object.
type Driver struct{}

// New returns the driver module.
func New() api.Driver { return Driver{} }

// Name implements api.Driver.
func (Driver) Name() string { return "snd-hda-intel" }

// Match implements api.Driver (ICH9 HD Audio).
func (Driver) Match(vendor, device uint16) bool {
	return vendor == 0x8086 && device == 0x293E
}

// Probe implements api.Driver.
func (Driver) Probe(env api.Env) (api.Instance, error) {
	ae, ok := env.(api.EnvAudio)
	if !ok {
		return nil, fmt.Errorf("sndhda: host does not support audio devices")
	}
	c := &codec{env: env}
	if err := env.EnableDevice(); err != nil {
		return nil, err
	}
	if err := env.SetMaster(); err != nil {
		return nil, err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return nil, err
	}
	c.mmio = m
	ak, err := ae.RegisterSoundDev("hda0", c)
	if err != nil {
		return nil, err
	}
	c.ak = ak
	env.Logf("snd-hda-intel: probed")
	return c, nil
}

type codec struct {
	env  api.Env
	mmio api.MMIO
	ak   api.AudioKernel

	ring        api.DMABuf
	periodBytes int
	periods     int
	irqSet      bool

	// Counters.
	PeriodIRQs uint64
}

var _ api.AudioDevice = (*codec)(nil)
var _ api.Instance = (*codec)(nil)

// Remove implements api.Instance.
func (c *codec) Remove() {
	_ = c.Trigger(false)
	if c.irqSet {
		_ = c.env.FreeIRQ()
		c.irqSet = false
	}
	if c.ring != nil {
		_ = c.env.FreeDMA(c.ring)
		c.ring = nil
	}
}

// PrepareStream implements api.AudioDevice.
func (c *codec) PrepareStream(rateHz, periodBytes, periods int) error {
	if c.ring != nil {
		if err := c.env.FreeDMA(c.ring); err != nil {
			return err
		}
		c.ring = nil
	}
	ring, err := c.env.AllocCaching(periodBytes * periods)
	if err != nil {
		return err
	}
	c.ring = ring
	c.periodBytes, c.periods = periodBytes, periods
	if !c.irqSet {
		if err := c.env.RequestIRQ(c.irq); err != nil {
			return err
		}
		c.irqSet = true
	}
	m := c.mmio
	m.Write32(hda.RegBufLo, uint32(ring.BusAddr()))
	m.Write32(hda.RegBufHi, uint32(uint64(ring.BusAddr())>>32))
	m.Write32(hda.RegBufLen, uint32(periodBytes*periods))
	m.Write32(hda.RegPeriodBytes, uint32(periodBytes))
	m.Write32(hda.RegRate, uint32(rateHz))
	return nil
}

// WritePeriod implements api.AudioDevice.
func (c *codec) WritePeriod(idx int, samples []byte) error {
	if c.ring == nil {
		return fmt.Errorf("sndhda: not prepared")
	}
	if idx < 0 || idx >= c.periods || len(samples) != c.periodBytes {
		return fmt.Errorf("sndhda: bad period write")
	}
	off := idx * c.periodBytes
	if view, ok := c.ring.Slice(off, len(samples)); ok {
		copy(view, samples)
		return nil
	}
	return c.ring.Write(off, samples)
}

// Trigger implements api.AudioDevice.
func (c *codec) Trigger(start bool) error {
	if c.mmio == nil {
		return fmt.Errorf("sndhda: not probed")
	}
	if start {
		c.mmio.Write32(hda.RegCtl, hda.CtlRun|hda.CtlIE)
	} else {
		c.mmio.Write32(hda.RegCtl, 0)
	}
	return nil
}

// Pointer implements api.AudioDevice.
func (c *codec) Pointer() (int, error) {
	if c.mmio == nil {
		return 0, fmt.Errorf("sndhda: not probed")
	}
	return int(c.mmio.Read32(hda.RegPos)), nil
}

func (c *codec) irq() {
	status := c.mmio.Read32(hda.RegIntStatus)
	if status&hda.IntPeriod != 0 {
		c.PeriodIRQs++
		c.ak.PeriodElapsed()
	}
	c.env.IRQAck()
}
