package api

// This file defines the additional driver-class contracts beyond Ethernet:
// 802.11 wireless, audio (PCM), and the generic control surface used by
// driver processes whose class needs no dedicated proxy (the paper's USB
// host class, Figure 5: "USB host proxy driver — 0 lines").

// BSS describes one 802.11 network found in a scan.
type BSS struct {
	SSID    string
	BSSID   [6]byte
	Channel int
	// Signal is RSSI in dBm (negative).
	Signal int
}

// WifiDevice is the driver's half of the wireless contract (a condensed
// cfg80211 ops table).
type WifiDevice interface {
	// Open/Stop manage the interface like a netdev.
	Open() error
	Stop() error
	// StartScan begins an asynchronous scan; results arrive via
	// WifiKernel.ScanDone.
	StartScan() error
	// Associate joins the given SSID (must have appeared in a scan);
	// completion arrives via WifiKernel.Associated.
	Associate(ssid string) error
	// Disassociate leaves the current network.
	Disassociate() error
	// StartXmit transmits one data frame.
	StartXmit(frame []byte) error
	// Features returns the static capability set the kernel mirrors
	// (§3.1.1: queried from a non-preemptable context, so the proxy
	// must answer from mirrored state, never by upcall).
	Features() uint32
}

// Wifi feature bits.
const (
	WifiFeatShortPreamble uint32 = 1 << 0
	WifiFeat11g           uint32 = 1 << 1
	WifiFeat11n           uint32 = 1 << 2
	WifiFeatPowersave     uint32 = 1 << 3
)

// WifiKernel is the kernel's half: notifications from the driver.
type WifiKernel interface {
	// NetifRx submits a received data frame.
	NetifRx(frame []byte)
	// ScanDone reports scan results (the bss_change upcall family of
	// Figure 7 flows the other way: this is the driver informing the
	// kernel, mirrored into kernel state).
	ScanDone(results []BSS)
	// Associated reports a successful association; the kernel mirrors
	// link state.
	Associated(ssid string)
	// Disassociated reports link loss.
	Disassociated()
}

// AudioDevice is the driver's half of the PCM contract (a condensed ALSA
// ops table).
type AudioDevice interface {
	// PrepareStream configures a playback stream: sample rate in Hz,
	// bytes per period, and the number of periods in the ring.
	PrepareStream(rateHz, periodBytes, periods int) error
	// WritePeriod copies one period of samples into the stream ring at
	// the given period index.
	WritePeriod(idx int, samples []byte) error
	// Trigger starts or stops the stream.
	Trigger(start bool) error
	// Pointer returns the hardware playback position in bytes.
	Pointer() (int, error)
}

// AudioKernel is the kernel's half of the PCM contract.
type AudioKernel interface {
	// PeriodElapsed reports that the device consumed one period — the
	// kernel's cue to refill (and the latency-critical path that makes
	// real-time scheduling matter, §4.1).
	PeriodElapsed()
	// XRun reports an underrun.
	XRun()
}

// CtlHandler is an optional interface for driver instances that expose a
// control surface directly through the SUD ctl channel, without a
// class-specific proxy — how USB host drivers need zero proxy code.
type CtlHandler interface {
	Ctl(cmd uint32, arg []byte) ([]byte, error)
}

// EnvWifi is implemented by hosts that support wireless drivers.
type EnvWifi interface {
	RegisterWifiDev(name string, mac [6]byte, dev WifiDevice) (WifiKernel, error)
}

// EnvAudio is implemented by hosts that support audio drivers.
type EnvAudio interface {
	RegisterSoundDev(name string, dev AudioDevice) (AudioKernel, error)
}
