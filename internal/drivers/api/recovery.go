package api

// RecoverableDevice is the shadow-recovery surface every supervised
// kernel-side device object exposes — the contract blockdev.Dev and
// netstack.Iface used to duplicate structurally, now shared so the
// supervisor (internal/sudml), the shadow layer's consumers, and the tenant
// plane drive recovery through one interface regardless of device class.
//
// The lifecycle it names is the paper's shadow-driver extension (§2, §5.2):
// a device object survives its driver process. On a death the device core's
// BeginRecovery parks it (that entry point stays class-specific — block
// parking fails nothing while netstack holds TX stopped — so it is not part
// of this contract); the epoch advances so proxies bound to the dead
// incarnation are fenced; the restarted or promoted driver adopts the
// surviving object; and CompleteRecovery replays what the dead incarnation
// swallowed — logged block requests under their original tags, logged TX
// frames through the new driver — returning the replay count.
//
// The Queue* methods are the surgical variants from the per-queue
// confinement plane: exactly one queue's DMA sub-domain was revoked, so
// exactly that queue parks, bumps its own epoch, and replays, while
// siblings — and the driver process itself — keep running.
type RecoverableDevice interface {
	// Epoch is the device's driver-incarnation counter; it advances on
	// every device-wide recovery (and on quarantine). Proxies record the
	// epoch they bound at and are rejected once it moves on.
	Epoch() uint64
	// Recovering reports whether the device is between driver incarnations
	// (parked, awaiting adoption and CompleteRecovery).
	Recovering() bool

	// QueueEpoch is queue q's own incarnation counter, advanced by every
	// BeginQueueRecovery.
	QueueEpoch(q int) uint64
	// QueueRecovering reports whether queue q alone is parked by a
	// surgical recovery.
	QueueRecovering(q int) bool
	// BeginQueueRecovery parks exactly queue q: TX/submission holds, the
	// queue epoch advances to fence stale completions. Idempotent; a
	// device-wide recovery subsumes it.
	BeginQueueRecovery(q int)
	// CompleteQueueRecovery releases a surgically parked queue after its
	// sub-domain is re-armed and replays that queue's shadow log,
	// returning the replayed count. It is an error during a device-wide
	// recovery.
	CompleteQueueRecovery(q int) (int, error)

	// CompleteRecovery finishes a device-wide recovery after adoption:
	// bring-up is replayed into the new incarnation, parked work resumes,
	// and the shadow log is re-submitted. It returns the replayed count;
	// on failure the device stays recovering so a further restart can
	// retry.
	CompleteRecovery() (int, error)
}
