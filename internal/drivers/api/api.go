// Package api defines the Linux-like kernel/driver interface this repository's
// "unmodified" drivers are written against. It is the Go rendition of the
// kernel facilities in the paper's Figure 2 example: pci_enable_device,
// ioremap, dma_alloc_coherent, request_irq, register_netdev, netif_rx and
// friends.
//
// The point of the package is the SUD property: the same driver code runs in
// two hosts without modification —
//
//   - the trusted in-kernel host (internal/kernel), where every call is a
//     direct, fast kernel operation; and
//   - SUD-UML (internal/sudml), where the same calls are serviced in an
//     untrusted user-space process via downcalls to the safe PCI access
//     module and the uchan RPC layer.
//
// Drivers import only this package; they cannot tell which host they run in.
package api

import "sud/internal/mem"

// MMIO is a mapped view of one memory BAR (the result of ioremap).
type MMIO interface {
	// Read32 reads the 32-bit register at byte offset off.
	Read32(off uint64) uint32
	// Write32 writes the 32-bit register at byte offset off.
	Write32(off uint64, v uint32)
}

// PortIO is an IO-space BAR claimed with RequestRegion (legacy devices).
type PortIO interface {
	// In8/Out8 access one byte-wide port at the given offset.
	In8(off uint64) uint8
	Out8(off uint64, v uint8)
	// In16/Out16 access a word-wide port.
	In16(off uint64) uint16
	Out16(off uint64, v uint16)
}

// DMABuf is DMA-capable memory (dma_alloc_coherent / the dma_caching pool).
// BusAddr is what the driver programs into device descriptors: in the
// in-kernel host it is a physical address; under SUD it is the IO virtual
// address mapped by the device's IOMMU page table (and, per §4.1, equal to
// the driver process's own virtual address for the buffer).
type DMABuf interface {
	BusAddr() mem.Addr
	Size() int
	// Read/Write access the buffer from the CPU side.
	Read(off int, p []byte) error
	Write(off int, p []byte) error
	// Slice returns a zero-copy view of [off, off+n) when the host can
	// map the range directly (it can, for ranges within one page); ok
	// reports success. Writes through the view are visible to DMA.
	Slice(off, n int) ([]byte, bool)
}

// NetDevice is the driver's half of the netdev contract — the
// net_device_ops table from Figure 2.
type NetDevice interface {
	// Open prepares the device for operation (ndo_open: ifconfig up).
	Open() error
	// Stop quiesces the device (ndo_stop).
	Stop() error
	// StartXmit transmits one Ethernet frame (ndo_start_xmit). The
	// callee owns the slice.
	StartXmit(frame []byte) error
	// DoIoctl handles device-private ioctls (ndo_do_ioctl), e.g.
	// SIOCGMIIREG in the paper's example.
	DoIoctl(cmd uint32, arg []byte) ([]byte, error)
}

// MultiQueueNetDevice is implemented by drivers whose hardware exposes more
// than one transmit queue. StartXmit remains the single-queue entry point
// (queue 0); hosts that are multi-queue aware steer per-flow traffic with
// StartXmitQ. Queue indices beyond TxQueues()-1 fall back to queue 0.
type MultiQueueNetDevice interface {
	NetDevice
	// TxQueues reports the number of hardware transmit queues.
	TxQueues() int
	// StartXmitQ transmits one frame on the given queue.
	StartXmitQ(frame []byte, queue int) error
}

// PageRecycler is implemented by page-aware drivers participating in the
// page-flip fast path: the host delivers whole buffer pages to the kernel by
// ownership flip, and returns them here — already remapped — once the kernel
// is done. The driver re-arms descriptors (or frees slots) over the returned
// pages; until then it must not reuse them.
type PageRecycler interface {
	// RecyclePages returns flipped buffer pages (page-aligned bus
	// addresses) on queue q to the driver's pool.
	RecyclePages(q int, pages []mem.Addr)
}

// BatchKicker is implemented by drivers that stage device doorbell writes
// (TX tail, SQ tail) while a batch of host calls is serviced and flush them
// in one MMIO write when the batch ends — opportunistic submit-side doorbell
// coalescing. Hosts call KickPending at the end of every upcall drain; a
// driver must also flush internally wherever a staged doorbell could
// otherwise deadlock the device.
type BatchKicker interface {
	KickPending()
}

// Well-known ioctl commands.
const (
	// IoctlGetMIIStatus returns MII media status, the paper's
	// synchronous-upcall example.
	IoctlGetMIIStatus uint32 = 0x8948 // SIOCGMIIREG
)

// NetKernel is the kernel's half of the netdev contract: the calls a driver
// makes into the network core. The contract is queue-aware end to end — a
// single-queue driver is simply one that only ever names queue 0; there is
// no separate single-queue interface. Hosts keep per-queue state, so one
// backpressured queue never stalls its siblings.
type NetKernel interface {
	// NetifRx submits a received frame to the kernel's network stack,
	// tagged with the RX ring it arrived on. The callee owns the slice.
	NetifRx(frame []byte, queue int)
	// CarrierOn/CarrierOff report link state changes (the shared-memory
	// state the SUD proxy mirrors, §3.3).
	CarrierOn()
	CarrierOff()
	// WakeQueue re-enables transmission on one stopped TX queue after the
	// driver stopped it (ring full).
	WakeQueue(queue int)
}

// Env is the kernel environment a driver instance runs in: one bound PCI
// device plus the kernel services the driver may use.
type Env interface {
	// --- PCI configuration (filtered under SUD, §3.2.1) ---

	ConfigRead(off, size int) (uint32, error)
	ConfigWrite(off, size int, v uint32) error
	// EnableDevice enables memory/IO decoding (pci_enable_device).
	EnableDevice() error
	// SetMaster enables bus mastering (pci_set_master).
	SetMaster() error
	// FindCapability returns the config offset of the capability, or 0
	// (pci_find_capability — a paper Figure 7 downcall).
	FindCapability(id uint8) int

	// --- Device memory ---

	// IORemap maps memory BAR bar (ioremap).
	IORemap(bar int) (MMIO, error)
	// RequestRegion claims IO-space BAR bar (request_region); under SUD
	// this populates the process's IO permission bitmap (§3.2.1).
	RequestRegion(bar int) (PortIO, error)

	// --- DMA memory (§4.1 device files dma_coherent / dma_caching) ---

	// AllocCoherent allocates uncached DMA memory for descriptor rings.
	AllocCoherent(size int) (DMABuf, error)
	// AllocCaching allocates cached DMA memory for packet buffers.
	AllocCaching(size int) (DMABuf, error)
	// FreeDMA releases a DMA allocation.
	FreeDMA(DMABuf) error

	// --- Interrupts ---

	// RequestIRQ wires the device's MSI to handler (request_irq).
	RequestIRQ(handler func()) error
	// FreeIRQ unwires it (free_irq).
	FreeIRQ() error
	// IRQAck signals the driver has finished processing an interrupt;
	// under SUD this is the interrupt_ack downcall that unmasks the MSI
	// if SUD masked it (§3.2.2).
	IRQAck()

	// --- Kernel services ---

	// RegisterNetDev registers an Ethernet device (register_netdev) and
	// returns the kernel's half of the contract.
	RegisterNetDev(name string, macAddr [6]byte, dev NetDevice) (NetKernel, error)
	// Jiffies returns the kernel tick counter.
	Jiffies() uint64
	// Timer schedules fn to run once, delayJiffies ticks from now
	// (add_timer); drivers use it for watchdogs and scan timeouts.
	Timer(delayJiffies uint64, fn func())
	// Logf emits a kernel log line (printk).
	Logf(format string, args ...any)
}

// QueueDMAAllocator is implemented by hosts whose safe PCI access module
// splits DMA translation per hardware queue: an allocation tagged with a
// queue's stream (the PASID-like tag that queue's engine stamps on its DMA)
// is mapped only into that queue's IOMMU sub-domain, so a descriptor on a
// sibling queue naming it faults at the walk. Hosts without the split — the
// trusted in-kernel host runs the device in passthrough — simply do not
// implement this, and drivers fall back to shared allocations.
type QueueDMAAllocator interface {
	// AllocCoherentQ is AllocCoherent owned by the queue stamping stream.
	AllocCoherentQ(size, stream int) (DMABuf, error)
	// AllocCachingQ is AllocCaching owned by the queue stamping stream.
	AllocCachingQ(size, stream int) (DMABuf, error)
}

// AllocCoherentQ allocates ring memory owned by one hardware queue when the
// host supports the per-queue DMA split, and a shared allocation otherwise.
// Drivers call this helper so the same source runs unmodified in both hosts.
func AllocCoherentQ(env Env, size, stream int) (DMABuf, error) {
	if q, ok := env.(QueueDMAAllocator); ok && stream > 0 {
		return q.AllocCoherentQ(size, stream)
	}
	return env.AllocCoherent(size)
}

// AllocCachingQ is the buffer-pool counterpart of AllocCoherentQ.
func AllocCachingQ(env Env, size, stream int) (DMABuf, error) {
	if q, ok := env.(QueueDMAAllocator); ok && stream > 0 {
		return q.AllocCachingQ(size, stream)
	}
	return env.AllocCaching(size)
}

// Driver is a device driver module: identity, match rule, probe entry point.
type Driver interface {
	// Name is the module name ("e1000e", "ne2k-pci", ...).
	Name() string
	// Match reports whether the driver claims the PCI ID.
	Match(vendor, device uint16) bool
	// Probe binds the driver to the device exposed through env.
	Probe(env Env) (Instance, error)
}

// Instance is one bound driver instance.
type Instance interface {
	// Remove unbinds the driver (module unload / device removal).
	Remove()
}
