package api

// This file defines the block-device class contract: the Linux-like
// blk-mq-flavoured interface an NVMe-class storage driver is written against.
// Like the netdev contract, the identical driver code runs in the trusted
// in-kernel host and inside an untrusted SUD process; it cannot tell the
// difference. The multi-queue shape is native here — NVMe's per-CPU
// submission/completion queue pairs map one-to-one onto the host's queue
// contexts (and, under SUD, onto the uchan ring pairs).

// BlockGeometry describes a block device's media: Blocks logical blocks of
// BlockSize bytes each, plus whether the device holds acked writes in a
// volatile write cache (in which case Flush/FUA are what make them
// durable). It is static state mirrored into the kernel at registration
// (§3.3), never fetched by upcall.
type BlockGeometry struct {
	BlockSize  int
	Blocks     uint64
	WriteCache bool
}

// Bytes returns the media capacity in bytes.
func (g BlockGeometry) Bytes() uint64 { return g.Blocks * uint64(g.BlockSize) }

// BlockRequest is one single-block I/O request handed to the driver. The
// host allocates Tag and matches it against the completion; the driver
// treats it as an opaque cookie (like a blk-mq tag).
type BlockRequest struct {
	// Write selects the direction: true writes Data to LBA, false reads
	// LBA (the payload arrives via BlockKernel.Complete).
	Write bool
	// LBA is the logical block address.
	LBA uint64
	// Data is the write payload (exactly BlockSize bytes); nil for reads.
	// The callee must not retain it past Submit — it copies the payload
	// into its own DMA memory, as ring-based drivers do.
	Data []byte
	// Tag is the host's completion cookie, echoed in Complete.
	Tag uint64
	// Flush marks a cache-flush barrier (REQ_OP_FLUSH): no LBA or Data;
	// the driver must issue the device's flush command and complete the
	// request only once every previously acked write is durable.
	Flush bool
	// FUA marks a force-unit-access write (REQ_FUA): the payload must be
	// durable — past any volatile cache — before the completion.
	FUA bool
}

// BlockDevice is the driver's half of the block contract — a condensed
// blk_mq_ops table.
type BlockDevice interface {
	// Open prepares the device: create hardware queue pairs, arm
	// interrupts (like blk-mq init_hctx + the admin bring-up).
	Open() error
	// Stop quiesces the device and releases its queues.
	Stop() error
	// Queues reports the number of hardware I/O queue pairs.
	Queues() int
	// Submit enqueues req on hardware queue q. A full queue returns an
	// error; the host stops that queue's submission path until the driver
	// calls BlockKernel.WakeQueueQ (BLK_STS_RESOURCE semantics).
	Submit(q int, req BlockRequest) error
}

// BlockKernel is the kernel's half of the block contract: the calls a driver
// makes into the block core. Completions are per queue, so one queue's
// backpressure or completion storm never stalls a sibling.
type BlockKernel interface {
	// Complete reports request tag finished on queue q. data is the read
	// payload (nil for writes or failures). Under SUD only a shared-buffer
	// reference crosses the channel; the proxy validates it against the
	// driver's own DMA allocations and guard-copies it before the kernel
	// sees the bytes (§3.1.2 applied to storage).
	Complete(q int, tag uint64, err error, data []byte)
	// WakeQueueQ re-enables submission on one stopped queue.
	WakeQueueQ(q int)
}

// EnvBlock is implemented by hosts that support block drivers.
type EnvBlock interface {
	// RegisterBlockDev registers a block device (register_blkdev /
	// add_disk) and returns the kernel's half of the contract.
	RegisterBlockDev(name string, geom BlockGeometry, dev BlockDevice) (BlockKernel, error)
}
