// Package nvmed is the storage driver for the NVMe-lite controller model,
// written exclusively against the Linux-like API in internal/drivers/api.
// The identical code runs as a trusted in-kernel driver and inside an
// untrusted SUD process; it cannot tell the difference.
//
// It is a scaled-down but structurally faithful Linux NVMe driver: admin
// queue bring-up and Identify at probe, one I/O submission/completion queue
// pair per host queue created through admin commands, per-queue data-buffer
// pools (queue-scoped device-file allocations under SUD — the groundwork
// for per-queue IOMMU domains), NAPI-style completion polling from the
// interrupt handler with phase-tag tracking, and submission stop/wake
// backpressure per queue.
//
// Bring-up is idempotent by construction — enableCtrl disables the
// controller (EN 1→0 resets every queue) before programming it, like the
// Linux driver's nvme_disable_ctrl — which is what lets a restarted process
// probe a controller its dead predecessor left enabled, the precondition
// for shadow-driver recovery (§2, §5.2).
package nvmed

import (
	"fmt"

	"sud/internal/devices/nvme"
	"sud/internal/drivers/api"
	"sud/internal/mem"
)

// Queue geometry: entries per I/O SQ/CQ pair and per-queue data pool slots.
// One pool slot backs one in-flight command, so QDepth bounds both.
const (
	QDepth     = 64
	AdminDepth = 16

	// coalesceBulk programs ~10000 completion interrupts/s (RegINTCOAL
	// units are 256 ns) — the Interrupt Coalescing setting the Linux
	// driver negotiates for throughput workloads. One interrupt then
	// reaps a whole batch of completions across the queue pairs, and the
	// device cannot storm the host no matter how fast the media is.
	coalesceBulk = 390
)

// Driver is the module object.
type Driver struct {
	queues   int
	pageFlip bool
}

// New returns the driver module (single I/O queue pair).
func New() api.Driver { return Driver{queues: 1} }

// NewQ returns the driver module configured for up to n I/O queue pairs; at
// probe the count is clamped to what the bound controller reports in CAP,
// so a mismatch degrades to fewer queues instead of failed queue creation.
func NewQ(n int) api.Driver {
	if n < 1 {
		n = 1
	}
	if n > nvme.MaxIOQueues {
		n = nvme.MaxIOQueues
	}
	return Driver{queues: n}
}

// NewFlipQ returns the driver configured for the page-flip fast path: a read
// completion lends its pool slot to the kernel until the host recycles the
// page back (api.PageRecycler), SQ tail doorbells are staged and flushed once
// per host-call batch (api.BatchKicker), and submission opportunistically
// polls the completion queue so completions ride the submit stream instead of
// waiting out the interrupt-coalescing window. Only hosts that run the
// GuardPageFlip proxy mode and call KickPending at drain end may use it; the
// stock constructors keep the baseline behaviour bit for bit.
func NewFlipQ(n int) api.Driver {
	d := NewQ(n).(Driver)
	d.pageFlip = true
	return d
}

// Name implements api.Driver.
func (Driver) Name() string { return "nvmed" }

// Match implements api.Driver: claim the NVMe-lite controller.
func (Driver) Match(vendor, device uint16) bool {
	return vendor == nvme.VendorID && device == nvme.DeviceID
}

// Probe implements api.Driver.
func (d Driver) Probe(env api.Env) (api.Instance, error) {
	q := d.queues
	if q < 1 {
		q = 1
	}
	c := &ctrl{env: env, queues: q, pageAware: d.pageFlip, fastPath: d.pageFlip, coalesceSQ: d.pageFlip}
	if err := c.probe(); err != nil {
		return nil, err
	}
	return c, nil
}

// ioq is one I/O queue pair: its SQ/CQ rings, its data-buffer pool, and the
// driver-side cursors and phase state.
type ioq struct {
	sq   api.DMABuf
	cq   api.DMABuf
	bufs api.DMABuf // QDepth slots × BlockSize, one per in-flight command

	tail     int  // SQ producer index
	cqHead   int  // CQ consumer index
	phase    bool // expected phase tag
	inFlight int
	stopped  bool
	kick     bool // staged SQ tail doorbell (coalesceSQ)

	used  [QDepth]bool   // CID → slot in use
	tags  [QDepth]uint64 // CID → kernel tag
	wrote [QDepth]bool   // CID → request direction
	// lent marks slots whose buffer page a read completion handed to the
	// kernel (pageAware): the proxy flips the page out of our domain, so
	// the slot stays unusable until RecyclePages returns it.
	lent [QDepth]bool
}

type ctrl struct {
	env    api.Env
	mmio   api.MMIO
	blk    api.BlockKernel
	queues int

	geom api.BlockGeometry

	adminSQ   api.DMABuf
	adminCQ   api.DMABuf
	adminPage api.DMABuf
	adminTail int
	adminHead int
	adminCID  uint16
	adminPh   bool

	io []ioq

	opened  bool
	removed bool

	// Page-flip fast-path knobs (NewFlipQ).
	pageAware  bool
	fastPath   bool
	coalesceSQ bool

	// Counters (visible to tests).
	Submitted, Completed, Errors uint64
	Interrupts                   uint64
	// SQDoorbells counts I/O SQ tail MMIO writes (doorbells-per-command is
	// the submit-side coalescing metric).
	SQDoorbells uint64
}

var _ api.BlockDevice = (*ctrl)(nil)
var _ api.Instance = (*ctrl)(nil)

func (c *ctrl) probe() error {
	env := c.env
	eb, ok := env.(api.EnvBlock)
	if !ok {
		return fmt.Errorf("nvmed: host does not support block devices")
	}
	if err := env.EnableDevice(); err != nil {
		return err
	}
	if err := env.SetMaster(); err != nil {
		return err
	}
	m, err := env.IORemap(0)
	if err != nil {
		return err
	}
	c.mmio = m

	// Clamp the configured queue count to the controller's CAP field, as
	// the Linux driver sizes its pairs from Number of Queues.
	if hw := int(m.Read32(nvme.RegCAP) >> 16 & 0xF); hw >= 1 && hw < c.queues {
		env.Logf("nvmed: controller exposes %d I/O queue pairs, using %d (not %d)", hw, hw, c.queues)
		c.queues = hw
	}

	// Admin queue bring-up: rings, AQA/ASQ/ACQ, then enable.
	if c.adminSQ, err = env.AllocCoherent(AdminDepth * nvme.SQESize); err != nil {
		return err
	}
	if c.adminCQ, err = env.AllocCoherent(AdminDepth * nvme.CQESize); err != nil {
		return err
	}
	if c.adminPage, err = env.AllocCoherent(nvme.BlockSize); err != nil {
		return err
	}
	if err := c.enableCtrl(); err != nil {
		return err
	}

	// Identify: the controller DMA-writes its geometry into our page.
	var sqe [nvme.SQESize]byte
	sqe[0] = nvme.AdminIdentify
	putLE64(sqe[24:32], uint64(c.adminPage.BusAddr()))
	if status, err := c.adminCmd(sqe[:]); err != nil {
		return err
	} else if status != nvme.StatusOK {
		return fmt.Errorf("nvmed: identify failed (status %d)", status)
	}
	page := make([]byte, nvme.IdentifyLen)
	if err := c.adminPage.Read(0, page); err != nil {
		return err
	}
	c.geom = api.BlockGeometry{
		Blocks:     le64(page[0:8]),
		BlockSize:  int(le32(page[8:12])),
		WriteCache: page[14] != 0,
	}

	bk, err := eb.RegisterBlockDev("nvme0", c.geom, c)
	if err != nil {
		return err
	}
	c.blk = bk
	env.Logf("nvmed: probed, %d blocks × %d B, %d I/O queue pairs",
		c.geom.Blocks, c.geom.BlockSize, c.queues)
	return nil
}

// enableCtrl programs the admin queue and brings the controller to ready —
// the bring-up sequence at probe and again after every controller reset
// (Stop disables the controller, which clears all queue state).
func (c *ctrl) enableCtrl() error {
	m := c.mmio
	// Disable first: a previous owner (or a prior Stop) may have left the
	// controller enabled with stale queue state; the EN 1→0 transition
	// resets it, like the Linux driver's nvme_disable_ctrl before setup.
	m.Write32(nvme.RegCC, 0)
	c.adminTail, c.adminHead, c.adminPh = 0, 0, true
	m.Write32(nvme.RegAQA, uint32(AdminDepth-1)|uint32(AdminDepth-1)<<16)
	m.Write32(nvme.RegASQL, uint32(c.adminSQ.BusAddr()))
	m.Write32(nvme.RegASQH, uint32(uint64(c.adminSQ.BusAddr())>>32))
	m.Write32(nvme.RegACQL, uint32(c.adminCQ.BusAddr()))
	m.Write32(nvme.RegACQH, uint32(uint64(c.adminCQ.BusAddr())>>32))
	m.Write32(nvme.RegCC, nvme.CcEnable)
	if m.Read32(nvme.RegCSTS)&nvme.CstsReady == 0 {
		return fmt.Errorf("nvmed: controller did not become ready")
	}
	return nil
}

// adminCmd submits one admin command and polls its phase-tagged completion
// (admin commands execute synchronously in the controller model).
func (c *ctrl) adminCmd(sqe []byte) (uint16, error) {
	c.adminCID++
	putLE16(sqe[2:4], c.adminCID)
	if err := writeRing(c.adminSQ, c.adminTail, nvme.SQESize, sqe); err != nil {
		return 0, err
	}
	c.adminTail = (c.adminTail + 1) % AdminDepth
	c.mmio.Write32(nvme.SQDoorbell(0), uint32(c.adminTail))

	cqe, err := readRing(c.adminCQ, c.adminHead, nvme.CQESize)
	if err != nil {
		return 0, err
	}
	st := le16(cqe[14:16])
	phase := st&1 != 0
	if phase != c.adminPh {
		return 0, fmt.Errorf("nvmed: admin command not completed")
	}
	c.adminHead = (c.adminHead + 1) % AdminDepth
	if c.adminHead == 0 {
		c.adminPh = !c.adminPh
	}
	c.mmio.Write32(nvme.CQDoorbell(0), uint32(c.adminHead))
	return st >> 1, nil
}

// Remove implements api.Instance.
func (c *ctrl) Remove() {
	if c.opened {
		_ = c.Stop()
	}
	c.removed = true
}

// --- api.BlockDevice ---------------------------------------------------------

// Queues implements api.BlockDevice.
func (c *ctrl) Queues() int { return c.queues }

// Open implements the bring-up half: create one I/O CQ+SQ pair per host
// queue through admin commands, allocate per-queue data pools, request the
// interrupt.
func (c *ctrl) Open() error {
	if c.opened {
		return nil
	}
	env := c.env
	if c.mmio.Read32(nvme.RegCSTS)&nvme.CstsReady == 0 {
		// A prior Stop reset the controller; bring it back up.
		if err := c.enableCtrl(); err != nil {
			return err
		}
	}
	c.io = make([]ioq, c.queues)
	for q := range c.io {
		ioq := &c.io[q]
		qid := q + 1
		var err error
		// Rings and data pool are owned by the queue whose engine DMAs
		// them: stream = I/O qid, so a host with the per-queue DMA split
		// maps them only into that queue's sub-domain.
		if ioq.sq, err = api.AllocCoherentQ(env, QDepth*nvme.SQESize, qid); err != nil {
			return err
		}
		if ioq.cq, err = api.AllocCoherentQ(env, QDepth*nvme.CQESize, qid); err != nil {
			return err
		}
		// Per-queue data pool: one device-file allocation per queue, so
		// each queue's buffers are a distinct IOMMU-visible object.
		if ioq.bufs, err = api.AllocCachingQ(env, QDepth*nvme.BlockSize, qid); err != nil {
			return err
		}
		ioq.phase = true

		var sqe [nvme.SQESize]byte
		sqe[0] = nvme.AdminCreateIOCQ
		putLE64(sqe[24:32], uint64(ioq.cq.BusAddr()))
		putLE16(sqe[40:42], uint16(qid))
		putLE16(sqe[42:44], QDepth-1)
		if st, err := c.adminCmd(sqe[:]); err != nil {
			return err
		} else if st != nvme.StatusOK {
			return fmt.Errorf("nvmed: create CQ %d failed (status %d)", qid, st)
		}
		sqe = [nvme.SQESize]byte{}
		sqe[0] = nvme.AdminCreateIOSQ
		putLE64(sqe[24:32], uint64(ioq.sq.BusAddr()))
		putLE16(sqe[40:42], uint16(qid))
		putLE16(sqe[42:44], QDepth-1)
		putLE16(sqe[44:46], uint16(qid))
		if st, err := c.adminCmd(sqe[:]); err != nil {
			return err
		} else if st != nvme.StatusOK {
			return fmt.Errorf("nvmed: create SQ %d failed (status %d)", qid, st)
		}
	}
	if err := env.RequestIRQ(c.irq); err != nil {
		return err
	}
	c.mmio.Write32(nvme.RegINTCOAL, coalesceBulk)
	c.mmio.Write32(nvme.RegINTMC, 0xFFFFFFFF)
	c.opened = true
	return nil
}

// Stop implements quiesce: disable the controller (resetting every queue),
// release the interrupt and the DMA memory.
func (c *ctrl) Stop() error {
	if !c.opened {
		return nil
	}
	c.opened = false
	c.mmio.Write32(nvme.RegINTMS, 0xFFFFFFFF)
	c.mmio.Write32(nvme.RegCC, 0)
	if err := c.env.FreeIRQ(); err != nil {
		return err
	}
	for q := range c.io {
		for _, b := range []api.DMABuf{c.io[q].sq, c.io[q].cq, c.io[q].bufs} {
			if b != nil {
				if err := c.env.FreeDMA(b); err != nil {
					return err
				}
			}
		}
	}
	c.io = nil
	return nil
}

// Submit implements api.BlockDevice: claim a command slot on queue q, stage
// the payload in the queue's pool, build the SQE and ring the SQ doorbell.
func (c *ctrl) Submit(q int, req api.BlockRequest) error {
	if !c.opened {
		return fmt.Errorf("nvmed: device closed")
	}
	if q < 0 || q >= len(c.io) {
		q = 0
	}
	ioq := &c.io[q]
	if ioq.inFlight >= QDepth-1 {
		if c.fastPath {
			// Reap posted completions inline before giving up — the
			// doorbell may be staged, so flush it first.
			c.kickSQ(q)
			c.pollCQ(q)
		}
		if ioq.inFlight >= QDepth-1 {
			ioq.stopped = true
			return fmt.Errorf("nvmed: queue %d full", q)
		}
	}
	cid := -1
	for i := 0; i < QDepth; i++ {
		if !ioq.used[i] && !ioq.lent[i] {
			cid = i
			break
		}
	}
	if cid < 0 {
		ioq.stopped = true
		return fmt.Errorf("nvmed: queue %d out of command slots", q)
	}
	bufOff := cid * nvme.BlockSize
	if req.Write {
		if len(req.Data) != nvme.BlockSize {
			return fmt.Errorf("nvmed: write payload is %d bytes, want %d", len(req.Data), nvme.BlockSize)
		}
		if view, ok := ioq.bufs.Slice(bufOff, nvme.BlockSize); ok {
			copy(view, req.Data)
		} else if err := ioq.bufs.Write(bufOff, req.Data); err != nil {
			return err
		}
	}
	var sqe [nvme.SQESize]byte
	switch {
	case req.Flush:
		// A flush barrier: no payload, no LBA — the controller drains its
		// volatile cache before completing (REQ_OP_FLUSH → CmdFlush).
		sqe[0] = nvme.CmdFlush
	case req.Write:
		sqe[0] = nvme.CmdWrite
	default:
		sqe[0] = nvme.CmdRead
	}
	putLE16(sqe[2:4], uint16(cid))
	if !req.Flush {
		putLE64(sqe[24:32], uint64(ioq.bufs.BusAddr())+uint64(bufOff))
		putLE64(sqe[40:48], req.LBA)
		if req.FUA {
			sqe[50] |= nvme.SqeFlagFUA
		}
	}
	if err := writeRing(ioq.sq, ioq.tail, nvme.SQESize, sqe[:]); err != nil {
		return err
	}
	ioq.used[cid] = true
	ioq.tags[cid] = req.Tag
	ioq.wrote[cid] = req.Write || req.Flush
	ioq.inFlight++
	ioq.tail = (ioq.tail + 1) % QDepth
	if c.coalesceSQ {
		// Stage the tail doorbell; KickPending flushes it once for the
		// whole batch of submissions the host delivered in this drain.
		ioq.kick = true
	} else {
		c.mmio.Write32(nvme.SQDoorbell(q+1), uint32(ioq.tail))
		c.SQDoorbells++
	}
	c.Submitted++
	if c.fastPath {
		// Opportunistic completion reap on the submit path: under load,
		// completions ride the submission stream instead of waiting out
		// the interrupt-coalescing window.
		c.pollCQ(q)
	}
	return nil
}

// kickSQ flushes queue q's staged SQ tail doorbell, if any.
func (c *ctrl) kickSQ(q int) {
	ioq := &c.io[q]
	if !ioq.kick {
		return
	}
	ioq.kick = false
	c.mmio.Write32(nvme.SQDoorbell(q+1), uint32(ioq.tail))
	c.SQDoorbells++
}

// KickPending implements api.BatchKicker: flush every staged SQ tail doorbell
// — one MMIO write per queue that submitted since the last kick, however many
// commands the batch carried — then, on the fast path, reap any completions
// the flush made available.
func (c *ctrl) KickPending() {
	if !c.opened {
		return
	}
	for q := range c.io {
		c.kickSQ(q)
	}
	if c.fastPath {
		for q := range c.io {
			c.pollCQ(q)
		}
	}
}

// RecyclePages implements api.PageRecycler: the host returns buffer pages
// whose read payloads it delivered by page flip; each page is one command
// slot (BlockSize == page size), which becomes allocatable again.
func (c *ctrl) RecyclePages(q int, pages []mem.Addr) {
	if !c.opened || q < 0 || q >= len(c.io) {
		return
	}
	ioq := &c.io[q]
	base := ioq.bufs.BusAddr()
	freed := 0
	for _, page := range pages {
		if page < base || page >= base+mem.Addr(QDepth*nvme.BlockSize) {
			continue // not this queue's pool
		}
		slot := int(page-base) / nvme.BlockSize
		if ioq.lent[slot] {
			ioq.lent[slot] = false
			freed++
		}
	}
	if freed > 0 && ioq.stopped && ioq.inFlight < QDepth-1 {
		ioq.stopped = false
		c.blk.WakeQueueQ(q)
	}
}

// --- interrupt path -----------------------------------------------------------

func (c *ctrl) irq() {
	if !c.opened {
		return
	}
	c.Interrupts++
	for q := range c.io {
		c.pollCQ(q)
	}
	c.env.IRQAck()
}

// pollCQ drains queue q's completion queue NAPI-style: consume every entry
// carrying the expected phase tag, complete to the block core tagged with
// the queue, then ring the CQ head doorbell once for the whole batch.
func (c *ctrl) pollCQ(q int) int {
	ioq := &c.io[q]
	processed := 0
	for processed < QDepth {
		cqe, err := readRing(ioq.cq, ioq.cqHead, nvme.CQESize)
		if err != nil {
			break
		}
		st := le16(cqe[14:16])
		if (st&1 != 0) != ioq.phase {
			break
		}
		cid := int(le16(cqe[12:14]))
		status := st >> 1
		ioq.cqHead = (ioq.cqHead + 1) % QDepth
		if ioq.cqHead == 0 {
			ioq.phase = !ioq.phase
		}
		processed++
		if cid < 0 || cid >= QDepth || !ioq.used[cid] {
			continue // spurious completion
		}
		ioq.used[cid] = false
		ioq.inFlight--
		tag := ioq.tags[cid]
		c.Completed++
		if status != nvme.StatusOK {
			c.Errors++
			c.blk.Complete(q, tag, fmt.Errorf("nvmed: device status %d", status), nil)
			continue
		}
		if ioq.wrote[cid] {
			c.blk.Complete(q, tag, nil, nil)
			continue
		}
		var data []byte
		bufOff := cid * nvme.BlockSize
		if view, ok := ioq.bufs.Slice(bufOff, nvme.BlockSize); ok {
			data = view // zero-copy reference into the stack, like a bio
			if c.pageAware {
				// The host will flip this buffer's page to the kernel;
				// the slot comes back through RecyclePages.
				ioq.lent[cid] = true
			}
		} else {
			data = make([]byte, nvme.BlockSize)
			if err := ioq.bufs.Read(bufOff, data); err != nil {
				c.blk.Complete(q, tag, err, nil)
				continue
			}
		}
		c.blk.Complete(q, tag, nil, data)
	}
	if processed > 0 {
		c.mmio.Write32(nvme.CQDoorbell(q+1), uint32(ioq.cqHead))
		if ioq.stopped && ioq.inFlight < QDepth-1 {
			ioq.stopped = false
			c.blk.WakeQueueQ(q)
		}
	}
	return processed
}

// Geometry returns the identified geometry (tests).
func (c *ctrl) Geometry() api.BlockGeometry { return c.geom }

// --- ring access ---------------------------------------------------------------

func writeRing(ring api.DMABuf, i, entry int, e []byte) error {
	if view, ok := ring.Slice(i*entry, entry); ok {
		copy(view, e)
		return nil
	}
	return ring.Write(i*entry, e)
}

func readRing(ring api.DMABuf, i, entry int) ([]byte, error) {
	if view, ok := ring.Slice(i*entry, entry); ok {
		return view, nil
	}
	e := make([]byte, entry)
	err := ring.Read(i*entry, e)
	return e, err
}

func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putLE16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
